(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (see DESIGN.md's experiment index) and runs Bechamel
   wall-clock benchmarks of native loop nests — the real-hardware analogue
   of the paper's execution-time measurements.

   Usage:
     main.exe [-j N]           run every table and figure
     main.exe [-j N] <id> ...  run selected: fig2 fig3 fig7 table1 table2
                               table3 table4 table5 fig8 fig9 tracestats
     main.exe bechamel         run the Bechamel wall-clock benchmarks
     main.exe csv DIR          export tables 2/3/4 as CSV into DIR

   tracestats captures the Table 4 workload in both trace formats
   (MEMORIA_REPLAY=per-access vs the default run-compressed v2) and
   prints record counts and compression ratios; its output is
   independent of the MEMORIA_REPLAY setting, so CI's A/B smoke — which
   diffs the printed tables across the two modes byte-for-byte — is
   unaffected by it.

   Experiments are independent string-producing jobs, so they run on the
   domain pool ([-j N] or MEMORIA_JOBS, sequential at 1) and print in
   list order. *)

module Stats = Locality_stats
module Pool = Locality_par.Pool
module Obs = Locality_obs.Obs
module Chrome = Locality_obs.Chrome
module Summary = Locality_obs.Summary
module Openmetrics = Locality_obs.Openmetrics
module Flame = Locality_obs.Flame
module Measure = Locality_interp.Measure
module Store = Locality_store.Store
module Telemetry = Locality_telemetry.Telemetry
module Record = Locality_telemetry.Record

(* With MEMORIA_STORE set, say how the store did: a stderr summary line
   CI parses for the warm-run hit rate (stdout stays byte-identical). *)
let () =
  match Store.default () with
  | None -> ()
  | Some _ ->
    at_exit (fun () ->
        let c = Store.counters () in
        let looked_up = c.Store.hits + c.Store.misses in
        let rate =
          if looked_up = 0 then 0.0
          else 100.0 *. float_of_int c.Store.hits /. float_of_int looked_up
        in
        Printf.eprintf
          "store: %d hits %d misses %d writes (%.1f%% hit rate)\n%!"
          c.Store.hits c.Store.misses c.Store.writes rate)

(* Set by --tune before any experiment forces the rows: adds the tuned
   column (quick transformation search) to tables 2 and 4. Off by
   default so CI's replay-mode A/B byte-diff baselines are unchanged. *)
let tune_flag = ref false

let table2_rows = lazy (Stats.Table2.compute ~tune:!tune_flag ())

(* The interpreter hot path is supposed to be allocation-free: trace a
   kernel into a discarding sink and report the minor-heap words each
   access cost. Goes to stderr so the CI A/B diff of stdout across
   replay modes is unaffected; the residue is the per-run setup
   (closure compilation, chunk buffer), amortised over ~10^6 accesses. *)
let alloc_probe () =
  let module Trace = Locality_interp.Trace in
  let module Fastexec = Locality_interp.Fastexec in
  let p = (List.assoc "matmul" Locality_suite.Kernels.all) 64 in
  let silent_run () =
    let rb = Trace.run_create ~sink:(fun _ -> ()) () in
    let w0 = Gc.minor_words () in
    ignore (Fastexec.run_traced_runs rb p);
    let w1 = Gc.minor_words () in
    (w1 -. w0, Trace.run_total rb)
  in
  ignore (silent_run ());
  let words, accesses = silent_run () in
  Printf.eprintf "alloc: %.4f minor words/access (%d accesses, matmul n=64, \
                  silent sink)\n%!"
    (words /. float_of_int accesses)
    accesses

(* Capture the Table 4 workload (both program versions per row, same N)
   in one trace format and total the stream statistics. *)
let tracestats () =
  alloc_probe ();
  let rows = Lazy.force table2_rows in
  let tally mode =
    List.fold_left
      (fun acc (r : Stats.Table2.row) ->
        if r.Stats.Table2.nests = 0 then acc
        else
          let add (recs, words, groups) p =
            let cap = Measure.capture ~mode ~params:[ ("N", 32) ] p in
            let r', w', g' = Measure.trace_stats cap in
            (recs + r', words + w', groups + g')
          in
          add (add acc r.Stats.Table2.original) r.Stats.Table2.transformed)
      (0, 0, 0) rows
  in
  let line name (recs, words, groups) =
    Printf.sprintf "%-12s %14d %14d %10d %8.2fx" name recs words groups
      (float_of_int recs /. float_of_int words)
  in
  String.concat "\n"
    [
      "Trace capture statistics (Table 4 workload, N=32, both versions)";
      Printf.sprintf "%-12s %14s %14s %10s %8s" "mode" "records"
        "words stored" "groups" "ratio";
      line "per-access" (tally Measure.Per_access);
      line "runs" (tally Measure.Runs);
    ]

(* The closed-form analytic model against the simulator, whole-program,
   on the Table 4 workload: per-program class and miss rates, and an
   exact-mismatch total CI fails on (an exact claim must be
   simulator-equal). *)
let analytic_stats () =
  let module Analytic = Locality_analytic.Analytic in
  let module Report = Locality_stats.Report in
  let rows = Lazy.force table2_rows in
  let config = Locality_cachesim.Machine.cache1 in
  let params = [ ("N", 32) ] in
  let exact = ref 0 and approx = ref 0 and fallback = ref 0 in
  let mismatches = ref 0 in
  let reasons : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let rate acc miss =
    if acc = 0 then 0.0 else 100.0 *. float_of_int miss /. float_of_int acc
  in
  let side p =
    match Analytic.estimate ~params ~config p with
    | Error reason ->
      incr fallback;
      Hashtbl.replace reasons reason
        (1 + Option.value ~default:0 (Hashtbl.find_opt reasons reason));
      "fallback      -      -      -"
    | Ok est ->
      let sim =
        Measure.replay ~config (Measure.capture ~mode:Measure.Runs ~params p)
      in
      let w = sim.Measure.whole in
      let sim_rate = rate w.Measure.accesses (w.Measure.accesses - w.Measure.hits) in
      let a = est.Analytic.e_whole in
      let ana_rate =
        rate a.Analytic.c_accesses (a.Analytic.c_accesses - a.Analytic.c_hits)
      in
      let cls =
        if est.Analytic.e_exact then begin
          incr exact;
          if
            w.Measure.accesses <> a.Analytic.c_accesses
            || w.Measure.hits <> a.Analytic.c_hits
            || w.Measure.cold <> a.Analytic.c_cold
            || sim.Measure.ops <> est.Analytic.e_ops
          then begin
            incr mismatches;
            "EXACT-MISMATCH"
          end
          else "exact"
        end
        else begin
          incr approx;
          "approx"
        end
      in
      Printf.sprintf "%-8s %6s %6s %6s" cls
        (Report.fmt_pct sim_rate) (Report.fmt_pct ana_rate)
        (Report.fmt_pct (Float.abs (ana_rate -. sim_rate)))
  in
  let body =
    List.filter_map
      (fun (r : Stats.Table2.row) ->
        if r.Stats.Table2.nests = 0 then None
        else
          Some
            (Printf.sprintf "%-10s %s   %s"
               r.Stats.Table2.entry.Locality_suite.Programs.name
               (side r.Stats.Table2.original)
               (side r.Stats.Table2.transformed)))
      rows
  in
  String.concat "\n"
    ([
       "Analytic model vs simulator (Table 4 workload, N=32, cache1, \
        whole-program miss rates)";
       Printf.sprintf "%-10s %-8s %6s %6s %6s   %-8s %6s %6s %6s" "program"
         "orig" "sim%" "ana%" "err" "trans" "sim%" "ana%" "err";
     ]
    @ body
    @ [
        Printf.sprintf
          "analytic classes: exact=%d approx=%d fallback=%d exact-mismatches=%d"
          !exact !approx !fallback !mismatches;
      ]
    @ (Hashtbl.fold (fun r n acc -> (r, n) :: acc) reasons []
      |> List.sort compare
      |> List.map (fun (r, n) -> Printf.sprintf "  fallback reason (%2d): %s" n r)
      ))

let experiments : (string * (unit -> string)) list =
  [
    ("fig2", fun () -> Stats.Figures.fig2 ());
    ("fig3", fun () -> Stats.Figures.fig3 ());
    ("fig7", fun () -> Stats.Figures.fig7 ());
    ("table1", fun () -> Stats.Perf.table1 ());
    ("table2", fun () -> Stats.Table2.render (Lazy.force table2_rows));
    ("table3", fun () -> Stats.Perf.table3 ());
    ("table4", fun () -> Stats.Perf.table4 ~tune:!tune_flag (Lazy.force table2_rows));
    ("table5", fun () -> Stats.Table5.render_for (Lazy.force table2_rows));
    ("fig8", fun () -> Stats.Figures.fig8 (Lazy.force table2_rows));
    ("fig9", fun () -> Stats.Figures.fig9 (Lazy.force table2_rows));
    ("ablation-transforms", fun () -> Stats.Ablation.transforms ());
    ("ablation-tiling", fun () -> Stats.Ablation.tiling ());
    ("ablation-reversal", fun () -> Stats.Ablation.reversal ());
    ("ablation-cls", fun () -> Stats.Ablation.cls_sensitivity ());
    ("ablation-reuse", fun () -> Stats.Ablation.reuse_profile ());
    ("ablation-multilevel", fun () -> Stats.Ablation.multilevel ());
    ("ablation-parallelism", fun () -> Stats.Ablation.parallelism ());
    ("ablation-interference", fun () -> Stats.Ablation.interference ());
    ("ablation-step3", fun () -> Stats.Ablation.step3 ());
    ("ablation-tilesize", fun () -> Stats.Ablation.tilesize ());
    ("tracestats", tracestats);
    ("alloc", fun () -> alloc_probe (); "(see stderr)\n");
    ("analytic", analytic_stats);
    ("scale", fun () -> Stats.Scale.render_scale ());
    ("sampleerr", fun () -> Stats.Scale.render_err (Lazy.force table2_rows));
  ]

(* ------------------------------------------------- native kernels ---- *)

(* Column-major matmul with an explicit loop order; exercises the real
   memory hierarchy the way Figure 2's measurements did. *)
let native_matmul order n =
  let a = Array.make (n * n) 1.5
  and b = Array.make (n * n) 2.5
  and c = Array.make (n * n) 0.0 in
  fun () ->
    let body i j k =
      c.((j * n) + i) <- c.((j * n) + i) +. (a.((k * n) + i) *. b.((j * n) + k))
    in
    (match order with
    | "IJK" ->
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          for k = 0 to n - 1 do
            body i j k
          done
        done
      done
    | "JKI" ->
      for j = 0 to n - 1 do
        for k = 0 to n - 1 do
          for i = 0 to n - 1 do
            body i j k
          done
        done
      done
    | "KIJ" ->
      for k = 0 to n - 1 do
        for i = 0 to n - 1 do
          for j = 0 to n - 1 do
            body i j k
          done
        done
      done
    | "IKJ" ->
      for i = 0 to n - 1 do
        for k = 0 to n - 1 do
          for j = 0 to n - 1 do
            body i j k
          done
        done
      done
    | "JIK" ->
      for j = 0 to n - 1 do
        for i = 0 to n - 1 do
          for k = 0 to n - 1 do
            body i j k
          done
        done
      done
    | "KJI" ->
      for k = 0 to n - 1 do
        for j = 0 to n - 1 do
          for i = 0 to n - 1 do
            body i j k
          done
        done
      done
    | _ -> invalid_arg "order");
    Sys.opaque_identity c.(0)

(* ADI fragment, original (K inner per statement, I outer) vs the
   fused-and-interchanged form of Figure 3(c). *)
let native_adi fused n =
  let x = Array.make (n * n) 1.0
  and a = Array.make (n * n) 0.5
  and b = Array.make (n * n) 2.0 in
  let idx i k = (k * n) + i in
  fun () ->
    if fused then
      for k = 0 to n - 1 do
        for i = 1 to n - 1 do
          x.(idx i k) <-
            x.(idx i k) -. (x.(idx (i - 1) k) *. a.(idx i k) /. b.(idx (i - 1) k));
          b.(idx i k) <-
            b.(idx i k) -. (a.(idx i k) *. a.(idx i k) /. b.(idx (i - 1) k))
        done
      done
    else
      for i = 1 to n - 1 do
        for k = 0 to n - 1 do
          x.(idx i k) <-
            x.(idx i k) -. (x.(idx (i - 1) k) *. a.(idx i k) /. b.(idx (i - 1) k))
        done;
        for k = 0 to n - 1 do
          b.(idx i k) <-
            b.(idx i k) -. (a.(idx i k) *. a.(idx i k) /. b.(idx (i - 1) k))
        done
      done;
    Sys.opaque_identity x.(0)

(* Cholesky update loop, KIJ vs KJI (distributed + interchanged) forms. *)
let native_cholesky kji n =
  let a = Array.make (n * n) 0.0 in
  let idx i j = (j * n) + i in
  let reset () =
    for j = 0 to n - 1 do
      for i = 0 to n - 1 do
        a.(idx i j) <- (if i = j then float_of_int n else 0.5)
      done
    done
  in
  fun () ->
    reset ();
    if kji then
      for k = 0 to n - 1 do
        a.(idx k k) <- Float.sqrt (Float.abs a.(idx k k));
        for i = k + 1 to n - 1 do
          a.(idx i k) <- a.(idx i k) /. a.(idx k k)
        done;
        for j = k + 1 to n - 1 do
          for i = j to n - 1 do
            a.(idx i j) <- a.(idx i j) -. (a.(idx i k) *. a.(idx j k))
          done
        done
      done
    else
      for k = 0 to n - 1 do
        a.(idx k k) <- Float.sqrt (Float.abs a.(idx k k));
        for i = k + 1 to n - 1 do
          a.(idx i k) <- a.(idx i k) /. a.(idx k k);
          for j = k + 1 to i do
            a.(idx i j) <- a.(idx i j) -. (a.(idx i k) *. a.(idx j k))
          done
        done
      done;
    Sys.opaque_identity a.(0)

(* 3-D forward sweeps for Erlebacher: distributed (three passes) vs fused
   (one pass) — the Table 1 comparison. *)
let native_erlebacher fused n =
  let sz = n * n * n in
  let fa = Array.make sz 1.0
  and g = Array.make sz 1.0
  and ux = Array.make sz 0.0
  and d = Array.make n 0.9 in
  let idx i j k = (((k * n) + j) * n) + i in
  fun () ->
    if fused then
      for k = 1 to n - 1 do
        for j = 0 to n - 1 do
          for i = 0 to n - 1 do
            fa.(idx i j k) <- fa.(idx i j k) -. (fa.(idx i j (k - 1)) *. d.(k));
            g.(idx i j k) <- g.(idx i j k) -. (fa.(idx i j k) *. d.(k));
            ux.(idx i j k) <- ux.(idx i j k) +. (fa.(idx i j k) *. g.(idx i j k))
          done
        done
      done
    else begin
      for k = 1 to n - 1 do
        for j = 0 to n - 1 do
          for i = 0 to n - 1 do
            fa.(idx i j k) <- fa.(idx i j k) -. (fa.(idx i j (k - 1)) *. d.(k))
          done
        done
      done;
      for k = 1 to n - 1 do
        for j = 0 to n - 1 do
          for i = 0 to n - 1 do
            g.(idx i j k) <- g.(idx i j k) -. (fa.(idx i j k) *. d.(k))
          done
        done
      done;
      for k = 1 to n - 1 do
        for j = 0 to n - 1 do
          for i = 0 to n - 1 do
            ux.(idx i j k) <- ux.(idx i j k) +. (fa.(idx i j k) *. g.(idx i j k))
          done
        done
      done
    end;
    Sys.opaque_identity ux.(0)

(* Throughput of the infrastructure itself: the cache simulator and the
   compound algorithm (the paper stresses the algorithm is cheap). *)
(* Blocked (3-loop-tiled) matmul with a given tile size; tile = n means
   effectively untiled. Exercises Tilesize.choose on the host's real
   cache hierarchy, including the pathological power-of-two stride. *)
let native_blocked_matmul tile n =
  let a = Array.make (n * n) 1.5
  and b = Array.make (n * n) 2.5
  and c = Array.make (n * n) 0.0 in
  fun () ->
    let t = tile in
    let jt = ref 0 in
    while !jt < n do
      let jhi = min (!jt + t) n in
      let kt = ref 0 in
      while !kt < n do
        let khi = min (!kt + t) n in
        let it = ref 0 in
        while !it < n do
          let ihi = min (!it + t) n in
          for j = !jt to jhi - 1 do
            for k = !kt to khi - 1 do
              let bkj = b.((j * n) + k) in
              for i = !it to ihi - 1 do
                c.((j * n) + i) <- c.((j * n) + i) +. (a.((k * n) + i) *. bkj)
              done
            done
          done;
          it := ihi
        done;
        kt := khi
      done;
      jt := jhi
    done;
    Sys.opaque_identity c.(0)

let native_cachesim () =
  let cache = Locality_cachesim.Cache.create Locality_cachesim.Machine.cache1 in
  fun () ->
    for i = 0 to 99_999 do
      ignore (Locality_cachesim.Cache.access cache (i * 24 mod 1_000_000))
    done;
    Sys.opaque_identity
      (Locality_cachesim.Cache.stats cache).Locality_cachesim.Cache.hits

let native_compound () =
  let p =
    match Locality_suite.Programs.find "arc2d" with
    | Some e -> Locality_suite.Programs.program_of ~n:16 e
    | None -> assert false
  in
  fun () ->
    let p', _ = Locality_core.Compound.run_program ~cls:4 p in
    Sys.opaque_identity (List.length p'.Locality_ir.Program.body)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let n = try int_of_string (Sys.getenv "MATMUL_N") with Not_found -> 192 in
  let tests =
    Test.make_grouped ~name:"memoria"
      [
        (* Figure 2: real execution times of the six matmul orders. *)
        Test.make_grouped ~name:"fig2-matmul"
          (List.map
             (fun order ->
               Test.make ~name:order (Staged.stage (native_matmul order n)))
             Locality_suite.Kernels.matmul_orders);
        (* Figure 3 / Table 3: ADI original vs fused+interchanged. *)
        Test.make_grouped ~name:"fig3-adi"
          [
            Test.make ~name:"original" (Staged.stage (native_adi false 384));
            Test.make ~name:"fused" (Staged.stage (native_adi true 384));
          ];
        (* Figure 7: Cholesky KIJ vs KJI. *)
        Test.make_grouped ~name:"fig7-cholesky"
          [
            Test.make ~name:"kij" (Staged.stage (native_cholesky false n));
            Test.make ~name:"kji" (Staged.stage (native_cholesky true n));
          ];
        (* Table 1: Erlebacher distributed vs fused. *)
        Test.make_grouped ~name:"table1-erlebacher"
          [
            Test.make ~name:"distributed"
              (Staged.stage (native_erlebacher false 64));
            Test.make ~name:"fused" (Staged.stage (native_erlebacher true 64));
          ];
        (* Section 6 + LRW91: blocked matmul at the pathological
           power-of-two stride, fixed tiles vs Tilesize.choose for
           L1-like (32 KB, 8-way) and L2-like (1 MB, 16-way) host
           geometries. *)
        Test.make_grouped ~name:"ablation-tilesize-n512"
          (let geom name size assoc =
             {
               Locality_cachesim.Cache.name;
               size_bytes = size;
               assoc;
               line_bytes = 64;
             }
           in
           let auto cfg =
             (Locality_cachesim.Tilesize.choose cfg ~elem_size:8 ~stride:512)
               .Locality_cachesim.Tilesize.tile
           in
           let t1 = auto (geom "hostL1" (32 * 1024) 8)
           and t2 = auto (geom "hostL2" (1024 * 1024) 16) in
           [
             Test.make ~name:"untiled" (Staged.stage (native_blocked_matmul 512 512));
             Test.make ~name:"T=32" (Staged.stage (native_blocked_matmul 32 512));
             Test.make
               ~name:(Printf.sprintf "T=autoL1(%d)" t1)
               (Staged.stage (native_blocked_matmul t1 512));
             Test.make
               ~name:(Printf.sprintf "T=autoL2(%d)" t2)
               (Staged.stage (native_blocked_matmul t2 512));
           ]);
        (* Table 4 substrate: cache simulator throughput. *)
        Test.make ~name:"table4-cachesim-100k" (Staged.stage (native_cachesim ()));
        (* Table 2 substrate: the compound algorithm itself. *)
        Test.make ~name:"table2-compound-arc2d" (Staged.stage (native_compound ()));
      ]
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 2.0) ~kde:None () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let results =
    Analyze.all
      (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      Instance.monotonic_clock raw
  in
  Printf.printf "== Bechamel wall-clock benchmarks ==\n";
  Printf.printf "%-45s %16s\n" "benchmark" "time/run";
  let entries = ref [] in
  Hashtbl.iter (fun name ols -> entries := (name, ols) :: !entries) results;
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some [ t ] ->
        let pretty =
          if t > 1e9 then Printf.sprintf "%10.3f s " (t /. 1e9)
          else if t > 1e6 then Printf.sprintf "%10.3f ms" (t /. 1e6)
          else if t > 1e3 then Printf.sprintf "%10.3f us" (t /. 1e3)
          else Printf.sprintf "%10.0f ns" t
        in
        Printf.printf "%-45s %16s\n" name pretty
      | _ -> Printf.printf "%-45s %16s\n" name "n/a")
    (List.sort compare !entries)

(* Experiments that read [table2_rows]. Before running experiments in
   parallel the lazy is forced once up front: concurrent Lazy.force from
   several domains raises, and the rows are wanted by many consumers. *)
let needs_table2 =
  [ "table2"; "table4"; "table5"; "fig8"; "fig9"; "tracestats"; "analytic";
    "sampleerr" ]

let run_experiments ~jobs selected =
  if
    jobs > 1
    && List.exists (fun (name, _) -> List.mem name needs_table2) selected
  then ignore (Lazy.force table2_rows);
  let rendered =
    Pool.map ~jobs
      (fun (name, f) -> (name, Obs.span ("experiment:" ^ name) f))
      selected
  in
  List.iter
    (fun (name, out) -> Printf.printf "\n##### %s #####\n\n%s%!" name out)
    rendered

let replay_mode_name () =
  match Sys.getenv_opt "MEMORIA_REPLAY" with
  | Some "per-access" -> "per-access"
  | Some "stream" -> "stream"
  | Some "sample" -> "sample"
  | Some "analytic" -> "analytic"
  | _ -> "runs"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Strip -j/--jobs N, --scale N, --rate R, --trace FILE, --profile,
     --metrics FILE, --flame FILE and --tune anywhere on the command
     line (same convention the memoria binary uses). *)
  let jobs = ref None in
  let trace = ref None in
  let profile = ref false in
  let metrics = ref None in
  let flame = ref None in
  let rec strip = function
    | ("-j" | "--jobs") :: n :: rest -> (
      match int_of_string_opt n with
      | Some j when j >= 1 ->
        jobs := Some j;
        strip rest
      | _ ->
        Printf.eprintf "bad -j value %s (want a positive integer)\n" n;
        exit 1)
    | [ ("-j" | "--jobs") ] ->
      Printf.eprintf "-j needs a value\n";
      exit 1
    | "--scale" :: n :: rest -> (
      match int_of_string_opt n with
      | Some k when k >= 1 ->
        Stats.Scale.factor := k;
        strip rest
      | _ ->
        Printf.eprintf "bad --scale value %s (want a positive integer)\n" n;
        exit 1)
    | [ "--scale" ] ->
      Printf.eprintf "--scale needs a value\n";
      exit 1
    | "--rate" :: r :: rest -> (
      match float_of_string_opt r with
      | Some v when v > 0.0 && v <= 1.0 ->
        Locality_sample.Sample.set_rate v;
        strip rest
      | _ ->
        Printf.eprintf "bad --rate value %s (want a float in (0, 1])\n" r;
        exit 1)
    | [ "--rate" ] ->
      Printf.eprintf "--rate needs a value\n";
      exit 1
    | "--trace" :: path :: rest ->
      trace := Some path;
      strip rest
    | [ "--trace" ] ->
      Printf.eprintf "--trace needs a FILE\n";
      exit 1
    | "--metrics" :: path :: rest ->
      metrics := Some path;
      strip rest
    | [ "--metrics" ] ->
      Printf.eprintf "--metrics needs a FILE\n";
      exit 1
    | "--flame" :: path :: rest ->
      flame := Some path;
      strip rest
    | [ "--flame" ] ->
      Printf.eprintf "--flame needs a FILE\n";
      exit 1
    | "--profile" :: rest ->
      profile := true;
      strip rest
    | "--tune" :: rest ->
      tune_flag := true;
      strip rest
    | a :: rest -> a :: strip rest
    | [] -> []
  in
  let args = strip args in
  let jobs = match !jobs with Some j -> j | None -> Pool.default_jobs () in
  let telemetry = Telemetry.enabled () in
  let workload =
    Printf.sprintf "bench:%s:jobs=%d"
      (match args with [] -> "all" | l -> String.concat "+" l)
      jobs
  in
  if
    !trace <> None || !profile || !metrics <> None || !flame <> None
    || telemetry
  then begin
    let t0 = Unix.gettimeofday () in
    Obs.set_enabled true;
    Obs.reset ();
    at_exit (fun () ->
        (* The warm-run hit rate as a gauge, from the process-global
           store counters: the stderr store summary (registered at
           module init, so it runs after this handler) is too late for
           the exporters, so compute it here while recording is on. *)
        (let c = Store.counters () in
         let looked_up = c.Store.hits + c.Store.misses in
         if looked_up > 0 then
           Obs.gauge "store.hit_rate"
             (float_of_int c.Store.hits /. float_of_int looked_up));
        let events = Obs.drain () in
        Obs.set_enabled false;
        let summary = lazy (Summary.of_events events) in
        Option.iter
          (fun path -> Chrome.write ~path ~process_name:"bench" events)
          !trace;
        Option.iter
          (fun path -> Openmetrics.write ~path (Lazy.force summary))
          !metrics;
        Option.iter (fun path -> Flame.write ~path events) !flame;
        if !profile then
          prerr_string (Stats.Profile.render (Lazy.force summary));
        if telemetry then
          Option.iter
            (fun store ->
              let s = Lazy.force summary in
              let record =
                {
                  Record.ts_ns = Telemetry.now_epoch_ns ();
                  cmd = "bench";
                  workload;
                  replay = replay_mode_name ();
                  geometry = "cache1+cache2";
                  jobs;
                  git = Telemetry.git_describe ();
                  wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
                  phases =
                    List.map
                      (fun (r : Summary.span_row) ->
                        (r.Summary.name, Summary.ms r.Summary.total_ns))
                      s.Summary.spans;
                  counters = s.Summary.counters;
                  gauges = s.Summary.gauges;
                }
              in
              ignore (Telemetry.publish store record))
            (Store.default ()))
  end;
  match args with
  | [ "bechamel" ] -> bechamel ()
  | [ "csv"; dir ] ->
    Stats.Csv.write_all ~dir (Lazy.force table2_rows);
    Printf.printf "wrote table2.csv, table3.csv, table4.csv to %s\n" dir
  | [] | [ "all" ] ->
    run_experiments ~jobs experiments;
    Printf.printf "\n(run `main.exe bechamel` for native wall-clock benchmarks)\n"
  | names ->
    let selected =
      List.map
        (fun name ->
          match List.assoc_opt name experiments with
          | Some f -> (name, f)
          | None ->
            Printf.eprintf "unknown experiment %s (known: %s, bechamel)\n" name
              (String.concat " " (List.map fst experiments));
            exit 1)
        names
    in
    run_experiments ~jobs selected
