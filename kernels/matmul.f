PROGRAM matmul
PARAMETER (N = 300)
REAL A(N,N), B(N,N), C(N,N)
C Matrix multiply written with the I loop outermost (poor locality).
DO I = 1, N
  DO J = 1, N
    DO K = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
