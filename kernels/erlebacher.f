PROGRAM erlebacher
PARAMETER (N = 32)
REAL F(N,N,N), G(N,N,N), UX(N,N,N), D(N)
C 3-D ADI forward sweep, fully distributed single-statement loops.
DO K1 = 2, N
  DO J1 = 1, N
    DO I1 = 1, N
      F(I1,J1,K1) = F(I1,J1,K1) - F(I1,J1,K1-1)*D(K1)
    ENDDO
  ENDDO
ENDDO
DO K2 = 2, N
  DO J2 = 1, N
    DO I2 = 1, N
      G(I2,J2,K2) = G(I2,J2,K2) - F(I2,J2,K2)*D(K2)
    ENDDO
  ENDDO
ENDDO
DO K3 = 2, N
  DO J3 = 1, N
    DO I3 = 1, N
      UX(I3,J3,K3) = UX(I3,J3,K3) + F(I3,J3,K3)*G(I3,J3,K3)
    ENDDO
  ENDDO
ENDDO
END
