PROGRAM adi
PARAMETER (N = 256)
REAL X(N,N), A(N,N), B(N,N)
C Scalarized Fortran-90 ADI integration fragment (Figure 3b).
DO I = 2, N
  DO K = 1, N
    X(I,K) = X(I,K) - X(I-1,K)*A(I,K)/B(I-1,K)
  ENDDO
  DO K = 1, N
    B(I,K) = B(I,K) - A(I,K)*A(I,K)/B(I-1,K)
  ENDDO
ENDDO
END
