PROGRAM gmtry
PARAMETER (N = 128)
REAL RX(N,N)
C Gaussian elimination across rows (ikj form): no spatial locality as written.
DO I = 2, N
  DO J = 1, I-1
    DO K = J+1, N
      RX(I,K) = RX(I,K) - RX(I,J)*RX(J,K)
    ENDDO
  ENDDO
ENDDO
END
