PROGRAM stencil
PARAMETER (N = 400)
REAL U(N,N), V(N,N)
C Five-point stencil written row-major; interchange fixes it.
DO I = 2, N-1
  DO J = 2, N-1
    V(I,J) = 0.25 * (U(I-1,J) + U(I+1,J) + U(I,J-1) + U(I,J+1))
  ENDDO
ENDDO
END
