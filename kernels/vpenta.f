PROGRAM vpenta
PARAMETER (N = 128)
REAL X(N,N), Y(N,N), A(N,N), B(N,N)
C Pentadiagonal elimination sweep, scalarized with the vector loop outermost.
DO J = 3, N
  DO I = 1, N
    X(J,I) = X(J,I) - A(J,I)*X(J-1,I) - B(J,I)*X(J-2,I)
    Y(J,I) = Y(J,I) - A(J,I)*Y(J-1,I)
  ENDDO
ENDDO
END
