PROGRAM lu
PARAMETER (N = 64)
REAL*8 A(N,N)
C Right-looking LU without pivoting, row-oriented update order.
DO K = 1, N-1
  DO S = K+1, N
    A(S,K) = A(S,K) / A(K,K)
  ENDDO
  DO I = K+1, N
    DO J = K+1, N
      A(I,J) = A(I,J) - A(I,K) * A(K,J)
    ENDDO
  ENDDO
ENDDO
END
