PROGRAM simple
PARAMETER (N = 200)
REAL P(N,N), Q(N,N), RHO(N,N)
C Hydrodynamics fragment in vectorizable form: the recurrence runs over
C the outer loop so the inner loop vectorizes; bad for cache lines.
DO L = 2, N
  DO M = 1, N
    P(L,M) = P(L-1,M) + RHO(L,M)*Q(L,M)
  ENDDO
ENDDO
DO L2 = 2, N
  DO M2 = 1, N
    Q(L2,M2) = Q(L2-1,M2) + RHO(L2,M2)*P(L2,M2)
  ENDDO
ENDDO
END
