PROGRAM cholesky
PARAMETER (N = 200)
REAL A(N,N)
C KIJ-form Cholesky factorisation (Figure 7a of the paper).
DO K = 1, N
  A(K,K) = SQRT(A(K,K))
  DO I = K+1, N
    A(I,K) = A(I,K) / A(K,K)
    DO J = K+1, I
      A(I,J) = A(I,J) - A(I,K)*A(J,K)
    ENDDO
  ENDDO
ENDDO
END
