#!/usr/bin/env python3
"""CI clients for the `memoria serve` smoke job.

Two subcommands, both speaking the line protocol of doc/PROTOCOL.md
over a Unix-domain socket:

  round SOCK PREFIX REQ.json...
      Send every request file on its own concurrent connection; write
      each response line to PREFIX<i>.txt. Fails unless every response
      has status "ok" and echoes the request's id.

  probes SOCK SERVER_PID
      Exercise the typed non-ok responses against a --jobs 1
      --max-queue 1 server: a slow request occupies the only in-flight
      slot, a second request must answer "overloaded", a timeout_ms=0
      request answers "timeout" (sent on the same connection — fresh
      connects would race the drain below), and after SIGTERM the
      draining server must still answer the slow request "ok".
"""

import json
import os
import signal
import socket
import sys
import threading
import time


def connect(path, tries=250):
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    for i in range(tries):
        try:
            s.connect(path)
            return s
        except (FileNotFoundError, ConnectionRefusedError):
            if i == tries - 1:
                raise
            time.sleep(0.02)


def recv_response(sock):
    buf = b""
    while not buf.endswith(b"\n"):
        chunk = sock.recv(65536)
        if not chunk:
            raise EOFError("server closed the connection mid-response")
        buf += chunk
    return buf.decode().strip()


def ask(sock, line):
    sock.sendall(line.strip().encode() + b"\n")
    return recv_response(sock)


def cmd_round(sock_path, prefix, req_files):
    results = [None] * len(req_files)

    def client(i, path):
        with open(path) as f:
            req = f.read()
        s = connect(sock_path)
        results[i] = ask(s, req)
        s.close()

    threads = [
        threading.Thread(target=client, args=(i, p))
        for i, p in enumerate(req_files)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for i, (path, body) in enumerate(zip(req_files, results)):
        resp = json.loads(body)
        want_id = json.loads(open(path).read())["id"]
        assert resp["status"] == "ok", f"{path}: {body}"
        assert resp["id"] == want_id, f"{path}: id {resp['id']} != {want_id}"
        with open(f"{prefix}{i}.txt", "w") as out:
            out.write(body + "\n")
    print(f"round: {len(req_files)} concurrent clients ok")


def req(id, **kw):
    body = {
        "schema_version": 1,
        "id": id,
        "source": {"kind": "kernel", "name": "matmul"},
    }
    body.update(kw)
    return json.dumps(body)


def cmd_probes(sock_path, server_pid):
    # Holds the single worker for seconds: per-access replay, both
    # caches, the store disabled so a previous smoke run can't have
    # warmed it into returning instantly.
    slow = req(
        "slow",
        n=160,
        replay="per-access",
        machines=["cache1", "cache2"],
        store="none",
    )
    light = req("light", n=16, machines=["cache2"], store="none")

    s_slow = connect(sock_path)
    s_slow.sendall(slow.encode() + b"\n")
    time.sleep(0.3)  # the event loop has certainly dispatched it

    s2 = connect(sock_path)
    over = json.loads(ask(s2, light))
    assert over["status"] == "overloaded" and over["retry_after_ms"] > 0, over
    print("probes: queue-full answered overloaded")

    probe = req("t0", n=16, timeout_ms=0, machines=["cache2"], store="none")
    timed = json.loads(ask(s2, probe))
    assert timed["status"] == "timeout" and timed["timeout_ms"] == 0, timed
    s2.close()
    print("probes: timeout_ms=0 answered typed timeout")

    # Graceful drain: stop the server while `slow` computes; the client
    # must still get its answer and the server must exit cleanly (the
    # wait in the workflow checks the exit status).
    os.kill(server_pid, signal.SIGTERM)
    done = json.loads(recv_response(s_slow))
    assert done["status"] == "ok" and done["id"] == "slow", done
    s_slow.close()
    print("probes: draining server answered the in-flight request")


def main():
    cmd = sys.argv[1]
    if cmd == "round":
        cmd_round(sys.argv[2], sys.argv[3], sys.argv[4:])
    elif cmd == "probes":
        cmd_probes(sys.argv[2], int(sys.argv[3]))
    else:
        sys.exit(f"unknown subcommand {cmd!r}")


if __name__ == "__main__":
    main()
