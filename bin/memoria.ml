(* memoria — the source-to-source data-locality optimizer.

   Reads a kernel in the Fortran-77-style mini-language (or a built-in
   kernel), analyses its loop nests with the cache-line cost model, and
   applies the compound transformation algorithm (permutation, fusion,
   distribution, reversal). *)

open Cmdliner
module Core = Locality_core
module Suite = Locality_suite
module Interp = Locality_interp
module Machine = Locality_cachesim.Machine
module Stats = Locality_stats
module Obs = Locality_obs.Obs
module Chrome = Locality_obs.Chrome
module Summary = Locality_obs.Summary
module Openmetrics = Locality_obs.Openmetrics
module Flame = Locality_obs.Flame
module Driver = Locality_driver.Driver
module Request = Locality_driver.Request
module Response = Locality_driver.Response
module Serve = Locality_serve.Serve
module Store = Locality_store.Store
module Telemetry = Locality_telemetry.Telemetry
module Record = Locality_telemetry.Record
module Health = Locality_telemetry.Health
open Locality_ir

(* All loading and measuring goes through the Driver pipeline; the
   subcommands only parse flags and format output. *)

let source_of ~kernel ~file =
  match (kernel, file) with
  | Some name, _ -> Ok (Driver.Source_kernel name)
  | None, Some path -> Ok (Driver.Source_file path)
  | None, None -> Error "give a FILE or --kernel NAME"

let load ~kernel ~file ~n =
  match source_of ~kernel ~file with
  | Error msg -> Error msg
  | Ok src -> Result.map snd (Driver.load ?n src)

(* ------------------------------------------------------- arguments --- *)

let file_arg =
  Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Kernel source file.")

let kernel_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "kernel"; "k" ] ~docv:"NAME" ~doc:"Use a built-in kernel instead of a file.")

let cls_arg =
  Arg.(
    value & opt int 4
    & info [ "cls" ] ~docv:"ELEMS" ~doc:"Cache line size in array elements.")

let n_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "n" ] ~docv:"N" ~doc:"Override the size parameter(s).")

let cache_arg =
  Arg.(
    value
    & opt (enum [ ("cache1", Machine.cache1); ("cache2", Machine.cache2) ])
        Machine.cache2
    & info [ "cache" ] ~docv:"CACHE"
        ~doc:"Cache geometry: cache1 (RS/6000) or cache2 (i860).")

let or_die = function
  | Ok v -> v
  | Error msg ->
    prerr_endline ("memoria: " ^ msg);
    exit 1

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Record the pipeline (parse, dependence analysis, compound \
           transformation, capture, replay) and write a Chrome \
           trace-event JSON file; open it in chrome://tracing or \
           Perfetto.")

let profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print a phase-timing and counter table to stderr after the run \
           (stdout stays byte-identical).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Export aggregated metrics (counters, gauges, histograms, \
           per-span totals) to FILE: OpenMetrics text, or JSON when FILE \
           ends in .json. Naming is documented in doc/SCHEMA.md.")

let flame_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "flame" ] ~docv:"FILE"
        ~doc:
          "Write span self times as collapsed stacks (flamegraph.pl / \
           speedscope input) to FILE.")

let replay_mode_name () =
  Interp.Measure.mode_to_string (Interp.Measure.replay_mode ())

let scale_arg =
  Arg.(
    value & opt int 1
    & info [ "scale" ] ~docv:"K"
        ~doc:
          "Geometry multiplier: run with an effective size of K times the \
           base (the $(b,-n) value, or 64 when absent). Large factors are \
           where the $(b,stream) and $(b,sample) replay modes pay off; the \
           layout stage rejects factors whose arrays would overflow the \
           traceable address space.")

let rate_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "rate" ] ~docv:"R"
        ~doc:
          "Sampling rate in (0, 1] for $(b,MEMORIA_REPLAY=sample): the \
           fraction of cache lines the SHARDS profiler tracks (default: \
           $(b,MEMORIA_SAMPLE_RATE) or 0.01). Ignored by the exact modes.")

(* Tracing harness for the commands that take
   [--trace]/[--profile]/[--metrics]/[--flame]: enable recording around
   [f], then export. Everything lands in files or on stderr so stdout
   is unchanged by any of the flags. When telemetry is on
   (MEMORIA_TELEMETRY=1 with a store), recording is enabled too and the
   run's digest is published into the store's telemetry/ namespace,
   keyed by [workload] so `memoria health` can compare like runs. *)
let with_obs ~cmd ~workload ~geometry ~jobs ~trace ~profile ~metrics ~flame f =
  let telemetry = Telemetry.enabled () in
  if trace = None && (not profile) && metrics = None && flame = None
     && not telemetry
  then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Obs.set_enabled true;
    Obs.reset ();
    let finish () =
      (* Derived gauges are emitted here, while recording is still on,
         so every exporter and the telemetry record see them. The store
         counters come from the process-global atomics: bench's at_exit
         summary runs after this drain, too late to observe. *)
      (let c = Store.counters () in
       let lookups = c.Store.hits + c.Store.misses in
       if lookups > 0 then
         Obs.gauge "store.hit_rate"
           (float_of_int c.Store.hits /. float_of_int lookups));
      let events = Obs.drain () in
      Obs.set_enabled false;
      let summary = lazy (Summary.of_events events) in
      Option.iter (fun path -> Chrome.write ~path events) trace;
      Option.iter
        (fun path -> Openmetrics.write ~path (Lazy.force summary))
        metrics;
      Option.iter (fun path -> Flame.write ~path events) flame;
      if profile then prerr_string (Stats.Profile.render (Lazy.force summary));
      if telemetry then
        Option.iter
          (fun store ->
            let s = Lazy.force summary in
            let record =
              {
                Record.ts_ns = Telemetry.now_epoch_ns ();
                cmd;
                workload;
                replay = replay_mode_name ();
                geometry;
                jobs;
                git = Telemetry.git_describe ();
                wall_ms = (Unix.gettimeofday () -. t0) *. 1000.0;
                phases =
                  List.map
                    (fun (r : Summary.span_row) ->
                      (r.Summary.name, Summary.ms r.Summary.total_ns))
                    s.Summary.spans;
                counters = s.Summary.counters;
                gauges = s.Summary.gauges;
              }
            in
            ignore (Telemetry.publish store record))
          (Store.default ())
    in
    Fun.protect ~finally:finish f
  end

(* -------------------------------------------------------- commands --- *)

let opt_cmd =
  let run file kernel cls n check interference_limit =
    let p = or_die (load ~kernel ~file ~n) in
    let p', stats = Core.Compound.run_program ?interference_limit ~cls p in
    print_endline (Pretty.program_to_string p');
    Printf.eprintf "; %d nests: %d already optimal, %d permuted, %d failed\n"
      (List.length stats.Core.Compound.nests)
      (List.length
         (List.filter
            (fun (s : Core.Compound.nest_stat) ->
              s.Core.Compound.orig_mem_order && s.Core.Compound.orig_inner_ok)
            stats.Core.Compound.nests))
      (List.length
         (List.filter
            (fun (s : Core.Compound.nest_stat) ->
              s.Core.Compound.permuted || s.Core.Compound.fused_enabling
              || s.Core.Compound.distributed)
            stats.Core.Compound.nests))
      (List.length
         (List.filter
            (fun (s : Core.Compound.nest_stat) ->
              not s.Core.Compound.final_inner_ok)
            stats.Core.Compound.nests));
    Printf.eprintf "; fusion: %d applied of %d candidates; distribution: %d\n"
      stats.Core.Compound.fusions_applied stats.Core.Compound.fusion_candidates
      stats.Core.Compound.distributions;
    if check then
      if Interp.Exec.equivalent ~tol:1e-6 p p' then
        prerr_endline "; semantics check: OK"
      else begin
        prerr_endline "; semantics check: FAILED";
        exit 2
      end
  in
  let check_arg =
    Arg.(
      value & flag
      & info [ "check" ]
          ~doc:"Interpret original and transformed programs and compare results.")
  in
  let interference_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "interference-limit" ] ~docv:"ARRAYS"
          ~doc:
            "Reject cross-nest fusions whose merged body touches more than \
             this many arrays (the correction the paper sketches in \
             section 5.5 for fusion-induced cache conflicts).")
  in
  Cmd.v
    (Cmd.info "opt" ~doc:"Optimize a program for data locality and print it.")
    Term.(
      const run $ file_arg $ kernel_arg $ cls_arg $ n_arg $ check_arg
      $ interference_arg)

let cost_cmd =
  let run file kernel cls n =
    let p = or_die (load ~kernel ~file ~n) in
    List.iteri
      (fun i nest ->
        Format.printf "nest %d:@." (i + 1);
        Format.printf "%a@." Core.Memorder.pp (Core.Memorder.compute ~cls nest))
      (Program.top_loops p)
  in
  Cmd.v
    (Cmd.info "cost" ~doc:"Print LoopCost and memory order for each nest.")
    Term.(const run $ file_arg $ kernel_arg $ cls_arg $ n_arg)

let deps_cmd =
  let run file kernel n dot =
    let p = or_die (load ~kernel ~file ~n) in
    List.iteri
      (fun i nest ->
        let deps = Locality_dep.Analysis.deps_in_nest nest in
        if dot then begin
          let labels =
            List.map (fun s -> s.Stmt.label) (Loop.statements nest)
          in
          let g = Locality_dep.Graph.build ~nodes:labels ~deps in
          print_string
            (Locality_dep.Graph.to_dot ~name:(Printf.sprintf "nest%d" (i + 1)) g)
        end
        else List.iter (fun d -> Format.printf "%a@." Locality_dep.Depend.pp d) deps)
      (Program.top_loops p)
  in
  let dot_arg =
    Arg.(
      value & flag
      & info [ "dot" ] ~doc:"Emit the statement dependence graph as Graphviz.")
  in
  Cmd.v
    (Cmd.info "deps" ~doc:"Print the data dependences of each nest.")
    Term.(const run $ file_arg $ kernel_arg $ n_arg $ dot_arg)

let tile_cmd =
  let run file kernel cls n band size auto cache =
    let p = or_die (load ~kernel ~file ~n) in
    match Program.top_loops p with
    | [ nest ] -> (
      let band =
        match band with
        | Some b -> String.split_on_char ',' b
        | None -> Core.Tiling.recommend ~cls nest
      in
      if band = [] then begin
        prerr_endline "memoria: no band given and nothing to recommend";
        exit 1
      end;
      let size =
        if not auto then size
        else begin
          (* Column-major: the self-interference stride is the leading
             dimension; take the largest one among the declared arrays. *)
          let param name =
            match List.assoc_opt name p.Program.params with
            | Some v -> v
            | None -> failwith name
          in
          let stride =
            List.fold_left
              (fun acc (d : Decl.t) ->
                match d.Decl.extents with
                | first :: _ :: _ -> (
                  match Expr.eval first param with
                  | v -> max acc v
                  | exception _ -> acc)
                | _ -> acc)
              0 p.Program.decls
          in
          if stride <= 0 then begin
            prerr_endline
              "memoria: --auto needs a 2-D array with a computable leading \
               dimension";
            exit 1
          end;
          let v =
            Locality_cachesim.Tilesize.choose cache ~elem_size:8 ~stride
          in
          Printf.eprintf
            "; auto tile size %d for stride %d on %s (footprint %d lines%s)\n"
            v.Locality_cachesim.Tilesize.tile stride
            cache.Locality_cachesim.Cache.name
            v.Locality_cachesim.Tilesize.footprint_lines
            (if v.Locality_cachesim.Tilesize.conflict_free then ""
             else ", conflicts");
          v.Locality_cachesim.Tilesize.tile
        end
      in
      Printf.eprintf "; tiling band {%s}, size %d\n"
        (String.concat ", " band)
        size;
      match Core.Tiling.tile ~sizes:size nest ~band with
      | None ->
        prerr_endline
          "memoria: band is not tileable (not contiguous, not fully \
           permutable, or bounds too complex)";
        exit 1
      | Some tiled ->
        let p' = Program.map_body (fun _ -> [ Loop.Loop tiled ]) p in
        print_endline (Pretty.program_to_string p'))
    | _ ->
      prerr_endline "memoria: tile expects a program with a single nest";
      exit 1
  in
  let band_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "band" ] ~docv:"L1,L2"
          ~doc:"Comma-separated loops to tile (default: recommendation).")
  in
  let size_arg =
    Arg.(value & opt int 16 & info [ "size" ] ~docv:"T" ~doc:"Tile size.")
  in
  let auto_arg =
    Arg.(
      value & flag
      & info [ "auto" ]
          ~doc:
            "Choose the tile size automatically (largest self-interference-free \
             tile for $(b,--cache), LRW91-style), overriding $(b,--size).")
  in
  Cmd.v
    (Cmd.info "tile" ~doc:"Tile a nest (Section 6) and print the result.")
    Term.(
      const run $ file_arg $ kernel_arg $ cls_arg $ n_arg $ band_arg $ size_arg
      $ auto_arg $ cache_arg)

let cgen_cmd =
  let run file kernel cls n opt driver =
    let p = or_die (load ~kernel ~file ~n) in
    let p = if opt then fst (Core.Compound.run_program ~cls p) else p in
    print_string (Pretty_c.program_to_c ~driver p)
  in
  let opt_flag =
    Arg.(
      value & flag
      & info [ "opt" ] ~doc:"Run the compound optimizer before emitting C.")
  in
  let driver_flag =
    Arg.(
      value & opt bool true
      & info [ "driver" ] ~docv:"BOOL"
          ~doc:"Include a main() that initialises arrays and prints a checksum.")
  in
  Cmd.v
    (Cmd.info "cgen"
       ~doc:"Emit the program as a self-contained C translation unit.")
    Term.(const run $ file_arg $ kernel_arg $ cls_arg $ n_arg $ opt_flag $ driver_flag)

(* One Request document in, one Response line out — the serve wire
   format on the CLI, which is what CI byte-diffs daemon replies
   against. Serve-side fields (timeout_ms, jobs) are inert here; a
   protocol-level failure still prints its envelope before exiting
   non-zero so the bytes match the daemon's. *)
let run_request_file path =
  let text =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  let resp =
    match Request.of_json text with
    | Error message -> Response.Failed { id = ""; message }
    | Ok req -> (
      match Request.to_config req with
      | Error message -> Response.Failed { id = req.Request.id; message }
      | Ok cfg -> (
        match req.Request.tune with
        | Some ts ->
          (* A tune object turns the request into a tuning query, same
             as it does daemon-side. *)
          Response.of_tune ~id:req.Request.id
            (Result.map Stats.Tune.to_json
               (Stats.Tune.run_config ~spec:(Stats.Tune.spec_of_request ts)
                  cfg))
        | None ->
          Response.of_run ~id:req.Request.id
            ~emit_program:req.Request.emit_program (Driver.run cfg)))
  in
  print_endline (Response.to_json resp);
  match resp with Response.Failed _ -> exit 1 | _ -> ()

let sim_cmd =
  let run file kernel cls n scale rate cache request trace profile metrics
      flame =
    match request with
    | Some path ->
      with_obs ~cmd:"sim"
        ~workload:("sim:request:" ^ Filename.basename path) ~geometry:"-"
        ~jobs:1 ~trace ~profile ~metrics ~flame (fun () ->
          run_request_file path)
    | None ->
      let target =
        match kernel with
        | Some k -> k
        | None -> (
          match file with Some f -> Filename.basename f | None -> "-")
      in
      let workload =
        Printf.sprintf "sim:%s:cls=%d:n=%s:cache=%s%s" target cls
          (match n with Some v -> string_of_int v | None -> "-")
          cache.Locality_cachesim.Cache.name
          (if scale = 1 then "" else Printf.sprintf ":scale=%d" scale)
      in
      with_obs ~cmd:"sim" ~workload
        ~geometry:cache.Locality_cachesim.Cache.name ~jobs:1 ~trace ~profile
        ~metrics ~flame (fun () ->
          let source =
            match (kernel, file) with
            | Some name, _ -> Request.Kernel name
            | None, Some path -> Request.File path
            | None, None -> or_die (Error "give a FILE or --kernel NAME")
          in
          let req =
            Request.make ?n ~scale ~cls
              ~machines:[ Request.machine_of_config cache ]
              ?sample_rate:rate source
          in
          let r = or_die (Driver.run (or_die (Request.to_config req))) in
          let m = List.hd r.Driver.measured in
          let before = m.Driver.original_run
          and after = m.Driver.transformed_run in
          Printf.printf "cache: %s\n" cache.Locality_cachesim.Cache.name;
          Printf.printf "original:    %8.4f modelled s, %6s%% hits\n"
            before.Interp.Measure.seconds
            (Stats.Report.fmt_pct
               (Interp.Measure.hit_rate before.Interp.Measure.whole));
          Printf.printf "transformed: %8.4f modelled s, %6s%% hits\n"
            after.Interp.Measure.seconds
            (Stats.Report.fmt_pct
               (Interp.Measure.hit_rate after.Interp.Measure.whole));
          Printf.printf "speedup: %.2fx\n" m.Driver.speedup)
  in
  let request_arg =
    Arg.(
      value
      & opt (some file) None
      & info [ "request" ] ~docv:"FILE"
          ~doc:
            "Run one serve-protocol request document (doc/PROTOCOL.md) and \
             print the response line — exactly what $(b,memoria serve) \
             would say for the same body. Other input flags are ignored.")
  in
  Cmd.v
    (Cmd.info "sim"
       ~doc:"Simulate cache behaviour of the original and optimized program.")
    Term.(
      const run $ file_arg $ kernel_arg $ cls_arg $ n_arg $ scale_arg
      $ rate_arg $ cache_arg $ request_arg $ trace_arg $ profile_arg
      $ metrics_arg $ flame_arg)

let tune_cmd =
  let run file kernel cls n scale cache jobs json quick top_k tiles unrolls
      max_candidates trace profile metrics flame =
    let target =
      match kernel with
      | Some k -> k
      | None -> (
        match file with Some f -> Filename.basename f | None -> "-")
    in
    let workload =
      Printf.sprintf "tune:%s:cls=%d:n=%s:cache=%s" target cls
        (match n with Some v -> string_of_int v | None -> "-")
        cache.Locality_cachesim.Cache.name
    in
    with_obs ~cmd:"tune" ~workload
      ~geometry:cache.Locality_cachesim.Cache.name
      ~jobs:(Option.value jobs ~default:1) ~trace ~profile ~metrics ~flame
      (fun () ->
        let source =
          match (kernel, file) with
          | Some name, _ -> Request.Kernel name
          | None, Some path -> Request.File path
          | None, None -> or_die (Error "give a FILE or --kernel NAME")
        in
        (* Through the typed request, like sim: the tune object below is
           exactly what a serve client would send for this search. *)
        let tune =
          {
            Request.t_top_k = top_k;
            t_tiles = tiles;
            t_unrolls = unrolls;
            t_max_candidates = max_candidates;
          }
        in
        let req =
          Request.make ?n ~scale ~cls
            ~machines:[ Request.machine_of_config cache ]
            ?jobs ~tune source
        in
        let spec =
          if quick then Stats.Tune.quick_spec
          else Stats.Tune.spec_of_request tune
        in
        let t =
          or_die
            (Stats.Tune.run_config ~spec ?jobs
               (or_die (Request.to_config req)))
        in
        if json then print_string (Stats.Tune.to_json t)
        else print_string (Stats.Tune.render t))
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domain-pool size for candidate screening (default: \
             $(b,MEMORIA_JOBS) or 1; the winner and every reported number \
             are identical at any value).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the tuning report as JSON instead of text.")
  in
  let quick_arg =
    Arg.(
      value & flag
      & info [ "quick" ]
          ~doc:
            "Use the cheap search profile (one tile size, one unroll \
             factor, one finalist) — the smoke-test band. Overrides the \
             space flags below.")
  in
  let top_k_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "top-k" ] ~docv:"K"
          ~doc:
            "Analytic finalists confirmed with the exact simulator \
             (default 5).")
  in
  let tiles_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "tiles" ] ~docv:"T,T,..."
          ~doc:"Tile-size band to search (default 8,16,32,64).")
  in
  let unrolls_arg =
    Arg.(
      value
      & opt (some (list int)) None
      & info [ "unrolls" ] ~docv:"U,U,..."
          ~doc:"Unroll-and-jam factors to search (default 2,4,8).")
  in
  let max_candidates_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-candidates" ] ~docv:"N"
          ~doc:
            "Enumeration cap; candidates beyond it are dropped and counted \
             in the report (default 4096).")
  in
  Cmd.v
    (Cmd.info "tune"
       ~doc:
         "Search the transformation space — structure (as-is, fused, \
          distributed) x loop permutation x tile size x unroll-and-jam \
          factor — for the candidate with the lowest simulated miss rate. \
          Every legal candidate is screened with the analytic model, the \
          top K finalists are confirmed with the exact simulator, and every \
          score is memoized in the store (kind $(b,tune)), so re-tuning and \
          overlapping searches are warm. Deterministic at any job count.")
    Term.(
      const run $ file_arg $ kernel_arg $ cls_arg $ n_arg $ scale_arg
      $ cache_arg $ jobs_arg $ json_arg $ quick_arg $ top_k_arg $ tiles_arg
      $ unrolls_arg $ max_candidates_arg $ trace_arg $ profile_arg
      $ metrics_arg $ flame_arg)

let explain_cmd =
  let run file kernel cls n json interference_limit compare tune cache metrics =
    let target =
      match kernel with
      | Some k -> k
      | None -> (
        match file with Some f -> Filename.basename f | None -> "-")
    in
    let workload =
      Printf.sprintf "explain:%s:cls=%d:n=%s:%s" target cls
        (match n with Some v -> string_of_int v | None -> "-")
        (if compare then "compare:" ^ cache.Locality_cachesim.Cache.name
         else "decisions")
    in
    (* The cache geometry only matters under --compare; the plain
       decision log never simulates, so its telemetry says so. *)
    let geometry =
      if compare then cache.Locality_cachesim.Cache.name else "-"
    in
    with_obs ~cmd:"explain" ~workload ~geometry ~jobs:1 ~trace:None
      ~profile:false ~metrics ~flame:None (fun () ->
        let src = or_die (source_of ~kernel ~file) in
        let name, p = or_die (Driver.load ?n src) in
        if compare then begin
          let c = Stats.Compare.run ~config:cache ~tune ~name p in
          (* Mean absolute error of the analytic model vs the simulator
             (percentage points, per-unit mean) — the accuracy signal
             `memoria health` watches for drift. *)
          (if Obs.enabled () then
             match c.Stats.Compare.c_verdict with
             | `Compared (rows, whole) ->
               let mean =
                 match rows with
                 | [] -> whole.Stats.Compare.r_abs_err
                 | rows ->
                   List.fold_left
                     (fun acc r -> acc +. r.Stats.Compare.r_abs_err)
                     0.0 rows
                   /. float_of_int (List.length rows)
               in
               Obs.gauge "analytic.abs_err_mean" mean;
               Obs.gauge "analytic.abs_err_whole"
                 whole.Stats.Compare.r_abs_err
             | `Fallback _ -> ());
          if json then print_string (Stats.Compare.to_json c)
          else print_string (Stats.Compare.render c)
        end
        else begin
          let ex = Stats.Explain.run ~cls ?interference_limit ~name p in
          if json then print_string (Stats.Explain.to_json ex)
          else print_string (Stats.Explain.render ex)
        end)
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the decision log as JSON instead of text.")
  in
  let interference_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "interference-limit" ] ~docv:"ARRAYS"
          ~doc:"Forwarded to the cross-nest fusion pass, as in $(b,opt).")
  in
  let compare_arg =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "Instead of the optimizer's decision log, print the closed-form \
             analytic locality model next to the trace-replay simulator: \
             per-nest miss rates from both, with the absolute error and the \
             formula the model used. Honours $(b,--json) and $(b,--cache).")
  in
  let tune_arg =
    Arg.(
      value & flag
      & info [ "tune" ]
          ~doc:
            "With $(b,--compare): also run the quick-profile transformation \
             search ($(b,memoria tune --quick)) and report its winner's \
             simulated miss rate beside the model-vs-simulator rows.")
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:
         "Run the compound optimizer and report, per nest, what it did and \
          why: the chosen action, the LoopCost evidence, and the legality \
          and profitability notes of every candidate it weighed. With \
          $(b,--compare), validate the analytic locality model against the \
          simulator instead.")
    Term.(
      const run $ file_arg $ kernel_arg $ cls_arg $ n_arg $ json_arg
      $ interference_arg $ compare_arg $ tune_arg $ cache_arg $ metrics_arg)

let unroll_cmd =
  let run file kernel n loop factor replace =
    let p = or_die (load ~kernel ~file ~n) in
    match Program.top_loops p with
    | [ nest ] -> (
      let loop =
        match loop with
        | Some l -> l
        | None -> (
          (* default: the outermost loop *)
          match Loop.loops_on_spine nest with
          | h :: _ -> h.Loop.index
          | [] ->
            prerr_endline "memoria: nest has no loops";
            exit 1)
      in
      let factor =
        match factor with
        | Some f -> f
        | None ->
          let best, options = Core.Unroll.choose_factor nest ~loop in
          List.iter
            (fun (b : Core.Unroll.balance) ->
              Printf.eprintf
                "; u=%d: %d regs, %.3f mem/iter, %.1f flops/iter\n"
                b.Core.Unroll.factor b.Core.Unroll.scalars
                b.Core.Unroll.mem_per_orig_iter b.Core.Unroll.flops_per_orig_iter)
            options;
          Printf.eprintf "; balance-chosen factor: %d\n" best.Core.Unroll.factor;
          best.Core.Unroll.factor
      in
      if factor < 2 then begin
        print_endline (Pretty.program_to_string p);
        exit 0
      end;
      match Core.Unroll.unroll_and_jam nest ~loop ~factor with
      | None ->
        prerr_endline
          "memoria: unroll-and-jam refused (imperfect nest, innermost loop, \
           dependent bounds, or jamming illegal)";
        exit 1
      | Some block ->
        let block =
          if not replace then block
          else begin
            let replaced = ref 0 in
            let block' =
              Core.Unroll.map_main block ~loop ~factor ~f:(fun main ->
                  let sr = Core.Scalar_replacement.apply main in
                  replaced := sr.Core.Scalar_replacement.replaced;
                  sr.Core.Scalar_replacement.nest)
            in
            Printf.eprintf "; scalar replacement: %d references\n" !replaced;
            Option.value ~default:block block'
          end
        in
        let p' = Program.map_body (fun _ -> block) p in
        print_endline (Pretty.program_to_string p'))
    | _ ->
      prerr_endline "memoria: unroll expects a program with a single nest";
      exit 1
  in
  let loop_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "loop" ] ~docv:"INDEX"
          ~doc:"Loop to unroll and jam (default: the outermost).")
  in
  let factor_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "factor" ] ~docv:"U"
          ~doc:
            "Unroll factor; omitted, the CCK90-style balance model chooses \
             among 2, 4 and 8 under a 16-register budget.")
  in
  let replace_arg =
    Arg.(
      value & flag
      & info [ "replace" ]
          ~doc:"Scalar-replace the jammed main nest (registers).")
  in
  Cmd.v
    (Cmd.info "unroll"
       ~doc:"Unroll-and-jam a nest (the paper's step 3) and print the result.")
    Term.(
      const run $ file_arg $ kernel_arg $ n_arg $ loop_arg $ factor_arg
      $ replace_arg)

let kernels_cmd =
  let run () =
    List.iter (fun (name, _) -> print_endline name) Suite.Kernels.all
  in
  Cmd.v
    (Cmd.info "kernels" ~doc:"List built-in kernels usable with --kernel.")
    Term.(const run $ const ())

let suite_cmd =
  let run cls n scale rate jobs trace profile metrics flame =
    let n = Option.value n ~default:64 in
    let module Pool = Locality_par.Pool in
    let jobs = match jobs with Some j -> j | None -> Pool.default_jobs () in
    let workload =
      Printf.sprintf "suite:n=%d:cls=%d:jobs=%d%s" n cls jobs
        (if scale = 1 then "" else Printf.sprintf ":scale=%d" scale)
    in
    let rows =
      with_obs ~cmd:"suite" ~workload ~geometry:"cache1+cache2" ~jobs ~trace
        ~profile ~metrics ~flame (fun () ->
          Pool.map ~jobs
            (fun (name, _) ->
              Obs.span ("kernel:" ^ name) (fun () ->
                  let req =
                    Request.make ~n ~scale ~cls
                      ~machines:[ Request.Named "cache1"; Request.Named "cache2" ]
                      ?sample_rate:rate ~jobs (Request.Kernel name)
                  in
                  (* Driver.run's errors already carry the kernel name
                     ("<name>: <detail>"); rows forward them verbatim. *)
                  match
                    Result.bind (Request.to_config req) Driver.run
                  with
                  | Error msg -> Error msg
                  | Ok { Driver.measured = [ m1; m2 ]; _ } ->
                    Ok
                      (Printf.sprintf "%-16s %10.4f %10.4f %9.2fx %9.2fx" name
                         m1.Driver.original_run.Interp.Measure.seconds
                         m1.Driver.transformed_run.Interp.Measure.seconds
                         m1.Driver.speedup m2.Driver.speedup)
                  | Ok _ -> Error (name ^ ": unexpected measurement shape")))
            Suite.Kernels.all)
    in
    Printf.printf "; n=%d cls=%d jobs=%d (each kernel interpreted once per \
                   version, traces replayed on both caches)\n"
      n cls jobs;
    Printf.printf "%-16s %10s %10s %10s %10s\n" "kernel" "orig(s)" "opt(s)"
      "speedup1" "speedup2";
    List.iter (function Ok line -> print_endline line | Error _ -> ()) rows;
    let failures =
      List.filter_map (function Ok _ -> None | Error msg -> Some msg) rows
    in
    if failures <> [] then begin
      List.iter (fun msg -> Printf.eprintf "memoria: %s\n" msg) failures;
      exit 1
    end
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domain-pool size for per-kernel simulations (default: \
             $(b,MEMORIA_JOBS) or the recommended domain count; 1 = \
             sequential).")
  in
  Cmd.v
    (Cmd.info "suite"
       ~doc:
         "Optimize and simulate every built-in kernel in parallel, printing \
          modelled speedups on both cache geometries.")
    Term.(
      const run $ cls_arg $ n_arg $ scale_arg $ rate_arg $ jobs_arg
      $ trace_arg $ profile_arg $ metrics_arg $ flame_arg)

let store_cmd =
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:"Store directory (default: $(b,MEMORIA_STORE)).")
  in
  let get_store dir =
    match dir with
    | Some d -> Store.open_root d
    | None -> (
      match Store.default () with
      | Some s -> s
      | None ->
        prerr_endline "memoria: no store (give --dir or set MEMORIA_STORE)";
        exit 1)
  in
  (* Raw byte counts stay (scripts parse them); the human-readable form
     rides alongside in parentheses. *)
  let human_bytes n =
    if n >= 1 lsl 20 then
      Printf.sprintf "%.1f MiB" (float_of_int n /. 1048576.0)
    else if n >= 1024 then Printf.sprintf "%.1f KiB" (float_of_int n /. 1024.0)
    else Printf.sprintf "%d B" n
  in
  let with_store_obs ~sub ~metrics f =
    with_obs ~cmd:"store" ~workload:("store:" ^ sub) ~geometry:"-" ~jobs:1
      ~trace:None ~profile:false ~metrics ~flame:None f
  in
  let stats_cmd =
    let run dir metrics =
      with_store_obs ~sub:"stats" ~metrics (fun () ->
          let s = get_store dir in
          let d = Store.disk_stats s in
          Printf.printf "root: %s\n" (Store.root s);
          Printf.printf "entries: %d\n" d.Store.entries;
          Printf.printf "bytes: %d (%s)\n" d.Store.bytes
            (human_bytes d.Store.bytes);
          Printf.printf "quarantined: %d\n" d.Store.quarantined)
    in
    Cmd.v
      (Cmd.info "stats" ~doc:"Print entry count, total size and quarantine size.")
      Term.(const run $ dir_arg $ metrics_arg)
  in
  let verify_cmd =
    let run dir metrics =
      with_store_obs ~sub:"verify" ~metrics (fun () ->
          let s = get_store dir in
          let ok, bad = Store.verify s in
          Printf.printf "ok: %d\nquarantined: %d\n" ok bad;
          if bad > 0 then exit 1)
    in
    Cmd.v
      (Cmd.info "verify"
         ~doc:
           "Checksum every entry, quarantining damaged ones; exits non-zero \
            if any entry failed.")
      Term.(const run $ dir_arg $ metrics_arg)
  in
  let gc_cmd =
    let max_bytes_arg =
      Arg.(
        required
        & opt (some int) None
        & info [ "max-bytes" ] ~docv:"BYTES"
            ~doc:"Target store size; least-recently-used entries go first.")
    in
    let min_age_arg =
      Arg.(
        value & opt float 0.
        & info [ "min-age" ] ~docv:"SECONDS"
            ~doc:
              "Never evict entries younger than this many seconds, even when \
               the store stays over $(b,--max-bytes) — protects objects a \
               concurrent run (e.g. a serve worker) just published.")
    in
    let run dir max_bytes min_age metrics =
      with_store_obs ~sub:"gc" ~metrics (fun () ->
          let s = get_store dir in
          let deleted, remaining = Store.gc ~min_age_s:min_age s ~max_bytes in
          Printf.printf "deleted: %d\nbytes: %d (%s)\n" deleted remaining
            (human_bytes remaining))
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Empty the quarantine and evict least-recently-used entries until \
            the store fits in $(b,--max-bytes); $(b,--min-age) exempts the \
            newest entries.")
      Term.(const run $ dir_arg $ max_bytes_arg $ min_age_arg $ metrics_arg)
  in
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Inspect and maintain the content-addressed experiment store \
          ($(b,MEMORIA_STORE)): cached trace captures and simulation \
          results keyed by program text, transform configuration and cache \
          geometry.")
    [ stats_cmd; verify_cmd; gc_cmd ]

let serve_cmd =
  let run socket stdio jobs max_queue timeout_ms retry_after_ms gc_every
      gc_max_bytes gc_min_age max_conns write_timeout trace profile metrics
      flame =
    let listen =
      match (socket, stdio) with
      | Some path, false -> Serve.Socket path
      | None, true -> Serve.Stdio
      | Some _, true -> or_die (Error "give --socket PATH or --stdio, not both")
      | None, false -> or_die (Error "give --socket PATH or --stdio")
    in
    let options =
      {
        Serve.default_options with
        Serve.jobs;
        max_queue;
        default_timeout_ms = timeout_ms;
        retry_after_ms;
        gc_every_s = gc_every;
        gc_max_bytes;
        gc_min_age_s = gc_min_age;
        max_conns;
        write_timeout_s = write_timeout;
      }
    in
    let jobs_resolved =
      match jobs with
      | Some j -> j
      | None -> Locality_par.Pool.default_jobs ()
    in
    let workload =
      match listen with
      | Serve.Socket _ -> "serve:socket"
      | Serve.Stdio -> "serve:stdio"
    in
    with_obs ~cmd:"serve" ~workload ~geometry:"-" ~jobs:jobs_resolved ~trace
      ~profile ~metrics ~flame (fun () ->
        let t = Serve.create ~options listen in
        Serve.install_signal_handlers t;
        Serve.run t)
  in
  let socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ] ~docv:"PATH"
          ~doc:"Listen on a Unix-domain socket at PATH (created; unlinked on \
                exit).")
  in
  let stdio_arg =
    Arg.(
      value & flag
      & info [ "stdio" ]
          ~doc:"Serve stdin to stdout instead of a socket; EOF drains and \
                exits.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Worker-domain count (default: $(b,MEMORIA_JOBS) or the \
             recommended domain count).")
  in
  let max_queue_arg =
    Arg.(
      value
      & opt int Serve.default_options.Serve.max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "In-flight request bound; beyond it clients get an immediate \
             $(b,overloaded) response with a retry hint.")
  in
  let timeout_arg =
    Arg.(
      value
      & opt int Serve.default_options.Serve.default_timeout_ms
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Default per-request deadline for requests that carry none; 0 \
             means unbounded. Expired requests get a typed $(b,timeout) \
             response.")
  in
  let retry_after_arg =
    Arg.(
      value
      & opt int Serve.default_options.Serve.retry_after_ms
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:"Retry hint carried by $(b,overloaded) responses.")
  in
  let gc_every_arg =
    Arg.(
      value & opt float 0.
      & info [ "gc-every" ] ~docv:"SECONDS"
          ~doc:
            "Run $(b,store gc) over the ambient store ($(b,MEMORIA_STORE)) \
             every SECONDS while serving; 0 disables the tick.")
  in
  let gc_max_bytes_arg =
    Arg.(
      value
      & opt int Serve.default_options.Serve.gc_max_bytes
      & info [ "gc-max-bytes" ] ~docv:"BYTES"
          ~doc:"Store size target for the periodic gc tick.")
  in
  let gc_min_age_arg =
    Arg.(
      value
      & opt float Serve.default_options.Serve.gc_min_age_s
      & info [ "gc-min-age" ] ~docv:"SECONDS"
          ~doc:
            "Entries younger than this survive every gc tick (see \
             $(b,memoria store gc --min-age)).")
  in
  let max_conns_arg =
    Arg.(
      value
      & opt int Serve.default_options.Serve.max_conns
      & info [ "max-conns" ] ~docv:"N"
          ~doc:
            "Open-connection cap (kept below $(b,select)'s FD_SETSIZE); an \
             accept beyond it is answered $(b,overloaded) and closed.")
  in
  let write_timeout_arg =
    Arg.(
      value
      & opt float Serve.default_options.Serve.write_timeout_s
      & info [ "write-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Write-stall budget per response line: a client that stops \
             reading for this long has its replies dropped instead of \
             blocking a worker.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the analysis daemon: accept line-delimited request documents \
          (doc/PROTOCOL.md) over a Unix-domain socket or stdio, dispatch \
          them across a persistent worker-domain pool sharing the warm \
          $(b,MEMORIA_STORE), and answer each with one typed response line. \
          Identical in-flight requests are computed once; deadlines, queue \
          bounds and shutdown drain all answer with typed responses. \
          SIGINT/SIGTERM drain gracefully.")
    Term.(
      const run $ socket_arg $ stdio_arg $ jobs_arg $ max_queue_arg
      $ timeout_arg $ retry_after_arg $ gc_every_arg $ gc_max_bytes_arg
      $ gc_min_age_arg $ max_conns_arg $ write_timeout_arg $ trace_arg
      $ profile_arg $ metrics_arg $ flame_arg)

let fuzz_cmd =
  let module Fuzz = Locality_fuzz in
  let run seed count max_size oracles corpus jobs trace profile metrics flame =
    let oracles =
      match oracles with
      | [] -> Fuzz.Oracle.all
      | names -> List.map (fun s -> or_die (Fuzz.Oracle.kind_of_string s)) names
    in
    let workload =
      Printf.sprintf "fuzz:seed=%d:count=%d:max-size=%d" seed count max_size
    in
    (* Mirror what the harness actually does: the pool resolves an
       absent -j itself, and the replay/analytic/sample oracles simulate
       on both reference geometries — "-"/0 used to make `memoria
       health` group fuzz runs with unlike configurations. *)
    let jobs_resolved =
      match jobs with
      | Some j -> j
      | None -> Locality_par.Pool.default_jobs ()
    in
    let outcome =
      with_obs ~cmd:"fuzz" ~workload ~geometry:"cache1+cache2"
        ~jobs:jobs_resolved ~trace ~profile ~metrics ~flame (fun () ->
          Obs.span "fuzz" (fun () ->
              Fuzz.Harness.run ?jobs ?corpus_dir:corpus ~seed ~count ~max_size
                ~oracles ()))
    in
    Printf.printf "fuzz: seed=%d count=%d max-size=%d oracles=%s\n" seed count
      max_size
      (String.concat "," (List.map Fuzz.Oracle.kind_to_string oracles));
    (match outcome.Fuzz.Harness.failures with
    | [] -> Printf.printf "generated %d programs: no oracle failures\n" count
    | failures ->
      Printf.printf "generated %d programs: %d with oracle failures\n" count
        (List.length failures);
      List.iter
        (fun (f : Fuzz.Harness.failure) ->
          Printf.printf "\n--- index %d (%d shrink steps) ---\n" f.index
            f.shrink_steps;
          List.iter
            (fun (fd : Fuzz.Oracle.finding) ->
              Printf.printf "  [%s] %s\n"
                (Fuzz.Oracle.kind_to_string fd.Fuzz.Oracle.kind)
                fd.Fuzz.Oracle.detail)
            f.findings;
          print_endline (Pretty.program_to_string f.shrunk))
        failures);
    List.iter
      (fun path -> Printf.printf "reproducer written: %s\n" path)
      outcome.Fuzz.Harness.corpus_files;
    if outcome.Fuzz.Harness.failures <> [] then exit 1
  in
  let seed_arg =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Master seed of the campaign.")
  in
  let count_arg =
    Arg.(
      value & opt int 500
      & info [ "count" ] ~docv:"N" ~doc:"Number of programs to generate.")
  in
  let max_size_arg =
    Arg.(
      value & opt int 24
      & info [ "max-size" ] ~docv:"N"
          ~doc:"Size budget per program (loops plus statements).")
  in
  let oracle_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "oracle" ] ~docv:"NAMES"
          ~doc:
            "Comma-separated oracles to run: $(b,exec) (transform \
             semantics under the interpreter), $(b,replay) (v1 vs v2 \
             trace replay), $(b,roundtrip) (pretty-print/reparse), \
             $(b,cgen) (native C checksum), $(b,analytic) (closed-form \
             locality model vs the simulator), $(b,sample) (SHARDS \
             sampled profile vs exact reuse analysis). Default: all.")
  in
  let corpus_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "corpus" ] ~docv:"DIR"
          ~doc:"Write shrunk reproducers for any failure into DIR.")
  in
  let jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Domain-pool size (default: $(b,MEMORIA_JOBS) or the \
             recommended domain count); the outcome is identical at any \
             value.")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differentially fuzz the pipeline: generate random loop nests and \
          check transform semantics, trace replay, the frontend round trip \
          and the native backend against each other; shrink and report any \
          disagreement.")
    Term.(
      const run $ seed_arg $ count_arg $ max_size_arg $ oracle_arg
      $ corpus_arg $ jobs_arg $ trace_arg $ profile_arg $ metrics_arg
      $ flame_arg)

let health_cmd =
  let run dir json window drift_pct noise_ms hit_drop fallback_rise abs_err =
    let records =
      match dir with
      | Some d -> Telemetry.load_dir d
      | None -> (
        match Store.default () with
        | Some s -> Telemetry.load s
        | None ->
          prerr_endline
            "memoria: no telemetry history (set MEMORIA_STORE or give --dir)";
          exit 1)
    in
    let thresholds =
      {
        Health.window;
        phase_drift_pct = drift_pct;
        phase_noise_ms = noise_ms;
        hit_rate_drop = hit_drop;
        fallback_rise;
        abs_err_rise = abs_err;
      }
    in
    let report = Health.run ~thresholds records in
    if json then print_string (Health.to_json report)
    else print_string (Health.render report);
    if report.Health.flagged <> [] then exit 1
  in
  let dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dir" ] ~docv:"DIR"
          ~doc:
            "Telemetry directory (default: the telemetry/ namespace under \
             $(b,MEMORIA_STORE)).")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the report as JSON instead of text.")
  in
  let window_arg =
    Arg.(
      value
      & opt int Health.default_thresholds.Health.window
      & info [ "window" ] ~docv:"N"
          ~doc:"Prior runs per workload feeding the baseline median.")
  in
  let drift_arg =
    Arg.(
      value
      & opt float Health.default_thresholds.Health.phase_drift_pct
      & info [ "drift-pct" ] ~docv:"PCT"
          ~doc:"Allowed wall/phase slowdown over baseline, in percent.")
  in
  let noise_arg =
    Arg.(
      value
      & opt float Health.default_thresholds.Health.phase_noise_ms
      & info [ "noise-ms" ] ~docv:"MS"
          ~doc:"Absolute noise floor: smaller time drifts never flag.")
  in
  let hit_drop_arg =
    Arg.(
      value
      & opt float Health.default_thresholds.Health.hit_rate_drop
      & info [ "hit-rate-drop" ] ~docv:"RATE"
          ~doc:"Allowed warm store hit-rate drop (absolute, 0-1).")
  in
  let fallback_arg =
    Arg.(
      value
      & opt float Health.default_thresholds.Health.fallback_rise
      & info [ "fallback-rise" ] ~docv:"RATE"
          ~doc:"Allowed analytic fallback-rate rise (absolute, 0-1).")
  in
  let abs_err_arg =
    Arg.(
      value
      & opt float Health.default_thresholds.Health.abs_err_rise
      & info [ "abs-err-rise" ] ~docv:"PTS"
          ~doc:
            "Allowed rise of the analytic model's mean absolute error \
             (percentage points, from $(b,explain --compare)).")
  in
  Cmd.v
    (Cmd.info "health"
       ~doc:
         "Read the persisted run telemetry (see $(b,MEMORIA_TELEMETRY)) and \
          compare each workload's newest run against its rolling baseline \
          (median of the previous runs with the same workload key). Flags \
          wall/phase slowdowns, warm store hit-rate drops, analytic \
          fallback-rate rises and analytic accuracy drift; exits non-zero \
          when anything is flagged.")
    Term.(
      const run $ dir_arg $ json_arg $ window_arg $ drift_arg $ noise_arg
      $ hit_drop_arg $ fallback_arg $ abs_err_arg)

let main =
  Cmd.group
    (Cmd.info "memoria" ~version:"1.0.0"
       ~doc:
         "Compiler optimizations for improving data locality (Carr, \
          McKinley & Tseng, ASPLOS 1994)."
       ~envs:
         [
           Cmd.Env.info "MEMORIA_JOBS"
             ~doc:
               "Domain-pool size for parallel simulations (1 = sequential; \
                output is identical at any value).";
           Cmd.Env.info "MEMORIA_REPLAY"
             ~doc:
               "Measurement backend: $(b,per-access) forces the flat v1 \
                record stream; $(b,stream) fuses capture and simulation so \
                no trace is materialised (bit-identical statistics in O(chunk) \
                memory at any problem size); $(b,sample) builds a SHARDS \
                hash-sampled reuse-distance profile instead of simulating \
                exactly (see $(b,MEMORIA_SAMPLE_RATE)); $(b,analytic) skips \
                tracing and asks the closed-form locality model \
                (simulator-equal on programs it certifies exact, sound \
                estimates elsewhere, automatic fallback to simulation when \
                out of scope); any other value (or unset) uses the \
                run-compressed v2 trace format, which is several times \
                faster than v1 and produces bit-identical statistics.";
           Cmd.Env.info "MEMORIA_SAMPLE_RATE"
             ~doc:
               "Sampling rate in (0, 1] for $(b,MEMORIA_REPLAY=sample) \
                (default 0.01): the expected fraction of cache lines the \
                SHARDS profiler tracks. The $(b,--rate) flag overrides it.";
           Cmd.Env.info "MEMORIA_STORE"
             ~doc:
               "Directory of the content-addressed experiment store. When \
                set, trace captures and simulation results are reused \
                across runs (byte-identical output); unset disables \
                caching. See $(b,memoria store).";
           Cmd.Env.info "MEMORIA_TELEMETRY"
             ~doc:
               "Set to $(b,1) (with $(b,MEMORIA_STORE) configured) to record \
                one telemetry JSON record per invocation under the store's \
                telemetry/ namespace: phase times, store and analytic \
                counters, replay mode and geometry. $(b,memoria health) \
                compares the history. Any other value disables recording.";
         ])
    [
      opt_cmd; cost_cmd; deps_cmd; sim_cmd; tune_cmd; explain_cmd; tile_cmd;
      unroll_cmd; cgen_cmd; kernels_cmd; suite_cmd; serve_cmd; fuzz_cmd;
      store_cmd; health_cmd;
    ]

let () = exit (Cmd.eval main)
