type loc = { line : int; col : int }

let pp_loc l = Printf.sprintf "%d:%d" l.line l.col

exception Error of string * loc

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let keyword s =
  match String.uppercase_ascii s with
  | "PROGRAM" -> Some Token.KW_PROGRAM
  | "PARAMETER" -> Some Token.KW_PARAMETER
  | "REAL" | "DOUBLE" | "DIMENSION" -> Some Token.KW_REAL
  | "DO" -> Some Token.KW_DO
  | "ENDDO" -> Some Token.KW_ENDDO
  | "END" -> Some Token.KW_END
  | _ -> None

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let line_start = ref 0 in
  let i = ref 0 in
  let loc () = { line = !line; col = !i - !line_start + 1 } in
  let emit t = tokens := (t, loc ()) :: !tokens in
  let emit_at l t = tokens := (t, l) :: !tokens in
  let last_was_newline () =
    match !tokens with (Token.NEWLINE, _) :: _ | [] -> true | _ -> false
  in
  (* A column-1 [C ] line is a Fortran comment — unless its first
     non-blank continuation is [=], which makes it an assignment to the
     scalar C ([C = 2.0] is a statement, not a comment). *)
  let c_comment_starts_here () =
    !i = !line_start
    && !i + 1 < n
    && src.[!i + 1] = ' '
    &&
    let j = ref (!i + 1) in
    while !j < n && (src.[!j] = ' ' || src.[!j] = '\t') do
      incr j
    done;
    not (!j < n && src.[!j] = '=')
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      if not (last_was_newline ()) then emit Token.NEWLINE;
      incr i;
      incr line;
      line_start := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then begin
      incr i
    end
    else if c = '!' || ((c = 'C' || c = 'c') && c_comment_starts_here ())
    then begin
      (* Comment to end of line. *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else begin
      let start_loc = loc () in
      if is_digit c then begin
        let start = !i in
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        if
          !i < n && src.[!i] = '.'
          && not (!i + 1 < n && is_alpha src.[!i + 1])
        then begin
          incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done;
          (* exponent *)
          if !i < n && (src.[!i] = 'e' || src.[!i] = 'E' || src.[!i] = 'd' || src.[!i] = 'D')
          then begin
            incr i;
            if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
            while !i < n && is_digit src.[!i] do
              incr i
            done
          end;
          let text =
            String.map
              (fun c -> if c = 'd' || c = 'D' then 'e' else c)
              (String.sub src start (!i - start))
          in
          match float_of_string_opt text with
          | Some f -> emit_at start_loc (Token.FLOAT f)
          | None ->
            raise (Error (Printf.sprintf "bad number %s" text, start_loc))
        end
        else
          let text = String.sub src start (!i - start) in
          emit_at start_loc (Token.INT (int_of_string text))
      end
      else if is_alpha c then begin
        let start = !i in
        while !i < n && is_alnum src.[!i] do
          incr i
        done;
        let text = String.sub src start (!i - start) in
        match keyword text with
        | Some kw ->
          emit_at start_loc kw;
          (* Swallow the *8 of REAL*8. *)
          if kw = Token.KW_REAL && !i < n && src.[!i] = '*' then begin
            incr i;
            while !i < n && is_digit src.[!i] do
              incr i
            done
          end
        | None -> emit_at start_loc (Token.IDENT text)
      end
      else begin
        (match c with
        | '(' -> emit Token.LPAREN
        | ')' -> emit Token.RPAREN
        | ',' -> emit Token.COMMA
        | '=' -> emit Token.EQUAL
        | '+' -> emit Token.PLUS
        | '-' -> emit Token.MINUS
        | '*' -> emit Token.STAR
        | '/' -> emit Token.SLASH
        | c ->
          raise
            (Error (Printf.sprintf "unexpected character %c" c, start_loc)));
        incr i
      end
    end
  done;
  if not (last_was_newline ()) then emit Token.NEWLINE;
  emit Token.EOF;
  List.rev !tokens
