(** Recursive-descent parser for the kernel language.

    Grammar sketch (newline-terminated statements):
    {v
    program   ::= PROGRAM id nl { PARAMETER ( id = int ) nl }
                  { REAL decl {, decl} nl } stmt* END nl?
    decl      ::= id ( expr {, expr} )
    stmt      ::= DO id = expr , expr [, int] nl stmt* ENDDO nl
                | lvalue = expr nl
    lvalue    ::= id [ ( expr {, expr} ) ]
    expr      ::= term  { ("+" | "-") term }
    term      ::= factor { ("*" | "/") factor }
    factor    ::= [-] atom
    atom      ::= number | id [ ( expr {, expr} ) ] | ( expr )
    v} *)

exception Error of string * Lexer.loc
(** message (naming the offending token), position *)

val parse : string -> Ast.program
(** @raise Error on syntax errors; @raise Lexer.Error on lexical errors. *)
