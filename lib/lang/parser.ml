exception Error of string * Lexer.loc

type state = { mutable toks : (Token.t * Lexer.loc) list }

let peek st = match st.toks with (t, _) :: _ -> t | [] -> Token.EOF

let loc st =
  match st.toks with
  | (_, l) :: _ -> l
  | [] -> { Lexer.line = 0; col = 0 }

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let fail st msg = raise (Error (msg, loc st))

let expect st tok =
  if peek st = tok then advance st
  else
    fail st
      (Printf.sprintf "expected %s, found %s" (Token.to_string tok)
         (Token.to_string (peek st)))

let skip_newlines st =
  while peek st = Token.NEWLINE do
    advance st
  done

let ident st =
  match peek st with
  | Token.IDENT s ->
    advance st;
    s
  | t -> fail st (Printf.sprintf "expected identifier, found %s" (Token.to_string t))

let integer st =
  match peek st with
  | Token.INT n ->
    advance st;
    n
  | Token.MINUS ->
    advance st;
    (match peek st with
    | Token.INT n ->
      advance st;
      -n
    | t -> fail st (Printf.sprintf "expected integer, found %s" (Token.to_string t)))
  | t -> fail st (Printf.sprintf "expected integer, found %s" (Token.to_string t))

(* ------------------------------------------------------- expressions *)

let rec parse_expr st =
  let lhs = parse_term st in
  let rec go lhs =
    match peek st with
    | Token.PLUS ->
      advance st;
      go (Ast.Bin (Ast.Add, lhs, parse_term st))
    | Token.MINUS ->
      advance st;
      go (Ast.Bin (Ast.Sub, lhs, parse_term st))
    | _ -> lhs
  in
  go lhs

and parse_term st =
  let lhs = parse_factor st in
  let rec go lhs =
    match peek st with
    | Token.STAR ->
      advance st;
      go (Ast.Bin (Ast.Mul, lhs, parse_factor st))
    | Token.SLASH ->
      advance st;
      go (Ast.Bin (Ast.Div, lhs, parse_factor st))
    | _ -> lhs
  in
  go lhs

and parse_factor st =
  match peek st with
  | Token.MINUS ->
    advance st;
    Ast.Neg (parse_factor st)
  | Token.PLUS ->
    advance st;
    parse_factor st
  | _ -> parse_atom st

and parse_atom st =
  match peek st with
  | Token.INT n ->
    advance st;
    Ast.Num_int n
  | Token.FLOAT f ->
    advance st;
    Ast.Num_float f
  | Token.LPAREN ->
    advance st;
    let e = parse_expr st in
    expect st Token.RPAREN;
    e
  | Token.IDENT name ->
    advance st;
    if peek st = Token.LPAREN then begin
      advance st;
      let args = parse_args st in
      expect st Token.RPAREN;
      Ast.Call (name, args)
    end
    else Ast.Id name
  | t -> fail st (Printf.sprintf "expected expression, found %s" (Token.to_string t))

and parse_args st =
  let first = parse_expr st in
  let rec go acc =
    if peek st = Token.COMMA then begin
      advance st;
      go (parse_expr st :: acc)
    end
    else List.rev acc
  in
  go [ first ]

(* --------------------------------------------------------- statements *)

let rec parse_stmts st ~stop =
  skip_newlines st;
  match peek st with
  | t when List.mem t stop -> []
  | Token.KW_DO ->
    let s = parse_do st in
    s :: parse_stmts st ~stop
  | Token.IDENT _ ->
    let s = parse_assign st in
    s :: parse_stmts st ~stop
  | t ->
    fail st (Printf.sprintf "expected statement, found %s" (Token.to_string t))

and parse_do st =
  expect st Token.KW_DO;
  let index = ident st in
  expect st Token.EQUAL;
  let lb = parse_expr st in
  expect st Token.COMMA;
  let ub = parse_expr st in
  let step =
    if peek st = Token.COMMA then begin
      advance st;
      integer st
    end
    else 1
  in
  expect st Token.NEWLINE;
  let body = parse_stmts st ~stop:[ Token.KW_ENDDO ] in
  expect st Token.KW_ENDDO;
  expect st Token.NEWLINE;
  Ast.Do { index; lb; ub; step; body }

and parse_assign st =
  let name = ident st in
  let subs =
    if peek st = Token.LPAREN then begin
      advance st;
      let args = parse_args st in
      expect st Token.RPAREN;
      Some args
    end
    else None
  in
  expect st Token.EQUAL;
  let rhs = parse_expr st in
  expect st Token.NEWLINE;
  Ast.Assign { name; subs; rhs }

(* ------------------------------------------------------------ program *)

let parse_parameter st =
  expect st Token.KW_PARAMETER;
  expect st Token.LPAREN;
  let name = ident st in
  expect st Token.EQUAL;
  let value = integer st in
  expect st Token.RPAREN;
  expect st Token.NEWLINE;
  (name, value)

let parse_decl st =
  let name = ident st in
  expect st Token.LPAREN;
  let extents = parse_args st in
  expect st Token.RPAREN;
  (name, extents)

let parse_decl_line st =
  expect st Token.KW_REAL;
  let first = parse_decl st in
  let rec go acc =
    if peek st = Token.COMMA then begin
      advance st;
      go (parse_decl st :: acc)
    end
    else List.rev acc
  in
  let decls = go [ first ] in
  expect st Token.NEWLINE;
  decls

let parse src =
  let st = { toks = Lexer.tokenize src } in
  skip_newlines st;
  expect st Token.KW_PROGRAM;
  let name = ident st in
  expect st Token.NEWLINE;
  let params = ref [] in
  let decls = ref [] in
  let rec header () =
    skip_newlines st;
    match peek st with
    | Token.KW_PARAMETER ->
      params := parse_parameter st :: !params;
      header ()
    | Token.KW_REAL ->
      decls := !decls @ parse_decl_line st;
      header ()
    | _ -> ()
  in
  header ();
  let body = parse_stmts st ~stop:[ Token.KW_END ] in
  expect st Token.KW_END;
  skip_newlines st;
  expect st Token.EOF;
  { Ast.name; params = List.rev !params; decls = !decls; body }
