(** Hand-written lexer for the kernel language.

    Case-insensitive keywords; [!] anywhere and [C] in column 1
    (Fortran style, except when it introduces an assignment [C = ...])
    start comments to end of line; blank lines collapse; [REAL*8] is
    accepted and the width ignored. *)

type loc = { line : int; col : int }
(** 1-based source position of a token's first character. *)

val pp_loc : loc -> string
(** ["line:col"]. *)

exception Error of string * loc
(** message (including the offending text), position *)

val tokenize : string -> (Token.t * loc) list
(** Token stream with source positions, ending in [EOF]. Consecutive
    NEWLINEs are collapsed and a leading newline is dropped.
    @raise Error on invalid characters or malformed numbers. *)
