(** Hand-written kernels used throughout the paper.

    Each takes its problem size; arrays are double precision, stored
    column-major. Loop orders in names are outermost-first. *)

val matmul : ?order:string -> int -> Program.t
(** Figure 2: [C(I,J) += A(I,K) * B(K,J)]. [order] is a permutation of
    ["IJK"] (default the worst-case ["IJK"]). *)

val matmul_orders : string list
(** The six loop orders, in the paper's Figure 2 ranking from best
    to worst: JKI, KJI, JIK, IJK, KIJ, IKJ. *)

val cholesky : ?form:[ `KIJ | `KJI ] -> int -> Program.t
(** Figure 7: Cholesky factorisation. [`KIJ] is the original form; [`KJI]
    the distributed-and-interchanged form the paper derives. *)

val lu : int -> Program.t
(** Right-looking LU factorisation (no pivoting) with the update written
    in row-oriented (I,J) order; distribution plus interchange turn it
    into the column-oriented form. *)

val adi_fragment : int -> Program.t
(** Figure 3(b): the scalarized Fortran-90 ADI integration fragment (two
    K loops inside an I loop). *)

val adi_fused : int -> Program.t
(** Figure 3(c): after fusion and interchange. *)

val erlebacher_hand : int -> Program.t
(** Section 4.3.4: 3-D ADI solver, hand-coded style — single-statement
    loops, mostly in memory order. *)

val erlebacher_distributed : int -> Program.t
(** Every nest permuted into memory order, still fully distributed. *)

val erlebacher_fused : int -> Program.t
(** The fused version produced by the Fuse algorithm. *)

val gmtry : int -> Program.t
(** SPEC Dnasa7 kernel: Gaussian elimination across rows — no spatial
    locality until distribution + permutation fix it (Section 5.7). *)

val vpenta : int -> Program.t
(** Dnasa7 kernel: simultaneous pentadiagonal inversion, scalarized
    vector style with poor stride. *)

val simple_hydro : int -> Program.t
(** "Simple": 2-D hydrodynamics fragment written in vectorizable form —
    the recurrence carried by the outer loop (Section 5.7). *)

val jacobi2d : int -> Program.t
(** 5-point Jacobi sweep in the wrong loop order. *)

val btrix : int -> Program.t
(** Dnasa7-style block-tridiagonal sweep over a rank-3 array with a small
    leading block dimension; the sweep loop is misplaced. *)

val shallow_water : int -> Program.t
(** swm256-style fragment: three fusable stencil sweeps over shared
    fields, already in memory order. *)

val transpose : int -> Program.t
(** [B(I,J) = A(J,I)] — one array is always accessed across columns. *)

val matmul_chain : int -> Program.t
(** Chained GEMMs [T = A*B; E = T*C]: two triple nests with a
    producer/consumer array between them, so permutation, fusion and
    distribution all have real choices to make. *)

val conv2d : int -> Program.t
(** Direct 2-D convolution, 3x3 window, PQIJ loop order. The input
    subscripts are two-variable affine ([I+P], [J+Q]). *)

val attention : int -> Program.t
(** Attention-shaped pair of nests, softmax-free: [S = Q*K^T] (the
    [K] matrix read transposed) followed by [O = S*V]. *)

val all : (string * (int -> Program.t)) list
(** Every kernel by name, for tests and the CLI. *)
