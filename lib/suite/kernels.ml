open Builder

let matmul_orders = [ "JKI"; "KJI"; "JIK"; "IJK"; "KIJ"; "IKJ" ]

let matmul ?(order = "IJK") n =
  let nn = v "N" in
  let body =
    asn
      (r "C" [ v "I"; v "J" ])
      (ld "C" [ v "I"; v "J" ] +! (ld "A" [ v "I"; v "K" ] *! ld "B" [ v "K"; v "J" ]))
  in
  let rec nest = function
    | [] -> body
    | x :: rest -> do_ (String.make 1 x) (i 1) nn [ nest rest ]
  in
  program ("matmul_" ^ order)
    ~params:[ ("N", n) ]
    ~arrays:[ ("A", [ nn; nn ]); ("B", [ nn; nn ]); ("C", [ nn; nn ]) ]
    [ nest (List.init (String.length order) (String.get order)) ]

let cholesky ?(form = `KIJ) n =
  let nn = v "N" in
  let body =
    match form with
    | `KIJ ->
      [
        do_ "K" (i 1) nn
          [
            asn (r "A" [ v "K"; v "K" ]) (sqrt_ (ld "A" [ v "K"; v "K" ]));
            do_ "I" (v "K" +$ i 1) nn
              [
                asn
                  (r "A" [ v "I"; v "K" ])
                  (ld "A" [ v "I"; v "K" ] /! ld "A" [ v "K"; v "K" ]);
                do_ "J" (v "K" +$ i 1) (v "I")
                  [
                    asn
                      (r "A" [ v "I"; v "J" ])
                      (ld "A" [ v "I"; v "J" ]
                      -! (ld "A" [ v "I"; v "K" ] *! ld "A" [ v "J"; v "K" ]));
                  ];
              ];
          ];
      ]
    | `KJI ->
      [
        do_ "K" (i 1) nn
          [
            asn (r "A" [ v "K"; v "K" ]) (sqrt_ (ld "A" [ v "K"; v "K" ]));
            do_ "I" (v "K" +$ i 1) nn
              [
                asn
                  (r "A" [ v "I"; v "K" ])
                  (ld "A" [ v "I"; v "K" ] /! ld "A" [ v "K"; v "K" ]);
              ];
            do_ "J" (v "K" +$ i 1) nn
              [
                do_ "I" (v "J") nn
                  [
                    asn
                      (r "A" [ v "I"; v "J" ])
                      (ld "A" [ v "I"; v "J" ]
                      -! (ld "A" [ v "I"; v "K" ] *! ld "A" [ v "J"; v "K" ]));
                  ];
              ];
          ];
      ]
  in
  program
    (match form with `KIJ -> "cholesky_kij" | `KJI -> "cholesky_kji")
    ~params:[ ("N", n) ]
    ~arrays:[ ("A", [ nn; nn ]) ]
    body

let adi_fragment n =
  let nn = v "N" in
  program "adi" ~params:[ ("N", n) ]
    ~arrays:[ ("X", [ nn; nn ]); ("A", [ nn; nn ]); ("B", [ nn; nn ]) ]
    [
      do_ "I" (i 2) nn
        [
          do_ "K" (i 1) nn
            [
              asn
                (r "X" [ v "I"; v "K" ])
                (ld "X" [ v "I"; v "K" ]
                -! (ld "X" [ v "I" -$ i 1; v "K" ] *! ld "A" [ v "I"; v "K" ]
                   /! ld "B" [ v "I" -$ i 1; v "K" ]));
            ];
          do_ "K" (i 1) nn
            [
              asn
                (r "B" [ v "I"; v "K" ])
                (ld "B" [ v "I"; v "K" ]
                -! (ld "A" [ v "I"; v "K" ] *! ld "A" [ v "I"; v "K" ]
                   /! ld "B" [ v "I" -$ i 1; v "K" ]));
            ];
        ];
    ]

let adi_fused n =
  let nn = v "N" in
  program "adi_fused" ~params:[ ("N", n) ]
    ~arrays:[ ("X", [ nn; nn ]); ("A", [ nn; nn ]); ("B", [ nn; nn ]) ]
    [
      do_ "K" (i 1) nn
        [
          do_ "I" (i 2) nn
            [
              asn
                (r "X" [ v "I"; v "K" ])
                (ld "X" [ v "I"; v "K" ]
                -! (ld "X" [ v "I" -$ i 1; v "K" ] *! ld "A" [ v "I"; v "K" ]
                   /! ld "B" [ v "I" -$ i 1; v "K" ]));
              asn
                (r "B" [ v "I"; v "K" ])
                (ld "B" [ v "I"; v "K" ]
                -! (ld "A" [ v "I"; v "K" ] *! ld "A" [ v "I"; v "K" ]
                   /! ld "B" [ v "I" -$ i 1; v "K" ]));
            ];
        ];
    ]

(* --------------------------------------------------------- Erlebacher *)

(* A 3-D ADI-style forward sweep along Z, expressed as single-statement
   loops over (I,J) planes — the scalarizer-like shape of Section 4.3.4.
   The "hand" version leaves two nests with the K (plane) loop misplaced;
   "distributed" places every nest in memory order; "fused" merges the
   compatible plane updates. *)

let erlebacher_arrays nn =
  [
    ("F", [ nn; nn; nn ]);
    ("G", [ nn; nn; nn ]);
    ("UX", [ nn; nn; nn ]);
    ("D", [ nn ]);
  ]

let erlebacher_body ~hand =
  let nn = v "N" in
  let plane_update name rhs =
    (* memory order: K outer, J, I inner *)
    do_ ("K" ^ name) (i 2) nn
      [
        do_ ("J" ^ name) (i 1) nn
          [ do_ ("I" ^ name) (i 1) nn [ rhs (v ("I" ^ name)) (v ("J" ^ name)) (v ("K" ^ name)) ] ];
      ]
  in
  let plane_update_bad name rhs =
    (* I outermost: poor order the compiler must fix *)
    do_ ("I" ^ name) (i 1) nn
      [
        do_ ("J" ^ name) (i 1) nn
          [ do_ ("K" ^ name) (i 2) nn [ rhs (v ("I" ^ name)) (v ("J" ^ name)) (v ("K" ^ name)) ] ];
      ]
  in
  let s1 vi vj vk =
    asn
      (r "F" [ vi; vj; vk ])
      (ld "F" [ vi; vj; vk ]
      -! (ld "F" [ vi; vj; vk -$ i 1 ] *! ld "D" [ vk ]))
  in
  let s2 vi vj vk =
    asn
      (r "G" [ vi; vj; vk ])
      (ld "G" [ vi; vj; vk ] -! (ld "F" [ vi; vj; vk ] *! ld "D" [ vk ]))
  in
  let s3 vi vj vk =
    asn
      (r "UX" [ vi; vj; vk ])
      (ld "UX" [ vi; vj; vk ] +! (ld "F" [ vi; vj; vk ] *! ld "G" [ vi; vj; vk ]))
  in
  if hand then [ plane_update "1" s1; plane_update_bad "2" s2; plane_update "3" s3 ]
  else [ plane_update "1" s1; plane_update "2" s2; plane_update "3" s3 ]

let erlebacher_hand n =
  let nn = v "N" in
  program "erlebacher_hand" ~params:[ ("N", n) ]
    ~arrays:(erlebacher_arrays nn) (erlebacher_body ~hand:true)

let erlebacher_distributed n =
  let nn = v "N" in
  program "erlebacher_dist" ~params:[ ("N", n) ]
    ~arrays:(erlebacher_arrays nn) (erlebacher_body ~hand:false)

let erlebacher_fused n =
  let nn = v "N" in
  program "erlebacher_fused" ~params:[ ("N", n) ]
    ~arrays:(erlebacher_arrays nn)
    [
      do_ "K" (i 2) nn
        [
          do_ "J" (i 1) nn
            [
              do_ "I" (i 1) nn
                [
                  asn
                    (r "F" [ v "I"; v "J"; v "K" ])
                    (ld "F" [ v "I"; v "J"; v "K" ]
                    -! (ld "F" [ v "I"; v "J"; v "K" -$ i 1 ] *! ld "D" [ v "K" ]));
                  asn
                    (r "G" [ v "I"; v "J"; v "K" ])
                    (ld "G" [ v "I"; v "J"; v "K" ]
                    -! (ld "F" [ v "I"; v "J"; v "K" ] *! ld "D" [ v "K" ]));
                  asn
                    (r "UX" [ v "I"; v "J"; v "K" ])
                    (ld "UX" [ v "I"; v "J"; v "K" ]
                    +! (ld "F" [ v "I"; v "J"; v "K" ] *! ld "G" [ v "I"; v "J"; v "K" ]));
                ];
            ];
        ];
    ]

(* Gaussian elimination across rows: the K-innermost form walks along a
   row of RX (stride N), as Gmtry's author wrote it. *)
let gmtry n =
  let nn = v "N" in
  program "gmtry" ~params:[ ("N", n) ]
    ~arrays:[ ("RX", [ nn; nn ]) ]
    [
      do_ "I" (i 2) nn
        [
          do_ "J" (i 1) (v "I" -$ i 1)
            [
              do_ "K" (v "J" +$ i 1) nn
                [
                  asn
                    (r "RX" [ v "I"; v "K" ])
                    (ld "RX" [ v "I"; v "K" ]
                    -! (ld "RX" [ v "I"; v "J" ] *! ld "RX" [ v "J"; v "K" ]));
                ];
            ];
        ];
    ]

(* Pentadiagonal elimination sweep, scalarized so that the vector loop J
   ended up outermost — each statement walks a row. *)
let vpenta n =
  let nn = v "N" in
  program "vpenta" ~params:[ ("N", n) ]
    ~arrays:
      [ ("X", [ nn; nn ]); ("Y", [ nn; nn ]); ("A", [ nn; nn ]); ("B", [ nn; nn ]) ]
    [
      do_ "J" (i 3) nn
        [
          do_ "I" (i 1) nn
            [
              asn
                (r "X" [ v "J"; v "I" ])
                (ld "X" [ v "J"; v "I" ]
                -! (ld "A" [ v "J"; v "I" ] *! ld "X" [ v "J" -$ i 1; v "I" ])
                -! (ld "B" [ v "J"; v "I" ] *! ld "X" [ v "J" -$ i 2; v "I" ]));
              asn
                (r "Y" [ v "J"; v "I" ])
                (ld "Y" [ v "J"; v "I" ] -! (ld "A" [ v "J"; v "I" ] *! ld "Y" [ v "J" -$ i 1; v "I" ]));
            ];
        ];
    ]

(* Written for a vector machine: the recurrence runs over the OUTER loop
   so the inner loop vectorizes; for cache the orientation is wrong. *)
let simple_hydro n =
  let nn = v "N" in
  program "simple" ~params:[ ("N", n) ]
    ~arrays:[ ("P", [ nn; nn ]); ("Q", [ nn; nn ]); ("RHO", [ nn; nn ]) ]
    [
      do_ "L" (i 2) nn
        [
          do_ "M" (i 1) nn
            [
              asn
                (r "P" [ v "L"; v "M" ])
                (ld "P" [ v "L" -$ i 1; v "M" ]
                +! (ld "RHO" [ v "L"; v "M" ] *! ld "Q" [ v "L"; v "M" ]));
            ];
        ];
      do_ "L2" (i 2) nn
        [
          do_ "M2" (i 1) nn
            [
              asn
                (r "Q" [ v "L2"; v "M2" ])
                (ld "Q" [ v "L2" -$ i 1; v "M2" ]
                +! (ld "RHO" [ v "L2"; v "M2" ] *! ld "P" [ v "L2"; v "M2" ]));
            ];
        ];
    ]

let jacobi2d n =
  let nn = v "N" in
  program "jacobi2d" ~params:[ ("N", n) ]
    ~arrays:[ ("U", [ nn; nn ]); ("UN", [ nn; nn ]) ]
    [
      do_ "I" (i 2) (nn -$ i 1)
        [
          do_ "J" (i 2) (nn -$ i 1)
            [
              asn
                (r "UN" [ v "I"; v "J" ])
                (f 0.25
                *! (ld "U" [ v "I" -$ i 1; v "J" ]
                   +! ld "U" [ v "I" +$ i 1; v "J" ]
                   +! ld "U" [ v "I"; v "J" -$ i 1 ]
                   +! ld "U" [ v "I"; v "J" +$ i 1 ]));
            ];
        ];
    ]

(* Block-tridiagonal solve fragment: a rank-4 array whose small leading
   block dimensions the paper blames for Applu's slight regression; here
   the sweep dimension is misplaced and permutation fixes it. *)
let btrix n =
  let nn = v "N" in
  let five = i 5 in
  program "btrix" ~params:[ ("N", n) ]
    ~arrays:[ ("AB", [ five; nn; nn ]); ("BB", [ five; nn; nn ]) ]
    [
      do_ "M" (i 1) five
        [
          do_ "J" (i 2) nn
            [
              do_ "K" (i 1) nn
                [
                  asn
                    (r "AB" [ v "M"; v "J"; v "K" ])
                    (ld "AB" [ v "M"; v "J"; v "K" ]
                    -! (ld "AB" [ v "M"; v "J" -$ i 1; v "K" ]
                       *! ld "BB" [ v "M"; v "J"; v "K" ]));
                ];
            ];
        ];
    ]

(* Shallow-water model fragment (swm256 style): several fusable stencil
   sweeps over shared velocity/height fields, already in memory order. *)
let shallow_water n =
  let nn = v "N" in
  program "swm" ~params:[ ("N", n) ]
    ~arrays:
      [ ("U", [ nn; nn ]); ("V", [ nn; nn ]); ("P", [ nn; nn ]);
        ("CU", [ nn; nn ]); ("CV", [ nn; nn ]); ("H", [ nn; nn ]) ]
    [
      do_ "Ja" (i 2) (nn -$ i 1)
        [
          do_ "Ia" (i 2) (nn -$ i 1)
            [
              asn
                (r "CU" [ v "Ia"; v "Ja" ])
                (f 0.5
                *! (ld "P" [ v "Ia"; v "Ja" ] +! ld "P" [ v "Ia" -$ i 1; v "Ja" ])
                *! ld "U" [ v "Ia"; v "Ja" ]);
            ];
        ];
      do_ "Jb" (i 2) (nn -$ i 1)
        [
          do_ "Ib" (i 2) (nn -$ i 1)
            [
              asn
                (r "CV" [ v "Ib"; v "Jb" ])
                (f 0.5
                *! (ld "P" [ v "Ib"; v "Jb" ] +! ld "P" [ v "Ib"; v "Jb" -$ i 1 ])
                *! ld "V" [ v "Ib"; v "Jb" ]);
            ];
        ];
      do_ "Jc" (i 2) (nn -$ i 1)
        [
          do_ "Ic" (i 2) (nn -$ i 1)
            [
              asn
                (r "H" [ v "Ic"; v "Jc" ])
                (ld "P" [ v "Ic"; v "Jc" ]
                +! (f 0.25
                   *! (ld "U" [ v "Ic"; v "Jc" ] *! ld "U" [ v "Ic"; v "Jc" ]
                      +! ld "V" [ v "Ic"; v "Jc" ] *! ld "V" [ v "Ic"; v "Jc" ])));
            ];
        ];
    ]

let transpose n =
  let nn = v "N" in
  program "transpose" ~params:[ ("N", n) ]
    ~arrays:[ ("A", [ nn; nn ]); ("B", [ nn; nn ]) ]
    [
      do_ "I" (i 1) nn
        [ do_ "J" (i 1) nn [ asn (r "B" [ v "I"; v "J" ]) (ld "A" [ v "J"; v "I" ]) ] ];
    ]

(* Right-looking LU factorisation without pivoting, written in the
   row-oriented (I,J) update order a Fortran programmer naively ports
   from a C textbook — the wrong order for column-major storage. The
   optimizer distributes the K body and interchanges the update to
   (J,I), the column-oriented form [DGE91] recommends. *)
let lu n =
  let nn = v "N" in
  program "lu" ~params:[ ("N", n) ]
    ~arrays:[ ("A", [ nn; nn ]) ]
    [
      do_ "K" (i 1) (nn -$ i 1)
        [
          do_ "S" (v "K" +$ i 1) nn
            [
              asn ~label:"L1"
                (r "A" [ v "S"; v "K" ])
                (ld "A" [ v "S"; v "K" ] /! ld "A" [ v "K"; v "K" ]);
            ];
          do_ "I" (v "K" +$ i 1) nn
            [
              do_ "J" (v "K" +$ i 1) nn
                [
                  asn ~label:"L2"
                    (r "A" [ v "I"; v "J" ])
                    (ld "A" [ v "I"; v "J" ]
                    -! (ld "A" [ v "I"; v "K" ] *! ld "A" [ v "K"; v "J" ]));
                ];
            ];
        ];
    ]

(* ---- AI/HPC additions: chained GEMMs, convolution, attention ----- *)

(* T = A*B; E = T*C. Two IJK triple nests; the producer nest's T(I,J)
   output feeds the consumer's T(I,K) input, so the search space has a
   real fusion/distribution decision and two independent permutation
   choices. *)
let matmul_chain n =
  let nn = v "N" in
  let gemm out a b =
    do_ "I" (i 1) nn
      [
        do_ "J" (i 1) nn
          [
            do_ "K" (i 1) nn
              [
                asn
                  (r out [ v "I"; v "J" ])
                  (ld out [ v "I"; v "J" ]
                  +! (ld a [ v "I"; v "K" ] *! ld b [ v "K"; v "J" ]));
              ];
          ];
      ]
  in
  program "matmul_chain"
    ~params:[ ("N", n) ]
    ~arrays:
      [
        ("A", [ nn; nn ]); ("B", [ nn; nn ]); ("C", [ nn; nn ]);
        ("T", [ nn; nn ]); ("E", [ nn; nn ]);
      ]
    [ gemm "T" "A" "B"; gemm "E" "T" "C" ]

(* Direct 2-D convolution with a 3x3 window: the IN subscripts are
   two-variable affine (I+P, J+Q), which the dependence tester and the
   cost model handle through the shared affine normal form. *)
let conv2d n =
  let nn = v "N" in
  program "conv2d"
    ~params:[ ("N", n) ]
    ~arrays:
      [
        ("IN", [ nn +$ i 3; nn +$ i 3 ]);
        ("W", [ i 3; i 3 ]);
        ("OUT", [ nn; nn ]);
      ]
    [
      do_ "P" (i 1) (i 3)
        [
          do_ "Q" (i 1) (i 3)
            [
              do_ "I" (i 1) nn
                [
                  do_ "J" (i 1) nn
                    [
                      asn
                        (r "OUT" [ v "I"; v "J" ])
                        (ld "OUT" [ v "I"; v "J" ]
                        +! (ld "IN" [ v "I" +$ v "P"; v "J" +$ v "Q" ]
                           *! ld "W" [ v "P"; v "Q" ]));
                    ];
                ];
            ];
        ];
    ]

(* Attention-shaped pair of nests, softmax-free: S = Q*K^T (K^T read as
   KM(J,K), i.e. across rows) then O = S*V. The transposed read gives
   the first nest a genuine permutation problem. *)
let attention n =
  let nn = v "N" in
  program "attention"
    ~params:[ ("N", n) ]
    ~arrays:
      [
        ("QM", [ nn; nn ]); ("KM", [ nn; nn ]); ("VM", [ nn; nn ]);
        ("S", [ nn; nn ]); ("O", [ nn; nn ]);
      ]
    [
      do_ "I" (i 1) nn
        [
          do_ "J" (i 1) nn
            [
              do_ "K" (i 1) nn
                [
                  asn
                    (r "S" [ v "I"; v "J" ])
                    (ld "S" [ v "I"; v "J" ]
                    +! (ld "QM" [ v "I"; v "K" ] *! ld "KM" [ v "J"; v "K" ]));
                ];
            ];
        ];
      do_ "I" (i 1) nn
        [
          do_ "J" (i 1) nn
            [
              do_ "K" (i 1) nn
                [
                  asn
                    (r "O" [ v "I"; v "J" ])
                    (ld "O" [ v "I"; v "J" ]
                    +! (ld "S" [ v "I"; v "K" ] *! ld "VM" [ v "K"; v "J" ]));
                ];
            ];
        ];
    ]

let all =
  [
    ("matmul", matmul ?order:None);
    ("lu", lu);
    ("cholesky", cholesky ?form:None);
    ("adi", adi_fragment);
    ("adi_fused", adi_fused);
    ("erlebacher_hand", erlebacher_hand);
    ("erlebacher_dist", erlebacher_distributed);
    ("erlebacher_fused", erlebacher_fused);
    ("gmtry", gmtry);
    ("vpenta", vpenta);
    ("simple", simple_hydro);
    ("jacobi2d", jacobi2d);
    ("btrix", btrix);
    ("swm", shallow_water);
    ("transpose", transpose);
    ("matmul_chain", matmul_chain);
    ("conv2d", conv2d);
    ("attention", attention);
  ]
