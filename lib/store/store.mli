(** A content-addressed, on-disk experiment store.

    Caches expensive pipeline products — captured address traces and
    simulation statistics — keyed by a stable digest of everything that
    determines them (normalized program text, parameter overrides, cache
    geometry, replay mode and trace-format version, plus a store format
    version). A warm run looks its results up instead of re-interpreting
    and re-simulating, and is guaranteed to produce bit-identical
    values: every entry carries a checksum footer, and any corruption,
    truncation or version mismatch quarantines the entry and silently
    falls back to recomputation, so a damaged store can never change
    results or crash a run.

    Layout under the root directory:
    {v
    <root>/objects/<hh>/<digest>.bin   entries (hh = first two hex chars)
    <root>/quarantine/<digest>.bin     entries that failed validation
    v}

    Writes are atomic (unique temp file in the target directory, then
    [Sys.rename]), so concurrent writers — OCaml domains under
    [MEMORIA_JOBS] or separate processes sharing one store — race only
    to publish identical bytes; last rename wins and readers always see
    either nothing or a complete entry. Reads touch the entry's mtime,
    which is the LRU clock {!gc} evicts by.

    Hit/miss/write/invalidation/quarantine counts are kept in
    process-global atomics ({!counters}) and mirrored into
    {!Locality_obs.Obs} counters ([store.hit], [store.miss],
    [store.write], [store.invalidation], [store.quarantine]) when
    tracing is enabled. *)

type t
(** An opened store (a validated root directory). Immutable after
    {!open_root}; safe to share across domains. *)

val format_version : int
(** Mixed into every key: bumping it invalidates the whole store (old
    entries become unreachable garbage for {!gc}), which is how
    incompatible changes to the marshalled payloads are rolled out. *)

val open_root : string -> t
(** Open (creating directories if needed) a store rooted at the given
    path. @raise Sys_error when the directory cannot be created. *)

val root : t -> string

val default : unit -> t option
(** The ambient store configured by the [MEMORIA_STORE] environment
    variable — [Some store] rooted there when the variable is set and
    non-empty, [None] otherwise. Resolved once at program start (so it
    is domain-safe); a root that cannot be created disables the store
    with a one-line warning on stderr rather than failing the run. *)

(** {1 Keys} *)

type key
(** A content digest; equal parts always produce the equal key, across
    processes and runs. *)

val key : kind:string -> string list -> key
(** [key ~kind parts] digests the kind tag, {!format_version} and every
    part, length-prefixed so part boundaries cannot alias. *)

val hex : key -> string
(** The digest as lowercase hex (the on-disk basename). *)

val equal_key : key -> key -> bool

(** {1 Reading and writing} *)

val put : t -> key -> string -> unit
(** Atomically publish the payload under the key (checksummed footer
    appended). I/O errors are swallowed — the store is a cache, and a
    failed write only costs a future recomputation. *)

val get : t -> key -> string option
(** The validated payload, or [None] on miss. A present-but-invalid
    entry (bad magic, length, or checksum) is quarantined and reported
    as a miss. *)

val put_value : t -> key -> 'a -> unit
(** [put] of the marshalled value. The key must encode the value's type
    (via the [kind] tag and key parts) — {!get_value} trusts it. *)

val get_value : t -> key -> 'a option
(** Unmarshal a validated payload. A payload that fails to unmarshal is
    quarantined and reported as a miss. Type safety rests on the key:
    only read a key with the type it was written with. *)

val object_path : t -> key -> string
(** Where the entry lives (exposed for the store tooling and tests). *)

(** {1 Filesystem helpers}

    Shared with the telemetry sink, which lives in its own namespace
    under the store root and wants the same durability discipline. *)

val mkdir_p : string -> unit
(** Create the directory and any missing parents (0755); racing
    creators are fine. *)

val atomic_write : path:string -> string -> bool
(** Write the content to a unique temp file in the target directory,
    then [Sys.rename] into place — readers see either nothing or the
    whole file. Returns [false] (leaving no partial file behind) on any
    I/O error instead of raising. *)

(** {1 Counters} *)

type counters = {
  hits : int;
  misses : int;
  writes : int;
  invalidations : int;  (** entries dropped for bad magic or length *)
  quarantines : int;  (** entries quarantined for checksum/decode failure *)
}

val counters : unit -> counters
(** Process-wide totals across every store opened by this process. *)

(** {1 Maintenance} *)

type disk_stats = {
  entries : int;
  bytes : int;  (** payloads + footers, as stored *)
  quarantined : int;  (** files currently in quarantine/ *)
}

val disk_stats : t -> disk_stats

val verify : t -> int * int
(** Validate every entry's footer and checksum; quarantine failures.
    Returns [(ok, quarantined)]. *)

val gc : ?min_age_s:float -> t -> max_bytes:int -> int * int
(** Evict least-recently-used entries (mtime order, oldest first) until
    the objects directory holds at most [max_bytes]; also empties the
    quarantine. Returns [(deleted, remaining_bytes)]. Entries whose
    mtime is younger than [min_age_s] seconds (default [0.]) are never
    evicted, so a concurrent writer — e.g. a serve worker publishing a
    result as the gc tick fires — cannot have its object collected
    before any reader sees it; the returned remaining byte count still
    includes them, and may therefore exceed [max_bytes]. *)
