(* Content-addressed experiment store: see store.mli for the contract.

   Everything here is defensive by design — the store is a cache, so
   the failure mode of every code path is "behave as a miss" (reads) or
   "skip the write" (writes), never an exception that could take down a
   run or a wrong value that could change one. Validation happens
   before unmarshalling: a payload is only handed to Marshal once its
   checksum matches, and a decode failure still quarantines the file. *)

module Obs = Locality_obs.Obs

let format_version = 1
let magic = "MEMSTOR1"
let footer_len = 16 + 8 + String.length magic (* md5 + LE64 length + magic *)

type t = { dir : string }

let root t = t.dir

(* ------------------------------------------------------- counters --- *)

type counters = {
  hits : int;
  misses : int;
  writes : int;
  invalidations : int;
  quarantines : int;
}

let c_hits = Atomic.make 0
let c_misses = Atomic.make 0
let c_writes = Atomic.make 0
let c_invalidations = Atomic.make 0
let c_quarantines = Atomic.make 0

let bump counter obs_name =
  Atomic.incr counter;
  Obs.counter obs_name 1

let counters () =
  {
    hits = Atomic.get c_hits;
    misses = Atomic.get c_misses;
    writes = Atomic.get c_writes;
    invalidations = Atomic.get c_invalidations;
    quarantines = Atomic.get c_quarantines;
  }

(* ----------------------------------------------------------- keys --- *)

type key = string (* 16-byte MD5 digest *)

let key ~kind parts =
  (* Length-prefix every field so ["ab";"c"] and ["a";"bc"] cannot
     collide, and mix in the format version so a layout change retires
     the whole store at once. *)
  let buf = Buffer.create 256 in
  let add s =
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  in
  add "memoria-store";
  add (string_of_int format_version);
  add kind;
  List.iter add parts;
  Digest.string (Buffer.contents buf)

let hex = Digest.to_hex
let equal_key = String.equal

(* ---------------------------------------------------------- paths --- *)

let objects_dir t = Filename.concat t.dir "objects"
let quarantine_dir t = Filename.concat t.dir "quarantine"

let object_path t k =
  let h = hex k in
  Filename.concat
    (Filename.concat (objects_dir t) (String.sub h 0 2))
    (h ^ ".bin")

let mkdir_p path =
  let rec go p =
    if p <> "" && p <> "/" && p <> "." && not (Sys.file_exists p) then begin
      go (Filename.dirname p);
      try Unix.mkdir p 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go path

let open_root dir =
  mkdir_p (Filename.concat dir "objects");
  mkdir_p (Filename.concat dir "quarantine");
  if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": not a directory"));
  { dir }

let env_var = "MEMORIA_STORE"

(* Resolved once at module initialisation (single-domain), so [default]
   is a pure read afterwards and safe to call from pool workers. *)
let default_store =
  match Sys.getenv_opt env_var with
  | None -> None
  | Some "" -> None
  | Some dir -> (
    try Some (open_root dir)
    with e ->
      Printf.eprintf "memoria: ignoring %s=%s (%s)\n%!" env_var dir
        (Printexc.to_string e);
      None)

let default () = default_store

(* ------------------------------------------------------ file I/O --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let le64 n =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 (Int64.of_int n);
  Bytes.to_string b

let le64_to_int s off = Int64.to_int (String.get_int64_le s off)

(* Unique-enough temp basename: pid + domain + a process-wide ticket. *)
let tmp_ticket = Atomic.make 0

let tmp_name base =
  Printf.sprintf ".%s.tmp.%d.%d.%d" base (Unix.getpid ())
    (Domain.self () :> int)
    (Atomic.fetch_and_add tmp_ticket 1)

let quarantine t path =
  (* Move the damaged entry aside so it is never read again but remains
     available for post-mortem; any failure just deletes it. *)
  let dest = Filename.concat (quarantine_dir t) (Filename.basename path) in
  (try Sys.rename path dest
   with _ -> ( try Sys.remove path with _ -> ()));
  ()

let put t k payload =
  let path = object_path t k in
  let dir = Filename.dirname path in
  (try
     mkdir_p dir;
     let tmp = Filename.concat dir (tmp_name (Filename.basename path)) in
     let oc = open_out_bin tmp in
     (try
        output_string oc payload;
        output_string oc (Digest.string payload);
        output_string oc (le64 (String.length payload));
        output_string oc magic;
        close_out oc;
        Sys.rename tmp path
      with e ->
        close_out_noerr oc;
        (try Sys.remove tmp with _ -> ());
        raise e)
   with _ -> ());
  bump c_writes "store.write"

let atomic_write ~path content =
  try
    let dir = Filename.dirname path in
    mkdir_p dir;
    let tmp = Filename.concat dir (tmp_name (Filename.basename path)) in
    let oc = open_out_bin tmp in
    (try
       output_string oc content;
       close_out oc;
       Sys.rename tmp path;
       true
     with e ->
       close_out_noerr oc;
       (try Sys.remove tmp with _ -> ());
       raise e)
  with _ -> false

let validate payload_and_footer =
  let n = String.length payload_and_footer in
  if n < footer_len then `Invalid
  else if
    not
      (String.equal
         (String.sub payload_and_footer (n - String.length magic)
            (String.length magic))
         magic)
  then `Invalid
  else
    let plen = le64_to_int payload_and_footer (n - footer_len + 16) in
    if plen <> n - footer_len then `Invalid
    else
      let payload = String.sub payload_and_footer 0 plen in
      let sum = String.sub payload_and_footer plen 16 in
      if String.equal (Digest.string payload) sum then `Ok payload
      else `Corrupt

let get t k =
  let path = object_path t k in
  match read_file path with
  | exception _ ->
    bump c_misses "store.miss";
    None
  | raw -> (
    match validate raw with
    | `Ok payload ->
      (* Touch the mtime: reads refresh the LRU clock gc evicts by. *)
      (try Unix.utimes path 0.0 0.0 with _ -> ());
      bump c_hits "store.hit";
      Some payload
    | `Invalid ->
      quarantine t path;
      bump c_invalidations "store.invalidation";
      bump c_misses "store.miss";
      None
    | `Corrupt ->
      quarantine t path;
      bump c_quarantines "store.quarantine";
      bump c_misses "store.miss";
      None)

let put_value t k v = put t k (Marshal.to_string v [])

let get_value t k =
  match get t k with
  | None -> None
  | Some payload -> (
    match Marshal.from_string payload 0 with
    | v -> Some v
    | exception _ ->
      (* The checksum matched, so the bytes are what was written — the
         writer and reader disagree about the payload shape. Quarantine
         and recompute; the format version in the key makes this
         practically unreachable. *)
      quarantine t (object_path t k);
      bump c_quarantines "store.quarantine";
      None)

(* ---------------------------------------------------- maintenance --- *)

type disk_stats = {
  entries : int;
  bytes : int;
  quarantined : int;
}

let is_entry name =
  String.length name > 4
  && String.equal (String.sub name (String.length name - 4) 4) ".bin"
  && name.[0] <> '.'

let iter_objects t f =
  let objects = objects_dir t in
  if Sys.file_exists objects then
    Array.iter
      (fun sub ->
        let dir = Filename.concat objects sub in
        if Sys.is_directory dir then
          Array.iter
            (fun name -> if is_entry name then f (Filename.concat dir name))
            (Sys.readdir dir))
      (Sys.readdir objects)

let disk_stats t =
  let entries = ref 0 and bytes = ref 0 in
  iter_objects t (fun path ->
      match Unix.stat path with
      | st ->
        incr entries;
        bytes := !bytes + st.Unix.st_size
      | exception _ -> ());
  let quarantined =
    match Sys.readdir (quarantine_dir t) with
    | files -> List.length (List.filter is_entry (Array.to_list files))
    | exception _ -> 0
  in
  { entries = !entries; bytes = !bytes; quarantined }

let verify t =
  let ok = ref 0 and bad = ref 0 in
  iter_objects t (fun path ->
      match validate (read_file path) with
      | `Ok _ -> incr ok
      | `Invalid | `Corrupt | (exception _) ->
        quarantine t path;
        bump c_quarantines "store.quarantine";
        incr bad);
  (!ok, !bad)

let gc ?(min_age_s = 0.) t ~max_bytes =
  (* Quarantined entries are dead weight either way. *)
  (try
     Array.iter
       (fun name ->
         try Sys.remove (Filename.concat (quarantine_dir t) name) with _ -> ())
       (Sys.readdir (quarantine_dir t))
   with _ -> ());
  let files = ref [] in
  let total = ref 0 in
  (* A just-written entry is the hottest thing in the store: read-touch
     keeps warm entries fresh, but a writer racing the tick has an mtime
     of "now" and must never lose to eviction.  Entries younger than
     [min_age_s] are counted toward the total yet exempt from removal. *)
  let cutoff = Unix.gettimeofday () -. min_age_s in
  iter_objects t (fun path ->
      match Unix.stat path with
      | st ->
        if st.Unix.st_mtime <= cutoff then
          files := (st.Unix.st_mtime, st.Unix.st_size, path) :: !files;
        total := !total + st.Unix.st_size
      | exception _ -> ());
  let oldest_first =
    List.sort
      (fun (t1, _, p1) (t2, _, p2) ->
        match Float.compare t1 t2 with 0 -> String.compare p1 p2 | c -> c)
      !files
  in
  let deleted = ref 0 in
  List.iter
    (fun (_, size, path) ->
      if !total > max_bytes then begin
        (try
           Sys.remove path;
           total := !total - size;
           incr deleted
         with _ -> ())
      end)
    oldest_first;
  (!deleted, !total)
