(** SHARDS-style sampled reuse-distance profiling.

    Spatial hash sampling over cache lines (Waldspurger et al., FAST'15):
    a line is tracked iff [hash(line) < threshold] in a fixed 2^24 hash
    space, so the sampling rate is [threshold / 2^24] and every access to
    a sampled line is an unbiased 1/R-weighted observation of the full
    trace. Reuse distances are measured in the subsampled trace (distinct
    sampled lines between consecutive touches of a line) and scaled back
    by 1/R; first touches of a sampled line contribute 1/R to the cold
    estimate.

    Distances are tracked {e per cache set} ([line mod sets], the
    simulator's mapping): a [W]-way LRU set hits exactly when fewer than
    [W] distinct same-set lines intervened since the last touch, so a
    profile built with the target geometry's set count has no
    set-associativity model error — at rate 1.0 it reproduces the exact
    simulator, and at lower rates the only error is sampling noise.
    [sets = 1] (the default) gives the classic fully-associative SHARDS
    profile, comparable with {!Locality_cachesim.Reuse}.

    When the tracked-line set exceeds [max_tracked] the
    threshold halves and no-longer-qualifying lines are evicted
    (SHARDS-adj: previously recorded observations keep the weight they
    were recorded at), so memory stays O(max_tracked) at any trace
    length and the rate adapts to the footprint.

    The profiler consumes the v2 run-compressed trace stream natively:
    unsampled accesses are exact no-ops on the sampler state, so a group
    descriptor whose references all sit in unsampled lines is skipped in
    bulk to the earliest line-boundary crossing — the result is exactly
    what per-access feeding would have produced, at a fraction of the
    work. Everything is deterministic: the hash is a fixed integer mixer
    (keyed by [seed]), so equal inputs give bit-equal profiles. *)

type t

val modulus : int
(** Size of the hash space (2^24); the threshold lives in [1, modulus]. *)

val create :
  ?rate:float ->
  ?seed:int ->
  ?max_tracked:int ->
  ?sets:int ->
  line_bytes:int ->
  unit ->
  t
(** [create ~line_bytes ()] makes an empty profiler for the given cache
    line size (a power of two). [rate] (default {!current_rate} ())
    clamps into (0, 1]; [seed] (default 0) keys the line hash so repeated
    runs can draw independent samples; [max_tracked] (default 65536)
    bounds the tracked-line set before rate adaptation kicks in; [sets]
    (default 1, fully associative) partitions distance tracking by the
    target geometry's set mapping.
    @raise Invalid_argument when [line_bytes] or [sets] is not a
    positive power of two or [rate] is not strictly positive. *)

val access : t -> label:int -> addr:int -> unit
(** Feed one access (byte address, interned statement-label id). *)

val consume_runchunk : t -> Locality_cachesim.Runchunk.t -> unit
(** Feed a v2 trace block, group descriptors consumed with the bulk-skip
    fast path. Equivalent to feeding every expanded access through
    {!access} in replay order. *)

val accesses : t -> int
(** Exact accesses seen (groups expanded). *)

val sampled : t -> int
(** Sampled-line accesses actually processed. *)

val adaptations : t -> int
(** Times the threshold halved. *)

val effective_rate : t -> float
(** The realised sampling fraction after any adaptation: threshold over
    hash space for line sampling ([sets = 1]), sampled sets over total
    sets for set sampling. *)

(** An immutable, marshalable summary of a finished profiling run;
    [pf_labels.(id)] names the statement label with interned id [id],
    and the per-label arrays are indexed the same way. Distances in
    [pf_label_hist] are already rescaled to full-trace distinct-line
    counts; weights sum to the (scaled) observation counts. *)
type profile = {
  pf_line_bytes : int;
  pf_sets : int;  (** set count the distances were tracked under *)
  pf_rate : float;  (** configured initial rate *)
  pf_final_rate : float;  (** rate after adaptation *)
  pf_seed : int;
  pf_accesses : int;  (** exact *)
  pf_ops : int;  (** exact, supplied by the caller *)
  pf_sampled : int;
  pf_adaptations : int;
  pf_labels : string array;
  pf_label_accesses : int array;  (** exact *)
  pf_label_cold : float array;  (** 1/R-weighted first touches *)
  pf_label_hist : (int * float) array array;
      (** per label: (scaled distance, weight), sorted by distance *)
}

val profile : t -> labels:string array -> ops:int -> profile
(** Freeze the sampler state. [labels] maps interned ids to names (from
    the trace buffer's interner) and must cover every id fed in. *)

val cold : profile -> float
(** Estimated distinct lines touched (sum of cold weights). *)

val hits_under : profile -> int -> ways:int -> float
(** [hits_under pf id ~ways] — estimated hits of label [id] in an LRU
    cache with [ways]-way sets under the profile's set mapping: the
    weight of observations with scaled same-set distance < [ways]. For
    a [sets = 1] profile, pass the geometry's total line count to get
    the fully-associative estimate. *)

val merged_histogram : profile -> (int * float) list
(** All labels merged: (scaled distance, total weight), sorted. *)

(** {2 Rate configuration}

    The ambient rate used when [create] is not given one explicitly:
    a process-wide override (the [--rate] CLI flag) wins over the
    [MEMORIA_SAMPLE_RATE] environment variable, which defaults to
    0.01. *)

val rate_env : string
val set_rate : float -> unit
val current_rate : unit -> float
