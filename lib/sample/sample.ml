module Chunk = Locality_cachesim.Chunk
module Runchunk = Locality_cachesim.Runchunk

(* SHARDS (Waldspurger et al.): hash-based spatial sampling. A sampling
   unit is in the sample iff hash(unit) < threshold within a 2^24 hash
   space; every access to a sampled unit is processed exactly (reuse
   distance via Bennett-Kruskal over sampled-access time) and the
   observation is weighted by 1/R = modulus/threshold. Accesses to
   unsampled units touch nothing but the exact tallies, which is what
   makes the group fast path in [consume_group] possible.

   Distances are per cache SET (line land (sets - 1), the simulator's
   mapping): a W-way LRU set hits exactly when fewer than W distinct
   same-set lines intervened since the last touch, so with [sets] equal
   to the target geometry's set count the estimator has no model error.

   The sampling unit depends on [sets]. With [sets = 1] the unit is the
   cache line — classic fully-associative SHARDS, with subsampled
   distances rescaled by 1/R. With [sets > 1] the unit is the SET
   (Kessler-style set sampling): a sampled set tracks every one of its
   lines, so same-set distances — and therefore the W-way hit/miss
   verdict — are exact per observation, and 1/R weighting only carries
   the across-set selection. Line sampling would instead quantise
   rescaled distances at 1/R granularity, useless against a hit
   threshold of 2-4 ways; set sampling keeps the estimator unbiased at
   any rate, and exact at rate 1.0. *)

let modulus_bits = 24
let modulus = 1 lsl modulus_bits

(* Fixed 63-bit mixer (multiply-xorshift, constants < 2^62 so they are
   valid OCaml int literals); deterministic across runs and platforms. *)
let mix z =
  let z = z lxor (z lsr 31) in
  let z = z * 0x2545F4914F6CDD1D in
  let z = z lxor (z lsr 29) in
  let z = z * 0x1D8E4E27C47D124F in
  let z = z lxor (z lsr 32) in
  z

(* Per-set distance tracker: a Fenwick (Bennett-Kruskal) array over
   this set's sampled-access time. *)
type set_state = {
  mutable bit : int array;  (* Fenwick over sampled-access time, 1-based *)
  mutable capacity : int;
  mutable time : int;
  last : (int, int) Hashtbl.t;  (* sampled line -> last sampled time *)
}

type t = {
  line_shift : int;
  line_bytes : int;
  sets : int;
  set_mask : int;
  cfg_rate : float;  (* configured rate, clamped into (0, 1] *)
  seed : int;
  seed_mix : int;
  init_threshold : int;
  max_tracked : int;
  set_hashes : int array;  (* sorted set-index hashes; empty for sets = 1 *)
  mutable threshold : int;
  mutable unit_weight : float;  (* per-observation weight under threshold *)
  mutable gen : int;  (* bumped on every adaptation; invalidates caches *)
  (* exact tallies *)
  mutable accesses : int;
  mutable label_accesses : int array;
  mutable label_cold : float array;
  mutable nlabels : int;
  label_hist : (int, (int, float) Hashtbl.t) Hashtbl.t;
  (* sampled-trace state *)
  mutable sampled : int;
  mutable adaptations : int;
  mutable tracked : int;  (* lines tracked across every set *)
  set_states : set_state array;
  (* group-walk scratch, grown to the widest group seen *)
  mutable g_addr : int array;
  mutable g_stride : int array;
  mutable g_label : int array;
  mutable g_samp : bool array;
  mutable g_cross : int array;
}

let rate_env = "MEMORIA_SAMPLE_RATE"
let rate_override = ref None

let set_rate r = rate_override := Some r

let current_rate () =
  match !rate_override with
  | Some r -> r
  | None -> (
    match Sys.getenv_opt rate_env with
    | Some s -> ( try float_of_string s with _ -> 0.01)
    | None -> 0.01)

let create ?rate ?(seed = 0) ?(max_tracked = 65536) ?(sets = 1) ~line_bytes ()
    =
  let rate = match rate with Some r -> r | None -> current_rate () in
  if rate <= 0.0 then invalid_arg "Sample.create: rate must be positive";
  if line_bytes <= 0 || line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Sample.create: line_bytes must be a positive power of two";
  if sets <= 0 || sets land (sets - 1) <> 0 then
    invalid_arg "Sample.create: sets must be a positive power of two";
  let shift =
    let s = ref 0 in
    while 1 lsl !s < line_bytes do
      incr s
    done;
    !s
  in
  let seed_mix = seed * 0x9E3779B9 in
  let set_hashes =
    if sets = 1 then [||]
    else begin
      let a = Array.init sets (fun s -> mix (s lxor seed_mix) land (modulus - 1)) in
      Array.sort compare a;
      a
    end
  in
  (* Line sampling: threshold = rate * modulus, weight = modulus /
     threshold (the footprint is unbounded, so the realised fraction of
     sampled lines concentrates on the rate). Set sampling: the
     population is the small, known set universe, so pick the
     [round (rate * sets)] sets with the smallest hashes (threshold =
     k-th order statistic + 1) and weight by sets / |sampled| — a ratio
     estimator; a raw 1/R weight would inherit the large realised-
     fraction noise of a 100-odd-element sample. *)
  let threshold, unit_weight =
    if sets = 1 then begin
      let thr =
        if rate >= 1.0 then modulus
        else max 1 (int_of_float ((rate *. float_of_int modulus) +. 0.5))
      in
      (thr, float_of_int modulus /. float_of_int thr)
    end
    else begin
      let k =
        min sets (max 1 (int_of_float ((rate *. float_of_int sets) +. 0.5)))
      in
      let thr = set_hashes.(k - 1) + 1 in
      let c = ref 0 in
      Array.iter (fun h -> if h < thr then incr c) set_hashes;
      (thr, float_of_int sets /. float_of_int !c)
    end
  in
  {
    line_shift = shift;
    line_bytes;
    sets;
    set_mask = sets - 1;
    cfg_rate = Float.min rate 1.0;
    seed;
    seed_mix;
    set_hashes;
    init_threshold = threshold;
    max_tracked = max 1 max_tracked;
    threshold;
    unit_weight;
    gen = 0;
    accesses = 0;
    label_accesses = Array.make 8 0;
    label_cold = Array.make 8 0.0;
    nlabels = 0;
    label_hist = Hashtbl.create 16;
    sampled = 0;
    adaptations = 0;
    tracked = 0;
    set_states =
      Array.init sets (fun _ ->
          { bit = Array.make 65 0; capacity = 64; time = 0;
            last = Hashtbl.create 16 });
    g_addr = Array.make 8 0;
    g_stride = Array.make 8 0;
    g_label = Array.make 8 0;
    g_samp = Array.make 8 false;
    g_cross = Array.make 8 0;
  }

(* The sampling unit: the line itself when fully associative, the
   line's set otherwise (set sampling). *)
let skey t line = if t.set_mask = 0 then line else line land t.set_mask
let hash t line = mix (skey t line lxor t.seed_mix) land (modulus - 1)
let weight t = t.unit_weight

let accesses t = t.accesses
let sampled t = t.sampled
let adaptations t = t.adaptations
(* The realised sampling fraction: threshold over hash space for line
   sampling, sampled sets over total sets for set sampling (where the
   threshold is an order statistic, not rate * modulus). *)
let effective_rate t =
  if t.set_mask = 0 then float_of_int t.threshold /. float_of_int modulus
  else begin
    let c = ref 0 in
    Array.iter (fun h -> if h < t.threshold then incr c) t.set_hashes;
    float_of_int !c /. float_of_int t.sets
  end

(* ----------------------------------------------- Fenwick tracker --- *)

let bit_add s i v =
  let i = ref i in
  while !i <= s.capacity do
    s.bit.(!i) <- s.bit.(!i) + v;
    i := !i + (!i land - !i)
  done

let bit_sum s i =
  let sum = ref 0 and i = ref i in
  while !i > 0 do
    sum := !sum + s.bit.(!i);
    i := !i - (!i land - !i)
  done;
  !sum

(* Reassign a set's sampled times 1..k in order. Distances depend only
   on the relative order of marks, so compaction is invisible to the
   estimator and keeps each Fenwick array O(tracked lines) no matter how
   long the trace runs. *)
let compact s =
  let entries = Hashtbl.fold (fun line tm acc -> (tm, line) :: acc) s.last [] in
  let entries = List.sort compare entries in
  Array.fill s.bit 0 (s.capacity + 1) 0;
  let k = ref 0 in
  List.iter
    (fun (_, line) ->
      incr k;
      Hashtbl.replace s.last line !k;
      bit_add s !k 1)
    entries;
  s.time <- !k

let next_time s =
  if s.time + 1 > s.capacity then
    if Hashtbl.length s.last * 4 <= s.capacity then compact s
    else begin
      s.capacity <- s.capacity * 2;
      s.bit <- Array.make (s.capacity + 1) 0;
      Hashtbl.iter (fun _ tm -> bit_add s tm 1) s.last
    end;
  s.time <- s.time + 1;
  s.time

(* ----------------------------------------------- exact tallies ----- *)

let ensure_label t lid =
  if lid >= Array.length t.label_accesses then begin
    let cap = max (lid + 1) (2 * Array.length t.label_accesses) in
    let la = Array.make cap 0 and lc = Array.make cap 0.0 in
    Array.blit t.label_accesses 0 la 0 (Array.length t.label_accesses);
    Array.blit t.label_cold 0 lc 0 (Array.length t.label_cold);
    t.label_accesses <- la;
    t.label_cold <- lc
  end;
  if lid >= t.nlabels then t.nlabels <- lid + 1

let add_hist t label d w =
  let h =
    match Hashtbl.find_opt t.label_hist label with
    | Some h -> h
    | None ->
      let h = Hashtbl.create 32 in
      Hashtbl.replace t.label_hist label h;
      h
  in
  let prev = match Hashtbl.find_opt h d with Some w -> w | None -> 0.0 in
  Hashtbl.replace h d (prev +. w)

(* ----------------------------------------------- sampled events ---- *)

(* Halve the sample. Line sampling halves the threshold directly; set
   sampling halves the sampled-set count and rethresholds at the order
   statistic, keeping the weight a true sets/|sampled| ratio. Returns
   false when the sample cannot shrink further. *)
let shrink_threshold t =
  if t.set_mask = 0 then
    if t.threshold > 1 then begin
      t.threshold <- t.threshold / 2;
      t.unit_weight <- float_of_int modulus /. float_of_int t.threshold;
      true
    end
    else false
  else begin
    let c = ref 0 in
    Array.iter (fun h -> if h < t.threshold then incr c) t.set_hashes;
    let k = !c / 2 in
    if k < 1 then false
    else begin
      t.threshold <- t.set_hashes.(k - 1) + 1;
      let c = ref 0 in
      Array.iter (fun h -> if h < t.threshold then incr c) t.set_hashes;
      t.unit_weight <- float_of_int t.sets /. float_of_int !c;
      true
    end
  end

let adapt t =
  t.adaptations <- t.adaptations + 1;
  t.gen <- t.gen + 1;
  Array.iter
    (fun s ->
      let evict =
        Hashtbl.fold
          (fun line tm acc ->
            if hash t line >= t.threshold then (line, tm) :: acc else acc)
          s.last []
      in
      List.iter
        (fun (line, tm) ->
          bit_add s tm (-1);
          Hashtbl.remove s.last line;
          t.tracked <- t.tracked - 1)
        evict)
    t.set_states

(* One access to a currently-sampled line. The caller has already
   checked hash < threshold and bumped the exact tallies. *)
let sampled_event t ~label ~line =
  t.sampled <- t.sampled + 1;
  let w = weight t in
  let s = t.set_states.(line land t.set_mask) in
  (match Hashtbl.find_opt s.last line with
  | Some t_old ->
    let d = Hashtbl.length s.last - bit_sum s t_old in
    (* Line sampling subsamples the distance, so rescale by 1/R; set
       sampling tracks every same-set line, so [d] is already exact. *)
    let scaled =
      if t.set_mask = 0 then int_of_float ((float_of_int d *. w) +. 0.5)
      else d
    in
    add_hist t label scaled w;
    bit_add s t_old (-1);
    Hashtbl.remove s.last line;
    t.tracked <- t.tracked - 1
  | None -> t.label_cold.(label) <- t.label_cold.(label) +. w);
  let tm = next_time s in
  Hashtbl.replace s.last line tm;
  bit_add s tm 1;
  t.tracked <- t.tracked + 1;
  if t.tracked > t.max_tracked && shrink_threshold t then adapt t

let access t ~label ~addr =
  t.accesses <- t.accesses + 1;
  ensure_label t label;
  t.label_accesses.(label) <- t.label_accesses.(label) + 1;
  let line = addr lsr t.line_shift in
  if hash t line < t.threshold then sampled_event t ~label ~line

(* ----------------------------------------------- group fast path --- *)

let ensure_scratch t n =
  if Array.length t.g_addr < n then begin
    let cap = max n (2 * Array.length t.g_addr) in
    t.g_addr <- Array.make cap 0;
    t.g_stride <- Array.make cap 0;
    t.g_label <- Array.make cap 0;
    t.g_samp <- Array.make cap false;
    t.g_cross <- Array.make cap 0
  end

(* Consume one group descriptor (trip iterations round-robin over n
   strided references) with the same observable effect as feeding every
   expanded access through [access]:

   - exact tallies are bulk counts (trip per reference);
   - each reference caches whether its current line is sampled and the
     iteration at which it next crosses a line boundary;
   - while no reference sits in a sampled line, nothing can change the
     sampler state, so the walk jumps to the earliest crossing;
   - while any does, iterations are processed per access in reference
     order (exactly the replay interleaving).

   The threshold only ever decreases, so a cached "unsampled" verdict
   can never go stale; cached "sampled" verdicts are revalidated via the
   generation counter whenever an event adapts the threshold. *)
let consume_group t ~trip ~n ~data ~off =
  ensure_scratch t n;
  let shift = t.line_shift in
  let lb = t.line_bytes in
  for j = 0 to n - 1 do
    let r = data.(off + (2 * j)) in
    let label = Chunk.label r in
    ensure_label t label;
    t.label_accesses.(label) <- t.label_accesses.(label) + trip;
    t.g_label.(j) <- label;
    t.g_addr.(j) <- Chunk.addr r;
    t.g_stride.(j) <- data.(off + (2 * j) + 1)
  done;
  t.accesses <- t.accesses + (trip * n);
  let cross_of j tc =
    let s = t.g_stride.(j) in
    if s = 0 then max_int
    else
      let o = t.g_addr.(j) land (lb - 1) in
      if s > 0 then tc + ((lb - o + s - 1) / s) else tc + (o / -s) + 1
  in
  let refresh j tc =
    t.g_samp.(j) <- hash t (t.g_addr.(j) lsr shift) < t.threshold;
    t.g_cross.(j) <- cross_of j tc
  in
  let any = ref 0 in
  let recount () =
    let c = ref 0 in
    for j = 0 to n - 1 do
      if t.g_samp.(j) then incr c
    done;
    any := !c
  in
  let seen_gen = ref t.gen in
  let revalidate () =
    if t.gen <> !seen_gen then begin
      for j = 0 to n - 1 do
        t.g_samp.(j) <- hash t (t.g_addr.(j) lsr shift) < t.threshold
      done;
      seen_gen := t.gen
    end
  in
  for j = 0 to n - 1 do
    refresh j 0
  done;
  recount ();
  let tc = ref 0 in
  while !tc < trip do
    if !any = 0 then begin
      let tnext = ref trip in
      for j = 0 to n - 1 do
        if t.g_cross.(j) < !tnext then tnext := t.g_cross.(j)
      done;
      let dt = !tnext - !tc in
      for j = 0 to n - 1 do
        t.g_addr.(j) <- t.g_addr.(j) + (dt * t.g_stride.(j))
      done;
      tc := !tnext;
      if !tc < trip then begin
        for j = 0 to n - 1 do
          if t.g_cross.(j) <= !tc then refresh j !tc
        done;
        recount ()
      end
    end
    else begin
      for j = 0 to n - 1 do
        if t.g_samp.(j) then begin
          revalidate ();
          if t.g_samp.(j) then
            sampled_event t ~label:t.g_label.(j) ~line:(t.g_addr.(j) lsr shift)
        end
      done;
      tc := !tc + 1;
      for j = 0 to n - 1 do
        t.g_addr.(j) <- t.g_addr.(j) + t.g_stride.(j);
        if t.g_cross.(j) <= !tc then refresh j !tc
      done;
      revalidate ();
      recount ()
    end
  done

let consume_runchunk t (rc : Runchunk.t) =
  let data = rc.Runchunk.data in
  let len = rc.Runchunk.len in
  let i = ref 0 in
  while !i < len do
    let w = data.(!i) in
    if Runchunk.is_header w then begin
      let nrefs = Runchunk.header_nrefs w in
      consume_group t ~trip:(Runchunk.header_trip w) ~n:nrefs ~data
        ~off:(!i + 1);
      i := !i + Runchunk.group_words ~nrefs
    end
    else begin
      t.accesses <- t.accesses + 1;
      let label = Chunk.label w in
      ensure_label t label;
      t.label_accesses.(label) <- t.label_accesses.(label) + 1;
      let line = Chunk.addr w lsr t.line_shift in
      if hash t line < t.threshold then sampled_event t ~label ~line;
      incr i
    end
  done

(* ----------------------------------------------- profiles ---------- *)

type profile = {
  pf_line_bytes : int;
  pf_sets : int;
  pf_rate : float;
  pf_final_rate : float;
  pf_seed : int;
  pf_accesses : int;
  pf_ops : int;
  pf_sampled : int;
  pf_adaptations : int;
  pf_labels : string array;
  pf_label_accesses : int array;
  pf_label_cold : float array;
  pf_label_hist : (int * float) array array;
}

let profile t ~labels ~ops =
  let nl = Array.length labels in
  let slice a fill =
    Array.init nl (fun i -> if i < Array.length a then a.(i) else fill)
  in
  let hist lid =
    match Hashtbl.find_opt t.label_hist lid with
    | None -> [||]
    | Some h ->
      let l = Hashtbl.fold (fun d w acc -> (d, w) :: acc) h [] in
      let a = Array.of_list l in
      Array.sort (fun (a, _) (b, _) -> compare (a : int) b) a;
      a
  in
  {
    pf_line_bytes = t.line_bytes;
    pf_sets = t.sets;
    pf_rate = t.cfg_rate;
    pf_final_rate = effective_rate t;
    pf_seed = t.seed;
    pf_accesses = t.accesses;
    pf_ops = ops;
    pf_sampled = t.sampled;
    pf_adaptations = t.adaptations;
    pf_labels = labels;
    pf_label_accesses = slice t.label_accesses 0;
    pf_label_cold = slice t.label_cold 0.0;
    pf_label_hist = Array.init nl (fun i -> hist i);
  }

let cold pf = Array.fold_left ( +. ) 0.0 pf.pf_label_cold

let hits_under pf lid ~ways =
  let h = pf.pf_label_hist.(lid) in
  let acc = ref 0.0 in
  (try
     Array.iter
       (fun (d, w) -> if d < ways then acc := !acc +. w else raise Exit)
       h
   with Exit -> ());
  !acc

let merged_histogram pf =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (Array.iter (fun (d, w) ->
         let prev = match Hashtbl.find_opt tbl d with Some w -> w | None -> 0.0 in
         Hashtbl.replace tbl d (prev +. w)))
    pf.pf_label_hist;
  let l = Hashtbl.fold (fun d w acc -> (d, w) :: acc) tbl [] in
  List.sort (fun (a, _) (b, _) -> compare (a : int) b) l
