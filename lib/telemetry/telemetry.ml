(* The telemetry sink: persists one Record per invocation into a
   telemetry/ namespace beside the store's objects/, one JSON file per
   run, published with the store's atomic tmp+rename so concurrent runs
   sharing a store never interleave. Everything is best-effort — a full
   disk or unwritable store must never fail the run that produced the
   record. *)

module Store = Locality_store.Store

let env_var = "MEMORIA_TELEMETRY"

(* Opt-in: records are only written when MEMORIA_TELEMETRY=1 AND a
   store is configured (the store root is where history lives).
   Resolved once at start so workers can read it freely. *)
let env_enabled =
  match Sys.getenv_opt env_var with Some "1" -> true | _ -> false

let enabled () = env_enabled && Store.default () <> None

let dir store = Filename.concat (Store.root store) "telemetry"

(* Best-effort `git describe` so records say what code produced them;
   one lazy subprocess per process, "unknown" anywhere git isn't. *)
let git_version =
  lazy
    (try
       let ic =
         Unix.open_process_in "git describe --always --dirty 2>/dev/null"
       in
       let line = try input_line ic with End_of_file -> "" in
       match (Unix.close_process_in ic, line) with
       | Unix.WEXITED 0, line when line <> "" -> line
       | _ -> "unknown"
     with _ -> "unknown")

let git_describe () = Lazy.force git_version

let now_epoch_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* <ts_ns>-<pid>.json sorts chronologically by name and cannot collide
   across concurrent processes sharing a store. *)
let filename (r : Record.t) =
  Printf.sprintf "%020Ld-%d.json" r.Record.ts_ns (Unix.getpid ())

let publish store r =
  let path = Filename.concat (dir store) (filename r) in
  if Store.atomic_write ~path (Record.to_json r) then Some path else None

(* History, oldest first. Unreadable or unparsable files are skipped —
   a corrupt record costs one data point, never the command. *)
let load_dir d =
  let names = try Sys.readdir d with Sys_error _ -> [||] in
  Array.sort String.compare names;
  Array.to_list names
  |> List.filter_map (fun name ->
         if Filename.check_suffix name ".json" then
           let path = Filename.concat d name in
           try
             let ic = open_in_bin path in
             Fun.protect
               ~finally:(fun () -> close_in_noerr ic)
               (fun () ->
                 Record.of_string
                   (really_input_string ic (in_channel_length ic)))
           with Sys_error _ | End_of_file -> None
         else None)
  |> List.stable_sort (fun (a : Record.t) b ->
         Int64.compare a.Record.ts_ns b.Record.ts_ns)

let load store = load_dir (dir store)
