(* Minimal JSON reader for the telemetry history: the dual of the
   emitter in Locality_obs.Json. A hand-rolled recursive descent keeps
   the library dependency-free; it accepts standard RFC 8259 documents
   (which is all our own emitter produces) and raises [Parse_error] on
   anything malformed — callers treat that as a corrupt record and skip
   the file. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

type state = {
  src : string;
  mutable pos : int;
  (* Byte offset of every object key parsed, newest first — the request
     reader ([Locality_driver.Request]) turns these into line:col
     positions for its unknown-field diagnostics. *)
  mutable keys : (string * int) list;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let skip_ws st =
  let rec go () =
    match peek st with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance st;
      go ()
    | _ -> ()
  in
  go ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | Some x -> fail "expected '%c' at %d, got '%c'" c st.pos x
  | None -> fail "expected '%c' at %d, got end of input" c st.pos

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail "bad literal at %d" st.pos

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail "unterminated string at %d" st.pos
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st
      | Some '\\' -> Buffer.add_char buf '\\'; advance st
      | Some '/' -> Buffer.add_char buf '/'; advance st
      | Some 'b' -> Buffer.add_char buf '\b'; advance st
      | Some 'f' -> Buffer.add_char buf '\012'; advance st
      | Some 'n' -> Buffer.add_char buf '\n'; advance st
      | Some 'r' -> Buffer.add_char buf '\r'; advance st
      | Some 't' -> Buffer.add_char buf '\t'; advance st
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then
          fail "truncated \\u escape at %d" st.pos;
        let hex = String.sub st.src st.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail "bad \\u escape at %d" st.pos
        in
        st.pos <- st.pos + 4;
        (* Our own emitter only \u-escapes control characters; anything
           outside one byte degrades to '?' rather than full UTF-8. *)
        if code < 0x100 then Buffer.add_char buf (Char.chr code)
        else Buffer.add_char buf '?'
      | _ -> fail "bad escape at %d" st.pos);
      go ()
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek st with Some c -> is_num_char c | None -> false) do
    advance st
  done;
  let s = String.sub st.src start (st.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail "bad number %S at %d" s start

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail "unexpected end of input at %d" st.pos
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec members acc =
        skip_ws st;
        let key_pos = st.pos in
        let k = parse_string st in
        st.keys <- (k, key_pos) :: st.keys;
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          members ((k, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((k, v) :: acc)
        | _ -> fail "expected ',' or '}' at %d" st.pos
      in
      Obj (members [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          elements (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail "expected ',' or ']' at %d" st.pos
      in
      List (elements [])
    end
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some _ -> parse_number st

let parse_keyed src =
  let st = { src; pos = 0; keys = [] } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail "trailing garbage at %d" st.pos;
  (v, List.rev st.keys)

let parse src = fst (parse_keyed src)

let parse_opt src = try Some (parse src) with Parse_error _ -> None

let line_col src pos =
  let pos = min (max pos 0) (String.length src) in
  let line = ref 1 and bol = ref 0 in
  for i = 0 to pos - 1 do
    if src.[i] = '\n' then begin
      incr line;
      bol := i + 1
    end
  done;
  (!line, pos - !bol + 1)

(* ---------------------------------------------------- accessors --- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num f -> Some f | _ -> None

let to_int_opt = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let obj_fields = function Obj fields -> Some fields | _ -> None
