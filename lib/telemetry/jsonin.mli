(** Minimal RFC 8259 JSON reader — the dual of the emitter in
    {!Locality_obs.Json}, used to load persisted telemetry records.
    Numbers parse as floats; [\u] escapes outside one byte degrade to
    ['?'] (our own emitter never produces them). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val parse : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val parse_opt : string -> t option

val parse_keyed : string -> t * (string * int) list
(** {!parse}, also returning every object key with its byte offset in
    document order — enough for a consumer with a fixed schema (the
    [Driver.Request] reader) to point diagnostics at the offending
    field. *)

val line_col : string -> int -> int * int
(** [(line, col)] of a byte offset, both 1-based; offsets are clamped
    into the document. *)

val member : string -> t -> t option
(** Field lookup; [None] on non-objects and missing keys. *)

val to_string_opt : t -> string option
val to_float_opt : t -> float option

val to_int_opt : t -> int option
(** [Some] only for numbers with zero fractional part. *)

val obj_fields : t -> (string * t) list option
