(** The regression gate behind [memoria health].

    Compares the newest telemetry {!Record} of each workload key
    against a rolling baseline — the median of the previous [window]
    runs with the same key — and flags wall/phase slowdowns, warm
    hit-rate drops, analytic fallback-rate rises and analytic
    abs-error rises beyond the thresholds. Pure; loading records and
    turning flags into exit codes is the CLI's job. *)

type thresholds = {
  window : int;  (** prior runs feeding the baseline median *)
  phase_drift_pct : float;
      (** allowed phase/wall slowdown, percent over baseline *)
  phase_noise_ms : float;
      (** absolute slack — drifts smaller than this are noise *)
  hit_rate_drop : float;  (** allowed warm hit-rate drop (absolute) *)
  fallback_rise : float;  (** allowed analytic fallback-rate rise *)
  abs_err_rise : float;  (** allowed analytic mean-abs-error rise *)
}

val default_thresholds : thresholds
(** window 5, drift 50% with 50ms floor, hit-rate drop 0.10, fallback
    rise 0.10, abs-error rise 0.01. *)

type check = {
  workload : string;
  metric : string;
  baseline : float;
  latest : float;
  flagged : bool;
  detail : string;  (** human-readable comparison with thresholds *)
}

type report = {
  records : int;  (** records considered *)
  workloads : int;  (** distinct workload keys *)
  checks : check list;  (** every comparison made *)
  flagged : check list;  (** the subset that tripped a threshold *)
}

val run : ?thresholds:thresholds -> Record.t list -> report
(** Records must be oldest-first (as {!Telemetry.load} returns them).
    Workloads with fewer than two records produce no checks. *)

val render : report -> string
(** Human-readable report; last line is [health: OK] or a summary of
    flagged regressions. *)

val to_json : report -> string
(** Schema-versioned JSON for [memoria health --json]. *)
