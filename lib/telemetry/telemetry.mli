(** Persistence for per-invocation telemetry {!Record}s.

    Records live as one JSON file each under [<store root>/telemetry/],
    beside the content-addressed [objects/] namespace, written with the
    store's atomic tmp+rename. Publishing is opt-in
    ([MEMORIA_TELEMETRY=1] with a store configured) and best-effort: no
    I/O failure ever propagates to the run being recorded. *)

val env_var : string
(** ["MEMORIA_TELEMETRY"]. *)

val enabled : unit -> bool
(** [MEMORIA_TELEMETRY=1] and [MEMORIA_STORE] resolves to a usable
    store. Resolved once at program start. *)

val dir : Locality_store.Store.t -> string
(** The telemetry namespace under the store root. *)

val git_describe : unit -> string
(** Best-effort [git describe --always --dirty], ["unknown"] when
    unavailable. Runs the subprocess once per process. *)

val now_epoch_ns : unit -> int64
(** Wall-clock epoch time in nanoseconds (for {!Record.t.ts_ns}). *)

val publish : Locality_store.Store.t -> Record.t -> string option
(** Atomically write the record into the telemetry namespace
    ([<ts_ns>-<pid>.json]). [Some path] on success, [None] on any I/O
    error (nothing partial is left behind). *)

val load : Locality_store.Store.t -> Record.t list
(** All readable records, oldest first; corrupt or alien files are
    skipped silently. *)

val load_dir : string -> Record.t list
(** {!load} over an explicit directory (for [memoria health --dir] and
    tests). *)
