(** One per-invocation telemetry record — the schema-versioned digest
    of a run ([doc/SCHEMA.md] documents the JSON layout) that
    [memoria health] compares against history. Pure data; persistence
    lives in {!Telemetry}. *)

val schema_version : int
(** Bumped on incompatible layout changes; the loader skips records of
    any other version. *)

type t = {
  ts_ns : int64;  (** wall-clock epoch, nanoseconds *)
  cmd : string;  (** memoria subcommand ("sim", "suite", ...) *)
  workload : string;
      (** stable key grouping comparable runs, e.g.
          ["suite:n=50:cls=16:jobs=4"] *)
  replay : string;  (** MEMORIA_REPLAY mode in effect *)
  geometry : string;  (** cache geometry description *)
  jobs : int;
  git : string;  (** git describe, or ["unknown"] *)
  wall_ms : float;  (** whole-invocation wall clock *)
  phases : (string * float) list;  (** span name -> summed ms *)
  counters : (string * int) list;  (** obs counter totals *)
  gauges : (string * float) list;  (** obs gauge levels *)
}

val to_json : t -> string
(** One newline-terminated JSON object. *)

val of_string : string -> t option
(** Parse a serialized record; [None] (never an exception) on malformed
    JSON, wrong schema version, or missing fields. *)

val counter : t -> string -> int
(** Counter total, 0 when absent. *)

val gauge : t -> string -> float option
val phase_ms : t -> string -> float option

val hit_rate : t -> float option
(** store hits / (hits + misses); [None] when the run never touched the
    store. *)

val fallback_rate : t -> float option
(** analytic.fallback / analytic.nests; [None] when no nests were
    modelled. *)
