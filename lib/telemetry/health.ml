(* The regression gate behind `memoria health`: compare the newest
   telemetry record of each workload against a rolling baseline (median
   of the previous N runs of the same workload key) and flag drifts
   that exceed the thresholds. Pure record-list -> report; loading and
   exit codes belong to the CLI. *)

module Json = Locality_obs.Json

type thresholds = {
  window : int;  (* how many prior runs feed the baseline median *)
  phase_drift_pct : float;  (* phase/wall slowdown allowed, percent *)
  phase_noise_ms : float;  (* absolute slack under which drift is noise *)
  hit_rate_drop : float;  (* allowed warm hit-rate drop, absolute *)
  fallback_rise : float;  (* allowed analytic fallback-rate rise *)
  abs_err_rise : float;  (* allowed analytic abs-error rise *)
}

let default_thresholds =
  {
    window = 5;
    phase_drift_pct = 50.0;
    phase_noise_ms = 50.0;
    hit_rate_drop = 0.10;
    fallback_rise = 0.10;
    abs_err_rise = 0.01;
  }

type check = {
  workload : string;
  metric : string;
  baseline : float;
  latest : float;
  flagged : bool;
  detail : string;  (* human-readable threshold explanation *)
}

type report = {
  records : int;
  workloads : int;
  checks : check list;
  flagged : check list;
}

let median = function
  | [] -> None
  | xs ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    Some
      (if n mod 2 = 1 then a.(n / 2)
       else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0)

(* Group records by workload key, preserving first-occurrence order of
   the keys and record order within each group (input is oldest
   first). *)
let group_by_workload records =
  let tbl = Hashtbl.create 8 and order = ref [] in
  List.iter
    (fun (r : Record.t) ->
      match Hashtbl.find_opt tbl r.Record.workload with
      | Some rs -> Hashtbl.replace tbl r.Record.workload (r :: rs)
      | None ->
        order := r.Record.workload :: !order;
        Hashtbl.add tbl r.Record.workload [ r ])
    records;
  List.rev_map
    (fun w -> (w, List.rev (Hashtbl.find tbl w)))
    !order
  |> List.rev

let last_n n xs =
  let len = List.length xs in
  if len <= n then xs else List.filteri (fun i _ -> i >= len - n) xs

let check_workload th workload history (latest : Record.t) =
  let checks = ref [] in
  let add metric ~baseline ~latest ~flagged detail =
    checks := { workload; metric; baseline; latest; flagged; detail } :: !checks
  in
  (* Slowdowns: wall clock and each phase, against the baseline median.
     Both gates must trip — a relative drift bound plus an absolute
     noise floor so microsecond phases can't flag on scheduler jitter. *)
  let time_check metric ~baseline ~now =
    let limit = baseline *. (1.0 +. (th.phase_drift_pct /. 100.0)) in
    let flagged = now > limit && now -. baseline > th.phase_noise_ms in
    add metric ~baseline ~latest:now ~flagged
      (Printf.sprintf "%.1fms vs median %.1fms (limit +%.0f%% and +%.0fms)"
         now baseline th.phase_drift_pct th.phase_noise_ms)
  in
  (match
     median (List.map (fun (r : Record.t) -> r.Record.wall_ms) history)
   with
  | Some base -> time_check "wall_ms" ~baseline:base ~now:latest.Record.wall_ms
  | None -> ());
  List.iter
    (fun (phase, now) ->
      match
        median (List.filter_map (fun r -> Record.phase_ms r phase) history)
      with
      | Some base -> time_check ("phase:" ^ phase) ~baseline:base ~now
      | None -> ())
    latest.Record.phases;
  (* Warm-store effectiveness: a hit-rate drop beyond the threshold
     means caching broke (key churn, store misconfiguration). *)
  (match
     ( median (List.filter_map Record.hit_rate history),
       Record.hit_rate latest )
   with
  | Some base, Some now ->
    add "store.hit_rate" ~baseline:base ~latest:now
      ~flagged:(base -. now > th.hit_rate_drop)
      (Printf.sprintf "%.3f vs median %.3f (allowed drop %.2f)" now base
         th.hit_rate_drop)
  | _ -> ());
  (* Analytic coverage: more nests falling back to simulation means the
     closed-form model regressed. *)
  (match
     ( median (List.filter_map Record.fallback_rate history),
       Record.fallback_rate latest )
   with
  | Some base, Some now ->
    add "analytic.fallback_rate" ~baseline:base ~latest:now
      ~flagged:(now -. base > th.fallback_rise)
      (Printf.sprintf "%.3f vs median %.3f (allowed rise %.2f)" now base
         th.fallback_rise)
  | _ -> ());
  (* Analytic accuracy: mean absolute error from explain --compare. *)
  (match
     ( median
         (List.filter_map (fun r -> Record.gauge r "analytic.abs_err_mean")
            history),
       Record.gauge latest "analytic.abs_err_mean" )
   with
  | Some base, Some now ->
    add "analytic.abs_err_mean" ~baseline:base ~latest:now
      ~flagged:(now -. base > th.abs_err_rise)
      (Printf.sprintf "%.4f vs median %.4f (allowed rise %.3f)" now base
         th.abs_err_rise)
  | _ -> ());
  List.rev !checks

let run ?(thresholds = default_thresholds) records =
  let groups = group_by_workload records in
  let checks =
    List.concat_map
      (fun (workload, rs) ->
        match List.rev rs with
        | [] | [ _ ] -> []  (* nothing to compare against *)
        | latest :: prev_rev ->
          let history = last_n thresholds.window (List.rev prev_rev) in
          check_workload thresholds workload history latest)
      groups
  in
  {
    records = List.length records;
    workloads = List.length groups;
    checks;
    flagged = List.filter (fun (c : check) -> c.flagged) checks;
  }

let render r =
  let b = Buffer.create 1024 in
  Printf.bprintf b "Health: %d record%s, %d workload%s\n" r.records
    (if r.records = 1 then "" else "s")
    r.workloads
    (if r.workloads = 1 then "" else "s");
  if r.checks = [] then
    Buffer.add_string b
      "  no comparable history (need two runs of the same workload)\n"
  else begin
    let by_workload = Hashtbl.create 8 and order = ref [] in
    List.iter
      (fun c ->
        match Hashtbl.find_opt by_workload c.workload with
        | Some cs -> Hashtbl.replace by_workload c.workload (c :: cs)
        | None ->
          order := c.workload :: !order;
          Hashtbl.add by_workload c.workload [ c ])
      r.checks;
    List.iter
      (fun w ->
        Printf.bprintf b "  %s\n" w;
        List.iter
          (fun (c : check) ->
            Printf.bprintf b "    %s %-28s %s\n"
              (if c.flagged then "FLAG" else "ok  ")
              c.metric c.detail)
          (List.rev (Hashtbl.find by_workload w)))
      (List.rev !order)
  end;
  (match r.flagged with
  | [] -> Buffer.add_string b "health: OK\n"
  | fs ->
    Printf.bprintf b "health: %d regression%s flagged (%s)\n" (List.length fs)
      (if List.length fs = 1 then "" else "s")
      (String.concat ", "
         (List.map (fun c -> c.workload ^ "/" ^ c.metric) fs)));
  Buffer.contents b

let to_json r =
  let check_json c =
    Json.obj
      [
        ("workload", Json.str c.workload);
        ("metric", Json.str c.metric);
        ("baseline", Printf.sprintf "%.6f" c.baseline);
        ("latest", Printf.sprintf "%.6f" c.latest);
        ("flagged", (if c.flagged then "true" else "false"));
        ("detail", Json.str c.detail);
      ]
  in
  Json.versioned
    [
      ("records", Json.int r.records);
      ("workloads", Json.int r.workloads);
      ("checks", Json.list (List.map check_json r.checks));
      ("flagged", Json.int (List.length r.flagged));
    ]
  ^ "\n"
