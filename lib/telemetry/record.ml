(* One per-invocation telemetry record: the durable, schema-versioned
   digest of a run that `memoria health` compares against history.
   Records are plain data — building one never touches the filesystem;
   Telemetry.publish decides whether and where it lands. *)

module Json = Locality_obs.Json

(* Bump when a field changes meaning or type; Health refuses to compare
   across versions and the loader skips records it cannot read. *)
let schema_version = 1

type t = {
  ts_ns : int64;  (* wall-clock epoch, nanoseconds *)
  cmd : string;
  workload : string;
  replay : string;
  geometry : string;
  jobs : int;
  git : string;
  wall_ms : float;
  phases : (string * float) list;  (* span name -> total ms *)
  counters : (string * int) list;
  gauges : (string * float) list;
}

let float_str v = Printf.sprintf "%.6f" v

let to_json r =
  Json.obj
    [
      ("telemetry_schema", Json.int schema_version);
      (* As a string: epoch nanoseconds exceed the 2^53 range where JSON
         numbers are exact. *)
      ("ts_ns", Json.str (Int64.to_string r.ts_ns));
      ("cmd", Json.str r.cmd);
      ("workload", Json.str r.workload);
      ("replay", Json.str r.replay);
      ("geometry", Json.str r.geometry);
      ("jobs", Json.int r.jobs);
      ("git", Json.str r.git);
      ("wall_ms", float_str r.wall_ms);
      ( "phases",
        Json.obj (List.map (fun (k, v) -> (k, float_str v)) r.phases) );
      ( "counters",
        Json.obj (List.map (fun (k, v) -> (k, Json.int v)) r.counters) );
      ( "gauges",
        Json.obj (List.map (fun (k, v) -> (k, float_str v)) r.gauges) );
    ]
  ^ "\n"

let of_json json =
  let open Jsonin in
  let str_field k = Option.bind (member k json) to_string_opt in
  let num_field k = Option.bind (member k json) to_float_opt in
  let assoc_field k conv =
    match Option.bind (member k json) obj_fields with
    | None -> None
    | Some fields ->
      (* Every member must convert; a half-readable section means a
         corrupt record, not a shorter list. *)
      let rec go acc = function
        | [] -> Some (List.rev acc)
        | (key, v) :: rest -> (
          match conv v with
          | Some x -> go ((key, x) :: acc) rest
          | None -> None)
      in
      go [] fields
  in
  match Option.bind (member "telemetry_schema" json) to_int_opt with
  | Some v when v = schema_version -> (
    match
      ( Option.bind (str_field "ts_ns") Int64.of_string_opt,
        str_field "cmd",
        str_field "workload",
        str_field "replay",
        str_field "geometry",
        Option.bind (member "jobs" json) to_int_opt,
        str_field "git",
        num_field "wall_ms",
        assoc_field "phases" to_float_opt,
        assoc_field "counters" to_int_opt,
        assoc_field "gauges" to_float_opt )
    with
    | ( Some ts_ns,
        Some cmd,
        Some workload,
        Some replay,
        Some geometry,
        Some jobs,
        Some git,
        Some wall_ms,
        Some phases,
        Some counters,
        Some gauges ) ->
      Some
        { ts_ns; cmd; workload; replay; geometry; jobs; git; wall_ms; phases;
          counters; gauges }
    | _ -> None)
  | _ -> None

let of_string s = Option.bind (Jsonin.parse_opt s) of_json

let counter r name =
  match List.assoc_opt name r.counters with Some v -> v | None -> 0

let gauge r name = List.assoc_opt name r.gauges
let phase_ms r name = List.assoc_opt name r.phases

(* Warm-store hit rate over this run's lookups; None when it never
   touched the store. *)
let hit_rate r =
  let hits = counter r "store.hit" and misses = counter r "store.miss" in
  let total = hits + misses in
  if total = 0 then None else Some (float_of_int hits /. float_of_int total)

(* Share of analytic nests that fell back to simulation. *)
let fallback_rate r =
  let nests = counter r "analytic.nests" in
  if nests = 0 then None
  else Some (float_of_int (counter r "analytic.fallback") /. float_of_int nests)
