module An = Locality_dep.Analysis
module Dep = Locality_dep.Depend
module Direction = Locality_dep.Direction
module G = Locality_dep.Graph
module Obs = Locality_obs.Obs

type result = {
  nests : Loop.t list;
  level : int;
  partitions : int;
  improved : bool;
}

let rec take n = function
  | [] -> []
  | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest

let rec drop n = function
  | [] -> []
  | _ :: rest as l -> if n <= 0 then l else drop (n - 1) rest

(* Keep the dependences that constrain splitting the body of a loop at
   [level]: those that may be loop-independent or carried at [level] or
   deeper. Dependences definitely carried by an outer loop are satisfied
   by the shared outer iterations. *)
let restricted_at ~level (deps : Dep.t list) =
  List.filter
    (fun (d : Dep.t) ->
      d.li
      || (d.zero_prefix >= level - 1
         && List.for_all Direction.may_zero (take (level - 1) d.vec)
         && List.exists Direction.may_pos (drop (level - 1) d.vec)))
    deps

(* Loops of the nest with their 1-based level and a path of body indices
   from the nest root, deepest first. *)
let loop_sites (nest : Loop.t) =
  let sites = ref [] in
  let rec go (l : Loop.t) level path =
    sites := (level, List.rev path, l) :: !sites;
    List.iteri
      (fun i node ->
        match node with
        | Loop.Loop inner -> go inner (level + 1) (i :: path)
        | Loop.Stmt _ -> ())
      l.Loop.body
  in
  go nest 1 [];
  List.sort (fun (l1, _, _) (l2, _, _) -> compare l2 l1) !sites

let partition_body ~deps ~level (l : Loop.t) =
  let body = Array.of_list l.Loop.body in
  if Array.length body < 2 then None
  else begin
    let owner = Hashtbl.create 16 in
    Array.iteri
      (fun i node ->
        let stmts =
          match node with
          | Loop.Stmt s -> [ s ]
          | Loop.Loop inner -> Loop.statements inner
        in
        List.iter (fun s -> Hashtbl.replace owner s.Stmt.label i) stmts)
      body;
    let relevant = restricted_at ~level deps in
    let node_name i = string_of_int i in
    let edges =
      List.filter_map
        (fun (d : Dep.t) ->
          match
            ( Hashtbl.find_opt owner d.src_label,
              Hashtbl.find_opt owner d.snk_label )
          with
          | Some i, Some j when i <> j ->
            Some { d with Dep.src_label = node_name i; snk_label = node_name j }
          | _, _ -> None)
        relevant
    in
    let g =
      G.build
        ~nodes:(List.init (Array.length body) node_name)
        ~deps:edges
    in
    let comps = G.sccs g in
    if List.length comps < 2 then None
    else
      Some
        (List.map
           (fun comp ->
             List.map (fun name -> body.(int_of_string name)) comp)
           comps)
  end

let partitions_at nest ~level =
  match List.find_opt (fun (l, _, _) -> l = level) (loop_sites nest) with
  | None -> None
  | Some (_, _, l) ->
    let deps = List.filter Dep.is_true_dep (An.deps_in_nest nest) in
    partition_body ~deps ~level l

(* Replace the loop at [path] in the nest by a sequence of nodes. *)
let rec splice (l : Loop.t) path replacement =
  match path with
  | [] -> replacement
  | i :: rest ->
    let body =
      List.concat
        (List.mapi
           (fun k node ->
             if k <> i then [ node ]
             else
               match node with
               | Loop.Loop inner -> splice inner rest replacement
               | Loop.Stmt _ -> [ node ])
           l.Loop.body)
    in
    [ Loop.Loop { l with Loop.body } ]

let run ?(cls = 4) ?(try_reversal = true) (nest : Loop.t) =
  let deps = List.filter Dep.is_true_dep (An.deps_in_nest nest) in
  let sites =
    List.filter (fun (_, _, l) -> List.length l.Loop.body >= 2) (loop_sites nest)
  in
  let note ~level verdict =
    if Obs.enabled () then
      Obs.instant "distribution.attempt"
        ~args:[ ("level", string_of_int level); ("verdict", verdict) ]
  in
  let attempt (level, path, l) =
    match partition_body ~deps ~level l with
    | None ->
      note ~level "no split: the body is one dependence cycle";
      None
    | Some parts ->
      (* Each partition becomes its own copy of the distributed loop;
         permute the copies that can reach memory order. *)
      let improved = ref false in
      let copies =
        List.map
          (fun part ->
            let copy = { l with Loop.body = part } in
            let o = Permute.run ~cls ~try_reversal copy in
            (match o.Permute.status with
            | Permute.Permuted when o.Permute.inner_ok -> improved := true
            | Permute.Permuted | Permute.Already | Permute.Failed_deps
            | Permute.Failed_bounds ->
              ());
            Loop.Loop o.Permute.nest)
          parts
      in
      if not !improved then begin
        note ~level
          (Printf.sprintf
             "split into %d partitions, but none became permutable"
             (List.length parts));
        None
      end
      else begin
        (* [splice] rebuilds only loop nodes on this path, but a
           malformed body shape must degrade to "no distribution", not
           kill the whole pass. *)
        let rec as_loops acc = function
          | [] -> Some (List.rev acc)
          | Loop.Loop l :: rest -> as_loops (l :: acc) rest
          | Loop.Stmt _ :: _ -> None
        in
        match as_loops [] (splice nest path copies) with
        | None ->
          note ~level "rejected: splice produced a bare statement";
          None
        | Some nests ->
          note ~level
            (Printf.sprintf "distributed into %d partitions"
               (List.length parts));
          Some { nests; level; partitions = List.length parts; improved = true }
      end
  in
  List.find_map attempt sites
