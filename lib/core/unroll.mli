(** Unroll-and-jam (register tiling) — step 3 of the paper's framework.

    The paper defers register-level optimization to [CCK90]/[Car92] but
    points at unroll-and-jam in §5.7 as the way to recover low-level
    parallelism after reordering for locality. Provided here as an
    optional transformation in the same spirit as {!Tiling}: unroll an
    outer loop by a factor and jam the copies into the innermost body, so
    references differing only in the unrolled index become candidates for
    scalar replacement. *)

val unroll_and_jam :
  ?avoid:string list -> Loop.t -> loop:string -> factor:int ->
  Loop.block option
(** Unroll the named outer loop of a perfect nest by [factor] and jam.
    Produces a main nest stepping by [factor] (with the copies appended
    to the innermost body, subscripts shifted) followed by a remainder
    nest covering the leftover iterations — as sibling nests when the
    unrolled loop is outermost, inside the shared outer loops otherwise
    (either way the result is a block replacing the original nest).

    Requirements checked (returning [None] when violated): the nest is
    perfect (including that the innermost body carries no nested loop),
    [loop] is on the spine but not innermost, its step is 1,
    no inner loop's bounds depend on it, [factor >= 2], and jamming is
    legal — conservatively, moving [loop] to the innermost position must
    be legal, which guarantees iterations of [loop] can interleave at
    the innermost level.

    Statement labels of the copies ([label_u<k>]) and the remainder
    ([label_r]) are freshened against every label in the nest plus
    [avoid] (labels used elsewhere in the enclosing program), so running
    after other label-suffixing transforms can never collide. *)

type balance = {
  factor : int;  (** unroll factor ([1] = the nest untouched) *)
  scalars : int;  (** registers scalar replacement would claim *)
  mem_per_orig_iter : float;
      (** array loads + stores in the innermost body per {e original}
          iteration, after scalar replacement *)
  flops_per_orig_iter : float;  (** floating-point operations, same unit *)
}

val balance_of : factor:int -> Loop.t -> balance
(** Static balance of a (possibly already jammed) nest: scalar-replace
    it, then count the innermost body's memory references and flops,
    scaled by [factor] to per-original-iteration units. *)

val choose_factor :
  ?max_regs:int -> ?candidates:int list -> Loop.t -> loop:string ->
  balance * balance list
(** [CCK90]-style factor selection: evaluate [candidates] (default
    [2;4;8]; factor 1 is always considered) by jamming [loop], scalar-
    replacing the main nest and comparing memory accesses per original
    iteration; choose the best among those needing at most [max_regs]
    (default 16) scalars, breaking ties toward the smaller factor.
    Returns the winner and every evaluated option (for reporting).
    Candidates whose jamming is illegal are dropped; factor 1 is
    returned when nothing admissible beats it. *)

val find_main : Loop.block -> loop:string -> factor:int -> Loop.t option
(** The jammed main nest inside a block produced by {!unroll_and_jam} —
    the loop named [loop] whose step is [factor] — wherever the
    surrounding outer loops put it. *)

val map_main :
  Loop.block -> loop:string -> factor:int -> f:(Loop.t -> Loop.t) ->
  Loop.block option
(** Rebuild the block with [f] applied to the jammed main nest; [None]
    when no such nest exists. *)
