module An = Locality_dep.Analysis
module Dep = Locality_dep.Depend
module Obs = Locality_obs.Obs

let header_compatible (a : Loop.header) (b : Loop.header) =
  let eq_expr x y =
    match (Affine.of_expr x, Affine.of_expr y) with
    | Some ax, Some ay -> Affine.equal ax ay
    | _, _ -> Expr.equal x y
  in
  a.Loop.step = b.Loop.step && eq_expr a.Loop.lb b.Loop.lb
  && eq_expr a.Loop.ub b.Loop.ub

let compatible_level l1 l2 =
  (* Headers must be perfectly nested up to the compared level. *)
  let rec go (l1 : Loop.t) (l2 : Loop.t) =
    if not (header_compatible l1.Loop.header l2.Loop.header) then 0
    else
      match (l1.Loop.body, l2.Loop.body) with
      | [ Loop.Loop i1 ], [ Loop.Loop i2 ] -> 1 + go i1 i2
      | _, _ -> 1
  in
  go l1 l2

(* Atomic: fusion may run concurrently from several domains when table
   rows are computed in parallel. *)
let fresh_counter = Atomic.make 0

(* Substitute an index variable in every statement and loop bound of a
   subtree, renaming any loop that binds it. *)
let rec subst_index_everywhere (l : Loop.t) ~from ~into : Loop.t =
  let header = l.Loop.header in
  let header =
    {
      header with
      Loop.index =
        (if String.equal header.Loop.index from then into else header.Loop.index);
      lb = Expr.subst header.Loop.lb from (Expr.Var into);
      ub = Expr.subst header.Loop.ub from (Expr.Var into);
    }
  in
  {
    Loop.header;
    body =
      List.map
        (function
          | Loop.Stmt s -> Loop.Stmt (Stmt.rename_index s from into)
          | Loop.Loop inner -> Loop.Loop (subst_index_everywhere inner ~from ~into))
        l.Loop.body;
  }

(* Rename l2's spine indices on levels 1..depth to l1's, without
   capturing: spine indices go through fresh temporaries, and any other
   loop of l2 whose index collides with a target is freshened first. *)
let align_indices (l1 : Loop.t) (l2 : Loop.t) ~depth =
  let take n l = List.filteri (fun i _ -> i < n) l in
  let spine_names l =
    List.map (fun (h : Loop.header) -> h.Loop.index) (Loop.loops_on_spine l)
  in
  let froms = take depth (spine_names l2) in
  let targets = take depth (spine_names l1) in
  if froms = targets then l2
  else begin
    let fresh base =
      Printf.sprintf "%s_f%d" base (Atomic.fetch_and_add fresh_counter 1 + 1)
    in
    (* Step 1: spine indices to temporaries. *)
    let temps = List.map fresh froms in
    let l2 =
      List.fold_left2
        (fun l from into -> subst_index_everywhere l ~from ~into)
        l2 froms temps
    in
    (* Step 2: freshen any remaining loop index that collides with a
       target name. *)
    let l2 =
      List.fold_left
        (fun l target ->
          if List.mem target (Loop.indices l) then
            subst_index_everywhere l ~from:target ~into:(fresh target)
          else l)
        l2 targets
    in
    (* Step 3: temporaries to the final target names. *)
    List.fold_left2
      (fun l from into -> subst_index_everywhere l ~from ~into)
      l2 temps targets
  end

let fuse_to_depth l1 l2 ~depth =
  if depth < 1 then invalid_arg "Fusion.fuse_to_depth: depth < 1";
  let l2 = align_indices l1 l2 ~depth in
  let rec merge (a : Loop.t) (b : Loop.t) d =
    if d = 1 then { a with Loop.body = a.Loop.body @ b.Loop.body }
    else
      match (a.Loop.body, b.Loop.body) with
      | [ Loop.Loop ia ], [ Loop.Loop ib ] ->
        { a with Loop.body = [ Loop.Loop (merge ia ib (d - 1)) ] }
      | _, _ -> { a with Loop.body = a.Loop.body @ b.Loop.body }
  in
  merge l1 l2 depth

let labels_of l =
  List.map (fun s -> s.Stmt.label) (Loop.statements l)
  |> List.fold_left (fun set x -> x :: set) []

let legal ~outer l1 l2 ~depth =
  let fused = fuse_to_depth l1 l2 ~depth in
  let from2 = labels_of (align_indices l1 l2 ~depth) in
  let in1 = labels_of l1 in
  let deps = An.deps ~outer [ Loop.Loop fused ] in
  let nouter = List.length outer in
  (* A dependence from the second nest's statements back to the first's
     reverses the original order — unless it is definitely carried by a
     shared outer loop, in which case the outer iterations keep it
     satisfied. *)
  let rec take n = function
    | [] -> []
    | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
  in
  not
    (List.exists
       (fun (d : Dep.t) ->
         Dep.is_true_dep d
         && List.mem d.src_label from2
         && List.mem d.snk_label in1
         && d.zero_prefix >= nouter
         && List.for_all Locality_dep.Direction.may_zero (take nouter d.vec))
       deps)

let best_cost ?(cls = 4) ~outer nest =
  (* Cheapest achievable LoopCost of the nest, in its outer context. *)
  ignore outer;
  let costs = Loopcost.all_costs ~nest ~cls () in
  match costs with
  | [] -> Poly.zero
  | (_, c) :: rest ->
    List.fold_left
      (fun acc (_, c) -> if Poly.compare_dominant c acc < 0 then c else acc)
      c rest

let weight ?(cls = 4) ~outer l1 l2 ~depth =
  let fused = fuse_to_depth l1 l2 ~depth in
  let unfused =
    Poly.add (best_cost ~cls ~outer l1) (best_cost ~cls ~outer l2)
  in
  Poly.sub unfused (best_cost ~cls ~outer fused)

let rec fuse_all_inner ?(cls = 4) (l : Loop.t) =
  let is_stmt = function Loop.Stmt _ -> true | Loop.Loop _ -> false in
  if List.for_all is_stmt l.Loop.body then Some l
  else if not (Loop.body_is_all_loops l) then None
  else
    match Loop.inner_loops l with
    | [] -> None
    | [ single ] -> (
      match fuse_all_inner ~cls single with
      | Some single' -> Some { l with Loop.body = [ Loop.Loop single' ] }
      | None -> None)
    | first :: rest ->
      let fused =
        List.fold_left
          (fun acc next ->
            match acc with
            | None -> None
            | Some acc ->
              let depth = compatible_level acc next in
              if depth < 1 then None
              else if
                (* Fuse as deeply as the headers allow. *)
                legal ~outer:[ l.Loop.header ] acc next ~depth
              then Some (fuse_to_depth acc next ~depth)
              else None)
          (Some first) rest
      in
      (match fused with
      | None -> None
      | Some fused -> (
        match fuse_all_inner ~cls fused with
        | Some fused' -> Some { l with Loop.body = [ Loop.Loop fused' ] }
        | None -> None))

let distinct_arrays (l : Loop.t) =
  let module SS = Set.Make (String) in
  List.fold_left
    (fun acc s ->
      List.fold_left
        (fun acc (r, _) -> SS.add r.Reference.array acc)
        acc (Stmt.refs s))
    SS.empty (Loop.statements l)
  |> SS.cardinal

type block_result = {
  block : Loop.block;
  candidates : int;
  fused : int;
}

(* A cluster is a fused group of originally-adjacent nests. *)
type cluster = { ids : int list; nest : Loop.t }

let fuse_run ?(cls = 4) ?interference_limit ~outer (nests : Loop.t list) =
  let n = List.length nests in
  if n < 2 then
    ( List.map (fun l -> Loop.Loop l) nests,
      0,
      0 )
  else begin
    (* Dependence edges between the original nests, in their own block. *)
    let block = List.map (fun l -> Loop.Loop l) nests in
    let deps =
      List.filter Dep.is_true_dep (An.deps ~outer block)
    in
    let owner = Hashtbl.create 16 in
    List.iteri
      (fun i l ->
        List.iter
          (fun s -> Hashtbl.replace owner s.Stmt.label i)
          (Loop.statements l))
      nests;
    let edges = Hashtbl.create 16 in
    List.iter
      (fun (d : Dep.t) ->
        match
          (Hashtbl.find_opt owner d.src_label, Hashtbl.find_opt owner d.snk_label)
        with
        | Some i, Some j when i <> j -> Hashtbl.replace edges (i, j) ()
        | _, _ -> ())
      deps;
    let has_edge i j = Hashtbl.mem edges (i, j) in
    let clusters =
      ref (List.mapi (fun i l -> { ids = [ i ]; nest = l }) nests)
    in
    (* Path between clusters through other clusters (transitive). *)
    let cluster_edge a b =
      List.exists (fun i -> List.exists (fun j -> has_edge i j) b.ids) a.ids
    in
    let path_between a b =
      let cs = !clusters in
      let rec reach visited frontier =
        if List.exists (fun c -> c == b) frontier then true
        else
          let next =
            List.concat_map
              (fun c ->
                List.filter
                  (fun c' ->
                    (not (List.memq c' visited)) && cluster_edge c c')
                  cs)
              frontier
          in
          let next = List.filter (fun c -> not (List.memq c frontier)) next in
          if next = [] then false else reach (visited @ frontier) next
      in
      reach [] [ a ]
    in
    (* Compatibility classes at the deepest level first (Figure 4). *)
    let fusions = ref 0 in
    (* The paper's candidate count: nests adjacent to a compatible nest
       (Section 5.2, "adjacent nests, where at least one pair of nests
       were compatible"). *)
    let candidates =
      let arr = Array.of_list nests in
      let marked = Array.make (Array.length arr) false in
      for i = 0 to Array.length arr - 2 do
        if compatible_level arr.(i) arr.(i + 1) >= 1 then begin
          marked.(i) <- true;
          marked.(i + 1) <- true
        end
      done;
      Array.fold_left (fun acc m -> if m then acc + 1 else acc) 0 marked
    in
    let head_label l =
      match Loop.statements l with s :: _ -> s.Stmt.label | [] -> "?"
    in
    (* Cluster nests are physically stable between sweeps (a fusion only
       replaces the two nests it merges), so best costs are computed once
       per nest and the trial-fusion weight once per surviving pair —
       without this, every sweep restart re-evaluates every pair. *)
    let bc_cache = ref [] in
    let best_cost_memo nest =
      match List.assq_opt nest !bc_cache with
      | Some c -> c
      | None ->
        let c = best_cost ~cls ~outer nest in
        bc_cache := (nest, c) :: !bc_cache;
        c
    in
    (* Nests sharing no array can never fuse profitably: reference
       groups cannot merge across the pair (group-spatial and
       group-temporal reuse both require a common array), so the fused
       nest's best LoopCost is at least the sum of the parts and the
       weight is <= 0. Skipping the trial fusion for such pairs saves
       the dependence analysis and cost evaluation of the fused nest;
       with Obs enabled the weight is still computed so the
       fusion.candidate notes keep their exact weight values. *)
    let arrays_cache = ref [] in
    let arrays_of nest =
      match List.assq_opt nest !arrays_cache with
      | Some s -> s
      | None ->
        let module SS = Set.Make (String) in
        let s =
          List.fold_left
            (fun acc s ->
              List.fold_left
                (fun acc (r, _) -> SS.add r.Reference.array acc)
                acc (Stmt.refs s))
            SS.empty (Loop.statements nest)
        in
        let s = SS.elements s in
        arrays_cache := (nest, s) :: !arrays_cache;
        s
    in
    let no_shared_array a b =
      not
        (List.exists
           (fun x -> List.exists (String.equal x) (arrays_of b))
           (arrays_of a))
    in
    let w_cache = ref [] in
    let weight_memo a b ~depth =
      match
        List.find_opt (fun ((x, y, d), _) -> x == a && y == b && d = depth)
          !w_cache
      with
      | Some (_, w) -> w
      | None ->
        let fused = fuse_to_depth a b ~depth in
        let w =
          Poly.sub
            (Poly.add (best_cost_memo a) (best_cost_memo b))
            (best_cost ~cls ~outer fused)
        in
        w_cache := ((a, b, depth), w) :: !w_cache;
        w
    in
    let note a b ~depth ~weight:w verdict =
      if Obs.enabled () then
        Obs.instant "fusion.candidate"
          ~args:
            [
              ("first", head_label a.nest);
              ("second", head_label b.nest);
              ("depth", string_of_int depth);
              ("weight", Poly.to_string w);
              ("verdict", verdict);
            ]
    in
    let try_pair a b =
      (* a textually before b *)
      let depth = compatible_level a.nest b.nest in
      if depth >= 1 then begin
        let w_opt =
          if (not (Obs.enabled ())) && no_shared_array a.nest b.nest then None
          else Some (weight_memo a.nest b.nest ~depth)
        in
        let profitable_raw =
          match w_opt with
          | None -> false
          | Some w -> Poly.compare_dominant w Poly.zero > 0
        in
        let within_limit =
          match interference_limit with
          | None -> true
          | Some limit ->
            (not profitable_raw)
            || distinct_arrays (fuse_to_depth a.nest b.nest ~depth) <= limit
        in
        let profitable = profitable_raw && within_limit in
        (* Fusing pulls b's statements up to a's position, so any
           intervening cluster that b depends on forbids the move. *)
        let intervening =
          List.filter
            (fun c ->
              (not (c == a)) && (not (c == b))
              && List.hd c.ids > List.hd a.ids
              && List.hd c.ids < List.hd b.ids)
            !clusters
        in
        let blocked = List.exists (fun m -> path_between m b) intervening in
        let is_legal =
          profitable && (not blocked) && legal ~outer a.nest b.nest ~depth
        in
        (* [note] only fires with Obs enabled, where [w_opt] is [Some]. *)
        note a b ~depth
          ~weight:(match w_opt with Some w -> w | None -> Poly.zero)
          (if not profitable_raw then "rejected: no locality benefit"
           else if not within_limit then
             "rejected: over the interference limit"
           else if blocked then
             "rejected: an intervening nest carries a dependence path"
           else if not is_legal then
             "rejected: fusing would reverse a dependence"
           else "fused");
        if is_legal then begin
          let fused = fuse_to_depth a.nest b.nest ~depth in
          clusters :=
            List.filter_map
              (fun c ->
                if c == a then Some { ids = a.ids @ b.ids; nest = fused }
                else if c == b then None
                else Some c)
              !clusters;
          incr fusions;
          true
        end
        else false
      end
      else false
    in
    (* Greedy sweep: repeatedly try to fuse any pair (textual order),
       deepest compatibility first, until a fixed point. *)
    let rec sweep () =
      let cs = !clusters in
      let pairs = ref [] in
      List.iteri
        (fun i a ->
          List.iteri
            (fun j b ->
              if j > i then
                let d = compatible_level a.nest b.nest in
                if d >= 1 then pairs := (d, a, b) :: !pairs)
            cs)
        cs;
      let sorted =
        List.sort (fun (d1, _, _) (d2, _, _) -> compare d2 d1) !pairs
      in
      let progressed =
        List.exists
          (fun (_, a, b) ->
            (* Clusters may be stale after a fusion; re-check membership. *)
            List.memq a !clusters && List.memq b !clusters && try_pair a b)
          sorted
      in
      if progressed then sweep ()
    in
    sweep ();
    ( List.map (fun c -> Loop.Loop c.nest) !clusters,
      candidates,
      !fusions )
  end

let fuse_block ?(cls = 4) ?interference_limit ~outer (b : Loop.block) =
  (* Split the block into maximal runs of loops separated by statements;
     fusion never moves a nest across a plain statement. *)
  let nodes = ref [] and candidates = ref 0 and fused = ref 0 in
  let flush run =
    match List.rev run with
    | [] -> ()
    | nests ->
      let ns, c, f = fuse_run ~cls ?interference_limit ~outer nests in
      nodes := !nodes @ ns;
      candidates := !candidates + c;
      fused := !fused + f
  in
  let run =
    List.fold_left
      (fun run node ->
        match node with
        | Loop.Loop l -> l :: run
        | Loop.Stmt s ->
          flush run;
          nodes := !nodes @ [ Loop.Stmt s ];
          [])
      [] b
  in
  flush run;
  { block = !nodes; candidates = !candidates; fused = !fused }
