module Dep = Locality_dep.Depend
module Direction = Locality_dep.Direction

let reorder_vec (d : Dep.t) ~target =
  let entry l =
    let rec find ls vs =
      match (ls, vs) with
      | l' :: _, v :: _ when String.equal l' l -> Some v
      | _ :: ls, _ :: vs -> find ls vs
      | _, _ -> None
    in
    find d.loops d.vec
  in
  List.filter_map entry target

let permutation_violation ~deps ~target =
  List.find_opt
    (fun (d : Dep.t) -> not (Direction.lex_nonneg (reorder_vec d ~target)))
    deps

let permutation_legal ~deps ~target =
  permutation_violation ~deps ~target = None

let reversal_legal ~deps ~loop =
  List.for_all
    (fun (d : Dep.t) ->
      let vec' =
        List.map2
          (fun l e -> if String.equal l loop then Direction.negate_elt e else e)
          d.loops d.vec
      in
      Direction.lex_nonneg vec')
    deps
