(** Memory order (Section 4.1): the permutation of a nest's loops sorted
    by decreasing LoopCost, so the loop promoting the most reuse is
    innermost. Symbolic costs are compared by dominating term. *)

type t = {
  ranked : (string * Poly.t) list;
      (** loops from outermost to innermost position, with their costs *)
  original : string list;  (** the nest's current loop order *)
}

val compute :
  ?deps:Locality_dep.Depend.t list -> ?cls:int -> Loop.t -> t

val order : t -> string list
val innermost : t -> string
(** The loop with the least cost — the most desirable inner loop. *)

val cost_of : t -> string -> Poly.t
(** LoopCost of the named loop, as already computed for the ranking.
    Raises [Not_found] for a loop outside the nest. *)

val is_memory_order : t -> bool
(** The nest is already in memory order. An order is accepted when no
    adjacent pair is strictly out of order (ties permute freely). *)

val inner_is_best : t -> bool
(** The current innermost loop already has the (possibly tied) least
    cost. *)

val pp : Format.formatter -> t -> unit
