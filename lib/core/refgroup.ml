module Dep = Locality_dep.Depend
module Direction = Locality_dep.Direction

type member = { stmt : Stmt.t; ref_ : Reference.t }

type group = {
  members : member list;
  rep : member;
  rep_depth : int;
}

(* Structural identity of a member: statement label plus the reference
   term. [Reference.t] is a pure tree, so polymorphic equality/hashing
   are sound and cheaper than stringifying every reference. *)
let member_key m = (m.stmt.Stmt.label, m.ref_)

(* Distinct array references of the nest, textual order; duplicated
   occurrences of one reference in a statement access the same line. *)
let collect_members nest =
  let seen = Hashtbl.create 16 in
  let out = ref [] in
  List.iter
    (fun s ->
      List.iter
        (fun (r, _) ->
          let m = { stmt = s; ref_ = r } in
          let key = member_key m in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            out := m :: !out
          end)
        (Stmt.refs s))
    (Loop.statements nest);
  List.rev !out

(* Union-find over member indices. *)
let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let union parent i j =
  let ri = find parent i and rj = find parent j in
  if ri <> rj then parent.(max ri rj) <- min ri rj

(* The loop-independent part of grouping: members, spatial unions, and
   the dependence edges with their per-loop temporal verdicts. Preparing
   once and asking for [groups] per candidate loop avoids re-collecting
   members and redoing the O(n^2) spatial pass for every candidate. *)
type pre = {
  pre_members : member array;
  pre_spatial_parent : int array;  (* union-find after spatial unions *)
  (* (i, j, always, loops where the carried distance is small) *)
  pre_edges : (int * int * bool * string list) list;
  pre_depths : int array;  (* loops of the nest enclosing each member *)
}

let prepare ~nest ~deps ~cls =
  let members = Array.of_list (collect_members nest) in
  let n = Array.length members in
  let parent = Array.init n (fun i -> i) in
  let index_of = Hashtbl.create 16 in
  Array.iteri (fun i m -> Hashtbl.replace index_of (member_key m) i) members;
  let lookup label r = Hashtbl.find_opt index_of (label, r) in
  (* Condition 1 candidates: dependence edges, with the set of loops at
     which the carried distance is a small constant resolved up front. *)
  let edges =
    List.filter_map
      (fun (d : Dep.t) ->
        match (lookup d.src_label d.src_ref, lookup d.snk_label d.snk_ref) with
        | Some i, Some j when i <> j ->
          let small_loops =
            List.filteri
              (fun k _ -> Direction.small_constant_at d.vec (k + 1))
              d.loops
          in
          Some (i, j, d.li_always, small_loops)
        | _, _ -> None)
      deps
  in
  (* Condition 2: group-spatial reuse is loop-independent. The affine
     view of each first subscript is computed once, not per pair. *)
  let firsts =
    Array.map
      (fun m ->
        match m.ref_.Reference.subs with
        | [] -> None
        | s :: _ -> Affine.of_expr s)
      members
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let close =
        match (firsts.(i), firsts.(j)) with
        | Some a1, Some a2 -> (
          match Affine.is_const (Affine.sub a1 a2) with
          | Some d -> abs d <= cls
          | None -> false)
        | _, _ -> false
      in
      if
        close
        &&
        let r1 = members.(i).ref_ and r2 = members.(j).ref_ in
        String.equal r1.Reference.array r2.Reference.array
        && List.length r1.Reference.subs = List.length r2.Reference.subs
        && List.for_all2 Expr.equal (List.tl r1.Reference.subs)
             (List.tl r2.Reference.subs)
      then union parent i j
    done
  done;
  let depth_cache = Hashtbl.create 16 in
  let depths =
    Array.map
      (fun m ->
        let label = m.stmt.Stmt.label in
        match Hashtbl.find_opt depth_cache label with
        | Some d -> d
        | None ->
          let d =
            match Loop.enclosing_headers nest m.stmt with
            | Some hs -> List.length hs
            | None -> 0
          in
          Hashtbl.replace depth_cache label d;
          d)
      members
  in
  {
    pre_members = members;
    pre_spatial_parent = parent;
    pre_edges = edges;
    pre_depths = depths;
  }

let groups pre ~loop =
  let members = pre.pre_members in
  let parent = Array.copy pre.pre_spatial_parent in
  List.iter
    (fun (i, j, always, small_loops) ->
      if always || List.exists (String.equal loop) small_loops then
        union parent i j)
    pre.pre_edges;
  (* Assemble groups in order of first member. *)
  let buckets = Hashtbl.create 16 in
  let order = ref [] in
  Array.iteri
    (fun i m ->
      let root = find parent i in
      match Hashtbl.find_opt buckets root with
      | None ->
        Hashtbl.add buckets root (ref [ (i, m) ]);
        order := root :: !order
      | Some l -> l := (i, m) :: !l)
    members;
  let depth_of i = pre.pre_depths.(i) in
  List.rev_map
    (fun root ->
      let members = List.rev !(Hashtbl.find buckets root) in
      let ri, rep =
        List.fold_left
          (fun ((bi, _) as best) ((i, _) as m) ->
            if depth_of i > depth_of bi then m else best)
          (List.hd members) (List.tl members)
      in
      {
        members = List.map snd members;
        rep;
        rep_depth = depth_of ri;
      })
    !order

let compute ~nest ~deps ~loop ~cls = groups (prepare ~nest ~deps ~cls) ~loop

let pp_group ppf g =
  Format.fprintf ppf "{%s}"
    (String.concat ", "
       (List.map (fun m -> Reference.to_string m.ref_) g.members))
