(** Reference groups (Section 3.3).

    Two references belong to the same group with respect to a loop [l]
    when they exhibit group-temporal reuse (a loop-independent dependence,
    or one carried by [l] with a small constant distance and zeros
    elsewhere) or group-spatial reuse (same array, first subscripts
    differing by less than the cache line size, other subscripts equal). *)

type member = { stmt : Stmt.t; ref_ : Reference.t }

type group = {
  members : member list;  (** distinct references, textual order *)
  rep : member;  (** representative: a deepest-nested member *)
  rep_depth : int;  (** number of loops of the nest enclosing [rep] *)
}

val compute :
  nest:Loop.t -> deps:Locality_dep.Depend.t list -> loop:string -> cls:int ->
  group list
(** Partition the array references of [nest] with respect to candidate
    inner loop [loop]. [deps] must include input dependences (as produced
    by [Analysis.deps_in_nest ~include_input:true]); [cls] is the cache
    line size in array elements. Scalar references do not participate. *)

type pre
(** The loop-independent part of grouping (members, spatial unions,
    dependence edges), computed once per nest and shared across
    candidate loops. *)

val prepare :
  nest:Loop.t -> deps:Locality_dep.Depend.t list -> cls:int -> pre

val groups : pre -> loop:string -> group list
(** [groups (prepare ~nest ~deps ~cls) ~loop] = [compute ~nest ~deps
    ~loop ~cls], without repeating the loop-independent work. *)

val pp_group : Format.formatter -> group -> unit
