(** The Permute algorithm (Section 4.1).

    Rank the loops of a perfect nest by LoopCost into {e memory order}
    and permute toward it. When memory order is illegal, build the
    nearest legal permutation greedily, preferring to position the most
    desirable innermost loop (trying loop reversal as an enabler when
    requested). *)

type status =
  | Already  (** the nest was already in memory order *)
  | Permuted  (** permuted into the achieved order *)
  | Failed_deps  (** dependences prevent any improvement *)
  | Failed_bounds  (** bounds too complex to rewrite *)

type outcome = {
  nest : Loop.t;  (** the (possibly) transformed nest *)
  achieved : string list;  (** loop order of [nest], outermost first *)
  memory_order : Memorder.t;
  status : status;
  inner_ok : bool;
      (** the achieved innermost loop has the least (or tied) LoopCost *)
  reversed : string list;  (** loops reversed to enable the permutation *)
}

val run :
  ?cls:int ->
  ?try_reversal:bool ->
  ?deps:Locality_dep.Depend.t list ->
  ?mo:Memorder.t ->
  Loop.t ->
  outcome
(** Permute a perfect nest toward memory order. Imperfect nests are
    returned unchanged with status [Failed_deps] and [inner_ok] reflecting
    the current order (callers fuse or distribute first). [deps] (with
    input dependences) and [mo] may be supplied when the caller has
    already computed them for this nest. *)

val status_to_string : status -> string
