module An = Locality_dep.Analysis
module Dep = Locality_dep.Depend

let unroll_and_jam ?(avoid = []) (nest : Loop.t) ~loop ~factor =
  if factor < 2 then None
  else if not (Loop.is_perfect nest) then None
  else
    let spine = Loop.loops_on_spine nest in
    let names = List.map (fun (h : Loop.header) -> h.Loop.index) spine in
    match List.rev names with
    | [] | [ _ ] -> None
    | innermost :: _ ->
      if String.equal innermost loop || not (List.mem loop names) then None
      else begin
        let target : Loop.header =
          List.find (fun (h : Loop.header) -> h.Loop.index = loop) spine
        in
        if target.Loop.step <> 1 then None
        else if
          (* Inner loops below the unrolled one must not depend on it. *)
          List.exists
            (fun (h : Loop.header) ->
              (not (String.equal h.Loop.index loop))
              && (List.mem loop (Expr.vars h.Loop.lb)
                 || List.mem loop (Expr.vars h.Loop.ub)))
            spine
        then None
        else begin
          (* Conservative legality: the unrolled iterations interleave at
             the innermost level, so moving [loop] innermost must be
             legal. *)
          let deps = List.filter Dep.is_true_dep (An.deps_in_nest nest) in
          let jammed_order =
            List.filter (fun x -> not (String.equal x loop)) names @ [ loop ]
          in
          if not (Legality.permutation_legal ~deps ~target:jammed_order) then
            None
          else begin
            let rec innermost_body (l : Loop.t) =
              match l.Loop.body with
              | [ Loop.Loop inner ] -> innermost_body inner
              | b -> b
            in
            let body = innermost_body nest in
            if
              List.exists
                (function Loop.Loop _ -> true | Loop.Stmt _ -> false)
                body
            then None
            else begin
            (* Label freshening must stay collision-free even when the
               nest already carries suffixed labels from earlier
               transforms (a prior unroll, distribution copies): probe
               each candidate against every label in scope. *)
            let used = Hashtbl.create 64 in
            List.iter (fun l -> Hashtbl.replace used l ()) avoid;
            List.iter
              (fun (s : Stmt.t) -> Hashtbl.replace used s.Stmt.label ())
              (Loop.statements nest);
            let fresh base =
              if not (Hashtbl.mem used base) then begin
                Hashtbl.replace used base ();
                base
              end
              else
                let rec go i =
                  let cand = Printf.sprintf "%s_%d" base i in
                  if Hashtbl.mem used cand then go (i + 1)
                  else begin
                    Hashtbl.replace used cand ();
                    cand
                  end
                in
                go 2
            in
            let copy k =
              List.map
                (function
                  | Loop.Stmt s ->
                    let s =
                      Stmt.subst_index s loop (Expr.Add (Var loop, Int k))
                    in
                    Loop.Stmt
                      {
                        s with
                        Stmt.label =
                          fresh (Printf.sprintf "%s_u%d" s.Stmt.label k);
                      }
                  | Loop.Loop _ as node -> node (* excluded by the guard *))
                body
            in
            let jammed_body = List.concat (List.init factor copy) in
            (* Main nest: [loop] steps by [factor] over the full groups;
               remainder nest covers the tail. *)
            let lb = target.Loop.lb and ub = target.Loop.ub in
            let trip =
              Expr.Add (Sub (ub, lb), Int 1)
            in
            let main_ub =
              (* lb + factor * (trip / factor) - 1 *)
              Affine.normalize
                (Expr.Sub
                   ( Expr.Add (lb, Mul (Int factor, Div (trip, Int factor))),
                     Int 1 ))
            in
            let remainder_lb = Affine.normalize (Expr.Add (main_ub, Int 1)) in
            let rebuild header_map inner_body =
              let rec go = function
                | [] -> inner_body
                | (h : Loop.header) :: rest ->
                  [ Loop.Loop { Loop.header = header_map h; body = go rest } ]
              in
              go spine
            in
            let main =
              rebuild
                (fun h ->
                  if String.equal h.Loop.index loop then
                    { h with Loop.ub = main_ub; step = factor }
                  else h)
                jammed_body
            in
            let remainder =
              let relabel =
                List.map (function
                  | Loop.Stmt s ->
                    Loop.Stmt { s with Stmt.label = fresh (s.Stmt.label ^ "_r") }
                  | Loop.Loop _ as node -> node (* excluded by the guard *))
              in
              rebuild
                (fun h ->
                  if String.equal h.Loop.index loop then
                    { h with Loop.lb = remainder_lb }
                  else h)
                (relabel body)
            in
            match (main, remainder) with
            | [ Loop.Loop m ], [ Loop.Loop r ] ->
              if String.equal (List.hd names) loop then
                (* Outermost: the two versions become sibling nests. *)
                Some [ Loop.Loop m; Loop.Loop r ]
              else begin
                (* Interior: both versions share the outer prefix, so
                   splice the remainder's sub-nest as a sibling of the
                   main sub-nest inside the common parent. *)
                let rec splice (l : Loop.t) (r : Loop.t) =
                  match (l.Loop.body, r.Loop.body) with
                  | [ Loop.Loop lm ], [ Loop.Loop lr ]
                    when not (String.equal lm.Loop.header.Loop.index loop) ->
                    { l with Loop.body = [ Loop.Loop (splice lm lr) ] }
                  | [ Loop.Loop lm ], [ Loop.Loop lr ] ->
                    { l with Loop.body = [ Loop.Loop lm; Loop.Loop lr ] }
                  | _, _ -> l
                in
                Some [ Loop.Loop (splice m r) ]
              end
            | _, _ -> None
            end
          end
        end
      end

type balance = {
  factor : int;
  scalars : int;
  mem_per_orig_iter : float;
  flops_per_orig_iter : float;
}

let rec count_flops (e : Stmt.rexpr) =
  match e with
  | Stmt.Const _ | Stmt.Scalar _ | Stmt.Iexpr _ | Stmt.Load _ -> 0
  | Stmt.Unop (_, a) -> 1 + count_flops a
  | Stmt.Binop (_, a, b) -> 1 + count_flops a + count_flops b

(* Memory references and floating-point operations per sweep of the
   innermost loop body. Identical references count once: the copies
   unroll-and-jam makes of an unchanged reference (A(I,K) used by every
   jammed statement) share one register load after CSE — that sharing
   is the transformation's benefit. *)
let count_inner_body (nest : Loop.t) =
  let rec inner (l : Loop.t) =
    let subloops =
      List.filter_map
        (function Loop.Loop x -> Some x | Loop.Stmt _ -> None)
        l.Loop.body
    in
    match subloops with
    | [ l' ] -> inner l'
    | _ ->
      List.filter_map
        (function Loop.Stmt s -> Some s | Loop.Loop _ -> None)
        l.Loop.body
  in
  let stmts = inner nest in
  let distinct = Hashtbl.create 16 in
  List.iter
    (fun (s : Stmt.t) ->
      List.iter
        (fun ((r : Reference.t), acc) ->
          let kind = match acc with `Read -> "r" | `Write -> "w" in
          Hashtbl.replace distinct (kind ^ Reference.to_string r) ())
        (Stmt.refs s))
    stmts;
  let flops =
    List.fold_left (fun f (s : Stmt.t) -> f + count_flops s.Stmt.rhs) 0 stmts
  in
  (Hashtbl.length distinct, flops)

let balance_of ~factor (nest : Loop.t) =
  let sr = Scalar_replacement.apply nest in
  let mem, flops = count_inner_body sr.Scalar_replacement.nest in
  let fl = float_of_int factor in
  {
    factor;
    scalars = sr.Scalar_replacement.replaced;
    mem_per_orig_iter = float_of_int mem /. fl;
    flops_per_orig_iter = float_of_int flops /. fl;
  }

let map_main (block : Loop.block) ~loop ~factor ~f =
  let found = ref false in
  let rec go_node (node : Loop.node) =
    match node with
    | Loop.Stmt _ -> node
    | Loop.Loop l ->
      if
        (not !found)
        && l.Loop.header.Loop.index = loop
        && l.Loop.header.Loop.step = factor
      then begin
        found := true;
        Loop.Loop (f l)
      end
      else Loop.Loop { l with Loop.body = List.map go_node l.Loop.body }
  in
  let block' = List.map go_node block in
  if !found then Some block' else None

let find_main (block : Loop.block) ~loop ~factor =
  let out = ref None in
  ignore
    (map_main block ~loop ~factor ~f:(fun l ->
         out := Some l;
         l));
  !out

let choose_factor ?(max_regs = 16) ?(candidates = [ 2; 4; 8 ]) (nest : Loop.t)
    ~loop =
  let base = balance_of ~factor:1 nest in
  let options =
    base
    :: List.filter_map
         (fun u ->
           if u < 2 then None
           else
             match unroll_and_jam nest ~loop ~factor:u with
             | Some block ->
               Option.map
                 (balance_of ~factor:u)
                 (find_main block ~loop ~factor:u)
             | None -> None)
         (List.sort_uniq compare candidates)
  in
  let admissible = List.filter (fun b -> b.scalars <= max_regs) options in
  let better a b =
    (* fewer memory accesses per original iteration wins; ties go to the
       smaller factor (less code growth) *)
    if a.mem_per_orig_iter < b.mem_per_orig_iter -. 1e-9 then a
    else if b.mem_per_orig_iter < a.mem_per_orig_iter -. 1e-9 then b
    else if a.factor <= b.factor then a
    else b
  in
  match admissible with
  | [] -> (base, options)
  | first :: rest -> (List.fold_left better first rest, options)
