module An = Locality_dep.Analysis

type ref_class = Invariant | Consecutive | None_

(* Coefficient of the candidate index in a subscript: [None] marks a
   non-affine subscript that mentions the index (unknown access pattern). *)
let sub_coeff (e : Expr.t) idx =
  match Affine.of_expr e with
  | Some a -> Some (Affine.coeff a idx)
  | None -> if List.mem idx (Expr.vars e) then None else Some 0

let classify ~cls ~(candidate : Loop.header) (r : Reference.t) =
  let idx = candidate.Loop.index in
  let coeffs = List.map (fun s -> sub_coeff s idx) r.Reference.subs in
  match coeffs with
  | [] -> Invariant (* scalar *)
  | first :: rest ->
    let rest_zero = List.for_all (fun c -> c = Some 0) rest in
    (match first with
    | Some 0 when rest_zero -> Invariant
    | Some c when c <> 0 && rest_zero && abs (candidate.Loop.step * c) < cls
      ->
      Consecutive
    | _ -> None_)

let ref_cost_with ~trip ~cls ~(candidate : Loop.header) (r : Reference.t) =
  match classify ~cls ~candidate r with
  | Invariant -> Poly.one
  | Consecutive ->
    let stride =
      match sub_coeff (List.hd r.Reference.subs) candidate.Loop.index with
      | Some c -> abs (candidate.Loop.step * c)
      | None -> 1
    in
    (* trip / (cls / stride) *)
    Poly.mul_rat (Rat.make stride cls) trip
  | None_ -> trip

let ref_cost ~env ~cls ~(candidate : Loop.header) (r : Reference.t) =
  ref_cost_with ~trip:(Trip.closed_trip env candidate) ~cls ~candidate r

(* Per-nest caches shared across candidate loops: closed-form trips per
   header, enclosing headers per statement, and the loop-independent
   part of reference grouping. *)
type ctx = {
  c_nest : Loop.t;
  c_cls : int;
  c_env : Trip.env;
  c_pre : Refgroup.pre;
  c_trips : (string, Poly.t) Hashtbl.t;
  c_headers : (string, Loop.header list) Hashtbl.t;
}

let make_ctx ~deps ~nest ~cls =
  {
    c_nest = nest;
    c_cls = cls;
    c_env = Trip.env_of_nest nest;
    c_pre = Refgroup.prepare ~nest ~deps ~cls;
    c_trips = Hashtbl.create 8;
    c_headers = Hashtbl.create 8;
  }

let ctx_trip ctx (h : Loop.header) =
  match Hashtbl.find_opt ctx.c_trips h.Loop.index with
  | Some t -> t
  | None ->
    let t = Trip.closed_trip ctx.c_env h in
    Hashtbl.replace ctx.c_trips h.Loop.index t;
    t

let ctx_headers ctx (s : Stmt.t) =
  match Hashtbl.find_opt ctx.c_headers s.Stmt.label with
  | Some hs -> hs
  | None ->
    let hs =
      match Loop.enclosing_headers ctx.c_nest s with
      | Some hs -> hs
      | None -> []
    in
    Hashtbl.replace ctx.c_headers s.Stmt.label hs;
    hs

let loop_cost_ctx ctx loop =
  let cls = ctx.c_cls in
  let groups = Refgroup.groups ctx.c_pre ~loop in
  List.fold_left
    (fun acc (g : Refgroup.group) ->
      let rep = g.Refgroup.rep in
      let headers = ctx_headers ctx rep.Refgroup.stmt in
      let candidate =
        List.find_opt
          (fun (h : Loop.header) -> String.equal h.Loop.index loop)
          headers
      in
      let cost =
        match candidate with
        | Some h ->
          let inner =
            ref_cost_with ~trip:(ctx_trip ctx h) ~cls ~candidate:h
              rep.Refgroup.ref_
          in
          List.fold_left
            (fun acc (other : Loop.header) ->
              if String.equal other.Loop.index loop then acc
              else Poly.mul acc (ctx_trip ctx other))
            inner headers
        | None ->
          (* The candidate does not enclose this reference: no reuse can
             be attributed to it; charge one line per iteration. *)
          List.fold_left
            (fun acc (other : Loop.header) -> Poly.mul acc (ctx_trip ctx other))
            Poly.one headers
      in
      Poly.add acc cost)
    Poly.zero groups

let loop_cost ?deps ~nest ~cls loop =
  let deps =
    match deps with
    | Some d -> d
    | None -> An.deps_in_nest ~include_input:true nest
  in
  loop_cost_ctx (make_ctx ~deps ~nest ~cls) loop

let all_costs ?deps ~nest ~cls () =
  let deps =
    match deps with
    | Some d -> d
    | None -> An.deps_in_nest ~include_input:true nest
  in
  let ctx = make_ctx ~deps ~nest ~cls in
  List.map (fun l -> (l, loop_cost_ctx ctx l)) (Loop.indices nest)

let group_cost_table ~nest ~cls ~candidates =
  let deps = An.deps_in_nest ~include_input:true nest in
  let env = Trip.env_of_nest nest in
  match candidates with
  | [] -> []
  | first :: _ ->
    let groups = Refgroup.compute ~nest ~deps ~loop:first ~cls in
    List.map
      (fun (g : Refgroup.group) ->
        let rep = g.Refgroup.rep in
        let headers =
          match Loop.enclosing_headers nest rep.Refgroup.stmt with
          | Some hs -> hs
          | None -> []
        in
        let cost_for loop =
          match
            List.find_opt
              (fun (h : Loop.header) -> String.equal h.Loop.index loop)
              headers
          with
          | Some h ->
            let inner = ref_cost ~env ~cls ~candidate:h rep.Refgroup.ref_ in
            List.fold_left
              (fun acc (other : Loop.header) ->
                if String.equal other.Loop.index loop then acc
                else Poly.mul acc (Trip.closed_trip env other))
              inner headers
          | None ->
            List.fold_left
              (fun acc (other : Loop.header) ->
                Poly.mul acc (Trip.closed_trip env other))
              Poly.one headers
        in
        (g, List.map (fun l -> (l, cost_for l)) candidates))
      groups
