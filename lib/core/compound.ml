module Obs = Locality_obs.Obs
module Event = Locality_obs.Event
module An = Locality_dep.Analysis

type nest_stat = {
  nest_depth : int;
  loops : int;
  orig_mem_order : bool;
  final_mem_order : bool;
  orig_inner_ok : bool;
  final_inner_ok : bool;
  permuted : bool;
  fused_enabling : bool;
  distributed : bool;
  new_nests : int;
  reversed : int;
  cost_orig : Poly.t;
  cost_final : Poly.t;
  cost_ideal : Poly.t;
  labels : string list;
}

type stats = {
  nests : nest_stat list;
  fusion_candidates : int;
  fusions_applied : int;
  distributions : int;
  distribution_results : int;
}

let empty_stats =
  {
    nests = [];
    fusion_candidates = 0;
    fusions_applied = 0;
    distributions = 0;
    distribution_results = 0;
  }

let merge_stats a b =
  {
    nests = a.nests @ b.nests;
    fusion_candidates = a.fusion_candidates + b.fusion_candidates;
    fusions_applied = a.fusions_applied + b.fusions_applied;
    distributions = a.distributions + b.distributions;
    distribution_results = a.distribution_results + b.distribution_results;
  }

(* The innermost loop actually enclosing the deepest statement. *)
let inner_name (nest : Loop.t) =
  let deepest =
    List.fold_left
      (fun best s ->
        match Loop.enclosing_headers nest s with
        | Some hs ->
          let d = List.length hs in
          let _, bd = best in
          if d > bd then
            (match List.rev hs with
            | h :: _ -> (h.Loop.index, d)
            | [] -> best)
          else best
        | None -> best)
      (nest.Loop.header.Loop.index, 1)
      (Loop.statements nest)
  in
  fst deepest

let spine_order (n : Loop.t) =
  List.map (fun (h : Loop.header) -> h.Loop.index) (Loop.loops_on_spine n)

(* Decision context key for a nest: position in its block plus loop
   order and statement labels, nested under the enclosing nest's key.
   [memoria explain] groups each nest's notes under this key. *)
let nest_ctx ~pos (l : Loop.t) =
  let own =
    Printf.sprintf "nest%d:%s[%s]" pos
      (String.concat "," (spine_order l))
      (String.concat "," (List.map (fun s -> s.Stmt.label) (Loop.statements l)))
  in
  match Obs.current_ctx () with "" -> own | parent -> parent ^ "/" ^ own

let rec optimize_nest ~cls ~try_reversal ?interference_limit ~outer ~pos
    (l : Loop.t) : Loop.t list * stats =
  if Obs.enabled () then
    Obs.with_ctx (nest_ctx ~pos l) (fun () ->
        do_optimize_nest ~cls ~try_reversal ?interference_limit ~outer l)
  else do_optimize_nest ~cls ~try_reversal ?interference_limit ~outer l

and do_optimize_nest ~cls ~try_reversal ?interference_limit ~outer
    (l : Loop.t) : Loop.t list * stats =
  let deps =
    Obs.span "dep" (fun () -> An.deps_in_nest ~include_input:true l)
  in
  let mo = Memorder.compute ~deps ~cls l in
  let orig_mem = Memorder.is_memory_order mo in
  let orig_inner = Memorder.inner_is_best mo in
  let cost_orig = Memorder.cost_of mo (inner_name l) in
  let cost_ideal = Memorder.cost_of mo (Memorder.innermost mo) in
  let finish ?(permuted = false) ?(fused_enabling = false)
      ?(distributed = false) ?(new_nests = 0) ?(reversed = 0) ~action ~reason
      ~extra nests =
    (* One Memorder per result nest, shared by the final_* flags and the
       final cost; the unchanged nest reuses the ranking from above. *)
    let mos =
      List.map (fun n -> if n == l then mo else Memorder.compute ~cls n) nests
    in
    let final_mem = List.for_all Memorder.is_memory_order mos in
    let final_inner = List.for_all Memorder.inner_is_best mos in
    let stat =
      {
        nest_depth = Loop.depth l;
        loops = List.length (Loop.indices l);
        orig_mem_order = orig_mem;
        final_mem_order = final_mem;
        orig_inner_ok = orig_inner;
        final_inner_ok = final_inner;
        permuted;
        fused_enabling;
        distributed;
        new_nests;
        reversed;
        cost_orig;
        cost_final =
          List.fold_left2
            (fun acc n m -> Poly.add acc (Memorder.cost_of m (inner_name n)))
            Poly.zero nests mos;
        cost_ideal;
        labels = List.map (fun s -> s.Stmt.label) (Loop.statements l);
      }
    in
    (* One decision record per nest_stat: what the compound algorithm
       chose for this nest and why, with the LoopCost evidence. *)
    if Obs.enabled () then
      Obs.decision
        {
          Event.nest = Obs.current_ctx ();
          labels = stat.labels;
          depth = stat.nest_depth;
          action;
          reason;
          original_order = mo.Memorder.original;
          achieved_orders = List.map spine_order nests;
          memory_order = Memorder.order mo;
          costs =
            List.map (fun (x, c) -> (x, Poly.to_string c)) mo.Memorder.ranked;
        };
    (nests, merge_stats { empty_stats with nests = [ stat ] } extra)
  in
  if orig_mem && orig_inner then
    finish ~action:Event.No_change
      ~reason:"already in memory order with the best innermost loop"
      ~extra:empty_stats [ l ]
  else
    let po = Permute.run ~cls ~try_reversal ~deps ~mo l in
    if
      po.Permute.inner_ok
      && (po.Permute.status = Permute.Permuted
         || po.Permute.status = Permute.Already)
    then
      let action =
        if po.Permute.reversed <> [] then Event.Reverse else Event.Permute
      in
      let reason =
        if po.Permute.achieved = Memorder.order mo then
          "permuted into memory order"
        else "permuted into the nearest legal order (best innermost loop)"
      in
      let reason =
        if po.Permute.reversed = [] then reason
        else
          Printf.sprintf "%s, enabled by reversing %s" reason
            (String.concat ", " po.Permute.reversed)
      in
      finish
        ~permuted:(po.Permute.status = Permute.Permuted)
        ~reversed:(List.length po.Permute.reversed)
        ~action ~reason ~extra:empty_stats [ po.Permute.nest ]
    else
      (* Try fusing all inner nests to expose a perfect nest. *)
      let fusion_attempt =
        if Loop.is_perfect l then None
        else
          match Fusion.fuse_all_inner ~cls l with
          | None ->
            if Obs.enabled () then
              Obs.instant "fusion.enabling"
                ~args:
                  [
                    ( "verdict",
                      "not fusable (incompatible headers, illegal, or body \
                       mixes statements and loops)" );
                  ];
            None
          | Some fused ->
            let po2 = Permute.run ~cls ~try_reversal fused in
            if
              po2.Permute.inner_ok
              && (po2.Permute.status = Permute.Permuted
                 || po2.Permute.status = Permute.Already)
            then begin
              if Obs.enabled () then
                Obs.instant "fusion.enabling"
                  ~args:[ ("verdict", "fused into a perfect nest") ];
              Some po2
            end
            else begin
              if Obs.enabled () then
                Obs.instant "fusion.enabling"
                  ~args:
                    [ ("verdict", "fused, but permutation is still blocked") ];
              None
            end
      in
      match fusion_attempt with
      | Some po2 ->
        finish
          ~permuted:(po2.Permute.status = Permute.Permuted)
          ~fused_enabling:true
          ~reversed:(List.length po2.Permute.reversed)
          ~action:Event.Fuse
          ~reason:
            (Printf.sprintf
               "fused inner nests into a perfect nest, then permuted to %s"
               (String.concat "," po2.Permute.achieved))
          ~extra:empty_stats [ po2.Permute.nest ]
      | None -> (
        (* Try distribution; re-fuse the pieces afterwards. *)
        match Distribution.run ~cls ~try_reversal l with
        | Some res ->
          let refused, fstats =
            refuse_pieces ~cls ~try_reversal ?interference_limit ~outer
              res.Distribution.nests
          in
          finish ~distributed:true ~new_nests:res.Distribution.partitions
            ~permuted:true ~action:Event.Distribute
            ~reason:
              (Printf.sprintf
                 "distributed at level %d into %d partitions so a partition \
                  could be permuted into memory order"
                 res.Distribution.level res.Distribution.partitions)
            ~extra:
              {
                fstats with
                distributions = 1;
                distribution_results = res.Distribution.partitions;
              }
            refused
        | None ->
          (* Keep the closest permutation found. A perfect nest has no
             internal structure left to reorganise; an imperfect one
             (e.g. under a sequential time loop) may contain nests that
             can be optimized independently. *)
          let base = po.Permute.nest in
          let action, reason =
            if po.Permute.status = Permute.Permuted then
              ( (if po.Permute.reversed <> [] then Event.Reverse
                 else Event.Permute),
                "partially permuted; memory order itself is "
                ^ Permute.status_to_string po.Permute.status )
            else
              ( Event.No_change,
                "no improvement possible: "
                ^ Permute.status_to_string po.Permute.status )
          in
          if Loop.is_perfect base then
            finish
              ~permuted:(po.Permute.status = Permute.Permuted)
              ~reversed:(List.length po.Permute.reversed)
              ~action ~reason ~extra:empty_stats [ base ]
          else
            let body', inner_stats =
              run_block ~cls ~try_reversal ?interference_limit
                ~outer:(outer @ [ base.Loop.header ])
                base.Loop.body
            in
            finish
              ~permuted:(po.Permute.status = Permute.Permuted)
              ~reversed:(List.length po.Permute.reversed)
              ~action
              ~reason:(reason ^ "; inner nests optimized independently")
              ~extra:inner_stats
              [ { base with Loop.body = body' } ])

(* Fuse adjacent nests produced by distribution to recover temporal
   locality (the Fuse(l) step of Figure 6). *)
and refuse_pieces ~cls ~try_reversal ?interference_limit ~outer nests =
  ignore try_reversal;
  match nests with
  | [] | [ _ ] -> (nests, empty_stats)
  | _ :: _ :: _ ->
    let fr =
      Fusion.fuse_block ~cls ?interference_limit ~outer
        (List.map (fun n -> Loop.Loop n) nests)
    in
    let nests' =
      List.filter_map
        (function Loop.Loop l -> Some l | Loop.Stmt _ -> None)
        fr.Fusion.block
    in
    ( nests',
      {
        empty_stats with
        fusion_candidates = fr.Fusion.candidates;
        fusions_applied = fr.Fusion.fused;
      } )

(* Cross-nest fusion can make inner loops newly adjacent inside the
   merged nest (two fused outer loops each carrying an inner nest); fuse
   those downward too, so a single pass of the driver reaches the same
   fixpoint a second pass would. No permutation is revisited: the merged
   nest's memory order was already decided. *)
and fuse_downward ~cls ?interference_limit ~outer (l : Loop.t) =
  let inner_outer = outer @ [ l.Loop.header ] in
  let fr = Fusion.fuse_block ~cls ?interference_limit ~outer:inner_outer l.Loop.body in
  let body', candidates, fused =
    List.fold_left
      (fun (acc, c, f) node ->
        match node with
        | Loop.Stmt _ -> (acc @ [ node ], c, f)
        | Loop.Loop sub ->
          let sub', c', f' =
            fuse_downward ~cls ?interference_limit ~outer:inner_outer sub
          in
          (acc @ [ Loop.Loop sub' ], c + c', f + f'))
      ([], fr.Fusion.candidates, fr.Fusion.fused)
      fr.Fusion.block
  in
  ({ l with Loop.body = body' }, candidates, fused)

and run_block ?(cls = 4) ?(try_reversal = true) ?interference_limit ~outer
    (b : Loop.block) =
  (* Optimize each nest in place. *)
  let optimized, stats, _ =
    List.fold_left
      (fun (acc, stats, pos) node ->
        match node with
        | Loop.Stmt s -> (acc @ [ Loop.Stmt s ], stats, pos + 1)
        | Loop.Loop l when Loop.depth l >= 2 ->
          let nests, s =
            optimize_nest ~cls ~try_reversal ?interference_limit ~outer ~pos l
          in
          ( acc @ List.map (fun n -> Loop.Loop n) nests,
            merge_stats stats s,
            pos + 1 )
        | Loop.Loop l -> (acc @ [ Loop.Loop l ], stats, pos + 1))
      ([], empty_stats, 0) b
  in
  (* Final pass: fuse adjacent optimized nests when profitable, then
     complete any fusions the merges exposed deeper inside. *)
  let fr = Fusion.fuse_block ~cls ?interference_limit ~outer optimized in
  let block, extra_candidates, extra_fused =
    if fr.Fusion.fused = 0 then (fr.Fusion.block, 0, 0)
    else
      List.fold_left
        (fun (acc, c, f) node ->
          match node with
          | Loop.Stmt _ -> (acc @ [ node ], c, f)
          | Loop.Loop l ->
            let l', c', f' = fuse_downward ~cls ?interference_limit ~outer l in
            (acc @ [ Loop.Loop l' ], c + c', f + f'))
        ([], 0, 0) fr.Fusion.block
  in
  ( block,
    merge_stats stats
      {
        empty_stats with
        fusion_candidates = fr.Fusion.candidates + extra_candidates;
        fusions_applied = fr.Fusion.fused + extra_fused;
      } )

let run_program ?(cls = 4) ?(try_reversal = true) ?interference_limit
    (p : Program.t) =
  Obs.span "compound" (fun () ->
      let body, stats =
        run_block ~cls ~try_reversal ?interference_limit ~outer:[]
          p.Program.body
      in
      if Obs.enabled () then begin
        Obs.add_span_arg "nests" (string_of_int (List.length stats.nests));
        Obs.add_span_arg "fusions" (string_of_int stats.fusions_applied);
        Obs.add_span_arg "distributions" (string_of_int stats.distributions)
      end;
      (Program.map_body (fun _ -> body) p, stats))
