(** Legality tests for loop permutation and reversal.

    A transformed dependence is legal when its permuted (and possibly
    negated) hybrid vector remains lexicographically non-negative. *)

val permutation_legal :
  deps:Locality_dep.Depend.t list -> target:string list -> bool
(** Every dependence stays lexicographically non-negative when its vector
    entries are reordered to [target] (outermost first). Dependences over
    loops outside [target] keep those entries in place relative order. *)

val permutation_violation :
  deps:Locality_dep.Depend.t list ->
  target:string list ->
  Locality_dep.Depend.t option
(** The first dependence that [target] would reverse, for decision
    logging — [None] exactly when {!permutation_legal}. *)

val reversal_legal :
  deps:Locality_dep.Depend.t list -> loop:string -> bool
(** Negating every dependence entry for [loop] leaves all vectors
    lexicographically non-negative (the dependences remain carried on
    outer loops). *)

val reorder_vec :
  Locality_dep.Depend.t -> target:string list -> Locality_dep.Direction.t
(** The dependence's vector with entries reordered to [target]; entries
    for loops absent from [target] are dropped (their loops no longer
    enclose both endpoints only in hypothetical uses — callers pass
    complete targets). *)
