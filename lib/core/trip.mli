(** Closed-form symbolic trip counts.

    A triangular loop such as [DO J = K+1, I] has a trip count [I - K]
    that mentions outer loop indices. Following Section 4.1 ("if the
    bounds are symbolic, we compare the dominating terms"), indices are
    eliminated by substituting the bound that maximises the trip, so the
    dominating term survives: [I - K] becomes [n - 1] when [I <= N] and
    [K >= 1]. *)

type env = string -> Loop.header option
(** Lookup of the header binding an index variable, for indices in scope. *)

val env_of_nest : Loop.t -> env
val env_of_headers : Loop.header list -> env

val closed_expr : env -> maximize:bool -> Expr.t -> Poly.t
(** Eliminate index variables from a bound expression, maximising or
    minimising its value over the enclosing iteration space. *)

val closed_poly : env -> maximize:bool -> int -> Poly.t -> Poly.t
(** Same elimination on a polynomial already in hand; the [int] is a
    substitution fuel bound (32 suffices for any real nest). *)

val closed_trip : env -> Loop.header -> Poly.t
(** Maximised symbolic trip count [(ub - lb + step) / step] with index
    variables eliminated. *)
