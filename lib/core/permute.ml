module An = Locality_dep.Analysis
module Dep = Locality_dep.Depend
module Direction = Locality_dep.Direction
module Obs = Locality_obs.Obs

type status = Already | Permuted | Failed_deps | Failed_bounds

type outcome = {
  nest : Loop.t;
  achieved : string list;
  memory_order : Memorder.t;
  status : status;
  inner_ok : bool;
  reversed : string list;
}

let status_to_string = function
  | Already -> "already in memory order"
  | Permuted -> "permuted"
  | Failed_deps -> "blocked by dependences"
  | Failed_bounds -> "bounds too complex"

(* Entry of a dependence's vector for loop [x]; [None] when [x] does not
   enclose both endpoints (it then imposes no constraint). *)
let entry (d : Dep.t) x =
  let rec go ls vs =
    match (ls, vs) with
    | l :: _, v :: _ when String.equal l x -> Some v
    | _ :: ls, _ :: vs -> go ls vs
    | _, _ -> None
  in
  go d.loops d.vec

let negate_loop_entries deps x =
  List.map
    (fun (d : Dep.t) ->
      {
        d with
        Dep.vec =
          List.map2
            (fun l e ->
              if String.equal l x then Direction.negate_elt e else e)
            d.loops d.vec;
      })
    deps

(* Greedy construction of a legal order with [inner] fixed innermost.
   At each outer position we take the first remaining loop (in memory-
   order preference) whose entry cannot be negative for any still-
   undecided dependence; placing a loop decides the dependences it
   definitely carries. Returns the order plus the loops reversed. *)
let greedy_place ~try_reversal ~reversible ~preference ~deps ~inner =
  let rec place remaining undecided acc reversed deps =
    match remaining with
    | [] ->
      let order = List.rev acc @ [ inner ] in
      if
        List.for_all
          (fun (d : Dep.t) ->
            Direction.lex_nonneg (Legality.reorder_vec d ~target:order))
          deps
      then Some (order, reversed)
      else None
    | _ :: _ -> (
      let placeable x deps_now =
        List.for_all
          (fun (d : Dep.t) ->
            match entry d x with
            | None -> true
            | Some e -> not (Direction.may_neg e))
          deps_now
      in
      let candidate =
        List.find_map
          (fun x ->
            if placeable x undecided then Some (x, false)
            else if
              try_reversal && reversible x
              && placeable x (negate_loop_entries undecided x)
            then Some (x, true)
            else None)
          remaining
      in
      match candidate with
      | None -> None
      | Some (x, rev) ->
        let deps = if rev then negate_loop_entries deps x else deps in
        let undecided =
          List.filter
            (fun (d : Dep.t) ->
              match entry d x with
              | Some e -> not (Direction.must_pos e)
              | None -> true)
            (if rev then negate_loop_entries undecided x else undecided)
        in
        place
          (List.filter (fun y -> not (String.equal y x)) remaining)
          undecided (x :: acc)
          (if rev then x :: reversed else reversed)
          deps)
  in
  let remaining = List.filter (fun x -> not (String.equal x inner)) preference in
  place remaining deps [] [] deps

let note_candidate order reversed verdict =
  if Obs.enabled () then
    Obs.instant "permute.candidate"
      ~args:
        ([ ("order", String.concat "," order) ]
        @ (if reversed = [] then []
           else [ ("reversed", String.concat "," reversed) ])
        @ [ ("verdict", verdict) ])

let run ?(cls = 4) ?(try_reversal = true) ?deps ?mo nest =
  let deps_all =
    match deps with
    | Some d -> d
    | None ->
      Obs.span "dep" (fun () -> An.deps_in_nest ~include_input:true nest)
  in
  let mo =
    match mo with
    | Some m -> m
    | None -> Memorder.compute ~deps:deps_all ~cls nest
  in
  let original = mo.Memorder.original in
  let unchanged status =
    {
      nest;
      achieved = original;
      memory_order = mo;
      status;
      inner_ok = Memorder.inner_is_best mo;
      reversed = [];
    }
  in
  if Memorder.is_memory_order mo then unchanged Already
  else if not (Loop.is_perfect nest) then unchanged Failed_deps
  else
    let deps = List.filter Dep.is_true_dep deps_all in
    let target = Memorder.order mo in
    (* Reversal.apply only knows how to mirror unit-step loops; offering a
       stepped loop to the greedy placer would make [apply] raise. *)
    let reversible =
      let tbl = Hashtbl.create 8 in
      let rec note (l : Loop.t) =
        Hashtbl.replace tbl l.Loop.header.Loop.index
          (l.Loop.header.Loop.step = 1);
        List.iter
          (function Loop.Stmt _ -> () | Loop.Loop inner -> note inner)
          l.Loop.body
      in
      note nest;
      fun x -> match Hashtbl.find_opt tbl x with Some b -> b | None -> false
    in
    let apply order reversed =
      let nest' =
        List.fold_left (fun n x -> Reversal.apply n ~loop:x) nest reversed
      in
      match Interchange.permute_spine nest' order with
      | Some nest'' ->
        note_candidate order reversed "applied";
        let inner_achieved = List.nth order (List.length order - 1) in
        let best_cost = List.assoc (Memorder.innermost mo) mo.Memorder.ranked in
        let got_cost = List.assoc inner_achieved mo.Memorder.ranked in
        Some
          {
            nest = nest'';
            achieved = order;
            memory_order = mo;
            status = Permuted;
            inner_ok = Poly.compare_dominant got_cost best_cost <= 0;
            reversed;
          }
      | None ->
        note_candidate order reversed "bounds too complex to rewrite";
        None
    in
    (* Candidate orders, most desirable first: memory order itself when
       legal, then the nearest legal order for each inner-loop preference.
       A candidate that is legal but whose bounds cannot be rewritten
       falls through to the next. *)
    let candidates =
      let direct =
        match Legality.permutation_violation ~deps ~target with
        | None ->
          if Obs.enabled () then
            Obs.instant "permute.memory_order"
              ~args:
                [
                  ("order", String.concat "," target); ("verdict", "legal");
                ];
          [ (target, []) ]
        | Some d ->
          if Obs.enabled () then
            Obs.instant "permute.memory_order"
              ~args:
                [
                  ("order", String.concat "," target);
                  ("verdict", "illegal");
                  ("violates", Format.asprintf "%a" Dep.pp d);
                ];
          []
      in
      let greedy =
        List.filter_map
          (fun inner ->
            greedy_place ~try_reversal ~reversible ~preference:target ~deps
              ~inner)
          (List.rev target)
      in
      let seen = Hashtbl.create 8 in
      List.filter
        (fun (order, _) ->
          let key = String.concat "," order in
          if Hashtbl.mem seen key then false
          else begin
            Hashtbl.add seen key ();
            true
          end)
        (direct @ greedy)
    in
    (* Never trade away the innermost loop: a candidate is worth applying
       only if its innermost loop costs no more than the current one, and
       it differs from the current order. *)
    let cost_of l = List.assoc l mo.Memorder.ranked in
    let current_inner_cost =
      match List.rev original with
      | inner :: _ -> cost_of inner
      | [] -> Poly.zero
    in
    let improving =
      List.filter
        (fun (order, reversed) ->
          let keep =
            order <> original
            &&
            match List.rev order with
            | inner :: _ ->
              Poly.compare_dominant (cost_of inner) current_inner_cost <= 0
            | [] -> false
          in
          if not keep then
            note_candidate order reversed
              (if order = original then "legal but identical to current order"
               else "rejected: would worsen the innermost loop");
          keep)
        candidates
    in
    if candidates = [] then unchanged Failed_deps
    else if improving = [] then
      (* The only acceptable legal order is the current one. *)
      { (unchanged Failed_deps) with inner_ok = Memorder.inner_is_best mo }
    else
      match List.find_map (fun (order, rev) -> apply order rev) improving with
      | Some o -> o
      | None -> unchanged Failed_bounds
