(* A block of packed trace records shared between the trace producer
   (lib/interp/trace.ml) and the cache simulators, which replay it in a
   tight loop. One record per array-element access, packed into a single
   OCaml int:

     bits 0..31   byte address
     bit  32      write flag
     bits 33..61  interned statement-label id

   Keeping the record flat (no per-access closure, no boxing) is what
   lets a trace be recorded once and replayed against several cache
   configurations at memory bandwidth. *)

type t = {
  data : int array;
  mutable len : int;
}

let max_addr = 0xFFFF_FFFF
let max_label = (1 lsl 29) - 1

let create capacity =
  if capacity <= 0 then invalid_arg "Chunk.create: capacity must be positive";
  { data = Array.make capacity 0; len = 0 }

let capacity c = Array.length c.data
let is_full c = c.len = Array.length c.data

let pack ~addr ~write ~label =
  if addr < 0 || addr > max_addr then
    invalid_arg (Printf.sprintf "Chunk.pack: address %d out of range" addr);
  if label < 0 || label > max_label then
    invalid_arg (Printf.sprintf "Chunk.pack: label id %d out of range" label);
  addr lor ((if write then 1 else 0) lsl 32) lor (label lsl 33)

let addr r = r land max_addr
let write r = r land (1 lsl 32) <> 0
let label r = r lsr 33

(* Append without a range check; callers flush on [is_full]. *)
let push c r =
  c.data.(c.len) <- r;
  c.len <- c.len + 1

let reset c = c.len <- 0

let copy c = { data = Array.sub c.data 0 c.len; len = c.len }

let iter f c =
  for i = 0 to c.len - 1 do
    let r = c.data.(i) in
    f ~label:(label r) ~addr:(addr r) ~write:(write r)
  done
