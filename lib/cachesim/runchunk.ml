(* The v2 trace block: a mixed stream of per-access records and
   strided-run group descriptors, packed into one flat int array.

   Affine kernels emit constant-stride address streams from their
   innermost loops, so instead of trip x refs individual records a
   qualifying loop instance is stored as one group descriptor:

     header word          bit 62 set (the word is negative), trip count
                          in bits 0..30, reference count in bits 31..61
     then per reference   word 1: base address / write flag / label id,
                                  packed exactly like {!Chunk} records
                          word 2: byte stride per iteration (plain int,
                                  may be negative or zero)

   A word with bit 62 clear is an ordinary {!Chunk}-packed access record
   — loops that do not qualify fall back to per-access records in the
   same stream, and a per-access-only stream is a valid run chunk.

   The logical access sequence of a group preserves the exact
   per-iteration interleaving of the source loop: iteration t touches
   each reference j in order, at address base_j + t * stride_j. *)

type t = {
  data : int array;
  mutable len : int;
  mutable logical : int;  (** accesses represented, groups expanded *)
}

let max_trip = (1 lsl 31) - 1
let max_nrefs = (1 lsl 30) - 1
let tag_bit = 1 lsl 62

let create capacity =
  if capacity < 8 then invalid_arg "Runchunk.create: capacity too small";
  { data = Array.make capacity 0; len = 0; logical = 0 }

let capacity c = Array.length c.data
let room c = Array.length c.data - c.len
let words c = c.len
let logical_records c = c.logical

let header ~trip ~nrefs =
  if trip < 0 || trip > max_trip then
    invalid_arg (Printf.sprintf "Runchunk.header: trip %d out of range" trip);
  if nrefs <= 0 || nrefs > max_nrefs then
    invalid_arg (Printf.sprintf "Runchunk.header: nrefs %d out of range" nrefs);
  tag_bit lor trip lor (nrefs lsl 31)

(* The tag bit is the native int's sign bit, so headers are exactly the
   negative words of the stream. *)
let is_header w = w < 0
let header_trip w = w land max_trip
let header_nrefs w = (w lsr 31) land max_nrefs

let group_words ~nrefs = 1 + (2 * nrefs)

let push_access c r =
  if r < 0 then invalid_arg "Runchunk.push_access: header-tagged word";
  c.data.(c.len) <- r;
  c.len <- c.len + 1;
  c.logical <- c.logical + 1

(* [push_group c ~trip ~packed ~bases ~strides n] appends one group of
   [n] references; [packed.(j)] is a {!Chunk}-packed record whose
   address field is zero (label and write flag only) and is or-ed with
   the validated base address. The caller guarantees room. *)
let push_group c ~trip ~packed ~bases ~strides n =
  let h = header ~trip ~nrefs:n in
  let data = c.data in
  let at = c.len in
  data.(at) <- h;
  for j = 0 to n - 1 do
    let base = bases.(j) in
    if base < 0 || base > Chunk.max_addr then
      invalid_arg
        (Printf.sprintf "Runchunk.push_group: base address %d out of range" base);
    data.(at + 1 + (2 * j)) <- packed.(j) lor base;
    data.(at + 2 + (2 * j)) <- strides.(j)
  done;
  c.len <- at + group_words ~nrefs:n;
  c.logical <- c.logical + (trip * n)

let reset c =
  c.len <- 0;
  c.logical <- 0

let copy c = { data = Array.sub c.data 0 c.len; len = c.len; logical = c.logical }

(* Expand the stream back to individual accesses, round-robin across a
   group's references — the order the originating loop touched memory. *)
let iter c f =
  let data = c.data in
  let i = ref 0 in
  while !i < c.len do
    let w = Array.unsafe_get data !i in
    if not (is_header w) then begin
      f ~label:(Chunk.label w) ~addr:(Chunk.addr w) ~write:(Chunk.write w);
      incr i
    end
    else begin
      let trip = header_trip w and nrefs = header_nrefs w in
      for t = 0 to trip - 1 do
        for j = 0 to nrefs - 1 do
          let r = data.(!i + 1 + (2 * j)) in
          let stride = data.(!i + 2 + (2 * j)) in
          f ~label:(Chunk.label r)
            ~addr:(Chunk.addr r + (t * stride))
            ~write:(Chunk.write r)
        done
      done;
      i := !i + group_words ~nrefs
    end
  done

let runs c =
  let n = ref 0 in
  let i = ref 0 in
  while !i < c.len do
    let w = c.data.(!i) in
    if is_header w then begin
      incr n;
      i := !i + group_words ~nrefs:(header_nrefs w)
    end
    else incr i
  done;
  !n
