(** Column-major (Fortran) memory layout for the declared arrays of a
    program.

    Each array is placed at a line-aligned base address; the first
    subscript varies fastest. Subscripts are 1-based, as in Fortran. *)

type t

val build : ?base:int -> ?align:int -> param:(string -> int) -> Decl.t list -> t
(** Lay out the arrays in declaration order. [param] evaluates symbolic
    extents; [align] (default 128) aligns bases.
    @raise Invalid_argument on non-positive extents, on extent products
    that overflow the native int, and when the layout no longer fits the
    {!Chunk.max_addr} packed-record address space (scaled geometries:
    the error names the array and suggests reducing [--scale]). *)

val address : t -> string -> int array -> int
(** Byte address of an element given its 1-based subscripts.
    @raise Invalid_argument for unknown arrays or rank mismatch;
    subscripts outside the declared extents raise too (bounds check). *)

val flat_offset : t -> string -> int array -> int
(** Column-major element offset (0-based) of a subscript vector. *)

val size_elements : t -> string -> int
val elem_size : t -> string -> int
val total_bytes : t -> int
val arrays : t -> string list
