type info = {
  base : int;
  extents : int array;
  elem_size : int;
}

type t = { tbl : (string, info) Hashtbl.t; mutable total : int; base0 : int }

(* Scaled geometries (--scale) can push extent products past both the
   native int and the 32-bit packed-record address field, so every
   multiply and the running cursor are checked. The address-space cap is
   {!Chunk.max_addr}: any array byte a traced run may touch must pack
   into a record. *)
let checked_mul name a b =
  if a <> 0 && b > max_int / a then
    invalid_arg
      (Printf.sprintf "Layout.build: size of %s overflows (%d * %d)" name a b)
  else a * b

let build ?(base = 0) ?(align = 128) ~param decls =
  let tbl = Hashtbl.create 16 in
  let cursor = ref base in
  List.iter
    (fun (d : Decl.t) ->
      let extents =
        Array.of_list
          (List.map (fun e -> Expr.eval e param) d.Decl.extents)
      in
      Array.iter
        (fun n ->
          if n <= 0 then
            invalid_arg
              (Printf.sprintf "Layout.build: non-positive extent in %s"
                 d.Decl.name))
        extents;
      let elems =
        Array.fold_left (checked_mul d.Decl.name) 1 extents
      in
      let info = { base = !cursor; extents; elem_size = d.Decl.elem_size } in
      Hashtbl.replace tbl d.Decl.name info;
      let bytes = checked_mul d.Decl.name elems d.Decl.elem_size in
      let bytes = (bytes + align - 1) / align * align in
      if bytes < 0 || !cursor > Chunk.max_addr - bytes + 1 then
        invalid_arg
          (Printf.sprintf
             "Layout.build: %s at byte %d (+%d bytes) exceeds the %d-byte \
              traceable address space; reduce the size parameter or --scale"
             d.Decl.name !cursor bytes (Chunk.max_addr + 1));
      cursor := !cursor + bytes)
    decls;
  { tbl; total = !cursor - base; base0 = base }

let info t name =
  match Hashtbl.find_opt t.tbl name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Layout: unknown array %s" name)

let flat_offset t name subs =
  let i = info t name in
  if Array.length subs <> Array.length i.extents then
    invalid_arg (Printf.sprintf "Layout: rank mismatch for %s" name);
  let off = ref 0 and stride = ref 1 in
  Array.iteri
    (fun k s ->
      if s < 1 || s > i.extents.(k) then
        invalid_arg
          (Printf.sprintf "Layout: %s subscript %d = %d out of [1,%d]" name
             (k + 1) s i.extents.(k));
      off := !off + ((s - 1) * !stride);
      stride := !stride * i.extents.(k))
    subs;
  !off

let address t name subs =
  let i = info t name in
  i.base + (flat_offset t name subs * i.elem_size)

let size_elements t name =
  Array.fold_left ( * ) 1 (info t name).extents

let elem_size t name = (info t name).elem_size
let total_bytes t = t.total
let arrays t = Hashtbl.fold (fun k _ acc -> k :: acc) t.tbl []
