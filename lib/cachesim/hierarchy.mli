(** A two-level cache hierarchy (write-back, write-allocate).

    The paper's framework notes that higher degrees of tiling can exploit
    multi-level caches; this model lets those experiments run: accesses
    go to L1, L1 misses are filled from L2, and dirty L1 victims are
    written back into L2. *)

type t

val create : l1:Cache.config -> l2:Cache.config -> t
(** @raise Invalid_argument when a configuration is invalid or L2's line
    size is smaller than L1's. *)

val access : t -> ?write:bool -> int -> [ `L1_hit | `L2_hit | `Memory ]
(** Where the access was satisfied. *)

val simulate_chunk : t -> Chunk.t -> unit
(** Replay a chunk of packed trace records, one {!access} per record in
    order; statistics are identical to the per-access path. *)

val simulate_runs : t -> Runchunk.t -> unit
(** Replay a v2 run chunk by expanding groups to their access sequence
    ({!Runchunk.iter}); statistics are identical to per-access replay. *)

val l1_stats : t -> Cache.stats
val l2_stats : t -> Cache.stats
val writebacks : t -> int
(** Dirty L1 lines pushed into L2 on eviction. *)

val amat :
  ?l1_time:float -> ?l2_time:float -> ?mem_time:float -> t -> float
(** Average memory access time in cycles (defaults 1 / 8 / 40). 0 when
    no accesses were made. *)
