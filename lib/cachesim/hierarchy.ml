type t = {
  l1 : Cache.t;
  l2 : Cache.t;
  l1_line : int;
  mutable writebacks : int;
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable memory : int;
  mutable total : int;
}

let create ~l1 ~l2 =
  if l2.Cache.line_bytes < l1.Cache.line_bytes then
    invalid_arg "Hierarchy.create: L2 line smaller than L1 line";
  {
    l1 = Cache.create l1;
    l2 = Cache.create l2;
    l1_line = l1.Cache.line_bytes;
    writebacks = 0;
    l1_hits = 0;
    l2_hits = 0;
    memory = 0;
    total = 0;
  }

let access t ?(write = false) addr =
  t.total <- t.total + 1;
  match Cache.access_full t.l1 ~write addr with
  | `Hit, _ -> begin
    t.l1_hits <- t.l1_hits + 1;
    `L1_hit
  end
  | (`Cold | `Miss), written_back ->
    (* A dirty L1 victim is pushed down into L2. *)
    (match written_back with
    | Some victim_line ->
      t.writebacks <- t.writebacks + 1;
      ignore (Cache.access_full t.l2 ~write:true (victim_line * t.l1_line))
    | None -> ());
    (match Cache.access_full t.l2 addr with
    | `Hit, _ ->
      t.l2_hits <- t.l2_hits + 1;
      `L2_hit
    | (`Cold | `Miss), _ ->
      t.memory <- t.memory + 1;
      `Memory)

(* Chunk replay: one [access] per packed record, in order. Identical
   statistics to feeding the trace through an observer, without the
   per-access closure. *)
let simulate_chunk t (c : Chunk.t) =
  let data = c.Chunk.data in
  for i = 0 to c.Chunk.len - 1 do
    let r = Array.unsafe_get data i in
    ignore (access t ~write:(Chunk.write r) (Chunk.addr r))
  done

(* Run-chunk replay: groups are expanded to their access sequence (the
   two-level exchange makes window reasoning much hairier for little
   gain — hierarchy replay is off the hot path). *)
let simulate_runs t (rc : Runchunk.t) =
  Runchunk.iter rc (fun ~label:_ ~addr ~write -> ignore (access t ~write addr))

let l1_stats t = Cache.stats t.l1
let l2_stats t = Cache.stats t.l2
let writebacks t = t.writebacks

let amat ?(l1_time = 1.0) ?(l2_time = 8.0) ?(mem_time = 40.0) t =
  if t.total = 0 then 0.0
  else
    ((float_of_int t.l1_hits *. l1_time)
    +. (float_of_int t.l2_hits *. (l1_time +. l2_time))
    +. (float_of_int t.memory *. (l1_time +. l2_time +. mem_time)))
    /. float_of_int t.total
