(* Bennett-Kruskal: a Fenwick tree over access times holds one mark per
   distinct line at its most recent access time; the reuse distance of an
   access is the number of marks after the line's previous time. *)

type t = {
  mutable bit : int array;  (** 1-based Fenwick array *)
  mutable capacity : int;
  mutable time : int;
  last : (int, int) Hashtbl.t;  (** line -> last access time *)
  dist : (int, int) Hashtbl.t;  (** finite distance -> count *)
  mutable cold : int;
  mutable accesses : int;
  line_bytes : int;
}

let create ?(line_bytes = 32) () =
  {
    bit = Array.make 1025 0;
    capacity = 1024;
    time = 0;
    last = Hashtbl.create 4096;
    dist = Hashtbl.create 256;
    cold = 0;
    accesses = 0;
    line_bytes;
  }

let bit_add t i delta =
  let i = ref i in
  while !i <= t.capacity do
    t.bit.(!i) <- t.bit.(!i) + delta;
    i := !i + (!i land - !i)
  done

let bit_sum t i =
  let i = ref i and s = ref 0 in
  while !i > 0 do
    s := !s + t.bit.(!i);
    i := !i - (!i land - !i)
  done;
  !s

let grow t =
  t.capacity <- t.capacity * 2;
  t.bit <- Array.make (t.capacity + 1) 0;
  Hashtbl.iter (fun _ time -> bit_add t time 1) t.last

let access t addr =
  let line = addr / t.line_bytes in
  t.accesses <- t.accesses + 1;
  t.time <- t.time + 1;
  if t.time > t.capacity then grow t;
  (match Hashtbl.find_opt t.last line with
  | Some t_old ->
    let marks_after = Hashtbl.length t.last - bit_sum t t_old in
    Hashtbl.replace t.dist marks_after
      (1 + Option.value (Hashtbl.find_opt t.dist marks_after) ~default:0);
    bit_add t t_old (-1)
  | None -> t.cold <- t.cold + 1);
  bit_add t t.time 1;
  Hashtbl.replace t.last line t.time

let accesses t = t.accesses
let cold t = t.cold
let distinct_lines t = Hashtbl.length t.last

let histogram t =
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) t.dist []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let predicted_hit_rate ?exclude_cold t ~lines =
  let hits =
    Hashtbl.fold (fun d c acc -> if d < lines then acc + c else acc) t.dist 0
  in
  Cache.rate_of_counts ?exclude_cold ~accesses:t.accesses ~hits ~cold:t.cold ()

let mean_distance t =
  let total, count =
    Hashtbl.fold
      (fun d c (s, n) -> (s + (d * c), n + c))
      t.dist (0, 0)
  in
  if count = 0 then 0.0 else float_of_int total /. float_of_int count
