(** A set-associative data cache with LRU replacement.

    Simulates hits and misses for an address trace; used to reproduce the
    paper's Table 4 (simulated cache hit rates on the RS/6000 and i860
    cache geometries). Cold (first-touch) misses are tracked separately
    because Table 4 excludes them. *)

type config = {
  name : string;
  size_bytes : int;
  assoc : int;  (** number of ways; 1 = direct-mapped *)
  line_bytes : int;
}

type t

type stats = {
  accesses : int;
  hits : int;
  misses : int;  (** including cold misses *)
  cold_misses : int;  (** first-ever touch of a line *)
  writes : int;
  write_hits : int;
  writebacks : int;  (** dirty lines evicted (write-back policy) *)
}

val config_valid : config -> bool
(** Size, line size and associativity are positive powers of two and
    consistent. *)

val create : config -> t
(** @raise Invalid_argument on an invalid configuration. *)

val access : t -> int -> bool
(** [access t addr] touches the byte address and reports a hit. *)

val access_classified : t -> int -> [ `Hit | `Cold | `Miss ]
(** Like {!access}, distinguishing cold (first-touch) misses from
    capacity/conflict misses. *)

val access_full :
  t -> ?write:bool -> int -> [ `Hit | `Cold | `Miss ] * int option
(** Full result: the classification plus the line address written back
    when a dirty victim was evicted (write-back, write-allocate). *)

type region = {
  mutable r_accesses : int;
  mutable r_hits : int;
  mutable r_cold : int;
}
(** Running counts for a marked subset of statement labels (Table 4's
    "optimized" region), accumulated during {!simulate_chunk}. *)

val fresh_region : unit -> region

val simulate_chunk : t -> ?marked:bool array -> ?region:region -> Chunk.t -> unit
(** Replay a chunk of packed trace records in a tight loop — semantically
    one {!access_full} per record with bit-identical statistics, but
    without per-access closure dispatch, and with a fully inlined
    direct-mapped (assoc = 1) fast path. When both [marked] (indexed by
    interned label id) and [region] are given, accesses whose label is
    marked are also tallied into [region]. *)

type run_metrics = {
  mutable m_groups : int;  (** run groups replayed *)
  mutable m_boundaries : int;  (** iterations processed with set lookups *)
  mutable m_bulk_iters : int;  (** iterations bulk-advanced as all-hit *)
  mutable m_fallbacks : int;  (** windows degraded by same-set conflicts *)
}

val fresh_run_metrics : unit -> run_metrics

val simulate_runs :
  t -> ?marked:bool array -> ?region:region -> ?metrics:run_metrics ->
  Runchunk.t -> unit
(** Replay a v2 run chunk ({!Runchunk}). Statistics — including [region]
    tallies — are bit-identical to expanding every group round-robin and
    replaying per access, but for groups whose references all advance by
    less than a line per iteration the simulator is event-driven: set
    lookups and evictions happen only on line-boundary-crossing
    iterations, and the all-hit interior of each window bulk-advances
    hits, clock, LRU ages and region counts. Windows where two
    references hold different lines of one set, and groups containing a
    reference that crosses a line every iteration, use the exact
    per-access path instead. *)

val stats : t -> stats
val reset : t -> unit
(** Clear contents and statistics, including cold-miss tracking. *)

val rate_of_counts :
  ?exclude_cold:bool -> accesses:int -> hits:int -> cold:int -> unit -> float
(** Shared hit-rate definition (also used by [Measure.hit_rate]): 100.0
    when there are no accesses at all, but 0.0 when accesses > 0 and the
    denominator is empty because every access was a cold miss. *)

val hit_rate : ?exclude_cold:bool -> stats -> float
(** Hits over accesses, in percent; with [exclude_cold] (default true,
    as in Table 4) cold misses are removed from the denominator. See
    {!rate_of_counts} for the degenerate cases. *)

val num_sets : t -> int
val lines_touched : t -> int
(** Number of distinct cache lines ever referenced. *)
