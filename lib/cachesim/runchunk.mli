(** v2 trace blocks: per-access records mixed with strided-run groups.

    A run group compresses one innermost-loop instance with affine
    references into [1 + 2*nrefs] words — header (trip count, reference
    count), then per reference a {!Chunk}-packed base record and a byte
    stride — replacing [trip * nrefs] individual records. Words with the
    tag bit clear are ordinary {!Chunk} records, so loops that do not
    qualify share the same stream. Replay preserves the source loop's
    exact per-iteration interleaving: iteration [t] touches reference
    [j]'s address [base_j + t * stride_j] in reference order. *)

type t = {
  data : int array;
  mutable len : int;  (** words used *)
  mutable logical : int;  (** accesses represented, groups expanded *)
}

val max_trip : int
val max_nrefs : int

val create : int -> t
(** [create capacity] allocates a chunk of [capacity] words.
    @raise Invalid_argument when smaller than the largest single item. *)

val capacity : t -> int
val room : t -> int
(** Words still free. *)

val words : t -> int
val logical_records : t -> int

val header : trip:int -> nrefs:int -> int
(** Group header word; the tag bit is the sign bit, so headers are the
    negative words of the stream. *)

val is_header : int -> bool
val header_trip : int -> int
val header_nrefs : int -> int

val group_words : nrefs:int -> int
(** Stream words one group occupies. *)

val push_access : t -> int -> unit
(** Append one {!Chunk}-packed record; the caller guarantees room. *)

val push_group :
  t -> trip:int -> packed:int array -> bases:int array -> strides:int array ->
  int -> unit
(** [push_group c ~trip ~packed ~bases ~strides n] appends an [n]-reference
    group; [packed.(j)] is a {!Chunk}-packed record with a zero address
    field, or-ed with the validated [bases.(j)]. The caller guarantees
    room ({!group_words}). *)

val reset : t -> unit
val copy : t -> t

val iter : t -> (label:int -> addr:int -> write:bool -> unit) -> unit
(** Expand to individual accesses in replay order (groups round-robin). *)

val runs : t -> int
(** Number of group descriptors in the chunk. *)
