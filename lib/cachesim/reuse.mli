(** LRU stack (reuse) distance profiling.

    The reuse distance of an access is the number of distinct cache lines
    touched since the previous access to the same line. One pass over a
    trace yields the whole miss-rate curve: a fully associative LRU cache
    of [C] lines hits exactly the accesses with distance [< C]. Used to
    cross-validate the cache simulator and to characterise how loop
    transformations move the reuse profile (shorter distances = more
    cache-resident reuse). *)

type t

val create : ?line_bytes:int -> unit -> t
(** [line_bytes] defaults to 32. *)

val access : t -> int -> unit
(** Record a byte-address access (Bennett–Kruskal algorithm, logarithmic
    per access). *)

val accesses : t -> int
val cold : t -> int
(** First-touch accesses (infinite distance). *)

val distinct_lines : t -> int

val histogram : t -> (int * int) list
(** [(distance, count)] pairs, ascending, excluding cold accesses. *)

val predicted_hit_rate : ?exclude_cold:bool -> t -> lines:int -> float
(** Hit rate (percent) of a fully associative LRU cache with the given
    capacity in lines; cold accesses excluded from the denominator by
    default. Same conventions as {!Cache.rate_of_counts}: 100.0 when
    there were no accesses, 0.0 when every access was cold. *)

val mean_distance : t -> float
(** Average finite reuse distance; 0 when there is none. *)
