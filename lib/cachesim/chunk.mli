(** Packed trace-record chunks.

    The unit of exchange between the interpreter's trace buffer and the
    cache simulators: a flat [int array] of records, each packing a byte
    address, a write bit and an interned statement-label id, so replay is
    a tight loop over unboxed ints with no per-access closure dispatch. *)

type t = {
  data : int array;  (** packed records; only [0 .. len-1] are valid *)
  mutable len : int;
}

val max_addr : int
(** Largest representable byte address (32 bits). *)

val max_label : int
(** Largest representable interned label id (29 bits). *)

val create : int -> t
(** [create capacity] allocates an empty chunk holding up to [capacity]
    records. @raise Invalid_argument when [capacity <= 0]. *)

val capacity : t -> int
val is_full : t -> bool

val pack : addr:int -> write:bool -> label:int -> int
(** Pack one record. @raise Invalid_argument when the address or label id
    exceeds the field width. *)

val addr : int -> int
val write : int -> bool
val label : int -> int
(** Field accessors on a packed record. *)

val push : t -> int -> unit
(** Append a packed record; the caller checks {!is_full} first. *)

val reset : t -> unit
(** Forget the contents (capacity is retained for reuse). *)

val copy : t -> t
(** An independent copy trimmed to [len] records. *)

val iter : (label:int -> addr:int -> write:bool -> unit) -> t -> unit
