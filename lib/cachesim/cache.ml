type config = {
  name : string;
  size_bytes : int;
  assoc : int;
  line_bytes : int;
}

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  cold_misses : int;
  writes : int;
  write_hits : int;
  writebacks : int;
}

type t = {
  config : config;
  sets : int;
  tags : int array;  (** sets * assoc entries; -1 = invalid *)
  ages : int array;  (** LRU clock per entry *)
  dirty : bool array;
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
  mutable cold : int;
  mutable writes : int;
  mutable write_hits : int;
  mutable writebacks : int;
  (* First-touch tracking: a growable bitset keyed by line index. Far
     cheaper than a per-access hash probe on the hot path. *)
  mutable seen_bits : Bytes.t;
  mutable seen_count : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config_valid c =
  is_pow2 c.size_bytes && is_pow2 c.line_bytes && c.assoc > 0
  && c.line_bytes <= c.size_bytes
  && c.size_bytes mod (c.line_bytes * c.assoc) = 0

let initial_seen_bytes = 4096

let create config =
  if not (config_valid config) then invalid_arg "Cache.create: bad config";
  let sets = config.size_bytes / (config.line_bytes * config.assoc) in
  {
    config;
    sets;
    tags = Array.make (sets * config.assoc) (-1);
    ages = Array.make (sets * config.assoc) 0;
    dirty = Array.make (sets * config.assoc) false;
    clock = 0;
    accesses = 0;
    hits = 0;
    cold = 0;
    writes = 0;
    write_hits = 0;
    writebacks = 0;
    seen_bits = Bytes.make initial_seen_bytes '\000';
    seen_count = 0;
  }

let seen_mem t line =
  let byte = line lsr 3 in
  byte < Bytes.length t.seen_bits
  && Char.code (Bytes.unsafe_get t.seen_bits byte) land (1 lsl (line land 7))
     <> 0

let seen_add t line =
  let byte = line lsr 3 in
  let cap = Bytes.length t.seen_bits in
  if byte >= cap then begin
    let cap' = ref (cap * 2) in
    while byte >= !cap' do
      cap' := !cap' * 2
    done;
    let b = Bytes.make !cap' '\000' in
    Bytes.blit t.seen_bits 0 b 0 cap;
    t.seen_bits <- b
  end;
  Bytes.unsafe_set t.seen_bits byte
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.seen_bits byte) lor (1 lsl (line land 7))));
  t.seen_count <- t.seen_count + 1

let access_full t ?(write = false) addr =
  let line = addr / t.config.line_bytes in
  let set = line mod t.sets in
  let base = set * t.config.assoc in
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  if write then t.writes <- t.writes + 1;
  let rec find i =
    if i = t.config.assoc then None
    else if t.tags.(base + i) = line then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    t.hits <- t.hits + 1;
    if write then begin
      t.write_hits <- t.write_hits + 1;
      t.dirty.(base + i) <- true
    end;
    t.ages.(base + i) <- t.clock;
    (`Hit, None)
  | None ->
    let cold = not (seen_mem t line) in
    if cold then begin
      seen_add t line;
      t.cold <- t.cold + 1
    end;
    (* Evict the least recently used way; a dirty victim is written
       back. *)
    let victim = ref 0 in
    for i = 1 to t.config.assoc - 1 do
      if t.ages.(base + i) < t.ages.(base + !victim) then victim := i
    done;
    let written_back =
      if t.dirty.(base + !victim) && t.tags.(base + !victim) >= 0 then begin
        t.writebacks <- t.writebacks + 1;
        Some t.tags.(base + !victim)
      end
      else None
    in
    t.tags.(base + !victim) <- line;
    t.ages.(base + !victim) <- t.clock;
    t.dirty.(base + !victim) <- write;
    ((if cold then `Cold else `Miss), written_back)

let access_classified t addr = fst (access_full t addr)
let access t addr = access_classified t addr = `Hit

type region = {
  mutable r_accesses : int;
  mutable r_hits : int;
  mutable r_cold : int;
}

let fresh_region () = { r_accesses = 0; r_hits = 0; r_cold = 0 }

(* Replay a chunk of packed records. Semantically one [access_full] per
   record (bit-identical statistics, asserted by the test suite), but the
   per-access closure dispatch is gone, and the direct-mapped case is
   fully inlined with no way-search loop. *)
let simulate_chunk t ?marked ?region (c : Chunk.t) =
  let data = c.Chunk.data in
  let len = c.Chunk.len in
  let nmarked = match marked with Some m -> Array.length m | None -> 0 in
  let track lid cls =
    match (marked, region) with
    | Some m, Some r ->
      if lid < nmarked && Array.unsafe_get m lid then begin
        r.r_accesses <- r.r_accesses + 1;
        match cls with
        | `Hit -> r.r_hits <- r.r_hits + 1
        | `Cold -> r.r_cold <- r.r_cold + 1
        | `Miss -> ()
      end
    | _ -> ()
  in
  if t.config.assoc = 1 then begin
    let line_bytes = t.config.line_bytes in
    let sets = t.sets in
    let tags = t.tags and ages = t.ages and dirty = t.dirty in
    for i = 0 to len - 1 do
      let r = Array.unsafe_get data i in
      let addr = Chunk.addr r in
      let write = Chunk.write r in
      let line = addr / line_bytes in
      let set = line mod sets in
      t.accesses <- t.accesses + 1;
      t.clock <- t.clock + 1;
      if write then t.writes <- t.writes + 1;
      if Array.unsafe_get tags set = line then begin
        t.hits <- t.hits + 1;
        if write then begin
          t.write_hits <- t.write_hits + 1;
          Array.unsafe_set dirty set true
        end;
        Array.unsafe_set ages set t.clock;
        track (Chunk.label r) `Hit
      end
      else begin
        let cold = not (seen_mem t line) in
        if cold then begin
          seen_add t line;
          t.cold <- t.cold + 1
        end;
        if Array.unsafe_get dirty set && Array.unsafe_get tags set >= 0 then
          t.writebacks <- t.writebacks + 1;
        Array.unsafe_set tags set line;
        Array.unsafe_set ages set t.clock;
        Array.unsafe_set dirty set write;
        track (Chunk.label r) (if cold then `Cold else `Miss)
      end
    done
  end
  else
    for i = 0 to len - 1 do
      let r = Array.unsafe_get data i in
      let cls, _ = access_full t ~write:(Chunk.write r) (Chunk.addr r) in
      track (Chunk.label r) cls
    done

let stats t =
  {
    accesses = t.accesses;
    hits = t.hits;
    misses = t.accesses - t.hits;
    cold_misses = t.cold;
    writes = t.writes;
    write_hits = t.write_hits;
    writebacks = t.writebacks;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  t.clock <- 0;
  t.accesses <- 0;
  t.hits <- 0;
  t.cold <- 0;
  t.writes <- 0;
  t.write_hits <- 0;
  t.writebacks <- 0;
  Bytes.fill t.seen_bits 0 (Bytes.length t.seen_bits) '\000';
  t.seen_count <- 0

let hit_rate ?(exclude_cold = true) (s : stats) =
  let denom = if exclude_cold then s.accesses - s.cold_misses else s.accesses in
  if denom <= 0 then 100.0 else 100.0 *. float_of_int s.hits /. float_of_int denom

let num_sets t = t.sets
let lines_touched t = t.seen_count
