type config = {
  name : string;
  size_bytes : int;
  assoc : int;
  line_bytes : int;
}

type stats = {
  accesses : int;
  hits : int;
  misses : int;
  cold_misses : int;
  writes : int;
  write_hits : int;
  writebacks : int;
}

type t = {
  config : config;
  sets : int;
  line_shift : int;  (** log2 line_bytes; addr lsr line_shift = line *)
  set_mask : int;  (** sets - 1 when sets is a power of two, else -1 *)
  tags : int array;  (** sets * assoc entries; -1 = invalid *)
  ages : int array;  (** LRU clock per entry *)
  dirty : bool array;
  mutable clock : int;
  mutable accesses : int;
  mutable hits : int;
  mutable cold : int;
  mutable writes : int;
  mutable write_hits : int;
  mutable writebacks : int;
  (* First-touch tracking: a growable bitset keyed by line index. Far
     cheaper than a per-access hash probe on the hot path. *)
  mutable seen_bits : Bytes.t;
  mutable seen_count : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let config_valid c =
  is_pow2 c.size_bytes && is_pow2 c.line_bytes && c.assoc > 0
  && c.line_bytes <= c.size_bytes
  && c.size_bytes mod (c.line_bytes * c.assoc) = 0

let initial_seen_bytes = 4096

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n lsr 1)

let create config =
  if not (config_valid config) then invalid_arg "Cache.create: bad config";
  let sets = config.size_bytes / (config.line_bytes * config.assoc) in
  {
    config;
    sets;
    line_shift = log2 config.line_bytes;
    set_mask = (if is_pow2 sets then sets - 1 else -1);
    tags = Array.make (sets * config.assoc) (-1);
    ages = Array.make (sets * config.assoc) 0;
    dirty = Array.make (sets * config.assoc) false;
    clock = 0;
    accesses = 0;
    hits = 0;
    cold = 0;
    writes = 0;
    write_hits = 0;
    writebacks = 0;
    seen_bits = Bytes.make initial_seen_bytes '\000';
    seen_count = 0;
  }

let seen_mem t line =
  let byte = line lsr 3 in
  byte < Bytes.length t.seen_bits
  && Char.code (Bytes.unsafe_get t.seen_bits byte) land (1 lsl (line land 7))
     <> 0

let seen_add t line =
  let byte = line lsr 3 in
  let cap = Bytes.length t.seen_bits in
  if byte >= cap then begin
    let cap' = ref (cap * 2) in
    while byte >= !cap' do
      cap' := !cap' * 2
    done;
    let b = Bytes.make !cap' '\000' in
    Bytes.blit t.seen_bits 0 b 0 cap;
    t.seen_bits <- b
  end;
  Bytes.unsafe_set t.seen_bits byte
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.seen_bits byte) lor (1 lsl (line land 7))));
  t.seen_count <- t.seen_count + 1

let set_of_line t line =
  if t.set_mask >= 0 then line land t.set_mask else line mod t.sets

let access_full t ?(write = false) addr =
  let line = addr lsr t.line_shift in
  let set = set_of_line t line in
  let base = set * t.config.assoc in
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  if write then t.writes <- t.writes + 1;
  let rec find i =
    if i = t.config.assoc then None
    else if t.tags.(base + i) = line then Some i
    else find (i + 1)
  in
  match find 0 with
  | Some i ->
    t.hits <- t.hits + 1;
    if write then begin
      t.write_hits <- t.write_hits + 1;
      t.dirty.(base + i) <- true
    end;
    t.ages.(base + i) <- t.clock;
    (`Hit, None)
  | None ->
    let cold = not (seen_mem t line) in
    if cold then begin
      seen_add t line;
      t.cold <- t.cold + 1
    end;
    (* Evict the least recently used way; a dirty victim is written
       back. *)
    let victim = ref 0 in
    for i = 1 to t.config.assoc - 1 do
      if t.ages.(base + i) < t.ages.(base + !victim) then victim := i
    done;
    let written_back =
      if t.dirty.(base + !victim) && t.tags.(base + !victim) >= 0 then begin
        t.writebacks <- t.writebacks + 1;
        Some t.tags.(base + !victim)
      end
      else None
    in
    t.tags.(base + !victim) <- line;
    t.ages.(base + !victim) <- t.clock;
    t.dirty.(base + !victim) <- write;
    ((if cold then `Cold else `Miss), written_back)

let access_classified t addr = fst (access_full t addr)
let access t addr = access_classified t addr = `Hit

type region = {
  mutable r_accesses : int;
  mutable r_hits : int;
  mutable r_cold : int;
}

let fresh_region () = { r_accesses = 0; r_hits = 0; r_cold = 0 }

(* Replay a chunk of packed records. Semantically one [access_full] per
   record (bit-identical statistics, asserted by the test suite), but the
   per-access closure dispatch is gone, and the direct-mapped case is
   fully inlined with no way-search loop. *)
let simulate_chunk t ?marked ?region (c : Chunk.t) =
  let data = c.Chunk.data in
  let len = c.Chunk.len in
  let nmarked = match marked with Some m -> Array.length m | None -> 0 in
  let track lid cls =
    match (marked, region) with
    | Some m, Some r ->
      if lid < nmarked && Array.unsafe_get m lid then begin
        r.r_accesses <- r.r_accesses + 1;
        match cls with
        | `Hit -> r.r_hits <- r.r_hits + 1
        | `Cold -> r.r_cold <- r.r_cold + 1
        | `Miss -> ()
      end
    | _ -> ()
  in
  if t.config.assoc = 1 then begin
    let shift = t.line_shift in
    let smask = t.set_mask in
    let sets = t.sets in
    let tags = t.tags and ages = t.ages and dirty = t.dirty in
    for i = 0 to len - 1 do
      let r = Array.unsafe_get data i in
      let addr = Chunk.addr r in
      let write = Chunk.write r in
      let line = addr lsr shift in
      let set = if smask >= 0 then line land smask else line mod sets in
      t.accesses <- t.accesses + 1;
      t.clock <- t.clock + 1;
      if write then t.writes <- t.writes + 1;
      if Array.unsafe_get tags set = line then begin
        t.hits <- t.hits + 1;
        if write then begin
          t.write_hits <- t.write_hits + 1;
          Array.unsafe_set dirty set true
        end;
        Array.unsafe_set ages set t.clock;
        track (Chunk.label r) `Hit
      end
      else begin
        let cold = not (seen_mem t line) in
        if cold then begin
          seen_add t line;
          t.cold <- t.cold + 1
        end;
        if Array.unsafe_get dirty set && Array.unsafe_get tags set >= 0 then
          t.writebacks <- t.writebacks + 1;
        Array.unsafe_set tags set line;
        Array.unsafe_set ages set t.clock;
        Array.unsafe_set dirty set write;
        track (Chunk.label r) (if cold then `Cold else `Miss)
      end
    done
  end
  else
    for i = 0 to len - 1 do
      let r = Array.unsafe_get data i in
      let cls, _ = access_full t ~write:(Chunk.write r) (Chunk.addr r) in
      track (Chunk.label r) cls
    done

type run_metrics = {
  mutable m_groups : int;
  mutable m_boundaries : int;  (** iterations processed with set lookups *)
  mutable m_bulk_iters : int;  (** iterations bulk-advanced as all-hit *)
  mutable m_fallbacks : int;  (** windows degraded by same-set conflicts *)
}

let fresh_run_metrics () =
  { m_groups = 0; m_boundaries = 0; m_bulk_iters = 0; m_fallbacks = 0 }

(* Replay a v2 run chunk. Semantically identical to expanding every
   group round-robin and running [access_full] per access — the
   differential tests assert bit-identical statistics — but the group
   structure lets the simulator reason about whole windows of
   iterations at once.

   A reference with |stride| < line_bytes stays inside one cache line
   for several consecutive iterations, and a line can only leave the
   cache when some lookup misses and evicts it — which replay itself
   performs. So the group is replayed event-driven: each reference
   carries the iteration of its next line-boundary crossing, and
   between the current iteration and the earliest crossing every
   reference provably re-touches a resident line — those interior
   iterations bulk-advance hits, clock, LRU ages and region tallies
   with no set lookups at all. At an event iteration, references are
   processed in order; one whose line is unchanged and still resident
   takes a certain-hit fast path (no way search), one that crossed (or
   lost its line to an eviction) takes the exact [access_full] lookup.
   When a lookup misses, the refilled entry is checked against the
   other references' resident entries; a reference whose line was
   evicted is invalidated and re-looked-up, and bulk advancing is
   suppressed until the iteration after every reference is resident
   again. Groups whose references all jump a full line every iteration
   (|stride| >= line_bytes) replay through a plain per-access loop —
   every iteration would be an event.

   The bulk LRU rule: per-access replay would touch reference j of the
   final interior iteration at clock (clock_end - nrefs + j + 1), so
   ages are restored from that formula, in reference order — when
   several references share one line the last one wins, exactly as in
   per-access replay. *)
let simulate_runs t ?marked ?region ?metrics (rc : Runchunk.t) =
  let data = rc.Runchunk.data in
  let len = rc.Runchunk.len in
  let nmarked = match marked with Some m -> Array.length m | None -> 0 in
  let marks = match marked with Some m -> m | None -> [||] in
  let has_region = match (marked, region) with Some _, Some _ -> true | _ -> false in
  let reg = match region with Some r -> r | None -> fresh_region () in
  let shift = t.line_shift in
  let smask = t.set_mask in
  let sets = t.sets in
  let assoc = t.config.assoc in
  let line_bytes = t.config.line_bytes in
  let tags = t.tags and ages = t.ages and dirty = t.dirty in
  let rec find base line i =
    if i = assoc then -1
    else if Array.unsafe_get tags (base + i) = line then i
    else find base line (i + 1)
  in
  (* One exact access (same mutations as [access_full]); returns the
     entry index now holding the line. *)
  let do_access ~write ~lid addr =
    let line = addr lsr shift in
    let set = if smask >= 0 then line land smask else line mod sets in
    let base = set * assoc in
    t.accesses <- t.accesses + 1;
    t.clock <- t.clock + 1;
    if write then t.writes <- t.writes + 1;
    let way = find base line 0 in
    if way >= 0 then begin
      t.hits <- t.hits + 1;
      if write then begin
        t.write_hits <- t.write_hits + 1;
        dirty.(base + way) <- true
      end;
      ages.(base + way) <- t.clock;
      if has_region && lid < nmarked && Array.unsafe_get marks lid then begin
        reg.r_accesses <- reg.r_accesses + 1;
        reg.r_hits <- reg.r_hits + 1
      end;
      base + way
    end
    else begin
      let cold = not (seen_mem t line) in
      if cold then begin
        seen_add t line;
        t.cold <- t.cold + 1
      end;
      let victim = ref 0 in
      for i = 1 to assoc - 1 do
        if ages.(base + i) < ages.(base + !victim) then victim := i
      done;
      if dirty.(base + !victim) && tags.(base + !victim) >= 0 then
        t.writebacks <- t.writebacks + 1;
      tags.(base + !victim) <- line;
      ages.(base + !victim) <- t.clock;
      dirty.(base + !victim) <- write;
      if has_region && lid < nmarked && Array.unsafe_get marks lid then begin
        reg.r_accesses <- reg.r_accesses + 1;
        if cold then reg.r_cold <- reg.r_cold + 1
      end;
      base + !victim
    end
  in
  let i = ref 0 in
  while !i < len do
    let w = Array.unsafe_get data !i in
    if w >= 0 then begin
      ignore (do_access ~write:(Chunk.write w) ~lid:(Chunk.label w) (Chunk.addr w));
      incr i
    end
    else begin
      let trip = Runchunk.header_trip w in
      let nrefs = Runchunk.header_nrefs w in
      (match metrics with Some m -> m.m_groups <- m.m_groups + 1 | None -> ());
      let addrs = Array.make nrefs 0 in
      let strides = Array.make nrefs 0 in
      let lids = Array.make nrefs 0 in
      let wr = Array.make nrefs false in
      let mk = Array.make nrefs false in
      let any_streamer = ref false in
      for j = 0 to nrefs - 1 do
        let r = data.(!i + 1 + (2 * j)) in
        addrs.(j) <- Chunk.addr r;
        wr.(j) <- Chunk.write r;
        let lid = Chunk.label r in
        lids.(j) <- lid;
        mk.(j) <- has_region && lid < nmarked && marks.(lid);
        let s = data.(!i + 2 + (2 * j)) in
        strides.(j) <- s;
        if abs s < line_bytes then any_streamer := true
      done;
      i := !i + Runchunk.group_words ~nrefs;
      if not !any_streamer then begin
        (* Every reference crosses a line every iteration: every
           iteration would be an event, so replay per access (still
           without per-record decode). *)
        (match metrics with
        | Some m -> m.m_boundaries <- m.m_boundaries + trip
        | None -> ());
        for _t = 0 to trip - 1 do
          for j = 0 to nrefs - 1 do
            ignore (do_access ~write:wr.(j) ~lid:lids.(j) addrs.(j));
            addrs.(j) <- addrs.(j) + strides.(j)
          done
        done
      end
      else begin
        let nwrites = ref 0 in
        for j = 0 to nrefs - 1 do
          if wr.(j) then incr nwrites
        done;
        let nwrites = !nwrites in
        let entry = Array.make nrefs 0 in
        let line_of = Array.make nrefs 0 in
        let valid = Array.make nrefs false in
        (* Iteration at which each reference next enters a new line,
           relative to its last lookup; stride-0 references never do. *)
        let next_cross = Array.make nrefs max_int in
        let tcur = ref 0 in
        while !tcur < trip do
          (* Event iteration: in reference order, certain hits take the
             fast path, crossed or evicted references take exact
             lookups. *)
          let invalidated = ref false in
          for j = 0 to nrefs - 1 do
            let addr = addrs.(j) in
            let line = addr lsr shift in
            if valid.(j) && line = line_of.(j) then begin
              (* Still inside the resident line: a certain hit. *)
              let e = entry.(j) in
              t.accesses <- t.accesses + 1;
              t.clock <- t.clock + 1;
              t.hits <- t.hits + 1;
              if wr.(j) then begin
                t.writes <- t.writes + 1;
                t.write_hits <- t.write_hits + 1;
                dirty.(e) <- true
              end;
              ages.(e) <- t.clock;
              if mk.(j) then begin
                reg.r_accesses <- reg.r_accesses + 1;
                reg.r_hits <- reg.r_hits + 1
              end
            end
            else begin
              let hits0 = t.hits in
              let e = do_access ~write:wr.(j) ~lid:lids.(j) addr in
              entry.(j) <- e;
              line_of.(j) <- line;
              valid.(j) <- true;
              let s = strides.(j) in
              next_cross.(j) <-
                (if s = 0 then max_int
                 else
                   let off = addr land (line_bytes - 1) in
                   let k =
                     if s > 0 then (line_bytes - off + s - 1) / s
                     else (off - s) / -s
                   in
                   !tcur + k);
              if t.hits = hits0 then begin
                (* The miss refilled entry [e]; any other reference
                   resident there lost its line. *)
                for k = 0 to nrefs - 1 do
                  if k <> j && valid.(k) && entry.(k) = e
                     && tags.(e) <> line_of.(k)
                  then begin
                    valid.(k) <- false;
                    invalidated := true;
                    match metrics with
                    | Some m -> m.m_fallbacks <- m.m_fallbacks + 1
                    | None -> ()
                  end
                done
              end
            end;
            addrs.(j) <- addrs.(j) + strides.(j)
          done;
          (match metrics with
          | Some m -> m.m_boundaries <- m.m_boundaries + 1
          | None -> ());
          incr tcur;
          if not !invalidated && !tcur < trip then begin
            (* All references resident: iterations before the earliest
               crossing are all hits. Bulk-advance statistics and
               restore the LRU state per the rule above. *)
            let te = ref trip in
            for j = 0 to nrefs - 1 do
              if next_cross.(j) < !te then te := next_cross.(j)
            done;
            let wlen = !te - !tcur in
            if wlen > 0 then begin
              let dn = wlen * nrefs in
              t.accesses <- t.accesses + dn;
              t.clock <- t.clock + dn;
              t.hits <- t.hits + dn;
              t.writes <- t.writes + (wlen * nwrites);
              t.write_hits <- t.write_hits + (wlen * nwrites);
              for j = 0 to nrefs - 1 do
                ages.(entry.(j)) <- t.clock - nrefs + j + 1;
                if mk.(j) then begin
                  reg.r_accesses <- reg.r_accesses + wlen;
                  reg.r_hits <- reg.r_hits + wlen
                end;
                addrs.(j) <- addrs.(j) + (wlen * strides.(j))
              done;
              (match metrics with
              | Some m -> m.m_bulk_iters <- m.m_bulk_iters + wlen
              | None -> ());
              tcur := !te
            end
          end
        done
      end
    end
  done

let stats t =
  {
    accesses = t.accesses;
    hits = t.hits;
    misses = t.accesses - t.hits;
    cold_misses = t.cold;
    writes = t.writes;
    write_hits = t.write_hits;
    writebacks = t.writebacks;
  }

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.ages 0 (Array.length t.ages) 0;
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  t.clock <- 0;
  t.accesses <- 0;
  t.hits <- 0;
  t.cold <- 0;
  t.writes <- 0;
  t.write_hits <- 0;
  t.writebacks <- 0;
  Bytes.fill t.seen_bits 0 (Bytes.length t.seen_bits) '\000';
  t.seen_count <- 0

(* The one hit-rate definition, shared with [Measure.hit_rate]: with no
   accesses at all the rate is vacuously 100%, but a run whose accesses
   were *all* cold misses (denominator 0 with accesses > 0) hit nothing
   and reports 0 — not the misleading 100.0 the seed returned. *)
let rate_of_counts ?(exclude_cold = true) ~accesses ~hits ~cold () =
  if accesses = 0 then 100.0
  else
    let denom = if exclude_cold then accesses - cold else accesses in
    if denom <= 0 then 0.0
    else 100.0 *. float_of_int hits /. float_of_int denom

let hit_rate ?exclude_cold (s : stats) =
  rate_of_counts ?exclude_cold ~accesses:s.accesses ~hits:s.hits
    ~cold:s.cold_misses ()

let num_sets t = t.sets
let lines_touched t = t.seen_count
