(** A fixed-size domain pool for independent work items.

    Built on OCaml 5 domains; used to run the per-program rows of the
    evaluation tables and the experiment list of the benchmark harness
    in parallel. Results are always delivered in input order, and with
    [jobs = 1] the functions are plain sequential maps, so pool size
    never changes the answer — only the wall clock.

    The pool size defaults to the [MEMORIA_JOBS] environment variable
    when set (minimum 1, capped at the machine's recommended domain
    count — oversubscribing cores only adds GC synchronisation stalls),
    otherwise to the recommended domain count capped at 8. An explicit
    [?jobs] argument is taken literally. Nested calls from inside a pool
    worker run sequentially rather than spawning further domains.

    When {!Locality_obs.Obs} tracing is enabled, each item's events are
    captured on the worker domain and merged back into the caller's
    buffer in input order at the barrier, so the recorded stream has the
    same {!Locality_obs.Event.fingerprint} sequence at any pool size.

    Workers may freely read and write a {!Locality_store.Store.t}: the
    handle is immutable, its counters are atomics, writes publish via
    rename, and concurrent writers of the same key settle on one valid
    entry — so the store is safe across pool domains and across
    concurrent processes sharing [MEMORIA_STORE]. The ambient
    {!Locality_store.Store.default} handle is resolved before any domain
    spawns and is therefore safe to consult from workers. *)

val jobs_env : string
(** Name of the controlling environment variable, ["MEMORIA_JOBS"]. *)

val default_jobs : unit -> int

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items] is [List.map f items], computed by up to [jobs]
    domains. An exception raised by [f] aborts the map and is re-raised
    in the caller. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array

val map_reduce :
  ?jobs:int ->
  map:('a -> 'b) ->
  combine:('acc -> 'b -> 'acc) ->
  init:'acc ->
  'a list ->
  'acc
(** Parallel map followed by a sequential in-order fold, so the result
    does not depend on the pool size. *)

(** {1 Persistent pool}

    A long-lived worker-domain pool for services ([memoria serve]):
    requests arrive one at a time, so spawning domains per batch (as
    {!map} does) would dominate the warm-path latency. Workers set the
    same nested-pool guard as {!map}'s, so jobs that call {!map}
    internally run it sequentially. *)

type pool

val create : ?jobs:int -> unit -> pool
(** Spawn the worker domains ([?jobs] defaults like {!map}'s). Create
    the pool {e after} {!Locality_obs.Obs.set_enabled} so workers see
    the tracing flag. *)

val pool_jobs : pool -> int

val submit : pool -> (unit -> unit) -> unit
(** Enqueue a job; it runs on some worker in FIFO order. Exceptions
    escaping the job are dropped — report errors inside it. @raise
    Invalid_argument after {!shutdown}. *)

val shutdown : pool -> unit
(** Stop accepting work, finish every queued job, and join the
    workers. Idempotent-safe to call once only. *)
