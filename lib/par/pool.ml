(* A small fixed-size domain pool for embarrassingly parallel work.

   Work items are claimed by index from an atomic counter, and results
   land in a slot array, so output order always matches input order no
   matter which domain ran which item. With [jobs = 1] (or inside a
   worker of another pool) no domain is spawned and the map degenerates
   to the plain sequential loop, which is also the determinism baseline
   the test suite compares against. *)

let jobs_env = "MEMORIA_JOBS"

let env_jobs () =
  match Sys.getenv_opt jobs_env with
  | None -> None
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some j when j >= 1 -> Some j
    | _ -> None)

let default_jobs () =
  let cores = max 1 (Domain.recommended_domain_count ()) in
  match env_jobs () with
  (* Cap at the core count: extra domains on an oversubscribed machine
     only add minor-GC synchronisation stalls. An explicit [?jobs]
     argument is taken literally. *)
  | Some j -> min j cores
  | None -> min 8 cores

(* Workers flag themselves so a nested [map] (e.g. Table2.compute inside
   a parallelized bench experiment) runs sequentially instead of
   multiplying domains. *)
let in_worker = Domain.DLS.new_key (fun () -> false)

module Obs = Locality_obs.Obs

let map_array ?jobs f items =
  let n = Array.length items in
  let jobs =
    match jobs with Some j -> max 1 j | None -> default_jobs ()
  in
  let jobs = min jobs n in
  if jobs <= 1 || n <= 1 || Domain.DLS.get in_worker then Array.map f items
  else begin
    let results = Array.make n None in
    (* When tracing is on, each item's events are captured on the worker
       and re-injected into the caller's buffer in input order at the
       barrier, so the merged stream is independent of the pool size
       (the sequential path above records directly in the same order). *)
    let tracing = Obs.enabled () in
    let item_events = if tracing then Array.make n [] else [||] in
    let next = Atomic.make 0 in
    let failure = Atomic.make None in
    let work () =
      Domain.DLS.set in_worker true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set in_worker false)
        (fun () ->
          let continue = ref true in
          while !continue do
            let i = Atomic.fetch_and_add next 1 in
            if i >= n || Atomic.get failure <> None then continue := false
            else
              let run () =
                if tracing then begin
                  let v, evs = Obs.scoped (fun () -> f items.(i)) in
                  item_events.(i) <- evs;
                  v
                end
                else f items.(i)
              in
              match run () with
              | v -> results.(i) <- Some v
              | exception e ->
                let bt = Printexc.get_raw_backtrace () in
                ignore (Atomic.compare_and_set failure None (Some (e, bt)))
          done)
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn work) in
    work ();
    Array.iter Domain.join domains;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    if tracing then Array.iter Obs.inject item_events;
    Array.map (function Some v -> v | None -> assert false) results
  end

let map ?jobs f items =
  Array.to_list (map_array ?jobs f (Array.of_list items))

let map_reduce ?jobs ~map:f ~combine ~init items =
  (* The fold is sequential and in input order, so the result is
     independent of the pool size. *)
  List.fold_left combine init (map ?jobs f items)

(* ------------------------------------------------ persistent pool --- *)

(* A long-lived variant for services: worker domains block on a
   condition variable and drain a FIFO of thunks, so submission costs a
   lock round-trip instead of a domain spawn. Used by [memoria serve],
   whose requests arrive one at a time rather than as a batch. *)

type pool = {
  p_jobs : int;
  p_lock : Mutex.t;
  p_nonempty : Condition.t;
  p_queue : (unit -> unit) Queue.t;
  mutable p_stop : bool;
  mutable p_domains : unit Domain.t list;
}

let worker p () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock p.p_lock;
    while Queue.is_empty p.p_queue && not p.p_stop do
      Condition.wait p.p_nonempty p.p_lock
    done;
    match Queue.take_opt p.p_queue with
    | None ->
      (* stopped and drained *)
      Mutex.unlock p.p_lock
    | Some job ->
      Mutex.unlock p.p_lock;
      (* A job must not take the pool down: the submitter is expected to
         wrap its own error reporting; anything escaping is dropped. *)
      (try job () with _ -> ());
      loop ()
  in
  loop ()

let create ?jobs () =
  let jobs = match jobs with Some j -> max 1 j | None -> default_jobs () in
  let p =
    {
      p_jobs = jobs;
      p_lock = Mutex.create ();
      p_nonempty = Condition.create ();
      p_queue = Queue.create ();
      p_stop = false;
      p_domains = [];
    }
  in
  p.p_domains <- List.init jobs (fun _ -> Domain.spawn (worker p));
  p

let pool_jobs p = p.p_jobs

let submit p job =
  Mutex.lock p.p_lock;
  if p.p_stop then begin
    Mutex.unlock p.p_lock;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job p.p_queue;
  Condition.signal p.p_nonempty;
  Mutex.unlock p.p_lock

let shutdown p =
  Mutex.lock p.p_lock;
  p.p_stop <- true;
  Condition.broadcast p.p_nonempty;
  Mutex.unlock p.p_lock;
  List.iter Domain.join p.p_domains;
  p.p_domains <- []
