type kind = Flow | Anti | Output | Input

type t = {
  src_label : string;
  snk_label : string;
  src_ref : Reference.t;
  snk_ref : Reference.t;
  kind : kind;
  vec : Direction.t;
  loops : string list;
  li : bool;
  li_always : bool;
  zero_prefix : int;
}

let is_true_dep d =
  match d.kind with Flow | Anti | Output -> true | Input -> false

let kind_of a b =
  match (a, b) with
  | `Write, `Read -> Flow
  | `Read, `Write -> Anti
  | `Write, `Write -> Output
  | `Read, `Read -> Input

let const_bounds (h : Loop.header) =
  match (Expr.simplify h.lb, Expr.simplify h.ub) with
  | Expr.Int lo, Expr.Int hi when h.step = 1 -> Some (lo, hi)
  | Expr.Int hi, Expr.Int lo when h.step = -1 -> Some (lo, hi)
  | _, _ -> None

let const_trip h =
  match const_bounds h with
  | Some (lo, hi) -> Some (max 0 (hi - lo + 1))
  | None -> None

let prime x = x ^ "'"

(* Rename the sink's non-common loop indices apart so that same-named
   sibling loops (e.g. two adjacent K loops) do not collide. Common
   indices keep their names: in [constraint_vector] the same name denotes
   source and sink iterations of the same loop, and in the
   zero-compatibility check the shared name encodes the hypothesis that
   they are equal. *)
let rename_snk_tail ~ncommon (snk_path : Loop.header list) (r : Reference.t) =
  let tail = List.filteri (fun i _ -> i >= ncommon) snk_path in
  let renames = List.map (fun (h : Loop.header) -> h.Loop.index) tail in
  let rename_expr e =
    List.fold_left (fun e x -> Expr.subst e x (Expr.Var (prime x))) e renames
  in
  let r' = { r with Reference.subs = List.map rename_expr r.Reference.subs } in
  let tail' =
    List.map
      (fun (h : Loop.header) ->
        {
          Loop.index = prime h.Loop.index;
          lb = rename_expr h.Loop.lb;
          ub = rename_expr h.Loop.ub;
          step = h.Loop.step;
        })
      tail
  in
  (r', tail')

let solve_constraints ~(common : Loop.header list) (src_ref : Reference.t)
    (snk_ref : Reference.t) : Direction.t option =
  let names = List.map (fun (h : Loop.header) -> h.Loop.index) common in
  let find x = List.find_opt (fun (h : Loop.header) -> h.Loop.index = x) common in
  let trip_of x = Option.bind (find x) const_trip in
  let bounds_of x = Option.bind (find x) const_bounds in
  let step_of x =
    match find x with Some h -> h.Loop.step | None -> 1
  in
  let module M = Map.Make (String) in
  let init = List.fold_left (fun m x -> M.add x Direction.Any m) M.empty names in
  let rec fold_dims m = function
    | [] -> Some m
    | (s1, s2) :: rest -> (
      match
        Subscript.test ~step_of ~trip_of ~bounds_of ~common:names ~src:s1
          ~snk:s2
      with
      | Subscript.Independent -> None
      | Subscript.Constraints cs ->
        let merged =
          List.fold_left
            (fun acc (x, e) ->
              Option.bind acc (fun m ->
                  match Direction.meet (M.find x m) e with
                  | None -> None
                  | Some e' -> Some (M.add x e' m)))
            (Some m) cs
        in
        (match merged with None -> None | Some m -> fold_dims m rest))
  in
  if List.length src_ref.Reference.subs <> List.length snk_ref.Reference.subs
  then None
  else
    match
      fold_dims init (List.combine src_ref.Reference.subs snk_ref.Reference.subs)
    with
    | None -> None
    | Some m -> Some (List.map (fun x -> M.find x m) names)

(* Can the two references touch the same location when the first [p]
   common loops are at equal iterations? The sink's loop indices beyond
   [p] are renamed apart (with their bounds), the first [p] share the
   source's names — the equality hypothesis — and each dimension of
   [src_sub - snk_sub] must then admit a zero within the loop bounds. *)
let zero_compatible_at ~src_path ~snk_path ~p ~(src_ref : Reference.t)
    (snk_ref : Reference.t) =
  let snk_ref_p, snk_tail_p = rename_snk_tail ~ncommon:p snk_path snk_ref in
  let order = Prove.of_headers (src_path @ snk_tail_p) in
  let dim_impossible (s1, s2) =
    match (Affine.of_expr s1, Affine.of_expr s2) with
    | Some a1, Some a2 -> Prove.nonzero order (Affine.sub a1 a2)
    | _, _ -> false
  in
  not
    (List.exists dim_impossible
       (List.combine src_ref.Reference.subs snk_ref_p.Reference.subs))

(* Largest prefix of common loops that can be held at equal iterations
   while the references still overlap; [None] when they cannot overlap at
   all (independence). Monotone: a longer equal prefix only constrains
   more. *)
let max_zero_prefix ~src_path ~snk_path ~ncommon ~src_ref snk_ref =
  let rec search p =
    if p < 0 then None
    else if zero_compatible_at ~src_path ~snk_path ~p ~src_ref snk_ref then
      Some p
    else search (p - 1)
  in
  search ncommon

(* Can the dependence distance at common loop [slot] have the given sign
   (or be zero)? Sink iteration variables are renamed apart with their
   loop bounds carried along: slots already known zero share the source's
   name (the equality is a fact), the tested slot gets a range shifted
   strictly above or below the source's, and every other undetermined
   slot ranges freely over its own bounds. Dimensions that pin a renamed
   variable to a source expression are then checked for consistency with
   that variable's range — which is where coupled triangular subscripts
   (e.g. Gaussian elimination's [RX(I,J)] with [J < K]) are decided. *)
let slot_sign_possible ~src_path ~snk_path ~ncommon ~(v : Direction.t) ~slot
    ~(hyp : [ `Pos | `Neg | `Zero ]) ~(src_ref : Reference.t)
    (snk_ref : Reference.t) =
  let common = List.filteri (fun i _ -> i < ncommon) src_path in
  let slot_header : Loop.header = List.nth common slot in
  if slot_header.Loop.step <> 1 && hyp <> `Zero then true
  else begin
    (* Build the rename map and the renamed sink headers, outermost
       first so bounds can be rewritten with the map built so far. *)
    let bang x = x ^ "!" in
    let renames = ref [] in
    let rename_expr e =
      List.fold_left
        (fun e (from_, into) -> Expr.subst e from_ (Expr.Var into))
        e !renames
    in
    let renamed_headers = ref [] in
    (* Affine facts that must admit >= 0; provably negative means the
       hypothesis is infeasible. Collected as the sink headers are
       rebuilt: the sign hypothesis on the tested slot, and — for shared
       slots — the sink-side header range of the shared variable (the
       sink iteration must itself be in bounds, which couples shared
       variables to renamed ones, e.g. J' <= I'-1). *)
    let constraints = ref [] in
    let affine_of e = Affine.of_expr e in
    let add_ge a b =
      (* record the fact a - b >= 0 *)
      match (affine_of a, affine_of b) with
      | Some aa, Some bb -> constraints := Affine.sub aa bb :: !constraints
      | _, _ -> ()
    in
    let add_range_constraints x lb ub =
      add_ge (Expr.Var x) lb;
      add_ge ub (Expr.Var x)
    in
    (* A header's (lb, ub) are the start and end values; for a negative
       step the start is the *largest* value, so the value range is
       [ub, lb]. Every range fact below must use (lo, hi), not (lb, ub):
       getting this backwards proved reversed-loop iterations out of
       bounds and silently dropped their dependences. *)
    let value_range (h : Loop.header) =
      if h.Loop.step >= 0 then (h.Loop.lb, h.Loop.ub)
      else (h.Loop.ub, h.Loop.lb)
    in
    List.iteri
      (fun p (h : Loop.header) ->
        let x = h.Loop.index in
        let entry = List.nth v p in
        let rename_with_own_bounds () =
          let x2 = bang x in
          renamed_headers :=
            !renamed_headers
            @ [
                {
                  Loop.index = x2;
                  lb = rename_expr h.Loop.lb;
                  ub = rename_expr h.Loop.ub;
                  step = h.Loop.step;
                };
              ];
          renames := (x, x2) :: !renames;
          x2
        in
        let share () =
          (* The shared variable must satisfy the sink-side header range
             too (bounds may reference renamed variables). *)
          let lo, hi = value_range h in
          add_range_constraints x (rename_expr lo) (rename_expr hi)
        in
        if p = slot then begin
          (* The sign hypothesis is encoded in the renamed header itself
             so the prover can combine it with the other facts: [x!]
             ranges strictly above (below) the source's [x], clipped by
             the loop's own bound on the other side (the remaining own
             bound is implied). *)
          match hyp with
          | `Zero -> share ()
          | `Pos ->
            let x2 = bang x in
            renamed_headers :=
              !renamed_headers
              @ [
                  {
                    Loop.index = x2;
                    lb = Expr.Add (Var x, Int 1);
                    ub = rename_expr h.Loop.ub;
                    step = 1;
                  };
                ];
            renames := (x, x2) :: !renames
          | `Neg ->
            let x2 = bang x in
            renamed_headers :=
              !renamed_headers
              @ [
                  {
                    Loop.index = x2;
                    lb = rename_expr h.Loop.lb;
                    ub = Expr.Sub (Var x, Int 1);
                    step = 1;
                  };
                ];
            renames := (x, x2) :: !renames
        end
        else if Direction.must_zero entry then share ()
        else ignore (rename_with_own_bounds ()))
      common;
    (* Non-common tail, primed and passed through the map. *)
    let tail = List.filteri (fun i _ -> i >= ncommon) snk_path in
    List.iter
      (fun (h : Loop.header) ->
        let x = h.Loop.index in
        let x2 = prime x in
        renamed_headers :=
          !renamed_headers
          @ [
              {
                Loop.index = x2;
                lb = rename_expr h.Loop.lb;
                ub = rename_expr h.Loop.ub;
                step = h.Loop.step;
              };
            ];
        renames := (x, x2) :: !renames)
      tail;
    let snk_subs = List.map rename_expr snk_ref.Reference.subs in
    let order = Prove.of_headers (src_path @ !renamed_headers) in
    let renamed_names =
      List.map (fun (h : Loop.header) -> h.Loop.index) !renamed_headers
    in
    (* Collect per-dimension equations; gather pins [y := e] whenever a
       dimension involves exactly one renamed variable with coefficient
       +-1. *)
    let infeasible = ref false in
    let pins = ref [] in
    List.iter2
      (fun s1 s2 ->
        match (Affine.of_expr s1, Affine.of_expr (rename_expr s2)) with
        | Some a1, Some a2 ->
          let d = Affine.sub a1 a2 in
          if Prove.nonzero order d then infeasible := true
          else begin
            let renamed_in_d =
              List.filter (fun y -> Affine.coeff d y <> 0) renamed_names
            in
            match renamed_in_d with
            | [ y ] ->
              let c = Affine.coeff d y in
              if abs c = 1 then begin
                (* d = c*y + rest = 0  =>  y = -rest/c *)
                let rest = Affine.subst d y (Affine.of_const 0) in
                let value =
                  if c = 1 then Affine.sub (Affine.of_const 0) rest else rest
                in
                pins := (y, value) :: !pins
              end
            | _ -> ()
          end
        | _, _ -> ())
      src_ref.Reference.subs snk_subs;
    if !infeasible then false
    else begin
      (* Check every renamed header's range against the pins. *)
      let subst_pins a =
        List.fold_left (fun a (y, e) -> Affine.subst a y e) a !pins
      in
      let feasible_header (h : Loop.header) =
        let lo, hi = value_range h in
        match (Affine.of_expr lo, Affine.of_expr hi) with
        | Some lb, Some ub -> (
          let lb = subst_pins lb and ub = subst_pins ub in
          match List.assoc_opt h.Loop.index !pins with
          | Some e ->
            let e = subst_pins e in
            (* Pinned value must lie within [lb, ub]. *)
            not
              (Prove.negative order (Affine.sub e lb)
              || Prove.negative order (Affine.sub ub e))
          | None ->
            (* Range must be non-empty. *)
            not (Prove.positive order (Affine.sub lb ub)))
        | _, _ -> true
      in
      let feasible_constraint c =
        not (Prove.negative order (subst_pins c))
      in
      List.for_all feasible_header !renamed_headers
      && List.for_all feasible_constraint !constraints
    end
  end

let analyze_pair ~src_path ~snk_path ~ncommon (src_ref : Reference.t)
    (snk_ref : Reference.t) =
  let common = List.filteri (fun i _ -> i < ncommon) src_path in
  if List.length src_ref.Reference.subs <> List.length snk_ref.Reference.subs
  then None
  else
    let snk_ref', _snk_tail = rename_snk_tail ~ncommon snk_path snk_ref in
    match solve_constraints ~common src_ref snk_ref' with
    | None -> None
    | Some v ->
    match max_zero_prefix ~src_path ~snk_path ~ncommon ~src_ref snk_ref with
    | None -> None (* cannot overlap at all within the bounds *)
    | Some mzp ->
      let zero_ok = mzp = ncommon in
      (* Identical subscript functions over the common loops: the
         references overlap on every common iteration, not merely at a
         boundary value of some non-common index. *)
      let always =
        List.for_all2
          (fun s1 s2 ->
            match (Affine.of_expr s1, Affine.of_expr s2) with
            | Some a1, Some a2 -> Affine.is_const (Affine.sub a1 a2) = Some 0
            | _, _ -> Expr.equal s1 s2)
          src_ref.Reference.subs snk_ref'.Reference.subs
      in
      if (not zero_ok) && List.for_all Direction.must_zero v then None
      else
        (* Per-slot directional refinement: for every undetermined entry
           decide which signs its distance can take, treating the other
           undetermined slots as existentially free. *)
        let refined =
          List.fold_left
            (fun acc (slot, e) ->
              match acc with
              | None -> None
              | Some v' -> (
                match e with
                | Direction.Dist _ -> acc
                | e when Direction.must_zero e -> acc
                | e ->
                  let test hyp =
                    slot_sign_possible ~src_path ~snk_path ~ncommon ~v ~slot
                      ~hyp ~src_ref snk_ref
                  in
                  let pos_ok = Direction.may_pos e && test `Pos in
                  let neg_ok = Direction.may_neg e && test `Neg in
                  let z_ok = Direction.may_zero e && test `Zero in
                  let e' =
                    match (pos_ok, z_ok, neg_ok) with
                    | false, false, false -> None
                    | true, true, false -> Some Direction.NonNeg
                    | true, false, false -> Some Direction.Pos
                    | false, true, true -> Some Direction.NonPos
                    | false, false, true -> Some Direction.Neg
                    | false, true, false -> Some (Direction.Dist 0)
                    | true, false, true -> Some Direction.Ne
                    | true, true, true -> Some e
                  in
                  (match e' with
                  | None -> None
                  | Some e' ->
                    Some
                      (List.mapi
                         (fun i old -> if i = slot then e' else old)
                         v'))))
            (Some v)
            (List.mapi (fun i e -> (i, e)) v)
        in
        (match refined with
        | None -> None
        | Some v -> Some (v, zero_ok, always, mzp))

let mk ~src ~snk ~kind ~vec ~loops ~li ~li_always ~zero_prefix =
  let s1, r1 = src and s2, r2 = snk in
  {
    src_label = s1.Stmt.label;
    snk_label = s2.Stmt.label;
    src_ref = r1;
    snk_ref = r2;
    kind;
    vec;
    loops;
    li;
    li_always;
    zero_prefix;
  }

let test_self ~path (s, r) =
  match
    analyze_pair ~src_path:path ~snk_path:path ~ncommon:(List.length path) r r
  with
  | None -> None
  | Some (v, _zero_ok, _always, mzp) -> (
    match Direction.restrict_lex_pos v with
    | None -> None
    | Some v' ->
      Some
        (mk ~src:(s, r) ~snk:(s, r) ~kind:Output ~vec:v'
           ~loops:(List.map (fun (h : Loop.header) -> h.Loop.index) path)
           ~li:false ~li_always:false ~zero_prefix:mzp))

let test_pair ~src_path ~snk_path ~ncommon ~src:(s1, r1, a1) ~snk:(s2, r2, a2) =
  if not (String.equal r1.Reference.array r2.Reference.array) then []
  else
    match analyze_pair ~src_path ~snk_path ~ncommon r1 r2 with
    | None -> []
    | Some (v, zero_ok, always, mzp) ->
      let names =
        List.filteri (fun i _ -> i < ncommon) src_path
        |> List.map (fun (h : Loop.header) -> h.Loop.index)
      in
      let fwd =
        let exists = Direction.may_lex_pos v || zero_ok in
        if not exists then []
        else
          match Direction.restrict_lex_nonneg v with
          | None -> []
          | Some v' ->
            [
              mk ~src:(s1, r1) ~snk:(s2, r2) ~kind:(kind_of a1 a2) ~vec:v'
                ~loops:names
                ~li:(zero_ok && List.for_all Direction.may_zero v')
                ~li_always:always ~zero_prefix:mzp;
            ]
      in
      let bwd =
        if not (Direction.may_lex_neg v) then []
        else
          match Direction.restrict_lex_pos (Direction.negate v) with
          | None -> []
          | Some v' ->
            [
              mk ~src:(s2, r2) ~snk:(s1, r1) ~kind:(kind_of a2 a1) ~vec:v'
                ~loops:names ~li:false ~li_always:false ~zero_prefix:mzp;
            ]
      in
      fwd @ bwd

let pp_kind ppf k =
  Format.pp_print_string ppf
    (match k with
    | Flow -> "flow"
    | Anti -> "anti"
    | Output -> "output"
    | Input -> "input")

let pp ppf d =
  Format.fprintf ppf "%s:%a -%a-> %s:%a %a%s" d.src_label Reference.pp
    d.src_ref pp_kind d.kind d.snk_label Reference.pp d.snk_ref Direction.pp
    d.vec
    (if d.li then " (li)" else "")
