(* Wire responses — see response.mli. *)

module Cache = Locality_cachesim.Cache
module Measure = Locality_interp.Measure
module Compound = Locality_core.Compound
module Json = Locality_obs.Json

type t =
  | Result of { id : string; emit_program : bool; result : Driver.result }
  | Tuned of { id : string; tune : string }
  | Failed of { id : string; message : string }
  | Timeout of { id : string; timeout_ms : int }
  | Overloaded of { id : string; retry_after_ms : int }

let of_run ~id ?(emit_program = false) = function
  | Ok result -> Result { id; emit_program; result }
  | Error message -> Failed { id; message }

let of_tune ~id = function
  | Ok json -> Tuned { id; tune = String.trim json }
  | Error message -> Failed { id; message }

let status = function
  | Result _ | Tuned _ -> "ok"
  | Failed _ -> "error"
  | Timeout _ -> "timeout"
  | Overloaded _ -> "overloaded"

(* Fixed-point float rendering keeps the bytes deterministic across
   callers; six decimals is the telemetry layer's precision and enough
   for modelled seconds and speedups. *)
let jfloat v = Printf.sprintf "%.6f" v

let region_fields (r : Measure.region) =
  [
    ("accesses", Json.int r.Measure.accesses);
    ("hits", Json.int r.Measure.hits);
    ("cold", Json.int r.Measure.cold);
  ]

let run_json (r : Measure.run) =
  Json.obj
    (region_fields r.Measure.whole
    @ [
        ("optimized", Json.obj (region_fields r.Measure.optimized));
        ("ops", Json.int r.Measure.ops);
        ("cycles", jfloat r.Measure.cycles);
        ("seconds", jfloat r.Measure.seconds);
      ])

let measured_json (m : Driver.measured) =
  Json.obj
    [
      ("machine", Json.str m.Driver.machine.Cache.name);
      ("original", run_json m.Driver.original_run);
      ("transformed", run_json m.Driver.transformed_run);
      ("speedup", jfloat m.Driver.speedup);
    ]

let compound_json (s : Compound.stats) =
  Json.obj
    [
      ("nests", Json.int (List.length s.Compound.nests));
      ("fusion_candidates", Json.int s.Compound.fusion_candidates);
      ("fusions_applied", Json.int s.Compound.fusions_applied);
      ("distributions", Json.int s.Compound.distributions);
    ]

let to_json t =
  match t with
  | Result { id; emit_program; result } ->
    Json.versioned
      ([
         ("id", Json.str id);
         ("status", Json.str "ok");
         ("name", Json.str result.Driver.name);
         ("optimized_labels", Json.strings result.Driver.optimized_labels);
         ( "compound",
           match result.Driver.compound with
           | Some s -> compound_json s
           | None -> "null" );
         ( "measured",
           Json.list (List.map measured_json result.Driver.measured) );
       ]
      @
      if emit_program then
        [
          ( "program",
            Json.str (Pretty.program_to_string result.Driver.transformed) );
        ]
      else [])
  | Tuned { id; tune } ->
    (* [tune] is already a rendered JSON object (the tuner's own
       versioned document); embed it verbatim so the daemon's reply and
       [memoria tune --json] byte-match. *)
    Json.versioned
      [ ("id", Json.str id); ("status", Json.str "ok"); ("tune", tune) ]
  | Failed { id; message } ->
    Json.versioned
      [
        ("id", Json.str id);
        ("status", Json.str "error");
        ("error", Json.str message);
      ]
  | Timeout { id; timeout_ms } ->
    Json.versioned
      [
        ("id", Json.str id);
        ("status", Json.str "timeout");
        ("timeout_ms", Json.int timeout_ms);
      ]
  | Overloaded { id; retry_after_ms } ->
    Json.versioned
      [
        ("id", Json.str id);
        ("status", Json.str "overloaded");
        ("retry_after_ms", Json.int retry_after_ms);
      ]
