(* The serializable mirror of Driver.config — see request.mli. *)

module Cache = Locality_cachesim.Cache
module Machine = Locality_cachesim.Machine
module Measure = Locality_interp.Measure
module Store = Locality_store.Store
module Jsonin = Locality_telemetry.Jsonin
module Json = Locality_obs.Json

type source =
  | Kernel of string
  | Suite of string
  | File of string
  | Text of { name : string; text : string }

type transform =
  | Keep
  | Compound of { try_reversal : bool option; interference_limit : int option }

type machine = Named of string | Custom of Cache.config

type store_choice = Ambient | No_store | Root of string

type tune_spec = {
  t_top_k : int option;
  t_tiles : int list option;
  t_unrolls : int list option;
  t_max_candidates : int option;
}

type t = {
  id : string;
  source : source;
  n : int option;
  scale : int;
  cls : int;
  transform : transform;
  machines : machine list;
  params : (string * int) list;
  replay : Measure.replay_mode option;
  sample_rate : float option;
  use_labels : bool;
  store : store_choice;
  jobs : int option;
  timeout_ms : int option;
  emit_program : bool;
  tune : tune_spec option;
}

let make ?(id = "") ?n ?(scale = 1) ?(cls = 4)
    ?(transform = Compound { try_reversal = None; interference_limit = None })
    ?(machines = []) ?(params = []) ?replay ?sample_rate ?(use_labels = false)
    ?(store = Ambient) ?jobs ?timeout_ms ?(emit_program = false) ?tune source =
  { id; source; n; scale; cls; transform; machines; params; replay;
    sample_rate; use_labels; store; jobs; timeout_ms; emit_program; tune }

let named_machines =
  [ ("cache1", Machine.cache1); ("cache2", Machine.cache2) ]

let machine_of_config c =
  match List.find_opt (fun (_, preset) -> preset = c) named_machines with
  | Some (name, _) -> Named name
  | None -> Custom c

(* -------------------------------------------------------- writing --- *)

let jbool b = if b then "true" else "false"
let jnull = "null"
let jfloat v = Printf.sprintf "%.17g" v
let jopt f = function None -> jnull | Some v -> f v

let source_json = function
  | Kernel name -> Json.obj [ ("kind", Json.str "kernel"); ("name", Json.str name) ]
  | Suite name -> Json.obj [ ("kind", Json.str "suite"); ("name", Json.str name) ]
  | File path -> Json.obj [ ("kind", Json.str "file"); ("path", Json.str path) ]
  | Text { name; text } ->
    Json.obj
      [ ("kind", Json.str "text"); ("name", Json.str name);
        ("text", Json.str text) ]

let transform_json = function
  | Keep -> Json.obj [ ("kind", Json.str "keep") ]
  | Compound { try_reversal; interference_limit } ->
    Json.obj
      [
        ("kind", Json.str "compound");
        ("try_reversal", jopt jbool try_reversal);
        ("interference_limit", jopt Json.int interference_limit);
      ]

let machine_json = function
  | Named name -> Json.str name
  | Custom (c : Cache.config) ->
    Json.obj
      [
        ("name", Json.str c.Cache.name);
        ("size_bytes", Json.int c.Cache.size_bytes);
        ("assoc", Json.int c.Cache.assoc);
        ("line_bytes", Json.int c.Cache.line_bytes);
      ]

let store_json = function
  | Ambient -> Json.str "ambient"
  | No_store -> Json.str "none"
  | Root p -> Json.obj [ ("root", Json.str p) ]

let tune_json (s : tune_spec) =
  let jints l = Json.list (List.map Json.int l) in
  Json.obj
    [
      ("top_k", jopt Json.int s.t_top_k);
      ("tiles", jopt jints s.t_tiles);
      ("unrolls", jopt jints s.t_unrolls);
      ("max_candidates", jopt Json.int s.t_max_candidates);
    ]

let to_json r =
  Json.versioned
    [
      ("id", Json.str r.id);
      ("source", source_json r.source);
      ("n", jopt Json.int r.n);
      ("scale", Json.int r.scale);
      ("cls", Json.int r.cls);
      ("transform", transform_json r.transform);
      ("machines", Json.list (List.map machine_json r.machines));
      ( "params",
        Json.obj (List.map (fun (k, v) -> (k, Json.int v)) r.params) );
      ("replay", jopt (fun m -> Json.str (Measure.mode_to_string m)) r.replay);
      ("sample_rate", jopt jfloat r.sample_rate);
      ("use_labels", jbool r.use_labels);
      ("store", store_json r.store);
      ("jobs", jopt Json.int r.jobs);
      ("timeout_ms", jopt Json.int r.timeout_ms);
      ("emit_program", jbool r.emit_program);
      ("tune", jopt tune_json r.tune);
    ]

let fingerprint r =
  to_json
    { r with id = ""; timeout_ms = None; jobs = None; emit_program = false }

(* -------------------------------------------------------- reading --- *)

exception Reject of string

let reject fmt = Printf.ksprintf (fun m -> raise (Reject m)) fmt

(* Positions come from the keyed parse: first occurrence of the key in
   document order — exact for a well-formed request (field names are
   unique per object), and still inside the document for pathological
   key reuse across nesting levels. *)
let pos_of src keys k =
  match List.assoc_opt k keys with
  | Some off ->
    let line, col = Jsonin.line_col src off in
    Printf.sprintf "%d:%d" line col
  | None -> "request"

let check_fields ~src ~keys ~ctx allowed fields =
  List.iter
    (fun (k, _) ->
      if not (List.mem k allowed) then
        reject "%s: unknown field %S in %s" (pos_of src keys k) k ctx)
    fields

let non_null fields k =
  match List.assoc_opt k fields with
  | None | Some Jsonin.Null -> None
  | Some v -> Some v

let str_field ~src ~keys fields k =
  Option.map
    (function
      | Jsonin.Str s -> s
      | _ -> reject "%s: field %S: expected a string" (pos_of src keys k) k)
    (non_null fields k)

let int_field ~src ~keys fields k =
  Option.map
    (fun v ->
      match Jsonin.to_int_opt v with
      | Some i -> i
      | None -> reject "%s: field %S: expected an integer" (pos_of src keys k) k)
    (non_null fields k)

let bool_field ~src ~keys fields k =
  Option.map
    (function
      | Jsonin.Bool b -> b
      | _ -> reject "%s: field %S: expected a boolean" (pos_of src keys k) k)
    (non_null fields k)

let float_field ~src ~keys fields k =
  Option.map
    (fun v ->
      match Jsonin.to_float_opt v with
      | Some f -> f
      | None -> reject "%s: field %S: expected a number" (pos_of src keys k) k)
    (non_null fields k)

let obj_of ~src ~keys v ~what =
  match Jsonin.obj_fields v with
  | Some fields -> fields
  | None ->
    ignore keys;
    ignore src;
    reject "request: %s: expected a JSON object" what

let decode_source ~src ~keys v =
  let fields = obj_of ~src ~keys v ~what:"source" in
  let str k = str_field ~src ~keys fields k in
  let require k =
    match str k with
    | Some s -> s
    | None -> reject "%s: source is missing field %S" (pos_of src keys "source") k
  in
  match str "kind" with
  | None -> reject "%s: source is missing field \"kind\"" (pos_of src keys "source")
  | Some kind -> (
    let allowed =
      match kind with
      | "kernel" | "suite" -> [ "kind"; "name" ]
      | "file" -> [ "kind"; "path" ]
      | "text" -> [ "kind"; "name"; "text" ]
      | other ->
        reject "%s: unknown source kind %S (kernel|suite|file|text)"
          (pos_of src keys "kind") other
    in
    check_fields ~src ~keys ~ctx:"source" allowed fields;
    match kind with
    | "kernel" -> Kernel (require "name")
    | "suite" -> Suite (require "name")
    | "file" -> File (require "path")
    | _ -> Text { name = require "name"; text = require "text" })

let decode_transform ~src ~keys v =
  match v with
  | Jsonin.Str "keep" -> Keep
  | Jsonin.Str "compound" ->
    Compound { try_reversal = None; interference_limit = None }
  | Jsonin.Str other ->
    reject "%s: unknown transform %S (keep|compound)"
      (pos_of src keys "transform") other
  | v ->
    let fields = obj_of ~src ~keys v ~what:"transform" in
    check_fields ~src ~keys ~ctx:"transform"
      [ "kind"; "try_reversal"; "interference_limit" ]
      fields;
    (match str_field ~src ~keys fields "kind" with
    | Some "keep" -> Keep
    | Some "compound" | None ->
      Compound
        {
          try_reversal = bool_field ~src ~keys fields "try_reversal";
          interference_limit = int_field ~src ~keys fields "interference_limit";
        }
    | Some other ->
      reject "%s: unknown transform kind %S (keep|compound)"
        (pos_of src keys "kind") other)

let decode_machine ~src ~keys v =
  match v with
  | Jsonin.Str name -> Named name
  | v ->
    let fields = obj_of ~src ~keys v ~what:"machine" in
    check_fields ~src ~keys ~ctx:"machine"
      [ "name"; "size_bytes"; "assoc"; "line_bytes" ]
      fields;
    let int k =
      match int_field ~src ~keys fields k with
      | Some i -> i
      | None -> reject "request: machine is missing field %S" k
    in
    Custom
      {
        Cache.name =
          Option.value (str_field ~src ~keys fields "name") ~default:"custom";
        size_bytes = int "size_bytes";
        assoc = int "assoc";
        line_bytes = int "line_bytes";
      }

let decode_store ~src ~keys v =
  match v with
  | Jsonin.Str "ambient" -> Ambient
  | Jsonin.Str "none" -> No_store
  | Jsonin.Str other ->
    reject "%s: unknown store %S (ambient|none|{\"root\": DIR})"
      (pos_of src keys "store") other
  | v -> (
    let fields = obj_of ~src ~keys v ~what:"store" in
    check_fields ~src ~keys ~ctx:"store" [ "root" ] fields;
    match str_field ~src ~keys fields "root" with
    | Some p -> Root p
    | None -> reject "request: store is missing field \"root\"")

let decode_params ~src ~keys v =
  let fields = obj_of ~src ~keys v ~what:"params" in
  List.map
    (fun (k, v) ->
      match Jsonin.to_int_opt v with
      | Some i -> (k, i)
      | None ->
        reject "%s: parameter %S: expected an integer" (pos_of src keys k) k)
    fields

let decode_tune ~src ~keys v =
  let fields = obj_of ~src ~keys v ~what:"tune" in
  check_fields ~src ~keys ~ctx:"tune"
    [ "top_k"; "tiles"; "unrolls"; "max_candidates" ]
    fields;
  let int_list k =
    Option.map
      (function
        | Jsonin.List items ->
          let l =
            List.map
              (fun v ->
                match Jsonin.to_int_opt v with
                | Some i when i >= 1 -> i
                | _ ->
                  reject "%s: field %S: expected positive integers"
                    (pos_of src keys k) k)
              items
          in
          if l = [] then
            reject "%s: field %S: expected a non-empty array"
              (pos_of src keys k) k;
          l
        | _ ->
          reject "%s: field %S: expected an array of integers"
            (pos_of src keys k) k)
      (non_null fields k)
  in
  let pos k =
    let v = int_field ~src ~keys fields k in
    Option.iter
      (fun i ->
        if i < 1 then reject "%s: field %S: must be >= 1" (pos_of src keys k) k)
      v;
    v
  in
  {
    t_top_k = pos "top_k";
    t_tiles = int_list "tiles";
    t_unrolls = int_list "unrolls";
    t_max_candidates = pos "max_candidates";
  }

let allowed_fields =
  [
    "schema_version"; "id"; "source"; "n"; "scale"; "cls"; "transform";
    "machines"; "params"; "replay"; "sample_rate"; "use_labels"; "store";
    "jobs"; "timeout_ms"; "emit_program"; "tune";
  ]

let decode src keys json =
  let fields =
    match Jsonin.obj_fields json with
    | Some fields -> fields
    | None -> reject "request: expected a JSON object"
  in
  check_fields ~src ~keys ~ctx:"request" allowed_fields fields;
  (match int_field ~src ~keys fields "schema_version" with
  | Some v when v <> Json.schema_version ->
    reject "%s: unsupported schema_version %d (expected %d)"
      (pos_of src keys "schema_version") v Json.schema_version
  | _ -> ());
  let source =
    match non_null fields "source" with
    | Some v -> decode_source ~src ~keys v
    | None -> reject "request: missing field \"source\""
  in
  let replay =
    Option.map
      (fun s ->
        match Measure.mode_of_string s with
        | Some m -> m
        | None ->
          reject "%s: unknown replay mode %S (per-access|runs|stream|sample|analytic)"
            (pos_of src keys "replay") s)
      (str_field ~src ~keys fields "replay")
  in
  let sample_rate =
    Option.map
      (fun r ->
        if r > 0.0 && r <= 1.0 then r
        else
          reject "%s: field \"sample_rate\": expected a rate in (0, 1]"
            (pos_of src keys "sample_rate"))
      (float_field ~src ~keys fields "sample_rate")
  in
  (* Range checks that need no pipeline context happen here, where the
     diagnostic can still point at the offending key. *)
  let positive name v =
    Option.iter
      (fun v ->
        if v < 1 then
          reject "%s: field %S: must be >= 1" (pos_of src keys name) name)
      v;
    v
  in
  {
    id = Option.value (str_field ~src ~keys fields "id") ~default:"";
    source;
    n = int_field ~src ~keys fields "n";
    scale =
      Option.value (positive "scale" (int_field ~src ~keys fields "scale"))
        ~default:1;
    cls =
      Option.value (positive "cls" (int_field ~src ~keys fields "cls"))
        ~default:4;
    transform =
      (match non_null fields "transform" with
      | Some v -> decode_transform ~src ~keys v
      | None -> Compound { try_reversal = None; interference_limit = None });
    machines =
      (match non_null fields "machines" with
      | Some (Jsonin.List items) -> List.map (decode_machine ~src ~keys) items
      | Some _ ->
        reject "%s: field \"machines\": expected an array"
          (pos_of src keys "machines")
      | None -> []);
    params =
      (match non_null fields "params" with
      | Some v -> decode_params ~src ~keys v
      | None -> []);
    replay;
    sample_rate;
    use_labels =
      Option.value (bool_field ~src ~keys fields "use_labels") ~default:false;
    store =
      (match non_null fields "store" with
      | Some v -> decode_store ~src ~keys v
      | None -> Ambient);
    jobs = int_field ~src ~keys fields "jobs";
    timeout_ms =
      (let v = int_field ~src ~keys fields "timeout_ms" in
       Option.iter
         (fun ms ->
           if ms < 0 then
             reject "%s: field \"timeout_ms\": must be >= 0"
               (pos_of src keys "timeout_ms"))
         v;
       v);
    emit_program =
      Option.value (bool_field ~src ~keys fields "emit_program") ~default:false;
    tune = Option.map (decode_tune ~src ~keys) (non_null fields "tune");
  }

let of_json src =
  match Jsonin.parse_keyed src with
  | exception Jsonin.Parse_error m -> Error ("request: " ^ m)
  | json, keys -> ( try Ok (decode src keys json) with Reject m -> Error m)

(* ------------------------------------------------------ resolving --- *)

let is_pow2 n = n > 0 && n land (n - 1) = 0

let resolve_machine = function
  | Named name -> (
    match List.assoc_opt name named_machines with
    | Some c -> c
    | None ->
      reject "request: unknown machine %S (try: %s)" name
        (String.concat ", " (List.map fst named_machines)))
  | Custom (c : Cache.config) ->
    let sets_ok =
      c.Cache.assoc >= 1
      && is_pow2 c.Cache.line_bytes
      && c.Cache.size_bytes mod (c.Cache.line_bytes * c.Cache.assoc) = 0
      && is_pow2 (c.Cache.size_bytes / (c.Cache.line_bytes * c.Cache.assoc))
    in
    if not sets_ok then
      reject
        "request: machine %S: invalid geometry (need power-of-two line and \
         set count, assoc >= 1)"
        c.Cache.name;
    c

let to_config r =
  try
    if r.scale < 1 then reject "request: field \"scale\": must be >= 1";
    if r.cls < 1 then reject "request: field \"cls\": must be >= 1";
    let source =
      match r.source with
      | Kernel name -> Driver.Source_kernel name
      | Suite name -> Driver.Source_suite name
      | File path -> Driver.Source_file path
      | Text { name; text } -> Driver.Source_text { name; text }
    in
    let machines = List.map resolve_machine r.machines in
    let store =
      match r.store with
      | Ambient -> Store.default ()
      | No_store -> None
      | Root p -> (
        try Some (Store.open_root p)
        with Sys_error m -> reject "request: store root %s: %s" p m)
    in
    let transform =
      match r.transform with
      | Keep -> Driver.Keep
      | Compound { try_reversal; interference_limit } ->
        Driver.Compound { try_reversal; interference_limit }
    in
    Ok
      (Driver.config ?n:r.n ~scale:r.scale ~cls:r.cls ~transform ~machines
         ?params:(match r.params with [] -> None | l -> Some l)
         ?replay:r.replay ?sample_rate:r.sample_rate ~use_labels:r.use_labels
         ~store source)
  with Reject m -> Error m
