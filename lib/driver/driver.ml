(* The unified pipeline behind the CLI, the benchmark harness and the
   table generators — see driver.mli for the contract. *)

module Cache = Locality_cachesim.Cache
module Machine = Locality_cachesim.Machine
module Measure = Locality_interp.Measure
module Store = Locality_store.Store
module Compound = Locality_core.Compound
module Suite = Locality_suite
module Obs = Locality_obs.Obs

type source =
  | Source_program of { name : string; program : Program.t }
  | Source_file of string
  | Source_text of { name : string; text : string }
  | Source_kernel of string
  | Source_suite of string
  | Source_entry of Suite.Programs.entry

type transform =
  | Keep
  | Compound of {
      try_reversal : bool option;
      interference_limit : int option;
    }
  | Provided of { transformed : Program.t; optimized_labels : string list }

type config = {
  source : source;
  n : int option;
  scale : int;
  cls : int;
  transform : transform;
  machines : Cache.config list;
  timing : Machine.timing;
  params : (string * int) list option;
  replay : Measure.replay_mode option;
  sample_rate : float option;
  use_labels : bool;
  store : Store.t option;
}

let config ?n ?(scale = 1) ?(cls = 4)
    ?(transform = Compound { try_reversal = None; interference_limit = None })
    ?(machines = []) ?(timing = Machine.default_timing) ?params ?replay
    ?sample_rate ?(use_labels = false) ?(store = Store.default ()) source =
  if scale < 1 then invalid_arg "Driver.config: scale must be >= 1";
  (match sample_rate with
  | Some r when not (r > 0.0 && r <= 1.0) ->
    invalid_arg "Driver.config: sample_rate must be in (0, 1]"
  | _ -> ());
  { source; n; scale; cls; transform; machines; timing; params; replay;
    sample_rate; use_labels; store }

type measured = {
  machine : Cache.config;
  original_run : Measure.run;
  transformed_run : Measure.run;
  speedup : float;
}

type result = {
  name : string;
  original : Program.t;
  transformed : Program.t;
  compound : Compound.stats option;
  optimized_labels : string list;
  measured : measured list;
}

(* ----------------------------------------------------------- load --- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let override_params n (p : Program.t) =
  { p with Program.params = List.map (fun (x, _) -> (x, n)) p.Program.params }

let resize n p = match n with None -> p | Some n -> override_params n p

(* Every error leaving this module reads "<name>:<detail>" with the
   source name appearing exactly once — the stable format the wire
   protocol (doc/PROTOCOL.md) and [memoria suite] print verbatim.
   Messages that already carry the prefix (a [Sys_error] from opening
   the file, the lexer's "path:line:col:" diagnostics) pass through
   untouched. *)
let named_error name msg =
  let prefix = name ^ ":" in
  let n = String.length prefix in
  if String.length msg >= n && String.sub msg 0 n = prefix then msg
  else Printf.sprintf "%s: %s" name msg

let parse_text ~name text =
  try
    let p =
      Obs.span "parse" ~args:[ ("file", name) ] (fun () ->
          Locality_lang.Lower.parse_program text)
    in
    Ok p
  with
  | Locality_lang.Lexer.Error (msg, loc) ->
    Error
      (Printf.sprintf "%s:%s: lexical error: %s" name
         (Locality_lang.Lexer.pp_loc loc) msg)
  | Locality_lang.Parser.Error (msg, loc) ->
    Error
      (Printf.sprintf "%s:%s: syntax error: %s" name
         (Locality_lang.Lexer.pp_loc loc) msg)
  | Locality_lang.Lower.Error msg -> Error (named_error name msg)

let load ?n source =
  match source with
  | Source_program { name; program } -> Ok (name, resize n program)
  | Source_kernel name -> (
    match List.assoc_opt name Suite.Kernels.all with
    | Some mk -> Ok (name, mk (Option.value n ~default:64))
    | None ->
      Error
        (Printf.sprintf "%s: unknown kernel (try: %s)" name
           (String.concat ", " (List.map fst Suite.Kernels.all))))
  | Source_suite name -> (
    match Suite.Programs.find name with
    | Some e -> Ok (name, Suite.Programs.program_of ?n e)
    | None ->
      Error
        (Printf.sprintf "%s: unknown suite program (see Programs.all)" name))
  | Source_entry e -> Ok (e.Suite.Programs.name, Suite.Programs.program_of ?n e)
  | Source_text { name; text } ->
    Result.map (fun p -> (name, resize n p)) (parse_text ~name text)
  | Source_file path -> (
    match read_file path with
    | exception Sys_error msg -> Error (named_error path msg)
    | text -> Result.map (fun p -> (path, resize n p)) (parse_text ~name:path text))

(* ------------------------------------------------------------ run --- *)

let changed (s : Compound.nest_stat) =
  s.Compound.permuted || s.Compound.fused_enabling || s.Compound.distributed

(* The optimizer is deterministic in its program and knobs, so its
   output is cacheable like a trace: keyed on the canonical program
   text plus every knob, holding the transformed program and the
   statistics. (The store's format version retires entries if the
   marshalled shape of either ever changes.) *)
let analysis_key ~cls ~try_reversal ~interference_limit program =
  let bool_tag = function None -> "-" | Some b -> string_of_bool b in
  let int_tag = function None -> "-" | Some i -> string_of_int i in
  Store.key ~kind:"analysis"
    [
      string_of_int cls;
      bool_tag try_reversal;
      int_tag interference_limit;
      Pretty.program_to_string program;
    ]

let compound_cached ~store ~cls ~try_reversal ~interference_limit program =
  let compute () =
    Compound.run_program ?try_reversal ?interference_limit ~cls program
  in
  match store with
  | None -> compute ()
  | Some st -> (
    let k = analysis_key ~cls ~try_reversal ~interference_limit program in
    match (Store.get_value st k : (Program.t * Compound.stats) option) with
    | Some v -> v
    | None ->
      let v = compute () in
      Store.put_value st k v;
      v)

let run_loaded cfg name program =
  let transformed, compound, optimized_labels =
    match cfg.transform with
    | Keep -> (program, None, [])
    | Provided { transformed; optimized_labels } ->
      (transformed, None, optimized_labels)
    | Compound { try_reversal; interference_limit } ->
      let p', stats =
        Obs.span "optimize" (fun () ->
            compound_cached ~store:cfg.store ~cls:cfg.cls ~try_reversal
              ~interference_limit program)
      in
      let labels =
        List.concat_map
          (fun s -> if changed s then s.Compound.labels else [])
          stats.Compound.nests
      in
      (p', Some stats, labels)
  in
  let measured =
    if cfg.machines = [] then []
    else begin
      (* One prepared capture per program version, shared by every
         geometry — and deferred: with a warm store no interpretation
         happens at all. *)
      let prep p =
        Measure.prepare ?mode:cfg.replay ?rate:cfg.sample_rate
          ?params:cfg.params ~store:cfg.store p
      in
      let orig = prep program in
      let final =
        match cfg.transform with Keep -> orig | _ -> prep transformed
      in
      let labels = if cfg.use_labels then optimized_labels else [] in
      List.map
        (fun machine ->
          let replay p =
            Measure.replay_prepared ~config:machine ~timing:cfg.timing
              ~optimized_labels:labels p
          in
          let o = replay orig in
          let f = if final == orig then o else replay final in
          let speedup = o.Measure.cycles /. f.Measure.cycles in
          (* Milli-units: histograms take ints, and log2 buckets on raw
             ratios would collapse every speedup below 2x into one
             bucket. *)
          if Obs.enabled () then
            Obs.histogram "driver.speedup_milli"
              (int_of_float (speedup *. 1000.0));
          { machine; original_run = o; transformed_run = f; speedup })
        cfg.machines
    end
  in
  { name; original = program; transformed; compound; optimized_labels;
    measured }

(* --scale multiplies the effective size: an explicit -n scales from
   that base, otherwise from the conventional default of 64. Scale 1
   leaves an absent -n absent (kernels and suite entries keep their own
   defaults). *)
let effective_n cfg =
  if cfg.scale = 1 then cfg.n
  else Some (cfg.scale * Option.value cfg.n ~default:64)

let run cfg =
  match load ?n:(effective_n cfg) cfg.source with
  | Error msg -> Error msg
  | Ok (name, program) -> (
    try Ok (run_loaded cfg name program)
    with e -> Error (named_error name (Printexc.to_string e)))

let run_exn cfg = match run cfg with Ok r -> r | Error msg -> failwith msg
let run_many ?jobs cfgs = Locality_par.Pool.map ?jobs run cfgs
