(** The typed, wire-serializable request API of the Driver pipeline.

    A {!t} is a serializable mirror of {!Driver.config}: everything the
    pipeline used to take from environment variables — replay mode,
    sample rate, geometry scale, job count, store root — is an explicit
    typed field with a documented default. The JSON form (read by
    {!of_json} via {!Locality_telemetry.Jsonin}, written by {!to_json}
    via the shared [Stats.Json] emitter) is the body of the [memoria
    serve] line protocol and of [memoria sim --request FILE]; the
    schema is documented in [doc/SCHEMA.md] and [doc/PROTOCOL.md] and
    carries [schema_version].

    Reading is strict: an unknown field anywhere in the document is
    rejected with a [line:col]-prefixed diagnostic (like the language
    front end's parser errors), as are type mismatches and unsupported
    schema versions. Adding optional fields is a compatible change;
    consumers of {!to_json} must ignore unknown keys. *)

module Cache = Locality_cachesim.Cache
module Measure = Locality_interp.Measure
module Store = Locality_store.Store

type source =
  | Kernel of string  (** {!Driver.Source_kernel} *)
  | Suite of string  (** {!Driver.Source_suite} *)
  | File of string  (** {!Driver.Source_file} — resolved server-side *)
  | Text of { name : string; text : string }
      (** Inline mini-language source ({!Driver.Source_text}) — how a
          remote client ships a program it holds. *)

type transform =
  | Keep
  | Compound of { try_reversal : bool option; interference_limit : int option }
      (** The serializable subset of {!Driver.transform};
          [Driver.Provided] carries an in-memory program and has no
          wire form. *)

type machine =
  | Named of string
      (** A preset geometry: ["cache1"] (RS/6000) or ["cache2"] (i860),
          see {!named_machines}. *)
  | Custom of Cache.config  (** An explicit geometry. *)

type store_choice =
  | Ambient  (** whatever [MEMORIA_STORE] names — the default *)
  | No_store  (** disable caching for this request *)
  | Root of string  (** an explicit store root *)

type tune_spec = {
  t_top_k : int option;  (** finalists confirmed with the exact simulator *)
  t_tiles : int list option;  (** tile-size band; [None] = the default *)
  t_unrolls : int list option;  (** unroll-and-jam factors *)
  t_max_candidates : int option;  (** enumeration cap *)
}
(** Overrides for the tuning search space; every [None] falls back to
    [Stats.Tune.default_spec]. The presence of the [tune] field is what
    turns a request into a tuning query. *)

type t = {
  id : string;  (** client correlation token, echoed in the response *)
  source : source;
  n : int option;
  scale : int;
  cls : int;
  transform : transform;
  machines : machine list;  (** empty = analysis only *)
  params : (string * int) list;
  replay : Measure.replay_mode option;  (** [None] = ambient [MEMORIA_REPLAY] *)
  sample_rate : float option;
      (** SHARDS rate for the [sample] replay mode, carried into
          {!Driver.config}[.sample_rate] — per-request, never process
          state, so a server mixing concurrent requests with different
          explicit rates keeps them isolated. [None] = the ambient
          [MEMORIA_SAMPLE_RATE] / CLI default. *)
  use_labels : bool;
  store : store_choice;
  jobs : int option;
      (** Dispatch-width hint for batch callers ([memoria suite]); a
          single {!Driver.run} ignores it. *)
  timeout_ms : int option;
      (** Serve-side deadline; [Some 0] means already expired (the
          deterministic way to ask for a typed timeout response). *)
  emit_program : bool;  (** include the transformed program text in the
                            response *)
  tune : tune_spec option;
      (** [Some _] makes this a tuning request: the server searches the
          transformation space and answers with a [tune] response
          instead of a measurement. Part of the {!fingerprint}, so tune
          and non-tune queries over the same config never batch
          together. *)
}

val make :
  ?id:string ->
  ?n:int ->
  ?scale:int ->
  ?cls:int ->
  ?transform:transform ->
  ?machines:machine list ->
  ?params:(string * int) list ->
  ?replay:Measure.replay_mode ->
  ?sample_rate:float ->
  ?use_labels:bool ->
  ?store:store_choice ->
  ?jobs:int ->
  ?timeout_ms:int ->
  ?emit_program:bool ->
  ?tune:tune_spec ->
  source ->
  t
(** Defaults mirror {!Driver.config}'s: empty id, no size override,
    [scale = 1], [cls = 4], {!Compound} with neither knob set, no
    machines, no params, ambient replay and store, no rate, no labels,
    no jobs hint, no timeout, no program echo. *)

val named_machines : (string * Cache.config) list
(** The preset geometries reachable by name: [("cache1",
    Machine.cache1); ("cache2", Machine.cache2)]. *)

val machine_of_config : Cache.config -> machine
(** [Named] when the config structurally equals a preset, [Custom]
    otherwise — how flag-built configs round-trip into requests. *)

val to_json : t -> string
(** The canonical wire form: one line, no trailing newline, every field
    present (absent optionals as [null]), fields in schema order. Two
    equal requests always serialize to equal bytes. *)

val of_json : string -> (t, string) Stdlib.result
(** Parse and validate a request document. Errors are single-line
    diagnostics: malformed JSON as ["request: ..."], unknown fields and
    type mismatches as ["line:col: ..."] pointing at the offending
    key. *)

val fingerprint : t -> string
(** The request's compute identity: {!to_json} of the request with
    [id], [timeout_ms], [jobs] and [emit_program] neutralized — equal
    fingerprints get identical {!Driver.result}s, which is what the
    serve daemon batches on. *)

val to_config : t -> (Driver.config, string) Stdlib.result
(** Resolve to a runnable {!Driver.config}: look up named machines,
    validate custom geometries (positive sizes, power-of-two line,
    size divisible by [line * assoc]), open the store. Errors follow
    the ["request: <detail>"] format. *)
