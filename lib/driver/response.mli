(** The typed, wire-serializable response of the Driver pipeline — the
    other half of the {!Request} API and the body of every [memoria
    serve] reply line.

    Four statuses cover everything a service must be able to say:
    ["ok"] (a {!Driver.result}), ["error"] (the stable
    ["<name>:<detail>"] message {!Driver.run} guarantees), ["timeout"]
    (the request's deadline passed before a result was ready) and
    ["overloaded"] (the bounded queue was full; retry after the given
    hint). Serialization is deterministic — the same value always
    renders the same bytes, which is what lets the test suite and CI
    byte-diff server replies against direct {!Driver.run} calls. The
    schema is documented in [doc/SCHEMA.md] and [doc/PROTOCOL.md]. *)

type t =
  | Result of { id : string; emit_program : bool; result : Driver.result }
  | Tuned of { id : string; tune : string }
      (** A tuning reply: [tune] is the tuner's rendered JSON object
          (see [Stats.Tune.to_json]), embedded verbatim under the
          ["tune"] key — the response layer stays below the stats
          library, so the payload crosses as bytes, not as a type. *)
  | Failed of { id : string; message : string }
  | Timeout of { id : string; timeout_ms : int }
  | Overloaded of { id : string; retry_after_ms : int }

val of_run :
  id:string ->
  ?emit_program:bool ->
  (Driver.result, string) Stdlib.result ->
  t
(** [Result] or [Failed], echoing the request id. *)

val of_tune : id:string -> (string, string) Stdlib.result -> t
(** [Tuned] (trailing whitespace trimmed off the payload) or [Failed],
    echoing the request id. *)

val status : t -> string
(** ["ok"], ["error"], ["timeout"] or ["overloaded"] — the wire
    [status] field. *)

val to_json : t -> string
(** One line, no trailing newline, [schema_version]'d. *)
