(** The unified pipeline: load → (dependence-driven) compound transform
    → capture → replay, as one typed configuration.

    Every consumer of the pipeline — the [memoria] CLI subcommands, the
    benchmark harness and the table/figure generators in [Stats] — used
    to hand-roll this sequence; they are now thin wrappers over
    {!run}. A config names the program source, the transformation to
    apply, the cache geometries to measure on, the timing model, the
    trace/replay mode and the experiment store; the result carries both
    program versions, the optimizer's statistics, and one measurement
    per geometry.

    Measurement goes through {!Locality_interp.Measure.prepare}, so with
    a store attached a warm run skips capture and replay entirely, and
    each program version is interpreted at most once per run however
    many geometries are measured. *)

module Cache = Locality_cachesim.Cache
module Machine = Locality_cachesim.Machine
module Measure = Locality_interp.Measure
module Store = Locality_store.Store

type source =
  | Source_program of { name : string; program : Program.t }
      (** An already-built program. *)
  | Source_file of string  (** A mini-language source file. *)
  | Source_text of { name : string; text : string }
      (** Mini-language source already in memory — what a wire request
          carries ({!Request}); [name] labels diagnostics and results. *)
  | Source_kernel of string  (** A {!Locality_suite.Kernels} name. *)
  | Source_suite of string  (** A {!Locality_suite.Programs} name. *)
  | Source_entry of Locality_suite.Programs.entry
      (** A suite entry already in hand (Table 2's iteration). *)

type transform =
  | Keep  (** Measure the program as-is (transformed = original). *)
  | Compound of {
      try_reversal : bool option;
      interference_limit : int option;
    }  (** The paper's compound algorithm, via {!Locality_core.Compound}. *)
  | Provided of { transformed : Program.t; optimized_labels : string list }
      (** A transformed version computed elsewhere (ablations, Table 4
          re-measuring Table 2's output). *)

type config = {
  source : source;
  n : int option;
      (** Size override at load: kernels take it as their constructor
          argument (default 64), files and programs have every PARAMETER
          rewritten to it, suite entries pass it to
          {!Locality_suite.Programs.program_of}. *)
  scale : int;
      (** Geometry multiplier (the [--scale] flag): the effective size
          override becomes [scale * (n | 64)] when [> 1]. {!Layout}
          rejects scaled geometries whose byte layout would overflow the
          packed-record address space. *)
  cls : int;  (** Cache line size in elements for the cost model. *)
  transform : transform;
  machines : Cache.config list;
      (** Geometries to measure on; empty = analysis only (no capture,
          no replay). *)
  timing : Machine.timing;
  params : (string * int) list option;
      (** Capture-time parameter overrides, as {!Measure.capture}. *)
  replay : Measure.replay_mode option;  (** [None] = [MEMORIA_REPLAY]. *)
  sample_rate : float option;
      (** SHARDS rate for the [Sampled] replay mode, threaded into
          {!Measure.prepare} — explicitly per-config, never process
          state, so concurrent runs with different rates (the serve
          daemon's workers) cannot interfere. [None] = the ambient
          {!Locality_sample.Sample.current_rate}[ ()]. *)
  use_labels : bool;
      (** Thread the optimized-region statement labels into replay so
          runs carry per-region statistics (Table 4). *)
  store : Store.t option;  (** Experiment store; default the ambient one. *)
}

val config :
  ?n:int ->
  ?scale:int ->
  ?cls:int ->
  ?transform:transform ->
  ?machines:Cache.config list ->
  ?timing:Machine.timing ->
  ?params:(string * int) list ->
  ?replay:Measure.replay_mode ->
  ?sample_rate:float ->
  ?use_labels:bool ->
  ?store:Store.t option ->
  source ->
  config
(** Defaults: no size override, [scale = 1], [cls = 4], {!Compound}
    with neither knob set, no machines, {!Machine.default_timing}, no
    parameter overrides, ambient replay mode and sampling rate,
    [use_labels = false], ambient store. @raise Invalid_argument when
    [scale < 1] or [sample_rate] is outside (0, 1]. *)

type measured = {
  machine : Cache.config;
  original_run : Measure.run;
  transformed_run : Measure.run;
      (** Physically equal to [original_run] under {!Keep}. *)
  speedup : float;  (** original cycles / transformed cycles. *)
}

type result = {
  name : string;
  original : Program.t;
  transformed : Program.t;
  compound : Locality_core.Compound.stats option;
      (** Present iff the transform was {!Compound}. *)
  optimized_labels : string list;
      (** Statement labels of nests the optimizer changed ({!Compound}),
          or the provided labels ({!Provided}); [[]] under {!Keep}. *)
  measured : measured list;  (** One per machine, in [machines] order. *)
}

val load : ?n:int -> source -> (string * Program.t, string) Stdlib.result
(** Resolve a source to a named program. Errors (unknown kernel or
    suite name, unreadable or unparsable file) follow the same
    ["<name>:<detail>"] contract as {!run}. *)

val run : config -> (result, string) Stdlib.result
(** The whole pipeline. Every error — load failures and exceptions
    escaping any later stage alike — reads ["<name>:<detail>"], with
    the source name appearing exactly once (parse diagnostics extend
    the prefix to ["<name>:line:col:"]). Batch callers ([memoria
    suite], the serve daemon) print or forward the message verbatim,
    never re-prefixing, so the wire error envelope is stable. *)

val run_exn : config -> result
(** {!run}, raising [Failure] on error — for generators whose inputs
    are known-good (the table builders). *)

val run_many : ?jobs:int -> config list -> (result, string) Stdlib.result list
(** {!run} over the domain pool ({!Locality_par.Pool.map}): results in
    input order, independent of pool size. *)
