(** Side-by-side validation of the closed-form analytic locality model
    against the trace-replay simulator: per top-level unit (loop nest
    or straight-line statement) and for the whole program, both miss
    rates plus the absolute error between them — the report behind
    [memoria explain --compare]. *)

module Cache = Locality_cachesim.Cache

type row = {
  r_unit : string;  (** loop index of the nest, or the statement label *)
  r_class : string;  (** "exact" | "approx" *)
  r_formula : string;  (** which analytic closed form fired *)
  r_sim_accesses : int;
  r_sim_misses : int;
  r_ana_accesses : int;
  r_ana_misses : int;
  r_sim_rate : float;  (** simulated miss rate, percent of accesses *)
  r_ana_rate : float;  (** analytic miss rate, percent of accesses *)
  r_abs_err : float;  (** |r_ana_rate - r_sim_rate| *)
}

type t = {
  c_name : string;
  c_config : Cache.config;
  c_exact : bool;  (** analytic claimed whole-program exactness *)
  c_verdict : [ `Compared of row list * row | `Fallback of string ];
      (** per-unit rows plus the whole-program row, or the analytic
          fallback reason (the simulator row set is skipped then) *)
  c_tuned : (string * float) option;
      (** with [~tune:true]: the quick-profile {!Tune} winner — its
          candidate encoding and simulated miss rate (percent) on the
          same geometry *)
}

val run :
  ?params:(string * int) list -> ?config:Cache.config -> ?tune:bool ->
  name:string -> Program.t -> t
(** Analyze and simulate the program under one geometry (default
    {!Locality_cachesim.Machine.cache1}). The simulator side replays
    one capture once per unit, with that unit's statement labels as the
    optimized region, so per-unit numbers come from the same replay
    machinery as every table. *)

val render : t -> string

val to_json : t -> string
(** Versioned document; see [doc/SCHEMA.md]. *)
