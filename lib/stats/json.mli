(** The one JSON emitter every machine-readable surface shares —
    [memoria explain --json], the Chrome trace exporter, and any future
    reporter. Re-exports {!Locality_obs.Json}; see [doc/SCHEMA.md] for
    the documents built with it and the versioning policy. Top-level
    documents carry [schema_version] (via {!versioned}) so consumers can
    detect incompatible changes. *)

include module type of Locality_obs.Json
