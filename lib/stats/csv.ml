module S = Locality_suite

(* The experiment tables all format floats to a fixed precision: four
   places for ratios and hit rates, six for simulated seconds. *)
let float4 x = Printf.sprintf "%.4f" x
let float6 x = Printf.sprintf "%.6f" x

let escape field =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') field then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' field) ^ "\""
  else field

let of_rows header rows =
  let line cells = String.concat "," (List.map escape cells) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let table2 rows =
  of_rows
    [
      "program"; "group"; "lines"; "loops"; "nests"; "orig"; "perm"; "fail";
      "inner_orig"; "inner_perm"; "inner_fail"; "fusion_candidates";
      "fusions"; "dist"; "dist_results"; "ratio_final"; "ratio_ideal";
    ]
    (List.map
       (fun (r : Table2.row) ->
         [
           r.Table2.entry.S.Programs.name;
           r.Table2.entry.S.Programs.group;
           string_of_int r.Table2.entry.S.Programs.lines;
           string_of_int r.Table2.loops;
           string_of_int r.Table2.nests;
           string_of_int r.Table2.orig;
           string_of_int r.Table2.perm;
           string_of_int r.Table2.fail;
           string_of_int r.Table2.inner_orig;
           string_of_int r.Table2.inner_perm;
           string_of_int r.Table2.inner_fail;
           string_of_int r.Table2.fusion_candidates;
           string_of_int r.Table2.fusions;
           string_of_int r.Table2.dist;
           string_of_int r.Table2.dist_results;
           float4 r.Table2.ratio_final;
           float4 r.Table2.ratio_ideal;
         ])
       rows)

let table3 rows =
  of_rows
    [ "program"; "seconds_orig"; "seconds_final"; "speedup_cache1"; "speedup_cache2" ]
    (List.map
       (fun (r : Perf.perf_row) ->
         [
           r.Perf.name;
           float6 r.Perf.seconds_orig;
           float6 r.Perf.seconds_final;
           float4 r.Perf.speedup;
           float4 r.Perf.speedup2;
         ])
       rows)

let table4 rows =
  of_rows
    [
      "program"; "opt1_orig"; "opt1_final"; "opt2_orig"; "opt2_final";
      "whole1_orig"; "whole1_final"; "whole2_orig"; "whole2_final";
    ]
    (List.map
       (fun (r : Perf.hit_row) ->
         [
           r.Perf.name;
           float4 r.Perf.opt1_orig;
           float4 r.Perf.opt1_final;
           float4 r.Perf.opt2_orig;
           float4 r.Perf.opt2_final;
           float4 r.Perf.whole1_orig;
           float4 r.Perf.whole1_final;
           float4 r.Perf.whole2_orig;
           float4 r.Perf.whole2_final;
         ])
       rows)

let write ~dir name contents =
  let path = Filename.concat dir name in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let write_all ~dir rows =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  write ~dir "table2.csv" (table2 rows);
  write ~dir "table3.csv" (table3 (Perf.table3_rows ()));
  write ~dir "table4.csv" (table4 (Perf.table4_rows rows))
