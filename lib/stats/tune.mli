(** [memoria tune]: store-memoized search over the typed transformation
    space — structure (as-is / fused / distributed) × loop permutation ×
    tile size × unroll-and-jam factor.

    The search is enumerate → screen → confirm → memoize:

    + {e enumerate} the candidate space for the program's deepest
      top-level nest, in a fixed order (identity permutation first, the
      rest lexicographic in spine order; tile and unroll options in spec
      order), so the candidate list is identical on every run;
    + {e screen} every candidate: illegal ones (a transform stage
      rejects, or the result fails {!Program.validate}) are pruned,
      legal ones are costed with the [Analytic] replay mode — O(nest
      size) with transparent simulator fallback — fanned out over
      {!Locality_par.Pool} (input-order results, so any [MEMORIA_JOBS]
      gives the same answer);
    + {e confirm} the top-K analytic finalists with the exact simulator
      ([Runs] mode); the winner is the lowest simulated miss rate, ties
      broken lexicographically on the candidate encoding;
    + {e memoize}: every screened and confirmed rate is stored under the
      content-addressed ["tune"] kind, keyed by the {e transformed}
      program text plus geometry, timing and parameters — so re-tuning
      is warm, and candidates shared between kernels (the six matmul
      orders permute into each other) hit across kernels.

    Obs surface: [tune.generated], [tune.pruned_illegal],
    [tune.screened], [tune.simulated], [tune.truncated],
    [tune.store_hit], [tune.store_miss] counters; [tune.enumerate] /
    [tune.screen] / [tune.confirm] spans; [tune.screen.miss_bp] and
    [tune.confirm.miss_bp] histograms (miss rate in basis points);
    a [tune.store_hit_rate] gauge. *)

module D = Locality_driver.Driver
module Cache = Locality_cachesim.Cache
module Machine = Locality_cachesim.Machine
module Store = Locality_store.Store

type spec = {
  tiles : int list;  (** tile-size band, e.g. [[8;16;32;64]] *)
  unrolls : int list;  (** unroll-and-jam factors, e.g. [[2;4;8]] *)
  top_k : int;  (** finalists confirmed with the exact simulator *)
  max_candidates : int;
      (** enumeration cap; candidates beyond it are dropped and counted
          ([t_truncated], [tune.truncated]) — never silently *)
}

val default_spec : spec
(** [{tiles = [8;16;32;64]; unrolls = [2;4;8]; top_k = 5;
     max_candidates = 4096}] — the issue's full band. *)

val quick_spec : spec
(** A cheap profile for table columns and smoke tests:
    [{tiles = [16]; unrolls = [4]; top_k = 1; max_candidates = 96}]. *)

val spec_of_request : Locality_driver.Request.tune_spec -> spec
(** Resolve a wire-level tune spec: every [None] field falls back to
    {!default_spec} — how the serve daemon and [memoria sim --request]
    turn a request's [tune] object into a search space. *)

type structure = Asis | Fused | Distributed

type candidate = {
  structure : structure;
  perm : string list option;  (** target spine order, [None] = keep *)
  tile : int option;
  unroll : (string * int) option;  (** loop name × factor *)
}

val encode : candidate -> string
(** Canonical encoding, e.g. ["S=asis;P=J,K,I;T=16;U=K*4"] — the store
    key component and the deterministic tie-break. *)

val apply :
  ?cls:int ->
  Program.t ->
  nest_idx:int ->
  candidate ->
  (Program.t * string list) option
(** Apply a candidate to the top-level nest at [nest_idx]: structure
    first, then permutation (legality-checked), tiling (over
    {!Locality_core.Tiling.recommend}'s band), then unroll-and-jam with
    program-wide label freshening. [None] when any stage rejects or the
    result fails validation — a malformed candidate is pruned, never
    propagated. Exposed for tests and the fuzz harness. *)

type status = Illegal | Screened | Confirmed

type row = {
  enc : string;
  status : status;
  analytic_miss : float option;  (** [None] iff illegal *)
  simulated_miss : float option;  (** [Some] iff confirmed *)
}

type result = {
  t_name : string;
  t_machine : Cache.config;
  t_n : int option;
  t_generated : int;
  t_pruned : int;
  t_screened : int;
  t_confirmed : int;
  t_truncated : int;
  t_store_hits : int;  (** warm ["tune"]-kind lookups this pass *)
  t_store_misses : int;
  t_baseline_miss : float;  (** original program, exact simulator, % *)
  t_memorder_miss : float;
      (** the compound (memory-order) transform's result — the paper's
          single-pass answer the winner is judged against *)
  t_rows : row list;  (** every candidate, enumeration order *)
  t_winner : row option;  (** best confirmed; [None] if none legal *)
  t_winner_program : Program.t;  (** the original when no winner *)
  t_winner_labels : string list;
}

val run :
  ?spec:spec ->
  ?n:int ->
  ?cls:int ->
  ?machine:Cache.config ->
  ?timing:Machine.timing ->
  ?params:(string * int) list ->
  ?jobs:int ->
  ?store:Store.t option ->
  name:string ->
  Program.t ->
  (result, string) Stdlib.result
(** Tune one program. Deterministic at any [jobs]: fixed enumeration
    order, pool results in input order, lexicographic tie-breaks.
    Errors follow the driver's ["<name>: <detail>"] contract; no input
    raises. [machine] defaults to cache1, [store] to the ambient
    [MEMORIA_STORE]. *)

val run_config : ?spec:spec -> ?jobs:int -> D.config -> (result, string) Stdlib.result
(** {!run} driven by a driver config (the serve daemon and
    [memoria tune]'s request path): source loaded via {!D.load}, scored
    on the config's first machine (cache1 when none), with its cls,
    timing, params and store. *)

val render : result -> string
(** Human-readable report: counts, store warmth, baseline vs memory
    order vs winner, and the confirmed top-K table. *)

val to_json : result -> string
(** Versioned JSON document (see [doc/SCHEMA.md]), newline-terminated. *)
