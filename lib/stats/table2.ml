module C = Locality_core
module S = Locality_suite
module D = Locality_driver.Driver

type row = {
  entry : S.Programs.entry;
  loops : int;
  nests : int;
  orig : int;
  perm : int;
  fail : int;
  inner_orig : int;
  inner_perm : int;
  inner_fail : int;
  fusion_candidates : int;
  fusions : int;
  dist : int;
  dist_results : int;
  ratio_final : float;
  ratio_ideal : float;
  tuned : float option;
  original : Program.t;
  transformed : Program.t;
  optimized_labels : string list;
}

let count_loops (p : Program.t) =
  let rec go_block b =
    List.fold_left
      (fun acc node ->
        match node with
        | Loop.Stmt _ -> acc
        | Loop.Loop l -> acc + 1 + go_block l.Loop.body)
      0 b
  in
  go_block p.Program.body

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let ratio_avg eval_n pairs =
  let ratios =
    List.filter_map
      (fun (a, b) ->
        let fa = Poly.eval a (fun _ -> eval_n) in
        let fb = Poly.eval b (fun _ -> eval_n) in
        if fb > 0.0 then Some (fa /. fb) else None)
      pairs
  in
  match ratios with
  | [] -> 1.0
  | _ -> List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)

let compute_row ?(n = 24) ?(cls = 4) ?(tune = false) entry =
  let r = D.run_exn (D.config ~n ~cls (D.Source_entry entry)) in
  let original = r.D.original in
  (* The tuned column is opt-in (it simulates finalists); quick profile
     on cache1, like the hit-rate tables. A search that errors out (no
     nest to tune) reads as "-", not as a failed row. *)
  let tuned =
    if not tune then None
    else
      match
        Tune.run ~spec:Tune.quick_spec ~n ~cls
          ~machine:Locality_cachesim.Machine.cache1
          ~name:entry.S.Programs.name original
      with
      | Error _ -> None
      | Ok t ->
        Option.bind t.Tune.t_winner (fun (w : Tune.row) ->
            w.Tune.simulated_miss)
  in
  let stats = Option.get r.D.compound in
  let nests = stats.C.Compound.nests in
  let count f = List.length (List.filter f nests) in
  let eval_n = float_of_int n in
  {
    entry;
    loops = count_loops original;
    nests = List.length nests;
    orig = count (fun s -> s.C.Compound.orig_mem_order);
    perm =
      count (fun s ->
          (not s.C.Compound.orig_mem_order) && s.C.Compound.final_mem_order);
    fail = count (fun s -> not s.C.Compound.final_mem_order);
    inner_orig = count (fun s -> s.C.Compound.orig_inner_ok);
    inner_perm =
      count (fun s ->
          (not s.C.Compound.orig_inner_ok) && s.C.Compound.final_inner_ok);
    inner_fail = count (fun s -> not s.C.Compound.final_inner_ok);
    fusion_candidates = stats.C.Compound.fusion_candidates;
    fusions = stats.C.Compound.fusions_applied;
    dist = stats.C.Compound.distributions;
    dist_results = stats.C.Compound.distribution_results;
    ratio_final =
      ratio_avg eval_n
        (List.map
           (fun s -> (s.C.Compound.cost_orig, s.C.Compound.cost_final))
           nests);
    ratio_ideal =
      ratio_avg eval_n
        (List.map
           (fun s -> (s.C.Compound.cost_orig, s.C.Compound.cost_ideal))
           nests);
    tuned;
    original;
    transformed = r.D.transformed;
    optimized_labels = r.D.optimized_labels;
  }

(* Rows are independent per program, so they are computed on the domain
   pool; results come back in suite order regardless of pool size. *)
let compute ?jobs ?n ?cls ?tune () =
  Locality_par.Pool.map ?jobs (compute_row ?n ?cls ?tune) S.Programs.all

let render rows =
  let header =
    [
      "Program"; "Lines"; "Loops"; "Nests"; "Orig%"; "Perm%"; "Fail%";
      "iOrig%"; "iPerm%"; "iFail%"; "FusC"; "FusA"; "DistD"; "DistR";
      "Final"; "Ideal"; "Tuned%";
    ]
  in
  let body =
    List.map
      (fun r ->
        [
          r.entry.S.Programs.name;
          string_of_int r.entry.S.Programs.lines;
          string_of_int r.loops;
          string_of_int r.nests;
          Printf.sprintf "%.0f" (pct r.orig r.nests);
          Printf.sprintf "%.0f" (pct r.perm r.nests);
          Printf.sprintf "%.0f" (pct r.fail r.nests);
          Printf.sprintf "%.0f" (pct r.inner_orig r.nests);
          Printf.sprintf "%.0f" (pct r.inner_perm r.nests);
          Printf.sprintf "%.0f" (pct r.inner_fail r.nests);
          string_of_int r.fusion_candidates;
          string_of_int r.fusions;
          string_of_int r.dist;
          string_of_int r.dist_results;
          Printf.sprintf "%.2f" r.ratio_final;
          Printf.sprintf "%.2f" r.ratio_ideal;
          (match r.tuned with
          | Some m -> Printf.sprintf "%.2f" m
          | None -> "-");
        ])
      rows
  in
  let subtotal label rows =
    let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
    let tn = sum (fun r -> r.nests) in
    [
      label; ""; string_of_int (sum (fun r -> r.loops));
      string_of_int tn;
      Printf.sprintf "%.0f" (pct (sum (fun r -> r.orig)) tn);
      Printf.sprintf "%.0f" (pct (sum (fun r -> r.perm)) tn);
      Printf.sprintf "%.0f" (pct (sum (fun r -> r.fail)) tn);
      Printf.sprintf "%.0f" (pct (sum (fun r -> r.inner_orig)) tn);
      Printf.sprintf "%.0f" (pct (sum (fun r -> r.inner_perm)) tn);
      Printf.sprintf "%.0f" (pct (sum (fun r -> r.inner_fail)) tn);
      string_of_int (sum (fun r -> r.fusion_candidates));
      string_of_int (sum (fun r -> r.fusions));
      string_of_int (sum (fun r -> r.dist));
      string_of_int (sum (fun r -> r.dist_results));
      ""; ""; "";
    ]
  in
  let groups =
    let seen = Hashtbl.create 8 in
    List.filter_map
      (fun r ->
        let g = r.entry.S.Programs.group in
        if Hashtbl.mem seen g then None
        else begin
          Hashtbl.replace seen g ();
          Some g
        end)
      rows
  in
  let group_rows =
    List.map
      (fun g ->
        subtotal (g ^ " subtotal")
          (List.filter (fun r -> r.entry.S.Programs.group = g) rows))
      groups
  in
  Report.render
    ~title:"Table 2: Memory Order Statistics"
    ~note:
      "Synthetic reconstructions of the paper's 35 programs (Lines = paper's \
       size). Orig/Perm/Fail = % of nests in / permuted into / failing \
       memory order; iXxx = same for the innermost loop; Final/Ideal = \
       average LoopCost(original)/LoopCost(version); Tuned% = simulated \
       miss rate of the quick transformation-search winner on cache1 \
       (with ~tune, else -)."
    [ Report.Left ]
    header
    (body @ group_rows @ [ subtotal "totals" rows ])
