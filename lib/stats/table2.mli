(** Table 2 — memory order statistics for the whole suite. *)

type row = {
  entry : Locality_suite.Programs.entry;
  loops : int;  (** DO statements in the generated program *)
  nests : int;  (** nests of depth >= 2 considered *)
  orig : int;  (** nests originally in memory order *)
  perm : int;  (** nests permuted into memory order *)
  fail : int;
  inner_orig : int;  (** nests whose inner loop was already best *)
  inner_perm : int;
  inner_fail : int;
  fusion_candidates : int;
  fusions : int;
  dist : int;
  dist_results : int;
  ratio_final : float;  (** avg original/final LoopCost, at default N *)
  ratio_ideal : float;
  tuned : float option;
      (** with [~tune:true]: the quick-profile {!Tune} winner's simulated
          miss rate (percent) on cache1 — the "tuned" column beside the
          memory-order results *)
  original : Program.t;
  transformed : Program.t;
  optimized_labels : string list;
      (** statements in nests the compiler actually changed *)
}

val count_loops : Program.t -> int

val compute_row :
  ?n:int -> ?cls:int -> ?tune:bool -> Locality_suite.Programs.entry -> row
val compute :
  ?jobs:int -> ?n:int -> ?cls:int -> ?tune:bool -> unit -> row list
(** All 35 programs. Rows are computed in parallel on the domain pool
    ([jobs] defaults to {!Locality_par.Pool.default_jobs}); the result
    list is in suite order and identical for every pool size. *)

val render : row list -> string

val pct : int -> int -> float
(** [pct part whole] in percent; 0 when whole is 0. *)
