(** The two experiments behind the streaming/sampling PR's claims.

    {!render_scale} (the [scale] bench experiment) runs a pair of 2-D
    kernels at [--scale]-multiplied geometry through the three
    trace-driven replay modes — [Runs], [Stream], [Sampled] — on both
    reference caches and prints their whole-program miss rates side by
    side, a [stream-mismatches=N] line counting any structural
    difference between the [Runs] and [Stream] run records (the
    streaming mode's bit-identity contract; CI greps for [=0]), and the
    worst sampled-estimate error.

    {!render_err} (the [sampleerr] bench experiment) sweeps the Table 4
    workload (every suite program with nests, both versions, N=32) on
    both caches, comparing the SHARDS sampled miss-rate estimate at
    {!Locality_sample.Sample.current_rate} against exact simulation.
    It ends with two verdict lines against the 1-percentage-point
    bound: [err-bound-ok] (max cell error — CI enforces it at
    [--rate 1.0], the adaptive-budget mode where error comes only from
    SHARDS-adj adaptation on footprints past [max_tracked]) and
    [mean-err-ok] (mean cell error — CI enforces it at a genuine
    sampling rate, where a program whose footprint concentrates in a
    few cache sets can blow any per-cell bound). *)

val factor : int ref
(** Geometry multiplier used by {!render_scale} (the bench harness sets
    it from [--scale N]); default 4, i.e. effective n = 128. *)

val render_scale : unit -> string
val render_err : Table2.row list -> string
