(** Tables 1 and 3 — modelled performance of original versus transformed
    programs, and Table 4 — simulated cache hit rates. *)

module Measure = Locality_interp.Measure

type perf_row = {
  name : string;
  seconds_orig : float;
  seconds_final : float;
  speedup : float;  (** cache1 *)
  speedup2 : float;  (** cache2 *)
}

val two_machine_rows : where:string -> program:string -> 'a list -> 'a * 'a
(** The driver returns one measured row per requested machine, and the
    perf tables always request exactly (cache1, cache2). Raises
    [Invalid_argument] naming [where] and the offending [program] when
    the row count differs. *)

val table1 : ?n:int -> unit -> string
(** Erlebacher: hand-coded vs distributed vs fused (Section 4.3.4). *)

val table3_rows : ?n:int -> ?cls:int -> ?jobs:int -> unit -> perf_row list
val table3 : ?n:int -> ?cls:int -> ?jobs:int -> unit -> string
(** Original vs compound-transformed modelled times for the kernels the
    paper reports in Table 3, on the cache1 machine model. Each program
    version is interpreted once and its trace replayed per cache config;
    rows are simulated in parallel on the domain pool. *)

type hit_row = {
  name : string;
  opt1_orig : float;
  opt1_final : float;
  opt2_orig : float;
  opt2_final : float;
  whole1_orig : float;
  whole1_final : float;
  whole2_orig : float;
  whole2_final : float;
  whole1_tuned : float option;
      (** with [~tune:true]: the quick-profile {!Tune} winner's
          whole-program hit rate on cache1 — the "tuned" column beside
          the memory-order (Final) results *)
}

val table4_rows :
  ?n:int -> ?cls:int -> ?jobs:int -> ?tune:bool -> Table2.row list ->
  hit_row list

val table4 :
  ?n:int -> ?cls:int -> ?jobs:int -> ?tune:bool -> Table2.row list -> string
(** Simulated hit rates (cold misses excluded) for optimized procedures
    and whole programs, on cache1 (RS/6000) and cache2 (i860). Each
    program version is interpreted once and its trace replayed on both
    geometries; rows run in parallel on the domain pool. *)
