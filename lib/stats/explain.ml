module Obs = Locality_obs.Obs
module Event = Locality_obs.Event
module Compound = Locality_core.Compound

type entry = {
  decision : Event.decision;
  notes : Event.t list;
}

type t = {
  name : string;
  entries : entry list;
  stats : Compound.stats;
  transformed : Program.t;
  block_notes : Event.t list;
  events : Event.t list;
}

let entries t = t.entries
let stats t = t.stats
let transformed t = t.transformed
let events t = t.events

let is_instant (e : Event.t) =
  match e.Event.payload with Event.Instant _ -> true | _ -> false

let run ?cls ?try_reversal ?interference_limit ~name program =
  let (transformed, stats), events =
    Obs.collect (fun () ->
        Compound.run_program ?cls ?try_reversal ?interference_limit program)
  in
  let decisions =
    List.filter_map
      (fun (e : Event.t) ->
        match e.Event.payload with
        | Event.Decision d -> Some d
        | _ -> None)
      events
  in
  let entries =
    List.map
      (fun (d : Event.decision) ->
        let notes =
          List.filter
            (fun (e : Event.t) ->
              is_instant e && String.equal e.Event.ctx d.Event.nest)
            events
        in
        { decision = d; notes })
      decisions
  in
  let claimed = Hashtbl.create 16 in
  List.iter
    (fun (d : Event.decision) -> Hashtbl.replace claimed d.Event.nest ())
    decisions;
  let block_notes =
    List.filter
      (fun (e : Event.t) ->
        is_instant e && not (Hashtbl.mem claimed e.Event.ctx))
      events
  in
  { name; entries; stats; transformed; block_notes; events }

(* ----------------------------------------------------- narrative --- *)

let order_str = String.concat ","

let note_line (e : Event.t) =
  match e.Event.payload with
  | Event.Instant { name; args } ->
    let kv = List.map (fun (k, v) -> k ^ "=" ^ v) args in
    Printf.sprintf "    - %s %s" name (String.concat " " kv)
  | _ -> ""

let entry_lines { decision = d; notes } =
  let b = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  addf "%s (depth %d, statements %s)" d.Event.nest d.Event.depth
    (String.concat "," d.Event.labels);
  addf "  action: %s" (Event.action_to_string d.Event.action);
  addf "  reason: %s" d.Event.reason;
  let achieved =
    String.concat " ; " (List.map order_str d.Event.achieved_orders)
  in
  addf "  loop order: %s -> %s  (memory order %s)"
    (order_str d.Event.original_order)
    achieved
    (order_str d.Event.memory_order);
  addf "  LoopCost, most to least expensive innermost candidate:";
  List.iter (fun (x, c) -> addf "    %s: %s" x c) d.Event.costs;
  (match notes with
  | [] -> ()
  | _ :: _ ->
    addf "  notes:";
    List.iter (fun e -> addf "%s" (note_line e)) notes);
  Buffer.contents b

let render t =
  let s = t.stats in
  let b = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (fun x -> Buffer.add_string b (x ^ "\n")) fmt in
  addf "memoria explain: %s" t.name;
  addf
    "%d nest(s) of depth >= 2; %d fusion candidate(s), %d fusion(s) applied, \
     %d distribution(s) producing %d nest(s)"
    (List.length s.Compound.nests)
    s.Compound.fusion_candidates s.Compound.fusions_applied
    s.Compound.distributions s.Compound.distribution_results;
  Buffer.add_string b "\n";
  List.iter
    (fun e ->
      Buffer.add_string b (entry_lines e);
      Buffer.add_string b "\n")
    t.entries;
  (match t.block_notes with
  | [] -> ()
  | _ :: _ ->
    addf "block-level notes (cross-nest fusion and other passes):";
    List.iter (fun e -> addf "%s" (note_line e)) t.block_notes);
  Buffer.contents b

(* ---------------------------------------------------------- JSON --- *)

(* The document shape is written down in doc/SCHEMA.md; bump
   [Json.schema_version] only on incompatible changes. *)

let note_json (e : Event.t) =
  match e.Event.payload with
  | Event.Instant { name; args } ->
    Some
      (Json.obj
         [
           ("name", Json.str name);
           ("args", Json.obj (List.map (fun (k, v) -> (k, Json.str v)) args));
         ])
  | _ -> None

let entry_json { decision = d; notes } =
  Json.obj
    [
      ("nest", Json.str d.Event.nest);
      ("labels", Json.strings d.Event.labels);
      ("depth", Json.int d.Event.depth);
      ("action", Json.str (Event.action_to_string d.Event.action));
      ("reason", Json.str d.Event.reason);
      ("original_order", Json.strings d.Event.original_order);
      ("achieved_orders", Json.list (List.map Json.strings d.Event.achieved_orders));
      ("memory_order", Json.strings d.Event.memory_order);
      ("loop_costs", Json.obj (List.map (fun (x, c) -> (x, Json.str c)) d.Event.costs));
      ("notes", Json.list (List.filter_map note_json notes));
    ]

let to_json t =
  let s = t.stats in
  Json.versioned
    [
      ("program", Json.str t.name);
      ("nests", Json.int (List.length s.Compound.nests));
      ("fusion_candidates", Json.int s.Compound.fusion_candidates);
      ("fusions_applied", Json.int s.Compound.fusions_applied);
      ("distributions", Json.int s.Compound.distributions);
      ("distribution_results", Json.int s.Compound.distribution_results);
      ("decisions", Json.list (List.map entry_json t.entries));
      ("block_notes", Json.list (List.filter_map note_json t.block_notes));
    ]
  ^ "\n"
