(* Scaled-geometry replay-mode comparison and the sampled-profile error
   sweep — see scale.mli. *)

module D = Locality_driver.Driver
module Request = Locality_driver.Request
module Measure = Locality_interp.Measure
module Machine = Locality_cachesim.Machine
module Cache = Locality_cachesim.Cache
module Sample = Locality_sample.Sample
module S = Locality_suite

let factor = ref 4

(* 2-D kernels whose footprint grows quadratically with --scale: big
   enough to make the exact modes work for their answer, regular enough
   that the sampled estimate is meaningful. *)
let kernels = [ "matmul"; "jacobi2d" ]
let caches = [ Machine.cache1; Machine.cache2 ]

let miss_rate (r : Measure.region) =
  if r.Measure.accesses = 0 then 0.0
  else
    100.0
    *. float_of_int (r.Measure.accesses - r.Measure.hits)
    /. float_of_int r.Measure.accesses

let cache_short (c : Cache.config) =
  match String.index_opt c.Cache.name ' ' with
  | Some i -> String.sub c.Cache.name 0 i
  | None -> c.Cache.name

let render_scale () =
  let buf = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let f = !factor in
  line
    "Replay modes on scaled geometries (n=32, scale=%d -> effective n=%d, \
     rate=%g)"
    f (32 * f) (Sample.current_rate ());
  line "%-10s %-8s %-12s %9s %9s %9s %10s" "kernel" "cache" "version"
    "runs%" "stream%" "sample%" "sample-err";
  let mismatches = ref 0 in
  let row_errors = ref 0 in
  let max_err = ref 0.0 in
  List.iter
    (fun kernel ->
      let run mode =
        (* Through the typed request API, like every other batch caller:
           the presets round-trip to Named machines, so the request is
           exactly what a serve client would send for this row. A failed
           row must not abort the whole sweep — it is reported in place
           and the remaining kernels still run. *)
        let req =
          Request.make ~n:32 ~scale:f ~replay:mode
            ~machines:(List.map Request.machine_of_config caches)
            (Request.Kernel kernel)
        in
        match Request.to_config req with
        | Ok cfg -> D.run cfg
        | Error msg -> Error msg
      in
      match (run Measure.Runs, run Measure.Stream, run Measure.Sampled) with
      | (Error msg, _, _) | (_, Error msg, _) | (_, _, Error msg) ->
        incr row_errors;
        line "%-10s %-8s %-12s error: %s" kernel "-" "-" msg
      | Ok exact, Ok streamed, Ok sampled ->
      List.iteri
        (fun i cache ->
          let pick (r : D.result) = List.nth r.D.measured i in
          let me = pick exact and ms = pick streamed and mp = pick sampled in
          (* The stream tentpole's contract is structural equality of the
             whole run record, not just the headline rate. *)
          if
            me.D.original_run <> ms.D.original_run
            || me.D.transformed_run <> ms.D.transformed_run
          then incr mismatches;
          List.iter
            (fun (version, sel) ->
              let re = sel me and rs = sel ms and rp = sel mp in
              let err =
                Float.abs
                  (miss_rate rp.Measure.whole -. miss_rate re.Measure.whole)
              in
              if err > !max_err then max_err := err;
              line "%-10s %-8s %-12s %9.2f %9.2f %9.2f %9.2fpt" kernel
                (cache_short cache) version
                (miss_rate re.Measure.whole)
                (miss_rate rs.Measure.whole)
                (miss_rate rp.Measure.whole)
                err)
            [
              ("original", fun (m : D.measured) -> m.D.original_run);
              ("transformed", fun (m : D.measured) -> m.D.transformed_run);
            ])
        caches)
    kernels;
  line "stream-mismatches=%d" !mismatches;
  line "row-errors=%d" !row_errors;
  line "sample max-err=%.2fpt" !max_err;
  Buffer.contents buf

let render_err (rows : Table2.row list) =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  let params = [ ("N", 32) ] in
  let rate = Sample.current_rate () in
  line
    "Sampled vs exact miss rates (Table 4 workload, N=32, both versions, \
     cache1+cache2, rate=%g)"
    rate;
  line "%-10s %-8s %8s %8s %6s   %8s %8s %6s" "program" "cache" "exact%"
    "sample%" "err" "exact%" "sample%" "err";
  line "%-10s %-8s %-26s  %-26s" "" "" "(original)" "(transformed)";
  let max_err = ref 0.0 in
  let sum_err = ref 0.0 in
  let n_err = ref 0 in
  List.iter
    (fun (r : Table2.row) ->
      if r.Table2.nests > 0 then
        let exact p =
          Measure.prepare ~mode:Measure.Runs ~params p
        in
        let sampled p =
          Measure.prepare ~mode:Measure.Sampled ~params p
        in
        let eo = exact r.Table2.original
        and et = exact r.Table2.transformed
        and so = sampled r.Table2.original
        and st = sampled r.Table2.transformed in
        List.iter
          (fun config ->
            let m prep = Measure.replay_prepared ~config prep in
            let cell pe ps =
              let re = miss_rate (m pe).Measure.whole
              and rs = miss_rate (m ps).Measure.whole in
              let err = Float.abs (rs -. re) in
              if err > !max_err then max_err := err;
              sum_err := !sum_err +. err;
              incr n_err;
              (re, rs, err)
            in
            let oe, os, oerr = cell eo so and te, ts, terr = cell et st in
            line "%-10s %-8s %8.2f %8.2f %5.2fp   %8.2f %8.2f %5.2fp"
              r.Table2.entry.S.Programs.name (cache_short config) oe os oerr
              te ts terr)
          caches)
    rows;
  let mean = if !n_err = 0 then 0.0 else !sum_err /. float_of_int !n_err in
  let bound = 1.0 in
  line "sample rate=%g cells=%d mean-err=%.3fpt max-err=%.3fpt bound=%.1fpt"
    rate !n_err mean !max_err bound;
  (* CI gates max error at rate 1.0 (adaptive-budget mode: exact until a
     program's footprint exceeds max_tracked, so the bound checks the
     estimator plus SHARDS-adj adaptation) and mean error at sampling
     rates, where concentrated-footprint programs can blow any per-cell
     bound a spatial sample could promise. *)
  line "err-bound-ok=%b" (!max_err <= bound);
  line "mean-err-ok=%b" (mean <= bound);
  Buffer.contents buf
