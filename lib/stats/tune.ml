(* `memoria tune`: enumerate → screen → confirm → memoize. See tune.mli. *)

module D = Locality_driver.Driver
module C = Locality_core
module An = Locality_dep.Analysis
module Dep = Locality_dep.Depend
module Measure = Locality_interp.Measure
module Cache = Locality_cachesim.Cache
module Machine = Locality_cachesim.Machine
module Store = Locality_store.Store
module Obs = Locality_obs.Obs
module Pool = Locality_par.Pool

type spec = {
  tiles : int list;
  unrolls : int list;
  top_k : int;
  max_candidates : int;
}

let default_spec =
  { tiles = [ 8; 16; 32; 64 ]; unrolls = [ 2; 4; 8 ]; top_k = 5;
    max_candidates = 4096 }

let quick_spec =
  { tiles = [ 16 ]; unrolls = [ 4 ]; top_k = 1; max_candidates = 96 }

let spec_of_request (ts : Locality_driver.Request.tune_spec) =
  let module R = Locality_driver.Request in
  {
    tiles = Option.value ts.R.t_tiles ~default:default_spec.tiles;
    unrolls = Option.value ts.R.t_unrolls ~default:default_spec.unrolls;
    top_k = Option.value ts.R.t_top_k ~default:default_spec.top_k;
    max_candidates =
      Option.value ts.R.t_max_candidates ~default:default_spec.max_candidates;
  }

type structure = Asis | Fused | Distributed

type candidate = {
  structure : structure;
  perm : string list option;
  tile : int option;
  unroll : (string * int) option;
}

let structure_tag = function
  | Asis -> "asis"
  | Fused -> "fused"
  | Distributed -> "dist"

(* The canonical candidate encoding: the store-key component and the
   lexicographic tie-break, so it must be injective on the space. *)
let encode c =
  Printf.sprintf "S=%s;P=%s;T=%s;U=%s" (structure_tag c.structure)
    (match c.perm with None -> "-" | Some o -> String.concat "," o)
    (match c.tile with None -> "-" | Some t -> string_of_int t)
    (match c.unroll with
    | None -> "-"
    | Some (l, f) -> Printf.sprintf "%s*%d" l f)

type status = Illegal | Screened | Confirmed

type row = {
  enc : string;
  status : status;
  analytic_miss : float option;
  simulated_miss : float option;
}

type result = {
  t_name : string;
  t_machine : Cache.config;
  t_n : int option;
  t_generated : int;
  t_pruned : int;
  t_screened : int;
  t_confirmed : int;
  t_truncated : int;
  t_store_hits : int;
  t_store_misses : int;
  t_baseline_miss : float;
  t_memorder_miss : float;
  t_rows : row list;
  t_winner : row option;
  t_winner_program : Program.t;
  t_winner_labels : string list;
}

(* ------------------------------------------------------ enumeration --- *)

let spine_names (l : Loop.t) =
  List.map (fun (h : Loop.header) -> h.Loop.index) (Loop.loops_on_spine l)

(* All permutations of [names], the identity first, the rest in the
   lexicographic order induced by the input order — fixed for a fixed
   input, independent of any runtime state. *)
let permutations names =
  let rec perms = function
    | [] -> [ [] ]
    | l ->
      List.concat_map
        (fun x ->
          let rest = List.filter (fun y -> not (String.equal y x)) l in
          List.map (fun p -> x :: p) (perms rest))
        l
  in
  names :: List.filter (fun p -> p <> names) (perms names)

(* Deepest top-level nest (first on ties): the tuned region. *)
let target_index (p : Program.t) =
  let best = ref (-1) and besti = ref (-1) in
  List.iteri
    (fun i node ->
      match node with
      | Loop.Loop l ->
        let d = Loop.depth l in
        if d > !best then begin
          best := d;
          besti := i
        end
      | Loop.Stmt _ -> ())
    p.Program.body;
  if !besti < 0 then None else Some !besti

(* Spines deeper than this would make the permutation factor explode;
   keep the identity and memory order only, and let the report say so
   via the truncation count. *)
let max_perm_depth = 5

let enumerate ~spec ~cls (nest : Loop.t) =
  let cross structure base =
    match base with
    | None -> [ { structure; perm = None; tile = None; unroll = None } ]
    | Some b when not (Loop.is_perfect b) ->
      [ { structure; perm = None; tile = None; unroll = None } ]
    | Some b ->
      let names = spine_names b in
      let perms =
        if List.length names > max_perm_depth then
          let mo = C.Memorder.order (C.Memorder.compute ~cls b) in
          names :: (if mo = names then [] else [ mo ])
        else permutations names
      in
      let tiles = None :: List.map (fun t -> Some t) spec.tiles in
      let unrolls =
        None
        :: List.concat_map
             (fun l -> List.map (fun f -> Some (l, f)) spec.unrolls)
             names
      in
      List.concat_map
        (fun perm ->
          List.concat_map
            (fun tile ->
              List.map
                (fun unroll -> { structure; perm = Some perm; tile; unroll })
                unrolls)
            tiles)
        perms
  in
  cross Asis (Some nest)
  @ cross Fused (C.Fusion.fuse_all_inner ~cls nest)
  @ [ { structure = Distributed; perm = None; tile = None; unroll = None } ]

(* ------------------------------------------------------ application --- *)

let apply ?(cls = 4) (p : Program.t) ~nest_idx cand =
  let ( let* ) = Option.bind in
  match List.nth_opt p.Program.body nest_idx with
  | None | Some (Loop.Stmt _) -> None
  | Some (Loop.Loop nest) ->
    let* base =
      match cand.structure with
      | Asis -> Some [ Loop.Loop nest ]
      | Fused ->
        Option.map
          (fun l -> [ Loop.Loop l ])
          (C.Fusion.fuse_all_inner ~cls nest)
      | Distributed ->
        Option.map
          (fun (r : C.Distribution.result) ->
            List.map (fun l -> Loop.Loop l) r.C.Distribution.nests)
          (C.Distribution.run ~cls nest)
    in
    let* permuted =
      match (cand.perm, base) with
      | None, b -> Some b
      | Some order, [ Loop.Loop l ] ->
        if order = spine_names l then Some base
        else
          let deps = List.filter Dep.is_true_dep (An.deps_in_nest l) in
          if not (C.Legality.permutation_legal ~deps ~target:order) then None
          else
            Option.map
              (fun l' -> [ Loop.Loop l' ])
              (C.Interchange.permute_spine l order)
      | Some _, _ -> None
    in
    let* tiled =
      match (cand.tile, permuted) with
      | None, b -> Some b
      | Some t, [ Loop.Loop l ] -> begin
        match C.Tiling.recommend ~cls l with
        | [] -> None
        | band ->
          Option.map
            (fun l' -> [ Loop.Loop l' ])
            (C.Tiling.tile ~sizes:t l ~band)
      end
      | Some _, _ -> None
    in
    let* final =
      match (cand.unroll, tiled) with
      | None, b -> Some b
      | Some (loop, factor), [ Loop.Loop l ] ->
        let avoid =
          List.map
            (fun (s : Stmt.t) -> s.Stmt.label)
            (Loop.block_statements p.Program.body)
        in
        C.Unroll.unroll_and_jam ~avoid l ~loop ~factor
      | Some _, _ -> None
    in
    let body =
      List.concat
        (List.mapi
           (fun i node -> if i = nest_idx then final else [ node ])
           p.Program.body)
    in
    let p' = { p with Program.body } in
    let labels =
      List.map (fun (s : Stmt.t) -> s.Stmt.label) (Loop.block_statements final)
    in
    (* A candidate that breaks program invariants is pruned, never
       propagated: the search must stay total. *)
    (match Program.validate p' with Ok () -> Some (p', labels) | Error _ -> None)

(* ------------------------------------------------------- evaluation --- *)

let miss_of (r : Measure.run) =
  let w = r.Measure.whole in
  if w.Measure.accesses = 0 then 0.0
  else
    100.0
    *. float_of_int (w.Measure.accesses - w.Measure.hits)
    /. float_of_int w.Measure.accesses

(* Same tag formats as Measure's store keys, kept locally: the tune kind
   must never collide with (or depend on the layout of) measure's own
   entries. *)
let config_tag (c : Cache.config) =
  Printf.sprintf "%s/%d/%d/%d" c.Cache.name c.Cache.size_bytes c.Cache.assoc
    c.Cache.line_bytes

let timing_tag (t : Machine.timing) =
  Printf.sprintf "%h/%h/%h" t.Machine.cycles_per_op t.Machine.cycles_per_hit
    t.Machine.miss_penalty

let params_tag params =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ string_of_int v) params)

(* Keyed by the *transformed* program text, so candidates reached from
   different starting points (cross-kernel overlap: the six matmul
   orders permute into each other) share one entry. *)
let tune_key ~stage ~machine ~timing ~params p =
  Store.key ~kind:"tune"
    [
      stage; Pretty.program_to_string p; config_tag machine;
      timing_tag timing; params_tag params;
    ]

let measure_miss ~mode ~machine ~timing ~params ~store p =
  let prep = Measure.prepare ~mode ?params ~store p in
  miss_of (Measure.replay_prepared ~config:machine ~timing prep)

(* One candidate's cached (or computed-and-published) miss rate.
   Returns the rate and whether the tune entry was warm. *)
let cached_miss ~stage ~mode ~machine ~timing ~params ~store p =
  let params' = Option.value ~default:[] params in
  let key = tune_key ~stage ~machine ~timing ~params:params' p in
  match store with
  | None ->
    (measure_miss ~mode ~machine ~timing ~params ~store p, false)
  | Some s -> begin
    match Store.get_value s key with
    | Some (miss : float) ->
      Obs.counter "tune.store_hit" 1;
      (miss, true)
    | None ->
      Obs.counter "tune.store_miss" 1;
      let miss = measure_miss ~mode ~machine ~timing ~params ~store:store p in
      Store.put_value s key miss;
      (miss, false)
  end

(* ------------------------------------------------------------ search --- *)

let run ?(spec = default_spec) ?n ?(cls = 4) ?(machine = Machine.cache1)
    ?(timing = Machine.default_timing) ?params ?jobs ?store ~name
    (p : Program.t) =
  let store = match store with Some s -> s | None -> Store.default () in
  (* Baseline and the paper's single-pass answer, measured exactly: the
     tuned winner is judged against the compound (memory-order) result
     on the same geometry. *)
  match
    D.run
      (D.config ?n ~cls ~machines:[ machine ] ~timing ?params
         ~replay:Measure.Runs ~store
         (D.Source_program { name; program = p }))
  with
  | Error e -> Error e
  | Ok base -> begin
    let program = base.D.original in
    (* [nth_opt] raises on a negative index, so resolve the target nest
       only once we know there is one — a nest-free program must read
       as a typed error, not an exception. *)
    let target =
      Option.bind (target_index program) (fun idx ->
          match List.nth_opt program.Program.body idx with
          | Some (Loop.Loop nest) -> Some (idx, nest)
          | Some (Loop.Stmt _) | None -> None)
    in
    match (base.D.measured, target) with
    | [], _ -> Error (Printf.sprintf "%s: no measurement" name)
    | _, None -> Error (Printf.sprintf "%s: no loop nest to tune" name)
    | m :: _, Some (nest_idx, nest) -> begin
        let baseline_miss = miss_of m.D.original_run in
        let memorder_miss = miss_of m.D.transformed_run in
        let all =
          Obs.span "tune.enumerate" (fun () -> enumerate ~spec ~cls nest)
        in
        let generated = List.length all in
        Obs.counter "tune.generated" generated;
        let kept, dropped =
          if generated <= spec.max_candidates then (all, 0)
          else
            let rec split n acc = function
              | rest when n = 0 -> (List.rev acc, List.length rest)
              | [] -> (List.rev acc, 0)
              | x :: rest -> split (n - 1) (x :: acc) rest
            in
            split spec.max_candidates [] all
        in
        if dropped > 0 then Obs.counter "tune.truncated" dropped;
        (* Screen every legal candidate with the analytic fast path;
           items fan out over the pool and come back in input order. *)
        let screened =
          Obs.span "tune.screen" (fun () ->
              Pool.map ?jobs
                (fun cand ->
                  let enc = encode cand in
                  match apply ~cls program ~nest_idx cand with
                  | None ->
                    Obs.counter "tune.pruned_illegal" 1;
                    ( { enc; status = Illegal; analytic_miss = None;
                        simulated_miss = None },
                      false, None )
                  | Some (p', labels) ->
                    Obs.counter "tune.screened" 1;
                    let miss, warm =
                      cached_miss ~stage:"screen" ~mode:Measure.Analytic
                        ~machine ~timing ~params ~store p'
                    in
                    Obs.histogram "tune.screen.miss_bp"
                      (int_of_float (miss *. 100.0));
                    ( { enc; status = Screened; analytic_miss = Some miss;
                        simulated_miss = None },
                      warm, Some (p', labels) ))
                kept)
        in
        let hits = ref 0 and misses = ref 0 in
        List.iter
          (fun (r, warm, _) ->
            if r.status <> Illegal then
              if warm then incr hits else incr misses)
          screened;
        let pruned =
          List.length (List.filter (fun (r, _, _) -> r.status = Illegal) screened)
        in
        (* Confirm the analytically best top-K with the exact simulator;
           ties at equal analytic score break on the encoding. *)
        let finalists =
          let legal =
            List.filter_map
              (fun (r, _, applied) ->
                match (r.analytic_miss, applied) with
                | Some a, Some (p', labels) -> Some (r.enc, a, p', labels)
                | _, _ -> None)
              screened
          in
          let sorted =
            List.stable_sort
              (fun (e1, a1, _, _) (e2, a2, _, _) ->
                match compare a1 a2 with
                | 0 -> String.compare e1 e2
                | c -> c)
              legal
          in
          let rec take n = function
            | [] -> []
            | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
          in
          take spec.top_k sorted
        in
        let confirmed =
          Obs.span "tune.confirm" (fun () ->
              Pool.map ?jobs
                (fun (enc, analytic, p', labels) ->
                  Obs.counter "tune.simulated" 1;
                  let miss, warm =
                    cached_miss ~stage:"confirm" ~mode:Measure.Runs ~machine
                      ~timing ~params ~store p'
                  in
                  Obs.histogram "tune.confirm.miss_bp"
                    (int_of_float (miss *. 100.0));
                  (enc, analytic, miss, warm, p', labels))
                finalists)
        in
        List.iter
          (fun (_, _, _, warm, _, _) -> if warm then incr hits else incr misses)
          confirmed;
        let winner =
          match
            List.stable_sort
              (fun (e1, _, m1, _, _, _) (e2, _, m2, _, _, _) ->
                match compare m1 m2 with
                | 0 -> String.compare e1 e2
                | c -> c)
              confirmed
          with
          | [] -> None
          | w :: _ -> Some w
        in
        let rows =
          List.map
            (fun (r, _, _) ->
              match
                List.find_opt (fun (enc, _, _, _, _, _) -> enc = r.enc)
                  confirmed
              with
              | Some (_, _, miss, _, _, _) ->
                { r with status = Confirmed; simulated_miss = Some miss }
              | None -> r)
            screened
        in
        let winner_row, winner_program, winner_labels =
          match winner with
          | Some (enc, analytic, miss, _, p', labels) ->
            ( Some
                { enc; status = Confirmed; analytic_miss = Some analytic;
                  simulated_miss = Some miss },
              p', labels )
          | None -> (None, program, [])
        in
        Obs.gauge "tune.store_hit_rate"
          (let total = !hits + !misses in
           if total = 0 then 0.0
           else 100.0 *. float_of_int !hits /. float_of_int total);
        Ok
          {
            t_name = base.D.name;
            t_machine = machine;
            t_n = n;
            t_generated = generated;
            t_pruned = pruned;
            t_screened = List.length kept - pruned;
            t_confirmed = List.length confirmed;
            t_truncated = dropped;
            t_store_hits = !hits;
            t_store_misses = !misses;
            t_baseline_miss = baseline_miss;
            t_memorder_miss = memorder_miss;
            t_rows = rows;
            t_winner = winner_row;
            t_winner_program = winner_program;
            t_winner_labels = winner_labels;
          }
      end
  end

let eff_n (cfg : D.config) =
  match (cfg.D.scale, cfg.D.n) with
  | s, Some n when s > 1 -> Some (s * n)
  | s, None when s > 1 -> Some (s * 64)
  | _, n -> n

let run_config ?(spec = default_spec) ?jobs (cfg : D.config) =
  match D.load ?n:(eff_n cfg) cfg.D.source with
  | Error e -> Error e
  | Ok (name, p) ->
    let machine =
      match cfg.D.machines with m :: _ -> m | [] -> Machine.cache1
    in
    run ~spec ?n:(eff_n cfg) ~cls:cfg.D.cls ~machine ~timing:cfg.D.timing
      ?params:cfg.D.params ?jobs ~store:cfg.D.store ~name p

(* ------------------------------------------------------- reporting --- *)

let fmt_opt = function None -> "-" | Some f -> Printf.sprintf "%.2f" f

let top_rows t =
  let shown =
    List.filter (fun r -> r.status = Confirmed) t.t_rows
  in
  List.stable_sort
    (fun r1 r2 ->
      match compare r1.simulated_miss r2.simulated_miss with
      | 0 -> String.compare r1.enc r2.enc
      | c -> c)
    shown

let render t =
  let b = Buffer.create 1024 in
  let addf fmt =
    Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt
  in
  addf "tune: %s on %s%s" t.t_name t.t_machine.Cache.name
    (match t.t_n with None -> "" | Some n -> Printf.sprintf " (n=%d)" n);
  addf
    "candidates: %d generated, %d pruned illegal, %d screened (analytic), %d \
     confirmed (exact)%s"
    t.t_generated t.t_pruned t.t_screened t.t_confirmed
    (if t.t_truncated > 0 then
       Printf.sprintf ", %d dropped beyond max-candidates" t.t_truncated
     else "");
  let total = t.t_store_hits + t.t_store_misses in
  addf "store: %d hits / %d misses (%.1f%% warm)" t.t_store_hits
    t.t_store_misses
    (if total = 0 then 0.0
     else 100.0 *. float_of_int t.t_store_hits /. float_of_int total);
  addf "baseline miss: %.2f%%   memory order (compound) miss: %.2f%%"
    t.t_baseline_miss t.t_memorder_miss;
  (match top_rows t with
  | [] -> addf "no legal candidate was confirmed; keeping the original"
  | rows ->
    addf "%-4s %-40s %10s %10s" "rank" "candidate" "analytic%" "exact%";
    List.iteri
      (fun i r ->
        addf "%-4d %-40s %10s %10s" (i + 1) r.enc (fmt_opt r.analytic_miss)
          (fmt_opt r.simulated_miss))
      rows);
  (match t.t_winner with
  | None -> ()
  | Some w ->
    addf "winner: %s  simulated %.2f%% (memory order %.2f%%: %s)" w.enc
      (Option.value ~default:0.0 w.simulated_miss)
      t.t_memorder_miss
      (if Option.value ~default:infinity w.simulated_miss
          <= t.t_memorder_miss +. 1e-9
       then "matched or beaten"
       else "not beaten"));
  Buffer.contents b

let float_json f = Printf.sprintf "%.4f" f

let row_json r =
  Json.obj
    ([ ("candidate", Json.str r.enc);
       ( "status",
         Json.str
           (match r.status with
           | Illegal -> "illegal"
           | Screened -> "screened"
           | Confirmed -> "confirmed") );
     ]
    @ (match r.analytic_miss with
      | None -> []
      | Some a -> [ ("analytic_miss_rate", float_json a) ])
    @
    match r.simulated_miss with
    | None -> []
    | Some s -> [ ("simulated_miss_rate", float_json s) ])

let to_json t =
  Json.versioned
    ([
       ("program", Json.str t.t_name);
       ("cache", Json.str t.t_machine.Cache.name);
       ("generated", Json.int t.t_generated);
       ("pruned_illegal", Json.int t.t_pruned);
       ("screened", Json.int t.t_screened);
       ("confirmed", Json.int t.t_confirmed);
       ("truncated", Json.int t.t_truncated);
       ("store_hits", Json.int t.t_store_hits);
       ("store_misses", Json.int t.t_store_misses);
       ("baseline_miss_rate", float_json t.t_baseline_miss);
       ("memory_order_miss_rate", float_json t.t_memorder_miss);
       ("top", Json.list (List.map row_json (top_rows t)));
     ]
    @
    match t.t_winner with
    | None -> []
    | Some w -> [ ("winner", row_json w) ])
  ^ "\n"
