(** The [--profile] table: phase timings (with a self-time flat view),
    cache counters, histogram and gauge summaries from an event stream,
    rendered with {!Report}. *)

val render : Locality_obs.Summary.t -> string
(** Plain-text tables — per-span totals (count, total/min/max ms, share
    of traced time), per-span self time ranked largest first (shares
    sum to 100), counter sums, histogram digests (count, mean, bucket
    p50/p95, max) and gauge levels. Empty sections are omitted; an
    empty summary renders a one-line note. *)

val of_events : Locality_obs.Event.t list -> string
(** [render] composed with {!Locality_obs.Summary.of_events}. *)
