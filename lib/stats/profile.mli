(** The [--profile] table: phase timings and cache counters from an
    event stream, rendered with {!Report}. *)

val render : Locality_obs.Summary.t -> string
(** Two plain-text tables — per-span totals (count, total ms, max ms,
    share of the traced time) and counter sums. Empty sections are
    omitted; an empty summary renders a one-line note. *)

val of_events : Locality_obs.Event.t list -> string
(** [render] composed with {!Locality_obs.Summary.of_events}. *)
