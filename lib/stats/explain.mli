(** The decision log behind [memoria explain FILE]: run the compound
    optimizer with tracing on, pair each nest's decision with the notes
    the passes recorded while working on it, and render the result as a
    narrative or as JSON.

    One entry is produced per {!Locality_core.Compound.nest_stat} (the
    optimizer emits the decision at the same point it accounts the
    nest), so [List.length (entries t) = List.length (stats t).nests]
    always holds — the tests cross-check it. Output is deterministic:
    it is built from {!Locality_obs.Event.fingerprint}-stable data
    only, never from timestamps or domain ids. *)

type entry = {
  decision : Locality_obs.Event.decision;
  notes : Locality_obs.Event.t list;
      (** instants recorded under this nest's context, stream order *)
}

type t

val entries : t -> entry list
(** Decision entries in recording order (inner nests of an imperfect
    nest precede their parent; [Compound.stats.nests] lists the same
    nests parent-first, so only the counts coincide). *)

val stats : t -> Locality_core.Compound.stats
val transformed : t -> Program.t
val events : t -> Locality_obs.Event.t list
(** The raw stream, for feeding {!Locality_obs.Chrome} or {!Profile}. *)

val run :
  ?cls:int ->
  ?try_reversal:bool ->
  ?interference_limit:int ->
  name:string ->
  Program.t ->
  t
(** Optimize the program under {!Locality_obs.Obs.collect}. The
    caller's tracing state is restored afterwards. *)

val render : t -> string
(** The per-nest narrative. *)

val to_json : t -> string
(** The same information as a JSON document. *)
