module Cache = Locality_cachesim.Cache
module Machine = Locality_cachesim.Machine
module Measure = Locality_interp.Measure
module Analytic = Locality_analytic.Analytic

type row = {
  r_unit : string;
  r_class : string;
  r_formula : string;
  r_sim_accesses : int;
  r_sim_misses : int;
  r_ana_accesses : int;
  r_ana_misses : int;
  r_sim_rate : float;
  r_ana_rate : float;
  r_abs_err : float;
}

type t = {
  c_name : string;
  c_config : Cache.config;
  c_exact : bool;
  c_verdict : [ `Compared of row list * row | `Fallback of string ];
  c_tuned : (string * float) option;
}

let miss_rate ~accesses ~misses =
  if accesses = 0 then 0.0
  else 100.0 *. float_of_int misses /. float_of_int accesses

let make_row ~unit ~cls ~formula ~sim_acc ~sim_miss ~ana_acc ~ana_miss =
  let r_sim_rate = miss_rate ~accesses:sim_acc ~misses:sim_miss in
  let r_ana_rate = miss_rate ~accesses:ana_acc ~misses:ana_miss in
  {
    r_unit = unit;
    r_class = cls;
    r_formula = formula;
    r_sim_accesses = sim_acc;
    r_sim_misses = sim_miss;
    r_ana_accesses = ana_acc;
    r_ana_misses = ana_miss;
    r_sim_rate;
    r_ana_rate;
    r_abs_err = Float.abs (r_ana_rate -. r_sim_rate);
  }

let unit_labels node =
  let rec stmt_labels = function
    | Loop.Stmt s -> [ s.Stmt.label ]
    | Loop.Loop l -> List.concat_map stmt_labels l.Loop.body
  in
  stmt_labels node

let run ?params ?(config = Machine.cache1) ?(tune = false) ~name (p : Program.t) =
  (* The tuned line is opt-in: a quick-profile transformation search
     (see {!Tune.quick_spec}) whose winner rides beside the model-vs-
     simulator rows, so one report answers both "how good is the model"
     and "how good could this nest get". *)
  let c_tuned =
    if not tune then None
    else
      match
        Tune.run ~spec:Tune.quick_spec ?params ~machine:config ~name p
      with
      | Error _ -> None
      | Ok t ->
        Option.bind t.Tune.t_winner (fun (w : Tune.row) ->
            Option.map (fun m -> (w.Tune.enc, m)) w.Tune.simulated_miss)
  in
  match Analytic.estimate ?params ~config p with
  | Error reason ->
    { c_name = name; c_config = config; c_exact = false;
      c_verdict = `Fallback reason; c_tuned }
  | Ok est ->
    let cap = Measure.capture ~mode:Measure.Runs ?params p in
    let whole_sim = Measure.replay ~config cap in
    let rows =
      List.map2
        (fun (u : Analytic.unit_report) node ->
          let sim =
            Measure.replay ~config ~optimized_labels:(unit_labels node) cap
          in
          let reg = sim.Measure.optimized in
          make_row ~unit:u.Analytic.u_name
            ~cls:(match u.Analytic.u_class with
                 | Analytic.Exact -> "exact"
                 | Analytic.Approx -> "approx")
            ~formula:u.Analytic.u_formula
            ~sim_acc:reg.Measure.accesses
            ~sim_miss:(reg.Measure.accesses - reg.Measure.hits)
            ~ana_acc:u.Analytic.u_accesses ~ana_miss:u.Analytic.u_misses)
        est.Analytic.e_units p.Program.body
    in
    let whole =
      make_row ~unit:"(whole)"
        ~cls:(if est.Analytic.e_exact then "exact" else "approx")
        ~formula:"-"
        ~sim_acc:whole_sim.Measure.whole.Measure.accesses
        ~sim_miss:
          (whole_sim.Measure.whole.Measure.accesses
          - whole_sim.Measure.whole.Measure.hits)
        ~ana_acc:est.Analytic.e_whole.Analytic.c_accesses
        ~ana_miss:
          (est.Analytic.e_whole.Analytic.c_accesses
          - est.Analytic.e_whole.Analytic.c_hits)
    in
    { c_name = name; c_config = config; c_exact = est.Analytic.e_exact;
      c_verdict = `Compared (rows, whole); c_tuned }

(* ------------------------------------------------------- rendering --- *)

let render t =
  let b = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  addf "analytic vs simulated: %s on %s" t.c_name t.c_config.Cache.name;
  (match t.c_verdict with
  | `Fallback reason -> addf "fallback: %s (simulator is authoritative)" reason
  | `Compared (rows, whole) ->
    addf "%-10s %-7s %-17s %12s %12s %9s %9s %8s" "unit" "class" "formula"
      "sim misses" "ana misses" "sim%" "ana%" "abs err";
    List.iter
      (fun r ->
        addf "%-10s %-7s %-17s %12d %12d %9s %9s %8s" r.r_unit r.r_class
          r.r_formula r.r_sim_misses r.r_ana_misses
          (Report.fmt_pct r.r_sim_rate)
          (Report.fmt_pct r.r_ana_rate)
          (Report.fmt_pct r.r_abs_err))
      (rows @ [ whole ]);
    addf "whole-program class: %s"
      (if t.c_exact then "exact (analytic counts are simulator-equal)"
       else "approx (bracketed estimates)"));
  (match t.c_tuned with
  | Some (enc, miss) ->
    addf "tuned (quick search): %s  simulated %s%% miss" enc
      (Report.fmt_pct miss)
  | None -> ());
  Buffer.contents b

(* ------------------------------------------------------------ JSON --- *)

(* Shape documented in doc/SCHEMA.md; bump [Json.schema_version] only on
   incompatible changes. *)

let float_json f = Printf.sprintf "%.4f" f

let row_json r =
  Json.obj
    [
      ("unit", Json.str r.r_unit);
      ("class", Json.str r.r_class);
      ("formula", Json.str r.r_formula);
      ("sim_accesses", Json.int r.r_sim_accesses);
      ("sim_misses", Json.int r.r_sim_misses);
      ("analytic_accesses", Json.int r.r_ana_accesses);
      ("analytic_misses", Json.int r.r_ana_misses);
      ("sim_miss_rate", float_json r.r_sim_rate);
      ("analytic_miss_rate", float_json r.r_ana_rate);
      ("abs_error", float_json r.r_abs_err);
    ]

let to_json t =
  let common =
    [
      ("program", Json.str t.c_name);
      ("cache", Json.str t.c_config.Cache.name);
      ("exact", if t.c_exact then "true" else "false");
      ( "tuned",
        match t.c_tuned with
        | Some (enc, miss) ->
          Json.obj
            [
              ("candidate", Json.str enc);
              ("simulated_miss_rate", float_json miss);
            ]
        | None -> "null" );
    ]
  in
  (match t.c_verdict with
  | `Fallback reason ->
    Json.versioned (common @ [ ("fallback", Json.str reason) ])
  | `Compared (rows, whole) ->
    Json.versioned
      (common
      @ [
          ("units", Json.list (List.map row_json rows));
          ("whole", row_json whole);
        ]))
  ^ "\n"
