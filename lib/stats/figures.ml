module C = Locality_core
module S = Locality_suite
module D = Locality_driver.Driver
module Measure = Locality_interp.Measure
module Machine = Locality_cachesim.Machine

(* Measure a fixed program as-is on some geometries, via the pipeline
   driver (store-backed when MEMORIA_STORE is set). *)
let keep_runs name program machines =
  let r =
    D.run_exn
      (D.config ~transform:D.Keep ~machines
         (D.Source_program { name; program }))
  in
  List.map (fun m -> m.D.original_run) r.D.measured

let cost_table ~title nest candidates =
  let table = C.Loopcost.group_cost_table ~nest ~cls:4 ~candidates in
  let rows =
    List.map
      (fun ((g : C.Refgroup.group), costs) ->
        Reference.to_string g.C.Refgroup.rep.C.Refgroup.ref_
        :: List.map (fun (_, c) -> Poly.to_string c) costs)
      table
  in
  let totals =
    "total"
    :: List.map
         (fun cand ->
           Poly.to_string (C.Loopcost.loop_cost ~nest ~cls:4 cand))
         candidates
  in
  Report.render ~title [ Report.Left ]
    ("RefGroup" :: candidates)
    (rows @ [ totals ])

let fig2 ?(n_sim = 64) () =
  let buf = Buffer.create 4096 in
  let nest = List.hd (Program.top_loops (S.Kernels.matmul ~order:"JKI" 64)) in
  Buffer.add_string buf
    (cost_table ~title:"Figure 2: Matrix Multiply LoopCost (cls = 4)" nest
       [ "J"; "K"; "I" ]);
  (* Ranking: LoopCost of the innermost loop of each order. *)
  let ranked =
    List.map
      (fun order ->
        let inner = String.make 1 order.[2] in
        (order, C.Loopcost.loop_cost ~nest ~cls:4 inner))
      S.Kernels.matmul_orders
  in
  Buffer.add_string buf "\nPredicted ranking (innermost-loop cost, best first):\n";
  List.iter
    (fun (order, c) ->
      Buffer.add_string buf (Printf.sprintf "  %s: %s\n" order (Poly.to_string c)))
    ranked;
  (* Simulated execution times for every order: each order is
     interpreted once and its trace replayed on both cache geometries,
     with the orders simulated in parallel. *)
  let rows =
    Locality_par.Pool.map
      (fun order ->
        let r1, r2 =
          Perf.two_machine_rows ~where:"Figures.fig2"
            ~program:("matmul-" ^ order)
            (keep_runs ("matmul-" ^ order)
               (S.Kernels.matmul ~order n_sim)
               [ Machine.cache1; Machine.cache2 ])
        in
        [
          order;
          Printf.sprintf "%.4f" r1.Measure.seconds;
          Report.fmt_pct (Measure.hit_rate ~exclude_cold:false r1.Measure.whole);
          Printf.sprintf "%.4f" r2.Measure.seconds;
          Report.fmt_pct (Measure.hit_rate ~exclude_cold:false r2.Measure.whole);
        ])
      S.Kernels.matmul_orders
  in
  Buffer.add_string buf "\n";
  Buffer.add_string buf
    (Report.render
       ~title:
         (Printf.sprintf
            "Figure 2 (measured): matmul N=%d, all orders, modelled time"
            n_sim)
       ~note:"Orders listed in the paper's predicted best-to-worst ranking."
       [ Report.Left ]
       [ "Order"; "cache1(s)"; "hit1%"; "cache2(s)"; "hit2%" ]
       rows);
  Buffer.contents buf

let fig3 ?(n = 48) () =
  let buf = Buffer.create 4096 in
  let adi = S.Kernels.adi_fragment 64 in
  let outer = List.hd (Program.top_loops adi) in
  (match Loop.inner_loops outer with
  | [ k1; k2 ] ->
    let fused = C.Fusion.fuse_to_depth k1 k2 ~depth:1 in
    let unfused_cost name l =
      Printf.sprintf "  LoopCost(K | %s) = %s\n" name
        (Poly.to_string (C.Loopcost.loop_cost ~nest:l ~cls:4 "K"))
    in
    Buffer.add_string buf "== Figure 3: ADI loop fusion profitability (cls = 4) ==\n";
    Buffer.add_string buf (unfused_cost "S1 nest" k1);
    Buffer.add_string buf (unfused_cost "S2 nest" k2);
    Buffer.add_string buf
      (Printf.sprintf "  LoopCost(K | fused) = %s\n"
         (Poly.to_string (C.Loopcost.loop_cost ~nest:fused ~cls:4 "K")));
    Buffer.add_string buf
      (Printf.sprintf "  fusion weight (unfused - fused, best orders) = %s\n"
         (Poly.to_string
            (C.Fusion.weight ~cls:4 ~outer:[ outer.Loop.header ] k1 k2 ~depth:1)))
  | _ -> ());
  let transformed, _ = C.Compound.run_program ~cls:4 adi in
  Buffer.add_string buf "\nTransformed program (fused + interchanged):\n";
  Buffer.add_string buf (Pretty.program_to_string transformed);
  Buffer.add_string buf "\n\nMeasured (cache2 model):\n";
  let one name p =
    List.hd (keep_runs name p [ Machine.cache2 ])
  in
  let r_orig = one "adi-fragment" (S.Kernels.adi_fragment n) in
  let r_fused = one "adi-fused" (S.Kernels.adi_fused n) in
  Buffer.add_string buf
    (Printf.sprintf "  original: %.4fs (hit %.2f%%)  fused+interchanged: %.4fs (hit %.2f%%)\n"
       r_orig.Measure.seconds
       (Measure.hit_rate ~exclude_cold:false r_orig.Measure.whole)
       r_fused.Measure.seconds
       (Measure.hit_rate ~exclude_cold:false r_fused.Measure.whole));
  Buffer.contents buf

let fig7 ?(n_sim = 64) () =
  let buf = Buffer.create 4096 in
  let nest = List.hd (Program.top_loops (S.Kernels.cholesky 64)) in
  Buffer.add_string buf
    (cost_table ~title:"Figure 7: Cholesky LoopCost (cls = 4)" nest
       [ "K"; "J"; "I" ]);
  let transformed, _ =
    C.Compound.run_program ~cls:4 (S.Kernels.cholesky 64)
  in
  Buffer.add_string buf
    "\nTransformed (distribution + triangular interchange):\n";
  Buffer.add_string buf (Pretty.program_to_string transformed);
  let sp, r1, r2 =
    let r =
      D.run_exn
        (D.config ~cls:4
           ~machines:[ Machine.cache2 ]
           (D.Source_program
              { name = "cholesky"; program = S.Kernels.cholesky n_sim }))
    in
    let m = List.hd r.D.measured in
    (m.D.speedup, m.D.original_run, m.D.transformed_run)
  in
  Buffer.add_string buf
    (Printf.sprintf
       "\n\nMeasured (cache2 model, N=%d): original %.4fs, transformed %.4fs, speedup %.2f\n"
       n_sim r1.Measure.seconds r2.Measure.seconds sp);
  Buffer.contents buf

let bucket_labels =
  [ "0-50%"; "50-60%"; "60-70%"; "70-80%"; "80-90%"; "90-100%" ]

let bucket_of p =
  if p < 50.0 then 0
  else if p < 60.0 then 1
  else if p < 70.0 then 2
  else if p < 80.0 then 3
  else if p < 90.0 then 4
  else 5

let histogram_of rows ~title f =
  let counts_orig = Array.make 6 0 and counts_final = Array.make 6 0 in
  let counted = ref 0 in
  List.iter
    (fun (r : Table2.row) ->
      if r.Table2.nests > 0 then begin
        incr counted;
        let po, pf = f r in
        counts_orig.(bucket_of po) <- counts_orig.(bucket_of po) + 1;
        counts_final.(bucket_of pf) <- counts_final.(bucket_of pf) + 1
      end)
    rows;
  Report.histogram ~title:(title ^ " — original")
    ~buckets:(List.mapi (fun i l -> (l, counts_orig.(i))) bucket_labels)
    ~total:!counted
  ^ "\n"
  ^ Report.histogram ~title:(title ^ " — transformed")
      ~buckets:(List.mapi (fun i l -> (l, counts_final.(i))) bucket_labels)
      ~total:!counted

let fig8 rows =
  histogram_of rows
    ~title:"Figure 8: programs by % of nests in memory order"
    (fun r ->
      ( Table2.pct r.Table2.orig r.Table2.nests,
        Table2.pct (r.Table2.orig + r.Table2.perm) r.Table2.nests ))

let fig9 rows =
  histogram_of rows
    ~title:"Figure 9: programs by % of inner loops in memory order"
    (fun r ->
      ( Table2.pct r.Table2.inner_orig r.Table2.nests,
        Table2.pct (r.Table2.inner_orig + r.Table2.inner_perm) r.Table2.nests ))
