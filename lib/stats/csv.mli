(** CSV export of the experiment data, for plotting or further analysis
    outside the harness. *)

val float4 : float -> string
(** Fixed four-place formatting, shared by every ratio / hit-rate column
    and the profile table. *)

val float6 : float -> string
(** Fixed six-place formatting for simulated seconds. *)

val escape : string -> string
(** RFC-4180-style quoting when a field contains a comma, quote or
    newline. *)

val of_rows : string list -> string list list -> string
(** Header plus rows. *)

val table2 : Table2.row list -> string
val table3 : Perf.perf_row list -> string
val table4 : Perf.hit_row list -> string

val write_all : dir:string -> Table2.row list -> unit
(** Write table2.csv, table3.csv and table4.csv under [dir] (created if
    missing). *)
