include Locality_obs.Json
