module Summary = Locality_obs.Summary
module Hist = Locality_obs.Hist

let span_table (spans : Summary.span_row list) =
  let total_all =
    List.fold_left (fun acc (r : Summary.span_row) -> Int64.add acc r.total_ns)
      0L spans
  in
  let share ns =
    if Int64.equal total_all 0L then "-"
    else
      Csv.float4 (100.0 *. Int64.to_float ns /. Int64.to_float total_all)
  in
  Report.render ~title:"Profile: phases"
    ~note:"total/min/max in milliseconds; share is of the summed span time"
    [
      Report.Left; Report.Right; Report.Right; Report.Right; Report.Right;
      Report.Right;
    ]
    [ "span"; "count"; "total_ms"; "min_ms"; "max_ms"; "share_pct" ]
    (List.map
       (fun (r : Summary.span_row) ->
         [
           r.name;
           string_of_int r.count;
           Csv.float4 (Summary.ms r.total_ns);
           Csv.float4 (Summary.ms r.min_ns);
           Csv.float4 (Summary.ms r.max_ns);
           share r.total_ns;
         ])
       spans)

(* The flat view: self time excludes children, so shares sum to 100%
   of the traced wall clock instead of double-counting nesting. *)
let self_table (s : Summary.t) =
  let ranked = Summary.self_ranking s in
  let total_self =
    List.fold_left (fun acc (r : Summary.span_row) -> Int64.add acc r.self_ns)
      0L ranked
  in
  let share ns =
    if Int64.equal total_self 0L then "-"
    else
      Csv.float4 (100.0 *. Int64.to_float ns /. Int64.to_float total_self)
  in
  Report.render ~title:"Profile: self time"
    ~note:"own work per span (children excluded); shares sum to 100"
    [ Report.Left; Report.Right; Report.Right ]
    [ "span"; "self_ms"; "self_pct" ]
    (List.map
       (fun (r : Summary.span_row) ->
         [ r.name; Csv.float4 (Summary.ms r.self_ns); share r.self_ns ])
       ranked)

let counter_table counters =
  Report.render ~title:"Profile: counters"
    [ Report.Left; Report.Right ]
    [ "counter"; "total" ]
    (List.map (fun (name, v) -> [ name; string_of_int v ]) counters)

let hist_table hists =
  Report.render ~title:"Profile: histograms"
    ~note:"log2 buckets; p50/p95 are bucket upper bounds"
    [
      Report.Left; Report.Right; Report.Right; Report.Right; Report.Right;
      Report.Right;
    ]
    [ "histogram"; "count"; "mean"; "p50"; "p95"; "max" ]
    (List.map
       (fun (name, (h : Hist.t)) ->
         [
           name;
           string_of_int h.Hist.count;
           Csv.float4 (Hist.mean h);
           string_of_int (Hist.quantile h 0.5);
           string_of_int (Hist.quantile h 0.95);
           string_of_int (if h.Hist.count = 0 then 0 else h.Hist.max);
         ])
       hists)

let gauge_table gauges =
  Report.render ~title:"Profile: gauges"
    [ Report.Left; Report.Right ]
    [ "gauge"; "value" ]
    (List.map (fun (name, v) -> [ name; Printf.sprintf "%g" v ]) gauges)

let render (s : Summary.t) =
  if
    s.Summary.spans = [] && s.Summary.counters = []
    && s.Summary.histograms = [] && s.Summary.gauges = []
  then "Profile: no events recorded (tracing disabled?)\n"
  else
    let parts =
      (if s.Summary.spans = [] then []
       else [ span_table s.Summary.spans; self_table s ])
      @ (if s.Summary.counters = [] then []
         else [ counter_table s.Summary.counters ])
      @ (if s.Summary.histograms = [] then []
         else [ hist_table s.Summary.histograms ])
      @ if s.Summary.gauges = [] then [] else [ gauge_table s.Summary.gauges ]
    in
    String.concat "\n" parts

let of_events events = render (Summary.of_events events)
