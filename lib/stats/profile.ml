module Summary = Locality_obs.Summary

let span_table (spans : Summary.span_row list) =
  let total_all =
    List.fold_left (fun acc (r : Summary.span_row) -> Int64.add acc r.total_ns)
      0L spans
  in
  let share ns =
    if Int64.equal total_all 0L then "-"
    else
      Csv.float4 (100.0 *. Int64.to_float ns /. Int64.to_float total_all)
  in
  Report.render ~title:"Profile: phases"
    ~note:"total/max in milliseconds; share is of the summed span time"
    [ Report.Left; Report.Right; Report.Right; Report.Right; Report.Right ]
    [ "span"; "count"; "total_ms"; "max_ms"; "share_pct" ]
    (List.map
       (fun (r : Summary.span_row) ->
         [
           r.name;
           string_of_int r.count;
           Csv.float4 (Summary.ms r.total_ns);
           Csv.float4 (Summary.ms r.max_ns);
           share r.total_ns;
         ])
       spans)

let counter_table counters =
  Report.render ~title:"Profile: counters"
    [ Report.Left; Report.Right ]
    [ "counter"; "total" ]
    (List.map (fun (name, v) -> [ name; string_of_int v ]) counters)

let render (s : Summary.t) =
  match (s.Summary.spans, s.Summary.counters) with
  | [], [] -> "Profile: no events recorded (tracing disabled?)\n"
  | spans, counters ->
    let parts =
      (if spans = [] then [] else [ span_table spans ])
      @ if counters = [] then [] else [ counter_table counters ]
    in
    String.concat "\n" parts

let of_events events = render (Summary.of_events events)
