module S = Locality_suite
module D = Locality_driver.Driver
module Measure = Locality_interp.Measure
module Machine = Locality_cachesim.Machine

type perf_row = {
  name : string;
  seconds_orig : float;
  seconds_final : float;
  speedup : float;  (* cache1 *)
  speedup2 : float;  (* cache2 *)
}

module Pool = Locality_par.Pool

(* The driver returns one measured row per requested machine; these
   tables always ask for exactly cache1 and cache2. Anything else is a
   wiring error worth naming precisely. *)
let two_machine_rows ~where ~program = function
  | [ m1; m2 ] -> (m1, m2)
  | ms ->
    invalid_arg
      (Printf.sprintf
         "%s: program %S: expected 2 measured machine rows (cache1, cache2), \
          got %d"
         where program (List.length ms))

let table1 ?(n = 64) () =
  let versions =
    [
      ("Hand coded", S.Kernels.erlebacher_hand n);
      ("Distributed (memory order)", S.Kernels.erlebacher_distributed n);
      ("Fused", S.Kernels.erlebacher_fused n);
    ]
  in
  (* The hand version's stray nest is fixed by the compiler in the
     distributed version; the fused version is what Fuse produces. *)
  let rows =
    Pool.map
      (fun (label, p) ->
        let res =
          D.run_exn
            (D.config ~transform:D.Keep ~machines:[ Machine.cache1 ]
               (D.Source_program { name = label; program = p }))
        in
        let r = (List.hd res.D.measured).D.original_run in
        [
          label;
          Printf.sprintf "%.4f" r.Measure.seconds;
          Printf.sprintf "%.1f" (Measure.hit_rate r.Measure.whole);
        ])
      versions
  in
  Report.render
    ~title:"Table 1: Performance of Erlebacher (modelled seconds, cache1)"
    ~note:"Paper (RS/6000): Hand .390, Distributed .400, Fused .383 s."
    [ Report.Left ] [ "Version"; "Seconds"; "Hit%" ] rows

(* One compound run, one trace capture per program version, then a
   replay per cache geometry (and with a store, warm rows replay
   nothing at all). *)
let perf_of ?(cls = 4) name (p : Program.t) =
  let r =
    D.run_exn
      (D.config ~cls
         ~machines:[ Machine.cache1; Machine.cache2 ]
         (D.Source_program { name; program = p }))
  in
  let m1, m2 =
    two_machine_rows ~where:"Perf.perf_of" ~program:name r.D.measured
  in
  {
    name;
    seconds_orig = m1.D.original_run.Measure.seconds;
    seconds_final = m1.D.transformed_run.Measure.seconds;
    speedup = m1.D.speedup;
    speedup2 = m2.D.speedup;
  }

let table3_rows ?(n = 128) ?cls ?jobs () =
  let kernels =
    [
      ("arc2d (adi kernel)", S.Kernels.adi_fragment n);
      ("dnasa7 (gmtry)", S.Kernels.gmtry n);
      ("dnasa7 (vpenta)", S.Kernels.vpenta n);
      ("dnasa7 (mxm)", S.Kernels.matmul ~order:"IJK" n);
      ("cholesky", S.Kernels.cholesky n);
      ("lu", S.Kernels.lu (max 16 (n / 2)));
      ("simple", S.Kernels.simple_hydro n);
      ("jacobi2d", S.Kernels.jacobi2d n);
      ("dnasa7 (btrix)", S.Kernels.btrix (max 16 (n / 2)));
      ("swm256 (fragment)", S.Kernels.shallow_water n);
      ("transpose", S.Kernels.transpose n);
      ("erlebacher", S.Kernels.erlebacher_hand (max 16 (n / 2)));
      ( "wave (synthetic)",
        match S.Programs.find "wave" with
        | Some e -> S.Programs.program_of ~n:(max 16 (n / 3)) e
        | None -> S.Kernels.transpose n );
      ( "appsp (synthetic)",
        match S.Programs.find "appsp" with
        | Some e -> S.Programs.program_of ~n:(max 16 (n / 3)) e
        | None -> S.Kernels.transpose n );
    ]
  in
  Pool.map ?jobs (fun (name, p) -> perf_of ?cls name p) kernels

let table3 ?n ?cls ?jobs () =
  let rows = table3_rows ?n ?cls ?jobs () in
  Report.render
    ~title:"Table 3: Performance Results (modelled seconds, cache1 machine)"
    ~note:
      "Speedup = original/transformed under the cycle model (ops + hits + \
       25-cycle miss penalty) on cache1 (RS/6000-like, 64KB) and cache2 \
       (i860-like, 8KB). At interpreter-feasible sizes the large cache1 \
       hides some effects the paper saw at full size; cache2 exposes \
       them. Paper: arc2d 2.15, gmtry 8.68, vpenta 1.29, simple 1.13."
    [ Report.Left ]
    [ "Program"; "Original(s)"; "Transformed(s)"; "Speedup1"; "Speedup2" ]
    (List.map
       (fun r ->
         [
           r.name;
           Printf.sprintf "%.4f" r.seconds_orig;
           Printf.sprintf "%.4f" r.seconds_final;
           Printf.sprintf "%.2f" r.speedup;
           Printf.sprintf "%.2f" r.speedup2;
         ])
       rows)

type hit_row = {
  name : string;
  opt1_orig : float;
  opt1_final : float;
  opt2_orig : float;
  opt2_final : float;
  whole1_orig : float;
  whole1_final : float;
  whole2_orig : float;
  whole2_final : float;
  whole1_tuned : float option;
}

let table4_rows ?(n = 32) ?cls:_ ?jobs ?(tune = false) (rows : Table2.row list) =
  let rows =
    (* Each program version is interpreted once and its trace replayed
       on both geometries, rows in parallel; the optimizer already ran
       in Table 2, so its output rides in as a [Provided] transform. *)
    Pool.map ?jobs
      (fun (r : Table2.row) ->
        if r.Table2.nests = 0 then None
        else begin
          let res =
            D.run_exn
              (D.config
                 ~params:[ ("N", n) ]
                 ~transform:
                   (D.Provided
                      {
                        transformed = r.Table2.transformed;
                        optimized_labels = r.Table2.optimized_labels;
                      })
                 ~machines:[ Machine.cache1; Machine.cache2 ]
                 ~use_labels:true
                 (D.Source_program
                    {
                      name = r.Table2.entry.S.Programs.name;
                      program = r.Table2.original;
                    }))
          in
          let m1, m2 =
            two_machine_rows ~where:"Perf.table4_rows"
              ~program:r.Table2.entry.S.Programs.name res.D.measured
          in
          let o1 = m1.D.original_run and f1 = m1.D.transformed_run in
          let o2 = m2.D.original_run and f2 = m2.D.transformed_run in
          (* Opt-in like Table 2's Tuned% column, but at this table's
             geometry (params N=n), so the tuned hit rate is comparable
             to the Whole1 columns beside it. *)
          let whole1_tuned =
            if not tune then None
            else
              match
                Tune.run ~spec:Tune.quick_spec
                  ~params:[ ("N", n) ]
                  ~machine:Machine.cache1
                  ~name:r.Table2.entry.S.Programs.name r.Table2.original
              with
              | Error _ -> None
              | Ok t ->
                Option.bind t.Tune.t_winner (fun (w : Tune.row) ->
                    Option.map (fun m -> 100.0 -. m) w.Tune.simulated_miss)
          in
          Some
            {
              name = res.D.name;
              opt1_orig = Measure.hit_rate o1.Measure.optimized;
              opt1_final = Measure.hit_rate f1.Measure.optimized;
              opt2_orig = Measure.hit_rate o2.Measure.optimized;
              opt2_final = Measure.hit_rate f2.Measure.optimized;
              whole1_orig = Measure.hit_rate o1.Measure.whole;
              whole1_final = Measure.hit_rate f1.Measure.whole;
              whole2_orig = Measure.hit_rate o2.Measure.whole;
              whole2_final = Measure.hit_rate f2.Measure.whole;
              whole1_tuned;
            }
        end)
      rows
  in
  List.filter_map Fun.id rows

let table4 ?n ?cls ?jobs ?tune rows =
  let hit_rows = table4_rows ?n ?cls ?jobs ?tune rows in
  Report.render
    ~title:"Table 4: Simulated Cache Hit Rates (cold misses excluded)"
    ~note:
      "cache1 = 64KB 4-way 128B lines (RS/6000); cache2 = 8KB 2-way 32B \
       lines (i860). Optimized = accesses in nests the compiler changed. \
       Whole1 Tuned = the quick transformation-search winner's whole-program \
       hit rate on cache1 (with ~tune, else -)."
    [ Report.Left ]
    [
      "Program"; "Opt1 Orig"; "Opt1 Final"; "Opt2 Orig"; "Opt2 Final";
      "Whole1 Orig"; "Whole1 Final"; "Whole1 Tuned"; "Whole2 Orig";
      "Whole2 Final";
    ]
    (List.map
       (fun r ->
         [
           r.name;
           Report.fmt_pct r.opt1_orig;
           Report.fmt_pct r.opt1_final;
           Report.fmt_pct r.opt2_orig;
           Report.fmt_pct r.opt2_final;
           Report.fmt_pct r.whole1_orig;
           Report.fmt_pct r.whole1_final;
           (match r.whole1_tuned with
           | Some h -> Report.fmt_pct h
           | None -> "-");
           Report.fmt_pct r.whole2_orig;
           Report.fmt_pct r.whole2_final;
         ])
       hit_rows)
