module C = Locality_core
module S = Locality_suite
module D = Locality_driver.Driver
module Measure = Locality_interp.Measure
module Machine = Locality_cachesim.Machine

(* Permutation-only optimizer: run Permute on every top-level nest. *)
let permute_only ?(cls = 4) (p : Program.t) =
  Program.map_body
    (List.map (function
      | Loop.Loop l when Loop.depth l >= 2 ->
        Loop.Loop (C.Permute.run ~cls l).C.Permute.nest
      | n -> n))
    p

(* Permutation plus cross-nest fusion, but no distribution. *)
let permute_fuse ?(cls = 4) (p : Program.t) =
  let p = permute_only ~cls p in
  Program.map_body
    (fun b -> (C.Fusion.fuse_block ~cls ~outer:[] b).C.Fusion.block)
    p

let speed config p p' =
  let r =
    D.run_exn
      (D.config
         ~transform:(D.Provided { transformed = p'; optimized_labels = [] })
         ~machines:[ config ]
         (D.Source_program { name = "ablation"; program = p }))
  in
  (List.hd r.D.measured).D.speedup

let transforms ?(n = 48) () =
  let kernels =
    [
      ("adi (fuse enables perm)", S.Kernels.adi_fragment n);
      ("cholesky (needs dist)", S.Kernels.cholesky n);
      ("matmul IJK (perm alone)", S.Kernels.matmul ~order:"IJK" n);
      ("erlebacher (perm + fuse)", S.Kernels.erlebacher_hand (n / 2 * 2));
      ("simple (perm x2 + fuse)", S.Kernels.simple_hydro n);
    ]
  in
  let rows =
    List.map
      (fun (name, p) ->
        let cfg = Machine.cache2 in
        [
          name;
          Printf.sprintf "%.2f" (speed cfg p (permute_only p));
          Printf.sprintf "%.2f" (speed cfg p (permute_fuse p));
          Printf.sprintf "%.2f"
            (speed cfg p (fst (C.Compound.run_program ~cls:4 p)));
        ])
      kernels
  in
  Report.render
    ~title:"Ablation: contribution of each transformation (cache2 speedups)"
    ~note:
      "Permutation does most of the work (the paper's expectation); fusion \
       and distribution unlock the nests permutation alone cannot touch."
    [ Report.Left ]
    [ "Kernel"; "Permute"; "+Fusion"; "Compound" ]
    rows

let tiling ?(n = 64) () =
  let kernels =
    [
      ("matmul JKI, band {J,K}", S.Kernels.matmul ~order:"JKI" n, [ "J"; "K" ]);
      ("transpose, band {I,J}", S.Kernels.transpose n, [ "I"; "J" ]);
    ]
  in
  let rows =
    List.filter_map
      (fun (name, p, band) ->
        match Program.top_loops p with
        | [ nest ] ->
          let base = Measure.measure ~config:Machine.cache2 p in
          let rate_of tile =
            match C.Tiling.tile ~sizes:tile nest ~band with
            | None -> "-"
            | Some tiled ->
              let p' = Program.map_body (fun _ -> [ Loop.Loop tiled ]) p in
              let r = Measure.measure ~config:Machine.cache2 p' in
              Printf.sprintf "%.2f" (Measure.hit_rate r.Measure.whole)
          in
          Some
            ([
               name;
               Printf.sprintf "%.2f" (Measure.hit_rate base.Measure.whole);
             ]
            @ List.map rate_of [ 4; 8; 16; 32 ])
        | _ -> None)
      kernels
  in
  Report.render
    ~title:
      (Printf.sprintf
         "Ablation: tiling on top of memory order (cache2 hit %%, N=%d)" n)
    ~note:
      "Section 6: tiling captures the long-term reuse memory order leaves \
       on outer loops; transpose is the case reordering alone cannot help."
    [ Report.Left ]
    [ "Kernel"; "untiled"; "T=4"; "T=8"; "T=16"; "T=32" ]
    rows

let reversal () =
  let count_with try_reversal =
    List.fold_left
      (fun (ok, total) (e : S.Programs.entry) ->
        let p = S.Programs.program_of ~n:12 e in
        let _, st = C.Compound.run_program ~cls:4 ~try_reversal p in
        ( ok
          + List.length
              (List.filter
                 (fun (s : C.Compound.nest_stat) -> s.C.Compound.final_inner_ok)
                 st.C.Compound.nests),
          total + List.length st.C.Compound.nests ))
      (0, 0) S.Programs.all
  in
  let with_rev, total = count_with true in
  let without_rev, _ = count_with false in
  let reversed_used =
    (* Nests where reversal was actually applied. *)
    List.fold_left
      (fun acc (e : S.Programs.entry) ->
        let p = S.Programs.program_of ~n:12 e in
        let _, st = C.Compound.run_program ~cls:4 p in
        acc
        + List.length
            (List.filter
               (fun (s : C.Compound.nest_stat) -> s.C.Compound.reversed > 0)
               st.C.Compound.nests))
      0 S.Programs.all
  in
  Report.render
    ~title:"Ablation: loop reversal as an enabler"
    ~note:
      "The paper integrated reversal but found it never improved locality \
       on its suite; the synthetic suite reproduces that."
    [ Report.Left ]
    [ "Configuration"; "inner loops in memory order"; "of" ]
    [
      [ "with reversal"; string_of_int with_rev; string_of_int total ];
      [ "without reversal"; string_of_int without_rev; string_of_int total ];
      [ "nests where reversal applied"; string_of_int reversed_used; "" ];
    ]

let step3 ?(n = 64) () =
  let p = S.Kernels.matmul ~order:"JKI" n in
  let nest = List.hd (Program.top_loops p) in
  let row label q =
    let r = Measure.measure ~config:Machine.cache2 q in
    let res = Locality_interp.Fastexec.run q in
    [
      label;
      string_of_int res.Locality_interp.Fastexec.accesses;
      Printf.sprintf "%.2f"
        (float_of_int res.Locality_interp.Fastexec.accesses
        /. float_of_int res.Locality_interp.Fastexec.ops);
      Printf.sprintf "%.4f" r.Measure.seconds;
    ]
  in
  let rows = ref [ row "memory order (JKI)" p ] in
  (let sr = C.Scalar_replacement.apply nest in
   if sr.C.Scalar_replacement.replaced > 0 then
     rows :=
       !rows
       @ [
           row "+ scalar replacement"
             (Program.map_body
                (fun _ -> [ Loop.Loop sr.C.Scalar_replacement.nest ])
                p);
         ]);
  (match C.Unroll.unroll_and_jam nest ~loop:"J" ~factor:4 with
  | Some block -> (
    let pu = Program.map_body (fun _ -> block) p in
    rows := !rows @ [ row "+ unroll-and-jam J x4" pu ];
    (* scalar-replace the jammed main nest too *)
    match block with
    | Loop.Loop main :: rest ->
      let sr = C.Scalar_replacement.apply main in
      if sr.C.Scalar_replacement.replaced > 0 then
        rows :=
          !rows
          @ [
              row "+ both"
                (Program.map_body
                   (fun _ ->
                     Loop.Loop sr.C.Scalar_replacement.nest :: rest)
                   p);
            ]
    | _ -> ())
  | None -> ());
  (* The balance model's own pick, under a 16-register budget. *)
  (let best, _ = C.Unroll.choose_factor nest ~loop:"J" in
   if best.C.Unroll.factor >= 2 then
     match C.Unroll.unroll_and_jam nest ~loop:"J" ~factor:best.C.Unroll.factor with
     | Some (Loop.Loop main :: rest) ->
       let sr = C.Scalar_replacement.apply main in
       rows :=
         !rows
         @ [
             row
               (Printf.sprintf "+ both, balance-chosen u=%d (%d regs)"
                  best.C.Unroll.factor best.C.Unroll.scalars)
               (Program.map_body
                  (fun _ -> Loop.Loop sr.C.Scalar_replacement.nest :: rest)
                  p);
           ]
     | Some _ | None -> ());
  Report.render
    ~title:
      (Printf.sprintf
         "Ablation: step-3 preview — register reuse on matmul (N=%d)" n)
    ~note:
      "The paper's framework step 3 ([CCK90]): unroll-and-jam exposes
       cross-iteration reuse; scalar replacement keeps invariant
       references in registers; Unroll.choose_factor picks the factor by
       the static balance model. Accesses/FLOP is the register-pressure
       payoff; cache behaviour is unchanged by design."
    [ Report.Left ]
    [ "Version"; "Mem accesses"; "Acc/FLOP"; "Modelled(s) cache2" ]
    !rows

let interference ?(n = 128) () =
  let p = S.Kernels.shallow_water n in
  let compound lim =
    D.run_exn
      (D.config ~cls:4
         ~transform:(D.Compound { try_reversal = None; interference_limit = lim })
         ~machines:[ Machine.cache1 ]
         (D.Source_program { name = "swm-fragment"; program = p }))
  in
  let unguarded = compound None and guarded = compound (Some 4) in
  let fused = unguarded.D.transformed
  and guarded = guarded.D.transformed in
  let row label q =
    let r = Measure.measure ~config:Machine.cache1 q in
    [
      label;
      Printf.sprintf "%.4f" r.Measure.seconds;
      Printf.sprintf "%.2f" (Measure.hit_rate r.Measure.whole);
    ]
  in
  Report.render
    ~title:
      (Printf.sprintf
         "Ablation: fusion interference guard (swm fragment, N=%d, cache1)" n)
    ~note:
      "Unguarded fusion merges six arrays into one body and conflicts in        the 4-way cache — the degradation mechanism the paper reports in        Section 5.5; limiting fused bodies to the associativity avoids it."
    [ Report.Left ]
    [ "Version"; "Modelled(s)"; "Hit%" ]
    [ row "original (3 nests)" p; row "fused (default)" fused;
      row "fusion with guard=4" guarded ]

let parallelism () =
  let rows =
    List.filter_map
      (fun (name, mk) ->
        let p = mk 16 in
        let p', _ = C.Compound.run_program ~cls:4 p in
        let sum reports =
          List.fold_left
            (fun (d, op, isq) (r : C.Parallel.report) ->
              ( d + r.C.Parallel.doall,
                op + (if r.C.Parallel.outer_parallel then 1 else 0),
                isq + if r.C.Parallel.inner_sequential then 1 else 0 ))
            (0, 0, 0) reports
        in
        let d0, op0, is0 = sum (C.Parallel.program_summary p) in
        let d1, op1, is1 = sum (C.Parallel.program_summary p') in
        Some
          [
            name;
            Printf.sprintf "%d -> %d" d0 d1;
            Printf.sprintf "%d -> %d" op0 op1;
            Printf.sprintf "%d -> %d" is0 is1;
          ])
      S.Kernels.all
  in
  Report.render
    ~title:"Ablation: locality transformations vs parallelism"
    ~note:
      "DOALL = loops carrying no true dependence; outer-par = nests whose        outermost loop is DOALL; inner-seq = nests whose innermost loop        carries a recurrence (the paper's Simple trade-off, recoverable        with unroll-and-jam)."
    [ Report.Left ]
    [ "Kernel"; "DOALL loops"; "outer-parallel nests"; "inner-sequential nests" ]
    rows

let multilevel ?(n = 96) () =
  let p = S.Kernels.matmul ~order:"JKI" n in
  let nest = List.hd (Program.top_loops p) in
  let measure label nest' =
    let p' = Program.map_body (fun _ -> [ Loop.Loop nest' ]) p in
    let r = Measure.measure_hierarchy p' in
    [
      label;
      Printf.sprintf "%.2f" r.Measure.l1_rate;
      Printf.sprintf "%.2f" r.Measure.l2_rate;
      Printf.sprintf "%.2f" r.Measure.amat;
    ]
  in
  let rows = ref [ measure "untiled (JKI)" nest ] in
  (match C.Tiling.tile ~sizes:8 nest ~band:[ "J"; "K" ] with
  | Some t1 ->
    rows := !rows @ [ measure "one level, 8x8" t1 ];
    (match C.Tiling.tile ~suffix:"_T2" ~sizes:32 nest ~band:[ "J"; "K" ] with
    | Some t2 -> (
      (* Tile the inner band of the L2 tiling again at the L1 size; the
         original band's permutability (established above) makes the
         second level legal. *)
      match C.Tiling.tile ~check:false ~sizes:8 t2 ~band:[ "J"; "K" ] with
      | Some t3 -> rows := !rows @ [ measure "two levels, 32 over 8" t3 ]
      | None -> ())
    | None -> ())
  | None -> ());
  Report.render
    ~title:
      (Printf.sprintf
         "Ablation: multi-level tiling on an L1+L2 hierarchy (matmul N=%d)" n)
    ~note:
      "The paper's framework note: higher degrees of tiling exploit        multi-level caches. AMAT model: L1 1 cycle, +8 for L2, +40 for        memory."
    [ Report.Left ]
    [ "Version"; "L1 hit%"; "L2 hit%"; "AMAT" ]
    !rows

let tilesize () =
  let module TS = Locality_cachesim.Tilesize in
  let cfg = Machine.cache2 in
  let sweep = [ 8; 16; 32 ] in
  let rows =
    List.map
      (fun n ->
        let p = S.Kernels.matmul ~order:"JKI" n in
        let nest = List.hd (Program.top_loops p) in
        (* Fully blocked matmul: each (J_T,K_T,I_T) works on T×T tiles
           of all three arrays, so the resident set is the square tile
           the LRW model prices. *)
        let rate tile =
          match C.Tiling.tile ~sizes:tile nest ~band:[ "J"; "K"; "I" ] with
          | None -> "-"
          | Some tiled ->
            let p' = Program.map_body (fun _ -> [ Loop.Loop tiled ]) p in
            let r = Measure.measure ~config:cfg p' in
            Printf.sprintf "%.2f" (Measure.hit_rate r.Measure.whole)
        in
        let base = Measure.measure ~config:cfg p in
        (* Column-major: the stride between consecutive columns is the
           leading dimension, N. *)
        let v = TS.choose cfg ~elem_size:8 ~stride:n in
        [
          string_of_int n;
          Printf.sprintf "%.2f" (Measure.hit_rate base.Measure.whole);
        ]
        @ List.map rate sweep
        @ [ Printf.sprintf "T=%d" v.TS.tile; rate v.TS.tile ])
      [ 60; 64; 96; 128 ]
  in
  Report.render
    ~title:
      "Ablation: automatic tile-size selection (blocked matmul, cache2 hit %)"
    ~note:
      "Tilesize.choose picks the largest self-interference-free tile        ([LRW91]'s criterion, exact set-mapping check, one way per set        reserved for the streaming references). Power-of-two N is the        pathological case: fixed sweep sizes conflict, the auto size        dodges them."
    [ Report.Left ]
    ([ "N"; "untiled" ]
    @ List.map (fun t -> Printf.sprintf "T=%d" t) sweep
    @ [ "auto"; "auto hit%" ])
    rows

let reuse_profile ?(n = 48) () =
  let module RP = Locality_interp.Reuse_profile in
  let module Reuse = Locality_cachesim.Reuse in
  let lines_i860 = Machine.cache2.Locality_cachesim.Cache.size_bytes / 32 in
  let rows =
    List.map
      (fun order ->
        let p = S.Kernels.matmul ~order n in
        let r = RP.profile ~line_bytes:32 p in
        let sim = Measure.measure ~config:Machine.cache2 p in
        [
          order;
          Printf.sprintf "%.0f" (Reuse.mean_distance r);
          Printf.sprintf "%.2f" (Reuse.predicted_hit_rate r ~lines:lines_i860);
          Printf.sprintf "%.2f" (Measure.hit_rate sim.Measure.whole);
        ])
      S.Kernels.matmul_orders
  in
  Report.render
    ~title:
      (Printf.sprintf
         "Ablation: reuse-distance profiles of matmul orders (N=%d)" n)
    ~note:
      "Mean reuse distance explains the ranking; the fully-associative        prediction upper-bounds the simulated 2-way cache2 rate (the gap        is conflict misses)."
    [ Report.Left ]
    [ "Order"; "MeanDist"; "FA-LRU pred%"; "2-way sim%" ]
    rows

let cls_sensitivity () =
  let kernels =
    [
      ("matmul", S.Kernels.matmul ~order:"IJK" 32);
      ("cholesky", S.Kernels.cholesky 32);
      ("transpose", S.Kernels.transpose 32);
      ("jacobi2d", S.Kernels.jacobi2d 32);
    ]
  in
  let rows =
    List.map
      (fun (name, p) ->
        let nest = List.hd (Program.top_loops p) in
        let order cls =
          String.concat "" (C.Memorder.order (C.Memorder.compute ~cls nest))
        in
        [ name; order 2; order 4; order 16 ])
      kernels
  in
  Report.render
    ~title:"Ablation: cache-line-size sensitivity of memory order"
    ~note:
      "The cost model's only machine parameter is cls; the chosen order is \
       stable across realistic line sizes (the paper's machine-independence \
       claim)."
    [ Report.Left ]
    [ "Kernel"; "cls=2"; "cls=4"; "cls=16" ]
    rows
