(** Batched address traces.

    A chunked trace buffer decouples trace generation from cache
    simulation: the interpreter appends flat packed records (address,
    write bit, interned statement-label id — see
    {!Locality_cachesim.Chunk}) and the buffer hands full blocks to a
    sink. Compared with the legacy one-observer-closure-call-per-access
    path this removes the hot-path dispatch, and — when the sink captures
    the chunks — lets a program be interpreted once and its trace
    replayed against any number of cache configurations. *)

module Chunk = Locality_cachesim.Chunk

val default_chunk_records : int
(** Records per chunk when not overridden (65536). *)

type t
(** A trace buffer with a label-interning table. *)

val create : ?chunk_records:int -> sink:(Chunk.t -> unit) -> unit -> t
(** The sink borrows the chunk only for the duration of the call; the
    buffer is reused afterwards. A sink that keeps the data must
    {!Chunk.copy} it. *)

val intern : t -> string -> int
(** Stable id for a statement label; meant to be called once per
    statement at compile time, not per access. *)

val labels : t -> string array
(** Interned labels, indexed by id. *)

val record : t -> label:int -> addr:int -> write:bool -> unit
(** Append one access record, flushing to the sink when the current
    chunk is full. *)

val flush : t -> unit
(** Push any buffered records to the sink. Call after the producing run
    completes; {!capturing}'s finish function does this itself. *)

val total : t -> int
(** Records ever appended. *)

val observer : t -> Exec.observer
(** Adapter for the legacy observer interface: every observed access is
    recorded (labels interned per access — slower than the buffered
    interpreter mode; used by tests and the tree-walking {!Exec}). *)

type captured = {
  chunks : Chunk.t list;  (** in recording order, independently owned *)
  trace_labels : string array;  (** interned labels by id *)
  records : int;
}

val capturing : ?chunk_records:int -> unit -> t * (unit -> captured)
(** A buffer whose sink retains copies of every chunk, and a finish
    function that flushes and returns the captured trace. *)

val iter_chunks : captured -> (Chunk.t -> unit) -> unit
val iter : captured -> (label:int -> addr:int -> write:bool -> unit) -> unit
