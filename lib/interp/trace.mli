(** Batched address traces.

    A chunked trace buffer decouples trace generation from cache
    simulation: the interpreter appends flat packed records (address,
    write bit, interned statement-label id — see
    {!Locality_cachesim.Chunk}) and the buffer hands full blocks to a
    sink. Compared with the legacy one-observer-closure-call-per-access
    path this removes the hot-path dispatch, and — when the sink captures
    the chunks — lets a program be interpreted once and its trace
    replayed against any number of cache configurations. *)

module Chunk = Locality_cachesim.Chunk

val default_chunk_records : int
(** Records per chunk when not overridden (65536). *)

type t
(** A trace buffer with a label-interning table. *)

val create : ?chunk_records:int -> sink:(Chunk.t -> unit) -> unit -> t
(** The sink borrows the chunk only for the duration of the call; the
    buffer is reused afterwards. A sink that keeps the data must
    {!Chunk.copy} it. *)

val intern : t -> string -> int
(** Stable id for a statement label; meant to be called once per
    statement at compile time, not per access. *)

val labels : t -> string array
(** Interned labels, indexed by id. *)

val record : t -> label:int -> addr:int -> write:bool -> unit
(** Append one access record, flushing to the sink when the current
    chunk is full. *)

val flush : t -> unit
(** Push any buffered records to the sink. Call after the producing run
    completes; {!capturing}'s finish function does this itself. *)

val total : t -> int
(** Records ever appended. *)

val observer : t -> Exec.observer
(** Adapter for the legacy observer interface: every observed access is
    recorded (labels interned per access — slower than the buffered
    interpreter mode; used by tests and the tree-walking {!Exec}). *)

type captured = {
  chunks : Chunk.t list;  (** in recording order, independently owned *)
  trace_labels : string array;  (** interned labels by id *)
  records : int;
}

val capturing : ?chunk_records:int -> unit -> t * (unit -> captured)
(** A buffer whose sink retains copies of every chunk, and a finish
    function that flushes and returns the captured trace. *)

val iter_chunks : captured -> (Chunk.t -> unit) -> unit
val iter : captured -> (label:int -> addr:int -> write:bool -> unit) -> unit

(** {1 v2: run-compressed trace buffers}

    The run-aware buffer behind {!Fastexec.run_traced_runs}: per-access
    records and strided-run group descriptors share one
    {!Locality_cachesim.Runchunk} stream, so a qualifying innermost-loop
    instance costs [1 + 2*nrefs] words instead of [trip * nrefs]
    records. Capacity is counted in stream words. *)

module Runchunk = Locality_cachesim.Runchunk

type runbuf

val run_create :
  ?chunk_words:int -> sink:(Runchunk.t -> unit) -> unit -> runbuf
(** Same sink-borrowing contract as {!create}. *)

val run_intern : runbuf -> string -> int
val run_labels : runbuf -> string array

val run_record : runbuf -> label:int -> addr:int -> write:bool -> unit
(** Append one per-access record (the fallback for loops that do not
    qualify for run compression). *)

val run_group :
  runbuf -> trip:int -> packed:int array -> bases:int array ->
  strides:int array -> int -> unit
(** [run_group t ~trip ~packed ~bases ~strides n] appends one
    [n]-reference strided-run group; [packed.(j)] is a {!Chunk}-packed
    record with a zero address field (label id and write flag,
    precomputed at closure-compile time), [bases]/[strides] the byte
    base address and per-iteration byte stride of each reference for
    this loop instance. Groups that cannot fit even an empty chunk
    degrade to per-access records, so emission never fails. *)

val run_flush : runbuf -> unit
val run_total : runbuf -> int
(** Logical accesses represented (groups expanded). *)

val run_runs : runbuf -> int
val run_words : runbuf -> int

type captured_runs = {
  run_chunks : Runchunk.t list;  (** in recording order, independently owned *)
  run_trace_labels : string array;
  run_records : int;  (** logical accesses, groups expanded *)
  run_groups : int;
  run_stream_words : int;
}

val run_capturing :
  ?chunk_words:int -> unit -> runbuf * (unit -> captured_runs)

val iter_run_chunks : captured_runs -> (Runchunk.t -> unit) -> unit

val iter_runs :
  captured_runs -> (label:int -> addr:int -> write:bool -> unit) -> unit
(** Expanded access sequence, identical to what per-access capture of
    the same program records. *)
