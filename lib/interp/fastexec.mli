(** A compiled executor: the program is translated once into nested
    closures with variables resolved to slots and array strides
    precomputed, then run. Several times faster than the tree-walking
    {!Exec} and bit-identical to it (verified by the test suite), which
    makes larger simulated workloads practical. *)

type result = {
  arrays : (string * float array) list;
  ops : int;
  accesses : int;
  iterations : int;
}

val run :
  ?observer:Exec.observer ->
  ?init:(string -> int -> float) ->
  ?params:(string * int) list ->
  Program.t ->
  result
(** Drop-in equivalent of {!Exec.run}. *)

val run_traced :
  ?init:(string -> int -> float) ->
  ?params:(string * int) list ->
  Trace.t ->
  Program.t ->
  result
(** Like {!run}, but every array access is appended to the given trace
    buffer instead of dispatched through an observer closure: statement
    labels are interned once at compile time, so the per-access cost is
    a packed-record store. The buffer is flushed before returning. *)

val run_traced_runs :
  ?init:(string -> int -> float) ->
  ?params:(string * int) list ->
  Trace.runbuf ->
  Program.t ->
  result
(** Like {!run_traced}, but emitting the v2 run-compressed stream:
    innermost loops whose body has no inner control flow and whose
    array references all advance by a loop-invariant byte stride emit
    one strided-run group descriptor per loop instance (the body then
    executes with silent accesses); everything else falls back to
    per-access records in the same stream. The expanded stream is
    access-for-access identical to what {!run_traced} records. *)
