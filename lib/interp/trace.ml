module Chunk = Locality_cachesim.Chunk
module Runchunk = Locality_cachesim.Runchunk

let default_chunk_records = 65536

(* Statement-label interning, shared by both buffer formats. *)
module Interner = struct
  type t = {
    tbl : (string, int) Hashtbl.t;
    mutable rev_labels : string list;  (* interned labels, newest first *)
    mutable nlabels : int;
  }

  let create () = { tbl = Hashtbl.create 64; rev_labels = []; nlabels = 0 }

  let intern t label =
    match Hashtbl.find_opt t.tbl label with
    | Some id -> id
    | None ->
      let id = t.nlabels in
      if id > Chunk.max_label then
        invalid_arg "Trace.intern: too many distinct labels";
      Hashtbl.replace t.tbl label id;
      t.rev_labels <- label :: t.rev_labels;
      t.nlabels <- t.nlabels + 1;
      id

  let labels t =
    let a = Array.make t.nlabels "" in
    List.iteri (fun i l -> a.(t.nlabels - 1 - i) <- l) t.rev_labels;
    a
end

type t = {
  cap : int;
  mutable chunk : Chunk.t;
  sink : Chunk.t -> unit;
  names : Interner.t;
  mutable total : int;
}

let create ?(chunk_records = default_chunk_records) ~sink () =
  {
    cap = chunk_records;
    chunk = Chunk.create chunk_records;
    sink;
    names = Interner.create ();
    total = 0;
  }

let intern t label = Interner.intern t.names label
let labels t = Interner.labels t.names

let flush t =
  if t.chunk.Chunk.len > 0 then begin
    t.sink t.chunk;
    Chunk.reset t.chunk
  end

let record t ~label ~addr ~write =
  if Chunk.is_full t.chunk then flush t;
  Chunk.push t.chunk (Chunk.pack ~addr ~write ~label);
  t.total <- t.total + 1

let total t = t.total

let observer t =
  {
    Exec.on_access =
      (fun ~label ~addr ~write -> record t ~label:(intern t label) ~addr ~write);
    on_stmt = (fun ~label:_ -> ());
  }

type captured = {
  chunks : Chunk.t list;
  trace_labels : string array;
  records : int;
}

let capturing ?chunk_records () =
  let acc = ref [] in
  let t =
    create ?chunk_records ~sink:(fun c -> acc := Chunk.copy c :: !acc) ()
  in
  let finish () =
    flush t;
    { chunks = List.rev !acc; trace_labels = labels t; records = t.total }
  in
  (t, finish)

let iter_chunks cap f = List.iter f cap.chunks
let iter cap f = List.iter (Chunk.iter f) cap.chunks

(* ------------------------------------------------ v2: run buffers --- *)

(* The run-aware buffer behind [Fastexec.run_traced_runs]: per-access
   records and strided-run group descriptors share one [Runchunk]
   stream. The capacity is in words, so a group costs 1 + 2*nrefs slots
   against it rather than trip*nrefs. *)

type runbuf = {
  rcap : int;
  mutable rchunk : Runchunk.t;
  rsink : Runchunk.t -> unit;
  rnames : Interner.t;
  mutable rtotal : int;  (* logical accesses represented *)
  mutable rruns : int;  (* group descriptors emitted *)
  mutable rwords : int;  (* stream words emitted *)
}

let run_create ?(chunk_words = default_chunk_records) ~sink () =
  {
    rcap = chunk_words;
    rchunk = Runchunk.create chunk_words;
    rsink = sink;
    rnames = Interner.create ();
    rtotal = 0;
    rruns = 0;
    rwords = 0;
  }

let run_intern t label = Interner.intern t.rnames label
let run_labels t = Interner.labels t.rnames

let run_flush t =
  if t.rchunk.Runchunk.len > 0 then begin
    t.rsink t.rchunk;
    Runchunk.reset t.rchunk
  end

let run_record t ~label ~addr ~write =
  if Runchunk.room t.rchunk = 0 then run_flush t;
  Runchunk.push_access t.rchunk (Chunk.pack ~addr ~write ~label);
  t.rtotal <- t.rtotal + 1;
  t.rwords <- t.rwords + 1

(* [packed.(j)] carries label and write flag with a zero address field
   (precomputed at closure-compile time); [bases]/[strides] are filled
   per loop instance. A group too large for even an empty chunk — more
   references in one loop body than half the chunk capacity — degrades
   to per-access records, so emission never fails. *)
let run_group t ~trip ~packed ~bases ~strides n =
  if n = 0 || trip = 0 then ()
  else begin
    let need = Runchunk.group_words ~nrefs:n in
    if need > t.rcap || trip > Runchunk.max_trip then begin
      for it = 0 to trip - 1 do
        for j = 0 to n - 1 do
          if Runchunk.room t.rchunk = 0 then run_flush t;
          let addr = bases.(j) + (it * strides.(j)) in
          if addr < 0 || addr > Chunk.max_addr then
            invalid_arg "Trace.run_group: address out of range";
          Runchunk.push_access t.rchunk (packed.(j) lor addr);
          t.rwords <- t.rwords + 1
        done
      done;
      t.rtotal <- t.rtotal + (trip * n)
    end
    else begin
      if Runchunk.room t.rchunk < need then run_flush t;
      Runchunk.push_group t.rchunk ~trip ~packed ~bases ~strides n;
      t.rtotal <- t.rtotal + (trip * n);
      t.rruns <- t.rruns + 1;
      t.rwords <- t.rwords + need
    end
  end

let run_total t = t.rtotal
let run_runs t = t.rruns
let run_words t = t.rwords

type captured_runs = {
  run_chunks : Runchunk.t list;
  run_trace_labels : string array;
  run_records : int;  (** logical accesses, groups expanded *)
  run_groups : int;
  run_stream_words : int;
}

let run_capturing ?chunk_words () =
  let acc = ref [] in
  let t =
    run_create ?chunk_words ~sink:(fun c -> acc := Runchunk.copy c :: !acc) ()
  in
  let finish () =
    run_flush t;
    {
      run_chunks = List.rev !acc;
      run_trace_labels = run_labels t;
      run_records = t.rtotal;
      run_groups = t.rruns;
      run_stream_words = t.rwords;
    }
  in
  (t, finish)

let iter_run_chunks cap f = List.iter f cap.run_chunks

let iter_runs cap f = List.iter (fun rc -> Runchunk.iter rc f) cap.run_chunks
