module Chunk = Locality_cachesim.Chunk

let default_chunk_records = 65536

type t = {
  cap : int;
  mutable chunk : Chunk.t;
  sink : Chunk.t -> unit;
  tbl : (string, int) Hashtbl.t;
  mutable rev_labels : string list;  (* interned labels, newest first *)
  mutable nlabels : int;
  mutable total : int;
}

let create ?(chunk_records = default_chunk_records) ~sink () =
  {
    cap = chunk_records;
    chunk = Chunk.create chunk_records;
    sink;
    tbl = Hashtbl.create 64;
    rev_labels = [];
    nlabels = 0;
    total = 0;
  }

let intern t label =
  match Hashtbl.find_opt t.tbl label with
  | Some id -> id
  | None ->
    let id = t.nlabels in
    if id > Chunk.max_label then
      invalid_arg "Trace.intern: too many distinct labels";
    Hashtbl.replace t.tbl label id;
    t.rev_labels <- label :: t.rev_labels;
    t.nlabels <- t.nlabels + 1;
    id

let labels t =
  let a = Array.make t.nlabels "" in
  List.iteri (fun i l -> a.(t.nlabels - 1 - i) <- l) t.rev_labels;
  a

let flush t =
  if t.chunk.Chunk.len > 0 then begin
    t.sink t.chunk;
    Chunk.reset t.chunk
  end

let record t ~label ~addr ~write =
  if Chunk.is_full t.chunk then flush t;
  Chunk.push t.chunk (Chunk.pack ~addr ~write ~label);
  t.total <- t.total + 1

let total t = t.total

let observer t =
  {
    Exec.on_access =
      (fun ~label ~addr ~write -> record t ~label:(intern t label) ~addr ~write);
    on_stmt = (fun ~label:_ -> ());
  }

type captured = {
  chunks : Chunk.t list;
  trace_labels : string array;
  records : int;
}

let capturing ?chunk_records () =
  let acc = ref [] in
  let t =
    create ?chunk_records ~sink:(fun c -> acc := Chunk.copy c :: !acc) ()
  in
  let finish () =
    flush t;
    { chunks = List.rev !acc; trace_labels = labels t; records = t.total }
  in
  (t, finish)

let iter_chunks cap f = List.iter f cap.chunks
let iter cap f = List.iter (Chunk.iter f) cap.chunks
