(** Measurement harness: execute a program with its address trace feeding
    a simulated cache, with statistics split between the statements the
    optimizer touched and the whole program — the methodology behind
    Tables 1, 3 and 4.

    Every entry point takes an optional content-addressed
    {!Locality_store.Store.t}: captures and replay results are then
    looked up by a digest of the canonical program text, parameter
    overrides, trace format, cache geometry and timing model, and only
    computed (and stored) on a miss. The default is the ambient
    [MEMORIA_STORE] store ({!Locality_store.Store.default}) — [None]
    when the variable is unset, which makes every function behave
    exactly as before the store existed. Cached values are bit-identical
    to recomputation (the pipeline is deterministic and results
    round-trip through [Marshal] exactly); a corrupt store entry is
    quarantined and transparently recomputed. *)

module Cache = Locality_cachesim.Cache
module Machine = Locality_cachesim.Machine
module Store = Locality_store.Store

type region = {
  accesses : int;
  hits : int;
  cold : int;
}

type run = {
  whole : region;
  optimized : region;  (** accesses issued by the given statement labels *)
  ops : int;
  cycles : float;
  seconds : float;
}

val hit_rate : ?exclude_cold:bool -> region -> float
(** In percent; cold misses excluded from the denominator by default, as
    in Table 4. Delegates to {!Cache.rate_of_counts}: 100.0 when the
    region saw no accesses at all, 0.0 when every access was a cold miss
    (no reuse to score). *)

type replay_mode = Per_access | Runs | Stream | Sampled | Analytic
(** Trace format selector. [Per_access] is the v1 flat record stream;
    [Runs] is the v2 run-compressed stream whose strided-run groups
    both shrink the capture and let replay bulk-advance whole
    cache-line windows. Statistics are bit-identical either way.

    [Stream] fuses capture and simulation: the interpreter's run-chunk
    sink feeds {!Cache.simulate_runs} (and the hierarchy simulator)
    directly, chunk by chunk, so no trace is ever materialised and peak
    trace memory is O(chunk) at any iteration count. Because the chunk
    boundaries and the simulator are identical to a capture-then-replay
    of the same program, the resulting runs are bit-identical to [Runs]
    — the trade is memory for time: each cache geometry re-executes the
    program instead of replaying a shared capture. Streamed results
    live under their own store kind ("stream").

    [Sampled] replaces exact simulation with a SHARDS sampled
    reuse-distance profile ({!Locality_sample.Sample}) built from the
    same streaming sink: cache lines are hash-sampled at the rate given
    to {!prepare} (default [Sample.current_rate ()] — the [--rate] flag
    / [MEMORIA_SAMPLE_RATE]),
    distances are tracked per cache set, and per-label histograms
    scaled by 1/R estimate hits via the exact set-associative LRU
    condition (scaled same-set distance < ways) — at rate 1.0 the
    estimate equals the simulator, and below it the only error is
    sampling noise. Access and op counts stay exact; hit/cold counts
    are estimates. One profile per (line size, set count) partition is
    built (and store-cached, kind "sample") and serves every geometry
    sharing it. Hierarchy measurements under [Sampled] use the exact
    streaming path.

    [Analytic] skips tracing entirely: {!replay_prepared} and
    {!measure} ask the closed-form locality model
    ({!Locality_analytic.Analytic}) for the run, in O(nest size)
    instead of O(iterations). The numbers are simulator-equal on
    programs the model certifies exact and sound estimates elsewhere;
    out-of-scope programs transparently fall back to v2
    capture-and-replay (counted under [analytic.fallback]), so the
    mode is total. Analytic results live under their own store kind
    ("analytic") and never collide with simulated runs. Hierarchy
    measurements ({!replay_hierarchy}, {!measure_hierarchy}) simulate
    exactly in every mode ([Stream]/[Sampled] stream them, the rest
    replay the capture). *)

val replay_mode : unit -> replay_mode
(** The mode selected by the [MEMORIA_REPLAY] environment variable:
    ["per-access"] forces v1; ["stream"] fuses capture+simulate;
    ["sample"] selects sampled profiling; ["analytic"] the closed-form
    model; any other value, or unset, selects v2 capture-and-replay. *)

val mode_of_string : string -> replay_mode option
(** Strict parse of the mode names above ([None] on anything else) —
    the wire-API ([Driver.Request]) and CLI surface. *)

val mode_to_string : replay_mode -> string
(** Inverse of {!mode_of_string}; these strings are the documented
    protocol values. *)

type capture
(** A program's batched address trace plus its operation count: the
    program is interpreted once ({!capture}) and the trace replayed
    against any number of cache configurations ({!replay},
    {!replay_hierarchy}). Replay statistics are bit-identical to the
    legacy interpret-per-config observer path, in either trace format. *)

val capture_key :
  ?mode:replay_mode -> ?params:(string * int) list -> Program.t -> Store.key
(** The content digest a capture is stored under: trace format,
    canonical program text ({!Pretty.program_to_string} — name,
    PARAMETERs, declarations, body) and parameter overrides. Stable
    across processes and runs. *)

val capture :
  ?mode:replay_mode ->
  ?params:(string * int) list ->
  ?store:Store.t option ->
  Program.t ->
  capture
(** [mode] defaults to {!replay_mode}[ ()]; [store] to
    {!Store.default}[ ()]. With a store, a hit deserialises the trace
    instead of interpreting; a miss interprets and publishes it. *)

val trace_stats : capture -> int * int * int
(** [(records, stream_words, groups)]: logical access count, words
    actually stored, and strided-run groups in the capture. A v1
    capture stores one word per record and no groups. *)

val replay :
  ?config:Cache.config ->
  ?timing:Machine.timing ->
  ?optimized_labels:string list ->
  ?store:Store.t option ->
  capture ->
  run

type prepared
(** A program staged for store-backed measurement with its capture
    deferred: {!replay_prepared} consults the result store first and
    only materialises the trace (itself store-backed) when a result is
    missing — so a fully warm store regenerates a table without
    interpreting or simulating anything. The memoised capture makes a
    [prepared] value single-domain; each pool work item should
    {!prepare} its own. *)

val prepare :
  ?mode:replay_mode ->
  ?rate:float ->
  ?params:(string * int) list ->
  ?store:Store.t option ->
  Program.t ->
  prepared
(** [rate] is the SHARDS sampling rate used when this prepared program
    is replayed in [Sampled] mode; it defaults to the ambient
    {!Locality_sample.Sample.current_rate}[ ()]. Passing it here keeps
    the rate local to the measurement — concurrent preparations with
    different rates never interfere. *)

val prepared_capture : prepared -> capture
(** Force (and memoise) the capture. *)

val replay_prepared :
  ?config:Cache.config ->
  ?timing:Machine.timing ->
  ?optimized_labels:string list ->
  prepared ->
  run

val measure :
  ?config:Cache.config ->
  ?timing:Machine.timing ->
  ?optimized_labels:string list ->
  ?params:(string * int) list ->
  ?store:Store.t option ->
  Program.t ->
  run

type hier_run = {
  l1_rate : float;  (** L1 hit rate, percent, cold excluded *)
  l2_rate : float;  (** L2 hit rate among L1 misses, percent, cold excluded *)
  amat : float;  (** average memory access time, cycles *)
  hier_writebacks : int;
}

val replay_hierarchy :
  ?l1:Cache.config ->
  ?l2:Cache.config ->
  ?store:Store.t option ->
  capture ->
  hier_run

val replay_hierarchy_prepared :
  ?l1:Cache.config -> ?l2:Cache.config -> prepared -> hier_run

val measure_hierarchy :
  ?l1:Cache.config ->
  ?l2:Cache.config ->
  ?params:(string * int) list ->
  ?store:Store.t option ->
  Program.t ->
  hier_run
(** Run the program against a two-level write-back hierarchy (defaults:
    L1 = cache2's 8 KB geometry, L2 = cache1's 64 KB geometry). *)

val speedup :
  ?config:Cache.config ->
  ?timing:Machine.timing ->
  ?params:(string * int) list ->
  ?store:Store.t option ->
  Program.t ->
  Program.t ->
  float * run * run
(** [speedup original transformed] is the ratio of modelled execution
    times, original over transformed, with both runs. Each program is
    interpreted once; both runs replay the captured traces. *)

val speedup_configs :
  ?timing:Machine.timing ->
  ?params:(string * int) list ->
  ?store:Store.t option ->
  configs:Cache.config list ->
  Program.t ->
  Program.t ->
  (float * run * run) list
(** {!speedup} for several cache configurations at once, interpreting
    each program a single time and replaying its trace per config — the
    Table 3 / Table 4 access pattern. *)
