module Cache = Locality_cachesim.Cache
module Machine = Locality_cachesim.Machine
module Obs = Locality_obs.Obs
module Store = Locality_store.Store

type region = {
  accesses : int;
  hits : int;
  cold : int;
}

type run = {
  whole : region;
  optimized : region;
  ops : int;
  cycles : float;
  seconds : float;
}

let hit_rate ?exclude_cold r =
  Cache.rate_of_counts ?exclude_cold ~accesses:r.accesses ~hits:r.hits
    ~cold:r.cold ()

(* ------------------------------------------------- capture / replay --- *)

(* A program is interpreted once into a batched trace; the trace is then
   replayed against any number of cache configurations. Replay is
   deterministic (the simulator is a pure function of the record
   sequence), so every replay of the same capture agrees bit-for-bit
   with the legacy interpret-per-config path.

   Two trace formats exist: the v1 per-access record stream and the v2
   run-compressed stream, whose strided-run groups both shrink the
   capture and let replay bulk-advance whole cache-line windows. The
   formats produce bit-identical statistics (differentially tested), so
   the choice is purely a performance knob: MEMORIA_REPLAY=per-access
   forces v1, anything else (including unset) captures v2.

   Two modes skip materialising the trace. MEMORIA_REPLAY=stream fuses
   capture and simulation: the interpreter's run-chunk sink calls
   Cache.simulate_runs on each chunk as it fills, so peak trace memory
   is one chunk at any iteration count — and because the chunk stream
   and the simulator are exactly those of a capture-then-replay, the
   runs are bit-identical to v2 replay. MEMORIA_REPLAY=sample feeds the
   same sink into a SHARDS sampled reuse-distance profiler
   ({!Locality_sample.Sample}); hits are then estimated from the scaled
   per-label histograms, with access/op counts exact.

   A further mode skips execution too: MEMORIA_REPLAY=analytic asks
   the closed-form locality model ({!Locality_analytic.Analytic}) for
   the run, in O(nest size) instead of O(iterations). Programs the
   model cannot analyze fall back to v2 capture-and-replay, so the mode
   is total; the fallback is counted under [analytic.fallback]. *)

type replay_mode = Per_access | Runs | Stream | Sampled | Analytic

let mode_of_string = function
  | "per-access" -> Some Per_access
  | "runs" -> Some Runs
  | "stream" -> Some Stream
  | "sample" -> Some Sampled
  | "analytic" -> Some Analytic
  | _ -> None

let mode_to_string = function
  | Per_access -> "per-access"
  | Runs -> "runs"
  | Stream -> "stream"
  | Sampled -> "sample"
  | Analytic -> "analytic"

let replay_mode () =
  match Sys.getenv_opt "MEMORIA_REPLAY" with
  (* Lenient on purpose: an unrecognized value falls back to the v2
     default rather than failing every entry point. The wire API
     ([Driver.Request]) is the strict surface. *)
  | Some s -> Option.value (mode_of_string s) ~default:Runs
  | None -> Runs

type traced = V1 of Trace.captured | V2 of Trace.captured_runs

type capture = {
  trace : traced;
  cap_ops : int;
  cap_key : string option;
      (* hex capture digest when a store is in play; lets replay derive
         result keys without re-digesting the program *)
}

(* ------------------------------------------------ store keying ------ *)

(* Everything that determines a capture goes into its digest: the trace
   format (v1 and v2 streams are distinct cache entries), the canonical
   program text (name, PARAMETERs, declarations and body — the pretty
   printer is the normal form), and any parameter overrides. Replay
   results additionally hash the cache geometry, the timing model and
   the optimized-region label set. The store mixes its own format
   version into every key, so marshalled-layout changes retire old
   entries wholesale. *)

(* Analytic-mode fallbacks capture a v2 trace, so they share the v2
   capture (and run) store entries rather than duplicating them; a
   forced capture under the stream/sample modes (trace_stats) is an
   ordinary v2 capture too. *)
let mode_tag = function
  | Per_access -> "v1"
  | Runs | Stream | Sampled | Analytic -> "v2"

let params_tag params =
  String.concat ";" (List.map (fun (k, v) -> k ^ "=" ^ string_of_int v) params)

let capture_key ?mode ?(params = []) (p : Program.t) =
  let mode = match mode with Some m -> m | None -> replay_mode () in
  Store.key ~kind:"capture"
    [ mode_tag mode; Pretty.program_to_string p; params_tag params ]

let config_tag (c : Cache.config) =
  Printf.sprintf "%s/%d/%d/%d" c.Cache.name c.Cache.size_bytes c.Cache.assoc
    c.Cache.line_bytes

let timing_tag (t : Machine.timing) =
  Printf.sprintf "%h/%h/%h" t.Machine.cycles_per_op t.Machine.cycles_per_hit
    t.Machine.miss_penalty

let labels_tag labels =
  String.concat "\x00" (List.sort_uniq String.compare labels)

let run_key ~cap ~config ~timing ~labels =
  Store.key ~kind:"run"
    [ cap; config_tag config; timing_tag timing; labels_tag labels ]

let hier_key ~cap ~l1 ~l2 =
  Store.key ~kind:"hier" [ cap; config_tag l1; config_tag l2 ]

let trace_labels cap =
  match cap.trace with
  | V1 t -> t.Trace.trace_labels
  | V2 t -> t.Trace.run_trace_labels

let trace_stats cap =
  match cap.trace with
  | V1 t -> (t.Trace.records, t.Trace.records, 0)
  | V2 t -> (t.Trace.run_records, t.Trace.run_stream_words, t.Trace.run_groups)

let interpret_capture ~mode ?params ~cap_key (p : Program.t) =
  Obs.span "capture" (fun () ->
      match mode with
      | Per_access ->
        let tr, finish = Trace.capturing () in
        let res = Fastexec.run_traced ?params tr p in
        let t = finish () in
        if Obs.enabled () then begin
          Obs.add_span_arg "format" "v1";
          Obs.add_span_arg "records" (string_of_int t.Trace.records);
          Obs.add_span_arg "ops" (string_of_int res.Fastexec.ops);
          Obs.histogram "capture.records" t.Trace.records
        end;
        { trace = V1 t; cap_ops = res.Fastexec.ops; cap_key }
      | Runs | Stream | Sampled | Analytic ->
        let rb, finish = Trace.run_capturing () in
        let res = Fastexec.run_traced_runs ?params rb p in
        let t = finish () in
        if Obs.enabled () then begin
          Obs.add_span_arg "format" "v2";
          Obs.add_span_arg "records" (string_of_int t.Trace.run_records);
          Obs.add_span_arg "stream_words"
            (string_of_int t.Trace.run_stream_words);
          Obs.add_span_arg "groups" (string_of_int t.Trace.run_groups);
          Obs.add_span_arg "ops" (string_of_int res.Fastexec.ops);
          Obs.counter "trace.runs_emitted" t.Trace.run_groups;
          Obs.counter "trace.records_compressed"
            (t.Trace.run_records - t.Trace.run_stream_words);
          Obs.histogram "capture.records" t.Trace.run_records
        end;
        { trace = V2 t; cap_ops = res.Fastexec.ops; cap_key })

let capture ?mode ?params ?(store = Store.default ()) (p : Program.t) =
  let mode = match mode with Some m -> m | None -> replay_mode () in
  match store with
  | None -> interpret_capture ~mode ?params ~cap_key:None p
  | Some st -> (
    let k = capture_key ~mode ?params p in
    let cap_key = Some (Store.hex k) in
    match (Store.get_value st k : (traced * int) option) with
    | Some (trace, ops) ->
      Obs.span "capture" ~args:[ ("store", "hit") ] (fun () ->
          { trace; cap_ops = ops; cap_key })
    | None ->
      let c = interpret_capture ~mode ?params ~cap_key p in
      Store.put_value st k (c.trace, c.cap_ops);
      c)

let replay_compute ~config ~timing ~optimized_labels cap =
  Obs.span "replay" ~args:[ ("cache", config.Cache.name) ] (fun () ->
  let cache = Cache.create config in
  let marked =
    Array.map (fun l -> List.mem l optimized_labels) (trace_labels cap)
  in
  let reg = Cache.fresh_region () in
  let chunks = ref 0 in
  let metrics = Cache.fresh_run_metrics () in
  (match cap.trace with
  | V1 t ->
    Trace.iter_chunks t (fun c ->
        incr chunks;
        Cache.simulate_chunk cache ~marked ~region:reg c)
  | V2 t ->
    Trace.iter_run_chunks t (fun rc ->
        incr chunks;
        Cache.simulate_runs cache ~marked ~region:reg ~metrics rc));
  let s = Cache.stats cache in
  if Obs.enabled () then begin
    Obs.add_span_arg "accesses" (string_of_int s.Cache.accesses);
    Obs.add_span_arg "hits" (string_of_int s.Cache.hits);
    Obs.add_span_arg "cold" (string_of_int s.Cache.cold_misses);
    Obs.add_span_arg "chunks_replayed" (string_of_int !chunks);
    Obs.counter "cache.accesses" s.Cache.accesses;
    Obs.counter "cache.hits" s.Cache.hits;
    Obs.counter "cache.cold" s.Cache.cold_misses;
    Obs.counter "chunks.replayed" !chunks;
    Obs.histogram "replay.accesses" s.Cache.accesses;
    if metrics.Cache.m_groups > 0 || metrics.Cache.m_fallbacks > 0 then begin
      Obs.add_span_arg "run_groups" (string_of_int metrics.Cache.m_groups);
      Obs.add_span_arg "boundary_events"
        (string_of_int metrics.Cache.m_boundaries);
      Obs.add_span_arg "bulk_iters" (string_of_int metrics.Cache.m_bulk_iters);
      Obs.add_span_arg "fallbacks" (string_of_int metrics.Cache.m_fallbacks);
      Obs.counter "replay.run_groups" metrics.Cache.m_groups;
      Obs.counter "replay.boundary_events" metrics.Cache.m_boundaries;
      Obs.counter "replay.bulk_iters" metrics.Cache.m_bulk_iters;
      Obs.counter "replay.fallbacks" metrics.Cache.m_fallbacks
    end
  end;
  let whole =
    {
      accesses = s.Cache.accesses;
      hits = s.Cache.hits;
      cold = s.Cache.cold_misses;
    }
  in
  let optimized =
    {
      accesses = reg.Cache.r_accesses;
      hits = reg.Cache.r_hits;
      cold = reg.Cache.r_cold;
    }
  in
  let misses = whole.accesses - whole.hits in
  let ops = cap.cap_ops in
  {
    whole;
    optimized;
    ops;
    cycles = Machine.cycles timing ~ops ~hits:whole.hits ~misses;
    seconds = Machine.seconds timing ~ops ~hits:whole.hits ~misses;
  })

let cached_run ~store ~cap_key ~config ~timing ~labels compute =
  match (store, cap_key) with
  | Some st, Some cap -> (
    let k = run_key ~cap ~config ~timing ~labels in
    match (Store.get_value st k : run option) with
    | Some r -> r
    | None ->
      let r = compute () in
      Store.put_value st k r;
      r)
  | _ -> compute ()

let replay ?(config = Machine.cache1) ?(timing = Machine.default_timing)
    ?(optimized_labels = []) ?(store = Store.default ()) cap =
  cached_run ~store ~cap_key:cap.cap_key ~config ~timing
    ~labels:optimized_labels (fun () ->
      replay_compute ~config ~timing ~optimized_labels cap)

(* ------------------------------------------------ prepared runs ----- *)

(* A prepared program defers its capture: replaying a prepared program
   first consults the result store, and only when a result is missing
   is the trace materialised (itself store-backed). On a fully warm
   store a whole table regenerates without interpreting or simulating
   anything. A [prepared] value memoises its capture and is meant to be
   used from one domain (each pool work item prepares its own). *)

type prepared = {
  p_program : Program.t;
  p_params : (string * int) list option;
  p_mode : replay_mode;
  p_rate : float option;  (* explicit SHARDS rate; None = ambient *)
  p_store : Store.t option;
  p_key : string option;
  mutable p_cap : capture option;
}

let prepare ?mode ?rate ?params ?(store = Store.default ()) (p : Program.t) =
  let mode = match mode with Some m -> m | None -> replay_mode () in
  let p_key =
    Option.map (fun _ -> Store.hex (capture_key ~mode ?params p)) store
  in
  { p_program = p; p_params = params; p_mode = mode; p_rate = rate;
    p_store = store; p_key; p_cap = None }

let prepared_capture pr =
  match pr.p_cap with
  | Some c -> c
  | None ->
    let c =
      capture ~mode:pr.p_mode ?params:pr.p_params ~store:pr.p_store
        pr.p_program
    in
    pr.p_cap <- Some c;
    c

(* ------------------------------------------------ analytic mode ----- *)

module Analytic_model = Locality_analytic.Analytic

(* The analytic result is keyed on everything that determines it —
   program text, parameters, geometry, timing, labels — under its own
   store kind, so estimates never collide with simulated runs. *)
let analytic_key ?(params = []) ~config ~timing ~labels (p : Program.t) =
  Store.key ~kind:"analytic"
    [
      Pretty.program_to_string p;
      params_tag params;
      config_tag config;
      timing_tag timing;
      labels_tag labels;
    ]

let run_of_estimate ~timing (est : Analytic_model.estimate) =
  let whole =
    {
      accesses = est.Analytic_model.e_whole.Analytic_model.c_accesses;
      hits = est.Analytic_model.e_whole.Analytic_model.c_hits;
      cold = est.Analytic_model.e_whole.Analytic_model.c_cold;
    }
  in
  let optimized =
    {
      accesses = est.Analytic_model.e_optimized.Analytic_model.c_accesses;
      hits = est.Analytic_model.e_optimized.Analytic_model.c_hits;
      cold = est.Analytic_model.e_optimized.Analytic_model.c_cold;
    }
  in
  let ops = est.Analytic_model.e_ops in
  let misses = whole.accesses - whole.hits in
  {
    whole;
    optimized;
    ops;
    cycles = Machine.cycles timing ~ops ~hits:whole.hits ~misses;
    seconds = Machine.seconds timing ~ops ~hits:whole.hits ~misses;
  }

(* [None] is the fallback verdict: the caller replays the trace. The
   verdict itself is not cached — the analysis is O(nest size), cheaper
   than a store round-trip for anything it rejects. *)
let analytic_prepared ~config ~timing ~optimized_labels pr =
  let compute () =
    Obs.span "analytic" ~args:[ ("cache", config.Cache.name) ] (fun () ->
        match
          Analytic_model.estimate ?params:pr.p_params ~optimized_labels
            ~config pr.p_program
        with
        | Ok est ->
          if Obs.enabled () then
            Obs.add_span_arg "exact"
              (if est.Analytic_model.e_exact then "true" else "false");
          Some (run_of_estimate ~timing est)
        | Error reason ->
          if Obs.enabled () then begin
            Obs.counter "analytic.fallback" 1;
            Obs.add_span_arg "fallback" reason
          end;
          None)
  in
  match pr.p_store with
  | None -> compute ()
  | Some st -> (
    let k =
      analytic_key
        ?params:pr.p_params ~config ~timing ~labels:optimized_labels
        pr.p_program
    in
    match (Store.get_value st k : run option) with
    | Some r -> Some r
    | None -> (
      match compute () with
      | Some r ->
        Store.put_value st k r;
        Some r
      | None -> None))

(* ------------------------------------------------ streaming mode ---- *)

(* MEMORIA_REPLAY=stream: the interpreter's run-chunk sink simulates
   each chunk the moment it fills, so the whole measurement runs in
   O(chunk) trace memory at any iteration count. Labels are interned at
   closure-compile time — before the first access executes — so the
   marked-label array is complete by the first flush. Chunk boundaries
   and the simulator are exactly those of capture-then-replay, making
   the run bit-identical to [Runs]; the trade is per-geometry
   re-execution instead of a shared capture, which is the point:
   geometry count is small and bounded, iteration count is not. *)

let stream_key ?(params = []) ~config ~timing ~labels (p : Program.t) =
  Store.key ~kind:"stream"
    [
      "run";
      Pretty.program_to_string p;
      params_tag params;
      config_tag config;
      timing_tag timing;
      labels_tag labels;
    ]

let stream_compute ~config ~timing ~optimized_labels ?params (p : Program.t) =
  Obs.span "stream" ~args:[ ("cache", config.Cache.name) ] (fun () ->
      let cache = Cache.create config in
      let reg = Cache.fresh_region () in
      let metrics = Cache.fresh_run_metrics () in
      let chunks = ref 0 in
      let marked = ref [||] in
      let rb_ref = ref None in
      let sink rc =
        (match !rb_ref with
        | Some rb ->
          let labels = Trace.run_labels rb in
          if Array.length !marked <> Array.length labels then
            marked := Array.map (fun l -> List.mem l optimized_labels) labels
        | None -> ());
        incr chunks;
        Cache.simulate_runs cache ~marked:!marked ~region:reg ~metrics rc
      in
      let rb = Trace.run_create ~sink () in
      rb_ref := Some rb;
      let res = Fastexec.run_traced_runs ?params rb p in
      let s = Cache.stats cache in
      if Obs.enabled () then begin
        Obs.add_span_arg "accesses" (string_of_int s.Cache.accesses);
        Obs.add_span_arg "chunks" (string_of_int !chunks);
        Obs.counter "stream.chunks" !chunks;
        Obs.counter "stream.accesses" s.Cache.accesses;
        Obs.counter "cache.accesses" s.Cache.accesses;
        Obs.counter "cache.hits" s.Cache.hits;
        Obs.counter "cache.cold" s.Cache.cold_misses
      end;
      let whole =
        {
          accesses = s.Cache.accesses;
          hits = s.Cache.hits;
          cold = s.Cache.cold_misses;
        }
      in
      let optimized =
        {
          accesses = reg.Cache.r_accesses;
          hits = reg.Cache.r_hits;
          cold = reg.Cache.r_cold;
        }
      in
      let misses = whole.accesses - whole.hits in
      let ops = res.Fastexec.ops in
      {
        whole;
        optimized;
        ops;
        cycles = Machine.cycles timing ~ops ~hits:whole.hits ~misses;
        seconds = Machine.seconds timing ~ops ~hits:whole.hits ~misses;
      })

let stream_prepared ~config ~timing ~optimized_labels pr =
  let compute () =
    stream_compute ~config ~timing ~optimized_labels ?params:pr.p_params
      pr.p_program
  in
  match pr.p_store with
  | None -> compute ()
  | Some st -> (
    let k =
      stream_key ?params:pr.p_params ~config ~timing ~labels:optimized_labels
        pr.p_program
    in
    match (Store.get_value st k : run option) with
    | Some r -> r
    | None ->
      let r = compute () in
      Store.put_value st k r;
      r)

(* ------------------------------------------------ sampled mode ------ *)

module Sample = Locality_sample.Sample

(* The SHARDS profile depends on the program, its parameters, the
   sampling rate/seed and the set partition (line size and set count) —
   not the associativity — so one profile (store kind "sample") serves
   every geometry sharing that partition. The run derived from it is
   cheap and recomputed on the fly: hits are the weight of observations
   with scaled same-set distance below the geometry's way count (the
   exact set-associative LRU condition), access and op counts are
   exact. *)

let sample_key ?(params = []) ~rate ~seed ~line_bytes ~sets (p : Program.t) =
  Store.key ~kind:"sample"
    [
      "profile";
      Pretty.program_to_string p;
      params_tag params;
      Printf.sprintf "%h" rate;
      string_of_int seed;
      string_of_int line_bytes;
      string_of_int sets;
    ]

let sample_profile_compute ~rate ~line_bytes ~sets ?params (p : Program.t) =
  Obs.span "sample"
    ~args:
      [
        ("line_bytes", string_of_int line_bytes);
        ("sets", string_of_int sets);
      ]
    (fun () ->
      let sampler = Sample.create ~rate ~line_bytes ~sets () in
      let sink rc = Sample.consume_runchunk sampler rc in
      let rb = Trace.run_create ~sink () in
      let res = Fastexec.run_traced_runs ?params rb p in
      let prof =
        Sample.profile sampler ~labels:(Trace.run_labels rb)
          ~ops:res.Fastexec.ops
      in
      if Obs.enabled () then begin
        Obs.add_span_arg "accesses" (string_of_int prof.Sample.pf_accesses);
        Obs.add_span_arg "sampled" (string_of_int prof.Sample.pf_sampled);
        Obs.counter "sample.accesses" prof.Sample.pf_accesses;
        Obs.counter "sample.sampled" prof.Sample.pf_sampled;
        Obs.counter "sample.adaptations" prof.Sample.pf_adaptations;
        Obs.gauge "sample.rate" prof.Sample.pf_final_rate
      end;
      prof)

let run_of_sample_profile ~config ~timing ~optimized_labels
    (prof : Sample.profile) =
  let ways = config.Cache.assoc in
  let nl = Array.length prof.Sample.pf_labels in
  let w_hits = ref 0.0 and w_cold = ref 0.0 in
  let o_hits = ref 0.0 and o_cold = ref 0.0 in
  let o_acc = ref 0 in
  for lid = 0 to nl - 1 do
    let h = Sample.hits_under prof lid ~ways in
    let c = prof.Sample.pf_label_cold.(lid) in
    w_hits := !w_hits +. h;
    w_cold := !w_cold +. c;
    if List.mem prof.Sample.pf_labels.(lid) optimized_labels then begin
      o_acc := !o_acc + prof.Sample.pf_label_accesses.(lid);
      o_hits := !o_hits +. h;
      o_cold := !o_cold +. c
    end
  done;
  let clamp ~accesses hits_f cold_f =
    let hits = max 0 (min accesses (int_of_float (Float.round hits_f))) in
    let cold =
      max 0 (min (accesses - hits) (int_of_float (Float.round cold_f)))
    in
    { accesses; hits; cold }
  in
  let whole = clamp ~accesses:prof.Sample.pf_accesses !w_hits !w_cold in
  let optimized = clamp ~accesses:!o_acc !o_hits !o_cold in
  let ops = prof.Sample.pf_ops in
  let misses = whole.accesses - whole.hits in
  {
    whole;
    optimized;
    ops;
    cycles = Machine.cycles timing ~ops ~hits:whole.hits ~misses;
    seconds = Machine.seconds timing ~ops ~hits:whole.hits ~misses;
  }

let sample_prepared ~config ~timing ~optimized_labels pr =
  let rate =
    match pr.p_rate with Some r -> r | None -> Sample.current_rate ()
  in
  let line_bytes = config.Cache.line_bytes in
  let sets =
    max 1 (config.Cache.size_bytes / (line_bytes * config.Cache.assoc))
  in
  let compute () =
    sample_profile_compute ~rate ~line_bytes ~sets ?params:pr.p_params
      pr.p_program
  in
  let prof =
    match pr.p_store with
    | None -> compute ()
    | Some st -> (
      let k =
        sample_key ?params:pr.p_params ~rate ~seed:0 ~line_bytes ~sets
          pr.p_program
      in
      match (Store.get_value st k : Sample.profile option) with
      | Some p -> p
      | None ->
        let p = compute () in
        Store.put_value st k p;
        p)
  in
  run_of_sample_profile ~config ~timing ~optimized_labels prof

let replay_prepared ?(config = Machine.cache1)
    ?(timing = Machine.default_timing) ?(optimized_labels = []) pr =
  let simulate () =
    cached_run ~store:pr.p_store ~cap_key:pr.p_key ~config ~timing
      ~labels:optimized_labels (fun () ->
        replay_compute ~config ~timing ~optimized_labels
          (prepared_capture pr))
  in
  match pr.p_mode with
  | Analytic -> (
    match analytic_prepared ~config ~timing ~optimized_labels pr with
    | Some r -> r
    | None -> simulate ())
  | Stream -> stream_prepared ~config ~timing ~optimized_labels pr
  | Sampled -> sample_prepared ~config ~timing ~optimized_labels pr
  | Per_access | Runs -> simulate ()

let measure ?config ?timing ?optimized_labels ?params ?store (p : Program.t) =
  replay_prepared ?config ?timing ?optimized_labels (prepare ?params ?store p)

type hier_run = {
  l1_rate : float;
  l2_rate : float;
  amat : float;
  hier_writebacks : int;
}

let replay_hierarchy_compute ~l1 ~l2 cap =
  Obs.span "replay_hierarchy"
    ~args:[ ("l1", l1.Cache.name); ("l2", l2.Cache.name) ]
    (fun () ->
      let module H = Locality_cachesim.Hierarchy in
      let h = H.create ~l1 ~l2 in
      let chunks = ref 0 in
      (match cap.trace with
      | V1 t ->
        Trace.iter_chunks t (fun c ->
            incr chunks;
            H.simulate_chunk h c)
      | V2 t ->
        Trace.iter_run_chunks t (fun rc ->
            incr chunks;
            H.simulate_runs h rc));
      if Obs.enabled () then begin
        let s1 = H.l1_stats h in
        Obs.add_span_arg "l1_accesses" (string_of_int s1.Cache.accesses);
        Obs.add_span_arg "l1_hits" (string_of_int s1.Cache.hits);
        Obs.add_span_arg "chunks_replayed" (string_of_int !chunks);
        Obs.counter "chunks.replayed" !chunks
      end;
      {
        l1_rate = Cache.hit_rate (H.l1_stats h);
        l2_rate = Cache.hit_rate (H.l2_stats h);
        amat = H.amat h;
        hier_writebacks = H.writebacks h;
      })

let cached_hier ~store ~cap_key ~l1 ~l2 compute =
  match (store, cap_key) with
  | Some st, Some cap -> (
    let k = hier_key ~cap ~l1 ~l2 in
    match (Store.get_value st k : hier_run option) with
    | Some r -> r
    | None ->
      let r = compute () in
      Store.put_value st k r;
      r)
  | _ -> compute ()

let replay_hierarchy ?(l1 = Machine.cache2) ?(l2 = Machine.cache1)
    ?(store = Store.default ()) cap =
  cached_hier ~store ~cap_key:cap.cap_key ~l1 ~l2 (fun () ->
      replay_hierarchy_compute ~l1 ~l2 cap)

(* The streaming analog of [replay_hierarchy_compute]: identical chunk
   boundaries into the same two-level simulator, one chunk at a time.
   [Sampled] mode routes here too — hierarchy numbers stay exact. *)
let stream_hier_key ?(params = []) ~l1 ~l2 (p : Program.t) =
  Store.key ~kind:"stream"
    [
      "hier";
      Pretty.program_to_string p;
      params_tag params;
      config_tag l1;
      config_tag l2;
    ]

let stream_hierarchy_compute ~l1 ~l2 ?params (p : Program.t) =
  Obs.span "stream_hierarchy"
    ~args:[ ("l1", l1.Cache.name); ("l2", l2.Cache.name) ]
    (fun () ->
      let module H = Locality_cachesim.Hierarchy in
      let h = H.create ~l1 ~l2 in
      let chunks = ref 0 in
      let sink rc =
        incr chunks;
        H.simulate_runs h rc
      in
      let rb = Trace.run_create ~sink () in
      ignore (Fastexec.run_traced_runs ?params rb p);
      if Obs.enabled () then begin
        let s1 = H.l1_stats h in
        Obs.add_span_arg "l1_accesses" (string_of_int s1.Cache.accesses);
        Obs.add_span_arg "chunks" (string_of_int !chunks);
        Obs.counter "stream.chunks" !chunks;
        Obs.counter "stream.accesses" s1.Cache.accesses
      end;
      {
        l1_rate = Cache.hit_rate (H.l1_stats h);
        l2_rate = Cache.hit_rate (H.l2_stats h);
        amat = H.amat h;
        hier_writebacks = H.writebacks h;
      })

let replay_hierarchy_prepared ?(l1 = Machine.cache2) ?(l2 = Machine.cache1)
    pr =
  match pr.p_mode with
  | Stream | Sampled -> (
    let compute () =
      stream_hierarchy_compute ~l1 ~l2 ?params:pr.p_params pr.p_program
    in
    match pr.p_store with
    | None -> compute ()
    | Some st -> (
      let k = stream_hier_key ?params:pr.p_params ~l1 ~l2 pr.p_program in
      match (Store.get_value st k : hier_run option) with
      | Some r -> r
      | None ->
        let r = compute () in
        Store.put_value st k r;
        r))
  | Per_access | Runs | Analytic ->
    cached_hier ~store:pr.p_store ~cap_key:pr.p_key ~l1 ~l2 (fun () ->
        replay_hierarchy_compute ~l1 ~l2 (prepared_capture pr))

let measure_hierarchy ?l1 ?l2 ?params ?store (p : Program.t) =
  replay_hierarchy_prepared ?l1 ?l2 (prepare ?params ?store p)

let speedup ?config ?timing ?params ?store original transformed =
  let p1 = prepare ?params ?store original in
  let p2 = prepare ?params ?store transformed in
  let r1 = replay_prepared ?config ?timing p1 in
  let r2 = replay_prepared ?config ?timing p2 in
  (r1.cycles /. r2.cycles, r1, r2)

let speedup_configs ?timing ?params ?store ~configs original transformed =
  let p1 = prepare ?params ?store original in
  let p2 = prepare ?params ?store transformed in
  List.map
    (fun config ->
      let r1 = replay_prepared ~config ?timing p1 in
      let r2 = replay_prepared ~config ?timing p2 in
      (r1.cycles /. r2.cycles, r1, r2))
    configs
