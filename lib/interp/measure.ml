module Cache = Locality_cachesim.Cache
module Machine = Locality_cachesim.Machine
module Obs = Locality_obs.Obs

type region = {
  accesses : int;
  hits : int;
  cold : int;
}

type run = {
  whole : region;
  optimized : region;
  ops : int;
  cycles : float;
  seconds : float;
}

let hit_rate ?(exclude_cold = true) r =
  let denom = if exclude_cold then r.accesses - r.cold else r.accesses in
  if denom <= 0 then 100.0 else 100.0 *. float_of_int r.hits /. float_of_int denom

(* ------------------------------------------------- capture / replay --- *)

(* A program is interpreted once into a batched trace; the trace is then
   replayed against any number of cache configurations. Replay is
   deterministic (the simulator is a pure function of the record
   sequence), so every replay of the same capture agrees bit-for-bit
   with the legacy interpret-per-config path. *)

type capture = {
  trace : Trace.captured;
  cap_ops : int;
}

let capture ?params (p : Program.t) =
  Obs.span "capture" (fun () ->
      let tr, finish = Trace.capturing () in
      let res = Fastexec.run_traced ?params tr p in
      let cap = { trace = finish (); cap_ops = res.Fastexec.ops } in
      if Obs.enabled () then begin
        Obs.add_span_arg "records"
          (string_of_int cap.trace.Trace.records);
        Obs.add_span_arg "ops" (string_of_int cap.cap_ops)
      end;
      cap)

let replay ?(config = Machine.cache1) ?(timing = Machine.default_timing)
    ?(optimized_labels = []) cap =
  Obs.span "replay" ~args:[ ("cache", config.Cache.name) ] (fun () ->
  let cache = Cache.create config in
  let marked =
    Array.map
      (fun l -> List.mem l optimized_labels)
      cap.trace.Trace.trace_labels
  in
  let reg = Cache.fresh_region () in
  let chunks = ref 0 in
  Trace.iter_chunks cap.trace (fun c ->
      incr chunks;
      Cache.simulate_chunk cache ~marked ~region:reg c);
  let s = Cache.stats cache in
  if Obs.enabled () then begin
    Obs.add_span_arg "accesses" (string_of_int s.Cache.accesses);
    Obs.add_span_arg "hits" (string_of_int s.Cache.hits);
    Obs.add_span_arg "cold" (string_of_int s.Cache.cold_misses);
    Obs.add_span_arg "chunks_replayed" (string_of_int !chunks);
    Obs.counter "cache.accesses" s.Cache.accesses;
    Obs.counter "cache.hits" s.Cache.hits;
    Obs.counter "cache.cold" s.Cache.cold_misses;
    Obs.counter "chunks.replayed" !chunks
  end;
  let whole =
    {
      accesses = s.Cache.accesses;
      hits = s.Cache.hits;
      cold = s.Cache.cold_misses;
    }
  in
  let optimized =
    {
      accesses = reg.Cache.r_accesses;
      hits = reg.Cache.r_hits;
      cold = reg.Cache.r_cold;
    }
  in
  let misses = whole.accesses - whole.hits in
  let ops = cap.cap_ops in
  {
    whole;
    optimized;
    ops;
    cycles = Machine.cycles timing ~ops ~hits:whole.hits ~misses;
    seconds = Machine.seconds timing ~ops ~hits:whole.hits ~misses;
  })

let measure ?config ?timing ?optimized_labels ?params (p : Program.t) =
  replay ?config ?timing ?optimized_labels (capture ?params p)

type hier_run = {
  l1_rate : float;
  l2_rate : float;
  amat : float;
  hier_writebacks : int;
}

let replay_hierarchy ?(l1 = Machine.cache2) ?(l2 = Machine.cache1) cap =
  Obs.span "replay_hierarchy"
    ~args:[ ("l1", l1.Cache.name); ("l2", l2.Cache.name) ]
    (fun () ->
      let module H = Locality_cachesim.Hierarchy in
      let h = H.create ~l1 ~l2 in
      let chunks = ref 0 in
      Trace.iter_chunks cap.trace (fun c ->
          incr chunks;
          H.simulate_chunk h c);
      if Obs.enabled () then begin
        let s1 = H.l1_stats h in
        Obs.add_span_arg "l1_accesses" (string_of_int s1.Cache.accesses);
        Obs.add_span_arg "l1_hits" (string_of_int s1.Cache.hits);
        Obs.add_span_arg "chunks_replayed" (string_of_int !chunks);
        Obs.counter "chunks.replayed" !chunks
      end;
      {
        l1_rate = Cache.hit_rate (H.l1_stats h);
        l2_rate = Cache.hit_rate (H.l2_stats h);
        amat = H.amat h;
        hier_writebacks = H.writebacks h;
      })

let measure_hierarchy ?l1 ?l2 ?params (p : Program.t) =
  replay_hierarchy ?l1 ?l2 (capture ?params p)

let speedup ?config ?timing ?params original transformed =
  let c1 = capture ?params original in
  let c2 = capture ?params transformed in
  let r1 = replay ?config ?timing c1 in
  let r2 = replay ?config ?timing c2 in
  (r1.cycles /. r2.cycles, r1, r2)

let speedup_configs ?timing ?params ~configs original transformed =
  let c1 = capture ?params original in
  let c2 = capture ?params transformed in
  List.map
    (fun config ->
      let r1 = replay ~config ?timing c1 in
      let r2 = replay ~config ?timing c2 in
      (r1.cycles /. r2.cycles, r1, r2))
    configs
