module Layout = Locality_cachesim.Layout

type result = {
  arrays : (string * float array) list;
  ops : int;
  accesses : int;
  iterations : int;
}

type ctx = {
  ienv : int array;  (** loop indices and parameters by slot *)
  scalars : float array;
  mutable ops : int;
  mutable accesses : int;
  mutable iterations : int;
}

(* Slot allocation for integer variables (params + indices) and scalars.
   The table alone carries the name-to-slot mapping; nothing needs the
   names back in order. *)
type slots = { tbl : (string, int) Hashtbl.t }

let new_slots () = { tbl = Hashtbl.create 16 }

let slot_of s name =
  match Hashtbl.find_opt s.tbl name with
  | Some i -> i
  | None ->
    let i = Hashtbl.length s.tbl in
    Hashtbl.replace s.tbl name i;
    i

let rec compile_expr slots (e : Expr.t) : ctx -> int =
  match e with
  | Expr.Int n -> fun _ -> n
  | Expr.Var x ->
    let i = slot_of slots x in
    fun c -> c.ienv.(i)
  | Expr.Neg a ->
    let fa = compile_expr slots a in
    fun c -> -fa c
  | Expr.Add (a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    fun c -> fa c + fb c
  | Expr.Sub (a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    fun c -> fa c - fb c
  | Expr.Mul (a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    fun c -> fa c * fb c
  | Expr.Min (a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    fun c -> min (fa c) (fb c)
  | Expr.Max (a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    fun c -> max (fa c) (fb c)
  | Expr.Div (a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    fun c ->
      let d = fb c in
      if d = 0 then invalid_arg "Fastexec: division by zero" else fa c / d

(* How the compiled program reports array accesses: not at all, through
   the legacy per-access observer closure, or appended to a batched trace
   buffer (label ids interned once at compile time, so the hot path is a
   couple of array stores). *)
type mode = Silent | Observe of Exec.observer | Buffer of Trace.t

let exec ~mode ?(init = Exec.default_init) ?params (p : Program.t) =
  let params =
    match params with
    | Some overrides ->
      List.map
        (fun (x, d) ->
          match List.assoc_opt x overrides with
          | Some v -> (x, v)
          | None -> (x, d))
        p.Program.params
    | None -> p.Program.params
  in
  let param x =
    match List.assoc_opt x params with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Fastexec: unbound parameter %s" x)
  in
  let layout = Layout.build ~param p.Program.decls in
  let data = Hashtbl.create 16 in
  List.iter
    (fun (d : Decl.t) ->
      let n = Layout.size_elements layout d.Decl.name in
      Hashtbl.replace data d.Decl.name (Array.init n (init d.Decl.name)))
    p.Program.decls;
  let slots = new_slots () in
  let sslots = new_slots () in
  List.iter (fun (x, _) -> ignore (slot_of slots x)) params;
  (* Per-array strides (column-major) and base addresses. *)
  let strides = Hashtbl.create 16 in
  List.iter
    (fun (d : Decl.t) ->
      let exts = List.map (fun e -> Expr.eval e param) d.Decl.extents in
      let n = List.length exts in
      let s = Array.make n 1 in
      List.iteri (fun k e -> if k < n - 1 then s.(k + 1) <- s.(k) * e) exts;
      let base = Layout.address layout d.Decl.name (Array.make n 1) in
      let elem = Layout.elem_size layout d.Decl.name in
      Hashtbl.replace strides d.Decl.name (s, base, elem))
    p.Program.decls;
  (* Compile a reference into an (offset, address) pair of closures. *)
  let compile_access (r : Reference.t) =
    let arr = Hashtbl.find data r.Reference.array in
    let s, base, elem = Hashtbl.find strides r.Reference.array in
    let subs = Array.of_list (List.map (compile_expr slots) r.Reference.subs) in
    let n = Array.length subs in
    let offset c =
      let off = ref 0 in
      for k = 0 to n - 1 do
        off := !off + ((subs.(k) c - 1) * s.(k))
      done;
      !off
    in
    (arr, offset, base, elem)
  in
  let rec compile_rexpr label (e : Stmt.rexpr) : ctx -> float =
    match e with
    | Stmt.Const v -> fun _ -> v
    | Stmt.Scalar x ->
      let i = slot_of sslots x in
      fun c -> c.scalars.(i)
    | Stmt.Iexpr ie ->
      let f = compile_expr slots ie in
      fun c -> float_of_int (f c)
    | Stmt.Load r -> (
      let arr, offset, base, elem = compile_access r in
      match mode with
      | Observe observer ->
        fun c ->
          let off = offset c in
          c.accesses <- c.accesses + 1;
          observer.Exec.on_access ~label ~addr:(base + (off * elem))
            ~write:false;
          Array.get arr off
      | Buffer tr ->
        let lid = Trace.intern tr label in
        fun c ->
          let off = offset c in
          c.accesses <- c.accesses + 1;
          Trace.record tr ~label:lid ~addr:(base + (off * elem)) ~write:false;
          Array.get arr off
      | Silent ->
        fun c ->
          c.accesses <- c.accesses + 1;
          Array.get arr (offset c))
    | Stmt.Unop (op, a) ->
      let fa = compile_rexpr label a in
      let g =
        match op with
        | Stmt.Fneg -> Float.neg
        | Stmt.Sqrt -> fun v -> Float.sqrt (Float.abs v)
        | Stmt.Abs -> Float.abs
        | Stmt.Exp -> Float.exp
        | Stmt.Sin -> Float.sin
        | Stmt.Cos -> Float.cos
      in
      fun c ->
        let v = fa c in
        c.ops <- c.ops + 1;
        g v
    | Stmt.Binop (op, a, b) ->
      let fa = compile_rexpr label a and fb = compile_rexpr label b in
      let g =
        match op with
        | Stmt.Fadd -> ( +. )
        | Stmt.Fsub -> ( -. )
        | Stmt.Fmul -> ( *. )
        | Stmt.Fdiv -> ( /. )
        | Stmt.Fmin -> Float.min
        | Stmt.Fmax -> Float.max
      in
      fun c ->
        let va = fa c in
        let vb = fb c in
        c.ops <- c.ops + 1;
        g va vb
  in
  let compile_stmt (st : Stmt.t) : ctx -> unit =
    let label = st.Stmt.label in
    let rhs = compile_rexpr label st.Stmt.rhs in
    match st.Stmt.lhs with
    | Stmt.Store r -> (
      let arr, offset, base, elem = compile_access r in
      match mode with
      | Observe observer ->
        fun c ->
          c.iterations <- c.iterations + 1;
          observer.Exec.on_stmt ~label;
          let v = rhs c in
          let off = offset c in
          c.accesses <- c.accesses + 1;
          observer.Exec.on_access ~label ~addr:(base + (off * elem))
            ~write:true;
          Array.set arr off v
      | Buffer tr ->
        let lid = Trace.intern tr label in
        fun c ->
          c.iterations <- c.iterations + 1;
          let v = rhs c in
          let off = offset c in
          c.accesses <- c.accesses + 1;
          Trace.record tr ~label:lid ~addr:(base + (off * elem)) ~write:true;
          Array.set arr off v
      | Silent ->
        fun c ->
          c.iterations <- c.iterations + 1;
          let v = rhs c in
          c.accesses <- c.accesses + 1;
          Array.set arr (offset c) v)
    | Stmt.Scalar_set x -> (
      let i = slot_of sslots x in
      match mode with
      | Observe observer ->
        fun c ->
          c.iterations <- c.iterations + 1;
          observer.Exec.on_stmt ~label;
          c.scalars.(i) <- rhs c
      | Buffer _ | Silent ->
        fun c ->
          c.iterations <- c.iterations + 1;
          c.scalars.(i) <- rhs c)
  in
  let rec compile_block (b : Loop.block) : ctx -> unit =
    let fns =
      List.map
        (function
          | Loop.Stmt st -> compile_stmt st
          | Loop.Loop l -> compile_loop l)
        b
    in
    match fns with
    | [ f ] -> f
    | [ f; g ] -> fun c -> f c; g c
    | fns -> fun c -> List.iter (fun f -> f c) fns
  and compile_loop (l : Loop.t) : ctx -> unit =
    let h = l.Loop.header in
    let islot = slot_of slots h.Loop.index in
    let flb = compile_expr slots h.Loop.lb in
    let fub = compile_expr slots h.Loop.ub in
    let step = h.Loop.step in
    let body = compile_block l.Loop.body in
    if step > 0 then (fun c ->
      let ub = fub c in
      let i = ref (flb c) in
      while !i <= ub do
        c.ienv.(islot) <- !i;
        body c;
        i := !i + step
      done)
    else fun c ->
      let ub = fub c in
      let i = ref (flb c) in
      while !i >= ub do
        c.ienv.(islot) <- !i;
        body c;
        i := !i + step
      done
  in
  let main = compile_block p.Program.body in
  (* Bound the slot count: compile touched every variable. *)
  let nints = max 1 (Hashtbl.length slots.tbl) in
  let nscal = max 1 (Hashtbl.length sslots.tbl) in
  let ctx =
    {
      ienv = Array.make nints 0;
      scalars = Array.make nscal 0.0;
      ops = 0;
      accesses = 0;
      iterations = 0;
    }
  in
  List.iter (fun (x, v) -> ctx.ienv.(Hashtbl.find slots.tbl x) <- v) params;
  main ctx;
  (match mode with Buffer tr -> Trace.flush tr | Observe _ | Silent -> ());
  {
    arrays =
      List.map
        (fun (d : Decl.t) -> (d.Decl.name, Hashtbl.find data d.Decl.name))
        p.Program.decls;
    ops = ctx.ops;
    accesses = ctx.accesses;
    iterations = ctx.iterations;
  }

let run ?(observer = Exec.null_observer) ?init ?params p =
  let mode =
    if observer == Exec.null_observer then Silent else Observe observer
  in
  exec ~mode ?init ?params p

let run_traced ?init ?params tr p = exec ~mode:(Buffer tr) ?init ?params p
