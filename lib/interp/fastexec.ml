module Layout = Locality_cachesim.Layout
module Chunk = Locality_cachesim.Chunk

type result = {
  arrays : (string * float array) list;
  ops : int;
  accesses : int;
  iterations : int;
}

type ctx = {
  ienv : int array;  (** loop indices and parameters by slot *)
  scalars : float array;
  fstack : float array;  (** expression evaluation slots, see compile_rexpr *)
  mutable ops : int;
  mutable accesses : int;
  mutable iterations : int;
}

(* Slot allocation for integer variables (params + indices) and scalars.
   The table alone carries the name-to-slot mapping; nothing needs the
   names back in order. *)
type slots = { tbl : (string, int) Hashtbl.t }

let new_slots () = { tbl = Hashtbl.create 16 }

let slot_of s name =
  match Hashtbl.find_opt s.tbl name with
  | Some i -> i
  | None ->
    let i = Hashtbl.length s.tbl in
    Hashtbl.replace s.tbl name i;
    i

let rec compile_expr slots (e : Expr.t) : ctx -> int =
  match e with
  | Expr.Int n -> fun _ -> n
  | Expr.Var x ->
    let i = slot_of slots x in
    fun c -> c.ienv.(i)
  | Expr.Neg a ->
    let fa = compile_expr slots a in
    fun c -> -fa c
  | Expr.Add (a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    fun c -> fa c + fb c
  | Expr.Sub (a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    fun c -> fa c - fb c
  | Expr.Mul (a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    fun c -> fa c * fb c
  | Expr.Min (a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    fun c -> min (fa c) (fb c)
  | Expr.Max (a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    fun c -> max (fa c) (fb c)
  | Expr.Div (a, b) ->
    let fa = compile_expr slots a and fb = compile_expr slots b in
    fun c ->
      let d = fb c in
      if d = 0 then invalid_arg "Fastexec: division by zero" else fa c / d

let rec mentions x (e : Expr.t) =
  match e with
  | Expr.Int _ -> false
  | Expr.Var y -> String.equal x y
  | Expr.Neg a -> mentions x a
  | Expr.Add (a, b)
  | Expr.Sub (a, b)
  | Expr.Mul (a, b)
  | Expr.Min (a, b)
  | Expr.Max (a, b)
  | Expr.Div (a, b) -> mentions x a || mentions x b

(* [deriv slots idx e] is d[e]/d[idx] as a closure, when [e] is affine
   in [idx] *within one innermost-loop instance*: a subexpression that
   never mentions [idx] is invariant while that loop runs (the body
   cannot write integers), whatever operators it contains, so only the
   [idx]-bearing spine must be built from +/-/negate and multiplication
   by an invariant factor. MIN/MAX/DIV over [idx] are not affine and
   disqualify the reference. *)
let rec deriv slots idx (e : Expr.t) : (ctx -> int) option =
  if not (mentions idx e) then Some (fun _ -> 0)
  else
    match e with
    | Expr.Int _ -> Some (fun _ -> 0)
    | Expr.Var _ -> Some (fun _ -> 1) (* mentions idx, so it is idx *)
    | Expr.Neg a -> (
      match deriv slots idx a with
      | Some f -> Some (fun c -> -f c)
      | None -> None)
    | Expr.Add (a, b) -> (
      match (deriv slots idx a, deriv slots idx b) with
      | Some fa, Some fb -> Some (fun c -> fa c + fb c)
      | _ -> None)
    | Expr.Sub (a, b) -> (
      match (deriv slots idx a, deriv slots idx b) with
      | Some fa, Some fb -> Some (fun c -> fa c - fb c)
      | _ -> None)
    | Expr.Mul (a, b) ->
      if not (mentions idx a) then
        match deriv slots idx b with
        | Some db ->
          let fa = compile_expr slots a in
          Some (fun c -> fa c * db c)
        | None -> None
      else if not (mentions idx b) then
        match deriv slots idx a with
        | Some da ->
          let fb = compile_expr slots b in
          Some (fun c -> da c * fb c)
        | None -> None
      else None
    | Expr.Min _ | Expr.Max _ | Expr.Div _ -> None

(* How the compiled program reports array accesses: not at all, through
   the legacy per-access observer closure, appended to a batched trace
   buffer, or appended to a run-compressed v2 buffer (both buffers
   intern label ids once at compile time, so the hot path is a couple
   of array stores — and qualifying innermost loops in run mode emit
   one group descriptor per instance instead of touching the buffer
   per access at all). *)
type mode =
  | Silent
  | Observe of Exec.observer
  | Buffer of Trace.t
  | Runbuf of Trace.runbuf

(* References of one statement in execution order: loads left-to-right
   as [compile_rexpr] evaluates them, then the store. *)
let stmt_refs_in_order (st : Stmt.t) =
  let rec loads (e : Stmt.rexpr) =
    match e with
    | Stmt.Const _ | Stmt.Scalar _ | Stmt.Iexpr _ -> []
    | Stmt.Load r -> [ (st.Stmt.label, r, false) ]
    | Stmt.Unop (_, a) -> loads a
    | Stmt.Binop (_, a, b) -> loads a @ loads b
  in
  loads st.Stmt.rhs
  @ (match st.Stmt.lhs with
    | Stmt.Store r -> [ (st.Stmt.label, r, true) ]
    | Stmt.Scalar_set _ -> [])

let exec ~mode ?(init = Exec.default_init) ?params (p : Program.t) =
  let params =
    match params with
    | Some overrides ->
      List.map
        (fun (x, d) ->
          match List.assoc_opt x overrides with
          | Some v -> (x, v)
          | None -> (x, d))
        p.Program.params
    | None -> p.Program.params
  in
  let param x =
    match List.assoc_opt x params with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "Fastexec: unbound parameter %s" x)
  in
  let layout = Layout.build ~param p.Program.decls in
  let data = Hashtbl.create 16 in
  List.iter
    (fun (d : Decl.t) ->
      let n = Layout.size_elements layout d.Decl.name in
      Hashtbl.replace data d.Decl.name (Array.init n (init d.Decl.name)))
    p.Program.decls;
  let slots = new_slots () in
  let sslots = new_slots () in
  List.iter (fun (x, _) -> ignore (slot_of slots x)) params;
  (* Per-array strides (column-major) and base addresses. *)
  let layout_strides = Hashtbl.create 16 in
  List.iter
    (fun (d : Decl.t) ->
      let exts = List.map (fun e -> Expr.eval e param) d.Decl.extents in
      let n = List.length exts in
      let s = Array.make n 1 in
      List.iteri (fun k e -> if k < n - 1 then s.(k + 1) <- s.(k) * e) exts;
      let base = Layout.address layout d.Decl.name (Array.make n 1) in
      let elem = Layout.elem_size layout d.Decl.name in
      Hashtbl.replace layout_strides d.Decl.name (s, base, elem))
    p.Program.decls;
  (* Compile a reference into an (offset, address) pair of closures.
     The offset closure is rank-specialized so the per-access path is a
     pure arithmetic expression over preallocated subscript closures —
     the general rank folds through a tail-recursive helper bound
     outside the closure, so no list node, array or ref cell is
     allocated per access. *)
  let zero_sub = fun (_ : ctx) -> 0 in
  let compile_access (r : Reference.t) =
    let arr = Hashtbl.find data r.Reference.array in
    let s, base, elem = Hashtbl.find layout_strides r.Reference.array in
    let n = List.length r.Reference.subs in
    let fsubs = Array.make (max n 1) zero_sub in
    List.iteri (fun k e -> fsubs.(k) <- compile_expr slots e) r.Reference.subs;
    let offset =
      match n with
      | 0 -> zero_sub
      | 1 ->
        let f0 = fsubs.(0) and s0 = s.(0) in
        fun c -> (f0 c - 1) * s0
      | 2 ->
        let f0 = fsubs.(0) and s0 = s.(0) in
        let f1 = fsubs.(1) and s1 = s.(1) in
        fun c -> ((f0 c - 1) * s0) + ((f1 c - 1) * s1)
      | 3 ->
        let f0 = fsubs.(0) and s0 = s.(0) in
        let f1 = fsubs.(1) and s1 = s.(1) in
        let f2 = fsubs.(2) and s2 = s.(2) in
        fun c -> ((f0 c - 1) * s0) + ((f1 c - 1) * s1) + ((f2 c - 1) * s2)
      | _ ->
        let rec go k acc c =
          if k = n then acc else go (k + 1) (acc + ((fsubs.(k) c - 1) * s.(k))) c
        in
        fun c -> go 0 0 c
    in
    (arr, offset, base, elem)
  in
  (* Byte stride per loop iteration of a reference, as a loop-invariant
     closure — when every subscript is affine in [idx]. *)
  let compile_stride ~idx ~step (r : Reference.t) =
    let s, _, elem = Hashtbl.find layout_strides r.Reference.array in
    let rec go k (subs : Expr.t list) =
      match subs with
      | [] -> Some (fun _ -> 0)
      | sub :: rest -> (
        match (deriv slots idx sub, go (k + 1) rest) with
        | Some d, Some tail ->
          let sk = s.(k) in
          Some (fun c -> (sk * d c) + tail c)
        | _ -> None)
    in
    match go 0 r.Reference.subs with
    | Some slope -> Some (fun c -> step * elem * slope c)
    | None -> None
  in
  (* Expression evaluation is a stack machine over the preallocated
     [ctx.fstack]: every node stores its value into a destination slot
     and the closures return [unit], so no boxed float ever crosses an
     indirect call — a [ctx -> float] closure would box its result on
     every invocation, which dominated the interpreter's per-access
     allocation. Slot [dst] holds the node's value; a binop evaluates
     its left child into [dst] and its right into [dst + 1], so the
     stack depth is the expression tree's right-spine depth. *)
  let fdepth = ref 1 in
  let rec compile_rexpr mode label ~dst (e : Stmt.rexpr) : ctx -> unit =
    if dst >= !fdepth then fdepth := dst + 1;
    match e with
    | Stmt.Const v -> fun c -> c.fstack.(dst) <- v
    | Stmt.Scalar x ->
      let i = slot_of sslots x in
      fun c -> c.fstack.(dst) <- c.scalars.(i)
    | Stmt.Iexpr ie ->
      let f = compile_expr slots ie in
      fun c -> c.fstack.(dst) <- float_of_int (f c)
    | Stmt.Load r -> (
      let arr, offset, base, elem = compile_access r in
      match mode with
      | Observe observer ->
        fun c ->
          let off = offset c in
          c.accesses <- c.accesses + 1;
          observer.Exec.on_access ~label ~addr:(base + (off * elem))
            ~write:false;
          c.fstack.(dst) <- Array.get arr off
      | Buffer tr ->
        let lid = Trace.intern tr label in
        fun c ->
          let off = offset c in
          c.accesses <- c.accesses + 1;
          Trace.record tr ~label:lid ~addr:(base + (off * elem)) ~write:false;
          c.fstack.(dst) <- Array.get arr off
      | Runbuf rb ->
        let lid = Trace.run_intern rb label in
        fun c ->
          let off = offset c in
          c.accesses <- c.accesses + 1;
          Trace.run_record rb ~label:lid ~addr:(base + (off * elem))
            ~write:false;
          c.fstack.(dst) <- Array.get arr off
      | Silent ->
        fun c ->
          c.accesses <- c.accesses + 1;
          c.fstack.(dst) <- Array.get arr (offset c))
    | Stmt.Unop (op, a) -> (
      let fa = compile_rexpr mode label ~dst a in
      (* Direct primitive applications on the slot, not a [g] closure:
         an unknown call returning float would box. *)
      match op with
      | Stmt.Fneg ->
        fun c ->
          fa c;
          c.ops <- c.ops + 1;
          c.fstack.(dst) <- Float.neg c.fstack.(dst)
      | Stmt.Sqrt ->
        fun c ->
          fa c;
          c.ops <- c.ops + 1;
          c.fstack.(dst) <- Float.sqrt (Float.abs c.fstack.(dst))
      | Stmt.Abs ->
        fun c ->
          fa c;
          c.ops <- c.ops + 1;
          c.fstack.(dst) <- Float.abs c.fstack.(dst)
      | Stmt.Exp ->
        fun c ->
          fa c;
          c.ops <- c.ops + 1;
          c.fstack.(dst) <- Float.exp c.fstack.(dst)
      | Stmt.Sin ->
        fun c ->
          fa c;
          c.ops <- c.ops + 1;
          c.fstack.(dst) <- Float.sin c.fstack.(dst)
      | Stmt.Cos ->
        fun c ->
          fa c;
          c.ops <- c.ops + 1;
          c.fstack.(dst) <- Float.cos c.fstack.(dst))
    | Stmt.Binop (op, a, b) -> (
      let fa = compile_rexpr mode label ~dst a in
      let fb = compile_rexpr mode label ~dst:(dst + 1) b in
      match op with
      | Stmt.Fadd ->
        fun c ->
          fa c;
          fb c;
          c.ops <- c.ops + 1;
          c.fstack.(dst) <- c.fstack.(dst) +. c.fstack.(dst + 1)
      | Stmt.Fsub ->
        fun c ->
          fa c;
          fb c;
          c.ops <- c.ops + 1;
          c.fstack.(dst) <- c.fstack.(dst) -. c.fstack.(dst + 1)
      | Stmt.Fmul ->
        fun c ->
          fa c;
          fb c;
          c.ops <- c.ops + 1;
          c.fstack.(dst) <- c.fstack.(dst) *. c.fstack.(dst + 1)
      | Stmt.Fdiv ->
        fun c ->
          fa c;
          fb c;
          c.ops <- c.ops + 1;
          c.fstack.(dst) <- c.fstack.(dst) /. c.fstack.(dst + 1)
      | Stmt.Fmin ->
        fun c ->
          fa c;
          fb c;
          c.ops <- c.ops + 1;
          c.fstack.(dst) <- Float.min c.fstack.(dst) c.fstack.(dst + 1)
      | Stmt.Fmax ->
        fun c ->
          fa c;
          fb c;
          c.ops <- c.ops + 1;
          c.fstack.(dst) <- Float.max c.fstack.(dst) c.fstack.(dst + 1))
  in
  let compile_stmt mode (st : Stmt.t) : ctx -> unit =
    let label = st.Stmt.label in
    let rhs = compile_rexpr mode label ~dst:0 st.Stmt.rhs in
    match st.Stmt.lhs with
    | Stmt.Store r -> (
      let arr, offset, base, elem = compile_access r in
      match mode with
      | Observe observer ->
        fun c ->
          c.iterations <- c.iterations + 1;
          observer.Exec.on_stmt ~label;
          rhs c;
          let off = offset c in
          c.accesses <- c.accesses + 1;
          observer.Exec.on_access ~label ~addr:(base + (off * elem))
            ~write:true;
          Array.set arr off c.fstack.(0)
      | Buffer tr ->
        let lid = Trace.intern tr label in
        fun c ->
          c.iterations <- c.iterations + 1;
          rhs c;
          let off = offset c in
          c.accesses <- c.accesses + 1;
          Trace.record tr ~label:lid ~addr:(base + (off * elem)) ~write:true;
          Array.set arr off c.fstack.(0)
      | Runbuf rb ->
        let lid = Trace.run_intern rb label in
        fun c ->
          c.iterations <- c.iterations + 1;
          rhs c;
          let off = offset c in
          c.accesses <- c.accesses + 1;
          Trace.run_record rb ~label:lid ~addr:(base + (off * elem))
            ~write:true;
          Array.set arr off c.fstack.(0)
      | Silent ->
        fun c ->
          c.iterations <- c.iterations + 1;
          rhs c;
          c.accesses <- c.accesses + 1;
          Array.set arr (offset c) c.fstack.(0))
    | Stmt.Scalar_set x -> (
      let i = slot_of sslots x in
      match mode with
      | Observe observer ->
        fun c ->
          c.iterations <- c.iterations + 1;
          observer.Exec.on_stmt ~label;
          rhs c;
          c.scalars.(i) <- c.fstack.(0)
      | Buffer _ | Runbuf _ | Silent ->
        fun c ->
          c.iterations <- c.iterations + 1;
          rhs c;
          c.scalars.(i) <- c.fstack.(0))
  in
  let rec compile_block mode (b : Loop.block) : ctx -> unit =
    let fns =
      List.map
        (function
          | Loop.Stmt st -> compile_stmt mode st
          | Loop.Loop l -> compile_loop mode l)
        b
    in
    match fns with
    | [ f ] -> f
    | [ f; g ] -> fun c -> f c; g c
    | fns -> fun c -> List.iter (fun f -> f c) fns
  and compile_loop mode (l : Loop.t) : ctx -> unit =
    match mode with
    | Runbuf rb -> (
      match compile_run_loop rb l with
      | Some f -> f
      | None -> compile_loop_plain mode l)
    | Silent | Observe _ | Buffer _ -> compile_loop_plain mode l
  and compile_loop_plain mode (l : Loop.t) : ctx -> unit =
    let h = l.Loop.header in
    let islot = slot_of slots h.Loop.index in
    let flb = compile_expr slots h.Loop.lb in
    let fub = compile_expr slots h.Loop.ub in
    let step = h.Loop.step in
    let body = compile_block mode l.Loop.body in
    if step > 0 then (fun c ->
      let ub = fub c in
      let i = ref (flb c) in
      while !i <= ub do
        c.ienv.(islot) <- !i;
        body c;
        i := !i + step
      done)
    else fun c ->
      let ub = fub c in
      let i = ref (flb c) in
      while !i >= ub do
        c.ienv.(islot) <- !i;
        body c;
        i := !i + step
      done
  (* An innermost loop (straight-line body, no inner control flow) whose
     references all advance by a loop-invariant byte stride compresses
     to one strided-run group per loop instance: the group descriptor is
     emitted at loop entry (base addresses and strides evaluated with
     the index at its lower bound), and the body then runs with silent
     accesses — replaying the group round-robin reproduces the exact
     per-iteration interleaving the per-access trace would have had. *)
  and compile_run_loop rb (l : Loop.t) : (ctx -> unit) option =
    let h = l.Loop.header in
    let idx = h.Loop.index in
    let step = h.Loop.step in
    if
      not
        (List.for_all
           (function Loop.Stmt _ -> true | Loop.Loop _ -> false)
           l.Loop.body)
    then None
    else begin
      let refs =
        List.concat_map
          (function
            | Loop.Stmt st -> stmt_refs_in_order st
            | Loop.Loop _ -> assert false)
          l.Loop.body
      in
      (* One pass straight into flat preallocated arrays — no Option
         triple list, no Array.of_list temporaries. *)
      let n = List.length refs in
      let packed = Array.make (max n 1) 0 in
      let addr_fns = Array.make (max n 1) zero_sub in
      let stride_fns = Array.make (max n 1) zero_sub in
      let qualifies = ref true in
      List.iteri
        (fun j (label, r, write) ->
          if !qualifies then
            match compile_stride ~idx ~step r with
            | Some stride_fn ->
              let _, offset, base, elem = compile_access r in
              packed.(j) <-
                Chunk.pack ~addr:0 ~write ~label:(Trace.run_intern rb label);
              addr_fns.(j) <- (fun c -> base + (offset c * elem));
              stride_fns.(j) <- stride_fn
            | None -> qualifies := false)
        refs;
      if not !qualifies then None
      else begin
        (* Scratch reused across instances: one compiled loop never
           re-enters itself (no recursion, one ctx per run). *)
        let bases = Array.make (max n 1) 0 in
        let strides_rt = Array.make (max n 1) 0 in
        let islot = slot_of slots idx in
        let flb = compile_expr slots h.Loop.lb in
        let fub = compile_expr slots h.Loop.ub in
        let body = compile_block Silent l.Loop.body in
        Some
          (fun c ->
            let lb = flb c in
            let ub = fub c in
            let trip =
              if step > 0 then if lb > ub then 0 else ((ub - lb) / step) + 1
              else if lb < ub then 0
              else ((lb - ub) / -step) + 1
            in
            if trip > 0 then begin
              if n > 0 then begin
                c.ienv.(islot) <- lb;
                for j = 0 to n - 1 do
                  bases.(j) <- addr_fns.(j) c;
                  strides_rt.(j) <- stride_fns.(j) c
                done;
                Trace.run_group rb ~trip ~packed ~bases ~strides:strides_rt n
              end;
              if step > 0 then begin
                let i = ref lb in
                while !i <= ub do
                  c.ienv.(islot) <- !i;
                  body c;
                  i := !i + step
                done
              end
              else begin
                let i = ref lb in
                while !i >= ub do
                  c.ienv.(islot) <- !i;
                  body c;
                  i := !i + step
                done
              end
            end)
      end
    end
  in
  let main = compile_block mode p.Program.body in
  (* Bound the slot count: compile touched every variable. *)
  let nints = max 1 (Hashtbl.length slots.tbl) in
  let nscal = max 1 (Hashtbl.length sslots.tbl) in
  let ctx =
    {
      ienv = Array.make nints 0;
      scalars = Array.make nscal 0.0;
      fstack = Array.make !fdepth 0.0;
      ops = 0;
      accesses = 0;
      iterations = 0;
    }
  in
  List.iter (fun (x, v) -> ctx.ienv.(Hashtbl.find slots.tbl x) <- v) params;
  main ctx;
  (match mode with
  | Buffer tr -> Trace.flush tr
  | Runbuf rb -> Trace.run_flush rb
  | Observe _ | Silent -> ());
  {
    arrays =
      List.map
        (fun (d : Decl.t) -> (d.Decl.name, Hashtbl.find data d.Decl.name))
        p.Program.decls;
    ops = ctx.ops;
    accesses = ctx.accesses;
    iterations = ctx.iterations;
  }

let run ?(observer = Exec.null_observer) ?init ?params p =
  let mode =
    if observer == Exec.null_observer then Silent else Observe observer
  in
  exec ~mode ?init ?params p

let run_traced ?init ?params tr p = exec ~mode:(Buffer tr) ?init ?params p

let run_traced_runs ?init ?params rb p = exec ~mode:(Runbuf rb) ?init ?params p
