type t = { mutable state : int64 }

let golden = 0x9e3779b97f4a7c15L

(* Sebastiano Vigna's SplitMix64 finaliser. *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden;
  mix t.state

let make seed = { state = mix (Int64.of_int seed) }

let derive seed index =
  (* Mix the index through a different constant so streams for
     consecutive indices share no prefix. *)
  let s = mix (Int64.add (Int64.of_int seed)
                 (Int64.mul (Int64.of_int (index + 1)) 0xda942042e4dd58b5L)) in
  { state = s }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.to_int (Int64.shift_right_logical (next t) 2) in
  v mod bound

let range t lo hi =
  if hi < lo then invalid_arg "Rng.range: empty range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let chance t p = float_of_int (int t 1_000_000) < p *. 1_000_000.0

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let weighted t xs =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 xs in
  if total <= 0 then invalid_arg "Rng.weighted: non-positive total weight";
  let n = int t total in
  let rec go n = function
    | [] -> invalid_arg "Rng.weighted: unreachable"
    | (w, x) :: rest -> if n < w then x else go (n - w) rest
  in
  go n xs
