module SS = Set.Make (String)

(* ------------------------------------------------------------ size --- *)

(* Int literals weigh 1 and variables 2, so replacing [N] by [2] in a
   bound, or a compound subscript by [1], strictly shrinks. *)
let rec expr_size (e : Expr.t) =
  match e with
  | Expr.Int _ -> 1
  | Expr.Var _ -> 2
  | Expr.Neg a -> 1 + expr_size a
  | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Min (a, b)
  | Expr.Max (a, b) | Expr.Div (a, b) ->
    1 + expr_size a + expr_size b

let ref_size (r : Reference.t) =
  2 + List.fold_left (fun acc s -> acc + expr_size s) 0 r.Reference.subs

let rec rexpr_size (e : Stmt.rexpr) =
  match e with
  | Stmt.Const _ -> 1
  | Stmt.Scalar _ -> 2
  | Stmt.Iexpr ie -> 1 + expr_size ie
  | Stmt.Load r -> ref_size r
  | Stmt.Unop (_, a) -> 1 + rexpr_size a
  | Stmt.Binop (_, a, b) -> 1 + rexpr_size a + rexpr_size b

let stmt_size (s : Stmt.t) =
  rexpr_size s.Stmt.rhs
  + match s.Stmt.lhs with Stmt.Store r -> ref_size r | Stmt.Scalar_set _ -> 2

let rec node_size = function
  | Loop.Stmt s -> stmt_size s
  | Loop.Loop l ->
    3
    + abs (l.Loop.header.Loop.step - 1)
    + expr_size l.Loop.header.Loop.lb
    + expr_size l.Loop.header.Loop.ub
    + block_size l.Loop.body

and block_size b = List.fold_left (fun acc n -> acc + node_size n) 0 b

let size (p : Program.t) =
  block_size p.Program.body
  + List.fold_left (fun acc (_, v) -> acc + v) 0 p.Program.params
  + List.fold_left
      (fun acc (d : Decl.t) -> acc + 3 + Decl.rank d)
      0 p.Program.decls

(* ------------------------------------------------- candidate edits --- *)

(* Strictly-smaller replacements for an integer expression (bounds and
   subscripts). Every candidate stays within [1, N]-style ranges when
   the original did, so shrunk programs cannot step out of bounds. *)
let expr_candidates (e : Expr.t) =
  let smaller alt = expr_size alt < expr_size e in
  let parts =
    match e with
    | Expr.Int _ | Expr.Var _ -> []
    | Expr.Neg a -> [ a ]
    | Expr.Add (a, b) | Expr.Sub (a, b) | Expr.Mul (a, b) | Expr.Min (a, b)
    | Expr.Max (a, b) | Expr.Div (a, b) ->
      [ a; b ]
  in
  List.filter smaller (Expr.Int 1 :: Expr.Int 2 :: parts)

let sub_candidates = expr_candidates

let ref_candidates (r : Reference.t) =
  List.concat
    (List.mapi
       (fun i s ->
         List.map
           (fun s' ->
             {
               r with
               Reference.subs =
                 List.mapi
                   (fun j x -> if i = j then s' else x)
                   r.Reference.subs;
             })
           (sub_candidates s))
       r.Reference.subs)

let rec rexpr_candidates (e : Stmt.rexpr) =
  let smaller alt = rexpr_size alt < rexpr_size e in
  let structural =
    match e with
    | Stmt.Const _ | Stmt.Scalar _ -> []
    | Stmt.Iexpr ie -> List.map (fun x -> Stmt.Iexpr x) (expr_candidates ie)
    | Stmt.Load r -> List.map (fun x -> Stmt.Load x) (ref_candidates r)
    | Stmt.Unop (op, a) ->
      (a :: List.map (fun a' -> Stmt.Unop (op, a')) (rexpr_candidates a))
    | Stmt.Binop (op, a, b) ->
      a :: b
      :: List.map (fun a' -> Stmt.Binop (op, a', b)) (rexpr_candidates a)
      @ List.map (fun b' -> Stmt.Binop (op, a, b')) (rexpr_candidates b)
  in
  List.filter smaller (Stmt.Const 1.0 :: structural)

let stmt_candidates (s : Stmt.t) =
  let rhs = List.map (fun r -> { s with Stmt.rhs = r }) (rexpr_candidates s.Stmt.rhs) in
  let lhs =
    match s.Stmt.lhs with
    | Stmt.Store r ->
      List.map (fun r' -> { s with Stmt.lhs = Stmt.Store r' }) (ref_candidates r)
    | Stmt.Scalar_set _ -> []
  in
  rhs @ lhs

let header_candidates (h : Loop.header) =
  let with_lb lb = { h with Loop.lb = lb } in
  let with_ub ub = { h with Loop.ub = ub } in
  List.map with_lb (expr_candidates h.Loop.lb)
  @ List.map with_ub (expr_candidates h.Loop.ub)
  @ (if h.Loop.step <> 1 then [ { h with Loop.step = 1 } ] else [])

(* Substitute an index everywhere in a subtree, including the bounds of
   nested loop headers. *)
let rec subst_node x e = function
  | Loop.Stmt s -> Loop.Stmt (Stmt.subst_index s x e)
  | Loop.Loop l ->
    let h = l.Loop.header in
    Loop.Loop
      {
        Loop.header =
          { h with Loop.lb = Expr.subst h.Loop.lb x e;
            ub = Expr.subst h.Loop.ub x e };
        body = List.map (subst_node x e) l.Loop.body;
      }

(* All strictly-smaller variants of a block: drop a node, rewrite a
   node in place, or splice a constant-lower-bound loop's body with the
   index substituted by that constant. *)
let rec block_candidates (b : Loop.block) : Loop.block list =
  let at i f = List.mapi (fun j x -> if i = j then f x else [ x ]) b |> List.concat in
  List.concat
    (List.mapi
       (fun i node ->
         (* drop *)
         [ List.filteri (fun j _ -> j <> i) b ]
         @
         match node with
         | Loop.Stmt s ->
           List.map (fun s' -> at i (fun _ -> [ Loop.Stmt s' ])) (stmt_candidates s)
         | Loop.Loop l ->
           (* inline: DO I = k, ... -> body with I := k *)
           (match l.Loop.header.Loop.lb with
           | Expr.Int k ->
             let inlined =
               List.map
                 (subst_node l.Loop.header.Loop.index (Expr.Int k))
                 l.Loop.body
             in
             [ at i (fun _ -> inlined) ]
           | _ -> [])
           @ List.map
               (fun h -> at i (fun _ -> [ Loop.Loop { l with Loop.header = h } ]))
               (header_candidates l.Loop.header)
           @ List.map
               (fun body' -> at i (fun _ -> [ Loop.Loop { l with Loop.body = body' } ]))
               (block_candidates l.Loop.body))
       b)

let referenced_arrays (p : Program.t) =
  let acc = ref SS.empty in
  let rec go b =
    List.iter
      (function
        | Loop.Stmt s ->
          List.iter
            (fun (r, _) -> acc := SS.add r.Reference.array !acc)
            (Stmt.refs s)
        | Loop.Loop l -> go l.Loop.body)
      b
  in
  go p.Program.body;
  !acc

let candidates (p : Program.t) =
  let bodies =
    List.map (fun b -> { p with Program.body = b }) (block_candidates p.Program.body)
  in
  let params =
    List.concat_map
      (fun (x, v) ->
        if v > 2 then
          [
            {
              p with
              Program.params =
                List.map
                  (fun (y, w) -> if x = y then (y, v - 1) else (y, w))
                  p.Program.params;
            };
          ]
        else [])
      p.Program.params
  in
  let decls =
    let used = referenced_arrays p in
    List.filter_map
      (fun (d : Decl.t) ->
        if SS.mem d.Decl.name used then None
        else
          Some
            {
              p with
              Program.decls =
                List.filter
                  (fun (d' : Decl.t) -> d'.Decl.name <> d.Decl.name)
                  p.Program.decls;
            })
      p.Program.decls
  in
  bodies @ params @ decls

(* ---------------------------------------------------------- driver --- *)

let shrink ~fails p =
  let steps = ref 0 in
  let current = ref p in
  let continue_ = ref true in
  (* The size metric strictly decreases on every accepted step, so this
     terminates; the cap is belt and braces. *)
  while !continue_ && !steps < 1000 do
    let sz = size !current in
    let next =
      List.find_opt
        (fun c ->
          size c < sz && Result.is_ok (Program.validate c) && fails c)
        (candidates !current)
    in
    match next with
    | Some c ->
      incr steps;
      current := c
    | None -> continue_ := false
  done;
  (!current, !steps)
