module L = Locality_lang

let entry ~seed ~index ~finding p =
  String.concat "\n"
    [
      "! memoria fuzz reproducer (shrunk)";
      Printf.sprintf "! seed=%d index=%d oracle=%s" seed index
        (Oracle.kind_to_string finding.Oracle.kind);
      Printf.sprintf "! %s" finding.Oracle.detail;
      Pretty.program_to_string p;
      "";
    ]

let file_name ~seed ~index ~kind =
  Printf.sprintf "fuzz_s%d_i%d_%s.f" (seed land 0x7FFFFFFF) index
    (Oracle.kind_to_string kind)

let save ~dir ~seed ~index ~finding p =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path =
    Filename.concat dir (file_name ~seed ~index ~kind:finding.Oracle.kind)
  in
  let oc = open_out path in
  output_string oc (entry ~seed ~index ~finding p);
  close_out oc;
  path

let load_dir dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f -> Filename.check_suffix f ".f")
    |> List.sort String.compare
    |> List.map (fun f ->
           let path = Filename.concat dir f in
           let ic = open_in_bin path in
           let len = in_channel_length ic in
           let src = really_input_string ic len in
           close_in ic;
           (f, L.Lower.parse_program src))
