(** Seeded random loop-nest generator.

    Programs are built from a [size] budget (roughly the number of loops
    and statements) and draw from the whole surface the optimizer and
    the frontend claim to support: rectangular and triangular bounds,
    MIN/MAX/DIV bound expressions, stepped and reversed loops, imperfect
    and multi-statement bodies, scalar temporaries and reductions, and
    aliased references (several references to one array per statement,
    reads overlapping writes).

    Guarantees, by construction:
    - {!Program.validate} accepts every generated program;
    - every subscript stays inside its declared extent for every
      iteration (arrays carry two elements of slack per dimension);
    - execution terminates and touches no unset scalar;
    - value growth is bounded (multiplicative constants are small, no
      EXP), so checksums stay finite in practice;
    - generation is a pure function of [(seed, index)]: labels come from
      a per-program counter, not the global {!Stmt.fresh_label} stream,
      so parallel generation is byte-for-byte reproducible. *)

val generate : seed:int -> index:int -> size:int -> Program.t
(** [generate ~seed ~index ~size] is program [index] of the stream for
    [seed], with at most roughly [size] loops-plus-statements (minimum
    effective size 4). *)
