(** Greedy failure-preserving program minimisation.

    Candidate edits — dropping statements and whole nests, inlining
    constant-bound loops, shrinking bounds and the PARAMETER value,
    simplifying subscripts and right-hand sides, dropping unreferenced
    arrays — each make the program strictly smaller under {!size}, so
    the greedy loop terminates. A candidate is kept only when it still
    validates and [fails] still holds; [fails] is expected to swallow
    its own exceptions. *)

val size : Program.t -> int
(** Structural size: every expression node, statement, loop header and
    declaration weighted so that each shrink edit strictly decreases
    it (in particular [Int] literals weigh less than [Var]s). *)

val shrink : fails:(Program.t -> bool) -> Program.t -> Program.t * int
(** [shrink ~fails p] is the minimal still-failing program reachable
    from [p] by greedy edits, with the number of accepted shrink
    steps. [p] itself is assumed failing. *)
