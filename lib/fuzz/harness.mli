(** The fuzzing campaign: generate, check, shrink, record.

    Work items fan out over the {!Locality_par.Pool} domain pool; each
    item derives its own RNG stream from [(seed, index)] and the
    results are folded in index order, so a campaign's outcome — and
    its Obs event stream — is byte-for-byte identical for any
    [MEMORIA_JOBS] value.

    Obs counters: [fuzz.programs] (generated), [fuzz.failures]
    (programs with at least one surviving finding) and
    [fuzz.shrink_steps] (accepted shrink edits). *)

type failure = {
  index : int;  (** generation index within the campaign *)
  findings : Oracle.finding list;  (** what disagreed, pre-shrink *)
  program : Program.t;  (** as generated *)
  shrunk : Program.t;  (** minimized, still failing *)
  shrink_steps : int;
}

type outcome = {
  generated : int;
  failures : failure list;  (** in index order *)
  corpus_files : string list;  (** reproducers written, if a dir was given *)
}

val check_one : oracles:Oracle.kind list -> Program.t -> Oracle.finding list
(** Exception-safe {!Oracle.check}: an escaping exception (a crash in
    any pipeline stage) is itself reported as an [`Exec] finding. *)

val run :
  ?jobs:int ->
  ?oracles:Oracle.kind list ->
  ?corpus_dir:string ->
  seed:int ->
  count:int ->
  max_size:int ->
  unit ->
  outcome
(** Run a campaign of [count] programs. [oracles] defaults to
    {!Oracle.all}; failures are shrunk against the oracle kinds that
    originally fired and, when [corpus_dir] is given, written there as
    reproducer files. *)
