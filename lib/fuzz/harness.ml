module Obs = Locality_obs.Obs
module Pool = Locality_par.Pool

type failure = {
  index : int;
  findings : Oracle.finding list;
  program : Program.t;
  shrunk : Program.t;
  shrink_steps : int;
}

type outcome = {
  generated : int;
  failures : failure list;
  corpus_files : string list;
}

let check_one ~oracles p =
  match Oracle.check ~oracles p with
  | findings -> findings
  | exception e ->
    [
      {
        Oracle.kind = `Exec;
        detail = "exception: " ^ Printexc.to_string e;
      };
    ]

let run ?jobs ?(oracles = Oracle.all) ?corpus_dir ~seed ~count ~max_size () =
  let work index =
    let p = Gen.generate ~seed ~index ~size:max_size in
    Obs.counter "fuzz.programs" 1;
    match check_one ~oracles p with
    | [] -> None
    | findings ->
      Obs.counter "fuzz.failures" 1;
      (* Shrink against exactly the disagreements that fired — oracle
         kind plus whether it was a genuine disagreement or an escaping
         exception — so minimisation cannot wander onto a different
         class of bug (e.g. from a wrong transform onto a program that
         merely crashes the interpreter). *)
      let signature (f : Oracle.finding) =
        (f.Oracle.kind, String.starts_with ~prefix:"exception:" f.Oracle.detail)
      in
      let signatures = List.sort_uniq compare (List.map signature findings) in
      let kinds = List.sort_uniq compare (List.map fst signatures) in
      let fails q =
        List.exists
          (fun f -> List.mem (signature f) signatures)
          (check_one ~oracles:kinds q)
      in
      let shrunk, shrink_steps = Shrink.shrink ~fails p in
      Obs.counter "fuzz.shrink_steps" shrink_steps;
      Some { index; findings; program = p; shrunk; shrink_steps }
  in
  let results = Pool.map ?jobs work (List.init count (fun i -> i)) in
  let failures = List.filter_map Fun.id results in
  let corpus_files =
    match corpus_dir with
    | None -> []
    | Some dir ->
      List.map
        (fun f ->
          Corpus.save ~dir ~seed ~index:f.index
            ~finding:(List.hd f.findings) f.shrunk)
        failures
  in
  { generated = count; failures; corpus_files }
