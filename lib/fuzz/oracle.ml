module Driver = Locality_driver.Driver
module Measure = Locality_interp.Measure
module Exec = Locality_interp.Exec
module Fastexec = Locality_interp.Fastexec
module Trace = Locality_interp.Trace
module Machine = Locality_cachesim.Machine
module Analytic = Locality_analytic.Analytic
module Sample = Locality_sample.Sample
module L = Locality_lang

type kind = [ `Exec | `Replay | `Roundtrip | `Cgen | `Analytic | `Sample ]

let all = [ `Exec; `Replay; `Roundtrip; `Cgen; `Analytic; `Sample ]

let kind_to_string = function
  | `Exec -> "exec"
  | `Replay -> "replay"
  | `Roundtrip -> "roundtrip"
  | `Cgen -> "cgen"
  | `Analytic -> "analytic"
  | `Sample -> "sample"

let kind_of_string = function
  | "exec" -> Ok `Exec
  | "replay" -> Ok `Replay
  | "roundtrip" -> Ok `Roundtrip
  | "cgen" -> Ok `Cgen
  | "analytic" -> Ok `Analytic
  | "sample" -> Ok `Sample
  | s ->
    Error
      (Printf.sprintf
         "unknown oracle %s (expected \
          exec|replay|roundtrip|cgen|analytic|sample)" s)

type finding = { kind : kind; detail : string }

let compiler =
  lazy
    (List.find_opt
       (fun cc ->
         Sys.command (Printf.sprintf "command -v %s >/dev/null 2>&1" cc) = 0)
       [ "cc"; "gcc"; "clang" ])

let cgen_available () = Lazy.force compiler <> None

let transform p =
  let cfg =
    Driver.config ~machines:[] ~store:None
      (Driver.Source_program { name = p.Program.name; program = p })
  in
  Result.map (fun (r : Driver.result) -> r.Driver.transformed) (Driver.run cfg)

(* Values must agree bitwise (covers inf/nan produced identically on
   both sides) or within a small relative tolerance (covers reductions
   reassociated by reordering transforms). *)
let close a b =
  Float.equal a b
  || Float.abs (a -. b)
     <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let check_exec p pt =
  let ra = Exec.run p and rb = Exec.run pt in
  let rec arrays = function
    | [], [] -> None
    | (name, a) :: resta, (name', b) :: restb ->
      if name <> name' then
        Some (Printf.sprintf "array order differs: %s vs %s" name name')
      else if Array.length a <> Array.length b then
        Some
          (Printf.sprintf "array %s: %d vs %d elements" name (Array.length a)
             (Array.length b))
      else begin
        let bad = ref None in
        Array.iteri
          (fun i x ->
            if !bad = None && not (close x b.(i)) then
              bad :=
                Some
                  (Printf.sprintf "array %s element %d: %.17g vs %.17g" name i
                     x b.(i)))
          a;
        match !bad with None -> arrays (resta, restb) | some -> some
      end
    | _ -> Some "different array sets"
  in
  match arrays (ra.Exec.arrays, rb.Exec.arrays) with
  | None -> []
  | Some detail -> [ { kind = `Exec; detail } ]

let region_equal (a : Measure.region) (b : Measure.region) =
  a.Measure.accesses = b.Measure.accesses
  && a.Measure.hits = b.Measure.hits
  && a.Measure.cold = b.Measure.cold

let check_replay ~which p =
  let run mode =
    Measure.replay_prepared (Measure.prepare ~mode ~store:None p)
  in
  let a = run Measure.Per_access and b = run Measure.Runs in
  let diffs =
    List.filter_map
      (fun (field, same) -> if same then None else Some field)
      [
        ("whole", region_equal a.Measure.whole b.Measure.whole);
        ("optimized", region_equal a.Measure.optimized b.Measure.optimized);
        ("ops", a.Measure.ops = b.Measure.ops);
        ("cycles", Float.equal a.Measure.cycles b.Measure.cycles);
        ("seconds", Float.equal a.Measure.seconds b.Measure.seconds);
      ]
  in
  if diffs = [] then []
  else
    [
      {
        kind = `Replay;
        detail =
          Printf.sprintf "%s: per-access and runs replay disagree on %s" which
            (String.concat ", " diffs);
      };
    ]

let first_diff_line a b =
  let la = String.split_on_char '\n' a and lb = String.split_on_char '\n' b in
  let rec go n = function
    | x :: xs, y :: ys -> if x = y then go (n + 1) (xs, ys) else (n, x, y)
    | x :: _, [] -> (n, x, "<end>")
    | [], y :: _ -> (n, "<end>", y)
    | [], [] -> (n, "", "")
  in
  go 1 (la, lb)

let check_roundtrip ~which p =
  let fail detail = [ { kind = `Roundtrip; detail = which ^ ": " ^ detail } ] in
  let text = Pretty.program_to_string p in
  match L.Lower.parse_program text with
  | exception L.Lexer.Error (msg, loc) ->
    fail
      (Printf.sprintf "lex error %d:%d: %s" loc.L.Lexer.line loc.L.Lexer.col
         msg)
  | exception L.Parser.Error (msg, loc) ->
    fail
      (Printf.sprintf "parse error %d:%d: %s" loc.L.Lexer.line loc.L.Lexer.col
         msg)
  | exception L.Lower.Error msg -> fail (Printf.sprintf "lower error: %s" msg)
  | p2 ->
    let text2 = Pretty.program_to_string p2 in
    if String.equal text text2 then []
    else
      let n, a, b = first_diff_line text text2 in
      fail (Printf.sprintf "reprint differs at line %d: %S vs %S" n a b)

let interp_checksum p =
  let r = Exec.run p in
  List.fold_left
    (fun acc (_, a) -> Array.fold_left ( +. ) acc a)
    0.0 r.Exec.arrays

(* Compile and run the generated C, returning its printed checksum. *)
let run_c_checksum name csrc =
  match Lazy.force compiler with
  | None -> `No_compiler
  | Some cc ->
    let dir = Filename.get_temp_dir_name () in
    let base = Filename.concat dir ("memoria_fuzz_" ^ name) in
    let cfile = base ^ ".c" and exe = base ^ ".out" and outf = base ^ ".txt" in
    let oc = open_out cfile in
    output_string oc csrc;
    close_out oc;
    let result =
      if
        Sys.command
          (Printf.sprintf "%s -O1 -o %s %s -lm 2>/dev/null" cc exe cfile)
        <> 0
      then `Failed "C compilation failed"
      else if Sys.command (Printf.sprintf "%s > %s" exe outf) <> 0 then
        `Failed "compiled binary exited non-zero"
      else begin
        let ic = open_in outf in
        let line = input_line ic in
        close_in ic;
        match float_of_string_opt line with
        | Some c -> `Checksum c
        | None -> `Failed (Printf.sprintf "unparsable checksum output %S" line)
      end
    in
    List.iter
      (fun f -> try Sys.remove f with Sys_error _ -> ())
      [ cfile; exe; outf ];
    result

let check_cgen ~which p =
  let fail detail = [ { kind = `Cgen; detail = which ^ ": " ^ detail } ] in
  match run_c_checksum (p.Program.name ^ "_" ^ which) (Pretty_c.program_to_c p)
  with
  | `No_compiler -> []
  | `Failed msg -> fail msg
  | `Checksum native ->
    let expected = interp_checksum p in
    if close native expected then []
    else
      fail
        (Printf.sprintf "native checksum %.9g, interpreter %.9g" native
           expected)

(* The closed-form analytic model against the simulator: every bracket
   it reports must contain the simulated value, and when it claims
   exactness the counts must be simulator-equal. A fallback verdict is
   not a finding — the model is allowed to refuse, never to be wrong.
   Region marking is exercised with a deterministic every-other-label
   set. *)
let check_analytic ~which p =
  let labels =
    let rec stmts = function
      | Loop.Stmt s -> [ s.Stmt.label ]
      | Loop.Loop l -> List.concat_map stmts l.Loop.body
    in
    List.concat_map stmts p.Program.body
    |> List.filteri (fun i _ -> i mod 2 = 0)
  in
  List.concat_map
    (fun config ->
      match Analytic.estimate ~optimized_labels:labels ~config p with
      | Error _ -> []
      | Ok est ->
        let sim =
          Measure.replay_prepared ~config ~optimized_labels:labels
            (Measure.prepare ~mode:Measure.Runs ~store:None p)
        in
        let fail detail =
          {
            kind = `Analytic;
            detail =
              Printf.sprintf "%s on %s: %s" which config.Locality_cachesim.Cache.name
                detail;
          }
        in
        let bracketed =
          List.filter_map
            (fun (what, v, (b : Analytic.bracket)) ->
              if Analytic.in_bracket v b then None
              else
                Some
                  (fail
                     (Printf.sprintf "simulated %s %d outside bracket [%d,%d]"
                        what v b.Analytic.lo b.Analytic.hi)))
            [
              ("accesses", sim.Measure.whole.Measure.accesses,
               est.Analytic.b_accesses);
              ("hits", sim.Measure.whole.Measure.hits, est.Analytic.b_hits);
              ("cold", sim.Measure.whole.Measure.cold, est.Analytic.b_cold);
              ("opt accesses", sim.Measure.optimized.Measure.accesses,
               est.Analytic.b_opt_accesses);
              ("opt hits", sim.Measure.optimized.Measure.hits,
               est.Analytic.b_opt_hits);
              ("opt cold", sim.Measure.optimized.Measure.cold,
               est.Analytic.b_opt_cold);
              ("ops", sim.Measure.ops, est.Analytic.b_ops);
            ]
        in
        let exact =
          if not est.Analytic.e_exact then []
          else
            List.filter_map
              (fun (what, simv, anav) ->
                if simv = anav then None
                else
                  Some
                    (fail
                       (Printf.sprintf
                          "claimed exact but %s differs: simulated %d, \
                           analytic %d"
                          what simv anav)))
              [
                ("accesses", sim.Measure.whole.Measure.accesses,
                 est.Analytic.e_whole.Analytic.c_accesses);
                ("hits", sim.Measure.whole.Measure.hits,
                 est.Analytic.e_whole.Analytic.c_hits);
                ("cold", sim.Measure.whole.Measure.cold,
                 est.Analytic.e_whole.Analytic.c_cold);
                ("opt accesses", sim.Measure.optimized.Measure.accesses,
                 est.Analytic.e_optimized.Analytic.c_accesses);
                ("opt hits", sim.Measure.optimized.Measure.hits,
                 est.Analytic.e_optimized.Analytic.c_hits);
                ("opt cold", sim.Measure.optimized.Measure.cold,
                 est.Analytic.e_optimized.Analytic.c_cold);
                ("ops", sim.Measure.ops, est.Analytic.e_ops);
              ]
        in
        bracketed @ exact)
    [ Machine.cache1; Machine.cache2 ]

(* The SHARDS sampled profiler (lib/sample) against ground truth, on
   the program's own run-compressed trace. Three claims:

   1. Exactness: at rate 1.0 with a budget the footprint never exceeds,
      the set-sampling estimator IS the simulator — estimated hits and
      cold equal the exact counts on both reference geometries.
   2. The group fast path is invisible: feeding the stream through
      [consume_runchunk] (bulk-skipping group descriptors) and feeding
      every expanded access through [access] produce structurally equal
      profiles, including under threshold adaptation (tiny budget) and
      at sub-1.0 rates.
   3. Exact tallies stay exact at any rate: [pf_accesses] matches the
      trace's logical record count. *)
let check_sample ~which p =
  let module Cache = Locality_cachesim.Cache in
  let fail detail = { kind = `Sample; detail = which ^ ": " ^ detail } in
  let rb, finish = Trace.run_capturing () in
  ignore (Fastexec.run_traced_runs rb p);
  let cap = finish () in
  let labels = Trace.(cap.run_trace_labels) in
  let build ~rate ~max_tracked ~sets ~line_bytes ~grouped =
    let s = Sample.create ~rate ~max_tracked ~sets ~line_bytes () in
    (if grouped then Trace.iter_run_chunks cap (Sample.consume_runchunk s)
     else
       Trace.iter_runs cap (fun ~label ~addr ~write ->
           ignore write;
           Sample.access s ~label ~addr));
    Sample.profile s ~labels ~ops:0
  in
  let exactness =
    List.concat_map
      (fun (config : Cache.config) ->
        let sets =
          config.Cache.size_bytes / (config.Cache.line_bytes * config.Cache.assoc)
        in
        let pf =
          build ~rate:1.0 ~max_tracked:max_int ~sets
            ~line_bytes:config.Cache.line_bytes ~grouped:true
        in
        let est_hits = ref 0.0 in
        Array.iteri
          (fun i _ ->
            est_hits := !est_hits +. Sample.hits_under pf i ~ways:config.Cache.assoc)
          pf.Sample.pf_labels;
        let est_cold = Sample.cold pf in
        let sim =
          Measure.replay_prepared ~config
            (Measure.prepare ~mode:Measure.Runs ~store:None p)
        in
        let whole = sim.Measure.whole in
        List.filter_map
          (fun (what, est, exact) ->
            if Float.equal est (float_of_int exact) then None
            else
              Some
                (fail
                   (Printf.sprintf
                      "%s: rate-1.0 profile %s estimate %.1f, simulator %d"
                      config.Cache.name what est exact)))
          [
            ("hits", !est_hits, whole.Measure.hits);
            ("cold", est_cold, whole.Measure.cold);
            ("accesses", float_of_int pf.Sample.pf_accesses,
             whole.Measure.accesses);
          ])
      [ Machine.cache1; Machine.cache2 ]
  in
  let equivalence =
    List.concat_map
      (fun (rate, max_tracked, sets, line_bytes) ->
        let a = build ~rate ~max_tracked ~sets ~line_bytes ~grouped:true in
        let b = build ~rate ~max_tracked ~sets ~line_bytes ~grouped:false in
        (if a = b then []
         else
           [
             fail
               (Printf.sprintf
                  "group-fed and per-access profiles differ (rate=%g \
                   max_tracked=%d sets=%d line=%dB)"
                  rate max_tracked sets line_bytes);
           ])
        @
        if a.Sample.pf_accesses = Trace.(cap.run_records) then []
        else
          [
            fail
              (Printf.sprintf
                 "profile counted %d accesses, trace has %d"
                 a.Sample.pf_accesses
                 Trace.(cap.run_records));
          ])
      [ (1.0, 64, 128, 32); (0.25, 65536, 128, 32); (0.25, 64, 1, 64) ]
  in
  exactness @ equivalence

let check ?(oracles = all) p =
  let want k = List.mem k oracles in
  match transform p with
  | Error msg -> [ { kind = `Exec; detail = "compound transform failed: " ^ msg } ]
  | Ok pt ->
    let versions = [ ("original", p); ("transformed", pt) ] in
    let on_both f =
      List.concat_map (fun (which, v) -> f ~which v) versions
    in
    (if want `Exec then check_exec p pt else [])
    @ (if want `Replay then on_both check_replay else [])
    @ (if want `Roundtrip then on_both check_roundtrip else [])
    @ (if want `Cgen && cgen_available () then on_both check_cgen else [])
    @ (if want `Analytic then on_both check_analytic else [])
    @ if want `Sample then on_both check_sample else []
