(** Reproducer corpus: minimized failing programs, one mini-language
    file each, replayed by the test suite.

    A corpus file is the shrunk program's canonical {!Pretty} text
    prefixed by [!]-comment headers recording the generating seed and
    index, the oracle that failed and its one-line detail — everything
    needed to regenerate or triage the finding. The frontend treats the
    headers as comments, so a corpus file parses as an ordinary
    program. *)

val entry :
  seed:int -> index:int -> finding:Oracle.finding -> Program.t -> string
(** File contents for one reproducer. *)

val file_name : seed:int -> index:int -> kind:Oracle.kind -> string
(** ["fuzz_s<seed>_i<index>_<oracle>.f"]. *)

val save :
  dir:string ->
  seed:int ->
  index:int ->
  finding:Oracle.finding ->
  Program.t ->
  string
(** Write the reproducer under [dir] (created if missing) and return
    its path. *)

val load_dir : string -> (string * Program.t) list
(** Parse every [.f] file in a directory, sorted by name; [[]] when
    the directory does not exist. Raises on unparsable entries — a
    broken corpus file is itself a regression. *)
