(** The differential oracle stack.

    Each oracle checks one agreement the repo's execution layers must
    hold for {e every} legal program:

    - [`Exec]: the {!Locality_core.Compound} transform preserves
      semantics — original and transformed programs compute the same
      arrays under the reference interpreter (element-wise, with a small
      relative tolerance for reassociated reductions; non-finite values
      must match bitwise).
    - [`Replay]: the v1 per-access and v2 run-compressed trace formats
      produce field-identical {!Locality_interp.Measure.run} statistics,
      on both program versions.
    - [`Roundtrip]: {!Pretty} output re-parses through the [Lang]
      frontend to a program with the same canonical text, on both
      program versions.
    - [`Cgen]: the {!Pretty_c} native backend (when a C compiler is on
      [PATH]) computes the interpreter's checksum, on both versions.
    - [`Analytic]: the closed-form locality model
      ({!Locality_analytic.Analytic}) agrees with the trace-replay
      simulator on both program versions under both machine
      geometries — every bracket it reports contains the simulated
      value, and counts are simulator-equal whenever it claims
      exactness. A fallback verdict is allowed (the model may refuse a
      program), a wrong number never is.
    - [`Sample]: the SHARDS sampled profiler
      ({!Locality_sample.Sample}) is simulator-equal at rate 1.0 under
      an unexceeded tracking budget on both machine geometries, its
      group-descriptor fast path produces the profile per-access
      feeding would (including under threshold adaptation and at
      sub-1.0 rates), and its exact access tallies match the trace, on
      both program versions.

    Oracles are pure observers: a failed check is returned as a
    {!finding}, never raised. *)

type kind = [ `Exec | `Replay | `Roundtrip | `Cgen | `Analytic | `Sample ]

val all : kind list
(** Every oracle, in check order. *)

val kind_of_string : string -> (kind, string) result
val kind_to_string : kind -> string

type finding = {
  kind : kind;
  detail : string;  (** one-line human-readable disagreement *)
}

val cgen_available : unit -> bool
(** Whether a C compiler ([cc]/[gcc]/[clang]) is on [PATH]; memoised. *)

val transform : Program.t -> (Program.t, string) result
(** The program under the default {!Locality_driver.Driver} compound
    transform, store disabled. Errors are pipeline failures (themselves
    findings, reported by {!check} as [`Exec]). *)

val check : ?oracles:kind list -> Program.t -> finding list
(** Run the requested oracles (default {!all}, with [`Cgen] skipped
    when no compiler is present) against one generated program. The
    compound transform runs once and is shared by all oracles. *)
