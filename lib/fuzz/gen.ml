(* Random program generation.

   Safety is enforced structurally rather than checked after the fact:

   - Index values: every loop bound is built so the index stays in
     [1, N].  Lower bounds are Int 1/2, an outer index, or
     MAX(1, outer-2); upper bounds are N, N-1, N/2, an outer index, or
     MIN(N, outer+2); reversed loops run N..1.  We track a conservative
     per-index lower bound so negative subscript offsets (I-c) are only
     emitted when c < lower bound.
   - Extents: every array dimension is N+2, so subscripts I, I+1, I+2,
     N+1-I and small constants are always in range.
   - Scalars: only scalars assigned at top level (before any loop) are
     ever read; loop bodies may re-assign them (reductions) but never
     introduce fresh ones, since a loop's range can be empty at run
     time (e.g. DO J = I, N/2) and Exec faults on unset scalars.
   - Values: multiplication and division always pair a subexpression
     with a small constant, and EXP is never emitted, so magnitudes
     grow geometrically with small ratios instead of squaring. *)

type ctx = {
  rng : Rng.t;
  mutable budget : int;
  mutable label : int;
  mutable scalars : string list; (* initialised at top level, readable *)
  arrays : (string * int) list; (* name, rank *)
}

let index_names = [| "I"; "J"; "K" |]
let scalar_pool = [ "S"; "T"; "C" ]
let consts = [ 0.25; 0.5; 0.75; 1.0; 1.5; 2.0; 3.0 ]
let mul_consts = [ 0.25; 0.5; 0.75; 1.25 ]

let fresh_label ctx =
  ctx.label <- ctx.label + 1;
  Printf.sprintf "S%d" ctx.label

(* env is innermost-first [(index, conservative lower bound); ...];
   upper bounds are always <= N by construction. *)

let gen_sub ctx env =
  let g = ctx.rng in
  if env = [] then Expr.Int (Rng.range g 1 3)
  else
    let i, lo = Rng.pick g env in
    Rng.weighted g
      ([
         (6, Expr.Var i);
         (2, Expr.Add (Var i, Int (Rng.range g 1 2)));
         (1, Expr.Int (Rng.range g 1 3));
         (1, Expr.Sub (Add (Var "N", Int 1), Var i));
       ]
      @ if lo >= 2 then [ (2, Expr.Sub (Var i, Int (Rng.range g 1 (lo - 1)))) ]
        else [])

let gen_load ctx env =
  let g = ctx.rng in
  let name, rank = Rng.pick g ctx.arrays in
  Stmt.Load (Reference.make name (List.init rank (fun _ -> gen_sub ctx env)))

let rec gen_rexpr ctx env fuel =
  let g = ctx.rng in
  let atom () =
    Rng.weighted g
      ([
         (6, `Load);
         (2, `Const);
       ]
      @ (if ctx.scalars <> [] then [ (2, `Scalar) ] else [])
      @ if env <> [] then [ (1, `Iexpr) ] else [])
    |> function
    | `Load -> gen_load ctx env
    | `Const -> Stmt.Const (Rng.pick g consts)
    | `Scalar -> Stmt.Scalar (Rng.pick g ctx.scalars)
    | `Iexpr -> Stmt.Iexpr (Expr.Var (fst (Rng.pick g env)))
  in
  if fuel <= 0 then atom ()
  else
    match
      Rng.weighted g
        [ (4, `Atom); (5, `Addsub); (2, `Mul); (1, `Div); (2, `Minmax);
          (1, `Unop) ]
    with
    | `Atom -> atom ()
    | `Addsub ->
      let op = if Rng.bool g then Stmt.Fadd else Stmt.Fsub in
      Stmt.Binop (op, gen_rexpr ctx env (fuel - 1), gen_rexpr ctx env (fuel - 1))
    | `Mul ->
      Stmt.Binop
        (Stmt.Fmul, gen_rexpr ctx env (fuel - 1),
         Stmt.Const (Rng.pick g mul_consts))
    | `Div ->
      Stmt.Binop
        (Stmt.Fdiv, gen_rexpr ctx env (fuel - 1),
         Stmt.Const (if Rng.bool g then 2.0 else 4.0))
    | `Minmax ->
      let op = if Rng.bool g then Stmt.Fmin else Stmt.Fmax in
      Stmt.Binop (op, gen_rexpr ctx env (fuel - 1), gen_rexpr ctx env (fuel - 1))
    | `Unop ->
      let op = Rng.pick g [ Stmt.Fneg; Stmt.Sqrt; Stmt.Abs ] in
      Stmt.Unop (op, gen_rexpr ctx env (fuel - 1))

let gen_stmt ctx env =
  let g = ctx.rng in
  ctx.budget <- ctx.budget - 1;
  let rhs = gen_rexpr ctx env (Rng.range g 1 3) in
  if ctx.scalars <> [] && Rng.chance g 0.15 then
    (* Reduction-style update of an already-initialised scalar. *)
    let s = Rng.pick g ctx.scalars in
    let rhs =
      if Rng.chance g 0.7 then Stmt.Binop (Stmt.Fadd, Stmt.Scalar s, rhs)
      else rhs
    in
    Stmt.scalar_assign ~label:(fresh_label ctx) s rhs
  else
    let name, rank = Rng.pick g ctx.arrays in
    let r = Reference.make name (List.init rank (fun _ -> gen_sub ctx env)) in
    Stmt.assign ~label:(fresh_label ctx) r rhs

(* Lower bound implied by a bound expression, given outer bounds. *)
let gen_header ctx env depth =
  let g = ctx.rng in
  let index = index_names.(depth) in
  let outer = if env = [] then None else Some (Rng.pick g env) in
  if Rng.chance g 0.15 then
    (* Reversed loop: DO I = N, 1, -1. *)
    let lo = Rng.range g 1 2 in
    ({ Loop.index; lb = Var "N"; ub = Int lo; step = -1 }, lo)
  else
    let lb, lb_lo =
      Rng.weighted g
        ([
           (5, (Expr.Int 1, 1));
           (2, (Expr.Int 2, 2));
         ]
        @
        match outer with
        | None -> []
        | Some (o, o_lo) ->
          [
            (2, (Expr.Var o, o_lo));
            (1, (Expr.Max (Int 1, Sub (Var o, Int 2)), 1));
          ])
    in
    let ub =
      Rng.weighted g
        ([
           (5, Expr.Var "N");
           (2, Expr.Sub (Var "N", Int 1));
           (1, Expr.Div (Var "N", Int 2));
         ]
        @
        match outer with
        | None -> []
        | Some (o, _) ->
          [ (1, Expr.Var o); (1, Expr.Min (Var "N", Add (Var o, Int 2))) ])
    in
    let step = if Rng.chance g 0.12 then 2 else 1 in
    ({ Loop.index; lb; ub; step }, lb_lo)

let rec gen_loop ctx env depth =
  let g = ctx.rng in
  ctx.budget <- ctx.budget - 1;
  let header, lo = gen_header ctx env depth in
  let env' = (header.Loop.index, lo) :: env in
  let body = ref [] in
  let push n = body := n :: !body in
  (* Leading statements make the nest imperfect. *)
  if depth < 2 && Rng.chance g 0.2 && ctx.budget > 3 then
    push (Loop.Stmt (gen_stmt ctx env'));
  if depth < 2 && ctx.budget > 2 && Rng.chance g 0.6 then begin
    push (Loop.Loop (gen_loop ctx env' (depth + 1)));
    (* Occasionally a second inner loop at the same depth (fusion and
       distribution candidates). *)
    if ctx.budget > 2 && Rng.chance g 0.3 then
      push (Loop.Loop (gen_loop ctx env' (depth + 1)))
  end;
  let stmts = Rng.range g (if !body = [] then 1 else 0) 2 in
  for _ = 1 to stmts do
    push (Loop.Stmt (gen_stmt ctx env'))
  done;
  { Loop.header; body = List.rev !body }

let array_pool = [ "A"; "B"; "D"; "E"; "U"; "V" ]

let generate ~seed ~index ~size =
  let g = Rng.derive seed index in
  let n = Rng.range g 6 10 in
  let n_arrays = Rng.range g 2 4 in
  let arrays =
    List.init n_arrays (fun k ->
        let rank = Rng.weighted g [ (3, 1); (4, 2); (2, 3) ] in
        (List.nth array_pool k, rank))
  in
  let ctx = { rng = g; budget = max 4 size; label = 0; scalars = []; arrays } in
  let decls =
    List.map
      (fun (name, rank) ->
        let extent () =
          if Rng.chance g 0.8 then Expr.Add (Var "N", Int 2)
          else Expr.Int (n + 2)
        in
        Decl.make name (List.init rank (fun _ -> extent ())))
      arrays
  in
  (* Top-level scalar initialisations: the only way a scalar becomes
     readable, since loop ranges may be empty at run time. *)
  let n_scalars = Rng.range g 0 2 in
  let inits =
    List.init n_scalars (fun k ->
        let s = List.nth scalar_pool k in
        let rhs =
          if ctx.scalars = [] || Rng.chance g 0.7 then
            Stmt.Const (Rng.pick g consts)
          else gen_rexpr ctx [] 1
        in
        ctx.scalars <- ctx.scalars @ [ s ];
        Loop.Stmt (Stmt.scalar_assign ~label:(fresh_label ctx) s rhs))
  in
  ctx.budget <- ctx.budget - n_scalars;
  let nests = ref [] in
  let first = ref true in
  while !first || ctx.budget > 2 do
    first := false;
    if Rng.chance g 0.08 then
      nests := Loop.Stmt (gen_stmt ctx []) :: !nests
    else nests := Loop.Loop (gen_loop ctx [] 0) :: !nests
  done;
  let body = inits @ List.rev !nests in
  let name = Printf.sprintf "FZ%d_%d" (seed land 0x7FFFFFFF) index in
  let p = Program.make ~name ~params:[ ("N", n) ] decls body in
  (match Program.validate p with
  | Ok () -> ()
  | Error e -> invalid_arg (Printf.sprintf "Gen.generate: invalid program: %s" e));
  p
