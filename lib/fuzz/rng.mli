(** Deterministic SplitMix64 stream, independent of [Stdlib.Random].

    The fuzzer's reproducibility contract — the same seed generates the
    same programs on any machine, any [MEMORIA_JOBS] value, and any
    OCaml release — rules out the stdlib generator (whose algorithm has
    changed between releases). SplitMix64 is tiny, well mixed, and
    splittable: {!derive} gives every work item its own stream keyed by
    index, so parallel fuzzing draws no values from shared state. *)

type t

val make : int -> t
(** A fresh stream seeded by the given integer. *)

val derive : int -> int -> t
(** [derive seed index] is the stream for work item [index] of master
    seed [seed]; distinct indices give decorrelated streams. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val bool : t -> bool

val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val pick : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val weighted : t -> (int * 'a) list -> 'a
(** Pick with integer weights; total weight must be positive. *)
