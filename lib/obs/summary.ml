type span_row = {
  name : string;
  count : int;
  total_ns : int64;
  self_ns : int64;
  min_ns : int64;
  max_ns : int64;
}

type t = {
  spans : span_row list;
  counters : (string * int) list;
  histograms : (string * Hist.t) list;
  gauges : (string * float) list;
  decisions : Event.decision list;
  events : int;
}

(* First-occurrence order keeps the report deterministic without
   depending on hash-table iteration order. One pass over the stream:
   the event total is counted alongside the aggregation rather than by
   a separate List.length walk. *)
let of_events (events : Event.t list) =
  let span_tbl = Hashtbl.create 16 and span_order = ref [] in
  let ctr_tbl = Hashtbl.create 16 and ctr_order = ref [] in
  let hist_tbl = Hashtbl.create 16 and hist_order = ref [] in
  let gauge_tbl = Hashtbl.create 16 and gauge_order = ref [] in
  let decisions = ref [] in
  let n_events = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      incr n_events;
      match e.Event.payload with
      | Event.Span s ->
        let row =
          match Hashtbl.find_opt span_tbl s.name with
          | Some r -> r
          | None ->
            span_order := s.name :: !span_order;
            { name = s.name; count = 0; total_ns = 0L; self_ns = 0L;
              min_ns = Int64.max_int; max_ns = 0L }
        in
        Hashtbl.replace span_tbl s.name
          {
            row with
            count = row.count + 1;
            total_ns = Int64.add row.total_ns s.dur_ns;
            self_ns = Int64.add row.self_ns s.self_ns;
            min_ns =
              (if Int64.compare s.dur_ns row.min_ns < 0 then s.dur_ns
               else row.min_ns);
            max_ns =
              (if Int64.compare s.dur_ns row.max_ns > 0 then s.dur_ns
               else row.max_ns);
          }
      | Event.Counter c ->
        (match Hashtbl.find_opt ctr_tbl c.name with
        | Some total -> Hashtbl.replace ctr_tbl c.name (total + c.delta)
        | None ->
          ctr_order := c.name :: !ctr_order;
          Hashtbl.add ctr_tbl c.name c.delta)
      | Event.Hist h ->
        let hist =
          match Hashtbl.find_opt hist_tbl h.name with
          | Some t -> t
          | None ->
            hist_order := h.name :: !hist_order;
            let t = Hist.create () in
            Hashtbl.add hist_tbl h.name t;
            t
        in
        Hist.observe hist h.value
      | Event.Gauge g ->
        (* Last write in merged-stream order wins; the stream order is
           deterministic, so so is the surviving value. *)
        if not (Hashtbl.mem gauge_tbl g.name) then
          gauge_order := g.name :: !gauge_order;
        Hashtbl.replace gauge_tbl g.name g.value
      | Event.Decision d -> decisions := d :: !decisions
      | Event.Instant _ -> ())
    events;
  {
    spans =
      List.rev_map (fun name -> Hashtbl.find span_tbl name) !span_order;
    counters =
      List.rev_map (fun name -> (name, Hashtbl.find ctr_tbl name)) !ctr_order;
    histograms =
      List.rev_map (fun name -> (name, Hashtbl.find hist_tbl name)) !hist_order;
    gauges =
      List.rev_map (fun name -> (name, Hashtbl.find gauge_tbl name))
        !gauge_order;
    decisions = List.rev !decisions;
    events = !n_events;
  }

let ms ns = Int64.to_float ns /. 1e6

(* Per-span self time, largest first — the flat view of where wall
   clock actually went (totals double-count nested spans; self times
   sum to the traced wall clock). Ties break by name so the table is
   stable across runs. *)
let self_ranking t =
  List.stable_sort
    (fun a b ->
      let c = Int64.compare b.self_ns a.self_ns in
      if c <> 0 then c else String.compare a.name b.name)
    t.spans
