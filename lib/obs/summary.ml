type span_row = {
  name : string;
  count : int;
  total_ns : int64;
  max_ns : int64;
}

type t = {
  spans : span_row list;
  counters : (string * int) list;
  decisions : Event.decision list;
  events : int;
}

(* First-occurrence order keeps the report deterministic without
   depending on hash-table iteration order. *)
let of_events (events : Event.t list) =
  let span_tbl = Hashtbl.create 16 and span_order = ref [] in
  let ctr_tbl = Hashtbl.create 16 and ctr_order = ref [] in
  let decisions = ref [] in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Span s ->
        let row =
          match Hashtbl.find_opt span_tbl s.name with
          | Some r -> r
          | None ->
            span_order := s.name :: !span_order;
            { name = s.name; count = 0; total_ns = 0L; max_ns = 0L }
        in
        Hashtbl.replace span_tbl s.name
          {
            row with
            count = row.count + 1;
            total_ns = Int64.add row.total_ns s.dur_ns;
            max_ns =
              (if Int64.compare s.dur_ns row.max_ns > 0 then s.dur_ns
               else row.max_ns);
          }
      | Event.Counter c ->
        (match Hashtbl.find_opt ctr_tbl c.name with
        | Some total -> Hashtbl.replace ctr_tbl c.name (total + c.delta)
        | None ->
          ctr_order := c.name :: !ctr_order;
          Hashtbl.add ctr_tbl c.name c.delta)
      | Event.Decision d -> decisions := d :: !decisions
      | Event.Instant _ -> ())
    events;
  {
    spans =
      List.rev_map (fun name -> Hashtbl.find span_tbl name) !span_order;
    counters =
      List.rev_map (fun name -> (name, Hashtbl.find ctr_tbl name)) !ctr_order;
    decisions = List.rev !decisions;
    events = List.length events;
  }

let ms ns = Int64.to_float ns /. 1e6
