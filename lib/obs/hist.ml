(* Log2-bucketed histogram accumulator: bucket 0 holds values <= 0 and
   bucket i (1 <= i <= 62) holds 2^(i-1) <= v <= 2^i - 1, so any OCaml
   int lands in a fixed 63-bucket array and two histograms merge by
   element-wise addition. Aggregation is pure integer arithmetic over
   the (deterministic) event stream, so bucket counts are identical at
   any MEMORIA_JOBS value. *)

let buckets = 63

type t = {
  counts : int array;  (* length [buckets] *)
  mutable count : int;
  mutable sum : int;
  mutable min : int;
  mutable max : int;
}

let create () =
  { counts = Array.make buckets 0; count = 0; sum = 0; min = max_int;
    max = min_int }

(* Number of significant bits of v, i.e. floor(log2 v) + 1 for v > 0. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let n = ref 0 and v = ref v in
    while !v <> 0 do
      incr n;
      v := !v lsr 1
    done;
    !n
  end

let bucket_le i = if i >= 62 then max_int else (1 lsl i) - 1

let observe t v =
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v

let merge a b =
  let t = create () in
  Array.iteri (fun i n -> t.counts.(i) <- n + b.counts.(i)) a.counts;
  t.count <- a.count + b.count;
  t.sum <- a.sum + b.sum;
  t.min <- min a.min b.min;
  t.max <- max a.max b.max;
  t

let equal a b =
  a.count = b.count && a.sum = b.sum && a.min = b.min && a.max = b.max
  && a.counts = b.counts

let mean t = if t.count = 0 then 0.0 else float_of_int t.sum /. float_of_int t.count

(* Upper bound of the bucket holding the q-th observation (0 < q <= 1):
   a conservative quantile estimate, exact to within the bucket width. *)
let quantile t q =
  if t.count = 0 then 0
  else begin
    let rank = int_of_float (ceil (q *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else rank in
    let acc = ref 0 and found = ref (bucket_le (buckets - 1)) in
    (try
       Array.iteri
         (fun i n ->
           acc := !acc + n;
           if !acc >= rank then begin
             found := bucket_le i;
             raise Exit
           end)
         t.counts
     with Exit -> ());
    (* Never report past the observed maximum (the top bucket is wide). *)
    min !found t.max
  end

(* Buckets in (le, cumulative-count) form, dropping the all-zero tail —
   the shape the OpenMetrics exporter and the JSON emitter want. *)
let cumulative t =
  let last =
    let rec go i = if i < 0 then -1 else if t.counts.(i) > 0 then i else go (i - 1) in
    go (buckets - 1)
  in
  let acc = ref 0 in
  List.init (last + 1) (fun i ->
      acc := !acc + t.counts.(i);
      (bucket_le i, !acc))
