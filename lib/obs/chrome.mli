(** Chrome trace-event JSON export.

    Renders a recorded event stream in the trace-event format understood
    by chrome://tracing, Perfetto and speedscope: spans as complete
    ("X") events on one track per domain, decisions and notes as
    instants, counters as running-total counter ("C") tracks.
    Timestamps are microseconds relative to the earliest event. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)

val str : string -> string
(** A quoted JSON string literal. *)

val to_string : ?process_name:string -> Event.t list -> string
(** The complete JSON document
    ([{"schema_version": 1, "traceEvents": [...], ...}]); the extra
    [schema_version] field is ignored by trace viewers and versions the
    export for other consumers (see [doc/SCHEMA.md]). *)

val write : path:string -> ?process_name:string -> Event.t list -> unit
(** {!to_string} straight to a file. *)
