(* Minimal JSON emission shared by every machine-readable surface (the
   Chrome trace exporter here, Stats.Json for `memoria explain --json`).
   Emitters build strings bottom-up; there is deliberately no printer
   state, so output is deterministic and composable. *)

let schema_version = 1

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""
let int = string_of_int
let list items = "[" ^ String.concat "," items ^ "]"
let strings l = list (List.map str l)

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields) ^ "}"

let versioned fields = obj (("schema_version", int schema_version) :: fields)
