external now_ns : unit -> (int64[@unboxed])
  = "obs_monotonic_ns" "obs_monotonic_ns_unboxed"
[@@noalloc]

(* The whole library is behind this one flag: with tracing disabled every
   instrumentation point is a single load-and-branch, so the pipeline
   pays nothing (the bench asserts <2% end to end). The flag is only
   flipped from the main domain before work starts; domain spawn
   publishes it to workers. *)
let enabled_flag = Atomic.make false

let enabled () = Atomic.get enabled_flag
let set_enabled v = Atomic.set enabled_flag v

type span_frame = {
  sname : string;
  sbegin : int64;
  sstack : string list;  (* enclosing span names, outermost first *)
  mutable sargs : Event.args;
  mutable schild_ns : int64;  (* summed durations of direct children *)
}

type state = {
  mutable events : Event.t list;  (* newest first *)
  mutable ctx : string list;  (* innermost first *)
  mutable open_spans : span_frame list;  (* innermost first *)
}

let fresh_state () = { events = []; ctx = []; open_spans = [] }

(* Per-domain buffers: recording never contends across domains, and
   Par.Pool merges worker buffers back in input order at the barrier. *)
let key = Domain.DLS.new_key fresh_state

let dom_id () = (Domain.self () :> int)

let emit st payload =
  let ctx = match st.ctx with c :: _ -> c | [] -> "" in
  st.events <-
    { Event.ts_ns = now_ns (); dom = dom_id (); ctx; payload } :: st.events

let instant ?(args = []) name =
  if enabled () then
    let st = Domain.DLS.get key in
    emit st (Event.Instant { name; args })

let counter name delta =
  if enabled () then
    let st = Domain.DLS.get key in
    emit st (Event.Counter { name; delta })

let histogram name value =
  if enabled () then
    let st = Domain.DLS.get key in
    emit st (Event.Hist { name; value })

let gauge name value =
  if enabled () then
    let st = Domain.DLS.get key in
    emit st (Event.Gauge { name; value })

let decision d =
  if enabled () then
    let st = Domain.DLS.get key in
    emit st (Event.Decision d)

let span ?(args = []) name f =
  if not (enabled ()) then f ()
  else begin
    let st = Domain.DLS.get key in
    let stack = List.rev_map (fun fr -> fr.sname) st.open_spans in
    let frame =
      { sname = name; sbegin = now_ns (); sstack = stack; sargs = args;
        schild_ns = 0L }
    in
    st.open_spans <- frame :: st.open_spans;
    Fun.protect
      ~finally:(fun () ->
        (* Close the span even when [f] raises, so traces of failed runs
           still nest properly. *)
        let dur = Int64.sub (now_ns ()) frame.sbegin in
        (match st.open_spans with
        | top :: rest when top == frame ->
          st.open_spans <- rest;
          (* Charge the parent so its eventual self time excludes us. *)
          (match rest with
          | parent :: _ -> parent.schild_ns <- Int64.add parent.schild_ns dur
          | [] -> ())
        | _ -> ());
        let self = Int64.sub dur frame.schild_ns in
        emit st
          (Event.Span
             {
               name = frame.sname;
               begin_ns = frame.sbegin;
               dur_ns = dur;
               self_ns = (if Int64.compare self 0L < 0 then 0L else self);
               stack = frame.sstack;
               args = List.rev frame.sargs;
             }))
      f
  end

let add_span_arg k v =
  if enabled () then
    let st = Domain.DLS.get key in
    match st.open_spans with
    | frame :: _ -> frame.sargs <- (k, v) :: frame.sargs
    | [] -> emit st (Event.Instant { name = "arg"; args = [ (k, v) ] })

let current_ctx () =
  if not (enabled ()) then ""
  else
    match (Domain.DLS.get key).ctx with c :: _ -> c | [] -> ""

let with_ctx c f =
  if not (enabled ()) then f ()
  else begin
    let st = Domain.DLS.get key in
    st.ctx <- c :: st.ctx;
    Fun.protect
      ~finally:(fun () ->
        match st.ctx with _ :: rest -> st.ctx <- rest | [] -> ())
      f
  end

let scoped f =
  if not (enabled ()) then (f (), [])
  else begin
    let st = Domain.DLS.get key in
    let saved = st.events in
    st.events <- [];
    match f () with
    | v ->
      let captured = st.events in
      st.events <- saved;
      (v, List.rev captured)
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      st.events <- saved;
      Printexc.raise_with_backtrace e bt
  end

let inject events =
  if enabled () && events <> [] then begin
    let st = Domain.DLS.get key in
    st.events <- List.rev_append events st.events
  end

let reset () =
  let st = Domain.DLS.get key in
  st.events <- [];
  st.ctx <- [];
  st.open_spans <- []

let drain () =
  let st = Domain.DLS.get key in
  let evs = List.rev st.events in
  st.events <- [];
  evs

let collect f =
  let was = enabled () in
  set_enabled true;
  let st = Domain.DLS.get key in
  let saved = st.events in
  st.events <- [];
  Fun.protect
    ~finally:(fun () ->
      st.events <- saved;
      set_enabled was)
    (fun () ->
      let v = f () in
      let evs = List.rev st.events in
      (v, evs))
