(** Aggregation of an event stream into per-span totals, counter sums
    and the decision list — the data behind the [--profile] table. *)

type span_row = {
  name : string;
  count : int;
  total_ns : int64;
  max_ns : int64;
}

type t = {
  spans : span_row list;  (** in first-occurrence order *)
  counters : (string * int) list;  (** summed deltas, first-occurrence order *)
  decisions : Event.decision list;  (** in recording order *)
  events : int;  (** total events seen *)
}

val of_events : Event.t list -> t

val ms : int64 -> float
(** Nanoseconds to milliseconds. *)
