(** Aggregation of an event stream into per-span totals, counter sums,
    histogram buckets, gauge levels and the decision list — the data
    behind the [--profile] table and the metrics exporters. *)

type span_row = {
  name : string;
  count : int;
  total_ns : int64;
  self_ns : int64;
      (** summed self time (duration minus direct children) *)
  min_ns : int64;  (** fastest single occurrence *)
  max_ns : int64;  (** slowest single occurrence *)
}

type t = {
  spans : span_row list;  (** in first-occurrence order *)
  counters : (string * int) list;  (** summed deltas, first-occurrence order *)
  histograms : (string * Hist.t) list;
      (** folded observations, first-occurrence order *)
  gauges : (string * float) list;
      (** last written value, first-occurrence order *)
  decisions : Event.decision list;  (** in recording order *)
  events : int;  (** total events seen *)
}

val of_events : Event.t list -> t
(** Single pass over the stream; the event total is counted during
    aggregation. *)

val self_ranking : t -> span_row list
(** Spans sorted by self time, largest first (ties by name) — the flat
    profile view. Self times sum to traced wall clock; totals
    double-count nesting. *)

val ms : int64 -> float
(** Nanoseconds to milliseconds. *)
