(** Metrics exporter behind the [--metrics FILE] flag.

    Renders an aggregated {!Summary.t} as OpenMetrics text (counters,
    gauges, log2-bucket histograms, per-span totals labelled by span
    name) or, when the path ends in [.json], as a single JSON document.
    Metric naming is a stable contract documented in [doc/SCHEMA.md]. *)

val sanitize : string -> string
(** Event name to metric name: ["memoria_"] prefix, non-alphanumerics
    replaced by ['_']. *)

val to_text : Summary.t -> string
(** OpenMetrics text exposition, terminated by [# EOF]. *)

val to_json : Summary.t -> string
(** The same data as one schema-versioned JSON object. *)

val write : path:string -> Summary.t -> unit
(** Write to [path]; format chosen by extension ([.json] → JSON,
    anything else → OpenMetrics text). *)
