(* Metrics exporter for the --metrics flag: the aggregated Summary in
   OpenMetrics text format (Prometheus-compatible) or, when the target
   path ends in ".json", the same data as one JSON document. Naming is
   part of the CLI contract and documented in doc/SCHEMA.md: every
   metric is prefixed "memoria_", dots and other non-alphanumerics in
   event names become underscores, and span rows are exported under
   fixed metric families with the span name as a label. *)

let prefix = "memoria_"

let sanitize name =
  let buf = Buffer.create (String.length name + String.length prefix) in
  Buffer.add_string buf prefix;
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char buf c
      | _ -> Buffer.add_char buf '_')
    name;
  Buffer.contents buf

let float_repr v =
  (* Shortest representation that is still a valid OpenMetrics float;
     %g never emits a bare "nan"/"inf" for the finite values we record. *)
  let s = Printf.sprintf "%g" v in
  if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
  then s
  else s ^ ".0"

let label_escape s = Json.escape s

let to_text (s : Summary.t) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b (l ^ "\n")) fmt in
  line "# TYPE %sevents counter" prefix;
  line "%sevents_total %d" prefix s.events;
  List.iter
    (fun (name, total) ->
      let m = sanitize name in
      line "# TYPE %s counter" m;
      line "%s_total %d" m total)
    s.counters;
  List.iter
    (fun (name, v) ->
      let m = sanitize name in
      line "# TYPE %s gauge" m;
      line "%s %s" m (float_repr v))
    s.gauges;
  List.iter
    (fun (name, (h : Hist.t)) ->
      let m = sanitize name in
      line "# TYPE %s histogram" m;
      List.iter
        (fun (le, cum) -> line "%s_bucket{le=\"%d\"} %d" m le cum)
        (Hist.cumulative h);
      line "%s_bucket{le=\"+Inf\"} %d" m h.Hist.count;
      line "%s_sum %d" m h.Hist.sum;
      line "%s_count %d" m h.Hist.count)
    s.histograms;
  if s.spans <> [] then begin
    line "# TYPE %sspan_count counter" prefix;
    List.iter
      (fun (r : Summary.span_row) ->
        line "%sspan_count_total{span=\"%s\"} %d" prefix
          (label_escape r.name) r.count)
      s.spans;
    line "# TYPE %sspan_ns counter" prefix;
    List.iter
      (fun (r : Summary.span_row) ->
        line "%sspan_ns_total{span=\"%s\"} %Ld" prefix (label_escape r.name)
          r.total_ns)
      s.spans;
    line "# TYPE %sspan_self_ns counter" prefix;
    List.iter
      (fun (r : Summary.span_row) ->
        line "%sspan_self_ns_total{span=\"%s\"} %Ld" prefix
          (label_escape r.name) r.self_ns)
      s.spans;
    line "# TYPE %sspan_min_ns gauge" prefix;
    List.iter
      (fun (r : Summary.span_row) ->
        line "%sspan_min_ns{span=\"%s\"} %Ld" prefix (label_escape r.name)
          r.min_ns)
      s.spans;
    line "# TYPE %sspan_max_ns gauge" prefix;
    List.iter
      (fun (r : Summary.span_row) ->
        line "%sspan_max_ns{span=\"%s\"} %Ld" prefix (label_escape r.name)
          r.max_ns)
      s.spans
  end;
  Buffer.add_string b "# EOF\n";
  Buffer.contents b

let to_json (s : Summary.t) =
  let open Json in
  let span_json (r : Summary.span_row) =
    obj
      [
        ("name", str r.name);
        ("count", int r.count);
        ("total_ns", Printf.sprintf "%Ld" r.total_ns);
        ("self_ns", Printf.sprintf "%Ld" r.self_ns);
        ("min_ns", Printf.sprintf "%Ld" r.min_ns);
        ("max_ns", Printf.sprintf "%Ld" r.max_ns);
      ]
  in
  let hist_json (name, (h : Hist.t)) =
    obj
      [
        ("name", str name);
        ("count", int h.Hist.count);
        ("sum", int h.Hist.sum);
        ("min", int (if h.Hist.count = 0 then 0 else h.Hist.min));
        ("max", int (if h.Hist.count = 0 then 0 else h.Hist.max));
        ( "buckets",
          list
            (List.map
               (fun (le, cum) -> obj [ ("le", int le); ("count", int cum) ])
               (Hist.cumulative h)) );
      ]
  in
  versioned
    [
      ("events", int s.events);
      ( "counters",
        obj (List.map (fun (n, v) -> (n, int v)) s.counters) );
      ( "gauges",
        obj (List.map (fun (n, v) -> (n, float_repr v)) s.gauges) );
      ("histograms", list (List.map hist_json s.histograms));
      ("spans", list (List.map span_json s.spans));
    ]
  ^ "\n"

let write ~path summary =
  let content =
    if Filename.check_suffix path ".json" then to_json summary
    else to_text summary
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content)
