(* Collapsed-stack export: one "a;b;c weight" line per unique span
   stack, weighted by summed self time in nanoseconds — the input
   format of flamegraph.pl and speedscope. Using self time (not
   duration) keeps a frame's width equal to its own work, with child
   work appearing in the child frames, so the totals add up instead of
   double-counting nesting. Lines are sorted lexicographically: the
   output is deterministic and diff-friendly. *)

let to_string (events : Event.t list) =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (e : Event.t) ->
      match e.Event.payload with
      | Event.Span s ->
        let key = String.concat ";" (s.stack @ [ s.name ]) in
        let prev =
          match Hashtbl.find_opt tbl key with Some w -> w | None -> 0L
        in
        Hashtbl.replace tbl key (Int64.add prev s.self_ns)
      | _ -> ())
    events;
  let rows = Hashtbl.fold (fun k w acc -> (k, w) :: acc) tbl [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  String.concat ""
    (List.map (fun (k, w) -> Printf.sprintf "%s %Ld\n" k w) rows)

let write ~path events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string events))
