(** Log2-bucketed histogram accumulator behind {!Obs.histogram}.

    Bucket 0 holds values [<= 0]; bucket [i] (1..62) holds
    [2^(i-1) <= v <= 2^i - 1], so every OCaml int maps to a fixed
    63-bucket array. Merging is element-wise addition, so the result of
    folding a deterministic event stream is itself deterministic. *)

val buckets : int
(** Number of buckets (63). *)

type t = {
  counts : int array;  (** per-bucket observation counts *)
  mutable count : int;  (** total observations *)
  mutable sum : int;
  mutable min : int;  (** [max_int] while empty *)
  mutable max : int;  (** [min_int] while empty *)
}

val create : unit -> t
val observe : t -> int -> unit

val bucket_of : int -> int
(** Index of the bucket holding the value. *)

val bucket_le : int -> int
(** Inclusive upper bound of bucket [i] ([max_int] for the last). *)

val merge : t -> t -> t
(** A fresh histogram with element-wise summed counts. *)

val equal : t -> t -> bool
val mean : t -> float

val quantile : t -> float -> int
(** [quantile t q] for [0 < q <= 1]: the upper bound of the bucket
    holding the q-th observation, clamped to the observed maximum —
    exact to within the bucket width. 0 when empty. *)

val cumulative : t -> (int * int) list
(** [(le, cumulative count)] per bucket up to the last non-empty one —
    the OpenMetrics bucket shape. *)
