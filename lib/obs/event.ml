type args = (string * string) list

type action = Permute | Fuse | Distribute | Reverse | No_change

let action_to_string = function
  | Permute -> "permute"
  | Fuse -> "fuse"
  | Distribute -> "distribute"
  | Reverse -> "reverse"
  | No_change -> "none"

type decision = {
  nest : string;
  labels : string list;
  depth : int;
  action : action;
  reason : string;
  original_order : string list;
  achieved_orders : string list list;
  memory_order : string list;
  costs : (string * string) list;
}

type payload =
  | Span of {
      name : string;
      begin_ns : int64;
      dur_ns : int64;
      self_ns : int64;
      stack : string list;
      args : args;
    }
  | Instant of { name : string; args : args }
  | Counter of { name : string; delta : int }
  | Hist of { name : string; value : int }
  | Gauge of { name : string; value : float }
  | Decision of decision

type t = {
  ts_ns : int64;
  dom : int;
  ctx : string;
  payload : payload;
}

(* Timestamp-, duration- and domain-free rendering: the determinism key
   two runs of the same workload must agree on, whatever the pool size
   or machine speed (the test suite compares these). A span's stack is
   excluded too: with MEMORIA_JOBS=1 the pool runs items inline, so a
   caller's open span is an ancestor it would not be on a worker. *)
let fingerprint (e : t) =
  let args a =
    String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) a)
  in
  let p =
    match e.payload with
    | Span s -> Printf.sprintf "span:%s{%s}" s.name (args s.args)
    | Instant i -> Printf.sprintf "instant:%s{%s}" i.name (args i.args)
    | Counter c -> Printf.sprintf "counter:%s%+d" c.name c.delta
    | Hist h -> Printf.sprintf "hist:%s=%d" h.name h.value
    | Gauge g -> Printf.sprintf "gauge:%s=%g" g.name g.value
    | Decision d ->
      Printf.sprintf "decision:%s:%s:%s[%s]" d.nest
        (action_to_string d.action)
        d.reason
        (args d.costs)
  in
  (match e.ctx with "" -> p | c -> c ^ "|" ^ p)
