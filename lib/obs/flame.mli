(** Collapsed-stack (flamegraph.pl / speedscope) export of span self
    times: one ["a;b;c weight"] line per unique stack, weight = summed
    self time in nanoseconds, lines sorted lexicographically. *)

val to_string : Event.t list -> string
val write : path:string -> Event.t list -> unit
