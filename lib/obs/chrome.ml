(* Chrome trace-event JSON (the "JSON Array Format" with a traceEvents
   wrapper object), loadable in chrome://tracing, Perfetto and speedscope.
   Spans become complete ("X") events, instants "i", counters "C".
   Timestamps are microseconds relative to the earliest event. All JSON
   is rendered through the shared {!Json} emitter. *)

let escape = Json.escape
let str = Json.str
let obj = Json.obj

let us_of_ns ~origin ns =
  Printf.sprintf "%.3f" (Int64.to_float (Int64.sub ns origin) /. 1e3)

let args_json ?(extra = []) ctx args =
  let kvs = List.map (fun (k, v) -> (k, str v)) args @ extra in
  let kvs = if ctx = "" then kvs else ("ctx", str ctx) :: kvs in
  obj kvs

let event_json ~origin (e : Event.t) =
  let common = [ ("pid", "0"); ("tid", string_of_int e.Event.dom) ] in
  match e.Event.payload with
  | Event.Span s ->
    Some
      (obj
         ([
            ("name", str s.name);
            ("ph", str "X");
            ("ts", us_of_ns ~origin s.begin_ns);
            ("dur", Printf.sprintf "%.3f" (Int64.to_float s.dur_ns /. 1e3));
          ]
         @ common
         @ [ ("args", args_json e.Event.ctx s.args) ]))
  | Event.Instant i ->
    Some
      (obj
         ([
            ("name", str i.name);
            ("ph", str "i");
            ("s", str "t");
            ("ts", us_of_ns ~origin e.Event.ts_ns);
          ]
         @ common
         @ [ ("args", args_json e.Event.ctx i.args) ]))
  | Event.Counter _ -> None (* rendered with running totals below *)
  | Event.Hist h ->
    Some
      (obj
         ([
            ("name", str h.name);
            ("ph", str "i");
            ("s", str "t");
            ("ts", us_of_ns ~origin e.Event.ts_ns);
          ]
         @ common
         @ [ ("args", obj [ ("value", string_of_int h.value) ]) ]))
  | Event.Gauge g ->
    Some
      (obj
         [
           ("name", str g.name);
           ("ph", str "C");
           ("ts", us_of_ns ~origin e.Event.ts_ns);
           ("pid", "0");
           ("args", obj [ ("value", Printf.sprintf "%g" g.value) ]);
         ])
  | Event.Decision d ->
    Some
      (obj
         ([
            ("name", str ("decision:" ^ Event.action_to_string d.action));
            ("ph", str "i");
            ("s", str "t");
            ("ts", us_of_ns ~origin e.Event.ts_ns);
          ]
         @ common
         @ [
             ( "args",
               args_json e.Event.ctx
                 ([
                    ("nest", d.nest);
                    ("reason", d.reason);
                    ("original", String.concat "," d.original_order);
                    ( "achieved",
                      String.concat ";"
                        (List.map (String.concat ",") d.achieved_orders) );
                    ("memory_order", String.concat "," d.memory_order);
                  ]
                 @ List.map
                     (fun (l, c) -> ("LoopCost(" ^ l ^ ")", c))
                     d.costs) );
           ]))

let counter_json ~origin totals (e : Event.t) =
  match e.Event.payload with
  | Event.Counter c ->
    let total =
      (match Hashtbl.find_opt totals c.name with Some t -> t | None -> 0)
      + c.delta
    in
    Hashtbl.replace totals c.name total;
    Some
      (obj
         [
           ("name", str c.name);
           ("ph", str "C");
           ("ts", us_of_ns ~origin e.Event.ts_ns);
           ("pid", "0");
           ("args", obj [ ("value", string_of_int total) ]);
         ])
  | _ -> None

let to_string ?(process_name = "memoria") (events : Event.t list) =
  let origin =
    List.fold_left
      (fun acc (e : Event.t) ->
        let ts =
          match e.Event.payload with
          | Event.Span s -> s.begin_ns
          | _ -> e.Event.ts_ns
        in
        if Int64.compare ts acc < 0 then ts else acc)
      Int64.max_int events
  in
  let origin = if origin = Int64.max_int then 0L else origin in
  let meta =
    obj
      [
        ("name", str "process_name");
        ("ph", str "M");
        ("pid", "0");
        ("args", obj [ ("name", str process_name) ]);
      ]
  in
  let totals = Hashtbl.create 8 in
  let rows =
    meta
    :: List.concat_map
         (fun e ->
           match (event_json ~origin e, counter_json ~origin totals e) with
           | Some j, _ -> [ j ]
           | None, Some j -> [ j ]
           | None, None -> [])
         events
  in
  Printf.sprintf "{\"schema_version\":%d,\"traceEvents\":[\n%s\n],\"displayTimeUnit\":\"ms\"}\n"
    Json.schema_version
    (String.concat ",\n" rows)

let write ~path ?process_name events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?process_name events))
