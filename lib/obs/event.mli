(** Typed observability events.

    Everything the tracing core records is one of these: a closed span
    (timed phase), an instant note, a counter increment, or a compound
    transformation {e decision}. Payloads carry only plain strings and
    ints so the library stays dependency-free; producers render
    polynomials and dependences before emitting. *)

type args = (string * string) list
(** Ordered key/value annotations. *)

type action = Permute | Fuse | Distribute | Reverse | No_change
(** What the compound algorithm did to a nest (reversal subsumes the
    permutation it enabled). *)

val action_to_string : action -> string

type decision = {
  nest : string;  (** the nest's context key (see {!Obs.with_ctx}) *)
  labels : string list;  (** statement labels of the original nest *)
  depth : int;
  action : action;
  reason : string;  (** human-readable explanation of the choice *)
  original_order : string list;  (** loop order before, outermost first *)
  achieved_orders : string list list;
      (** loop order of each resulting nest (several after distribution) *)
  memory_order : string list;  (** the cost model's desired order *)
  costs : (string * string) list;
      (** loop -> LoopCost polynomial, ranked most- to least-expensive *)
}
(** One record per {!Locality_core.Compound} nest_stat: the chosen
    action, why, and the LoopCost evidence. *)

type payload =
  | Span of {
      name : string;
      begin_ns : int64;
      dur_ns : int64;
      self_ns : int64;
          (** duration minus the summed durations of direct child spans
              closed on the same domain — the span's own work *)
      stack : string list;
          (** names of the enclosing open spans on this domain at open
              time, outermost first (the collapsed-stack path) *)
      args : args;
    }
  | Instant of { name : string; args : args }
  | Counter of { name : string; delta : int }
  | Hist of { name : string; value : int }
      (** one observation of the named log2-bucketed histogram *)
  | Gauge of { name : string; value : float }
      (** point-in-time level; aggregation keeps the last write *)
  | Decision of decision

type t = {
  ts_ns : int64;  (** monotonic close/emit time *)
  dom : int;  (** recording domain id *)
  ctx : string;  (** innermost decision context, [""] at top level *)
  payload : payload;
}

val fingerprint : t -> string
(** Deterministic rendering without timestamps, durations or domain ids
    — what must be identical across [MEMORIA_JOBS] settings. *)
