(** Minimal JSON emission, shared by every machine-readable surface.

    The Chrome trace exporter ({!Chrome}) and the stats-layer emitters
    ([Stats.Json], which re-exports this module) both build their
    documents from these combinators, so escaping and formatting rules
    live in exactly one place. Values are plain strings; callers compose
    them bottom-up. *)

val schema_version : int
(** Version stamped into every versioned document ({!versioned}); bump
    when a documented field changes meaning or disappears. Adding fields
    is not a version bump — consumers must ignore unknown keys. See
    [doc/SCHEMA.md]. *)

val escape : string -> string
(** JSON string-body escaping (quotes, backslashes, control chars). *)

val str : string -> string
(** A quoted JSON string literal. *)

val int : int -> string

val list : string list -> string
(** [list items] is [\[i1,i2,...\]]; items are already-rendered JSON. *)

val strings : string list -> string
(** A JSON array of string literals. *)

val obj : (string * string) list -> string
(** [obj fields] renders an object; values are already-rendered JSON. *)

val versioned : (string * string) list -> string
(** {!obj} with a leading ["schema_version"] field. *)
