(** The tracing core: monotonic-clock spans, counters and decision
    events, buffered per domain.

    Recording is off by default; with tracing disabled every
    instrumentation point compiles down to one flag check (and [span]
    to a flag check plus the tail call), so the optimizer and simulator
    pay nothing. When enabled, events land in a domain-local buffer;
    {!Locality_par.Pool} captures each work item's events with
    {!scoped} and re-{!inject}s them in input order at the barrier, so
    the merged stream is identical for any [MEMORIA_JOBS] value (modulo
    timestamps and domain ids — see {!Event.fingerprint}). *)

external now_ns : unit -> (int64[@unboxed])
  = "obs_monotonic_ns" "obs_monotonic_ns_unboxed"
[@@noalloc]
(** Monotonic clock, nanoseconds from an arbitrary origin. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Flip tracing on or off. Do this from the main domain before
    spawning workers; the flag is published by domain spawn. *)

val span : ?args:Event.args -> string -> (unit -> 'a) -> 'a
(** [span name f] times [f] and records a {!Event.Span} when it
    finishes. The span closes (and is recorded) even when [f] raises;
    the exception is re-raised. Nested spans are fine. *)

val add_span_arg : string -> string -> unit
(** Attach a key/value to the innermost open span of this domain (for
    results only known at the end, e.g. cache hit counts). Outside any
    span the pair is recorded as an instant. *)

val instant : ?args:Event.args -> string -> unit
(** A point event. *)

val counter : string -> int -> unit
(** [counter name delta] accumulates into the named counter;
    {!Summary.of_events} totals deltas, the Chrome exporter renders a
    running counter track. *)

val histogram : string -> int -> unit
(** [histogram name value] records one observation of the named
    histogram. {!Summary.of_events} folds observations into log2
    buckets ({!Hist}); the merged bucket counts are deterministic at
    any [MEMORIA_JOBS] value because the event stream is. *)

val gauge : string -> float -> unit
(** [gauge name value] sets the named level; aggregation keeps the last
    write in merged-stream order. *)

val decision : Event.decision -> unit
(** Record a compound-transformation decision. Callers should guard the
    construction of the record behind {!enabled} — building the strings
    is the expensive part. *)

val with_ctx : string -> (unit -> 'a) -> 'a
(** Tag every event recorded by [f] (on this domain) with the given
    decision context, used to group a nest's notes under its decision.
    Contexts nest; the innermost wins. *)

val current_ctx : unit -> string
(** The innermost active context, [""] when none (or disabled). *)

val scoped : (unit -> 'a) -> 'a * Event.t list
(** Run [f] capturing the events it records on this domain, restoring
    the previous buffer afterwards. Returns the captured events in
    recording order. When [f] raises, the buffer is restored and the
    exception re-raised (the partial capture is dropped). With tracing
    disabled this is just [f ()]. *)

val inject : Event.t list -> unit
(** Append pre-recorded events (from {!scoped}) to this domain's
    buffer, preserving their order. *)

val reset : unit -> unit
(** Clear this domain's buffer, context and open spans. *)

val drain : unit -> Event.t list
(** Events recorded on this domain so far, oldest first; clears the
    buffer. *)

val collect : (unit -> 'a) -> 'a * Event.t list
(** Enable tracing around [f] on a fresh buffer and return what it
    recorded, restoring the previous enabled state and buffer — the
    one-call harness used by [memoria explain] and the tests. *)
