/* Monotonic clock for the tracing core.

   CLOCK_MONOTONIC never steps backwards under NTP adjustments, which
   gettimeofday can, so span durations stay non-negative. Exposed both
   boxed (bytecode) and unboxed (native, no allocation on the fast
   path used by every span). */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <stdint.h>
#include <time.h>

int64_t obs_monotonic_ns_unboxed(void)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (int64_t)ts.tv_sec * 1000000000 + (int64_t)ts.tv_nsec;
}

CAMLprim value obs_monotonic_ns(value unit)
{
  (void)unit;
  return caml_copy_int64(obs_monotonic_ns_unboxed());
}
