module Cache = Locality_cachesim.Cache
module Layout = Locality_cachesim.Layout
module Obs = Locality_obs.Obs
module Loopcost = Locality_core.Loopcost

type counts = {
  c_accesses : int;
  c_hits : int;
  c_cold : int;
}

type bracket = { lo : int; hi : int }

let iv lo hi = { lo; hi }
let exact_iv v = iv v v
let iv_zero = exact_iv 0
let iv_add a b = { lo = a.lo + b.lo; hi = a.hi + b.hi }
let in_bracket v b = b.lo <= v && v <= b.hi
let clamp v b = max b.lo (min b.hi v)

type cls = Exact | Approx

type unit_report = {
  u_name : string;
  u_class : cls;
  u_formula : string;
  u_accesses : int;
  u_misses : int;
}

type estimate = {
  e_whole : counts;
  e_optimized : counts;
  e_ops : int;
  e_exact : bool;
  b_accesses : bracket;
  b_hits : bracket;
  b_cold : bracket;
  b_opt_accesses : bracket;
  b_opt_hits : bracket;
  b_opt_cold : bracket;
  b_ops : bracket;
  e_units : unit_report list;
}

(* A program-level "out of scope" verdict; callers replay the trace. *)
exception Bail of string

(* ------------------------------------------- integer interval sets --- *)

(* Cache-line footprints as sorted disjoint inclusive intervals. All
   operations are linear in the number of intervals, which is bounded
   by the number of array references — never by trip counts. *)
module Iset = struct
  type t = (int * int) list

  let norm ivs =
    let s = List.sort (fun (a, _) (b, _) -> compare a b) ivs in
    let rec go = function
      | (a, b) :: (c, d) :: rest when c <= b + 1 -> go ((a, max b d) :: rest)
      | x :: rest -> x :: go rest
      | [] -> []
    in
    go s

  let union a b = norm (a @ b)
  let card t = List.fold_left (fun acc (a, b) -> acc + b - a + 1) 0 t

  (* [diff a b] = lines of [a] not in [b]; both normalized. *)
  let rec diff a b =
    match (a, b) with
    | [], _ -> []
    | a, [] -> a
    | (a1, a2) :: ar, (b1, b2) :: br ->
      if b2 < a1 then diff a br
      else if a2 < b1 then (a1, a2) :: diff ar b
      else
        let left = if a1 < b1 then [ (a1, b1 - 1) ] else [] in
        if a2 > b2 then left @ diff ((b2 + 1, a2) :: ar) br
        else left @ diff ar b
end

(* ------------------------------------------- Faulhaber summation ---- *)

(* Symbolic power sums: [faulhaber cache k] is the polynomial F_k in
   the fresh variable $m with F_k(m) = sum_{x=0}^{m} x^k, from the
   telescoping identity sum_{j<=k} C(k+1,j) F_j(m) = (m+1)^{k+1}.
   F_k(-1) = 0, so F_k(hi) - F_k(lo-1) sums any range with
   hi >= lo - 1, including empty ones. The cache is per analysis run
   (the stats tables analyze programs from several domains at once,
   so there is no global mutable table). *)
let mvar = "$m"

let binom n r =
  let r = min r (n - r) in
  if r < 0 then 0
  else
    let rec go acc k =
      if k > r then acc else go (acc * (n - r + k) / k) (k + 1)
    in
    go 1 1

let rec faulhaber cache k =
  match Hashtbl.find_opt cache k with
  | Some p -> p
  | None ->
    let m1 = Poly.add (Poly.var mvar) Poly.one in
    let rec pow b n = if n = 0 then Poly.one else Poly.mul b (pow b (n - 1)) in
    let subtrahend =
      List.init k (fun j ->
          Poly.mul_rat (Rat.of_int (binom (k + 1) j)) (faulhaber cache j))
      |> List.fold_left Poly.add Poly.zero
    in
    let p =
      Poly.div_rat (Poly.sub (pow m1 (k + 1)) subtrahend) (Rat.of_int (k + 1))
    in
    Hashtbl.replace cache k p;
    p

(* sum_{x=lo}^{hi} p, with [p] polynomial in [x] and [lo]/[hi]
   polynomials free of [x]. Exact whenever hi >= lo - 1. *)
let sum_poly cache p x ~lo ~hi =
  Poly.coeffs_in p x
  |> List.mapi (fun k ck ->
         let fk = faulhaber cache k in
         let at q = Poly.subst fk mvar q in
         Poly.mul ck (Poly.sub (at hi) (at (Poly.sub lo Poly.one))))
  |> List.fold_left Poly.add Poly.zero

(* ------------------------------------------- loop-level intervals --- *)

(* Everything the analysis knows about one enclosing loop: a sound
   interval for the values its index takes, sound trip-count bounds,
   the numeric bounds when they are parameter-only, the bounds as
   polynomials over outer indices, and whether exact symbolic
   summation over this level is certified (|step| = 1 and a trip
   count that provably never goes negative over the enclosing box,
   which is what the telescoping Faulhaber formula requires). *)
type ii = {
  ih : Loop.header;
  ilo : int;  (** sound bounds on the values the index takes ... *)
  ihi : int;  (** ... whenever the loop body runs at all *)
  tmin : int;
  tmax : int;
  num : (int * int) option;  (** (lb, ub) when parameter-only *)
  lbp : Poly.t;
  ubp : Poly.t;
  sum_ok : bool;
}

let affine_interval ~param_opt ~lookup a =
  let lo = ref (Affine.const a) and hi = ref (Affine.const a) in
  List.iter
    (fun v ->
      let c = Affine.coeff a v in
      match param_opt v with
      | Some pv ->
        lo := !lo + (c * pv);
        hi := !hi + (c * pv)
      | None -> (
        match lookup v with
        | Some i ->
          if c >= 0 then begin
            lo := !lo + (c * i.ilo);
            hi := !hi + (c * i.ihi)
          end
          else begin
            lo := !lo + (c * i.ihi);
            hi := !hi + (c * i.ilo)
          end
        | None ->
          raise (Bail (Printf.sprintf "unbound variable %s in bound" v))))
    (Affine.vars a);
  (!lo, !hi)

(* The affine form as a polynomial over loop indices only: parameters
   are resolved to their numeric values so later evaluation is exact. *)
let affine_poly ~param_opt a =
  List.fold_left
    (fun acc v ->
      let c = Affine.coeff a v in
      match param_opt v with
      | Some pv -> Poly.add acc (Poly.int (c * pv))
      | None -> Poly.add acc (Poly.mul_rat (Rat.of_int c) (Poly.var v)))
    (Poly.int (Affine.const a))
    (Affine.vars a)

let eval_numeric ~param_opt e =
  try
    Some
      (Expr.eval e (fun x ->
           match param_opt x with Some v -> v | None -> raise Not_found))
  with Not_found -> None

(* A certified lower bound of an affine form over the iteration box: the
   minimum of an affine function over an interval sits at an endpoint,
   so eliminate indices innermost-out by substituting both bounds and
   taking the smaller result. Exact rational arithmetic throughout —
   no dominant-term guessing, sound at any parameter value. *)
let rec affine_min ~param_opt ~lookup fuel p =
  if fuel = 0 then None
  else
    match
      List.find_opt (fun v -> param_opt v = None) (Poly.vars p)
    with
    | None -> (
      try
        Some
          (Poly.eval_rat p (fun x ->
               match param_opt x with
               | Some v -> Rat.of_int v
               | None -> raise Not_found))
      with Not_found -> None)
    | Some x -> (
      match lookup x with
      | None -> None
      | Some i -> (
        let at q = affine_min ~param_opt ~lookup (fuel - 1) (Poly.subst p x q) in
        match (at i.lbp, at i.ubp) with
        | Some a, Some b -> Some (if Rat.compare a b <= 0 then a else b)
        | _ -> None))

let make_ii ~param_opt ~lookup (h : Loop.header) =
  let step = h.Loop.step in
  if step = 0 then raise (Bail "zero loop step");
  match (eval_numeric ~param_opt h.Loop.lb, eval_numeric ~param_opt h.Loop.ub)
  with
  | Some lb, Some ub ->
    let trip =
      if step > 0 then if lb > ub then 0 else ((ub - lb) / step) + 1
      else if lb < ub then 0
      else ((lb - ub) / -step) + 1
    in
    let last = lb + (step * (trip - 1)) in
    let ilo, ihi = if trip = 0 then (lb, lb) else (min lb last, max lb last) in
    {
      ih = h;
      ilo;
      ihi;
      tmin = trip;
      tmax = trip;
      num = Some (lb, ub);
      lbp = Poly.int lb;
      ubp = Poly.int ub;
      sum_ok = true;
    }
  | _ ->
    (* Sound value interval of a bound: affine forms directly, MIN/MAX
       (tiled and clamped loops), products (quadratic bounds) and the
       other arithmetic nodes by interval composition, truncating
       division by a constant by monotonicity. Anything else is out of
       scope. *)
    let rec bival e =
      match Affine.of_expr e with
      | Some a -> affine_interval ~param_opt ~lookup a
      | None -> (
        match e with
        | Expr.Min (a, b) ->
          let l1, h1 = bival a and l2, h2 = bival b in
          (min l1 l2, min h1 h2)
        | Expr.Max (a, b) ->
          let l1, h1 = bival a and l2, h2 = bival b in
          (max l1 l2, max h1 h2)
        | Expr.Add (a, b) ->
          let l1, h1 = bival a and l2, h2 = bival b in
          (l1 + l2, h1 + h2)
        | Expr.Sub (a, b) ->
          let l1, h1 = bival a and l2, h2 = bival b in
          (l1 - h2, h1 - l2)
        | Expr.Neg a ->
          let l, h = bival a in
          (-h, -l)
        | Expr.Mul (a, b) ->
          let l1, h1 = bival a and l2, h2 = bival b in
          let p1 = l1 * l2 and p2 = l1 * h2 and p3 = h1 * l2
          and p4 = h1 * h2 in
          (min (min p1 p2) (min p3 p4), max (max p1 p2) (max p3 p4))
        | Expr.Div (a, d) -> (
          match eval_numeric ~param_opt d with
          | Some dv when dv <> 0 ->
            let l, h = bival a in
            if dv > 0 then (l / dv, h / dv) else (h / dv, l / dv)
          | _ -> raise (Bail "non-affine symbolic loop bound"))
        | _ -> raise (Bail "non-affine symbolic loop bound"))
    in
    let lblo, lbhi = bival h.Loop.lb in
    let ublo, ubhi = bival h.Loop.ub in
    let tmin, tmax, ilo, ihi =
      if step > 0 then
        ( (if ublo < lbhi then 0 else ((ublo - lbhi) / step) + 1),
          (if ubhi < lblo then 0 else ((ubhi - lblo) / step) + 1),
          lblo,
          ubhi )
      else
        ( (if lblo < ubhi then 0 else ((lblo - ubhi) / -step) + 1),
          (if lbhi < ublo then 0 else ((lbhi - ublo) / -step) + 1),
          ublo,
          lbhi )
    in
    let lbp, ubp, sum_ok =
      match (Affine.of_expr h.Loop.lb, Affine.of_expr h.Loop.ub) with
      | Some alb, Some aub ->
        let lbp = affine_poly ~param_opt alb
        and ubp = affine_poly ~param_opt aub in
        let sum_ok =
          (step = 1 && ublo >= lbhi - 1)
          || (step = -1 && lblo >= ubhi - 1)
          || (abs step = 1
             (* interval reasoning loses correlations like I >= K+1;
                the affine minimum of the trip count over the box
                recovers them (triangular nests) *)
             &&
             let tripp =
               if step = 1 then Poly.add (Poly.sub ubp lbp) Poly.one
               else Poly.add (Poly.sub lbp ubp) Poly.one
             in
             match affine_min ~param_opt ~lookup 12 tripp with
             | Some r -> Rat.sign r >= 0
             | None -> false)
        in
        (lbp, ubp, sum_ok)
      | _ ->
        (* MIN/MAX bound: constant interval endpoints are still sound
           pointwise bounds for use in [affine_min]; no certified
           summation over this level. *)
        (Poly.int ilo, Poly.int ihi, false)
    in
    { ih = h; ilo; ihi; tmin; tmax; num = None; lbp; ubp; sum_ok }

(* --------------------------------------------- iteration counting --- *)

let max_sum_degree = 12

(* Exact iteration count of a statement under its enclosing headers
   (outermost first), or [None] when no closed form is certified.
   Rectangular parameter-only levels contribute a product (after a
   change of variable when inner bounds mention the index); certified
   symbolic levels are summed with Faulhaber polynomials. O(depth)
   polynomial operations, never O(iterations). *)
let exact_iters fcache iis =
  if
    not
      (List.for_all (fun i -> i.num <> None || i.sum_ok) iis)
  then None
  else
    try
      let count =
        List.fold_left
          (fun count i ->
            if Poly.degree count > max_sum_degree then raise Exit;
            let x = i.ih.Loop.index in
            match i.num with
            | Some (lb, _) ->
              if not (List.mem x (Poly.vars count)) then
                Poly.mul count (Poly.int i.tmax)
              else begin
                (* x = lb + step*t, t = 0 .. trip-1 *)
                let tv = "$t" in
                let count =
                  Poly.subst count x
                    (Poly.add (Poly.int lb)
                       (Poly.mul_rat
                          (Rat.of_int i.ih.Loop.step)
                          (Poly.var tv)))
                in
                sum_poly fcache count tv ~lo:Poly.zero
                  ~hi:(Poly.int (i.tmax - 1))
              end
            | None ->
              let lo, hi =
                if i.ih.Loop.step = 1 then (i.lbp, i.ubp) else (i.ubp, i.lbp)
              in
              sum_poly fcache count x ~lo ~hi)
          Poly.one (List.rev iis)
      in
      match Poly.is_const count with
      | Some r when Rat.is_integer r && Rat.sign r >= 0 -> Some (Rat.to_int r)
      | _ -> None
    with Exit -> None

(* ------------------------------------------------ array metadata ---- *)

type ameta = {
  am_extents : int array;
  am_colstride : int array;  (** element stride per dimension *)
  am_base : int;
  am_elem : int;
  am_lines : Iset.t;  (** every line of the array: the sound superset *)
}

let array_meta ~param ~layout ~line_bytes (d : Decl.t) =
  let extents =
    Array.of_list (List.map (fun e -> Expr.eval e param) d.Decl.extents)
  in
  let n = Array.length extents in
  let colstride = Array.make n 1 in
  for k = 1 to n - 1 do
    colstride.(k) <- colstride.(k - 1) * extents.(k - 1)
  done;
  let base = Layout.address layout d.Decl.name (Array.make n 1) in
  let elem = Layout.elem_size layout d.Decl.name in
  let total = Layout.size_elements layout d.Decl.name * elem in
  {
    am_extents = extents;
    am_colstride = colstride;
    am_base = base;
    am_elem = elem;
    am_lines = [ (base / line_bytes, (base + total - 1) / line_bytes) ];
  }

(* ------------------------------------------------ footprints -------- *)

(* One dimension of a reference, resolved against the enclosing loops:
   either a fixed value, an arithmetic progression driven by exactly
   one parameter-only rectangular loop, a sound value interval, or
   unknown (non-affine / unbound). *)
type dim_view =
  | Dpoint of int
  | Dprog of { first : int; stride : int; n : int; vlo : int; vhi : int }
  | Dbox of int * int
  | Dunknown

let dim_view ~param_opt ~lookup e =
  match eval_numeric ~param_opt e with
  | Some v -> Dpoint v
  | None -> (
    match Affine.of_expr e with
    | None -> Dunknown
    | Some a -> (
      let idxs =
        List.filter (fun v -> param_opt v = None) (Affine.vars a)
      in
      let c0 =
        List.fold_left
          (fun acc v ->
            match param_opt v with
            | Some pv -> acc + (Affine.coeff a v * pv)
            | None -> acc)
          (Affine.const a) (Affine.vars a)
      in
      match idxs with
      | [ x ] -> (
        match lookup x with
        | Some i when i.num <> None && i.tmax >= 1 ->
          let c = Affine.coeff a x in
          let first = c0 + (c * (fst (Option.get i.num))) in
          let stride = abs (c * i.ih.Loop.step) in
          let last = first + ((i.tmax - 1) * c * i.ih.Loop.step) in
          Dprog
            {
              first;
              stride;
              n = (if stride = 0 then 1 else i.tmax);
              vlo = min first last;
              vhi = max first last;
            }
        | Some i ->
          let c = Affine.coeff a x in
          if c >= 0 then Dbox (c0 + (c * i.ilo), c0 + (c * i.ihi))
          else Dbox (c0 + (c * i.ihi), c0 + (c * i.ilo))
        | None -> Dunknown)
      | [] -> Dpoint c0
      | _ -> (
        (* several indices in one subscript: box only *)
        try
          let lo, hi = affine_interval ~param_opt ~lookup a in
          Dbox (lo, hi)
        with Bail _ -> Dunknown)))

(* Touched cache lines of one reference: [(exact, intervals)] with
   [intervals] always a superset of the truth and [exact] claiming
   equality. Exactness needs separable in-bounds progressions over
   always-executing loops and a footprint that is dense at line
   granularity (largest gap between touched bytes <= line size). *)
let ref_lines ~param_opt ~lookup ~meta ~line_bytes ~always (r : Reference.t) =
  let m =
    match Hashtbl.find_opt meta r.Reference.array with
    | Some m -> m
    | None -> raise (Bail ("undeclared array " ^ r.Reference.array))
  in
  let dims = List.map (dim_view ~param_opt ~lookup) r.Reference.subs in
  if List.exists (fun d -> d = Dunknown) dims then (false, m.am_lines)
  else if List.length dims <> Array.length m.am_extents then
    raise (Bail ("rank mismatch for " ^ r.Reference.array))
  else begin
    let bounds =
      List.map
        (function
          | Dpoint v -> (v, v)
          | Dprog p -> (p.vlo, p.vhi)
          | Dbox (lo, hi) -> (lo, hi)
          | Dunknown -> assert false)
        dims
    in
    let in_bounds =
      List.for_all2
        (fun (lo, hi) ext -> lo >= 1 && hi <= ext)
        bounds
        (Array.to_list m.am_extents)
    in
    if not in_bounds then (false, m.am_lines)
    else begin
      let off lohi =
        m.am_base
        + m.am_elem
          * List.fold_left ( + ) 0
              (List.mapi
                 (fun k (lo, hi) ->
                   (if lohi then hi - 1 else lo - 1) * m.am_colstride.(k))
                 bounds)
      in
      let bmin = off false and bmax = off true in
      let super = [ (bmin / line_bytes, bmax / line_bytes) ] in
      (* exact: every dim a point or a single-index progression, no
         index used twice, all over always-executing loops *)
      let used = Hashtbl.create 4 in
      let separable =
        always
        && List.for_all2
             (fun d sub ->
               match d with
               | Dpoint _ -> true
               | Dprog _ -> (
                 match
                   List.filter
                     (fun v -> param_opt v = None)
                     (Expr.vars sub)
                 with
                 | [ x ] ->
                   if Hashtbl.mem used x then false
                   else begin
                     Hashtbl.add used x ();
                     true
                   end
                 | _ -> false)
               | Dbox _ | Dunknown -> false)
             dims r.Reference.subs
      in
      if not separable then (false, super)
      else begin
        (* dense-at-line-granularity check over the byte progressions;
           byte stride = value stride * column stride * element size *)
        let effs =
          List.concat
            (List.mapi
               (fun k d ->
                 match d with
                 | Dprog p when p.n > 1 && p.stride > 0 ->
                   [ (p.n, p.stride * m.am_colstride.(k) * m.am_elem) ]
                 | _ -> [])
               dims)
          |> List.sort (fun (_, t1) (_, t2) -> compare t1 t2)
        in
        let _, gap =
          List.fold_left
            (fun (span, gap) (n, t) ->
              let gap = if t > span then max gap (t - span) else gap in
              (span + ((n - 1) * t), gap))
            (0, 0) effs
        in
        if gap <= line_bytes then (true, super) else (false, super)
      end
    end
  end

(* -------------------------------------------------- statement ops --- *)

let rec count_ops = function
  | Stmt.Unop (_, a) -> 1 + count_ops a
  | Stmt.Binop (_, a, b) -> 1 + count_ops a + count_ops b
  | Stmt.Const _ | Stmt.Scalar _ | Stmt.Iexpr _ | Stmt.Load _ -> 0

(* ------------------------------------------------ unit analysis ----- *)

type uacc = {
  ua_name : string;
  ua_straightline : bool;
  ua_exact : bool;  (** iterations and footprint both exact *)
  ua_acc : bracket;
  ua_ops : bracket;
  ua_racc : bracket;  (** accesses from marked statements *)
  ua_lines : Iset.t option;  (** exact touched lines, when certified *)
  ua_super : Iset.t;  (** always a superset of touched lines *)
  ua_mark : [ `All | `None | `Mixed ];
  ua_est_acc : int;
  ua_est_ops : int;
  ua_est_racc : int;
  ua_nest : Loop.t option;
}

let analyze_unit ~param_opt ~meta ~line_bytes ~marked fcache node =
  let stmts =
    match node with
    | Loop.Stmt s -> [ (s, []) ]
    | Loop.Loop l ->
      let rec walk iis (l : Loop.t) =
        let lookup x =
          List.find_opt (fun i -> String.equal i.ih.Loop.index x) iis
        in
        let i = make_ii ~param_opt ~lookup l.Loop.header in
        let iis = iis @ [ i ] in
        List.concat_map
          (function
            | Loop.Stmt s -> [ (s, iis) ]
            | Loop.Loop inner -> walk iis inner)
          l.Loop.body
      in
      walk [] l
  in
  let acc = ref iv_zero and ops = ref iv_zero and racc = ref iv_zero in
  let est_acc = ref 0 and est_ops = ref 0 and est_racc = ref 0 in
  let all_iters_exact = ref true in
  let all_lines_exact = ref true in
  let exact_ivals = ref [] and super_ivals = ref [] in
  let n_marked = ref 0 and n_unmarked = ref 0 in
  List.iter
    (fun ((s : Stmt.t), iis) ->
      let acc_per =
        List.length (Stmt.reads s) + List.length (Stmt.writes s)
      in
      let ops_per = count_ops s.Stmt.rhs in
      let tmax_prod =
        List.fold_left (fun p i -> p * i.tmax) 1 iis
      in
      let tmin_prod =
        List.fold_left (fun p i -> p * i.tmin) 1 iis
      in
      let iters =
        if tmax_prod = 0 then Some 0 else exact_iters fcache iis
      in
      let it_iv, it_est =
        match iters with
        | Some v -> (exact_iv v, v)
        | None ->
          all_iters_exact := false;
          (iv tmin_prod tmax_prod, tmax_prod)
      in
      let is_marked = acc_per > 0 && Hashtbl.mem marked s.Stmt.label in
      if acc_per > 0 then
        if is_marked then incr n_marked else incr n_unmarked;
      let scale per = iv (it_iv.lo * per) (it_iv.hi * per) in
      acc := iv_add !acc (scale acc_per);
      ops := iv_add !ops (scale ops_per);
      est_acc := !est_acc + (it_est * acc_per);
      est_ops := !est_ops + (it_est * ops_per);
      if is_marked then begin
        racc := iv_add !racc (scale acc_per);
        est_racc := !est_racc + (it_est * acc_per)
      end;
      (* footprint: skipped entirely when the statement never runs *)
      if it_iv.hi > 0 then begin
        let lookup x =
          List.find_opt (fun i -> String.equal i.ih.Loop.index x) iis
        in
        let always = List.for_all (fun i -> i.tmin >= 1) iis in
        List.iter
          (fun (r, _) ->
            let exact, lines =
              ref_lines ~param_opt ~lookup ~meta ~line_bytes ~always r
            in
            super_ivals := lines @ !super_ivals;
            if exact then exact_ivals := lines @ !exact_ivals
            else all_lines_exact := false)
          (Stmt.refs s)
      end)
    stmts;
  let super = Iset.norm !super_ivals in
  let lines =
    if !all_lines_exact && !all_iters_exact then Some (Iset.norm !exact_ivals)
    else None
  in
  {
    ua_name =
      (match node with
      | Loop.Loop l -> l.Loop.header.Loop.index
      | Loop.Stmt s -> s.Stmt.label);
    ua_straightline = (match node with Loop.Stmt _ -> true | _ -> false);
    ua_exact = !all_iters_exact && lines <> None;
    ua_acc = !acc;
    ua_ops = !ops;
    ua_racc = !racc;
    ua_lines = lines;
    ua_super = super;
    ua_mark =
      (if !n_marked = 0 then `None
       else if !n_unmarked = 0 then `All
       else `Mixed);
    ua_est_acc = !est_acc;
    ua_est_ops = !est_ops;
    ua_est_racc = !est_racc;
    ua_nest = (match node with Loop.Loop l -> Some l | _ -> None);
  }

(* -------------------------------------------- no-eviction certificate *)

(* If no cache set is ever asked to hold more distinct lines than its
   associativity, LRU never evicts, so every non-first touch of a line
   hits and misses = cold misses exactly. [lines] must cover every
   line the program can touch (the union of all units' supersets). *)
let no_eviction ~(config : Cache.config) lines =
  let sets = config.Cache.size_bytes / (config.Cache.line_bytes * config.Cache.assoc) in
  let occ = Array.make sets 0 in
  let base = ref 0 in
  List.iter
    (fun (a, b) ->
      let len = b - a + 1 in
      base := !base + (len / sets);
      let r = len mod sets in
      if r > 0 then
        let st = a mod sets in
        for k = 0 to r - 1 do
          let i = (st + k) mod sets in
          occ.(i) <- occ.(i) + 1
        done)
    lines;
  Array.for_all (fun c -> c + !base <= config.Cache.assoc) occ

(* ------------------------------------------------ the cost model ---- *)

(* Estimated lines touched by a nest, from the paper's LoopCost model
   with the current innermost loop as candidate — the "group-linetouch"
   estimate used when the footprint does not certify. *)
let linetouch_estimate ~param ~cls nest =
  try
    let indices = Loop.indices nest in
    let inner = List.nth indices (List.length indices - 1) in
    let cost = Loopcost.loop_cost ~nest ~cls inner in
    Some
      (int_of_float
         (Float.round (Poly.eval cost (fun x -> float_of_int (param x)))))
  with _ -> None

(* ------------------------------------------------ whole program ----- *)

let estimate ?(params = []) ?(optimized_labels = [])
    ~(config : Cache.config) (p : Program.t) =
  try
    if not (Cache.config_valid config) then raise (Bail "invalid cache config");
    let line_bytes = config.Cache.line_bytes in
    if line_bytes > 128 then
      raise (Bail "line size exceeds array alignment");
    let resolved =
      List.map
        (fun (x, d) ->
          match List.assoc_opt x params with
          | Some v -> (x, v)
          | None -> (x, d))
        p.Program.params
    in
    let param_opt x = List.assoc_opt x resolved in
    let param x =
      match param_opt x with
      | Some v -> v
      | None -> raise (Bail ("unbound parameter " ^ x))
    in
    let layout = Layout.build ~param p.Program.decls in
    let meta = Hashtbl.create 8 in
    List.iter
      (fun (d : Decl.t) ->
        Hashtbl.replace meta d.Decl.name
          (array_meta ~param ~layout ~line_bytes d))
      p.Program.decls;
    let marked = Hashtbl.create 8 in
    List.iter (fun l -> Hashtbl.replace marked l ()) optimized_labels;
    let fcache = Hashtbl.create 8 in
    let units =
      List.map
        (analyze_unit ~param_opt ~meta ~line_bytes ~marked fcache)
        p.Program.body
    in
    let global_super =
      List.fold_left (fun acc u -> Iset.union acc u.ua_super) [] units
    in
    let noevict = no_eviction ~config global_super in
    (* Sequential first-touch accounting across units. *)
    let known = ref [] and maybe = ref [] in
    let b_acc = ref iv_zero
    and b_hits = ref iv_zero
    and b_cold = ref iv_zero
    and b_racc = ref iv_zero
    and b_rhits = ref iv_zero
    and b_rcold = ref iv_zero
    and b_ops = ref iv_zero in
    let t_acc = ref 0
    and t_hits = ref 0
    and t_cold = ref 0
    and t_racc = ref 0
    and t_rhits = ref 0
    and t_rcold = ref 0
    and t_ops = ref 0 in
    let reports = ref [] in
    let all_exact = ref true in
    List.iter
      (fun u ->
        let cold =
          match u.ua_lines with
          | Some ls ->
            let hi = Iset.card (Iset.diff ls !known) in
            let lo = Iset.card (Iset.diff ls (Iset.union !known !maybe)) in
            iv lo hi
          | None ->
            let hi =
              min u.ua_acc.hi (Iset.card (Iset.diff u.ua_super !known))
            in
            iv 0 hi
        in
        let miss =
          if noevict then cold else iv cold.lo u.ua_acc.hi
        in
        let hits =
          iv (max 0 (u.ua_acc.lo - miss.hi)) (max 0 (u.ua_acc.hi - miss.lo))
        in
        (* estimates, clamped into the sound brackets *)
        let est_cold = clamp cold.hi cold in
        let est_miss =
          if noevict then est_cold
          else
            let lt =
              match u.ua_nest with
              | Some nest ->
                linetouch_estimate ~param ~cls:(max 1 (line_bytes / 8)) nest
              | None -> None
            in
            clamp
              (match lt with Some v -> max v est_cold | None -> miss.hi)
              miss
        in
        let est_hits = max 0 (u.ua_est_acc - est_miss) in
        (* the optimized region *)
        let rcold, rmiss =
          match u.ua_mark with
          | `All -> (cold, miss)
          | `None -> (iv_zero, iv_zero)
          | `Mixed ->
            ( iv 0 (min cold.hi u.ua_racc.hi),
              iv 0 (min miss.hi u.ua_racc.hi) )
        in
        let rhits =
          iv
            (max 0 (u.ua_racc.lo - rmiss.hi))
            (max 0 (u.ua_racc.hi - rmiss.lo))
        in
        let est_rcold, est_rmiss =
          match u.ua_mark with
          | `All -> (est_cold, est_miss)
          | `None -> (0, 0)
          | `Mixed ->
            let scale v =
              if u.ua_est_acc = 0 then 0
              else v * u.ua_est_racc / u.ua_est_acc
            in
            (clamp (scale est_cold) rcold, clamp (scale est_miss) rmiss)
        in
        let est_rhits = max 0 (u.ua_est_racc - est_rmiss) in
        let formula =
          if u.ua_straightline then "straightline"
          else if noevict && u.ua_lines <> None then "cold-only"
          else if u.ua_lines <> None then "bounded-footprint"
          else "group-linetouch"
        in
        let uclass =
          (* an earlier approx unit widens this unit's cold bracket
             (its lines may or may not have been pre-touched), so
             exactness also demands degenerate brackets *)
          if
            u.ua_exact && noevict
            && u.ua_mark <> `Mixed
            && cold.lo = cold.hi
          then Exact
          else Approx
        in
        if uclass = Approx then all_exact := false;
        b_acc := iv_add !b_acc u.ua_acc;
        b_hits := iv_add !b_hits hits;
        b_cold := iv_add !b_cold cold;
        b_racc := iv_add !b_racc u.ua_racc;
        b_rhits := iv_add !b_rhits rhits;
        b_rcold := iv_add !b_rcold rcold;
        b_ops := iv_add !b_ops u.ua_ops;
        t_acc := !t_acc + u.ua_est_acc;
        t_hits := !t_hits + est_hits;
        t_cold := !t_cold + est_cold;
        t_racc := !t_racc + u.ua_est_racc;
        t_rhits := !t_rhits + est_rhits;
        t_rcold := !t_rcold + est_rcold;
        t_ops := !t_ops + u.ua_est_ops;
        (match u.ua_lines with
        | Some ls -> known := Iset.union !known ls
        | None -> maybe := Iset.union !maybe u.ua_super);
        if Obs.enabled () then begin
          Obs.counter "analytic.nests" 1;
          Obs.counter
            (if uclass = Exact then "analytic.exact" else "analytic.approx")
            1;
          Obs.instant "analytic.unit"
            ~args:
              [
                ("unit", u.ua_name);
                ("class", if uclass = Exact then "exact" else "approx");
                ("formula", formula);
                ("accesses", string_of_int u.ua_est_acc);
                ("misses", string_of_int est_miss);
              ]
        end;
        reports :=
          {
            u_name = u.ua_name;
            u_class = uclass;
            u_formula = formula;
            u_accesses = u.ua_est_acc;
            u_misses = est_miss;
          }
          :: !reports)
      units;
    Ok
      {
        e_whole =
          { c_accesses = !t_acc; c_hits = !t_hits; c_cold = !t_cold };
        e_optimized =
          { c_accesses = !t_racc; c_hits = !t_rhits; c_cold = !t_rcold };
        e_ops = !t_ops;
        e_exact = !all_exact;
        b_accesses = !b_acc;
        b_hits = !b_hits;
        b_cold = !b_cold;
        b_opt_accesses = !b_racc;
        b_opt_hits = !b_rhits;
        b_opt_cold = !b_rcold;
        b_ops = !b_ops;
        e_units = List.rev !reports;
      }
  with
  | Bail reason -> Error reason
  | e -> Error (Printexc.to_string e)
