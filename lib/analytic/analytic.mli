(** Closed-form symbolic locality analysis: an O(nest-size) analytic
    fast path beside the trace-replay simulator.

    Where the simulator interprets a program and replays every access
    against an LRU cache model, this module derives the same counters —
    accesses, hits, cold misses, ops, per-region tallies — directly from
    the normalized affine subscripts and symbolic trip counts, in time
    proportional to the size of the loop nests (plus the data footprint
    in cache lines), never the number of iterations.

    The analysis classifies each top-level unit (loop nest or straight-
    line statement) and the program as a whole:

    - {e exact}: every reported number provably equals what the
      simulator would produce. Requires affine rectangular bounds (or
      certified triangular bounds for iteration counts), separable
      in-bounds array subscripts whose footprints are dense at cache-
      line granularity, and — for hit/miss counts beyond cold misses —
      a no-eviction certificate (no cache set is ever asked to hold
      more distinct lines than its associativity).
    - {e approx}: the numbers are estimates, but every value is
      accompanied by a sound bracket [lo, hi] that is guaranteed to
      contain the simulator's value.
    - {e fallback}: the program is out of scope (non-affine bounds over
      loop indices, invalid geometry, analysis failure); the caller
      should replay the trace instead.

    Differentially validated against the simulator by the [`Analytic]
    fuzzing oracle and [test/test_analytic.ml]. *)

type counts = {
  c_accesses : int;
  c_hits : int;
  c_cold : int;  (** first-ever touches of a cache line *)
}

type bracket = { lo : int; hi : int }
(** Inclusive bounds; [lo = hi] on exactly-known quantities. *)

val in_bracket : int -> bracket -> bool

type cls = Exact | Approx

type unit_report = {
  u_name : string;  (** loop index of the nest, or the statement label *)
  u_class : cls;
  u_formula : string;
      (** which closed form fired: "straightline", "cold-only",
          "bounded-footprint" or "group-linetouch" *)
  u_accesses : int;
  u_misses : int;  (** estimates, always within the unit's brackets *)
}

type estimate = {
  e_whole : counts;
  e_optimized : counts;  (** accesses whose statement label is marked *)
  e_ops : int;
  e_exact : bool;  (** whole program exact: every count simulator-equal *)
  b_accesses : bracket;
  b_hits : bracket;
  b_cold : bracket;
  b_opt_accesses : bracket;
  b_opt_hits : bracket;
  b_opt_cold : bracket;
  b_ops : bracket;
  e_units : unit_report list;  (** one per top-level node, textual order *)
}

val estimate :
  ?params:(string * int) list ->
  ?optimized_labels:string list ->
  config:Locality_cachesim.Cache.config ->
  Program.t ->
  (estimate, string) result
(** Analyze the program under the given cache geometry. [params]
    override the program's default parameter values (same convention as
    the interpreter). [Error reason] is the fallback verdict.

    Emits [analytic.nests], [analytic.exact], [analytic.approx] and
    [analytic.fallback] counters plus one ["analytic.unit"] instant per
    top-level unit recording the formula that fired, when {!Obs}
    tracing is enabled. *)
