(* The analysis daemon — see serve.mli for the contract.

   Threading model: ONE event-loop thread (the caller of [run]) owns
   every file descriptor for reading, the connection table, the waiter
   deadline list and all Obs emission; worker domains only compute
   [Driver.run] and write response lines (each connection has a write
   mutex, so a worker's reply and a main-loop timeout line never
   interleave). Everything the two sides share — the in-flight job
   table, waiter [answered] flags, connection refcounts, the completion
   queue — is touched only under the single server mutex, in short
   critical sections with no I/O inside. *)

module Driver = Locality_driver.Driver
module Request = Locality_driver.Request
module Response = Locality_driver.Response
module Pool = Locality_par.Pool
module Obs = Locality_obs.Obs
module Event = Locality_obs.Event
module Store = Locality_store.Store
module Tune = Locality_stats.Tune

type listen = Socket of string | Stdio

type options = {
  jobs : int option;
  max_queue : int;
  default_timeout_ms : int;
  retry_after_ms : int;
  gc_every_s : float;
  gc_max_bytes : int;
  gc_min_age_s : float;
  max_line_bytes : int;
  max_conns : int;
  write_timeout_s : float;
}

let default_options =
  {
    jobs = None;
    max_queue = 64;
    default_timeout_ms = 0;
    retry_after_ms = 100;
    gc_every_s = 0.;
    gc_max_bytes = 256 * 1024 * 1024;
    gc_min_age_s = 60.;
    max_line_bytes = 8 * 1024 * 1024;
    max_conns = 512;
    write_timeout_s = 10.;
  }

type conn = {
  c_rfd : Unix.file_descr;
  c_wfd : Unix.file_descr;  (* = c_rfd for sockets, stdout for Stdio *)
  c_wlock : Mutex.t;
  c_buf : Buffer.t;  (* bytes read but not yet terminated by '\n' *)
  c_stdio : bool;  (* never close the process's own std fds *)
  c_wtimeout : float;  (* write-stall budget per line, seconds *)
  mutable c_eof : bool;
  mutable c_wfail : bool;
      (* write side dead (error or stall); later replies are dropped
         instead of waiting out another stall. *)
  mutable c_closed : bool;
  mutable c_refs : int;
      (* unanswered+unwritten waiters pointing here; the reaper only
         closes an eof'd connection once this is back to zero, so a
         worker mid-write can never race a close. *)
}

type waiter = {
  w_id : string;
  w_emit : bool;
  w_conn : conn;
  w_deadline : float;  (* absolute; infinity = none *)
  w_timeout_ms : int;  (* echoed in the typed timeout response *)
  mutable w_answered : bool;  (* under the server lock *)
}

type job = {
  j_fp : string;
  j_cfg : Driver.config;
  j_tune : Request.tune_spec option;
      (* a tune request runs the search instead of one measurement;
         the fingerprint includes the tune object, so tune and plain
         queries over the same config never share a job *)
  mutable j_waiters : waiter list;
}

type completion = Done of bool * Event.t list | Discarded

type t = {
  listen : listen;
  opts : options;
  lock : Mutex.t;
  inflight : (string, job) Hashtbl.t;  (* fingerprint -> job *)
  mutable n_inflight : int;
  completions : completion Queue.t;  (* worker -> main loop, under lock *)
  stop_flag : bool Atomic.t;
  mutable wake_w : Unix.file_descr option;  (* set while running *)
  mutable running : bool;
}

let create ?(options = default_options) listen =
  if options.max_queue < 1 then invalid_arg "Serve.create: max_queue < 1";
  if options.max_conns < 1 then invalid_arg "Serve.create: max_conns < 1";
  {
    listen;
    opts = options;
    lock = Mutex.create ();
    inflight = Hashtbl.create 16;
    n_inflight = 0;
    completions = Queue.create ();
    stop_flag = Atomic.make false;
    wake_w = None;
    running = false;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* Safe from signal handlers: one atomic store and one nonblocking
   write; EAGAIN just means the loop is already due to wake. *)
let wake t =
  match t.wake_w with
  | Some fd -> ( try ignore (Unix.write fd (Bytes.of_string "x") 0 1) with _ -> ())
  | None -> ()

let stop t =
  Atomic.set t.stop_flag true;
  wake t

let install_signal_handlers t =
  let h = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigint h;
  Sys.set_signal Sys.sigterm h

(* Writes happen from worker domains and the main loop alike; the
   per-connection mutex keeps lines whole, the closed flag covers the
   reaper, and any I/O error just marks the peer gone (SIGPIPE is
   ignored while serving). Socket fds are nonblocking: when the peer
   stops reading and its buffer fills, the writer waits in [select] up
   to the connection's stall budget and then declares the write side
   dead — a stalled client can delay one reply, never wedge a worker,
   the event loop, or the shutdown drain. *)
let write_line conn s =
  Mutex.lock conn.c_wlock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.c_wlock)
    (fun () ->
      if not (conn.c_closed || conn.c_wfail) then begin
        let b = Bytes.of_string (s ^ "\n") in
        let n = Bytes.length b in
        let deadline = Unix.gettimeofday () +. conn.c_wtimeout in
        let fail () =
          conn.c_wfail <- true;
          conn.c_eof <- true
        in
        let sent = ref 0 in
        try
          while !sent < n && not conn.c_wfail do
            match Unix.write conn.c_wfd b !sent (n - !sent) with
            | k -> sent := !sent + k
            | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
              let left = deadline -. Unix.gettimeofday () in
              if left <= 0. then fail ()
              else (
                try ignore (Unix.select [] [ conn.c_wfd ] [] left)
                with Unix.Unix_error (EINTR, _, _) -> ())
            | exception Unix.Unix_error (EINTR, _, _) -> ()
          done
        with _ -> fail ()
      end)

let respond conn resp = write_line conn (Response.to_json resp)

(* ---- worker side ---------------------------------------------------- *)

let process t job =
  (* If every waiter was already answered (all timed out while we were
     queued), skip the compute. The check and the table removal are one
     critical section: a client attaching to this fingerprint either
     sees the job still present (and its fresh waiter forces the
     compute) or finds it gone and starts a new one — never neither. *)
  let skip =
    locked t (fun () ->
        let all = List.for_all (fun w -> w.w_answered) job.j_waiters in
        if all then begin
          Hashtbl.remove t.inflight job.j_fp;
          t.n_inflight <- t.n_inflight - 1
        end;
        all)
  in
  if skip then begin
    locked t (fun () -> Queue.push Discarded t.completions);
    wake t
  end
  else begin
    let result, events =
      Obs.scoped (fun () ->
          Obs.span "serve.request" (fun () ->
              try
                match job.j_tune with
                | None -> `Run (Driver.run job.j_cfg)
                | Some ts ->
                  `Tune
                    (Result.map Tune.to_json
                       (Tune.run_config ~spec:(Tune.spec_of_request ts)
                          job.j_cfg))
              with e -> `Run (Error ("serve: " ^ Printexc.to_string e))))
    in
    let ok =
      match result with
      | `Run r -> Result.is_ok r
      | `Tune r -> Result.is_ok r
    in
    let response_for w =
      match result with
      | `Run r -> Response.of_run ~id:w.w_id ~emit_program:w.w_emit r
      | `Tune r -> Response.of_tune ~id:w.w_id r
    in
    (* Claim before writing: a waiter is answered by exactly one side,
       us or the deadline scan. Whoever flips [w_answered] first under
       the lock owns the reply. *)
    let claimed =
      locked t (fun () ->
          Hashtbl.remove t.inflight job.j_fp;
          let ws = List.filter (fun w -> not w.w_answered) job.j_waiters in
          List.iter (fun w -> w.w_answered <- true) ws;
          ws)
    in
    List.iter (fun w -> respond w.w_conn (response_for w)) claimed;
    (* Only now release the refs and the in-flight slot: the main loop
       treats [n_inflight = 0] as "all replies written" when draining,
       and the reaper trusts a nonzero refcount to mean a write may
       still be in progress. *)
    locked t (fun () ->
        List.iter (fun w -> w.w_conn.c_refs <- w.w_conn.c_refs - 1) claimed;
        t.n_inflight <- t.n_inflight - 1;
        Queue.push (Done (ok, events)) t.completions);
    wake t
  end

(* ---- main loop ------------------------------------------------------ *)

type loop = {
  t : t;
  pool : Pool.pool;
  wake_r : Unix.file_descr;
  listener : Unix.file_descr option;
  mutable conns : conn list;
  mutable waiters : waiter list;  (* deadline-carrying, main loop only *)
  mutable last_gc : float;
  mutable listener_open : bool;
}

let now () = Unix.gettimeofday ()

let deadline_of t (req : Request.t) =
  match req.Request.timeout_ms with
  | Some ms -> Some ms
  | None ->
    if t.opts.default_timeout_ms > 0 then Some t.opts.default_timeout_ms
    else None

let handle_line l conn line =
  let t = l.t in
  Obs.counter "serve.requests" 1;
    match Request.of_json line with
    | Error msg ->
      Obs.counter "serve.malformed" 1;
      respond conn (Response.Failed { id = ""; message = msg })
    | Ok req -> (
      match Request.to_config req with
      | Error msg ->
        Obs.counter "serve.invalid" 1;
        respond conn (Response.Failed { id = req.Request.id; message = msg })
      | Ok cfg -> (
        match deadline_of t req with
        | Some 0 ->
          (* The deterministic probe: a zero budget is already spent. *)
          Obs.counter "serve.timeouts" 1;
          respond conn
            (Response.Timeout { id = req.Request.id; timeout_ms = 0 })
        | deadline_ms ->
          let deadline, timeout_ms =
            match deadline_ms with
            | Some ms -> (now () +. (float_of_int ms /. 1000.), ms)
            | None -> (infinity, 0)
          in
          let mk_waiter () =
            {
              w_id = req.Request.id;
              w_emit = req.Request.emit_program;
              w_conn = conn;
              w_deadline = deadline;
              w_timeout_ms = timeout_ms;
              w_answered = false;
            }
          in
          let fp = Request.fingerprint req in
          let verdict =
            locked t (fun () ->
                match Hashtbl.find_opt t.inflight fp with
                | Some job ->
                  let w = mk_waiter () in
                  job.j_waiters <- w :: job.j_waiters;
                  conn.c_refs <- conn.c_refs + 1;
                  `Batched w
                | None when t.n_inflight >= t.opts.max_queue -> `Overloaded
                | None ->
                  let w = mk_waiter () in
                  let job =
                    { j_fp = fp; j_cfg = cfg; j_tune = req.Request.tune;
                      j_waiters = [ w ] }
                  in
                  Hashtbl.add t.inflight fp job;
                  t.n_inflight <- t.n_inflight + 1;
                  conn.c_refs <- conn.c_refs + 1;
                  `Submitted (w, job))
          in
          (match verdict with
          | `Batched w ->
            Obs.counter "serve.batched" 1;
            if w.w_deadline < infinity then l.waiters <- w :: l.waiters
          | `Overloaded ->
            Obs.counter "serve.overloaded" 1;
            respond conn
              (Response.Overloaded
                 { id = req.Request.id; retry_after_ms = t.opts.retry_after_ms })
          | `Submitted (w, job) ->
            if w.w_deadline < infinity then l.waiters <- w :: l.waiters;
            Pool.submit l.pool (fun () -> process t job))))

(* Split off every complete line in one scan of the buffered bytes;
   whatever trails the last newline is re-buffered once at the end, so
   k pipelined lines arriving in one read cost O(bytes), not
   O(bytes * k). *)
let drain_buffer l conn =
  let s = Buffer.contents conn.c_buf in
  let len = String.length s in
  let start = ref 0 in
  let continue = ref true in
  while !continue do
    match String.index_from_opt s !start '\n' with
    | Some i ->
      let stop = if i > !start && s.[i - 1] = '\r' then i - 1 else i in
      let line = String.sub s !start (stop - !start) in
      start := i + 1;
      if String.trim line <> "" then handle_line l conn line
    | None -> continue := false
  done;
  if !start > 0 then begin
    Buffer.clear conn.c_buf;
    Buffer.add_substring conn.c_buf s !start (len - !start)
  end;
  if len - !start > l.t.opts.max_line_bytes then begin
    Obs.counter "serve.malformed" 1;
    respond conn
      (Response.Failed { id = ""; message = "request: line too long" });
    conn.c_eof <- true;
    Buffer.clear conn.c_buf
  end

let read_conn l conn =
  let buf = Bytes.create 65536 in
  match Unix.read conn.c_rfd buf 0 (Bytes.length buf) with
  | 0 ->
    conn.c_eof <- true;
    (* Stdin closing is the stdio transport's shutdown signal. *)
    if conn.c_stdio then stop l.t
  | n ->
    Buffer.add_subbytes conn.c_buf buf 0 n;
    drain_buffer l conn
  | exception Unix.Unix_error ((EAGAIN | EINTR), _, _) -> ()
  | exception _ -> conn.c_eof <- true

let accept_conn l fd =
  match Unix.accept ~cloexec:true fd with
  | cfd, _ ->
    if List.length l.conns >= l.t.opts.max_conns then begin
      (* [Unix.select] misbehaves once fd numbers reach FD_SETSIZE;
         shed the connection with the typed envelope instead of letting
         the fd table grow into that range. *)
      Obs.counter "serve.conn_rejected" 1;
      let line =
        Response.to_json
          (Response.Overloaded
             { id = ""; retry_after_ms = l.t.opts.retry_after_ms })
        ^ "\n"
      in
      (try
         Unix.set_nonblock cfd;
         ignore (Unix.write cfd (Bytes.of_string line) 0 (String.length line))
       with _ -> ());
      try Unix.close cfd with _ -> ()
    end
    else begin
      Obs.counter "serve.connections" 1;
      (try Unix.set_nonblock cfd with _ -> ());
      l.conns <-
        {
          c_rfd = cfd;
          c_wfd = cfd;
          c_wlock = Mutex.create ();
          c_buf = Buffer.create 256;
          c_stdio = false;
          c_wtimeout = l.t.opts.write_timeout_s;
          c_eof = false;
          c_wfail = false;
          c_closed = false;
          c_refs = 0;
        }
        :: l.conns
    end
  | exception Unix.Unix_error ((EAGAIN | EINTR), _, _) -> ()
  | exception _ -> ()

let scan_deadlines l t_now =
  let t = l.t in
  if l.waiters <> [] then begin
    let expired =
      locked t (fun () ->
          let due, keep =
            List.partition
              (fun w -> (not w.w_answered) && w.w_deadline <= t_now)
              l.waiters
          in
          List.iter (fun w -> w.w_answered <- true) due;
          l.waiters <- List.filter (fun w -> not w.w_answered) keep;
          due)
    in
    List.iter
      (fun w ->
        Obs.counter "serve.timeouts" 1;
        respond w.w_conn
          (Response.Timeout { id = w.w_id; timeout_ms = w.w_timeout_ms }))
      expired;
    if expired <> [] then
      locked t (fun () ->
          List.iter
            (fun w -> w.w_conn.c_refs <- w.w_conn.c_refs - 1)
            expired)
  end

let drain_completions t =
  let pending =
    locked t (fun () ->
        let q = Queue.create () in
        Queue.transfer t.completions q;
        q)
  in
  Queue.iter
    (function
      | Done (ok, events) ->
        Obs.inject events;
        Obs.counter (if ok then "serve.ok" else "serve.errors") 1
      | Discarded -> Obs.counter "serve.discarded" 1)
    pending

let gc_tick l t_now =
  let t = l.t in
  if t.opts.gc_every_s > 0. && t_now -. l.last_gc >= t.opts.gc_every_s then begin
    l.last_gc <- t_now;
    match Store.default () with
    | None -> ()
    | Some store ->
      let deleted, remaining =
        Store.gc store ~max_bytes:t.opts.gc_max_bytes
          ~min_age_s:t.opts.gc_min_age_s
      in
      Obs.counter "serve.gc_ticks" 1;
      Obs.counter "serve.gc_deleted" deleted;
      Obs.gauge "serve.store_bytes" (float_of_int remaining)
  end

let close_conn conn =
  Mutex.lock conn.c_wlock;
  conn.c_closed <- true;
  Mutex.unlock conn.c_wlock;
  if not conn.c_stdio then begin
    try Unix.close conn.c_rfd with _ -> ()
  end

(* Close eof'd connections nobody is still answering. Refcounts are
   read under the lock; only the main loop ever closes, so a worker
   that still holds a ref can write in peace. *)
let reap_conns l =
  let t = l.t in
  let reapable =
    locked t (fun () ->
        List.filter (fun c -> c.c_eof && (not c.c_closed) && c.c_refs = 0) l.conns)
  in
  List.iter close_conn reapable;
  l.conns <- List.filter (fun c -> not c.c_closed) l.conns

let unlink_socket path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> ( try Unix.unlink path with _ -> ())
  | _ | (exception _) -> ()

let close_listener l =
  if l.listener_open then begin
    l.listener_open <- false;
    (match l.listener with
    | Some fd -> ( try Unix.close fd with _ -> ())
    | None -> ());
    match l.t.listen with Socket path -> unlink_socket path | Stdio -> ()
  end

let run t =
  if t.running then invalid_arg "Serve.run: already running";
  t.running <- true;
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with _ -> ());
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_w;
  t.wake_w <- Some wake_w;
  let listener, conns =
    match t.listen with
    | Socket path ->
      unlink_socket path;
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 64
       with e ->
         (try Unix.close fd with _ -> ());
         t.wake_w <- None;
         (try Unix.close wake_r with _ -> ());
         (try Unix.close wake_w with _ -> ());
         t.running <- false;
         raise e);
      (Some fd, [])
    | Stdio ->
      (* The process's own std fds stay blocking — making stdout
         nonblocking would leak into everything else the process
         prints. One piped client is the transport's contract; the
         write deadline applies to socket connections. *)
      ( None,
        [
          {
            c_rfd = Unix.stdin;
            c_wfd = Unix.stdout;
            c_wlock = Mutex.create ();
            c_buf = Buffer.create 256;
            c_stdio = true;
            c_wtimeout = t.opts.write_timeout_s;
            c_eof = false;
            c_wfail = false;
            c_closed = false;
            c_refs = 0;
          };
        ] )
  in
  let pool = Pool.create ?jobs:t.opts.jobs () in
  Obs.gauge "serve.jobs" (float_of_int (Pool.pool_jobs pool));
  let l =
    {
      t;
      pool;
      wake_r;
      listener;
      conns;
      waiters = [];
      last_gc = now ();
      listener_open = Option.is_some listener;
    }
  in
  let finished = ref false in
  while not !finished do
    let t_now = now () in
    let draining = Atomic.get t.stop_flag in
    if draining then close_listener l;
    scan_deadlines l t_now;
    if not draining then gc_tick l t_now;
    drain_completions t;
    reap_conns l;
    let idle = locked t (fun () -> t.n_inflight = 0) in
    if draining && idle then finished := true
    else begin
      let read_fds =
        wake_r
        :: (if draining then []
            else
              (if l.listener_open then Option.to_list listener else [])
              @ List.filter_map
                  (fun c ->
                    if c.c_eof || c.c_closed then None else Some c.c_rfd)
                  l.conns)
      in
      let timeout =
        let next_deadline =
          List.fold_left
            (fun acc w -> if w.w_answered then acc else min acc w.w_deadline)
            infinity l.waiters
        in
        let next_gc =
          if (not draining) && t.opts.gc_every_s > 0. then
            l.last_gc +. t.opts.gc_every_s
          else infinity
        in
        let until = min next_deadline next_gc in
        if until = infinity then 1.0
        else Float.max 0. (Float.min 1.0 (until -. t_now))
      in
      match Unix.select read_fds [] [] timeout with
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | ready, _, _ ->
        if List.mem wake_r ready then begin
          let b = Bytes.create 256 in
          try ignore (Unix.read wake_r b 0 256) with _ -> ()
        end;
        (match listener with
        | Some fd when l.listener_open && List.mem fd ready -> accept_conn l fd
        | _ -> ());
        List.iter
          (fun c ->
            if (not c.c_eof) && (not c.c_closed) && List.mem c.c_rfd ready
            then read_conn l c)
          l.conns
    end
  done;
  (* Drained: every job finished and wrote its replies. Tear down. *)
  Pool.shutdown pool;
  drain_completions t;
  close_listener l;
  List.iter close_conn l.conns;
  l.conns <- [];
  t.wake_w <- None;
  (try Unix.close wake_r with _ -> ());
  (try Unix.close wake_w with _ -> ());
  Obs.instant "serve.drained";
  t.running <- false
