(** Memoria-as-a-service: the long-running analysis daemon behind
    [memoria serve].

    The server speaks line-delimited JSON — one {!Locality_driver.Request}
    per line in, one {!Locality_driver.Response} per line out — over a
    Unix-domain socket ({!Socket}) or the process's stdin/stdout
    ({!Stdio}, for piping). Responses carry the request's [id] and are
    not ordered across requests; clients multiplexing one connection
    match on the id. The wire contract is documented in
    [doc/PROTOCOL.md].

    One event-loop thread owns all I/O (accept, line framing, deadline
    and gc bookkeeping); compute is dispatched to a persistent
    {!Locality_par.Pool.pool} of worker domains, so concurrent requests
    simulate in parallel while sharing the process-wide warm state: one
    ambient [MEMORIA_STORE] (warm requests are answered from the store
    without re-capture) and one resolved configuration.

    Real-service behaviours, all observable as typed responses and
    [serve.*] counters:

    - {b Timeouts}: a request's [timeout_ms] (or the server default)
      starts a deadline at arrival; when it passes before a result is
      ready — queued or mid-compute — the client gets the typed
      ["timeout"] response and the eventual result is discarded.
      [timeout_ms = 0] expires immediately (the deterministic probe).
    - {b Backpressure}: at most [max_queue] requests may be in flight;
      beyond that the client immediately gets ["overloaded"] with a
      [retry_after_ms] hint rather than unbounded queueing.
    - {b Batching}: requests with equal
      {!Locality_driver.Request.fingerprint}s in flight at once are
      computed once and answered to every waiter.
    - {b Graceful drain}: {!stop} (wired to SIGINT/SIGTERM by
      {!install_signal_handlers}) stops accepting work, answers
      everything in flight, then returns from {!run}.
    - {b Maintenance}: an optional periodic {!Locality_store.Store.gc}
      tick over the ambient store, with a minimum entry age so a
      just-published object racing the tick is never evicted. *)

type listen =
  | Socket of string  (** Unix-domain socket path (created, later unlinked). *)
  | Stdio  (** Serve stdin→stdout; EOF on stdin drains and returns. *)

type options = {
  jobs : int option;
      (** Worker domains; [None] = {!Locality_par.Pool.default_jobs}. *)
  max_queue : int;  (** In-flight bound (queued + running). *)
  default_timeout_ms : int;
      (** Deadline for requests that carry none; [0] = unbounded. *)
  retry_after_ms : int;  (** Hint in ["overloaded"] responses. *)
  gc_every_s : float;  (** Store gc period; [0.] disables the tick. *)
  gc_max_bytes : int;  (** Store size target for the tick. *)
  gc_min_age_s : float;
      (** Entries younger than this survive every tick
          ({!Locality_store.Store.gc}'s [min_age_s]). *)
  max_line_bytes : int;
      (** Request lines longer than this are rejected and the
          connection closed. *)
  max_conns : int;
      (** Open-connection cap (kept below [select]'s FD_SETSIZE); an
          accept beyond it is answered with the typed ["overloaded"]
          envelope and closed. *)
  write_timeout_s : float;
      (** Per-reply write-stall budget on socket connections: a client
          that stops reading gets this long before its write side is
          declared dead and its replies dropped, so a stalled peer can
          never wedge a worker, the event loop, or the drain. *)
}

val default_options : options
(** Ambient jobs, [max_queue = 64], no default timeout,
    [retry_after_ms = 100], gc tick off ([gc_every_s = 0.], 256 MiB
    target, 60 s min age when enabled), 8 MiB line limit, 512
    connections, 10 s write-stall budget. *)

type t

val create : ?options:options -> listen -> t
(** Build a server. Nothing is bound or spawned until {!run}. *)

val run : t -> unit
(** Bind, spawn the worker pool, and serve until {!stop} (or EOF under
    {!Stdio}); drains in-flight work before returning. The calling
    thread becomes the event loop. @raise Unix.Unix_error when the
    socket cannot be bound. *)

val stop : t -> unit
(** Ask a running server to drain and return; safe from any thread or
    signal handler, idempotent. *)

val install_signal_handlers : t -> unit
(** SIGINT/SIGTERM → {!stop}; SIGPIPE ignored (a client hanging up
    mid-response must not kill the server). Call before {!run}. *)
