type unop = Fneg | Sqrt | Abs | Exp | Sin | Cos
type binop = Fadd | Fsub | Fmul | Fdiv | Fmin | Fmax

type rexpr =
  | Const of float
  | Scalar of string
  | Iexpr of Expr.t
  | Load of Reference.t
  | Unop of unop * rexpr
  | Binop of binop * rexpr * rexpr

type lhs = Store of Reference.t | Scalar_set of string
type t = { label : string; lhs : lhs; rhs : rexpr }

(* Atomic so that programs can be built from several domains at once
   (the stats tables compute their rows in parallel); ids stay unique
   within any one program either way. *)
let counter = Atomic.make 0

let fresh_label () = Printf.sprintf "S%d" (Atomic.fetch_and_add counter 1 + 1)

let assign ?label r e =
  let label = match label with Some l -> l | None -> fresh_label () in
  { label; lhs = Store r; rhs = e }

let scalar_assign ?label x e =
  let label = match label with Some l -> l | None -> fresh_label () in
  { label; lhs = Scalar_set x; rhs = e }

let writes s = match s.lhs with Store r -> [ r ] | Scalar_set _ -> []

let rec reads_of = function
  | Const _ | Scalar _ | Iexpr _ -> []
  | Load r -> [ r ]
  | Unop (_, a) -> reads_of a
  | Binop (_, a, b) -> reads_of a @ reads_of b

let reads s = reads_of s.rhs

let refs s =
  List.map (fun r -> (r, `Write)) (writes s)
  @ List.map (fun r -> (r, `Read)) (reads s)

let rec scalars_of = function
  | Const _ | Iexpr _ | Load _ -> []
  | Scalar x -> [ x ]
  | Unop (_, a) -> scalars_of a
  | Binop (_, a, b) -> scalars_of a @ scalars_of b

let scalars_read s = scalars_of s.rhs
let scalars_written s = match s.lhs with Scalar_set x -> [ x ] | Store _ -> []

let rec map_rexpr f = function
  | (Const _ | Scalar _ | Iexpr _) as e -> e
  | Load r -> Load (f r)
  | Unop (op, a) -> Unop (op, map_rexpr f a)
  | Binop (op, a, b) -> Binop (op, map_rexpr f a, map_rexpr f b)

let map_refs f s =
  let lhs = match s.lhs with Store r -> Store (f r) | l -> l in
  { s with lhs; rhs = map_rexpr f s.rhs }

let rec map_iexpr f = function
  | (Const _ | Scalar _) as e -> e
  | Iexpr e -> Iexpr (f e)
  | Load r -> Load { r with subs = List.map f r.subs }
  | Unop (op, a) -> Unop (op, map_iexpr f a)
  | Binop (op, a, b) -> Binop (op, map_iexpr f a, map_iexpr f b)

let subst_index s x e =
  let f i = Expr.subst i x e in
  let lhs =
    match s.lhs with
    | Store r -> Store { r with subs = List.map f r.subs }
    | l -> l
  in
  { s with lhs; rhs = map_iexpr f s.rhs }

let rename_index s x y = subst_index s x (Expr.Var y)

let rec rexpr_equal a b =
  match (a, b) with
  | Const x, Const y -> Float.equal x y
  | Scalar x, Scalar y -> String.equal x y
  | Iexpr x, Iexpr y -> Expr.equal x y
  | Load x, Load y -> Reference.equal x y
  | Unop (o1, x), Unop (o2, y) -> o1 = o2 && rexpr_equal x y
  | Binop (o1, x1, x2), Binop (o2, y1, y2) ->
    o1 = o2 && rexpr_equal x1 y1 && rexpr_equal x2 y2
  | (Const _ | Scalar _ | Iexpr _ | Load _ | Unop _ | Binop _), _ -> false

let equal a b =
  rexpr_equal a.rhs b.rhs
  &&
  match (a.lhs, b.lhs) with
  | Store x, Store y -> Reference.equal x y
  | Scalar_set x, Scalar_set y -> String.equal x y
  | (Store _ | Scalar_set _), _ -> false

let unop_name = function
  | Fneg -> "-"
  | Sqrt -> "SQRT"
  | Abs -> "ABS"
  | Exp -> "EXP"
  | Sin -> "SIN"
  | Cos -> "COS"

let binop_sym = function
  | Fadd -> "+"
  | Fsub -> "-"
  | Fmul -> "*"
  | Fdiv -> "/"
  | Fmin -> "MIN"
  | Fmax -> "MAX"

let prec = function Fadd | Fsub -> 1 | Fmul | Fdiv -> 2 | Fmin | Fmax -> 3

let rec pp_rexpr ppf = function
  | Const c ->
    if Float.is_integer c && Float.abs c < 1e15 then
      Format.fprintf ppf "%.1f" c
    else Format.fprintf ppf "%g" c
  | Scalar x -> Format.fprintf ppf "%s" x
  | Iexpr e -> Expr.pp ppf e
  | Load r -> Reference.pp ppf r
  | Unop (Fneg, a) -> Format.fprintf ppf "-%a" pp_atom a
  | Unop (op, a) -> Format.fprintf ppf "%s(%a)" (unop_name op) pp_rexpr a
  | Binop ((Fmin | Fmax) as op, a, b) ->
    Format.fprintf ppf "%s(%a, %a)" (binop_sym op) pp_rexpr a pp_rexpr b
  | Binop (op, a, b) ->
    let right_prec =
      match op with
      | Fsub | Fdiv -> prec op + 1
      | Fadd | Fmul | Fmin | Fmax -> prec op
    in
    Format.fprintf ppf "%a %s %a"
      (pp_operand (prec op))
      a (binop_sym op) (pp_operand right_prec) b

and pp_atom ppf e =
  match e with
  | Const _ | Scalar _ | Load _ -> pp_rexpr ppf e
  | Iexpr _ | Unop _ | Binop _ -> Format.fprintf ppf "(%a)" pp_rexpr e

(* Parenthesise a child whose operator binds looser than required; the
   right operand of [-] and [/] requires strictly tighter binding. *)
and pp_operand min_prec ppf e =
  match e with
  | Binop (((Fadd | Fsub | Fmul | Fdiv) as op), _, _) when prec op < min_prec
    ->
    Format.fprintf ppf "(%a)" pp_rexpr e
  | Const _ | Scalar _ | Iexpr _ | Load _ | Unop _ | Binop _ ->
    pp_rexpr ppf e

let pp ppf s =
  match s.lhs with
  | Store r -> Format.fprintf ppf "%a = %a" Reference.pp r pp_rexpr s.rhs
  | Scalar_set x -> Format.fprintf ppf "%s = %a" x pp_rexpr s.rhs
