type t = {
  name : string;
  params : (string * int) list;
  decls : Decl.t list;
  body : Loop.block;
}

let make ~name ?(params = []) decls body = { name; params; decls; body }

let decl t name =
  List.find_opt (fun d -> String.equal d.Decl.name name) t.decls

let top_loops t =
  List.filter_map
    (function Loop.Loop l -> Some l | Loop.Stmt _ -> None)
    t.body

let map_body f t = { t with body = f t.body }

let validate t =
  let ( let* ) = Result.bind in
  let check_ref (r : Reference.t) =
    match decl t r.array with
    | None -> Error (Printf.sprintf "undeclared array %s" r.array)
    | Some d ->
      if Decl.rank d <> Reference.rank r then
        Error
          (Printf.sprintf "rank mismatch for %s: declared %d, used %d"
             r.array (Decl.rank d) (Reference.rank r))
      else Ok ()
  in
  let labels = Hashtbl.create 64 in
  let rec check_block seen b =
    List.fold_left
      (fun acc node ->
        let* () = acc in
        match node with
        | Loop.Stmt s ->
          (* Dependence analysis and transformation bookkeeping key
             statements by label, so a duplicate silently corrupts both. *)
          if Hashtbl.mem labels s.Stmt.label then
            Error
              (Printf.sprintf "duplicate statement label %s" s.Stmt.label)
          else begin
            Hashtbl.replace labels s.Stmt.label ();
            List.fold_left
              (fun acc (r, _) ->
                let* () = acc in
                check_ref r)
              (Ok ()) (Stmt.refs s)
          end
        | Loop.Loop l ->
          let idx = l.header.index in
          if List.mem idx seen then
            Error (Printf.sprintf "shadowed loop index %s" idx)
          else if l.header.step = 0 then
            Error (Printf.sprintf "zero step in loop %s" idx)
          else check_block (idx :: seen) l.body)
      (Ok ()) b
  in
  check_block [] t.body

let param_env t name = List.assoc name t.params
