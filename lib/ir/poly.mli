(** Multivariate polynomials with rational coefficients.

    Loop trip counts and cache-line counts ([LoopCost]) are symbolic in the
    program's size parameters (e.g. [n]); this module gives them an exact
    representation so the cost tables of the paper's Figures 2, 3 and 7
    (e.g. [2n^3 + n^2] versus [n^3/4 + n^2]) can be computed and printed
    symbolically, and compared by dominating term as Section 4.1 requires. *)

type t

val zero : t
val one : t
val const : Rat.t -> t
val int : int -> t
val var : string -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val neg : t -> t

val mul_rat : Rat.t -> t -> t
(** Scale every coefficient. *)

val div_rat : t -> Rat.t -> t
(** @raise Division_by_zero on a zero divisor. *)

val equal : t -> t -> bool
val is_zero : t -> bool

val is_const : t -> Rat.t option
(** [Some c] when the polynomial has no variables. *)

val degree : t -> int
(** Total degree; [0] for constants (including zero). *)

val vars : t -> string list
(** Variables occurring with non-zero coefficient, sorted. *)

val subst : t -> string -> t -> t
(** [subst p x q] replaces every occurrence of variable [x] by [q]. *)

val eval : t -> (string -> float) -> float

val eval_rat : t -> (string -> Rat.t) -> Rat.t
(** Exact evaluation under a rational assignment — no float rounding,
    so integer-valued polynomials evaluate to exact integers. *)

val coeffs_in : t -> string -> t list
(** [coeffs_in p x] is [[c0; c1; ...; cd]] with [p = sum ci * x^i] and
    no [ci] mentioning [x]; [d] is the degree of [p] in [x] (a
    polynomial free of [x] yields the singleton [[p]]). *)

val compare_dominant : t -> t -> int
(** Order by dominating term: compare monomials from highest total degree
    down (graded lexicographic), first differing coefficient decides. This
    is the paper's "compare the dominating terms" rule for symbolic
    bounds; for polynomials in a single size parameter it coincides with
    comparison of values at large [n]. *)

val pp : Format.formatter -> t -> unit
(** Prints in the paper's style, highest-degree terms first, e.g.
    ["2n^3 + 1/4n^2 + 5"]. *)

val to_string : t -> string
