(** Whole programs: array declarations, symbolic parameters, and a
    top-level block of loops and statements. *)

type t = {
  name : string;
  params : (string * int) list;
      (** Symbolic size parameters with their default (evaluation) values. *)
  decls : Decl.t list;
  body : Loop.block;
}

val make :
  name:string -> ?params:(string * int) list -> Decl.t list -> Loop.block -> t

val decl : t -> string -> Decl.t option
val top_loops : t -> Loop.t list
(** Top-level loops in textual order (statements outside loops skipped). *)

val map_body : (Loop.block -> Loop.block) -> t -> t

val validate : t -> (unit, string) result
(** Check that every referenced array is declared with matching rank, loop
    index names are unique along each nest path, steps are non-zero, and
    statement labels are unique across the whole program (dependence
    analysis keys statements by label). *)

val param_env : t -> string -> int
(** Evaluation environment for the default parameter values.
    @raise Not_found for unknown names. *)
