(* A monomial maps each variable to a positive exponent; it is kept as a
   sorted association list so it can serve as a map key. *)
module Mono = struct
  type t = (string * int) list

  let compare_graded_lex (a : t) (b : t) =
    let deg m = List.fold_left (fun acc (_, e) -> acc + e) 0 m in
    let c = Int.compare (deg a) (deg b) in
    if c <> 0 then c
    else
      (* Same total degree: lexicographic on the variable sequence; an
         earlier-named variable with a higher exponent ranks higher. *)
      let rec go a b =
        match (a, b) with
        | [], [] -> 0
        | [], _ :: _ -> -1
        | _ :: _, [] -> 1
        | (xa, ea) :: ra, (xb, eb) :: rb ->
          let c = String.compare xb xa in
          (* A lexicographically smaller variable name dominates, so flip. *)
          if c <> 0 then c
          else
            let c = Int.compare ea eb in
            if c <> 0 then c else go ra rb
      in
      go a b

  let mul (a : t) (b : t) : t =
    let rec go a b =
      match (a, b) with
      | [], m | m, [] -> m
      | (xa, ea) :: ra, (xb, eb) :: rb ->
        let c = String.compare xa xb in
        if c < 0 then (xa, ea) :: go ra b
        else if c > 0 then (xb, eb) :: go a rb
        else (xa, ea + eb) :: go ra rb
    in
    go a b

  let degree (m : t) = List.fold_left (fun acc (_, e) -> acc + e) 0 m
end

module MonoMap = Map.Make (struct
  type t = Mono.t

  let compare = compare
end)

type t = Rat.t MonoMap.t
(* Invariant: no zero coefficients are stored. *)

let zero = MonoMap.empty

let norm_add mono coeff poly =
  let merged =
    MonoMap.update mono
      (function
        | None -> if Rat.is_zero coeff then None else Some coeff
        | Some c ->
          let s = Rat.add c coeff in
          if Rat.is_zero s then None else Some s)
      poly
  in
  merged

let const c = if Rat.is_zero c then zero else MonoMap.singleton [] c
let int n = const (Rat.of_int n)
let one = int 1
let var x = MonoMap.singleton [ (x, 1) ] Rat.one
let add a b = MonoMap.fold norm_add b a
let neg a = MonoMap.map Rat.neg a
let sub a b = add a (neg b)

let mul a b =
  MonoMap.fold
    (fun ma ca acc ->
      MonoMap.fold
        (fun mb cb acc -> norm_add (Mono.mul ma mb) (Rat.mul ca cb) acc)
        b acc)
    a zero

let mul_rat r a =
  if Rat.is_zero r then zero else MonoMap.map (fun c -> Rat.mul r c) a

let div_rat a r =
  if Rat.is_zero r then raise Division_by_zero;
  MonoMap.map (fun c -> Rat.div c r) a

let equal a b = MonoMap.equal Rat.equal a b
let is_zero a = MonoMap.is_empty a

let is_const a =
  if MonoMap.is_empty a then Some Rat.zero
  else
    match MonoMap.bindings a with
    | [ ([], c) ] -> Some c
    | _ -> None

let degree a = MonoMap.fold (fun m _ acc -> max acc (Mono.degree m)) a 0

let vars a =
  let module S = Set.Make (String) in
  MonoMap.fold
    (fun m _ acc -> List.fold_left (fun acc (x, _) -> S.add x acc) acc m)
    a S.empty
  |> S.elements

let rec pow p n = if n = 0 then one else mul p (pow p (n - 1))

let subst p x q =
  MonoMap.fold
    (fun m c acc ->
      match List.assoc_opt x m with
      | None -> norm_add m c acc
      | Some e ->
        let rest = List.filter (fun (y, _) -> y <> x) m in
        let term = mul (MonoMap.singleton rest c) (pow q e) in
        add acc term)
    p zero

let coeffs_in p x =
  (* Split each monomial by its power of [x]; bucket k collects the
     residual monomials of the terms with x^k. *)
  let buckets = Hashtbl.create 4 in
  let maxdeg = ref 0 in
  MonoMap.iter
    (fun m c ->
      let e = match List.assoc_opt x m with None -> 0 | Some e -> e in
      if e > !maxdeg then maxdeg := e;
      let rest = List.filter (fun (y, _) -> y <> x) m in
      let prev =
        match Hashtbl.find_opt buckets e with None -> zero | Some p -> p
      in
      Hashtbl.replace buckets e (norm_add rest c prev))
    p;
  List.init (!maxdeg + 1) (fun k ->
      match Hashtbl.find_opt buckets k with None -> zero | Some p -> p)

let eval_rat p env =
  MonoMap.fold
    (fun m c acc ->
      let v =
        List.fold_left
          (fun acc (x, e) ->
            let b = env x in
            let rec p acc k = if k = 0 then acc else p (Rat.mul acc b) (k - 1) in
            p acc e)
          c m
      in
      Rat.add acc v)
    p Rat.zero

let eval p env =
  MonoMap.fold
    (fun m c acc ->
      let v =
        List.fold_left
          (fun acc (x, e) -> acc *. (env x ** float_of_int e))
          (Rat.to_float c) m
      in
      acc +. v)
    p 0.0

let sorted_terms p =
  MonoMap.bindings p
  |> List.sort (fun (ma, _) (mb, _) -> Mono.compare_graded_lex mb ma)

let compare_dominant a b =
  let rec go ta tb =
    match (ta, tb) with
    | [], [] -> 0
    | [], (_, c) :: _ -> -Rat.sign c
    | (_, c) :: _, [] -> Rat.sign c
    | (ma, ca) :: ra, (mb, cb) :: rb ->
      let c = Mono.compare_graded_lex ma mb in
      if c > 0 then Rat.sign ca
      else if c < 0 then -Rat.sign cb
      else
        let c = Rat.compare ca cb in
        if c <> 0 then c else go ra rb
  in
  go (sorted_terms a) (sorted_terms b)

let pp_mono ppf (m : Mono.t) =
  List.iter
    (fun (x, e) ->
      if e = 1 then Format.fprintf ppf "%s" x
      else Format.fprintf ppf "%s^%d" x e)
    m

let pp ppf p =
  match sorted_terms p with
  | [] -> Format.fprintf ppf "0"
  | terms ->
    List.iteri
      (fun i (m, c) ->
        let c, sep =
          if i = 0 then (c, "")
          else if Rat.sign c < 0 then (Rat.neg c, " - ")
          else (c, " + ")
        in
        Format.pp_print_string ppf sep;
        if m = [] then Rat.pp ppf c
        else if Rat.equal c Rat.one then pp_mono ppf m
        else Format.fprintf ppf "%a%a" Rat.pp c pp_mono m)
      terms

let to_string p = Format.asprintf "%a" pp p
