(* The serve daemon and its wire API: request round-trips and strict
   rejection (fuzzed with the PR 5 seed streams), the stable Driver
   error format the envelope forwards, and the live server — concurrent
   clients get bytes identical to direct Driver.run, identical in-flight
   requests are batched, deadlines and the queue bound answer with typed
   responses, and a draining server still answers what it accepted. *)

module Serve = Locality_serve.Serve
module Request = Locality_driver.Request
module Response = Locality_driver.Response
module D = Locality_driver.Driver
module Measure = Locality_interp.Measure
module Store = Locality_store.Store
module Obs = Locality_obs.Obs
module Summary = Locality_obs.Summary
module Rng = Locality_fuzz.Rng

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------- wire format --- *)

let sample_requests =
  [
    Request.make (Request.Kernel "matmul");
    Request.make ~id:"r-1" ~n:32 ~scale:2 ~cls:8
      ~machines:[ Request.Named "cache1"; Request.Named "cache2" ]
      ~replay:Measure.Stream ~sample_rate:0.25 ~use_labels:true ~jobs:4
      ~timeout_ms:500 ~emit_program:true
      (Request.Suite "dmxpy");
    Request.make ~transform:Request.Keep ~store:Request.No_store
      (Request.File "/tmp/prog.mem");
    Request.make
      ~transform:
        (Request.Compound
           { try_reversal = Some true; interference_limit = Some 3 })
      ~machines:
        [
          Request.Custom
            {
              Locality_cachesim.Cache.name = "toy";
              size_bytes = 1024;
              assoc = 2;
              line_bytes = 32;
            };
        ]
      ~params:[ ("N", 8); ("M", 12) ]
      ~store:(Request.Root "/tmp/store-root")
      (Request.Text { name = "inline.mem"; text = "do i = 1, n\nend do\n" });
  ]

let test_roundtrip () =
  List.iter
    (fun r ->
      match Request.of_json (Request.to_json r) with
      | Ok r' ->
        check "of_json (to_json r) = r" true (r = r');
        (* Canonical form: serialization is a fixed point. *)
        check_str "to_json stable through the round trip"
          (Request.to_json r) (Request.to_json r')
      | Error msg -> Alcotest.failf "round trip rejected: %s" msg)
    sample_requests

let test_fingerprint () =
  let base = List.nth sample_requests 1 in
  let same =
    { base with Request.id = "other"; timeout_ms = None; jobs = Some 9 }
  in
  check "id/timeout/jobs don't change the compute identity" true
    (String.equal (Request.fingerprint base) (Request.fingerprint same));
  check "n does" false
    (String.equal (Request.fingerprint base)
       (Request.fingerprint { base with Request.n = Some 33 }))

(* Substring check without extra deps. *)
let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_unknown_field () =
  (match
     Request.of_json
       {|{"schema_version":1,"source":{"kind":"kernel","name":"matmul"},"bogus":1}|}
   with
  | Error msg ->
    check "diagnostic names the field" true (contains msg {|unknown field "bogus"|});
    check "line:col prefix" true (String.length msg > 2 && msg.[0] = '1' && msg.[1] = ':')
  | Ok _ -> Alcotest.fail "unknown field accepted");
  (* The position points at the key, across lines. *)
  match
    Request.of_json
      "{\"schema_version\":1,\n \"source\":{\"kind\":\"kernel\",\"name\":\"matmul\"},\n \"nope\":1}"
  with
  | Error msg ->
    check "points at line 3" true
      (String.length msg > 2 && String.sub msg 0 2 = "3:")
  | Ok _ -> Alcotest.fail "unknown field accepted"

let test_malformed_rejection () =
  let reject s =
    match Request.of_json s with
    | Error msg ->
      check "non-empty diagnostic" true (String.length msg > 0)
    | Ok _ -> Alcotest.failf "accepted malformed input %S" s
  in
  List.iter reject
    [
      "";
      "   ";
      "null";
      "[1,2]";
      "{";
      {|{"schema_version":99,"source":{"kind":"kernel","name":"m"}}|};
      {|{"schema_version":1}|};
      {|{"schema_version":1,"source":{"kind":"nope"}}|};
      {|{"schema_version":1,"source":{"kind":"kernel","name":"m"},"scale":0}|};
      {|{"schema_version":1,"source":{"kind":"kernel","name":"m"},"sample_rate":1.5}|};
      {|{"schema_version":1,"source":{"kind":"kernel","name":"m"},"replay":"bogus"}|};
      {|{"schema_version":1,"source":{"kind":"kernel","name":"m"},"timeout_ms":-5}|};
    ];
  (* A type-valid but geometrically impossible machine parses, then
     fails resolution: validation that needs pipeline knowledge lives in
     to_config, still under the stable "request: ..." format. *)
  match
    Request.of_json
      {|{"schema_version":1,"source":{"kind":"kernel","name":"m"},"machines":[{"name":"x","size_bytes":1000,"assoc":3,"line_bytes":33}]}|}
  with
  | Error msg -> Alcotest.failf "well-typed geometry rejected at parse: %s" msg
  | Ok req -> (
    match Request.to_config req with
    | Ok _ -> Alcotest.fail "impossible geometry resolved"
    | Error msg ->
      check "resolution error keeps the request prefix" true
        (String.length msg >= 8 && String.sub msg 0 8 = "request:"))

(* Fuzz the reader with the fuzzer's deterministic seed streams: random
   bytes and random mutations of a valid document must produce an Error,
   never an exception (and occasionally an Ok for benign mutations —
   both fine; raising is the only failure). *)
let test_fuzz_reader () =
  let valid = Request.to_json (List.nth sample_requests 1) in
  for index = 0 to 199 do
    let rng = Rng.derive 42 index in
    let input =
      if Rng.bool rng then
        (* Arbitrary bytes, printable-biased. *)
        String.init (Rng.range rng 0 80) (fun _ ->
            Char.chr (Rng.range rng 32 126))
      else begin
        (* Mutate the valid document: flip, drop or insert a byte. *)
        let b = Bytes.of_string valid in
        let pos = Rng.int rng (Bytes.length b) in
        match Rng.int rng 3 with
        | 0 ->
          Bytes.set b pos (Char.chr (Rng.range rng 32 126));
          Bytes.to_string b
        | 1 ->
          Bytes.to_string b |> fun s ->
          String.sub s 0 pos ^ String.sub s (pos + 1) (String.length s - pos - 1)
        | _ ->
          Bytes.to_string b |> fun s ->
          String.sub s 0 pos
          ^ String.make 1 (Char.chr (Rng.range rng 32 126))
          ^ String.sub s pos (String.length s - pos)
      end
    in
    match Request.of_json input with
    | Ok _ | Error _ -> ()
    | exception e ->
      Alcotest.failf "of_json raised %s on seed-stream %d: %S"
        (Printexc.to_string e) index input
  done

(* ------------------------------------------ stable Driver error form --- *)

let run_req r =
  match Request.to_config r with Ok cfg -> D.run cfg | Error e -> Error e

let test_error_format () =
  (match run_req (Request.make (Request.Kernel "nosuch")) with
  | Error msg ->
    check "unknown kernel: name-prefixed" true
      (contains msg "nosuch: unknown kernel")
  | Ok _ -> Alcotest.fail "unknown kernel ran");
  (match run_req (Request.make (Request.Suite "nosuch")) with
  | Error msg ->
    check "unknown suite program: name-prefixed" true
      (contains msg "nosuch: unknown suite program")
  | Ok _ -> Alcotest.fail "unknown suite program ran");
  match
    run_req
      (Request.make
         (Request.Text { name = "bad.mem"; text = "do i = 1,\nend do\n" }))
  with
  | Error msg ->
    check "parse error: name-prefixed" true
      (String.length msg > 8 && String.sub msg 0 8 = "bad.mem:");
    (* The name appears exactly once — batch callers never re-prefix. *)
    let occurrences =
      let rec go i acc =
        if i + 8 > String.length msg then acc
        else if String.sub msg i 8 = "bad.mem:" then go (i + 1) (acc + 1)
        else go (i + 1) acc
      in
      go 0 0
    in
    check_int "source name appears exactly once" 1 occurrences
  | Ok _ -> Alcotest.fail "parse error ran"

(* The per-request SHARDS rate is config state, not process state: an
   explicit rate changes that request's sampled estimate, and leaves
   nothing behind for the next request to inherit — the property that
   keeps a long-lived daemon byte-identical to one-shot CLI runs. *)
let test_rate_isolation () =
  (* [Keep] so the response carries no statement labels — their names
     are process-unique tickets, fresh per construction, and would
     differ between byte-identical measurements. *)
  let sampled rate =
    Response.to_json
      (Response.of_run ~id:"" ~emit_program:false
         (run_req
            (Request.make ~n:24 ~replay:Measure.Sampled
               ~transform:Request.Keep
               ~machines:[ Request.Named "cache2" ]
               ~store:Request.No_store ?sample_rate:rate
               (Request.Kernel "matmul"))))
  in
  let ambient_before = sampled None in
  check "explicit rates reach the profiler" false
    (String.equal (sampled (Some 1.0)) (sampled (Some 0.02)));
  check_str "an omitted rate is untouched by earlier explicit rates"
    ambient_before (sampled None)

(* ---------------------------------------------------- live server ----- *)

let dir_ticket = ref 0

let fresh_path stem =
  incr dir_ticket;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "memoria-%s-%d-%d" stem (Unix.getpid ()) !dir_ticket)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go tries =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((ENOENT | ECONNREFUSED), _, _)
      when tries > 0 ->
      Thread.delay 0.02;
      go (tries - 1)
  in
  go 250

let send_line fd s =
  let b = Bytes.of_string (s ^ "\n") in
  let n = Bytes.length b in
  let sent = ref 0 in
  while !sent < n do
    sent := !sent + Unix.write fd b !sent (n - !sent)
  done

let recv_line fd =
  let buf = Buffer.create 512 in
  let b = Bytes.create 1 in
  let rec go () =
    match Unix.read fd b 0 1 with
    | 0 -> Buffer.contents buf
    | _ ->
      if Bytes.get b 0 = '\n' then Buffer.contents buf
      else begin
        Buffer.add_char buf (Bytes.get b 0);
        go ()
      end
  in
  go ()

(* Start a server on its own systhread, run [f] against the socket, then
   stop and join. The event loop and Obs live on this domain, so serve.*
   counters land in the test's buffer when recording is on. *)
let with_server ?(options = Serve.default_options) f =
  let path = fresh_path "serve-sock" in
  let t = Serve.create ~options (Serve.Socket path) in
  let th = Thread.create Serve.run t in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop t;
      Thread.join th;
      try Unix.unlink path with _ -> ())
    (fun () -> f path)

(* A request every machine answers quickly. *)
let light ~id ~store n =
  Request.make ~id ~n ~machines:[ Request.Named "cache2" ]
    ~store:(Request.Root store) (Request.Kernel "matmul")

(* A request that holds a worker for a while: per-access replay, both
   caches, no store (so reruns of the test can't answer it warm). *)
let heavy ?timeout_ms ~id () =
  Request.make ~id ~n:160 ~replay:Measure.Per_access
    ~machines:[ Request.Named "cache1"; Request.Named "cache2" ]
    ~store:Request.No_store ?timeout_ms (Request.Kernel "matmul")

let direct_bytes req =
  Response.to_json
    (Response.of_run ~id:req.Request.id ~emit_program:req.Request.emit_program
       (run_req req))

let test_concurrent_identity () =
  let store = fresh_path "serve-store" in
  with_server (fun path ->
      let round tag =
        let results = Array.make 4 "" in
        let client i () =
          let req = light ~id:(Printf.sprintf "%s-%d" tag i) ~store (16 + i) in
          let fd = connect path in
          send_line fd (Request.to_json req);
          results.(i) <- recv_line fd;
          Unix.close fd
        in
        let ths = List.init 4 (fun i -> Thread.create (client i) ()) in
        List.iter Thread.join ths;
        Array.iteri
          (fun i body ->
            let req = light ~id:(Printf.sprintf "%s-%d" tag i) ~store (16 + i) in
            check_str
              (Printf.sprintf "%s client %d: bytes = direct Driver.run" tag i)
              (direct_bytes req) body)
          results
      in
      (* Cold: the four clients populate the store (the direct runs in
         the checks reuse it — value-identical by the store's contract). *)
      round "cold";
      (* Warm: every simulation now answers from the store. *)
      let before = Store.counters () in
      round "warm";
      let after = Store.counters () in
      check "warm round hit the store" true
        (after.Store.hits > before.Store.hits);
      check_int "warm round missed nothing" before.Store.misses
        after.Store.misses)

let test_typed_timeout_immediate () =
  with_server (fun path ->
      let fd = connect path in
      let req = heavy ~timeout_ms:0 ~id:"t0" () in
      send_line fd (Request.to_json req);
      let body = recv_line fd in
      Unix.close fd;
      check_str "timeout_ms=0 is the deterministic typed timeout"
        (Response.to_json (Response.Timeout { id = "t0"; timeout_ms = 0 }))
        body)

let test_timeout_and_backpressure () =
  let options =
    { Serve.default_options with Serve.jobs = Some 1; max_queue = 1 }
  in
  with_server ~options (fun path ->
      (* A occupies the only in-flight slot; its deadline fires mid-
         compute and answers with the typed timeout long before the
         worker finishes. *)
      let fd_a = connect path in
      send_line fd_a (Request.to_json (heavy ~timeout_ms:150 ~id:"slow" ()));
      Thread.delay 0.05;
      (* B arrives while the slot is taken: typed overloaded, immediately. *)
      let fd_b = connect path in
      send_line fd_b (Request.to_json (light ~id:"b" ~store:(fresh_path "s") 17));
      let body_b = recv_line fd_b in
      Unix.close fd_b;
      check_str "queue full answers overloaded"
        (Response.to_json
           (Response.Overloaded
              {
                id = "b";
                retry_after_ms = Serve.default_options.Serve.retry_after_ms;
              }))
        body_b;
      let body_a = recv_line fd_a in
      Unix.close fd_a;
      check_str "deadline mid-compute answers the typed timeout"
        (Response.to_json (Response.Timeout { id = "slow"; timeout_ms = 150 }))
        body_a)

let test_batching () =
  let options =
    { Serve.default_options with Serve.jobs = Some 1; max_queue = 4 }
  in
  Obs.set_enabled true;
  Obs.reset ();
  Fun.protect
    ~finally:(fun () ->
      ignore (Obs.drain ());
      Obs.set_enabled false)
    (fun () ->
      with_server ~options (fun path ->
          (* Hold the single worker so the twins are provably in flight
             together when the second arrives. *)
          let fd_hold = connect path in
          send_line fd_hold (Request.to_json (heavy ~id:"hold" ()));
          Thread.delay 0.05;
          let store = fresh_path "serve-batch-store" in
          let twin fd =
            send_line fd (Request.to_json (light ~id:"twin" ~store 18))
          in
          let fd1 = connect path and fd2 = connect path in
          twin fd1;
          Thread.delay 0.05;
          twin fd2;
          let b1 = recv_line fd1 and b2 = recv_line fd2 in
          Unix.close fd1;
          Unix.close fd2;
          check_str "both twins get identical bytes" b1 b2;
          check "twins were answered ok" true (contains b1 "\"status\":\"ok\"");
          ignore (recv_line fd_hold);
          Unix.close fd_hold);
      let s = Summary.of_events (Obs.drain ()) in
      let counter name =
        match List.assoc_opt name s.Summary.counters with
        | Some v -> v
        | None -> 0
      in
      check "identical in-flight twins batched" true (counter "serve.batched" >= 1);
      check "requests counted" true (counter "serve.requests" >= 3);
      check "completions counted" true (counter "serve.ok" >= 2))

let test_drain_answers_inflight () =
  let path = fresh_path "serve-sock" in
  let t = Serve.create (Serve.Socket path) in
  let th = Thread.create Serve.run t in
  let fd = connect path in
  send_line fd (Request.to_json (heavy ~id:"drain" ()));
  Thread.delay 0.1;
  (* Stop while the request computes: the server must answer it before
     run returns. *)
  Serve.stop t;
  let body = recv_line fd in
  Unix.close fd;
  Thread.join th;
  (try Unix.unlink path with _ -> ());
  check "draining server still answered the in-flight request" true
    (contains body "\"status\":\"ok\"" && contains body "\"id\":\"drain\"")

(* Several requests in one write: the framing layer splits them in a
   single scan and every one is answered (responses matched by id —
   arrival order is not guaranteed). *)
let test_pipelined_lines () =
  let store = fresh_path "serve-pipe-store" in
  with_server (fun path ->
      let fd = connect path in
      let reqs =
        List.init 3 (fun i -> light ~id:(Printf.sprintf "p-%d" i) ~store (16 + i))
      in
      send_line fd (String.concat "\n" (List.map Request.to_json reqs));
      let bodies = List.map (fun _ -> recv_line fd) reqs in
      Unix.close fd;
      List.iter
        (fun (r : Request.t) ->
          check
            (Printf.sprintf "pipelined %s answered ok" r.Request.id)
            true
            (List.exists
               (fun b ->
                 contains b (Printf.sprintf "\"id\":%S" r.Request.id)
                 && contains b "\"status\":\"ok\"")
               bodies))
        reqs)

let test_wire_malformed () =
  with_server (fun path ->
      let fd = connect path in
      send_line fd "{\"nope\":";
      let body = recv_line fd in
      check "malformed line gets an error envelope" true
        (contains body "\"status\":\"error\"" && contains body "\"id\":\"\"");
      (* The connection survives a bad line; a good request still runs. *)
      send_line fd
        (Request.to_json (light ~id:"after" ~store:(fresh_path "s") 16));
      let body2 = recv_line fd in
      Unix.close fd;
      check "connection usable after rejection" true
        (contains body2 "\"status\":\"ok\"" && contains body2 "\"id\":\"after\""))

let suite =
  [
    ("request: canonical round trip", `Quick, test_roundtrip);
    ("request: fingerprint neutralizes serve-side fields", `Quick, test_fingerprint);
    ("request: unknown field has line:col", `Quick, test_unknown_field);
    ("request: malformed documents rejected", `Quick, test_malformed_rejection);
    ("request: reader survives seed-stream fuzz", `Quick, test_fuzz_reader);
    ("driver: error format is stable", `Quick, test_error_format);
    ("driver: sample rate is per-request, never sticky", `Slow, test_rate_isolation);
    ( "serve: concurrent clients = direct bytes, cold and warm",
      `Slow,
      test_concurrent_identity );
    ("serve: timeout_ms=0 answers typed timeout", `Quick, test_typed_timeout_immediate);
    ( "serve: deadline and queue bound answer typed responses",
      `Slow,
      test_timeout_and_backpressure );
    ("serve: identical in-flight requests batched", `Slow, test_batching);
    ("serve: drain answers in-flight work", `Slow, test_drain_answers_inflight);
    ("serve: pipelined lines all answered", `Slow, test_pipelined_lines);
    ("serve: malformed line rejected, connection survives", `Quick, test_wire_malformed);
  ]
