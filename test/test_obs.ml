(* Tests for Locality_obs and its consumers: determinism of the merged
   event stream across pool sizes, span behaviour under exceptions, the
   null sink, summary aggregation, the explain decision log (one record
   per Compound nest_stat), and Chrome trace-event JSON well-formedness
   (checked with a small standalone JSON parser). *)

open Locality_ir
module Obs = Locality_obs.Obs
module Event = Locality_obs.Event
module Summary = Locality_obs.Summary
module Hist = Locality_obs.Hist
module Openmetrics = Locality_obs.Openmetrics
module Flame = Locality_obs.Flame
module Chrome = Locality_obs.Chrome
module Pool = Locality_par.Pool
module Compound = Locality_core.Compound
module Stats = Locality_stats
module Suite = Locality_suite

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------- minimal JSON ---- *)

(* A strict RFC-8259 validator, so the Chrome export is checked without
   depending on a JSON library. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos >= n then fail () else s.[!pos] in
  let advance () = incr pos in
  let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let skip_ws () =
    while !pos < n && is_ws s.[!pos] do
      advance ()
    done
  in
  let is_digit c = c >= '0' && c <= '9' in
  let lit w = String.iter (fun c -> if peek () <> c then fail () else advance ()) w in
  let digits () =
    if not (is_digit (peek ())) then fail ();
    while !pos < n && is_digit s.[!pos] do
      advance ()
    done
  in
  let number () =
    if peek () = '-' then advance ();
    digits ();
    if !pos < n && s.[!pos] = '.' then begin
      advance ();
      digits ()
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      advance ();
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then advance ();
      digits ()
    end
  in
  let string_lit () =
    if peek () <> '"' then fail ();
    advance ();
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> advance ()
        | 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
            | _ -> fail ()
          done
        | _ -> fail ());
        go ()
      | c when Char.code c < 0x20 -> fail ()
      | _ ->
        advance ();
        go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_lit ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> fail ()
  and obj () =
    advance ();
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        if peek () <> ':' then fail ();
        advance ();
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
          advance ();
          members ()
        | '}' -> advance ()
        | _ -> fail ()
      in
      members ()
  and arr () =
    advance ();
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
          advance ();
          elems ()
        | ']' -> advance ()
        | _ -> fail ()
      in
      elems ()
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | ok -> ok
  | exception Exit -> false

let test_json_validator () =
  checkb "object" true (json_valid {|{"a":[1,2.5e-3],"b":"x\n","c":null}|});
  checkb "trailing junk" false (json_valid "{} x");
  checkb "bad escape" false (json_valid {|{"a":"\q"}|});
  checkb "raw newline in string" false (json_valid "\"a\nb\"")

(* -------------------------------------------- pool determinism ----- *)

let dummy_decision i =
  {
    Event.nest = Printf.sprintf "nest%d" i;
    labels = [ "S1" ];
    depth = 2;
    action = Event.Permute;
    reason = "test";
    original_order = [ "I"; "J" ];
    achieved_orders = [ [ "J"; "I" ] ];
    memory_order = [ "J"; "I" ];
    costs = [ ("J", "N^2"); ("I", "N") ];
  }

let pool_workload i =
  Obs.span
    (Printf.sprintf "item%d" i)
    ~args:[ ("i", string_of_int i) ]
    (fun () ->
      Obs.instant "note" ~args:[ ("sq", string_of_int (i * i)) ];
      Obs.counter "work" (i + 1);
      Obs.histogram "work.size" (i * 7);
      Obs.gauge "work.level" (float_of_int i /. 3.0);
      if i mod 2 = 0 then Obs.decision (dummy_decision i);
      i * i)

let stream_at_jobs jobs =
  let res, events =
    Obs.collect (fun () -> Pool.map ~jobs pool_workload (List.init 8 Fun.id))
  in
  (res, List.map Event.fingerprint events)

let test_pool_merge_deterministic () =
  let r1, f1 = stream_at_jobs 1 in
  let r4, f4 = stream_at_jobs 4 in
  checkb "results equal" true (r1 = r4);
  checki "events at jobs=1" (List.length f1) (List.length f4);
  checkb "some events recorded" true (List.length f1 >= 8 * 3);
  List.iteri
    (fun i (a, b) -> checks (Printf.sprintf "fingerprint %d" i) a b)
    (List.combine f1 f4)

let test_span_exception_propagates () =
  let saw, events =
    Obs.collect (fun () ->
        match Obs.span "boom" (fun () -> failwith "inner") with
        | () -> false
        | exception Failure msg -> msg = "inner")
  in
  checkb "exception propagated" true saw;
  let spans =
    List.filter
      (fun (e : Event.t) ->
        match e.Event.payload with
        | Event.Span { name; _ } -> name = "boom"
        | _ -> false)
      events
  in
  checki "raising span still recorded" 1 (List.length spans)

let test_disabled_records_nothing () =
  checkb "disabled by default" false (Obs.enabled ());
  Obs.reset ();
  Obs.span "s" (fun () ->
      Obs.instant "i";
      Obs.counter "c" 1);
  checki "no events when disabled" 0 (List.length (Obs.drain ()))

let test_summary_aggregation () =
  let (), events =
    Obs.collect (fun () ->
        Obs.counter "c" 1;
        Obs.counter "c" 2;
        Obs.counter "c" 3;
        Obs.span "s" (fun () -> ());
        Obs.span "s" (fun () -> ()))
  in
  let s = Summary.of_events events in
  checkb "counter summed" true (List.assoc "c" s.Summary.counters = 6);
  checki "event total counted in the same pass" (List.length events)
    s.Summary.events;
  match s.Summary.spans with
  | [ row ] ->
    checks "span name" "s" row.Summary.name;
    checki "span count" 2 row.Summary.count;
    checkb "min <= max" true (Int64.compare row.Summary.min_ns row.Summary.max_ns <= 0)
  | rows -> Alcotest.failf "expected one span row, got %d" (List.length rows)

(* --------------------------------------------- histograms/gauges --- *)

let test_hist_bucket_math () =
  (* Bucket 0 holds v <= 0; bucket i holds 2^(i-1) <= v <= 2^i - 1. *)
  checki "bucket of -5" 0 (Hist.bucket_of (-5));
  checki "bucket of 0" 0 (Hist.bucket_of 0);
  checki "bucket of 1" 1 (Hist.bucket_of 1);
  checki "bucket of 2" 2 (Hist.bucket_of 2);
  checki "bucket of 3" 2 (Hist.bucket_of 3);
  checki "bucket of 4" 3 (Hist.bucket_of 4);
  checki "bucket of 1023" 10 (Hist.bucket_of 1023);
  checki "bucket of 1024" 11 (Hist.bucket_of 1024);
  checki "bucket of max_int" 62 (Hist.bucket_of max_int);
  (* Upper bounds line up with the bucket boundaries. *)
  checki "le of bucket 0" 0 (Hist.bucket_le 0);
  checki "le of bucket 10" 1023 (Hist.bucket_le 10);
  checki "le of last bucket" max_int (Hist.bucket_le 62);
  List.iter
    (fun v ->
      let b = Hist.bucket_of v in
      checkb
        (Printf.sprintf "v=%d within its bucket's bound" v)
        true
        (v <= Hist.bucket_le b && (b = 0 || v > Hist.bucket_le (b - 1))))
    [ 1; 2; 7; 8; 100; 4095; 4096; 123_456_789; max_int ]

let test_hist_observe_merge () =
  let a = Hist.create () and b = Hist.create () in
  List.iter (Hist.observe a) [ 1; 5; 5; 100 ];
  List.iter (Hist.observe b) [ 0; 7; 1000 ];
  let m = Hist.merge a b in
  checki "merged count" 7 m.Hist.count;
  checki "merged sum" (1 + 5 + 5 + 100 + 0 + 7 + 1000) m.Hist.sum;
  checki "merged min" 0 m.Hist.min;
  checki "merged max" 1000 m.Hist.max;
  checkb "merge commutes" true (Hist.equal m (Hist.merge b a));
  (* Cumulative counts are monotone and end at the total. *)
  let cum = Hist.cumulative m in
  checkb "cumulative monotone" true
    (fst
       (List.fold_left
          (fun (ok, prev) (_, c) -> (ok && c >= prev, c))
          (true, 0) cum));
  checki "cumulative ends at count" m.Hist.count (snd (List.nth cum (List.length cum - 1)));
  (* Median of [1;5;5;100] U [0;7;1000] = 5: p50 lands in 5's bucket. *)
  checkb "p50 bucket covers the median" true (Hist.quantile m 0.5 >= 5);
  checki "p100 clamps to max" 1000 (Hist.quantile m 1.0)

let test_summary_hist_gauge () =
  let (), events =
    Obs.collect (fun () ->
        Obs.histogram "h" 3;
        Obs.histogram "h" 300;
        Obs.gauge "g" 1.5;
        Obs.gauge "g" 2.5)
  in
  let s = Summary.of_events events in
  (match s.Summary.histograms with
  | [ (name, h) ] ->
    checks "histogram name" "h" name;
    checki "observations" 2 h.Hist.count;
    checki "sum" 303 h.Hist.sum
  | l -> Alcotest.failf "expected one histogram, got %d" (List.length l));
  match s.Summary.gauges with
  | [ ("g", v) ] -> checkb "last write wins" true (v = 2.5)
  | l -> Alcotest.failf "expected one gauge, got %d" (List.length l)

(* Histogram/gauge aggregates must merge identically across pool sizes,
   on top of the fingerprint equality already checked above. *)
let test_hist_gauge_pool_deterministic () =
  let summary_at jobs =
    let _, events =
      Obs.collect (fun () -> Pool.map ~jobs pool_workload (List.init 8 Fun.id))
    in
    Summary.of_events events
  in
  let s1 = summary_at 1 and s4 = summary_at 4 in
  (match (s1.Summary.histograms, s4.Summary.histograms) with
  | [ (n1, h1) ], [ (n4, h4) ] ->
    checks "histogram name equal" n1 n4;
    checkb "histogram buckets equal" true (Hist.equal h1 h4)
  | _ -> Alcotest.fail "expected one histogram at both job counts");
  checkb "gauges equal" true (s1.Summary.gauges = s4.Summary.gauges)

(* ------------------------------------------------ self time ------- *)

let test_span_self_time_and_stack () =
  let (), events =
    Obs.collect (fun () ->
        Obs.span "outer" (fun () ->
            Obs.span "inner" (fun () -> Sys.opaque_identity (ref 0) |> ignore)))
  in
  let find name =
    List.find_map
      (fun (e : Event.t) ->
        match e.Event.payload with
        | Event.Span s when s.name = name ->
          Some (s.dur_ns, s.self_ns, s.stack)
        | _ -> None)
      events
  in
  match (find "outer", find "inner") with
  | Some (o_dur, o_self, o_stack), Some (i_dur, i_self, i_stack) ->
    let expect =
      let d = Int64.sub o_dur i_dur in
      if Int64.compare d 0L < 0 then 0L else d
    in
    checkb "outer self = dur - child (clamped)" true (o_self = expect);
    checkb "outer self >= 0" true (Int64.compare o_self 0L >= 0);
    checkb "inner self = its dur" true (i_self = i_dur);
    checkb "outer stack empty" true (o_stack = []);
    checkb "inner stack is [outer]" true (i_stack = [ "outer" ])
  | _ -> Alcotest.fail "spans missing"

(* ------------------------------------------------- exporters ------- *)

let sample_summary () =
  let (), events =
    Obs.collect (fun () ->
        Obs.span "phase.a" (fun () -> Obs.span "phase.b" (fun () -> ()));
        Obs.counter "c.total" 5;
        Obs.histogram "h.sizes" 9;
        Obs.histogram "h.sizes" 1000;
        Obs.gauge "g.rate" 0.75)
  in
  (events, Summary.of_events events)

let contains hay needle =
  let n = String.length needle and m = String.length hay in
  let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
  go 0

let test_openmetrics_text () =
  let _, s = sample_summary () in
  let text = Openmetrics.to_text s in
  let lines = String.split_on_char '\n' (String.trim text) in
  checks "terminated by # EOF" "# EOF" (List.nth lines (List.length lines - 1));
  (* Sanitized names: dots become underscores under the memoria_ prefix. *)
  checkb "counter line" true (contains text "memoria_c_total_total 5");
  checkb "gauge line" true (contains text "memoria_g_rate 0.75");
  (* 9 falls in the (8..15] bucket, 1000 in (512..1023]. *)
  checkb "bucket le=15" true
    (contains text "memoria_h_sizes_bucket{le=\"15\"} 1");
  checkb "bucket le=1023" true
    (contains text "memoria_h_sizes_bucket{le=\"1023\"} 2");
  checkb "+Inf bucket" true
    (contains text "memoria_h_sizes_bucket{le=\"+Inf\"} 2");
  checkb "hist sum" true (contains text "memoria_h_sizes_sum 1009");
  checkb "hist count" true (contains text "memoria_h_sizes_count 2");
  checkb "span family labelled" true
    (contains text "memoria_span_count_total{span=\"phase.a\"} 1");
  (* Every metric family is TYPE-declared before its samples. *)
  let rec check_types declared = function
    | [] -> ()
    | line :: rest ->
      if line = "" || line = "# EOF" then check_types declared rest
      else if String.length line > 7 && String.sub line 0 7 = "# TYPE " then
        let after = String.sub line 7 (String.length line - 7) in
        let fam =
          match String.index_opt after ' ' with
          | Some i -> String.sub after 0 i
          | None -> after
        in
        check_types (fam :: declared) rest
      else begin
        checkb
          (Printf.sprintf "sample %S under a declared family" line)
          true
          (List.exists
             (fun fam ->
               String.length line >= String.length fam
               && String.sub line 0 (String.length fam) = fam)
             declared);
        check_types declared rest
      end
  in
  check_types [] lines

let test_openmetrics_json () =
  let _, s = sample_summary () in
  let doc = Openmetrics.to_json s in
  checkb "metrics JSON parses" true (json_valid doc);
  checkb "schema versioned" true (contains doc "\"schema_version\"");
  checkb "histogram buckets present" true (contains doc "\"le\":15")

let test_flame_collapsed () =
  let events, _ = sample_summary () in
  let out = Flame.to_string events in
  let lines = String.split_on_char '\n' (String.trim out) in
  checki "two stacks" 2 (List.length lines);
  checkb "nested stack present" true
    (List.exists
       (fun l ->
         String.length l > 15 && String.sub l 0 15 = "phase.a;phase.b")
       lines);
  (* Lexicographic order: "phase.a " before "phase.a;phase.b ". *)
  match lines with
  | [ a; b ] -> checkb "sorted" true (String.compare a b < 0)
  | _ -> Alcotest.fail "unexpected line count"

(* ------------------------------------------------ explain log ------ *)

let explain_of_kernel ?(n = 16) name =
  match List.assoc_opt name Suite.Kernels.all with
  | Some mk -> Stats.Explain.run ~name (mk n)
  | None -> Alcotest.failf "kernel %s missing" name

let decision_count_matches name =
  let ex = explain_of_kernel name in
  checki
    (Printf.sprintf "%s: one decision per nest_stat" name)
    (List.length (Stats.Explain.stats ex).Compound.nests)
    (List.length (Stats.Explain.entries ex))

let test_explain_counts_all_kernels () =
  List.iter (fun (name, _) -> decision_count_matches name) Suite.Kernels.all

let entry_actions ex =
  List.map
    (fun (e : Stats.Explain.entry) -> e.Stats.Explain.decision.Event.action)
    (Stats.Explain.entries ex)

let test_explain_distribution_case () =
  let ex = explain_of_kernel "cholesky" in
  checkb "cholesky entry distributes" true
    (List.mem Event.Distribute (entry_actions ex));
  let s = Stats.Explain.stats ex in
  checkb "stats agree a distribution happened" true
    (s.Compound.distributions >= 1)

(* The stencil whose interchange is enabled only by reversing J (same
   program as the Permute unit test). No built-in kernel needs a
   reversal, so the case is built directly. *)
let reversal_program () =
  let open Builder in
  let nn = v "N" in
  program "stencil"
    ~params:[ ("N", 16) ]
    ~arrays:[ ("A", [ nn; nn ]) ]
    [
      do_ "I" (i 2) nn
        [
          do_ "J" (i 1) (nn -$ i 1)
            [
              asn (r "A" [ v "I"; v "J" ])
                (ld "A" [ v "I" -$ i 1; v "J" +$ i 1 ] +! f 1.0);
            ];
        ];
    ]

let test_explain_reversal_case () =
  let ex = Stats.Explain.run ~name:"stencil" (reversal_program ()) in
  checki "one nest" 1 (List.length (Stats.Explain.entries ex));
  match Stats.Explain.entries ex with
  | [ { Stats.Explain.decision = d; _ } ] ->
    checkb "action is reverse" true (d.Event.action = Event.Reverse);
    checks "achieved order" "J,I"
      (String.concat ","
         (match d.Event.achieved_orders with o :: _ -> o | [] -> []))
  | _ -> assert false

let test_explain_deterministic () =
  (* The same program must explain identically run-to-run (each [mk]
     call mints fresh statement labels, so build the program once). *)
  List.iter
    (fun name ->
      let p = (List.assoc name Suite.Kernels.all) 16 in
      let ex1 = Stats.Explain.run ~name p in
      let ex2 = Stats.Explain.run ~name p in
      checks (name ^ " render repeatable") (Stats.Explain.render ex1)
        (Stats.Explain.render ex2);
      checks (name ^ " json repeatable") (Stats.Explain.to_json ex1)
        (Stats.Explain.to_json ex2))
    [ "matmul"; "cholesky"; "erlebacher_dist" ]

let test_explain_json_valid () =
  List.iter
    (fun name ->
      checkb (name ^ " json parses") true
        (json_valid (Stats.Explain.to_json (explain_of_kernel name))))
    [ "matmul"; "cholesky"; "btrix" ]

(* --------------------------------------------- chrome exporter ----- *)

let test_chrome_json_valid () =
  let ex = explain_of_kernel "cholesky" in
  let (), extra =
    Obs.collect (fun () ->
        (* Args with every character class the escaper must handle. *)
        Obs.span "weird\"name\\" ~args:[ ("k\n", "v\t\"quoted\"") ] (fun () ->
            Obs.counter "c" 2);
        Obs.instant "i" ~args:[ ("ctl", String.make 1 (Char.chr 1)) ])
  in
  let doc = Chrome.to_string (Stats.Explain.events ex @ extra) in
  checkb "chrome document parses" true (json_valid doc);
  checkb "empty stream parses" true (json_valid (Chrome.to_string []))

(* ------------------------------------------ measurement purity ----- *)

let test_obs_does_not_change_measurements () =
  let mk = List.assoc "matmul" Suite.Kernels.all in
  let p = mk 24 in
  let quiet = Locality_interp.Measure.measure p in
  let traced, _events =
    Obs.collect (fun () -> Locality_interp.Measure.measure p)
  in
  let open Locality_interp.Measure in
  checkb "same modelled seconds" true (quiet.seconds = traced.seconds);
  checki "same accesses" quiet.whole.accesses traced.whole.accesses;
  checki "same hits" quiet.whole.hits traced.whole.hits;
  checki "same cold misses" quiet.whole.cold traced.whole.cold

let suite =
  [
    ("json validator sanity", `Quick, test_json_validator);
    ("pool merge deterministic across jobs", `Quick, test_pool_merge_deterministic);
    ("span closed by exception", `Quick, test_span_exception_propagates);
    ("disabled sink records nothing", `Quick, test_disabled_records_nothing);
    ("summary aggregation", `Quick, test_summary_aggregation);
    ("histogram bucket math", `Quick, test_hist_bucket_math);
    ("histogram observe and merge", `Quick, test_hist_observe_merge);
    ("summary histograms and gauges", `Quick, test_summary_hist_gauge);
    ("histograms/gauges deterministic across jobs", `Quick, test_hist_gauge_pool_deterministic);
    ("span self time and stack", `Quick, test_span_self_time_and_stack);
    ("openmetrics text export", `Quick, test_openmetrics_text);
    ("openmetrics json export", `Quick, test_openmetrics_json);
    ("flame collapsed stacks", `Quick, test_flame_collapsed);
    ("explain: decision per nest_stat, all kernels", `Quick, test_explain_counts_all_kernels);
    ("explain: distribution case", `Quick, test_explain_distribution_case);
    ("explain: reversal case", `Quick, test_explain_reversal_case);
    ("explain: deterministic output", `Quick, test_explain_deterministic);
    ("explain: JSON parses", `Quick, test_explain_json_valid);
    ("chrome trace JSON parses", `Quick, test_chrome_json_valid);
    ("tracing does not change measurements", `Quick, test_obs_does_not_change_measurements);
  ]
