(* Tests for Locality_obs and its consumers: determinism of the merged
   event stream across pool sizes, span behaviour under exceptions, the
   null sink, summary aggregation, the explain decision log (one record
   per Compound nest_stat), and Chrome trace-event JSON well-formedness
   (checked with a small standalone JSON parser). *)

open Locality_ir
module Obs = Locality_obs.Obs
module Event = Locality_obs.Event
module Summary = Locality_obs.Summary
module Chrome = Locality_obs.Chrome
module Pool = Locality_par.Pool
module Compound = Locality_core.Compound
module Stats = Locality_stats
module Suite = Locality_suite

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------- minimal JSON ---- *)

(* A strict RFC-8259 validator, so the Chrome export is checked without
   depending on a JSON library. *)
let json_valid s =
  let n = String.length s in
  let pos = ref 0 in
  let fail () = raise Exit in
  let peek () = if !pos >= n then fail () else s.[!pos] in
  let advance () = incr pos in
  let is_ws c = c = ' ' || c = '\t' || c = '\n' || c = '\r' in
  let skip_ws () =
    while !pos < n && is_ws s.[!pos] do
      advance ()
    done
  in
  let is_digit c = c >= '0' && c <= '9' in
  let lit w = String.iter (fun c -> if peek () <> c then fail () else advance ()) w in
  let digits () =
    if not (is_digit (peek ())) then fail ();
    while !pos < n && is_digit s.[!pos] do
      advance ()
    done
  in
  let number () =
    if peek () = '-' then advance ();
    digits ();
    if !pos < n && s.[!pos] = '.' then begin
      advance ();
      digits ()
    end;
    if !pos < n && (s.[!pos] = 'e' || s.[!pos] = 'E') then begin
      advance ();
      if !pos < n && (s.[!pos] = '+' || s.[!pos] = '-') then advance ();
      digits ()
    end
  in
  let string_lit () =
    if peek () <> '"' then fail ();
    advance ();
    let rec go () =
      match peek () with
      | '"' -> advance ()
      | '\\' ->
        advance ();
        (match peek () with
        | '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' -> advance ()
        | 'u' ->
          advance ();
          for _ = 1 to 4 do
            match peek () with
            | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> advance ()
            | _ -> fail ()
          done
        | _ -> fail ());
        go ()
      | c when Char.code c < 0x20 -> fail ()
      | _ ->
        advance ();
        go ()
    in
    go ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | '{' -> obj ()
    | '[' -> arr ()
    | '"' -> string_lit ()
    | 't' -> lit "true"
    | 'f' -> lit "false"
    | 'n' -> lit "null"
    | '-' | '0' .. '9' -> number ()
    | _ -> fail ()
  and obj () =
    advance ();
    skip_ws ();
    if peek () = '}' then advance ()
    else
      let rec members () =
        skip_ws ();
        string_lit ();
        skip_ws ();
        if peek () <> ':' then fail ();
        advance ();
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
          advance ();
          members ()
        | '}' -> advance ()
        | _ -> fail ()
      in
      members ()
  and arr () =
    advance ();
    skip_ws ();
    if peek () = ']' then advance ()
    else
      let rec elems () =
        value ();
        skip_ws ();
        match peek () with
        | ',' ->
          advance ();
          elems ()
        | ']' -> advance ()
        | _ -> fail ()
      in
      elems ()
  in
  match
    value ();
    skip_ws ();
    !pos = n
  with
  | ok -> ok
  | exception Exit -> false

let test_json_validator () =
  checkb "object" true (json_valid {|{"a":[1,2.5e-3],"b":"x\n","c":null}|});
  checkb "trailing junk" false (json_valid "{} x");
  checkb "bad escape" false (json_valid {|{"a":"\q"}|});
  checkb "raw newline in string" false (json_valid "\"a\nb\"")

(* -------------------------------------------- pool determinism ----- *)

let dummy_decision i =
  {
    Event.nest = Printf.sprintf "nest%d" i;
    labels = [ "S1" ];
    depth = 2;
    action = Event.Permute;
    reason = "test";
    original_order = [ "I"; "J" ];
    achieved_orders = [ [ "J"; "I" ] ];
    memory_order = [ "J"; "I" ];
    costs = [ ("J", "N^2"); ("I", "N") ];
  }

let pool_workload i =
  Obs.span
    (Printf.sprintf "item%d" i)
    ~args:[ ("i", string_of_int i) ]
    (fun () ->
      Obs.instant "note" ~args:[ ("sq", string_of_int (i * i)) ];
      Obs.counter "work" (i + 1);
      if i mod 2 = 0 then Obs.decision (dummy_decision i);
      i * i)

let stream_at_jobs jobs =
  let res, events =
    Obs.collect (fun () -> Pool.map ~jobs pool_workload (List.init 8 Fun.id))
  in
  (res, List.map Event.fingerprint events)

let test_pool_merge_deterministic () =
  let r1, f1 = stream_at_jobs 1 in
  let r4, f4 = stream_at_jobs 4 in
  checkb "results equal" true (r1 = r4);
  checki "events at jobs=1" (List.length f1) (List.length f4);
  checkb "some events recorded" true (List.length f1 >= 8 * 3);
  List.iteri
    (fun i (a, b) -> checks (Printf.sprintf "fingerprint %d" i) a b)
    (List.combine f1 f4)

let test_span_exception_propagates () =
  let saw, events =
    Obs.collect (fun () ->
        match Obs.span "boom" (fun () -> failwith "inner") with
        | () -> false
        | exception Failure msg -> msg = "inner")
  in
  checkb "exception propagated" true saw;
  let spans =
    List.filter
      (fun (e : Event.t) ->
        match e.Event.payload with
        | Event.Span { name; _ } -> name = "boom"
        | _ -> false)
      events
  in
  checki "raising span still recorded" 1 (List.length spans)

let test_disabled_records_nothing () =
  checkb "disabled by default" false (Obs.enabled ());
  Obs.reset ();
  Obs.span "s" (fun () ->
      Obs.instant "i";
      Obs.counter "c" 1);
  checki "no events when disabled" 0 (List.length (Obs.drain ()))

let test_summary_aggregation () =
  let (), events =
    Obs.collect (fun () ->
        Obs.counter "c" 1;
        Obs.counter "c" 2;
        Obs.counter "c" 3;
        Obs.span "s" (fun () -> ());
        Obs.span "s" (fun () -> ()))
  in
  let s = Summary.of_events events in
  checkb "counter summed" true (List.assoc "c" s.Summary.counters = 6);
  match s.Summary.spans with
  | [ row ] ->
    checks "span name" "s" row.Summary.name;
    checki "span count" 2 row.Summary.count
  | rows -> Alcotest.failf "expected one span row, got %d" (List.length rows)

(* ------------------------------------------------ explain log ------ *)

let explain_of_kernel ?(n = 16) name =
  match List.assoc_opt name Suite.Kernels.all with
  | Some mk -> Stats.Explain.run ~name (mk n)
  | None -> Alcotest.failf "kernel %s missing" name

let decision_count_matches name =
  let ex = explain_of_kernel name in
  checki
    (Printf.sprintf "%s: one decision per nest_stat" name)
    (List.length (Stats.Explain.stats ex).Compound.nests)
    (List.length (Stats.Explain.entries ex))

let test_explain_counts_all_kernels () =
  List.iter (fun (name, _) -> decision_count_matches name) Suite.Kernels.all

let entry_actions ex =
  List.map
    (fun (e : Stats.Explain.entry) -> e.Stats.Explain.decision.Event.action)
    (Stats.Explain.entries ex)

let test_explain_distribution_case () =
  let ex = explain_of_kernel "cholesky" in
  checkb "cholesky entry distributes" true
    (List.mem Event.Distribute (entry_actions ex));
  let s = Stats.Explain.stats ex in
  checkb "stats agree a distribution happened" true
    (s.Compound.distributions >= 1)

(* The stencil whose interchange is enabled only by reversing J (same
   program as the Permute unit test). No built-in kernel needs a
   reversal, so the case is built directly. *)
let reversal_program () =
  let open Builder in
  let nn = v "N" in
  program "stencil"
    ~params:[ ("N", 16) ]
    ~arrays:[ ("A", [ nn; nn ]) ]
    [
      do_ "I" (i 2) nn
        [
          do_ "J" (i 1) (nn -$ i 1)
            [
              asn (r "A" [ v "I"; v "J" ])
                (ld "A" [ v "I" -$ i 1; v "J" +$ i 1 ] +! f 1.0);
            ];
        ];
    ]

let test_explain_reversal_case () =
  let ex = Stats.Explain.run ~name:"stencil" (reversal_program ()) in
  checki "one nest" 1 (List.length (Stats.Explain.entries ex));
  match Stats.Explain.entries ex with
  | [ { Stats.Explain.decision = d; _ } ] ->
    checkb "action is reverse" true (d.Event.action = Event.Reverse);
    checks "achieved order" "J,I"
      (String.concat ","
         (match d.Event.achieved_orders with o :: _ -> o | [] -> []))
  | _ -> assert false

let test_explain_deterministic () =
  (* The same program must explain identically run-to-run (each [mk]
     call mints fresh statement labels, so build the program once). *)
  List.iter
    (fun name ->
      let p = (List.assoc name Suite.Kernels.all) 16 in
      let ex1 = Stats.Explain.run ~name p in
      let ex2 = Stats.Explain.run ~name p in
      checks (name ^ " render repeatable") (Stats.Explain.render ex1)
        (Stats.Explain.render ex2);
      checks (name ^ " json repeatable") (Stats.Explain.to_json ex1)
        (Stats.Explain.to_json ex2))
    [ "matmul"; "cholesky"; "erlebacher_dist" ]

let test_explain_json_valid () =
  List.iter
    (fun name ->
      checkb (name ^ " json parses") true
        (json_valid (Stats.Explain.to_json (explain_of_kernel name))))
    [ "matmul"; "cholesky"; "btrix" ]

(* --------------------------------------------- chrome exporter ----- *)

let test_chrome_json_valid () =
  let ex = explain_of_kernel "cholesky" in
  let (), extra =
    Obs.collect (fun () ->
        (* Args with every character class the escaper must handle. *)
        Obs.span "weird\"name\\" ~args:[ ("k\n", "v\t\"quoted\"") ] (fun () ->
            Obs.counter "c" 2);
        Obs.instant "i" ~args:[ ("ctl", String.make 1 (Char.chr 1)) ])
  in
  let doc = Chrome.to_string (Stats.Explain.events ex @ extra) in
  checkb "chrome document parses" true (json_valid doc);
  checkb "empty stream parses" true (json_valid (Chrome.to_string []))

(* ------------------------------------------ measurement purity ----- *)

let test_obs_does_not_change_measurements () =
  let mk = List.assoc "matmul" Suite.Kernels.all in
  let p = mk 24 in
  let quiet = Locality_interp.Measure.measure p in
  let traced, _events =
    Obs.collect (fun () -> Locality_interp.Measure.measure p)
  in
  let open Locality_interp.Measure in
  checkb "same modelled seconds" true (quiet.seconds = traced.seconds);
  checki "same accesses" quiet.whole.accesses traced.whole.accesses;
  checki "same hits" quiet.whole.hits traced.whole.hits;
  checki "same cold misses" quiet.whole.cold traced.whole.cold

let suite =
  [
    ("json validator sanity", `Quick, test_json_validator);
    ("pool merge deterministic across jobs", `Quick, test_pool_merge_deterministic);
    ("span closed by exception", `Quick, test_span_exception_propagates);
    ("disabled sink records nothing", `Quick, test_disabled_records_nothing);
    ("summary aggregation", `Quick, test_summary_aggregation);
    ("explain: decision per nest_stat, all kernels", `Quick, test_explain_counts_all_kernels);
    ("explain: distribution case", `Quick, test_explain_distribution_case);
    ("explain: reversal case", `Quick, test_explain_reversal_case);
    ("explain: deterministic output", `Quick, test_explain_deterministic);
    ("explain: JSON parses", `Quick, test_explain_json_valid);
    ("chrome trace JSON parses", `Quick, test_chrome_json_valid);
    ("tracing does not change measurements", `Quick, test_obs_does_not_change_measurements);
  ]
