(* The closed-form analytic locality model, validated differentially
   against the trace-replay simulator. The contract under test:

   - every bracket the analysis reports contains the simulator's value;
   - when a unit (or the whole program) is classified exact, the
     estimate EQUALS the simulator's number, bit for bit;
   - out-of-scope programs produce a fallback verdict, never a wrong
     number. *)

open Locality_ir
module Cache = Locality_cachesim.Cache
module Machine = Locality_cachesim.Machine
module Measure = Locality_interp.Measure
module Analytic = Locality_analytic.Analytic
module Kernels = Locality_suite.Kernels
module Programs = Locality_suite.Programs
module Obs = Locality_obs.Obs

let small_assoc =
  { Cache.name = "sa4"; size_bytes = 4096; assoc = 4; line_bytes = 64 }

let tiny_dm =
  { Cache.name = "dm"; size_bytes = 1024; assoc = 1; line_bytes = 32 }

let configs = [ Machine.cache1; Machine.cache2; small_assoc; tiny_dm ]

let simulate ?params ?(optimized_labels = []) ~config p =
  let cap = Measure.capture ~mode:Measure.Runs ?params ~store:None p in
  Measure.replay ~config ~optimized_labels ~store:None cap

(* The core differential check: brackets sound always, equality when
   exactness is claimed. *)
let check_against_sim ?params ?(optimized_labels = []) ~config name p =
  match Analytic.estimate ?params ~optimized_labels ~config p with
  | Error _ -> ()
  | Ok est ->
    let sim = simulate ?params ~optimized_labels ~config p in
    let misses r = r.Measure.accesses - r.Measure.hits in
    let chk what v b =
      Alcotest.(check bool)
        (Printf.sprintf "%s on %s: %s %d in [%d,%d]" name config.Cache.name
           what v b.Analytic.lo b.Analytic.hi)
        true
        (Analytic.in_bracket v b)
    in
    chk "accesses" sim.Measure.whole.Measure.accesses est.Analytic.b_accesses;
    chk "hits" sim.Measure.whole.Measure.hits est.Analytic.b_hits;
    chk "cold" sim.Measure.whole.Measure.cold est.Analytic.b_cold;
    chk "opt accesses" sim.Measure.optimized.Measure.accesses
      est.Analytic.b_opt_accesses;
    chk "opt hits" sim.Measure.optimized.Measure.hits est.Analytic.b_opt_hits;
    chk "opt cold" sim.Measure.optimized.Measure.cold est.Analytic.b_opt_cold;
    chk "ops" sim.Measure.ops est.Analytic.b_ops;
    if est.Analytic.e_exact then begin
      let eq what a b =
        Alcotest.(check int)
          (Printf.sprintf "%s on %s: exact %s" name config.Cache.name what)
          a b
      in
      eq "accesses" sim.Measure.whole.Measure.accesses
        est.Analytic.e_whole.Analytic.c_accesses;
      eq "hits" sim.Measure.whole.Measure.hits
        est.Analytic.e_whole.Analytic.c_hits;
      eq "cold" sim.Measure.whole.Measure.cold
        est.Analytic.e_whole.Analytic.c_cold;
      eq "opt accesses" sim.Measure.optimized.Measure.accesses
        est.Analytic.e_optimized.Analytic.c_accesses;
      eq "opt hits" sim.Measure.optimized.Measure.hits
        est.Analytic.e_optimized.Analytic.c_hits;
      eq "opt cold" sim.Measure.optimized.Measure.cold
        est.Analytic.e_optimized.Analytic.c_cold;
      eq "ops" sim.Measure.ops est.Analytic.e_ops
    end;
    (* whole-program miss estimate stays inside the derivable bracket *)
    let est_miss =
      est.Analytic.e_whole.Analytic.c_accesses
      - est.Analytic.e_whole.Analytic.c_hits
    in
    let miss_lo =
      max 0 (est.Analytic.b_accesses.Analytic.lo - est.Analytic.b_hits.Analytic.hi)
    in
    let miss_hi =
      est.Analytic.b_accesses.Analytic.hi - est.Analytic.b_hits.Analytic.lo
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s on %s: miss estimate bracketed" name
         config.Cache.name)
      true
      (miss_lo <= est_miss && est_miss <= miss_hi);
    ignore (misses sim.Measure.whole)

let check_everywhere ?params ?(optimized_labels = []) name p =
  List.iter
    (fun config -> check_against_sim ?params ~optimized_labels ~config name p)
    configs

(* ------------------------------------------------- exact kernels ----- *)

(* matmul under the 64 KB cache at small n: whole footprint resident,
   no set overflows its associativity, every subscript separable — the
   analysis must claim whole-program exactness, not merely brackets. *)
let test_matmul_exact () =
  List.iter
    (fun order ->
      List.iter
        (fun n ->
          let p = Kernels.matmul ~order n in
          (match
             Analytic.estimate ~config:Machine.cache1 p
           with
          | Error e -> Alcotest.failf "matmul %s n=%d fell back: %s" order n e
          | Ok est ->
            Alcotest.(check bool)
              (Printf.sprintf "matmul %s n=%d exact" order n)
              true est.Analytic.e_exact);
          check_against_sim ~config:Machine.cache1
            (Printf.sprintf "matmul %s n=%d" order n)
            p)
        [ 8; 13; 24 ])
    Kernels.matmul_orders

let test_stencil_exact () =
  let p = Kernels.adi_fragment 16 in
  (match Analytic.estimate ~config:Machine.cache1 p with
  | Error e -> Alcotest.failf "adi fell back: %s" e
  | Ok est ->
    Alcotest.(check bool) "adi exact under big cache" true
      est.Analytic.e_exact);
  check_everywhere "adi_fragment" p

let test_transpose_exact () =
  let p = Kernels.transpose 24 in
  (match Analytic.estimate ~config:Machine.cache1 p with
  | Error e -> Alcotest.failf "transpose fell back: %s" e
  | Ok est ->
    Alcotest.(check bool) "transpose exact under big cache" true
      est.Analytic.e_exact);
  check_everywhere "transpose" p

(* Under the small caches the no-eviction certificate fails and the
   analysis must degrade to sound brackets, never claim exactness it
   cannot certify, and never report a value outside the bracket. *)
let test_small_cache_brackets () =
  List.iter
    (fun (name, p) -> check_everywhere name p)
    [
      ("matmul IJK 24", Kernels.matmul ~order:"IJK" 24);
      ("matmul JKI 24", Kernels.matmul ~order:"JKI" 24);
      ("erlebacher", Kernels.erlebacher_hand 8);
      ("gmtry", Kernels.gmtry 10);
      ("vpenta", Kernels.vpenta 8);
      ("simple_hydro", Kernels.simple_hydro 10);
    ]

(* Triangular nests: iteration counts come from the certified Faulhaber
   path (exact brackets on accesses/ops), footprints are approximate. *)
let test_triangular_access_counts () =
  List.iter
    (fun (name, p) ->
      (match Analytic.estimate ~config:Machine.cache1 p with
      | Error e -> Alcotest.failf "%s fell back: %s" name e
      | Ok est ->
        Alcotest.(check bool)
          (name ^ ": access bracket degenerate")
          true
          (est.Analytic.b_accesses.Analytic.lo
          = est.Analytic.b_accesses.Analytic.hi));
      check_everywhere name p)
    [
      ("cholesky KIJ", Kernels.cholesky ~form:`KIJ 12);
      ("cholesky KJI", Kernels.cholesky ~form:`KJI 12);
      ("lu", Kernels.lu 12);
    ]

(* ------------------------------------------------- region marking ---- *)

let test_optimized_region () =
  let p = Kernels.erlebacher_hand 8 in
  let all_labels =
    let rec stmt_labels = function
      | Loop.Stmt s -> [ s.Stmt.label ]
      | Loop.Loop l -> List.concat_map stmt_labels l.Loop.body
    in
    List.concat_map stmt_labels p.Program.body
  in
  let some = List.filteri (fun i _ -> i mod 2 = 0) all_labels in
  check_everywhere ~optimized_labels:some "erlebacher half-marked" p;
  check_everywhere ~optimized_labels:all_labels "erlebacher all-marked" p;
  check_everywhere ~optimized_labels:[] "erlebacher unmarked" p

(* ------------------------------------------------- parameters -------- *)

let test_param_overrides () =
  let p = Kernels.matmul ~order:"JKI" 10 in
  List.iter
    (fun n ->
      check_against_sim
        ~params:[ ("N", n) ]
        ~config:Machine.cache2
        (Printf.sprintf "matmul N:=%d" n)
        p)
    [ 1; 2; 7; 16 ]

(* ------------------------------------------------- fallback ---------- *)

let test_nonaffine_falls_back () =
  (* MIN over a loop index in a bound (a clamped loop): handled by
     interval composition, so the model must produce a sound bracket
     rather than refuse. *)
  let clamped =
    let open Builder in
    let n = v "N" in
    program "clamped" ~params:[ ("N", 12) ]
      ~arrays:[ ("A", [ n; n ]) ]
      [
        do_ "I" (i 1) n
          [
            do_ "J" (i 1) (Expr.Min (v "I" +$ i 3, n))
              [ asn (r "A" [ v "J"; v "I" ]) (f 1.0) ];
          ];
      ]
  in
  (match Analytic.estimate ~config:Machine.cache1 clamped with
  | Error e -> Alcotest.failf "MIN bound must be bracketed, fell back: %s" e
  | Ok est ->
    let sim = simulate ~config:Machine.cache1 clamped in
    Alcotest.(check bool)
      "MIN-bound access bracket contains simulator" true
      (Analytic.in_bracket sim.Measure.whole.Measure.accesses
         est.Analytic.b_accesses));
  (* A symbolic divisor is genuinely out of scope: the analysis must
     refuse rather than guess. *)
  let p =
    let open Builder in
    let n = v "N" in
    program "symdiv" ~params:[ ("N", 12) ]
      ~arrays:[ ("A", [ n; n ]) ]
      [
        do_ "I" (i 1) n
          [
            do_ "J" (i 1) (Expr.Div (n, v "I"))
              [ asn (r "A" [ v "J"; v "I" ]) (f 1.0) ];
          ];
      ]
  in
  (match Analytic.estimate ~config:Machine.cache1 p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "non-affine bound must fall back");
  (* and the simulator path still measures it *)
  let sim = simulate ~config:Machine.cache1 p in
  Alcotest.(check bool) "simulator still works" true
    (sim.Measure.whole.Measure.accesses > 0)

let test_fallback_counter () =
  let p =
    let open Builder in
    let n = v "N" in
    program "clamped2" ~params:[ ("N", 8) ]
      ~arrays:[ ("A", [ n ]) ]
      [
        do_ "I" (i 1) (Expr.Max (n, v "K"))
          [ asn (r "A" [ v "I" ]) (f 1.0) ];
      ]
  in
  (* unbound K in a bound: fallback, reported as such *)
  match Analytic.estimate ~config:Machine.cache1 p with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unbound bound variable must fall back"

(* ------------------------------------------------- whole suite ------- *)

let test_suite_differential () =
  List.iter
    (fun (e : Programs.entry) ->
      let p = Programs.program_of ~n:8 e in
      List.iter
        (fun config ->
          check_against_sim ~config e.Programs.name p)
        [ Machine.cache1; Machine.cache2 ])
    Programs.all

(* ------------------------------------------------- observability ----- *)

let test_obs_counters () =
  let p = Kernels.matmul ~order:"IJK" 8 in
  let _, trace =
    Obs.collect (fun () ->
        ignore (Analytic.estimate ~config:Machine.cache1 p))
  in
  let count name =
    List.fold_left
      (fun acc (e : Locality_obs.Event.t) ->
        match e.Locality_obs.Event.payload with
        | Locality_obs.Event.Counter { name = n; delta }
          when String.equal n name ->
          acc + delta
        | Locality_obs.Event.Instant { name = n; _ } when String.equal n name
          ->
          acc + 1
        | _ -> acc)
      0 trace
  in
  Alcotest.(check bool) "analytic.nests emitted" true (count "analytic.nests" > 0);
  Alcotest.(check bool) "analytic.unit emitted" true (count "analytic.unit" > 0);
  Alcotest.(check int) "every nest classified" (count "analytic.nests")
    (count "analytic.exact" + count "analytic.approx")

let suite =
  [
    Alcotest.test_case "matmul: all orders exact" `Quick test_matmul_exact;
    Alcotest.test_case "adi stencil exact" `Quick test_stencil_exact;
    Alcotest.test_case "transpose exact" `Quick test_transpose_exact;
    Alcotest.test_case "small caches: sound brackets" `Quick
      test_small_cache_brackets;
    Alcotest.test_case "triangular nests: exact access counts" `Quick
      test_triangular_access_counts;
    Alcotest.test_case "optimized-region marking" `Quick test_optimized_region;
    Alcotest.test_case "parameter overrides" `Quick test_param_overrides;
    Alcotest.test_case "non-affine bound falls back" `Quick
      test_nonaffine_falls_back;
    Alcotest.test_case "unbound bound variable falls back" `Quick
      test_fallback_counter;
    Alcotest.test_case "all 35 programs: differential vs simulator" `Slow
      test_suite_differential;
    Alcotest.test_case "obs counters" `Quick test_obs_counters;
  ]
