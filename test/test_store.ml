(* The content-addressed experiment store: digest stability, warm-hit
   equality against plain recomputation over the whole suite, corruption
   quarantine, concurrent writers on the domain pool, and LRU gc. *)

module Store = Locality_store.Store
module Measure = Locality_interp.Measure
module D = Locality_driver.Driver
module S = Locality_suite
module Pool = Locality_par.Pool

(* OCaml 5.1 has no Filename.temp_dir; make our own scratch roots. *)
let dir_ticket = ref 0

let fresh_dir () =
  incr dir_ticket;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "memoria-store-test-%d-%d" (Unix.getpid ()) !dir_ticket)
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  rm_rf d;
  d

let with_store f =
  let st = Store.open_root (fresh_dir ()) in
  f st

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------- digest stability --- *)

let test_key_stability () =
  let k1 = Store.key ~kind:"x" [ "a"; "bc" ] in
  let k2 = Store.key ~kind:"x" [ "a"; "bc" ] in
  check "same parts, same key" true (Store.equal_key k1 k2);
  check "field boundaries matter" false
    (Store.equal_key k1 (Store.key ~kind:"x" [ "ab"; "c" ]));
  check "kind matters" false
    (Store.equal_key k1 (Store.key ~kind:"y" [ "a"; "bc" ]));
  check_int "hex is 32 chars" 32 (String.length (Store.hex k1))

let test_capture_key_stability () =
  let p1 = S.Kernels.cholesky 16 and p2 = S.Kernels.cholesky 16 in
  check "same program built twice, same key" true
    (Store.equal_key (Measure.capture_key p1) (Measure.capture_key p2));
  check "size is part of the digest" false
    (Store.equal_key (Measure.capture_key p1)
       (Measure.capture_key (S.Kernels.cholesky 17)));
  check "trace format is part of the digest" false
    (Store.equal_key
       (Measure.capture_key ~mode:Measure.Per_access p1)
       (Measure.capture_key ~mode:Measure.Runs p1));
  check "param overrides are part of the digest" false
    (Store.equal_key (Measure.capture_key p1)
       (Measure.capture_key ~params:[ ("N", 8) ] p1))

(* ------------------------------------- hit = recompute, whole suite --- *)

let runs_equal (a : Measure.run) (b : Measure.run) = a = b

let test_suite_hit_equals_recompute () =
  with_store (fun st ->
      List.iter
        (fun (e : S.Programs.entry) ->
          let p = S.Programs.program_of ~n:12 e in
          let plain = Measure.measure ~store:None p in
          let cold = Measure.measure ~store:(Some st) p in
          let warm = Measure.measure ~store:(Some st) p in
          check (e.S.Programs.name ^ ": cold = plain") true
            (runs_equal plain cold);
          check (e.S.Programs.name ^ ": warm = plain") true
            (runs_equal plain warm))
        S.Programs.all)

(* The driver's cached compound analysis: a warm run must reproduce the
   transformed program, the statistics and the measurements exactly. *)
let test_driver_analysis_cache () =
  with_store (fun st ->
      List.iter
        (fun name ->
          let machines = [ Locality_cachesim.Machine.cache2 ] in
          let cfg =
            D.config ~n:12 ~store:(Some st) ~machines (D.Source_suite name)
          in
          let plain =
            D.run_exn (D.config ~n:12 ~store:None ~machines (D.Source_suite name))
          in
          let cold = D.run_exn cfg in
          let warm = D.run_exn cfg in
          check (name ^ ": warm transformed = cold") true
            (warm.D.transformed = cold.D.transformed);
          check (name ^ ": warm stats = cold") true
            (warm.D.compound = cold.D.compound);
          check (name ^ ": warm labels = cold") true
            (warm.D.optimized_labels = cold.D.optimized_labels);
          let runs (r : D.result) =
            List.map
              (fun m -> (m.D.original_run, m.D.transformed_run, m.D.speedup))
              r.D.measured
          in
          check (name ^ ": warm measurements = plain") true
            (runs warm = runs plain))
        [ "adm"; "qcd"; "wave" ])

(* --------------------------------------------- corruption handling --- *)

let corrupt_file ?(truncate = false) path =
  let len = (Unix.stat path).Unix.st_size in
  if truncate then (
    let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
    Unix.ftruncate fd (len / 2);
    Unix.close fd)
  else begin
    (* Flip a bit in the middle of the payload. *)
    let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
    let pos = len / 2 in
    ignore (Unix.lseek fd pos Unix.SEEK_SET);
    let b = Bytes.create 1 in
    ignore (Unix.read fd b 0 1);
    Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
    ignore (Unix.lseek fd pos Unix.SEEK_SET);
    ignore (Unix.write fd b 0 1);
    Unix.close fd
  end

let test_bitflip_quarantines () =
  with_store (fun st ->
      let k = Store.key ~kind:"t" [ "bitflip" ] in
      Store.put_value st k (List.init 100 string_of_int);
      let path = Store.object_path st k in
      corrupt_file path;
      let before = Store.counters () in
      check "corrupt entry reads as a miss" true
        (Store.get_value st k = (None : string list option));
      let after = Store.counters () in
      check_int "quarantine counter bumped" 1
        (after.Store.quarantines - before.Store.quarantines);
      check_int "counted as a miss" 1 (after.Store.misses - before.Store.misses);
      check "entry removed from objects/" false (Sys.file_exists path);
      check "entry parked in quarantine/" true
        (Sys.file_exists
           (Filename.concat
              (Filename.concat (Store.root st) "quarantine")
              (Filename.basename path))))

let test_truncation_invalidates () =
  with_store (fun st ->
      let k = Store.key ~kind:"t" [ "truncate" ] in
      Store.put_value st k (Array.init 200 (fun i -> i * i));
      corrupt_file ~truncate:true (Store.object_path st k);
      let before = Store.counters () in
      check "truncated entry reads as a miss" true
        (Store.get_value st k = (None : int array option));
      let after = Store.counters () in
      check_int "invalidation counter bumped" 1
        (after.Store.invalidations - before.Store.invalidations);
      check "entry gone from objects/" false
        (Sys.file_exists (Store.object_path st k)))

let test_corruption_recomputes_identically () =
  with_store (fun st ->
      let p = S.Kernels.matmul ~order:"IJK" 16 in
      let plain = Measure.measure ~store:None p in
      let cold = Measure.measure ~store:(Some st) p in
      (* Damage every entry: capture and result alike must be retired
         and recomputed without changing a single field. *)
      let rec each dir f =
        Array.iter
          (fun n ->
            let path = Filename.concat dir n in
            if Sys.is_directory path then each path f else f path)
          (Sys.readdir dir)
      in
      each (Filename.concat (Store.root st) "objects") corrupt_file;
      let recomputed = Measure.measure ~store:(Some st) p in
      check "cold = plain" true (runs_equal plain cold);
      check "recomputed after corruption = plain" true
        (runs_equal plain recomputed);
      let d = Store.disk_stats st in
      check "quarantine holds the damaged entries" true
        (d.Store.quarantined > 0))

(* ------------------------------------------------ concurrent writers --- *)

let test_concurrent_writers () =
  with_store (fun st ->
      let items = List.init 16 (fun i -> i) in
      let results =
        Pool.map ~jobs:4
          (fun i ->
            (* Half the writers contend on shared keys, half write their
               own; everyone immediately reads back. *)
            let k = Store.key ~kind:"conc" [ string_of_int (i mod 4) ] in
            Store.put_value st k (i mod 4, "payload");
            Store.get_value st k)
          items
      in
      List.iter
        (fun r ->
          match (r : (int * string) option) with
          | None -> Alcotest.fail "concurrent read missed"
          | Some (_, s) -> check "payload intact" true (String.equal s "payload"))
        results;
      let ok, bad = Store.verify st in
      check_int "all surviving entries valid" 0 bad;
      check_int "one entry per contended key" 4 ok;
      (* Every entry decodes to the value its key says it holds. *)
      List.iter
        (fun i ->
          let k = Store.key ~kind:"conc" [ string_of_int i ] in
          match (Store.get_value st k : (int * string) option) with
          | Some (j, _) -> check_int "key/value agree" i j
          | None -> Alcotest.fail "entry lost after contention")
        [ 0; 1; 2; 3 ])

(* -------------------------------------------------------------- gc --- *)

let test_gc_lru () =
  with_store (fun st ->
      let payload = String.make 1000 'x' in
      let keys =
        List.map (fun i -> Store.key ~kind:"gc" [ string_of_int i ]) [ 0; 1; 2; 3 ]
      in
      List.iteri
        (fun i k ->
          Store.put st k payload;
          (* Backdate: entry i last used at hour i+1. *)
          let t = float_of_int ((i + 1) * 3600) in
          Unix.utimes (Store.object_path st k) t t)
        keys;
      let entry_size = (Unix.stat (Store.object_path st (List.hd keys))).Unix.st_size in
      (* Room for two entries: the two oldest must go. *)
      let deleted, remaining = Store.gc st ~max_bytes:(2 * entry_size) in
      check_int "evicted the excess" 2 deleted;
      check_int "remaining bytes as reported" (2 * entry_size) remaining;
      let alive k = Sys.file_exists (Store.object_path st k) in
      (match keys with
      | [ k0; k1; k2; k3 ] ->
        check "oldest evicted" false (alive k0);
        check "second-oldest evicted" false (alive k1);
        check "recent survives" true (alive k2);
        check "newest survives" true (alive k3)
      | _ -> assert false);
      (* A read refreshes the clock: touch the older survivor, add a new
         entry, and shrink again — the untouched one is now the victim. *)
      ignore (Store.get st (List.nth keys 2));
      let d = Store.gc st ~max_bytes:entry_size in
      check_int "one more eviction" 1 (fst d);
      check "recently-read entry survives the second gc" true
        (alive (List.nth keys 2)))

let test_gc_min_age () =
  with_store (fun st ->
      let payload = String.make 1000 'x' in
      let old_k = Store.key ~kind:"age" [ "old" ]
      and new_k = Store.key ~kind:"age" [ "new" ] in
      Store.put st old_k payload;
      let t = Unix.gettimeofday () -. 3600. in
      Unix.utimes (Store.object_path st old_k) t t;
      Store.put st new_k payload;
      let alive k = Sys.file_exists (Store.object_path st k) in
      (* max_bytes 0 wants everything gone; min-age shields the entry a
         concurrent writer just published, even though the store stays
         over target. *)
      let deleted, remaining = Store.gc ~min_age_s:600. st ~max_bytes:0 in
      check_int "only the stale entry evicted" 1 deleted;
      check "stale entry gone" false (alive old_k);
      check "fresh entry survives an evict-everything gc" true (alive new_k);
      check "remaining bytes still count the survivor" true (remaining > 0);
      (* Without the shield the same gc clears the store. *)
      let deleted2, remaining2 = Store.gc st ~max_bytes:0 in
      check_int "min_age 0 evicts the rest" 1 deleted2;
      check_int "store empty" 0 remaining2)

let suite =
  [
    ("key: digest stability", `Quick, test_key_stability);
    ("key: capture digests", `Quick, test_capture_key_stability);
    ( "measure: hit = recompute on all suite programs",
      `Slow,
      test_suite_hit_equals_recompute );
    ( "driver: cached analysis is value-identical",
      `Quick,
      test_driver_analysis_cache );
    ("corruption: bit-flip quarantined", `Quick, test_bitflip_quarantines);
    ("corruption: truncation invalidated", `Quick, test_truncation_invalidates);
    ( "corruption: recompute is field-identical",
      `Quick,
      test_corruption_recomputes_identically );
    ("concurrency: 4-domain writers", `Quick, test_concurrent_writers);
    ("gc: LRU eviction respects max-bytes", `Quick, test_gc_lru);
    ("gc: min-age shields fresh entries", `Quick, test_gc_min_age);
  ]
