(* The telemetry layer: the JSON reader, record round-trips, the
   persistent sink (atomic publish, chronological load, corrupt-file
   skip) and the health regression gate (clean history passes, a
   degraded newest run flags the right metrics). *)

module Store = Locality_store.Store
module Jsonin = Locality_telemetry.Jsonin
module Record = Locality_telemetry.Record
module Telemetry = Locality_telemetry.Telemetry
module Health = Locality_telemetry.Health

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let dir_ticket = ref 0

let fresh_dir () =
  incr dir_ticket;
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "memoria-health-test-%d-%d" (Unix.getpid ()) !dir_ticket)
  in
  let rec rm_rf path =
    match Unix.lstat path with
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun n -> rm_rf (Filename.concat path n)) (Sys.readdir path);
      Unix.rmdir path
    | _ -> Sys.remove path
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()
  in
  rm_rf d;
  d

let with_store f = f (Store.open_root (fresh_dir ()))

(* ------------------------------------------------- JSON reader ----- *)

let test_jsonin_values () =
  let open Jsonin in
  checkb "null" true (parse "null" = Null);
  checkb "bool" true (parse " true " = Bool true);
  checkb "int" true (parse "42" = Num 42.0);
  checkb "float" true (parse "-2.5e2" = Num (-250.0));
  checkb "string escapes" true
    (parse {|"a\n\"b\"A"|} = Str "a\n\"b\"A");
  checkb "array" true (parse "[1,2]" = List [ Num 1.0; Num 2.0 ]);
  checkb "object" true
    (parse {|{"k":1,"l":[]}|} = Obj [ ("k", Num 1.0); ("l", List []) ]);
  checkb "empties" true (parse {|{"a":{},"b":[]}|} <> Null)

let test_jsonin_rejects_malformed () =
  let bad s = Jsonin.parse_opt s = None in
  checkb "trailing garbage" true (bad "{} x");
  checkb "unterminated string" true (bad {|{"a":"b|});
  checkb "missing colon" true (bad {|{"a" 1}|});
  checkb "bare word" true (bad "flase");
  checkb "truncated object" true (bad {|{"a":1,|});
  checkb "empty input" true (bad "")

(* The reader accepts everything the shared emitter writes. *)
let test_jsonin_reads_emitter () =
  let module Json = Locality_obs.Json in
  let doc =
    Json.versioned
      [
        ("s", Json.str "line\nbreak \"and\" \\slash\\");
        ("n", Json.int (-7));
        ("l", Json.strings [ "a"; "b" ]);
        ("o", Json.obj [ ("inner", Json.int 1) ]);
      ]
  in
  match Jsonin.parse_opt doc with
  | None -> Alcotest.fail "emitter output did not parse"
  | Some v ->
    checkb "string round-trips" true
      (Option.bind (Jsonin.member "s" v) Jsonin.to_string_opt
      = Some "line\nbreak \"and\" \\slash\\");
    checkb "int round-trips" true
      (Option.bind (Jsonin.member "n" v) Jsonin.to_int_opt = Some (-7))

(* ---------------------------------------------- record round-trip --- *)

let sample_record ?(ts = 1_000_000_000L) ?(workload = "suite:n=20") ?(wall = 120.0)
    ?(phases = [ ("optimize", 40.0); ("replay", 60.0) ])
    ?(counters = [ ("store.hit", 8); ("store.miss", 2); ("analytic.nests", 10);
                   ("analytic.fallback", 1) ])
    ?(gauges = [ ("store.hit_rate", 0.8) ]) () =
  {
    Record.ts_ns = ts;
    cmd = "suite";
    workload;
    replay = "runs";
    geometry = "cache1+cache2";
    jobs = 4;
    git = "v1.0-3-gabc";
    wall_ms = wall;
    phases;
    counters;
    gauges;
  }

let test_record_roundtrip () =
  let r = sample_record () in
  let json = Record.to_json r in
  checkb "record JSON is valid" true (Test_obs.json_valid json);
  match Record.of_string json with
  | None -> Alcotest.fail "round-trip failed"
  | Some r' ->
    checkb "ts preserved" true (r'.Record.ts_ns = r.Record.ts_ns);
    checks "workload preserved" r.Record.workload r'.Record.workload;
    checkb "phases preserved" true (r'.Record.phases = r.Record.phases);
    checkb "counters preserved" true (r'.Record.counters = r.Record.counters);
    checkb "hit rate derived" true (Record.hit_rate r' = Some 0.8);
    checkb "fallback rate derived" true
      (Record.fallback_rate r' = Some 0.1)

let test_record_rejects_bad () =
  checkb "garbage" true (Record.of_string "not json" = None);
  checkb "wrong schema" true
    (Record.of_string {|{"telemetry_schema":999}|} = None);
  checkb "missing fields" true
    (Record.of_string {|{"telemetry_schema":1,"cmd":"x"}|} = None)

(* -------------------------------------------------- persistence ---- *)

let test_publish_load_roundtrip () =
  with_store (fun st ->
      let r1 = sample_record ~ts:100L ()
      and r2 = sample_record ~ts:200L ~wall:130.0 () in
      (* Publish newest first: load must still return oldest first. *)
      checkb "publish r2" true (Telemetry.publish st r2 <> None);
      checkb "publish r1" true (Telemetry.publish st r1 <> None);
      match Telemetry.load st with
      | [ a; b ] ->
        checkb "oldest first" true
          (a.Record.ts_ns = 100L && b.Record.ts_ns = 200L)
      | l -> Alcotest.failf "expected 2 records, got %d" (List.length l))

let test_load_skips_corrupt () =
  with_store (fun st ->
      ignore (Telemetry.publish st (sample_record ~ts:100L ()));
      let dir = Telemetry.dir st in
      (* Truncated JSON, wrong schema, and a non-record file. *)
      let write name content =
        let oc = open_out (Filename.concat dir name) in
        output_string oc content;
        close_out oc
      in
      write "00000000000000000050-1.json" "{\"telemetry_schema\":1,\"trunc";
      write "00000000000000000060-1.json" "{\"telemetry_schema\":999}";
      write "notes.txt" "not a record";
      checki "only the valid record survives" 1
        (List.length (Telemetry.load st)))

let test_empty_dir_loads_empty () =
  checki "missing dir is empty history" 0
    (List.length (Telemetry.load_dir (fresh_dir ())))

(* ------------------------------------------------- health gate ----- *)

let history ~runs ~workload =
  List.init runs (fun i ->
      sample_record
        ~ts:(Int64.of_int ((i + 1) * 1000))
        ~workload ())

let test_health_ok_on_stable_history () =
  let report = Health.run (history ~runs:4 ~workload:"suite:n=20") in
  checki "records seen" 4 report.Health.records;
  checki "one workload" 1 report.Health.workloads;
  checkb "checks ran" true (report.Health.checks <> []);
  checkb "nothing flagged" true (report.Health.flagged = []);
  checkb "render says OK" true
    (let r = Health.render report in
     let n = String.length r in
     n >= 11 && String.sub r (n - 11) 11 = "health: OK\n")

let test_health_needs_history () =
  let report = Health.run (history ~runs:1 ~workload:"suite:n=20") in
  checkb "single run produces no checks" true (report.Health.checks = [])

let test_health_flags_regressions () =
  let base = history ~runs:3 ~workload:"suite:n=20" in
  let degraded =
    sample_record ~ts:9_000L ~workload:"suite:n=20" ~wall:100_000.0
      ~phases:[ ("optimize", 50_000.0); ("replay", 60.0) ]
      ~counters:
        [ ("store.hit", 0); ("store.miss", 10); ("analytic.nests", 10);
          ("analytic.fallback", 9) ]
      ~gauges:[] ()
  in
  let report = Health.run (base @ [ degraded ]) in
  let flagged_metrics =
    List.map (fun (c : Health.check) -> c.Health.metric) report.Health.flagged
  in
  checkb "wall clock flagged" true (List.mem "wall_ms" flagged_metrics);
  checkb "slow phase flagged" true (List.mem "phase:optimize" flagged_metrics);
  checkb "fast phase not flagged" false (List.mem "phase:replay" flagged_metrics);
  checkb "hit-rate drop flagged" true
    (List.mem "store.hit_rate" flagged_metrics);
  checkb "fallback rise flagged" true
    (List.mem "analytic.fallback_rate" flagged_metrics);
  (* The report names the workload and the metric. *)
  let rendered = Health.render report in
  let contains hay needle =
    let n = String.length needle and m = String.length hay in
    let rec go i = i + n <= m && (String.sub hay i n = needle || go (i + 1)) in
    go 0
  in
  checkb "render names the metric" true (contains rendered "store.hit_rate");
  checkb "render flags" true (contains rendered "FLAG");
  checkb "json is valid" true (Test_obs.json_valid (Health.to_json report))

let test_health_baseline_is_windowed_median () =
  (* Seven prior runs: only the newest [window]=5 feed the median, so
     the two ancient slow runs must not mask a regression. *)
  let workload = "sim:k" in
  let old_slow =
    List.init 2 (fun i ->
        sample_record
          ~ts:(Int64.of_int ((i + 1) * 10))
          ~workload ~wall:100_000.0 ())
  in
  let recent_fast =
    List.init 5 (fun i ->
        sample_record ~ts:(Int64.of_int ((i + 10) * 100)) ~workload ())
  in
  let degraded =
    sample_record ~ts:99_999L ~workload ~wall:5_000.0
      ~phases:[ ("optimize", 40.0); ("replay", 60.0) ] ()
  in
  let report = Health.run (old_slow @ recent_fast @ [ degraded ]) in
  checkb "regression vs recent baseline flagged" true
    (List.exists
       (fun (c : Health.check) -> c.Health.metric = "wall_ms")
       report.Health.flagged);
  (* With a window wide enough to include the ancient slow runs the
     median still flags (5 fast of 7), but a window of 2 must not: the
     newest two prior runs are fast. *)
  let report_w2 =
    Health.run
      ~thresholds:{ Health.default_thresholds with Health.window = 2 }
      (old_slow @ recent_fast @ [ degraded ])
  in
  checkb "window=2 baseline is the recent runs" true
    (List.exists
       (fun (c : Health.check) -> c.Health.metric = "wall_ms")
       report_w2.Health.flagged)

let test_health_separates_workloads () =
  (* A regression in one workload must not flag the other. *)
  let a = history ~runs:3 ~workload:"suite:a" in
  let b = history ~runs:2 ~workload:"suite:b" in
  let degraded =
    sample_record ~ts:99_000L ~workload:"suite:a" ~wall:100_000.0 ()
  in
  let report = Health.run (a @ b @ [ degraded ]) in
  checki "two workloads" 2 report.Health.workloads;
  checkb "only suite:a flagged" true
    (report.Health.flagged <> []
    && List.for_all
         (fun (c : Health.check) -> c.Health.workload = "suite:a")
         report.Health.flagged)

let suite =
  [
    ("jsonin values", `Quick, test_jsonin_values);
    ("jsonin rejects malformed", `Quick, test_jsonin_rejects_malformed);
    ("jsonin reads the emitter", `Quick, test_jsonin_reads_emitter);
    ("record round-trip", `Quick, test_record_roundtrip);
    ("record rejects bad input", `Quick, test_record_rejects_bad);
    ("telemetry publish/load round-trip", `Quick, test_publish_load_roundtrip);
    ("telemetry load skips corrupt files", `Quick, test_load_skips_corrupt);
    ("telemetry empty dir", `Quick, test_empty_dir_loads_empty);
    ("health: stable history passes", `Quick, test_health_ok_on_stable_history);
    ("health: needs two runs", `Quick, test_health_needs_history);
    ("health: flags regressions", `Quick, test_health_flags_regressions);
    ("health: baseline median is windowed", `Quick, test_health_baseline_is_windowed_median);
    ("health: workloads independent", `Quick, test_health_separates_workloads);
  ]
