let () =
  Alcotest.run "memoria"
    [
      ("ir", Test_ir.suite);
      ("cost", Test_cost.suite);
      ("transform", Test_transform.suite);
      ("dep", Test_dep.suite);
      ("cachesim", Test_cachesim.suite);
      ("interp", Test_interp.suite);
      ("semantics", Test_semantics.suite);
      ("lang", Test_lang.suite);
      ("suite", Test_suite.suite);
      ("stats", Test_stats.suite);
      ("extensions", Test_extensions.suite);
      ("normalize", Test_normalize.suite);
      ("coverage", Test_coverage.suite);
      ("cgen", Test_cgen.suite);
      ("units", Test_units.suite);
      ("trace", Test_trace.suite);
      ("runs", Test_runs.suite);
      ("obs", Test_obs.suite);
      ("health", Test_health.suite);
      ("store", Test_store.suite);
      ("fuzz", Test_fuzz.suite);
      ("analytic", Test_analytic.suite);
      ("stream", Test_stream.suite);
      ("sample", Test_sample.suite);
      ("serve", Test_serve.suite);
      ("tune", Test_tune.suite);
    ]
