! memoria fuzz reproducer (shrunk)
! seed=2 index=81 oracle=exec
! array A element 794: -0.9319000244140625 vs 3.809967041015625
PROGRAM FZ2_81
PARAMETER (N = 4)
REAL*8 A(N+2, N+2, N+2)
S = 0.5
DO I = 1, N-1
  DO J = 2, 1, -1
    DO K = 1, 1
      A(3,2,1) = 1.0
    ENDDO
    A(I,J,1) = S
  ENDDO
ENDDO
END
