! memoria fuzz reproducer (shrunk)
! seed=2 index=133 oracle=exec
! array A element 2: 53.248867988586426 vs -25.281257629394531
PROGRAM FZ2_133
PARAMETER (N = 3)
REAL*8 D(N+2, N+2)
DO I = 1, N
  D(2,2+1) = 1.0
  DO J = N, 2, -1
    D(I,J) = 1.5
  ENDDO
ENDDO
END
