! memoria fuzz reproducer (shrunk)
! seed=1337 index=9172 oracle=exec
! compound transform failed: FZ1337_9172: Invalid_argument("Reversal.apply: non-unit step")
PROGRAM FZ1337_9172
PARAMETER (N = 2)
REAL*8 A(N+2, N+2, N+2)
DO J = 1, N
  DO K = J, N/2, 2
    A(J,K,K+2) = A(K+2,3,K)
  ENDDO
ENDDO
END
