! memoria fuzz reproducer (shrunk)
! seed=1 index=42 oracle=cgen
! original: native checksum 727.145831, interpreter 728.645831
PROGRAM FZ1_42
PARAMETER (N = 2)
REAL*8 B(N+2, 8, N+2)
B(2,1,1) = 1.0 / 4.0
END
