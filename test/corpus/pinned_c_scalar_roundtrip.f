! memoria fuzz reproducer (pinned)
! oracle=roundtrip
! The lexer used to treat any line whose first column is 'C' as a
! Fortran comment, swallowing assignments to a scalar named C (both at
! column 1 and indented). These statements must survive a
! pretty-print -> parse -> pretty-print round trip.
PROGRAM PINCSCALAR
PARAMETER (N = 8)
REAL*8 A(N+2)
C = 2.0
DO I = 1, N
  C = C + A(I) * 0.5
  A(I) = C - 0.25
ENDDO
END
