! memoria fuzz reproducer (shrunk)
! seed=1 index=17 oracle=cgen
! original: native checksum 1727.04329, interpreter 1741.29329
PROGRAM FZ1_17
PARAMETER (N = 2)
REAL*8 B(N+2, N+2, 8)
B(1,1,2) = 3.0 / 2.0
END
