! memoria fuzz reproducer (pinned)
! oracle=cgen
! Pretty_c used to hit an assert false on Fmin/Fmax rexprs; they must
! lower to C fmin()/fmax() calls with a matching native checksum.
PROGRAM PINMINMAX
PARAMETER (N = 8)
REAL*8 A(N+2, N+2)
REAL*8 B(N+2)
DO I = 1, N
  DO J = 1, N
    A(I,J) = MAX(MIN(A(J,I), B(I)), 0.25) + MIN(A(I,J), 1.5)
  ENDDO
  B(I) = MAX(B(I), A(I,I))
ENDDO
END
