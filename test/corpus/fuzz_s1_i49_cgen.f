! memoria fuzz reproducer (shrunk)
! seed=1 index=49 oracle=cgen
! original: native checksum -281.122823, interpreter -256.872823
PROGRAM FZ1_49
PARAMETER (N = 2)
REAL*8 B(N+2, 8, 8)
B(1,1,1) = 2.0 / 4.0
END
