(* Tests for the dependence analysis library: direction-vector lattice,
   subscript tests, pairwise dependences, and the statement graph. *)

open Locality_ir
module D = Locality_dep.Direction
module Dep = Locality_dep.Depend
module An = Locality_dep.Analysis
module G = Locality_dep.Graph

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* ---------------------------------------------------------- Direction *)

let test_direction_predicates () =
  checkb "Dist 0 must_zero" true (D.must_zero (Dist 0));
  checkb "Dist 2 must_pos" true (D.must_pos (Dist 2));
  checkb "Pos not may_zero" false (D.may_zero D.Pos);
  checkb "NonNeg may_zero" true (D.may_zero D.NonNeg);
  checkb "Any may everything" true
    (D.may_pos D.Any && D.may_neg D.Any && D.may_zero D.Any)

let test_lex () =
  checkb "(1,-1) lex nonneg" true (D.lex_nonneg [ Dist 1; Dist (-1) ]);
  checkb "(-1,1) not lex nonneg" false (D.lex_nonneg [ Dist (-1); Dist 1 ]);
  checkb "(0,0) lex nonneg" true (D.lex_nonneg [ Dist 0; Dist 0 ]);
  checkb "(0+,0) lex nonneg" true (D.lex_nonneg [ D.NonNeg; Dist 0 ]);
  checkb "(*,1) not lex nonneg" false (D.lex_nonneg [ D.Star; Dist 1 ]);
  checkb "(0,*) may_lex_neg" true (D.may_lex_neg [ Dist 0; D.Star ]);
  checkb "(1,*) not may_lex_neg" false (D.may_lex_neg [ Dist 1; D.Star ]);
  checkb "(0,0) not may_lex_pos" false (D.may_lex_pos [ Dist 0; Dist 0 ]);
  checkb "(0+,0) may_lex_pos" true (D.may_lex_pos [ D.NonNeg; Dist 0 ])

let test_meet () =
  checkb "Dist/Dist equal" true (D.meet (Dist 2) (Dist 2) = Some (Dist 2));
  checkb "Dist/Dist conflict" true (D.meet (Dist 2) (Dist 3) = None);
  checkb "Any refines to Dist" true (D.meet D.Any (Dist 1) = Some (Dist 1));
  checkb "Star refines to Dist" true (D.meet D.Star (Dist 1) = Some (Dist 1));
  checkb "Pos/Neg conflict" true (D.meet D.Pos D.Neg = None);
  checkb "Pos with Dist -1 conflict" true (D.meet D.Pos (Dist (-1)) = None);
  checkb "NonNeg/NonPos is zero" true (D.meet D.NonNeg D.NonPos = Some (Dist 0))

let test_restrict () =
  checkb "restrict (-1,...) nonneg empty" true
    (D.restrict_lex_nonneg [ Dist (-1); Dist 0 ] = None);
  checkb "restrict any-leading" true
    (D.restrict_lex_nonneg [ D.Any; Dist 0 ] = Some [ D.NonNeg; Dist 0 ]);
  checkb "restrict pos of zero is none" true
    (D.restrict_lex_pos [ Dist 0; Dist 0 ] = None);
  checkb "negate involutive" true
    (D.negate (D.negate [ Dist 3; D.Pos; D.Star ]) = [ Dist 3; D.Pos; D.Star ])

let test_permute_vec () =
  let v = [ D.Dist 1; D.Dist (-1); D.Star ] in
  checkb "swap first two" true
    (D.permute v [| 1; 0; 2 |] = [ D.Dist (-1); D.Dist 1; D.Star ])

let test_small_constant () =
  checkb "(0,1) small at 2" true (D.small_constant_at [ Dist 0; Dist 1 ] 2);
  checkb "(1,1) not small at 2" false (D.small_constant_at [ Dist 1; Dist 1 ] 2);
  checkb "(0,Any) small at 2" true (D.small_constant_at [ Dist 0; D.Any ] 2);
  checkb "(0,3) not small at 2" false (D.small_constant_at [ Dist 0; Dist 3 ] 2)

(* ------------------------------------------------------- whole kernels *)

let matmul_loop () =
  let open Builder in
  let nn = v "N" in
  let p =
    program "matmul"
      ~params:[ ("N", 64) ]
      ~arrays:[ ("A", [ nn; nn ]); ("B", [ nn; nn ]); ("C", [ nn; nn ]) ]
      [
        do_ "J" (i 1) nn
          [
            do_ "K" (i 1) nn
              [
                do_ "I" (i 1) nn
                  [
                    asn
                      (r "C" [ v "I"; v "J" ])
                      (ld "C" [ v "I"; v "J" ]
                      +! (ld "A" [ v "I"; v "K" ] *! ld "B" [ v "K"; v "J" ]));
                  ];
              ];
          ];
      ]
  in
  List.hd (Program.top_loops p)

let test_matmul_deps () =
  let l = matmul_loop () in
  let deps = An.deps_in_nest l in
  (* Flow (write->read), anti (read->write), and the carried output
     self-dependence on C; A and B are read-only. *)
  checki "three true deps" 3 (List.length deps);
  List.iter
    (fun (d : Dep.t) ->
      checks "all on C" "C" d.src_ref.Reference.array;
      checkb "J entry zero" true (D.must_zero (List.nth d.vec 0));
      checkb "I entry zero" true (D.must_zero (List.nth d.vec 2));
      checkb "K entry may_pos" true (D.may_pos (List.nth d.vec 1)))
    deps;
  let kinds = List.map (fun (d : Dep.t) -> d.kind) deps in
  checkb "has flow" true (List.mem Dep.Flow kinds);
  checkb "has anti" true (List.mem Dep.Anti kinds);
  checkb "has output" true (List.mem Dep.Output kinds)

let test_matmul_input_deps () =
  let l = matmul_loop () in
  let deps = An.deps_in_nest ~include_input:true l in
  let inputs = List.filter (fun (d : Dep.t) -> d.kind = Dep.Input) deps in
  (* C-read with itself is not a pair; A and B reads pair with C's read
     only when arrays match, so the input deps are on... none between
     distinct arrays. Identical refs appear once per statement scan, so
     expect zero input deps here. *)
  checki "no input deps in matmul" 0 (List.length inputs)

let stencil_nest () =
  (* DO I = 2, N ; DO J = 1, N-1 : A(I,J) = A(I-1,J+1) — the classic
     interchange-preventing dependence with distance (+1,-1). *)
  let open Builder in
  let nn = v "N" in
  let p =
    program "stencil"
      ~params:[ ("N", 64) ]
      ~arrays:[ ("A", [ nn; nn ]) ]
      [
        do_ "I" (i 2) nn
          [
            do_ "J" (i 1) (nn -$ i 1)
              [ asn (r "A" [ v "I"; v "J" ]) (ld "A" [ v "I" -$ i 1; v "J" +$ i 1 ]) ];
          ];
      ]
  in
  List.hd (Program.top_loops p)

let test_stencil_distance () =
  let deps = An.deps_in_nest (stencil_nest ()) in
  let flows = List.filter (fun (d : Dep.t) -> d.kind = Dep.Flow) deps in
  checki "one flow dep" 1 (List.length flows);
  let d = List.hd flows in
  checkb "distance (1,-1)" true (d.vec = [ D.Dist 1; D.Dist (-1) ]);
  checkb "not loop independent" true (not d.li);
  (* Interchanged the vector becomes (-1, 1): illegal. *)
  checkb "interchange illegal" false (D.lex_nonneg (D.permute d.vec [| 1; 0 |]))

let test_ziv_independent () =
  (* A(1,I) versus A(2,I): never the same location. *)
  let open Builder in
  let nn = v "N" in
  let p =
    program "ziv"
      ~params:[ ("N", 8) ]
      ~arrays:[ ("A", [ nn; nn ]) ]
      [
        do_ "I" (i 1) nn
          [ asn (r "A" [ i 1; v "I" ]) (ld "A" [ i 2; v "I" ]) ];
      ]
  in
  let deps = An.deps_in_nest (List.hd (Program.top_loops p)) in
  checki "no deps" 0 (List.length deps)

let test_step_scaled_distance () =
  (* DO I = 1, 20, 2 : A(I) = A(I-2) — index distance 2 is ONE iteration;
     A(I) = A(I-1) touches only odd vs even elements: independent. *)
  let open Builder in
  let p =
    program "st2" ~arrays:[ ("A", [ i 32 ]) ]
      [
        do_ ~step:2 "I" (i 3) (i 21)
          [ asn ~label:"W2" (r "A" [ v "I" ]) (ld "A" [ v "I" -$ i 2 ] +! f 1.0) ];
      ]
  in
  let deps =
    List.filter Dep.is_true_dep
      (An.deps_in_nest (List.hd (Program.top_loops p)))
  in
  (match List.filter (fun (d : Dep.t) -> d.kind = Dep.Flow) deps with
  | [ d ] -> checkb "iteration distance 1" true (d.vec = [ D.Dist 1 ])
  | l -> Alcotest.failf "expected one flow dep, got %d" (List.length l));
  let p2 =
    program "st2b" ~arrays:[ ("A", [ i 32 ]) ]
      [
        do_ ~step:2 "I" (i 3) (i 21)
          [ asn (r "A" [ v "I" ]) (ld "A" [ v "I" -$ i 1 ] +! f 1.0) ];
      ]
  in
  let deps2 =
    List.filter Dep.is_true_dep
      (An.deps_in_nest (List.hd (Program.top_loops p2)))
  in
  checki "odd/even disjoint: no deps" 0 (List.length deps2)

let test_strong_siv_out_of_range () =
  (* A(I) = A(I-100) in a loop of 10 iterations: distance exceeds trip. *)
  let open Builder in
  let p =
    program "range"
      ~arrays:[ ("A", [ i 1000 ]) ]
      [ do_ "I" (i 101) (i 110) [ asn (r "A" [ v "I" ]) (ld "A" [ v "I" -$ i 100 ]) ] ]
  in
  let deps = An.deps_in_nest (List.hd (Program.top_loops p)) in
  checki "no deps" 0 (List.length deps)

let test_triangular_range_refinement () =
  (* Cholesky-style: S2 writes A(I,K); S3 reads A(J,K) etc. The key fact:
     A(I,J) with J in [K+1,I] can never alias A(I,K) on the same K
     iteration, because J > K. *)
  let open Builder in
  let nn = v "N" in
  let p =
    program "tri"
      ~params:[ ("N", 16) ]
      ~arrays:[ ("A", [ nn; nn ]) ]
      [
        do_ "K" (i 1) nn
          [
            do_ "I" (v "K" +$ i 1) nn
              [
                asn ~label:"S2" (r "A" [ v "I"; v "K" ]) (ld "A" [ v "I"; v "K" ] /! f 2.0);
                do_ "J" (v "K" +$ i 1) (v "I")
                  [
                    asn ~label:"S3"
                      (r "A" [ v "I"; v "J" ])
                      (ld "A" [ v "I"; v "J" ] -! (ld "A" [ v "I"; v "K" ] *! ld "A" [ v "J"; v "K" ]));
                  ];
              ];
          ];
      ]
  in
  let l = List.hd (Program.top_loops p) in
  let deps = An.deps_in_nest l in
  (* Dependences between S3's write A(I,J) and S2's refs A(I,K) must not
     be loop-independent: J >= K+1 rules out the same-K solution. The
     A(I,K) read in S3 against S2's A(I,K) *is* loop-independent. *)
  let is_aij (r : Reference.t) =
    Reference.equal r (Reference.make "A" [ Expr.Var "I"; Expr.Var "J" ])
  in
  let crossing =
    List.filter
      (fun (d : Dep.t) ->
        (not (String.equal d.src_label d.snk_label))
        && (is_aij d.src_ref || is_aij d.snk_ref)
        && (String.equal d.src_label "S2" || String.equal d.snk_label "S2"))
      deps
  in
  checkb "some S2/S3 crossing deps" true (crossing <> []);
  List.iter
    (fun (d : Dep.t) ->
      checkb
        (Printf.sprintf "S2/S3 dep not loop independent: %s"
           (Format.asprintf "%a" Dep.pp d))
        false d.li)
    crossing;
  (* And the identical A(I,K) pair is loop-independent. *)
  let li_deps = List.filter (fun (d : Dep.t) -> d.li) deps in
  checkb "A(I,K) S2->S3 dep is li" true
    (List.exists
       (fun (d : Dep.t) ->
         String.equal d.src_label "S2" && String.equal d.snk_label "S3")
       li_deps)

let test_gmtry_refined_vectors () =
  (* ikj-form Gaussian elimination: the per-slot sign refinement must
     recover the exact directions (0,+,+) and (+,+,0) that the coupled
     triangular subscripts imply — this is what lets the compiler reach
     the KJI memory order. *)
  let open Builder in
  let nn = v "N" in
  let p =
    program "ge" ~params:[ ("N", 16) ] ~arrays:[ ("RX", [ nn; nn ]) ]
      [
        do_ "I" (i 2) nn
          [
            do_ "J" (i 1) (v "I" -$ i 1)
              [
                do_ "K" (v "J" +$ i 1) nn
                  [
                    asn ~label:"GE"
                      (r "RX" [ v "I"; v "K" ])
                      (ld "RX" [ v "I"; v "K" ]
                      -! (ld "RX" [ v "I"; v "J" ] *! ld "RX" [ v "J"; v "K" ]));
                  ];
              ];
          ];
      ]
  in
  let deps =
    List.filter Dep.is_true_dep
      (An.deps_in_nest (List.hd (Program.top_loops p)))
  in
  let find snk_sub2 =
    List.find_opt
      (fun (d : Dep.t) ->
        d.kind = Dep.Flow
        && (not (Reference.equal d.src_ref d.snk_ref))
        && Reference.equal d.snk_ref
             (Reference.make "RX" [ Expr.Var "I"; Expr.Var snk_sub2 ]))
      deps
  in
  (match find "J" with
  | Some d ->
    checkb "write->RX(I,J): (0,+,+)" true
      (d.vec = [ D.Dist 0; D.Pos; D.Pos ])
  | None -> Alcotest.fail "missing flow to RX(I,J)");
  match
    List.find_opt
      (fun (d : Dep.t) ->
        d.kind = Dep.Flow
        && Reference.equal d.snk_ref
             (Reference.make "RX" [ Expr.Var "J"; Expr.Var "K" ]))
      deps
  with
  | Some d ->
    checkb "write->RX(J,K): (+,+,0)" true
      (d.vec = [ D.Pos; D.Pos; D.Dist 0 ])
  | None -> Alcotest.fail "missing flow to RX(J,K)"

(* Brute-force soundness of the direction lattice: interpret each element
   as a set of distances in [-3,3] and check [meet] never loses a
   distance allowed by both operands, and the predicates agree with the
   sets. *)
let all_elts =
  [
    D.Dist (-2); D.Dist (-1); D.Dist 0; D.Dist 1; D.Dist 2;
    D.Pos; D.Neg; D.NonNeg; D.NonPos; D.Ne; D.Any; D.Star;
  ]

let allows e d =
  match e with
  | D.Dist k -> d = k
  | D.Pos -> d > 0
  | D.Neg -> d < 0
  | D.NonNeg -> d >= 0
  | D.NonPos -> d <= 0
  | D.Ne -> d <> 0
  | D.Any | D.Star -> true

let sample = [ -3; -2; -1; 0; 1; 2; 3 ]

let test_lattice_predicates_sound () =
  List.iter
    (fun e ->
      checkb "may_pos sound" true
        (D.may_pos e = List.exists (fun d -> d > 0 && allows e d) sample);
      checkb "may_neg sound" true
        (D.may_neg e = List.exists (fun d -> d < 0 && allows e d) sample);
      checkb "may_zero sound" true (D.may_zero e = allows e 0))
    all_elts

let test_meet_sound () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let both = List.filter (fun d -> allows a d && allows b d) sample in
          match D.meet a b with
          | None ->
            checkb
              (Format.asprintf "meet %a %a = None implies empty" D.pp_elt a
                 D.pp_elt b)
              true (both = [])
          | Some m ->
            List.iter
              (fun d ->
                checkb
                  (Format.asprintf "meet %a %a keeps %d" D.pp_elt a D.pp_elt b d)
                  true (allows m d))
              both)
        all_elts)
    all_elts

let test_negate_sound () =
  List.iter
    (fun e ->
      List.iter
        (fun d ->
          checkb "negate mirrors the set" true
            (allows e d = allows (D.negate_elt e) (-d)))
        sample)
    all_elts

(* Vector-level soundness: interpret vectors as sets of distance tuples
   over the sample range and check the lexicographic predicates and
   restrictions against brute force. *)
let elt_gen = QCheck.Gen.oneofl all_elts
let vec_gen = QCheck.Gen.(list_size (int_range 1 3) elt_gen)
let vec_arb = QCheck.make ~print:D.to_string vec_gen

let rec tuples = function
  | [] -> [ [] ]
  | e :: rest ->
    let tails = tuples rest in
    List.concat_map
      (fun d -> if allows e d then List.map (fun t -> d :: t) tails else [])
      sample

let rec lex_sign = function
  | [] -> 0
  | d :: rest -> if d <> 0 then compare d 0 else lex_sign rest

let prop_lex_predicates_sound =
  QCheck.Test.make ~name:"lexicographic predicates sound (brute force)"
    ~count:300 vec_arb (fun v ->
      let ts = tuples v in
      let has_neg = List.exists (fun t -> lex_sign t < 0) ts in
      let has_nonneg = List.exists (fun t -> lex_sign t >= 0) ts in
      let has_pos = List.exists (fun t -> lex_sign t > 0) ts in
      (* Realisations within the sample imply the may-predicates; and
         lex_nonneg (a must-claim) implies no negative realisation. *)
      ((not has_neg) || D.may_lex_neg v)
      && ((not has_nonneg) || D.may_lex_nonneg v)
      && ((not has_pos) || D.may_lex_pos v)
      && ((not (D.lex_nonneg v)) || not has_neg))

let prop_restrict_sound =
  QCheck.Test.make ~name:"restrict_lex_nonneg keeps all nonneg tuples"
    ~count:300 vec_arb (fun v ->
      let ts = List.filter (fun t -> lex_sign t >= 0) (tuples v) in
      match D.restrict_lex_nonneg v with
      | None -> ts = []
      | Some v' ->
        List.for_all
          (fun t -> List.for_all2 allows v' t)
          ts)

let prop_restrict_pos_sound =
  QCheck.Test.make ~name:"restrict_lex_pos keeps all positive tuples"
    ~count:300 vec_arb (fun v ->
      let ts = List.filter (fun t -> lex_sign t > 0) (tuples v) in
      match D.restrict_lex_pos v with
      | None -> ts = []
      | Some v' ->
        List.for_all (fun t -> List.for_all2 allows v' t) ts)

(* --------------------------------------------------------------- Graph *)

let test_graph_scc () =
  let mk_dep src snk =
    {
      Dep.src_label = src;
      snk_label = snk;
      src_ref = Reference.make "A" [];
      snk_ref = Reference.make "A" [];
      kind = Dep.Flow;
      vec = [];
      loops = [];
      li = true;
      li_always = true;
      zero_prefix = 0;
    }
  in
  let g =
    G.build
      ~nodes:[ "S1"; "S2"; "S3"; "S4" ]
      ~deps:[ mk_dep "S1" "S2"; mk_dep "S2" "S3"; mk_dep "S3" "S2"; mk_dep "S3" "S4" ]
  in
  let sccs = G.sccs g in
  checki "three components" 3 (List.length sccs);
  checkb "S2,S3 together" true (List.mem [ "S2"; "S3" ] sccs);
  (* Topological order: S1 first, S4 last. *)
  checkb "S1 first" true (List.hd sccs = [ "S1" ]);
  checkb "S4 last" true (List.nth sccs 2 = [ "S4" ]);
  checkb "path S1->S4" true (G.has_path g "S1" "S4");
  checkb "no path S4->S1" false (G.has_path g "S4" "S1")

let test_graph_input_dropped () =
  let input_dep =
    {
      Dep.src_label = "S1";
      snk_label = "S2";
      src_ref = Reference.make "A" [];
      snk_ref = Reference.make "A" [];
      kind = Dep.Input;
      vec = [];
      loops = [];
      li = true;
      li_always = true;
      zero_prefix = 0;
    }
  in
  let g = G.build ~nodes:[ "S1"; "S2" ] ~deps:[ input_dep ] in
  checki "no edges" 0 (List.length (G.edges g))

(* ------------------------------------------------- interval prover --- *)

module P = Locality_dep.Prove

let aff e =
  match Affine.of_expr e with
  | Some a -> a
  | None -> Alcotest.fail "expected affine"

let header index lb ub step = { Loop.index; lb; ub; step }

let test_prove_rectangular () =
  let open Expr in
  let b = P.of_headers [ header "I" (Int 1) (Var "N") 1 ] in
  checkb "I - 1 >= 0" true (P.nonneg b (aff (Sub (Var "I", Int 1))));
  checkb "N - I >= 0" true (P.nonneg b (aff (Sub (Var "N", Var "I"))));
  checkb "I >= 1" true (P.positive b (aff (Var "I")));
  checkb "I - N - 1 < 0" true
    (P.negative b (aff (Sub (Var "I", Add (Var "N", Int 1)))));
  checkb "I - 2 not provably nonneg" false
    (P.nonneg b (aff (Sub (Var "I", Int 2))));
  (* Parameters are assumed >= 1. *)
  checkb "N >= 1" true (P.positive b (aff (Var "N")));
  checkb "N - 1 >= 0" true (P.nonneg b (aff (Sub (Var "N", Int 1))));
  checkb "N - 2 unknown" false (P.nonneg b (aff (Sub (Var "N", Int 2))))

let test_prove_triangular () =
  let open Expr in
  let b =
    P.of_headers
      [
        header "I" (Int 1) (Var "N") 1;
        header "J" (Add (Var "I", Int 1)) (Var "N") 1;
      ]
  in
  checkb "J - I >= 1" true (P.positive b (aff (Sub (Var "J", Var "I"))));
  checkb "I - J < 0" true (P.negative b (aff (Sub (Var "I", Var "J"))));
  checkb "J - I <> 0" true (P.nonzero b (aff (Sub (Var "J", Var "I"))));
  (* Independent loops: the sign of I - J is genuinely unknown. *)
  let b2 =
    P.of_headers
      [ header "I" (Int 1) (Var "N") 1; header "J" (Int 1) (Var "N") 1 ]
  in
  checkb "independent not nonneg" false (P.nonneg b2 (aff (Sub (Var "I", Var "J"))));
  checkb "independent not negative" false
    (P.negative b2 (aff (Sub (Var "I", Var "J"))))

let test_prove_negative_step () =
  let open Expr in
  (* DO I = N, 1, -1 iterates the same values as DO I = 1, N. *)
  let b = P.of_headers [ header "I" (Var "N") (Int 1) (-1) ] in
  checkb "I >= 1 downward" true (P.positive b (aff (Var "I")));
  checkb "N - I >= 0 downward" true (P.nonneg b (aff (Sub (Var "N", Var "I"))))

let prop_prove_sound_brute_force =
  (* Random affine facts over a fixed box: whatever the prover claims
     must hold at every point (it may refuse true facts, never assert
     false ones). *)
  let gen =
    QCheck.Gen.(
      quad (int_range (-3) 3) (int_range (-3) 3) (int_range (-6) 6)
        (int_range 0 1))
  in
  QCheck.Test.make ~name:"interval prover sound (brute force)" ~count:300
    (QCheck.make gen) (fun (ci, cj, c0, tri) ->
      let jlb = if tri = 1 then Expr.Var "I" else Expr.Int 1 in
      let b =
        P.of_headers
          [ header "I" (Expr.Int 1) (Expr.Int 5) 1; header "J" jlb (Expr.Int 8) 1 ]
      in
      let a =
        aff
          (Expr.Add
             ( Expr.Add
                 ( Expr.Mul (Expr.Int ci, Expr.Var "I"),
                   Expr.Mul (Expr.Int cj, Expr.Var "J") ),
               Expr.Int c0 ))
      in
      let values = ref [] in
      for i = 1 to 5 do
        for j = (if tri = 1 then i else 1) to 8 do
          values := ((ci * i) + (cj * j) + c0) :: !values
        done
      done;
      let all p = List.for_all p !values in
      ((not (P.nonneg b a)) || all (fun v -> v >= 0))
      && ((not (P.positive b a)) || all (fun v -> v >= 1))
      && ((not (P.negative b a)) || all (fun v -> v < 0))
      && ((not (P.nonzero b a)) || all (fun v -> v <> 0)))

(* --------------------------- end-to-end coverage by brute force ----- *)

(* Random depth-2 nests with affine subscripts (coupled, scaled, constant
   and transposed dimensions all possible). Every memory dependence that
   actually occurs when the iteration space is enumerated exhaustively
   must be admitted by some reported dependence vector — the analyzer is
   allowed to over-approximate, never to miss. *)

let nsize = 6

let gen_dep_nest : Loop.t QCheck.Gen.t =
  let open QCheck.Gen in
  let coeffs = oneofl [ (1, 0); (0, 1); (1, 1); (2, 0); (0, 2); (1, -1); (0, 0) ] in
  let gen_sub =
    let* a, b = coeffs in
    let* c = int_range (-2) 2 in
    (* a*I + b*J + c as an Expr *)
    let term k var acc =
      if k = 0 then acc
      else
        let t =
          if k = 1 then Expr.Var var else Expr.Mul (Expr.Int k, Expr.Var var)
        in
        match acc with
        | None -> Some t
        | Some e -> Some (Expr.Add (e, t))
    in
    let e = term a "I" None in
    let e = term b "J" e in
    let e =
      match e with
      | None -> Expr.Int c
      | Some e -> if c = 0 then e else Expr.Add (e, Expr.Int c)
    in
    return e
  in
  let gen_ref =
    let* name = oneofl [ "A"; "B" ] in
    let* s1 = gen_sub and* s2 = gen_sub in
    return (Reference.make name [ s1; s2 ])
  in
  let counter = ref 0 in
  let gen_stmt =
    let* lhs = gen_ref in
    let* r1 = gen_ref in
    incr counter;
    return
      (Loop.Stmt
         (Stmt.assign
            ~label:(Printf.sprintf "S%d" !counter)
            lhs
            (Stmt.Binop (Stmt.Fadd, Stmt.Load r1, Stmt.Const 1.0))))
  in
  let* nstmts = int_range 1 2 in
  let* stmts = list_repeat nstmts gen_stmt in
  counter := 0;
  let open Builder in
  match do_ "I" (i 1) (i nsize) [ do_ "J" (i 1) (i nsize) stmts ] with
  | Loop.Loop l -> return l
  | Loop.Stmt _ -> assert false

let admits_elt (e : D.elt) d =
  match e with
  | D.Dist k -> d = k
  | D.Pos -> d > 0
  | D.Neg -> d < 0
  | D.NonNeg -> d >= 0
  | D.NonPos -> d <= 0
  | D.Ne -> d <> 0
  | D.Any | D.Star -> true

(* All (statement, reference, access) triples of the nest body, in
   within-iteration execution order: reads of a statement before its
   write, statements in textual order. *)
let ordered_accesses (nest : Loop.t) =
  List.concat_map
    (fun s ->
      let reads =
        List.filter_map
          (fun (r, acc) -> if acc = `Read then Some (s, r, `Read) else None)
          (Stmt.refs s)
      in
      let writes =
        List.filter_map
          (fun (r, acc) -> if acc = `Write then Some (s, r, `Write) else None)
          (Stmt.refs s)
      in
      reads @ writes)
    (Loop.statements nest)

let eval_ref (r : Reference.t) i j =
  let env = function
    | "I" -> i
    | "J" -> j
    | v -> failwith ("unexpected var " ^ v)
  in
  (r.Reference.array, List.map (fun s -> Expr.eval s env) r.Reference.subs)

let covered deps ~src:(s1, r1, a1) ~snk:(s2, r2, a2) ~dist =
  let kind = Dep.kind_of a1 a2 in
  List.exists
    (fun (d : Dep.t) ->
      d.Dep.kind = kind
      && d.Dep.src_label = s1.Stmt.label
      && d.Dep.snk_label = s2.Stmt.label
      && Reference.to_string d.Dep.src_ref = Reference.to_string r1
      && Reference.to_string d.Dep.snk_ref = Reference.to_string r2
      && List.for_all2 admits_elt d.Dep.vec dist
      && (List.exists (fun x -> x <> 0) dist || d.Dep.li))
    deps

let prop_deps_cover_brute_force =
  let print l =
    Pretty.program_to_string
      (Program.make ~name:"cover"
         [
           Decl.make "A" [ Expr.Int 99; Expr.Int 99 ];
           Decl.make "B" [ Expr.Int 99; Expr.Int 99 ];
         ]
         [ Loop.Loop l ])
  in
  QCheck.Test.make ~name:"dependence analysis covers brute force" ~count:150
    (QCheck.make ~print gen_dep_nest)
    (fun nest ->
      let deps = An.deps_in_nest nest in
      let accs = ordered_accesses nest in
      let indexed = List.mapi (fun k a -> (k, a)) accs in
      List.for_all
        (fun (k1, ((_, r1, a1) as acc1)) ->
          List.for_all
            (fun (k2, ((_, r2, a2) as acc2)) ->
              let (arr1 : string), _ = eval_ref r1 1 1
              and arr2, _ = eval_ref r2 1 1 in
              if arr1 <> arr2 || (a1 = `Read && a2 = `Read) then true
              else
                (* enumerate iteration pairs (i1,j1) -> (i2,j2) with
                   acc1 executing strictly before acc2 *)
                let ok = ref true in
                for i1 = 1 to nsize do
                  for j1 = 1 to nsize do
                    for i2 = 1 to nsize do
                      for j2 = 1 to nsize do
                        let earlier =
                          (i1, j1) < (i2, j2)
                          || ((i1, j1) = (i2, j2) && k1 < k2)
                        in
                        if earlier then begin
                          let _, c1 = eval_ref r1 i1 j1 in
                          let _, c2 = eval_ref r2 i2 j2 in
                          if c1 = c2 then
                            let dist = [ i2 - i1; j2 - j1 ] in
                            if
                              not
                                (covered deps ~src:acc1 ~snk:acc2 ~dist)
                            then ok := false
                        end
                      done
                    done
                  done
                done;
                !ok)
            indexed)
        indexed)

(* Same idea at depth 3 with triangular bounds and coupled subscripts:
   stresses the interval prover and the per-slot sign refinement. *)

let enumerate_iters (nest : Loop.t) =
  let headers = Loop.loops_on_spine nest in
  let out = ref [] in
  let rec go env = function
    | [] -> out := List.rev env :: !out
    | (h : Loop.header) :: rest ->
      let e name =
        match List.assoc_opt name env with
        | Some v -> v
        | None -> failwith ("unbound " ^ name)
      in
      let lb = Expr.eval h.Loop.lb e and ub = Expr.eval h.Loop.ub e in
      let v = ref lb in
      while
        (h.Loop.step > 0 && !v <= ub) || (h.Loop.step < 0 && !v >= ub)
      do
        go ((h.Loop.index, !v) :: env) rest;
        v := !v + h.Loop.step
      done
  in
  go [] headers;
  List.rev !out

let nsize3 = 5

let gen_dep_nest3 : Loop.t QCheck.Gen.t =
  let open QCheck.Gen in
  let open Builder in
  let gen_sub =
    let* shape =
      oneofl
        [ `Var "I"; `Var "J"; `Var "K"; `Sum ("I", "J"); `Sum ("J", "K");
          `Diff ("I", "J"); `Scale "K"; `Const ]
    in
    let* c = int_range (-1) 1 in
    let base =
      match shape with
      | `Var x -> v x
      | `Sum (x, y) -> v x +$ v y
      | `Diff (x, y) -> v x -$ v y +$ i nsize3 (* keep it positive-ish *)
      | `Scale x -> i 2 *$ v x
      | `Const -> i 3
    in
    return (if c = 0 then base else base +$ i c)
  in
  let gen_ref =
    let* name = oneofl [ "A"; "B" ] in
    let* s1 = gen_sub and* s2 = gen_sub in
    return (Reference.make name [ s1; s2 ])
  in
  let counter = ref 0 in
  let gen_stmt =
    let* lhs = gen_ref in
    let* r1 = gen_ref in
    incr counter;
    return
      (Loop.Stmt
         (Stmt.assign
            ~label:(Printf.sprintf "T%d" !counter)
            lhs
            (Stmt.Binop (Stmt.Fadd, Stmt.Load r1, Stmt.Const 1.0))))
  in
  let* nstmts = int_range 1 2 in
  let* stmts = list_repeat nstmts gen_stmt in
  counter := 0;
  let* jb = oneofl [ (i 1, i nsize3); (v "I", i nsize3); (i 1, v "I") ] in
  let* kb =
    oneofl [ (i 1, i nsize3); (v "J", i nsize3); (i 1, v "J"); (v "I", i nsize3) ]
  in
  let jlb, jub = jb and klb, kub = kb in
  match
    do_ "I" (i 1) (i nsize3) [ do_ "J" jlb jub [ do_ "K" klb kub stmts ] ]
  with
  | Loop.Loop l -> return l
  | Loop.Stmt _ -> assert false

let eval_ref_env (r : Reference.t) env =
  let e name =
    match List.assoc_opt name env with
    | Some v -> v
    | None -> failwith ("unbound " ^ name)
  in
  (r.Reference.array, List.map (fun s -> Expr.eval s e) r.Reference.subs)

let prop_deps_cover_brute_force_deep3 =
  let print l =
    Pretty.program_to_string
      (Program.make ~name:"cover3"
         [
           Decl.make "A" [ Expr.Int 99; Expr.Int 99 ];
           Decl.make "B" [ Expr.Int 99; Expr.Int 99 ];
         ]
         [ Loop.Loop l ])
  in
  QCheck.Test.make
    ~name:"dependence analysis covers brute force (triangular depth 3)"
    ~count:80
    (QCheck.make ~print gen_dep_nest3)
    (fun nest ->
      let deps = An.deps_in_nest nest in
      let iters = Array.of_list (enumerate_iters nest) in
      let indexed = List.mapi (fun k a -> (k, a)) (ordered_accesses nest) in
      List.for_all
        (fun (k1, ((_, r1, a1) as acc1)) ->
          List.for_all
            (fun (k2, ((_, r2, a2) as acc2)) ->
              if
                r1.Reference.array <> r2.Reference.array
                || (a1 = `Read && a2 = `Read)
              then true
              else begin
                let ok = ref true in
                Array.iteri
                  (fun x1 v1 ->
                    Array.iteri
                      (fun x2 v2 ->
                        let earlier = x1 < x2 || (x1 = x2 && k1 < k2) in
                        if earlier && !ok then begin
                          let _, c1 = eval_ref_env r1 v1 in
                          let _, c2 = eval_ref_env r2 v2 in
                          if c1 = c2 then begin
                            let dist =
                              List.map2
                                (fun (_, b) (_, a) -> b - a)
                                v2 v1
                            in
                            if not (covered deps ~src:acc1 ~snk:acc2 ~dist)
                            then ok := false
                          end
                        end)
                      iters)
                  iters;
                !ok
              end)
            indexed)
        indexed)

(* Negative control: the coverage predicate must actually detect a
   missing dependence, otherwise the property above is vacuous. *)
let test_coverage_check_not_vacuous () =
  let open Builder in
  let nest =
    match
      do_ "I" (i 1) (i nsize)
        [
          do_ "J" (i 1) (i nsize)
            [
              asn ~label:"S1"
                (r "A" [ v "I"; v "J" ])
                (ld "A" [ v "I" -$ i 1; v "J" ] +! f 1.0);
            ];
        ]
    with
    | Loop.Loop l -> l
    | Loop.Stmt _ -> assert false
  in
  match ordered_accesses nest with
  | [ ((_, _, `Read) as src); ((_, _, `Write) as snk) ] ->
    (* A(I-1,J) read at iteration (i+1,j) collides with the write at
       (i,j): flow distance (1,0) from the write, anti distance... here
       check the write->read flow pair the analyzer must report. *)
    checkb "real dep covered" true
      (covered (An.deps_in_nest nest) ~src:snk ~snk:src ~dist:[ 1; 0 ]);
    checkb "empty dep list is caught" false
      (covered [] ~src:snk ~snk:src ~dist:[ 1; 0 ])
  | _ -> Alcotest.fail "unexpected access shape"

(* Fuzzer-found: a reversed loop's header carries (lb, ub) = (start,
   end), so for DO J = 2, 1, -1 the value range is [ub, lb]. The
   sign-hypothesis feasibility check read them as [min, max], proving
   reversed-loop iterations out of bounds and dropping the output
   dependences between these two writes — which let distribution
   separate them and change the final writer of A(3,2,1). *)
let test_reversed_loop_output_dep () =
  let p =
    Locality_lang.Lower.parse_program
      "PROGRAM p\n\
       PARAMETER (N = 4)\n\
       REAL*8 A(N+2, N+2, N+2)\n\
       S = 0.5\n\
       DO I = 1, N-1\n\
      \  DO J = 2, 1, -1\n\
      \    DO K = 1, 1\n\
      \      A(3,2,1) = 1.0\n\
      \    ENDDO\n\
      \    A(I,J,1) = S\n\
      \  ENDDO\n\
       ENDDO\n\
       END\n"
  in
  let nest = List.hd (Program.top_loops p) in
  let cross =
    List.filter
      (fun (d : Dep.t) ->
        d.Dep.kind = Dep.Output
        && (not (String.equal d.Dep.src_label d.Dep.snk_label))
        && String.equal d.Dep.src_ref.Reference.array "A")
      (An.deps_in_nest nest)
  in
  checkb "output dep between the two writes" true (cross <> []);
  checkb "reported in both directions" true
    (List.exists
       (fun (d : Dep.t) ->
         List.exists
           (fun (d' : Dep.t) ->
             String.equal d.Dep.src_label d'.Dep.snk_label
             && String.equal d.Dep.snk_label d'.Dep.src_label)
           cross)
       cross)

let props =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_lex_predicates_sound;
      prop_restrict_sound;
      prop_restrict_pos_sound;
      prop_deps_cover_brute_force;
      prop_deps_cover_brute_force_deep3;
      prop_prove_sound_brute_force;
    ]

let suite =
  props
  @ [
    ("direction predicates", `Quick, test_direction_predicates);
    ("lexicographic tests", `Quick, test_lex);
    ("meet lattice", `Quick, test_meet);
    ("restrict operations", `Quick, test_restrict);
    ("vector permutation", `Quick, test_permute_vec);
    ("small-constant (RefGroup 1b)", `Quick, test_small_constant);
    ("matmul dependences", `Quick, test_matmul_deps);
    ("matmul input deps", `Quick, test_matmul_input_deps);
    ("stencil distance (+1,-1)", `Quick, test_stencil_distance);
    ("ziv independence", `Quick, test_ziv_independent);
    ("strong siv out of range", `Quick, test_strong_siv_out_of_range);
    ("step-scaled distances", `Quick, test_step_scaled_distance);
    ("triangular range refinement", `Quick, test_triangular_range_refinement);
    ("prover rectangular facts", `Quick, test_prove_rectangular);
    ("prover triangular facts", `Quick, test_prove_triangular);
    ("prover negative step", `Quick, test_prove_negative_step);
    ("reversed-loop output dep", `Quick, test_reversed_loop_output_dep);
    ("gmtry refined vectors", `Quick, test_gmtry_refined_vectors);
    ("lattice predicates sound", `Quick, test_lattice_predicates_sound);
    ("meet sound (brute force)", `Quick, test_meet_sound);
    ("negate sound (brute force)", `Quick, test_negate_sound);
    ("coverage check not vacuous", `Quick, test_coverage_check_not_vacuous);
    ("graph scc + topo order", `Quick, test_graph_scc);
    ("graph drops input deps", `Quick, test_graph_input_dropped);
  ]
