(* MEMORIA_REPLAY=stream — fused capture+simulate — against v2
   capture-then-replay. The streaming mode's contract is bit-identity:
   the run-chunk sink feeds the same chunk stream to the same simulator
   that replay would see, so every field of the resulting run record —
   whole-program and marked-region counts, ops, modelled times — must
   equal the [Runs] result exactly, on every program, geometry and
   hierarchy, without ever materialising a trace. *)

open Locality_ir
module Cache = Locality_cachesim.Cache
module Machine = Locality_cachesim.Machine
module Measure = Locality_interp.Measure
module Kernels = Locality_suite.Kernels
module Programs = Locality_suite.Programs

let small_assoc =
  { Cache.name = "sa4"; size_bytes = 4096; assoc = 4; line_bytes = 64 }

let tiny_dm =
  { Cache.name = "dm"; size_bytes = 1024; assoc = 1; line_bytes = 32 }

let configs = [ Machine.cache1; Machine.cache2; small_assoc; tiny_dm ]

(* Every other statement label, so the marked-region (optimized) counts
   are exercised with a nontrivial, deterministic subset. *)
let some_labels p =
  let rec stmts = function
    | Loop.Stmt s -> [ s.Stmt.label ]
    | Loop.Loop l -> List.concat_map stmts l.Loop.body
  in
  List.concat_map stmts p.Program.body
  |> List.filteri (fun i _ -> i mod 2 = 0)

let check_program ?params ~configs name p =
  let labels = some_labels p in
  let prep mode = Measure.prepare ~mode ?params ~store:None p in
  let runs = prep Measure.Runs and stream = prep Measure.Stream in
  List.iter
    (fun config ->
      let replay pr =
        Measure.replay_prepared ~config ~optimized_labels:labels pr
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s on %s: stream = runs" name config.Cache.name)
        true
        (replay runs = replay stream))
    configs

(* The whole suite, both reference geometries. *)
let test_suite_stream () =
  List.iter
    (fun (e : Programs.entry) ->
      check_program ~configs:[ Machine.cache1; Machine.cache2 ]
        e.Programs.name
        (Programs.program_of ~n:8 e))
    Programs.all

(* Kernels across all four geometries, including the tiny direct-mapped
   one where conflict behaviour is at its most order-sensitive. *)
let test_kernels_stream () =
  List.iter
    (fun (name, p) -> check_program ~configs name p)
    ([ ("cholesky", Kernels.cholesky 12); ("lu", Kernels.lu 12);
       ("adi", Kernels.adi_fragment 12) ]
    @ List.map
        (fun o -> ("matmul-" ^ o, Kernels.matmul ~order:o 10))
        Kernels.matmul_orders)

(* Parameter overrides flow through the streaming path like any other. *)
let test_params_stream () =
  match Programs.find "ocean" with
  | None -> Alcotest.fail "suite program ocean missing"
  | Some e ->
    check_program
      ~params:[ ("N", 20) ]
      ~configs:[ Machine.cache2; tiny_dm ]
      "ocean N=20"
      (Programs.program_of e)

(* Hierarchy measurements under Stream use the same fused sink and must
   also be field-identical. *)
let test_hierarchy_stream () =
  List.iter
    (fun (name, p) ->
      let prep mode = Measure.prepare ~mode ~store:None p in
      let a = Measure.replay_hierarchy_prepared (prep Measure.Runs) in
      let b = Measure.replay_hierarchy_prepared (prep Measure.Stream) in
      Alcotest.(check bool)
        (Printf.sprintf "%s: hierarchy stream = runs" name)
        true (a = b))
    [
      ("matmul", Kernels.matmul 12);
      ("lu", Kernels.lu 12);
      ("gmtry", Kernels.gmtry 12);
    ]

let suite =
  [
    Alcotest.test_case "suite programs: stream = runs" `Quick
      test_suite_stream;
    Alcotest.test_case "kernels x 4 geometries: stream = runs" `Quick
      test_kernels_stream;
    Alcotest.test_case "parameter overrides" `Quick test_params_stream;
    Alcotest.test_case "hierarchy: stream = runs" `Quick
      test_hierarchy_stream;
  ]
