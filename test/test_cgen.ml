(* C code generation: textual checks always; when a C compiler is
   available, compile and run the generated code and compare its checksum
   with the interpreter's — an end-to-end cross-language validation of
   the transformed programs. *)

open Locality_ir
module C = Locality_core
module S = Locality_suite
module Exec = Locality_interp.Exec

let checkb = Alcotest.check Alcotest.bool

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_cgen_text () =
  let p = S.Kernels.matmul ~order:"JKI" 16 in
  let c = Pretty_c.program_to_c p in
  checkb "has kernel fn" true (contains c "void kernel(void)");
  checkb "has for loop" true (contains c "for (long j = 1; j <= n; j += 1)");
  checkb "linearized subscript" true (contains c "c[i + j * (n + 1)]");
  checkb "has driver" true (contains c "int main(void)");
  let nodriver = Pretty_c.program_to_c ~driver:false p in
  checkb "driver optional" false (contains nodriver "int main")

let test_cgen_min_bounds () =
  let p = S.Kernels.transpose 16 in
  let nest = List.hd (Program.top_loops p) in
  match C.Tiling.tile ~sizes:4 nest ~band:[ "I"; "J" ] with
  | None -> Alcotest.fail "tile failed"
  | Some tiled ->
    let p' = Program.map_body (fun _ -> [ Loop.Loop tiled ]) p in
    let c = Pretty_c.program_to_c p' in
    checkb "MIN becomes imin" true (contains c "imin(")

let interp_checksum p =
  let r = Exec.run p in
  List.fold_left
    (fun acc (_, a) -> Array.fold_left ( +. ) acc a)
    0.0 r.Exec.arrays

let compiler =
  lazy
    (List.find_opt
       (fun cc -> Sys.command (Printf.sprintf "command -v %s >/dev/null 2>&1" cc) = 0)
       [ "cc"; "gcc"; "clang" ])

let run_c_checksum name csrc =
  match Lazy.force compiler with
  | None -> None
  | Some cc ->
    let dir = Filename.get_temp_dir_name () in
    let base = Filename.concat dir ("memoria_" ^ name) in
    let cfile = base ^ ".c" and exe = base ^ ".out" and outf = base ^ ".txt" in
    let oc = open_out cfile in
    output_string oc csrc;
    close_out oc;
    if Sys.command (Printf.sprintf "%s -O1 -o %s %s -lm 2>/dev/null" cc exe cfile) <> 0
    then None
    else if Sys.command (Printf.sprintf "%s > %s" exe outf) <> 0 then None
    else begin
      let ic = open_in outf in
      let line = input_line ic in
      close_in ic;
      Some (float_of_string line)
    end

let check_native name p =
  match run_c_checksum name (Pretty_c.program_to_c p) with
  | None -> () (* no compiler available: textual tests still ran *)
  | Some native ->
    let expected = interp_checksum p in
    let scale = Float.max 1.0 (Float.abs expected) in
    checkb
      (Printf.sprintf "%s: native %.6f == interp %.6f" name native expected)
      true
      (Float.abs (native -. expected) /. scale < 1e-6)

let test_native_matmul () =
  check_native "mm_orig" (S.Kernels.matmul ~order:"IJK" 20);
  let p', _ = C.Compound.run_program ~cls:4 (S.Kernels.matmul ~order:"IJK" 20) in
  check_native "mm_opt" p'

let test_native_cholesky () =
  let p = S.Kernels.cholesky 12 in
  let p', _ = C.Compound.run_program ~cls:4 p in
  check_native "chol_orig" p;
  check_native "chol_opt" p'

let test_native_tiled_transpose () =
  let p = S.Kernels.transpose 20 in
  let nest = List.hd (Program.top_loops p) in
  match C.Tiling.tile ~sizes:6 nest ~band:[ "I"; "J" ] with
  | None -> Alcotest.fail "tile failed"
  | Some tiled ->
    check_native "transpose_tiled"
      (Program.map_body (fun _ -> [ Loop.Loop tiled ]) p)

let test_native_unrolled () =
  let p = S.Kernels.matmul ~order:"JKI" 11 in
  let nest = List.hd (Program.top_loops p) in
  match C.Unroll.unroll_and_jam nest ~loop:"K" ~factor:3 with
  | None -> Alcotest.fail "unroll failed"
  | Some block -> check_native "mm_unrolled" (Program.map_body (fun _ -> block) p)

(* Fmin/Fmax used to hit an [assert false] in Pretty_c; they must emit
   C fmin/fmax calls, and integral float constants must keep a decimal
   point (plain %.17g prints 4.0 as "4", turning 1.0/4.0 into C integer
   division — a checksum bug the differential fuzzer caught). *)
let minmax_program =
  lazy
    (Locality_lang.Lower.parse_program
       "PROGRAM MINMAXC\n\
        PARAMETER (N = 18)\n\
        REAL*8 A(N, N)\n\
        REAL*8 B(N, N)\n\
        DO I = 1, N\n\
        DO J = 1, N\n\
        A(I,J) = MAX(MIN(B(J,I), 2.5), 1.0 / 4.0) + MIN(A(I,J), B(I,J))\n\
        ENDDO\n\
        ENDDO\n\
        END\n")

let test_native_minmax () =
  let p = Lazy.force minmax_program in
  let nest = List.hd (Program.top_loops p) in
  let tiled =
    match C.Tiling.tile ~sizes:5 nest ~band:[ "I"; "J" ] with
    | None -> Alcotest.fail "tile failed"
    | Some tiled -> Program.map_body (fun _ -> [ Loop.Loop tiled ]) p
  in
  let c = Pretty_c.program_to_c tiled in
  checkb "Fmin becomes fmin" true (contains c "fmin(");
  checkb "Fmax becomes fmax" true (contains c "fmax(");
  checkb "tiled bounds use imin" true (contains c "imin(");
  checkb "integral consts keep the point" true (contains c "(1.0 / 4.0)");
  check_native "minmax_tiled" tiled;
  match C.Unroll.unroll_and_jam nest ~loop:"I" ~factor:2 with
  | None -> Alcotest.fail "unroll failed"
  | Some block ->
    let unrolled = Program.map_body (fun _ -> block) p in
    checkb "unrolled equivalent" true (Exec.equivalent p unrolled);
    check_native "minmax_unrolled" unrolled

let test_native_register_blocked () =
  (* The full step-3 form: stepped main loop, Div remainder bounds,
     scalar temporaries with store-backs. *)
  let p = S.Kernels.matmul ~order:"IJK" 13 in
  let nest = List.hd (Program.top_loops p) in
  match C.Unroll.unroll_and_jam nest ~loop:"J" ~factor:4 with
  | None -> Alcotest.fail "unroll failed"
  | Some block -> (
    match
      C.Unroll.map_main block ~loop:"J" ~factor:4 ~f:(fun main ->
          (C.Scalar_replacement.apply main).C.Scalar_replacement.nest)
    with
    | None -> Alcotest.fail "main nest not found"
    | Some block' ->
      let p' = Program.map_body (fun _ -> block') p in
      checkb "still equivalent to original" true (Exec.equivalent p p');
      check_native "mm_register_blocked" p')

let suite =
  [
    ("c text generation", `Quick, test_cgen_text);
    ("c generation of MIN bounds", `Quick, test_cgen_min_bounds);
    ("native matmul checksum", `Quick, test_native_matmul);
    ("native cholesky checksum", `Quick, test_native_cholesky);
    ("native tiled transpose checksum", `Quick, test_native_tiled_transpose);
    ("native unrolled matmul checksum", `Quick, test_native_unrolled);
    ("native min/max tiled+unrolled checksum", `Quick, test_native_minmax);
    ("native register-blocked checksum", `Quick, test_native_register_blocked);
  ]
