(* The differential fuzzing harness: generator determinism, shrinking,
   a small live campaign, and replay of the minimized reproducer corpus
   (every bug the fuzzer has found and we have fixed stays fixed). *)

open Locality_ir
module Fuzz = Locality_fuzz

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

(* Generation is a pure function of (seed, index): same inputs, same
   program text; and programs are always well-formed. *)
let test_gen_deterministic () =
  List.iter
    (fun index ->
      let p1 = Fuzz.Gen.generate ~seed:7 ~index ~size:24 in
      let p2 = Fuzz.Gen.generate ~seed:7 ~index ~size:24 in
      checks
        (Printf.sprintf "index %d reproducible" index)
        (Pretty.program_to_string p1)
        (Pretty.program_to_string p2);
      checkb
        (Printf.sprintf "index %d valid" index)
        true
        (match Program.validate p1 with Ok () -> true | Error _ -> false))
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]

let test_gen_varies () =
  let texts =
    List.map
      (fun index ->
        Pretty.program_to_string (Fuzz.Gen.generate ~seed:7 ~index ~size:24))
      (List.init 10 Fun.id)
  in
  checkb "indices explore distinct programs" true
    (List.length (List.sort_uniq String.compare texts) > 5)

(* Shrinking only ever returns a smaller program that still satisfies
   the failure predicate and still validates. *)
let test_shrink () =
  let p = Fuzz.Gen.generate ~seed:3 ~index:0 ~size:24 in
  let fails q = List.length q.Program.decls >= 1 in
  let shrunk, steps = Fuzz.Shrink.shrink ~fails p in
  checkb "still fails" true (fails shrunk);
  checkb "not larger" true (Fuzz.Shrink.size shrunk <= Fuzz.Shrink.size p);
  checkb "took steps" true (steps > 0);
  checkb "still valid" true
    (match Program.validate shrunk with Ok () -> true | Error _ -> false)

(* A small campaign over every oracle must come back clean, and be
   byte-for-byte identical for any worker count. *)
let test_campaign_clean_and_jobs_independent () =
  let run jobs =
    Fuzz.Harness.run ~jobs ~seed:11 ~count:25 ~max_size:20 ()
  in
  let o1 = run 1 and o4 = run 4 in
  checki "generated" 25 o1.Fuzz.Harness.generated;
  checkb "no failures (jobs=1)" true (o1.Fuzz.Harness.failures = []);
  checkb "no failures (jobs=4)" true (o4.Fuzz.Harness.failures = []);
  checki "same failure count"
    (List.length o1.Fuzz.Harness.failures)
    (List.length o4.Fuzz.Harness.failures)

(* Replay the minimized reproducers: each file is a bug the fuzzer
   found; parsing it and running the full oracle stack must now be
   silent. *)
let test_corpus_replay () =
  let entries = Fuzz.Corpus.load_dir "corpus" in
  checkb "corpus is not empty" true (List.length entries >= 5) ;
  List.iter
    (fun (file, p) ->
      match Fuzz.Oracle.check p with
      | [] -> ()
      | findings ->
        Alcotest.failf "%s: %s" file
          (String.concat "; "
             (List.map (fun f -> f.Fuzz.Oracle.detail) findings)))
    entries

let suite =
  [
    ("generator determinism", `Quick, test_gen_deterministic);
    ("generator variety", `Quick, test_gen_varies);
    ("shrinker contract", `Quick, test_shrink);
    ( "campaign clean and jobs-independent",
      `Quick,
      test_campaign_clean_and_jobs_independent );
    ("corpus replay", `Quick, test_corpus_replay);
  ]
