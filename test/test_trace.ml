(* The batched trace engine: trace replay must be bit-identical to the
   legacy per-access observer path, on single caches and hierarchies;
   the domain pool must neither reorder nor change results. *)

module Cache = Locality_cachesim.Cache
module Chunk = Locality_cachesim.Chunk
module Hierarchy = Locality_cachesim.Hierarchy
module Machine = Locality_cachesim.Machine
module Exec = Locality_interp.Exec
module Fastexec = Locality_interp.Fastexec
module Trace = Locality_interp.Trace
module Measure = Locality_interp.Measure
module Pool = Locality_par.Pool
module Kernels = Locality_suite.Kernels
module Programs = Locality_suite.Programs
module Table2 = Locality_stats.Table2

let stats_pp ppf (s : Cache.stats) =
  Format.fprintf ppf
    "{accesses=%d; hits=%d; misses=%d; cold=%d; writes=%d; write_hits=%d; \
     writebacks=%d}"
    s.Cache.accesses s.Cache.hits s.Cache.misses s.Cache.cold_misses
    s.Cache.writes s.Cache.write_hits s.Cache.writebacks

let stats_t = Alcotest.testable stats_pp ( = )

(* Run [p] with the legacy observer, every access fed straight into a
   cache via [access_full] (loads and stores, so writebacks happen). *)
let observer_stats config p =
  let cache = Cache.create config in
  let observer =
    {
      Exec.on_access =
        (fun ~label:_ ~addr ~write -> ignore (Cache.access_full cache ~write addr));
      on_stmt = (fun ~label:_ -> ());
    }
  in
  ignore (Fastexec.run ~observer p);
  Cache.stats cache

(* Same program through the buffered-trace path: interpreted once into
   captured chunks, then replayed with [simulate_chunk]. A small chunk
   size forces multiple flushes. *)
let replay_stats ?(chunk_records = 256) config p =
  let tr, finish = Trace.capturing ~chunk_records () in
  ignore (Fastexec.run_traced tr p);
  let cap = finish () in
  let cache = Cache.create config in
  Trace.iter_chunks cap (fun c -> Cache.simulate_chunk cache c);
  Cache.stats cache

(* A kernel mix with loads, stores and (on the small cache2 geometry)
   capacity evictions of dirty lines, i.e. writebacks. *)
let test_programs =
  [
    ("matmul", Kernels.matmul ~order:"IJK" 24);
    ("erlebacher", Kernels.erlebacher_hand 12);
    ("transpose", Kernels.transpose 40);
    ("cholesky", Kernels.cholesky 24);
  ]

let test_replay_identical () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun config ->
          let legacy = observer_stats config p in
          let replayed = replay_stats config p in
          Alcotest.check stats_t
            (Printf.sprintf "%s on %s" name config.Cache.name)
            legacy replayed;
          Alcotest.(check bool)
            (Printf.sprintf "%s on %s saw writes" name config.Cache.name)
            true
            (legacy.Cache.writes > 0))
        [ Machine.cache1; Machine.cache2 ])
    test_programs

let test_replay_has_writebacks () =
  (* The equality above is only meaningful if the workload actually
     produces writebacks somewhere. *)
  let s = replay_stats Machine.cache2 (Kernels.matmul ~order:"IJK" 24) in
  Alcotest.(check bool) "writebacks occur" true (s.Cache.writebacks > 0)

let direct_mapped =
  { Cache.name = "dm"; size_bytes = 1024; assoc = 1; line_bytes = 32 }

let test_direct_mapped_fast_path () =
  (* The assoc=1 inlined loop against the generic access_full path on a
     pseudo-random load/store sequence. *)
  let n = 20_000 in
  let chunk = Chunk.create n in
  let reference = Cache.create direct_mapped in
  let state = ref 12345 in
  for _ = 1 to n do
    state := ((!state * 1103515245) + 12346) land 0x3FFFFFFF;
    let addr = !state land 0xFFFF in
    let write = !state land 0x10000 <> 0 in
    Chunk.push chunk (Chunk.pack ~addr ~write ~label:(!state land 7));
    ignore (Cache.access_full reference ~write addr)
  done;
  let replayed = Cache.create direct_mapped in
  Cache.simulate_chunk replayed chunk;
  Alcotest.check stats_t "direct-mapped replay" (Cache.stats reference)
    (Cache.stats replayed)

let test_hierarchy_replay_identical () =
  let p = Kernels.matmul ~order:"IJK" 24 in
  let legacy = Hierarchy.create ~l1:Machine.cache2 ~l2:Machine.cache1 in
  let observer =
    {
      Exec.on_access =
        (fun ~label:_ ~addr ~write -> ignore (Hierarchy.access legacy ~write addr));
      on_stmt = (fun ~label:_ -> ());
    }
  in
  ignore (Fastexec.run ~observer p);
  let tr, finish = Trace.capturing ~chunk_records:512 () in
  ignore (Fastexec.run_traced tr p);
  let cap = finish () in
  let replayed = Hierarchy.create ~l1:Machine.cache2 ~l2:Machine.cache1 in
  Trace.iter_chunks cap (fun c -> Hierarchy.simulate_chunk replayed c);
  Alcotest.check stats_t "L1" (Hierarchy.l1_stats legacy)
    (Hierarchy.l1_stats replayed);
  Alcotest.check stats_t "L2" (Hierarchy.l2_stats legacy)
    (Hierarchy.l2_stats replayed);
  Alcotest.(check int) "writebacks" (Hierarchy.writebacks legacy)
    (Hierarchy.writebacks replayed)

let test_measure_matches_observer_semantics () =
  (* Measure.measure is capture+replay underneath; its hit/cold numbers
     must equal a from-scratch classified observer run (the seed path). *)
  let p = Kernels.erlebacher_hand 12 in
  let config = Machine.cache2 in
  let cache = Cache.create config in
  let acc = ref 0 and hit = ref 0 and cold = ref 0 in
  let observer =
    {
      Exec.on_access =
        (fun ~label:_ ~addr ~write:_ ->
          incr acc;
          match Cache.access_classified cache addr with
          | `Hit -> incr hit
          | `Cold -> incr cold
          | `Miss -> ());
      on_stmt = (fun ~label:_ -> ());
    }
  in
  ignore (Fastexec.run ~observer p);
  let r = Measure.measure ~config p in
  Alcotest.(check int) "accesses" !acc r.Measure.whole.Measure.accesses;
  Alcotest.(check int) "hits" !hit r.Measure.whole.Measure.hits;
  Alcotest.(check int) "cold" !cold r.Measure.whole.Measure.cold

let test_trace_labels () =
  let p = Kernels.matmul ~order:"IJK" 8 in
  let tr, finish = Trace.capturing () in
  ignore (Fastexec.run_traced tr p);
  let cap = finish () in
  Alcotest.(check bool) "labels interned" true
    (Array.length cap.Trace.trace_labels > 0);
  (* Every record's label id decodes to an interned label. *)
  Trace.iter cap (fun ~label ~addr ~write:_ ->
      Alcotest.(check bool) "label id in range" true
        (label >= 0 && label < Array.length cap.Trace.trace_labels);
      Alcotest.(check bool) "addr in range" true (addr >= 0));
  Alcotest.(check bool) "records counted" true (cap.Trace.records > 0)

(* ------------------------------------------------------ domain pool --- *)

let test_pool_map_order () =
  let items = List.init 100 Fun.id in
  let sq = List.map (fun x -> x * x) items in
  Alcotest.(check (list int)) "j=1" sq (Pool.map ~jobs:1 (fun x -> x * x) items);
  Alcotest.(check (list int)) "j=4" sq (Pool.map ~jobs:4 (fun x -> x * x) items);
  Alcotest.(check (list int)) "j=16 > items" sq
    (Pool.map ~jobs:16 (fun x -> x * x) items)

let test_pool_exception () =
  Alcotest.check_raises "propagates" (Failure "boom") (fun () ->
      ignore (Pool.map ~jobs:4 (fun x -> if x = 7 then failwith "boom" else x)
                (List.init 32 Fun.id)))

let test_pool_map_reduce () =
  let items = List.init 50 (fun i -> i + 1) in
  let expect = List.fold_left ( + ) 0 items in
  List.iter
    (fun jobs ->
      Alcotest.(check int)
        (Printf.sprintf "sum j=%d" jobs)
        expect
        (Pool.map_reduce ~jobs ~map:Fun.id ~combine:( + ) ~init:0 items))
    [ 1; 4 ]

let test_table2_rows_pool_invariant () =
  (* Table 2 rows computed sequentially and on a 4-domain pool must
     render identically (the ISSUE's determinism criterion). A subset of
     the suite keeps the test fast. *)
  let entries =
    List.filteri (fun i _ -> i < 8) Programs.all
  in
  let render rows = Table2.render rows in
  let seq = Pool.map ~jobs:1 (Table2.compute_row ~n:16) entries in
  let par = Pool.map ~jobs:4 (Table2.compute_row ~n:16) entries in
  Alcotest.(check string) "rendered rows identical" (render seq) (render par)

let suite =
  [
    Alcotest.test_case "replay identical to observer" `Quick
      test_replay_identical;
    Alcotest.test_case "workload produces writebacks" `Quick
      test_replay_has_writebacks;
    Alcotest.test_case "direct-mapped fast path" `Quick
      test_direct_mapped_fast_path;
    Alcotest.test_case "hierarchy replay identical" `Quick
      test_hierarchy_replay_identical;
    Alcotest.test_case "measure matches observer semantics" `Quick
      test_measure_matches_observer_semantics;
    Alcotest.test_case "trace labels intern correctly" `Quick test_trace_labels;
    Alcotest.test_case "pool map preserves order" `Quick test_pool_map_order;
    Alcotest.test_case "pool propagates exceptions" `Quick test_pool_exception;
    Alcotest.test_case "pool map_reduce" `Quick test_pool_map_reduce;
    Alcotest.test_case "table2 rows identical at j=1 and j=4" `Slow
      test_table2_rows_pool_invariant;
  ]
