(* Tests for the statistics and reporting layer: Table 2 rows, the
   performance tables, Table 5 access properties, the figures, and the
   report renderer. *)

module C = Locality_core
module S = Locality_suite
module St = Locality_stats

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* A small, fast row set shared by the tests. *)
let rows =
  lazy
    (List.filter_map
       (fun name ->
         Option.map (St.Table2.compute_row ~n:8) (S.Programs.find name))
       [ "arc2d"; "hydro2d"; "mdg"; "buk"; "tomcatv" ])

(* A malformed measured-row list (wrong machine count) must raise a
   typed error naming the caller and the offending program, not trip an
   anonymous assertion. *)
let test_two_machine_rows () =
  let a, b =
    St.Perf.two_machine_rows ~where:"test" ~program:"synthetic" [ 1; 2 ]
  in
  checki "fst" 1 a;
  checki "snd" 2 b;
  let raised_with msg f =
    match f () with
    | exception Invalid_argument m -> contains m msg
    | _ -> false
  in
  checkb "short list names program" true
    (raised_with "\"synthetic\"" (fun () ->
         St.Perf.two_machine_rows ~where:"test" ~program:"synthetic" [ 1 ]));
  checkb "long list names caller" true
    (raised_with "Perf.table4_rows" (fun () ->
         St.Perf.two_machine_rows ~where:"Perf.table4_rows"
           ~program:"synthetic" [ 1; 2; 3 ]));
  checkb "reports count" true
    (raised_with "got 3" (fun () ->
         St.Perf.two_machine_rows ~where:"test" ~program:"synthetic"
           [ 1; 2; 3 ]))

(* ---------------------------------------------------------- report --- *)

let test_report_render () =
  let s =
    St.Report.render ~title:"T" ~note:"n"
      [ St.Report.Left ]
      [ "a"; "bb" ]
      [ [ "x"; "1" ]; [ "yyy"; "22" ] ]
  in
  checkb "has title" true (contains s "== T ==");
  checkb "aligned" true (contains s "yyy  22");
  checkb "separator" true (contains s "---")

let test_report_histogram () =
  let s =
    St.Report.histogram ~title:"H" ~buckets:[ ("a", 2); ("b", 4) ] ~total:6
  in
  checkb "scaled bars" true (contains s "####");
  checkb "total" true (contains s "total: 6")

(* ---------------------------------------------------------- table2 --- *)

let test_table2_row_consistency () =
  List.iter
    (fun (r : St.Table2.row) ->
      checki
        (r.St.Table2.entry.S.Programs.name ^ " partition")
        r.St.Table2.nests
        (r.St.Table2.orig + r.St.Table2.perm + r.St.Table2.fail);
      checki
        (r.St.Table2.entry.S.Programs.name ^ " inner partition")
        r.St.Table2.nests
        (r.St.Table2.inner_orig + r.St.Table2.inner_perm + r.St.Table2.inner_fail);
      checkb "ratio final >= 1" true (r.St.Table2.ratio_final >= 0.999);
      checkb "ideal >= final" true
        (r.St.Table2.ratio_ideal >= r.St.Table2.ratio_final -. 1e-9))
    (Lazy.force rows)

let test_table2_loops_counted () =
  match S.Programs.find "mdg" with
  | None -> Alcotest.fail "mdg missing"
  | Some e ->
    let p = S.Programs.program_of ~n:8 e in
    checki "count_loops matches generator" (S.Synth.loops_of e.S.Programs.spec)
      (St.Table2.count_loops p)

let test_table2_render () =
  let s = St.Table2.render (Lazy.force rows) in
  checkb "has program" true (contains s "arc2d");
  checkb "has totals" true (contains s "totals")

let test_pct () =
  checkf "pct" 50.0 (St.Table2.pct 1 2);
  checkf "pct zero" 0.0 (St.Table2.pct 1 0)

(* ------------------------------------------------------ perf tables --- *)

let test_table4_rows () =
  let hit_rows = St.Perf.table4_rows ~n:8 (Lazy.force rows) in
  (* buk has no nests and is dropped. *)
  checki "buk dropped" 4 (List.length hit_rows);
  List.iter
    (fun (h : St.Perf.hit_row) ->
      checkb (h.St.Perf.name ^ " whole1 sane") true
        (h.St.Perf.whole1_orig >= 0.0 && h.St.Perf.whole1_orig <= 100.0);
      checkb
        (h.St.Perf.name ^ " transformed never worse (cache1 whole)")
        true
        (h.St.Perf.whole1_final >= h.St.Perf.whole1_orig -. 0.5))
    hit_rows

let test_table1_renders () =
  let s = St.Perf.table1 ~n:12 () in
  checkb "three versions" true
    (contains s "Hand coded" && contains s "Fused")

let test_table3_rows () =
  let rows = St.Perf.table3_rows ~n:24 () in
  checkb "has rows" true (List.length rows >= 8);
  List.iter
    (fun (r : St.Perf.perf_row) ->
      checkb (r.St.Perf.name ^ " speedup1 not a slowdown") true
        (r.St.Perf.speedup >= 0.95);
      checkb (r.St.Perf.name ^ " speedup2 not a slowdown") true
        (r.St.Perf.speedup2 >= 0.95))
    rows

(* -------------------------------------------------------- table5 ----- *)

let test_access_stats_matmul () =
  let p = S.Kernels.matmul ~order:"JKI" 16 in
  let st = C.Access_stats.of_program ~cls:4 p in
  (* Groups: C (unit), A (unit), B (invariant) w.r.t. inner I. *)
  checki "3 groups" 3 (C.Access_stats.total_groups st);
  checki "1 invariant" 1 st.C.Access_stats.inv.C.Access_stats.groups;
  checki "2 unit" 2 st.C.Access_stats.unit_.C.Access_stats.groups;
  (* C appears twice textually. *)
  checki "refs total" 4 (C.Access_stats.total_refs st)

let test_access_stats_ideal_vs_actual () =
  (* The worst matmul order classifies everything as no-reuse until the
     ideal view re-evaluates with I innermost. *)
  let p = S.Kernels.matmul ~order:"IKJ" 16 in
  let actual = C.Access_stats.of_program ~which:`Actual ~cls:4 p in
  let ideal = C.Access_stats.of_program ~which:`Ideal ~cls:4 p in
  checkb "actual has fewer unit groups" true
    (actual.C.Access_stats.unit_.C.Access_stats.groups
    < ideal.C.Access_stats.unit_.C.Access_stats.groups)

let test_table5_renders () =
  let s = St.Table5.render_for (Lazy.force rows) in
  checkb "has all-programs row" true (contains s "all programs");
  checkb "has versions" true (contains s "ideal")

(* -------------------------------------------------------- figures ---- *)

let test_fig2_contents () =
  let s = St.Figures.fig2 ~n_sim:16 () in
  checkb "symbolic table" true (contains s "2N^3 + N^2");
  checkb "ranking present" true (contains s "JKI");
  checkb "measured table" true (contains s "cache2(s)")

let test_fig3_contents () =
  let s = St.Figures.fig3 ~n:12 () in
  checkb "profitability" true (contains s "fusion weight");
  checkb "transformed shown" true (contains s "DO K = 1, N")

let test_fig7_contents () =
  let s = St.Figures.fig7 ~n_sim:16 () in
  checkb "cost table" true (contains s "A(J,K)");
  checkb "interchanged output" true (contains s "DO I = J, N")

let test_fig8_buckets () =
  let s = St.Figures.fig8 (Lazy.force rows) in
  checkb "original histogram" true (contains s "original");
  checkb "transformed histogram" true (contains s "transformed");
  (* 4 programs with nests (buk excluded) *)
  checkb "total 4" true (contains s "total: 4")

let test_csv_export () =
  let s2 = St.Csv.table2 (Lazy.force rows) in
  checkb "header row" true (contains s2 "program,group,lines");
  checkb "program present" true (contains s2 "arc2d,Perfect");
  checkb "escaping" true
    (St.Csv.escape "a,b" = "\"a,b\"" && St.Csv.escape "plain" = "plain"
    && St.Csv.escape "say \"hi\"" = "\"say \"\"hi\"\"\"");
  let lines = String.split_on_char '\n' (String.trim s2) in
  checki "one line per program + header" (List.length (Lazy.force rows) + 1)
    (List.length lines)

let test_fig2_ranking_monotone () =
  (* The simulated times on cache2 must follow the predicted ranking:
     {JKI,KJI} < {JIK,IJK} < {KIJ,IKJ}. *)
  let time order =
    let p = S.Kernels.matmul ~order 64 in
    let r =
      Locality_interp.Measure.measure
        ~config:Locality_cachesim.Machine.cache2 p
    in
    r.Locality_interp.Measure.seconds
  in
  let best = Float.max (time "JKI") (time "KJI") in
  let mid_lo = Float.min (time "JIK") (time "IJK") in
  let mid_hi = Float.max (time "JIK") (time "IJK") in
  let worst = Float.min (time "KIJ") (time "IKJ") in
  checkb "best group < middle group" true (best < mid_lo);
  checkb "middle group < worst group" true (mid_hi < worst)

let test_ablation_smoke () =
  List.iter
    (fun (name, f) ->
      let s = f () in
      checkb (name ^ " non-empty") true (String.length s > 80))
    [
      ("transforms", fun () -> St.Ablation.transforms ~n:16 ());
      ("tiling", fun () -> St.Ablation.tiling ~n:24 ());
      ("cls", St.Ablation.cls_sensitivity);
      ("reuse", fun () -> St.Ablation.reuse_profile ~n:16 ());
      ("multilevel", fun () -> St.Ablation.multilevel ~n:24 ());
      ("parallelism", St.Ablation.parallelism);
    ]

let test_table2_headline_totals () =
  (* The reproduction's headline claim, pinned: across the 35 synthetic
     programs the compiler leaves 69% of nests in memory order, permutes
     11% and fails 20% (paper: 69/11/20); the inner loop is right
     originally in 74% and wrong finally in 17% (paper: 74/.../15); 45
     fusions and 17 distributions yielding 34 nests. The totals are
     size-independent (the cost model is symbolic), so n=6 is enough. *)
  let rows = St.Table2.compute ~n:6 () in
  let sum f = List.fold_left (fun a r -> a + f r) 0 rows in
  checki "programs" 35 (List.length rows);
  checki "nests" 711 (sum (fun r -> r.St.Table2.nests));
  checki "originally in memory order" 488 (sum (fun r -> r.St.Table2.orig));
  checki "permuted into memory order" 81 (sum (fun r -> r.St.Table2.perm));
  checki "failed" 142 (sum (fun r -> r.St.Table2.fail));
  checki "inner originally ok" 526 (sum (fun r -> r.St.Table2.inner_orig));
  checki "inner permuted" 66 (sum (fun r -> r.St.Table2.inner_perm));
  checki "inner failed" 119 (sum (fun r -> r.St.Table2.inner_fail));
  checki "fusions applied" 45 (sum (fun r -> r.St.Table2.fusions));
  checki "distributions" 17 (sum (fun r -> r.St.Table2.dist));
  checki "distribution results" 34 (sum (fun r -> r.St.Table2.dist_results))

let suite =
  [
    ("csv export", `Quick, test_csv_export);
    ("table2 headline totals", `Quick, test_table2_headline_totals);
    ("fig2 measured ranking monotone", `Quick, test_fig2_ranking_monotone);
    ("ablations render", `Quick, test_ablation_smoke);
    ("report render", `Quick, test_report_render);
    ("two machine rows typed error", `Quick, test_two_machine_rows);
    ("report histogram", `Quick, test_report_histogram);
    ("table2 row consistency", `Quick, test_table2_row_consistency);
    ("table2 loop counting", `Quick, test_table2_loops_counted);
    ("table2 renders", `Quick, test_table2_render);
    ("pct helper", `Quick, test_pct);
    ("table4 rows", `Quick, test_table4_rows);
    ("table1 renders", `Quick, test_table1_renders);
    ("table3 no slowdowns", `Quick, test_table3_rows);
    ("access stats matmul", `Quick, test_access_stats_matmul);
    ("access stats ideal vs actual", `Quick, test_access_stats_ideal_vs_actual);
    ("table5 renders", `Quick, test_table5_renders);
    ("fig2 contents", `Quick, test_fig2_contents);
    ("fig3 contents", `Quick, test_fig3_contents);
    ("fig7 contents", `Quick, test_fig7_contents);
    ("fig8 buckets", `Quick, test_fig8_buckets);
  ]
