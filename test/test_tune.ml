(* The transformation-search driver: determinism across pool sizes,
   store warmth on re-tuning, the hardened imperfect-nest paths in
   unroll/distribution, label freshening under collision pressure, the
   request wire format's tune field, and a fuzz sweep that tunes
   generated programs without raising. *)

open Locality_ir
open Builder
module Tune = Locality_stats.Tune
module Unroll = Locality_core.Unroll
module Distribution = Locality_core.Distribution
module Store = Locality_store.Store
module Request = Locality_driver.Request
module S = Locality_suite
module Fuzz = Locality_fuzz

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let or_fail = function
  | Ok r -> r
  | Error msg -> Alcotest.failf "tune failed: %s" msg

(* A spec wide enough to exercise structure x perm x tile x unroll but
   cheap enough for the test suite. *)
let test_spec =
  { Tune.tiles = [ 8; 16 ]; unrolls = [ 2; 4 ]; top_k = 2; max_candidates = 128 }

(* ------------------------------------------- determinism at any jobs --- *)

let test_jobs_determinism () =
  let tune jobs =
    or_fail
      (Tune.run ~spec:test_spec ~n:8 ~jobs ~store:None ~name:"matmul"
         (S.Kernels.matmul 8))
  in
  let r1 = tune 1 and r4 = tune 4 in
  checks "render byte-identical at jobs=1 vs 4" (Tune.render r1)
    (Tune.render r4);
  checks "json byte-identical at jobs=1 vs 4" (Tune.to_json r1)
    (Tune.to_json r4);
  checkb "a winner was confirmed" true (r1.Tune.t_winner <> None)

(* ------------------------------------------------ store cold vs warm --- *)

let dir_ticket = ref 0

let fresh_dir () =
  incr dir_ticket;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "memoria-tune-test-%d-%d" (Unix.getpid ()) !dir_ticket)

let strip_store_counts (r : Tune.result) =
  { r with Tune.t_store_hits = 0; t_store_misses = 0 }

let test_store_warm_rerun () =
  let st = Store.open_root (fresh_dir ()) in
  let tune () =
    or_fail
      (Tune.run ~spec:test_spec ~n:8 ~store:(Some st) ~name:"matmul"
         (S.Kernels.matmul 8))
  in
  let cold = tune () in
  let warm = tune () in
  (* Identical search result either way; only the warmth counters may
     differ between the passes. *)
  checks "cold and warm agree"
    (Tune.render (strip_store_counts cold))
    (Tune.render (strip_store_counts warm));
  let lookups = warm.Tune.t_store_hits + warm.Tune.t_store_misses in
  checkb "warm pass did store lookups" true (lookups > 0);
  checkb "warm pass >= 95% hits" true
    (float_of_int warm.Tune.t_store_hits >= 0.95 *. float_of_int lookups)

(* ------------------------------- imperfect nests: typed rejection ------ *)

(* Statement-then-loop bodies used to trip [assert false] in unroll and
   distribution; both must now answer with a typed no. *)
let imperfect_nests () =
  List.concat_map
    (fun mk -> Program.top_loops (mk 8))
    [ S.Kernels.cholesky ?form:None; S.Kernels.lu; S.Kernels.erlebacher_hand ]

let test_unroll_imperfect_nest () =
  List.iter
    (fun nest ->
      let spine = Loop.loops_on_spine nest in
      List.iter
        (fun (h : Loop.header) ->
          match
            Unroll.unroll_and_jam nest ~loop:h.Loop.index ~factor:2
          with
          | Some _ | None -> ())
        spine)
    (imperfect_nests ());
  (* cholesky's outer K carries a statement beside the inner loop: the
     nest is imperfect, so jamming must refuse rather than assert. *)
  let chol = List.hd (Program.top_loops (S.Kernels.cholesky 8)) in
  checkb "imperfect nest rejected" true
    (Unroll.unroll_and_jam chol ~loop:"K" ~factor:2 = None)

let test_distribution_imperfect_nest () =
  List.iter
    (fun nest ->
      match Distribution.run ~cls:4 nest with Some _ | None -> ())
    (imperfect_nests ());
  checkb "no exception across imperfect nests" true true

(* --------------------------------- unroll label freshening ------------ *)

let rec block_labels b =
  List.concat_map
    (function
      | Loop.Stmt (s : Stmt.t) -> [ s.Stmt.label ]
      | Loop.Loop l -> block_labels l.Loop.body)
    b

(* A program whose other nest already uses the [_u<k>]/[_r] suffixes the
   unroller would naturally pick for statement S. *)
let collision_program () =
  let nn = v "N" in
  program "collide"
    ~params:[ ("N", 8) ]
    ~arrays:[ ("A", [ nn; nn ]); ("B", [ nn; nn ]) ]
    [
      do_ "I" (i 1) nn
        [
          do_ "J" (i 1) nn
            [
              asn ~label:"S"
                (r "A" [ v "I"; v "J" ])
                (ld "A" [ v "I"; v "J" ] +! ld "B" [ v "J"; v "I" ]);
            ];
        ];
      do_ "K" (i 1) nn
        [
          asn ~label:"S_u1" (r "B" [ v "K"; i 1 ]) (ld "B" [ v "K"; i 1 ]);
          asn ~label:"S_r" (r "B" [ v "K"; i 2 ]) (ld "B" [ v "K"; i 2 ]);
        ];
    ]

let test_unroll_label_collision () =
  let p = collision_program () in
  let avoid = block_labels p.Program.body in
  let nest =
    match List.hd p.Program.body with
    | Loop.Loop l -> l
    | Loop.Stmt _ -> Alcotest.fail "expected a nest"
  in
  match Unroll.unroll_and_jam ~avoid nest ~loop:"I" ~factor:2 with
  | None -> Alcotest.fail "unroll refused a perfect nest"
  | Some block ->
    let labels = block_labels block in
    checki "labels unique" (List.length labels)
      (List.length (List.sort_uniq String.compare labels));
    (* The copies must dodge both the nest's own labels and the sibling
       nest's pre-existing suffixed ones. *)
    List.iter
      (fun l ->
        checkb
          (Printf.sprintf "label %s fresh against program" l)
          true
          (l = "S" || not (List.mem l avoid)))
      labels

let test_tune_apply_unroll_validates () =
  let p = collision_program () in
  let cand =
    {
      Tune.structure = Tune.Asis;
      perm = None;
      tile = None;
      unroll = Some ("I", 2);
    }
  in
  match Tune.apply p ~nest_idx:0 cand with
  | None -> Alcotest.fail "unroll candidate rejected"
  | Some (p', _) ->
    checkb "unrolled program validates" true
      (match Program.validate p' with Ok () -> true | Error _ -> false)

let test_validate_rejects_duplicate_labels () =
  let nn = v "N" in
  let build () =
    program "dup"
      ~params:[ ("N", 4) ]
      ~arrays:[ ("A", [ nn ]) ]
      [
        do_ "I" (i 1) nn
          [
            asn ~label:"X" (r "A" [ v "I" ]) (ld "A" [ v "I" ]);
            asn ~label:"X" (r "A" [ v "I" ]) (ld "A" [ v "I" ] +! f 1.0);
          ];
      ]
  in
  checkb "duplicate label refused" true
    (match build () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------ request wire format: tune ------- *)

let test_request_tune_roundtrip () =
  let ts =
    {
      Request.t_top_k = Some 2;
      t_tiles = Some [ 8; 16 ];
      t_unrolls = None;
      t_max_candidates = Some 100;
    }
  in
  let req = Request.make ~id:"rt" ~n:12 ~tune:ts (Request.Kernel "matmul") in
  let json = Request.to_json req in
  (match Request.of_json json with
  | Error e -> Alcotest.failf "round-trip parse failed: %s" e
  | Ok req' ->
    checks "re-serializes to the same bytes" json (Request.to_json req');
    checks "fingerprint stable" (Request.fingerprint req)
      (Request.fingerprint req'));
  let plain = Request.make ~id:"rt" ~n:12 (Request.Kernel "matmul") in
  checkb "tune is part of the fingerprint" true
    (Request.fingerprint req <> Request.fingerprint plain)

let test_request_tune_defaults () =
  let ts =
    {
      Request.t_top_k = None;
      t_tiles = None;
      t_unrolls = None;
      t_max_candidates = None;
    }
  in
  let spec = Tune.spec_of_request ts in
  checkb "all-None resolves to the default spec" true
    (spec = Tune.default_spec)

(* --------------------------------------------- fuzz: tune never raises - *)

let fuzz_spec =
  { Tune.tiles = [ 8 ]; unrolls = [ 2 ]; top_k = 1; max_candidates = 24 }

let test_fuzz_tune_no_raise () =
  let count = 200 in
  let failures = ref 0 in
  for index = 0 to count - 1 do
    let p = Fuzz.Gen.generate ~seed:11 ~index ~size:16 in
    match
      Tune.run ~spec:fuzz_spec ~n:6 ~store:None
        ~name:(Printf.sprintf "fuzz-%d" index)
        p
    with
    | Ok _ | Error _ -> ()
    | exception e ->
      incr failures;
      Printf.eprintf "tune raised on fuzz index %d: %s\n" index
        (Printexc.to_string e)
  done;
  checki "no exceptions over 200 fuzz programs" 0 !failures

let suite =
  [
    Alcotest.test_case "tune: jobs=1 vs jobs=4 byte-identical" `Quick
      test_jobs_determinism;
    Alcotest.test_case "tune: warm store rerun, >=95% hits" `Quick
      test_store_warm_rerun;
    Alcotest.test_case "unroll: imperfect nests rejected, no assert" `Quick
      test_unroll_imperfect_nest;
    Alcotest.test_case "distribution: imperfect nests, no assert" `Quick
      test_distribution_imperfect_nest;
    Alcotest.test_case "unroll: label freshening dodges collisions" `Quick
      test_unroll_label_collision;
    Alcotest.test_case "tune apply: unrolled program validates" `Quick
      test_tune_apply_unroll_validates;
    Alcotest.test_case "program: duplicate labels refused" `Quick
      test_validate_rejects_duplicate_labels;
    Alcotest.test_case "request: tune field round-trips" `Quick
      test_request_tune_roundtrip;
    Alcotest.test_case "request: empty tune spec = defaults" `Quick
      test_request_tune_defaults;
    Alcotest.test_case "fuzz: tuning 200 programs never raises" `Slow
      test_fuzz_tune_no_raise;
  ]
