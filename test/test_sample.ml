(* SHARDS sampled reuse-distance profiling (lib/sample), validated
   differentially against the exact simulator.

   The estimator tracks distances per cache set and, for sets > 1,
   samples whole sets (every line of a sampled set is tracked), so the
   W-way hit/miss verdict of each observation is exact and the only
   estimation error is across-set selection. Contracts under test:

   - at rate 1.0 with an unexceeded budget the estimate IS the
     simulator, on every geometry and for any hash seed;
   - the group-descriptor fast path is invisible: group-fed and
     per-access-fed profiles are structurally equal, including under
     threshold adaptation;
   - profiles are deterministic in (trace, rate, seed, budget);
   - at a practical sampling rate the miss-rate error stays within a
     loose bound on mid-size programs, for several seeds;
   - the Measure integration (MEMORIA_REPLAY=sample) reproduces exact
     runs at rate 1.0. *)

open Locality_ir
module Cache = Locality_cachesim.Cache
module Machine = Locality_cachesim.Machine
module Measure = Locality_interp.Measure
module Trace = Locality_interp.Trace
module Fastexec = Locality_interp.Fastexec
module Sample = Locality_sample.Sample
module Kernels = Locality_suite.Kernels
module Programs = Locality_suite.Programs

let small_assoc =
  { Cache.name = "sa4"; size_bytes = 4096; assoc = 4; line_bytes = 64 }

let tiny_dm =
  { Cache.name = "dm"; size_bytes = 1024; assoc = 1; line_bytes = 32 }

let configs = [ Machine.cache1; Machine.cache2; small_assoc; tiny_dm ]
let sets_of (c : Cache.config) = c.size_bytes / (c.line_bytes * c.assoc)

let capture p =
  let rb, finish = Trace.run_capturing () in
  ignore (Fastexec.run_traced_runs rb p);
  finish ()

let build cap ~rate ?(seed = 0) ?(max_tracked = max_int) ~sets ~line_bytes
    ~grouped () =
  let s = Sample.create ~rate ~seed ~max_tracked ~sets ~line_bytes () in
  (if grouped then Trace.iter_run_chunks cap (Sample.consume_runchunk s)
   else
     Trace.iter_runs cap (fun ~label ~addr ~write ->
         ignore write;
         Sample.access s ~label ~addr));
  Sample.profile s ~labels:Trace.(cap.run_trace_labels) ~ops:0

let est_hits pf ~ways =
  let acc = ref 0.0 in
  Array.iteri
    (fun i _ -> acc := !acc +. Sample.hits_under pf i ~ways)
    pf.Sample.pf_labels;
  !acc

let simulate ~config p =
  (Measure.replay_prepared ~config
     (Measure.prepare ~mode:Measure.Runs ~store:None p))
    .Measure.whole

let programs =
  [
    ("matmul", Kernels.matmul 12);
    ("cholesky", Kernels.cholesky 12);
    ("adi", Kernels.adi_fragment 16);
    ("gmtry", Kernels.gmtry 12);
  ]

(* Rate 1.0: the set-sampling estimator must equal the simulator
   exactly — hits, cold and access counts — on all four geometries,
   whatever the seed. *)
let test_rate1_exact () =
  List.iter
    (fun (name, p) ->
      let cap = capture p in
      List.iter
        (fun config ->
          List.iter
            (fun seed ->
              let pf =
                build cap ~rate:1.0 ~seed ~sets:(sets_of config)
                  ~line_bytes:config.Cache.line_bytes ~grouped:true ()
              in
              let sim = simulate ~config p in
              let chk what est exact =
                Alcotest.(check (float 0.0))
                  (Printf.sprintf "%s on %s seed %d: %s" name
                     config.Cache.name seed what)
                  (float_of_int exact) est
              in
              chk "hits" (est_hits pf ~ways:config.Cache.assoc)
                sim.Measure.hits;
              chk "cold" (Sample.cold pf) sim.Measure.cold;
              chk "accesses"
                (float_of_int pf.Sample.pf_accesses)
                sim.Measure.accesses)
            [ 0; 1; 4 ])
        configs)
    programs

(* Group-fed and per-access-fed profiles must be structurally equal —
   also when a tiny budget forces threshold adaptation mid-trace, and
   in fully-associative (sets = 1, line-sampling) mode. *)
let test_group_equivalence () =
  List.iter
    (fun (name, p) ->
      let cap = capture p in
      List.iter
        (fun (rate, max_tracked, sets, line_bytes) ->
          let a =
            build cap ~rate ~max_tracked ~sets ~line_bytes ~grouped:true ()
          in
          let b =
            build cap ~rate ~max_tracked ~sets ~line_bytes ~grouped:false ()
          in
          Alcotest.(check bool)
            (Printf.sprintf
               "%s: group = per-access (rate=%g budget=%d sets=%d)" name rate
               max_tracked sets)
            true (a = b))
        [
          (1.0, 64, 128, 32);
          (1.0, max_int, 128, 128);
          (0.25, max_int, 128, 32);
          (0.25, 64, 1, 64);
          (0.5, max_int, 1, 32);
        ])
    programs

(* Profiles are a pure function of (trace, rate, seed, budget). *)
let test_determinism () =
  let _, p = List.hd programs in
  let cap = capture p in
  let mk seed =
    build cap ~rate:0.25 ~seed ~max_tracked:4096 ~sets:128 ~line_bytes:32
      ~grouped:true ()
  in
  Alcotest.(check bool) "same seed, same profile" true (mk 3 = mk 3);
  let pf = mk 0 in
  Alcotest.(check bool) "rate recorded" true
    (Float.abs (pf.Sample.pf_rate -. 0.25) < 0.01)

(* Sampling-noise regression: at rate 0.25 the whole-program miss-rate
   estimate stays within a few points of the simulator across the four
   geometries and five seeds. The programs are sized so their footprints
   spread across the cache sets — set sampling has nothing to observe in
   a set the program never touches, so tiny concentrated footprints are
   out of the estimator's regime (the exactness tests cover them at rate
   1.0 instead). Everything is deterministic, so the bound is a
   regression fence, not a statistical hope. *)
let test_error_bound () =
  let bound = 6.0 and mean_bound = 1.5 in
  let sum = ref 0.0 and n = ref 0 in
  List.iter
    (fun (name, p) ->
      let cap = capture p in
      List.iter
        (fun config ->
          let sim = simulate ~config p in
          let exact_rate =
            100.0
            *. float_of_int (sim.Measure.accesses - sim.Measure.hits)
            /. float_of_int sim.Measure.accesses
          in
          List.iter
            (fun seed ->
              let pf =
                build cap ~rate:0.25 ~seed ~sets:(sets_of config)
                  ~line_bytes:config.Cache.line_bytes ~grouped:true ()
              in
              let est =
                100.0
                *. (float_of_int pf.Sample.pf_accesses
                    -. est_hits pf ~ways:config.Cache.assoc)
                /. float_of_int pf.Sample.pf_accesses
              in
              let err = Float.abs (est -. exact_rate) in
              sum := !sum +. err;
              incr n;
              Alcotest.(check bool)
                (Printf.sprintf "%s on %s seed %d: err %.2fpt <= %.1fpt" name
                   config.Cache.name seed err bound)
                true (err <= bound))
            [ 0; 1; 2; 3; 4 ])
        configs)
    [
      ("matmul", Kernels.matmul 48);
      ("lu", Kernels.lu 48);
      ("adi", Kernels.adi_fragment 64);
      ("jacobi2d", Kernels.jacobi2d 48);
    ];
  let mean = !sum /. float_of_int !n in
  Alcotest.(check bool)
    (Printf.sprintf "mean err %.3fpt <= %.1fpt" mean mean_bound)
    true (mean <= mean_bound)

(* MEMORIA_REPLAY=sample through Measure: at rate 1.0 the sampled run
   record equals the exact one (counts, ops and modelled times), and
   the optimized-region split is preserved. *)
let test_measure_sampled () =
  Sample.set_rate 1.0;
  List.iter
    (fun (e : Programs.entry) ->
      let p = Programs.program_of ~n:8 e in
      let labels =
        let rec stmts = function
          | Loop.Stmt s -> [ s.Stmt.label ]
          | Loop.Loop l -> List.concat_map stmts l.Loop.body
        in
        List.concat_map stmts p.Program.body
        |> List.filteri (fun i _ -> i mod 2 = 0)
      in
      let run mode =
        Measure.replay_prepared ~config:Machine.cache2
          ~optimized_labels:labels
          (Measure.prepare ~mode ~store:None p)
      in
      Alcotest.(check bool)
        (e.Programs.name ^ ": sampled(rate 1) = exact")
        true
        (run Measure.Sampled = run Measure.Runs))
    Programs.all

(* Constructor validation. *)
let test_create_validation () =
  let raises f =
    match f () with
    | exception Invalid_argument _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "rate 0 rejected" true
    (raises (fun () -> Sample.create ~rate:0.0 ~line_bytes:32 ()));
  Alcotest.(check bool) "line_bytes 48 rejected" true
    (raises (fun () -> Sample.create ~rate:0.5 ~line_bytes:48 ()));
  Alcotest.(check bool) "sets 3 rejected" true
    (raises (fun () -> Sample.create ~rate:0.5 ~sets:3 ~line_bytes:32 ()))

let suite =
  [
    Alcotest.test_case "rate 1.0 = simulator (4 geometries, seeds)" `Quick
      test_rate1_exact;
    Alcotest.test_case "group fast path = per-access" `Quick
      test_group_equivalence;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "rate 0.25 error bound (4 geometries, 5 seeds)" `Quick
      test_error_bound;
    Alcotest.test_case "measure: sampled(rate 1) = exact" `Quick
      test_measure_sampled;
    Alcotest.test_case "create validation" `Quick test_create_validation;
  ]
