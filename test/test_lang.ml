(* Tests for the kernel-language frontend: lexer, parser, lowering, and a
   parse -> pretty-print -> parse round trip. *)

open Locality_ir
module L = Locality_lang
module Exec = Locality_interp.Exec

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let matmul_src =
  {|
PROGRAM matmul
PARAMETER (N = 16)
REAL A(N,N), B(N,N), C(N,N)
DO J = 1, N
  DO K = 1, N
    DO I = 1, N
      C(I,J) = C(I,J) + A(I,K)*B(K,J)
    ENDDO
  ENDDO
ENDDO
END
|}

let test_lex_basics () =
  let toks = List.map fst (L.Lexer.tokenize "DO I = 1, N") in
  checkb "DO tokenized" true
    (toks
    = [
        L.Token.KW_DO;
        L.Token.IDENT "I";
        L.Token.EQUAL;
        L.Token.INT 1;
        L.Token.COMMA;
        L.Token.IDENT "N";
        L.Token.NEWLINE;
        L.Token.EOF;
      ])

let test_lex_comments_and_floats () =
  let toks = List.map fst (L.Lexer.tokenize "X = 2.5e-1 ! trailing\nC full line\nY = 1.0d0\n") in
  checkb "float and comment" true
    (List.mem (L.Token.FLOAT 0.25) toks && List.mem (L.Token.FLOAT 1.0) toks);
  (* 'C ' at column 1 is a Fortran comment: no Y? C is comment only when
     followed by space; "C full line" is a comment. *)
  checkb "comment line skipped" false
    (List.exists (function L.Token.IDENT "full" -> true | _ -> false) toks)

(* Fuzzer-found: a scalar named C. "C = ..." is an assignment, not a
   comment — at column 1 and indented — while "C full line" stays a
   comment. The whole program must survive pretty -> parse -> pretty. *)
let test_c_scalar_not_comment () =
  let src =
    "PROGRAM p\nPARAMETER (N = 4)\nREAL*8 A(N)\nC = 2.0\nDO I = 1, N\n  C = C + 0.5\n  A(I) = C\nENDDO\nEND\n"
  in
  let p1 = L.Lower.parse_program src in
  checkb "top-level C assignment kept" true
    (List.exists
       (function
         | Loop.Stmt s -> s.Stmt.lhs = Stmt.Scalar_set "C"
         | Loop.Loop _ -> false)
       p1.Program.body);
  let text = Pretty.program_to_string p1 in
  let p2 = L.Lower.parse_program text in
  checks "stable round trip" text (Pretty.program_to_string p2);
  (* A genuine comment line is still skipped. *)
  let toks = List.map fst (L.Lexer.tokenize "C this is commentary\nC = 1.0\n") in
  checkb "comment still skipped" false
    (List.exists (function L.Token.IDENT "commentary" -> true | _ -> false) toks);
  checkb "assignment lexed" true
    (List.exists (function L.Token.FLOAT 1.0 -> true | _ -> false) toks)

let test_lex_real_star8 () =
  let toks = List.map fst (L.Lexer.tokenize "REAL*8 A(N)") in
  checkb "REAL*8 collapses" true (List.hd toks = L.Token.KW_REAL)

let test_lex_error () =
  try
    ignore (L.Lexer.tokenize "A = 1 @ 2");
    Alcotest.fail "expected lexer error"
  with L.Lexer.Error (msg, loc) ->
    checki "error line" 1 loc.L.Lexer.line;
    checki "error column" 7 loc.L.Lexer.col;
    checks "offending text in message" "unexpected character @" msg

let test_parse_matmul () =
  let ast = L.Parser.parse matmul_src in
  checks "name" "matmul" ast.L.Ast.name;
  checki "one param" 1 (List.length ast.L.Ast.params);
  checki "three arrays" 3 (List.length ast.L.Ast.decls);
  checki "one top stmt" 1 (List.length ast.L.Ast.body)

let test_parse_error_location () =
  try
    ignore (L.Parser.parse "PROGRAM p\nDO I = 1\nEND\n");
    Alcotest.fail "expected parse error"
  with L.Parser.Error (msg, loc) ->
    checki "error on line 2" 2 loc.L.Lexer.line;
    checki "error at column 9" 9 loc.L.Lexer.col;
    checkb "message names the found token" true
      (let sub = "found" in
       let n = String.length msg and m = String.length sub in
       let rec go i = i + m <= n && (String.sub msg i m = sub || go (i + 1)) in
       go 0)

(* Lexer/parser locations must survive into the driver's error string:
   "path:line:col: lexical|syntax error: ...". *)
let test_driver_error_locations () =
  let module D = Locality_driver.Driver in
  let write name contents =
    let path = Filename.concat (Filename.get_temp_dir_name ()) name in
    let oc = open_out path in
    output_string oc contents;
    close_out oc;
    path
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    go 0
  in
  let lexbad = write "memoria_lexbad.f" "PROGRAM p\nA = 1 @ 2\nEND\n" in
  (match D.run (D.config ~machines:[] ~store:None (D.Source_file lexbad)) with
  | Ok _ -> Alcotest.fail "expected a lexical error"
  | Error msg ->
    checkb "file, loc and token in message" true
      (contains msg (lexbad ^ ":2:7: lexical error: unexpected character @")));
  let parsebad = write "memoria_parsebad.f" "PROGRAM p\nDO I = 1\nEND\n" in
  (match D.run (D.config ~machines:[] ~store:None (D.Source_file parsebad)) with
  | Ok _ -> Alcotest.fail "expected a syntax error"
  | Error msg ->
    checkb "syntax error carries loc" true
      (contains msg (parsebad ^ ":2:9: syntax error:")));
  Sys.remove lexbad;
  Sys.remove parsebad

let test_lower_matmul () =
  let p = L.Lower.parse_program matmul_src in
  checks "program name" "matmul" p.Program.name;
  checki "N default" 16 (Program.param_env p "N");
  let l = List.hd (Program.top_loops p) in
  checki "depth 3" 3 (Loop.depth l);
  checkb "perfect" true (Loop.is_perfect l)

let test_lower_intrinsics_and_scalars () =
  let src =
    {|
PROGRAM k
PARAMETER (N = 8)
REAL A(N)
s = 2.0
DO I = 1, N
  A(I) = SQRT(A(I)) + MIN(s, 1.5) - ABS(A(I))
ENDDO
END
|}
  in
  let p = L.Lower.parse_program src in
  let res = Exec.run p in
  (* 8 loop iterations plus the scalar assignment *)
  checki "iterations" 9 res.Exec.iterations

let test_lower_errors () =
  let expect_error src =
    try
      ignore (L.Lower.parse_program src);
      Alcotest.fail "expected lowering error"
    with L.Lower.Error _ -> ()
  in
  expect_error "PROGRAM p\nREAL A(4)\nB(1) = 0.0\nEND\n";
  expect_error "PROGRAM p\nREAL A(4)\nA(1,2) = 0.0\nEND\n";
  expect_error "PROGRAM p\nREAL A(4)\nA(1) = FOO(3.0)\nEND\n";
  expect_error "PROGRAM p\nREAL A(4)\nA(1.5) = 0.0\nEND\n"

let test_roundtrip () =
  (* parse -> pretty -> parse -> same execution result *)
  let p1 = L.Lower.parse_program matmul_src in
  let text = Pretty.program_to_string p1 in
  let p2 = L.Lower.parse_program text in
  checkb "roundtrip equivalent" true (Exec.equivalent p1 p2)

let test_roundtrip_after_compound () =
  let p1 = L.Lower.parse_program matmul_src in
  let p1', _ = Locality_core.Compound.run_program ~cls:4 p1 in
  let text = Pretty.program_to_string p1' in
  let p2 = L.Lower.parse_program text in
  checkb "transformed roundtrip equivalent" true (Exec.equivalent p1 p2)

let test_roundtrip_after_unroll_replace () =
  (* The register-blocked form prints Div bounds (8*(N/8)), stepped
     loops, scalar temporaries and store-backs — all of which the
     frontend must accept back. *)
  let module C = Locality_core in
  let p1 = L.Lower.parse_program matmul_src in
  let nest = List.hd (Program.top_loops p1) in
  match C.Unroll.unroll_and_jam nest ~loop:"J" ~factor:4 with
  | None -> Alcotest.fail "unroll refused"
  | Some block -> (
    match
      C.Unroll.map_main block ~loop:"J" ~factor:4 ~f:(fun main ->
          (C.Scalar_replacement.apply main).C.Scalar_replacement.nest)
    with
    | None -> Alcotest.fail "main nest not found"
    | Some block' ->
      let p1' = Program.map_body (fun _ -> block') p1 in
      let text = Pretty.program_to_string p1' in
      let p2 = L.Lower.parse_program text in
      checkb "register-blocked roundtrip equivalent" true
        (Exec.equivalent p1 p2))

let test_negative_step_parse () =
  let src =
    "PROGRAM p\nREAL A(10)\nDO I = 10, 1, -1\n  A(I) = I\nENDDO\nEND\n"
  in
  let p = L.Lower.parse_program src in
  let res = Exec.run p in
  checki "ten iterations" 10 res.Exec.iterations

let test_kernel_files_parse_optimize_check () =
  (* Every shipped .f kernel must parse, lower, optimize legally, and
     round-trip through the pretty printer. *)
  let dir = "../../../kernels" in
  let dir = if Sys.file_exists dir then dir else "kernels" in
  if Sys.file_exists dir then
    Array.iter
      (fun file ->
        if Filename.check_suffix file ".f" then begin
          let path = Filename.concat dir file in
          let ic = open_in_bin path in
          let src = really_input_string ic (in_channel_length ic) in
          close_in ic;
          let p = L.Lower.parse_program src in
          (* Shrink for interpretation. *)
          let p =
            { p with Program.params = List.map (fun (x, _) -> (x, 10)) p.Program.params }
          in
          let p', _ = Locality_core.Compound.run_program ~cls:4 p in
          checkb (file ^ " preserved") true (Exec.equivalent ~tol:1e-6 p p');
          let p2 = L.Lower.parse_program (Pretty.program_to_string p') in
          checkb (file ^ " reparses") true (Exec.equivalent ~tol:1e-6 p p2)
        end)
      (Sys.readdir dir)
  else Alcotest.fail ("kernels directory not found from " ^ Sys.getcwd ())

let test_min_in_bounds_parses () =
  let src =
    "PROGRAM t\nPARAMETER (N = 20)\nREAL A(N)\nDO I = 1, N, 4\n  DO II = I, MIN(I+3, N)\n    A(II) = II\n  ENDDO\nENDDO\nEND\n"
  in
  let p = L.Lower.parse_program src in
  let res = Exec.run p in
  checki "all iterations" 20 res.Exec.iterations

let suite =
  [
    ("kernel files parse + optimize + check", `Quick, test_kernel_files_parse_optimize_check);
    ("MIN in loop bounds", `Quick, test_min_in_bounds_parses);
    ("lexer basics", `Quick, test_lex_basics);
    ("lexer comments and floats", `Quick, test_lex_comments_and_floats);
    ("lexer REAL*8", `Quick, test_lex_real_star8);
    ("lexer error reporting", `Quick, test_lex_error);
    ("C scalar is not a comment", `Quick, test_c_scalar_not_comment);
    ("driver error locations", `Quick, test_driver_error_locations);
    ("parser matmul", `Quick, test_parse_matmul);
    ("parser error location", `Quick, test_parse_error_location);
    ("lowering matmul", `Quick, test_lower_matmul);
    ("lowering intrinsics/scalars", `Quick, test_lower_intrinsics_and_scalars);
    ("lowering error cases", `Quick, test_lower_errors);
    ("parse/pretty round trip", `Quick, test_roundtrip);
    ("round trip after compound", `Quick, test_roundtrip_after_compound);
    ("round trip after unroll+replace", `Quick, test_roundtrip_after_unroll_replace);
    ("negative step loop", `Quick, test_negative_step_parse);
  ]
