(* The v2 run-compressed trace format and its event-driven replay.
   Everything here is differential: run-level replay must be
   bit-identical — whole-cache and per-region, every stats field — to
   per-access replay, on the hand-written kernels, on all 35 synthetic
   suite programs, and on adversarial fuzz streams mixing group
   descriptors with plain records. *)

open Locality_ir
module Cache = Locality_cachesim.Cache
module Chunk = Locality_cachesim.Chunk
module Runchunk = Locality_cachesim.Runchunk
module Hierarchy = Locality_cachesim.Hierarchy
module Machine = Locality_cachesim.Machine
module Reuse = Locality_cachesim.Reuse
module Fastexec = Locality_interp.Fastexec
module Trace = Locality_interp.Trace
module Measure = Locality_interp.Measure
module Kernels = Locality_suite.Kernels
module Programs = Locality_suite.Programs

let stats_pp ppf (s : Cache.stats) =
  Format.fprintf ppf
    "{accesses=%d; hits=%d; misses=%d; cold=%d; writes=%d; write_hits=%d; \
     writebacks=%d}"
    s.Cache.accesses s.Cache.hits s.Cache.misses s.Cache.cold_misses
    s.Cache.writes s.Cache.write_hits s.Cache.writebacks

let stats_t = Alcotest.testable stats_pp ( = )

let region_pp ppf (r : Cache.region) =
  Format.fprintf ppf "{accesses=%d; hits=%d; cold=%d}" r.Cache.r_accesses
    r.Cache.r_hits r.Cache.r_cold

let region_t =
  Alcotest.testable region_pp (fun a b ->
      a.Cache.r_accesses = b.Cache.r_accesses
      && a.Cache.r_hits = b.Cache.r_hits
      && a.Cache.r_cold = b.Cache.r_cold)

let direct_mapped =
  { Cache.name = "dm"; size_bytes = 1024; assoc = 1; line_bytes = 32 }

let small_assoc =
  { Cache.name = "sa4"; size_bytes = 4096; assoc = 4; line_bytes = 64 }

(* Capture a program in both formats; small chunk sizes force flushes
   so chunk boundaries land mid-loop. *)
let both_captures p =
  let tr, finish = Trace.capturing ~chunk_records:509 () in
  ignore (Fastexec.run_traced tr p);
  let v1 = finish () in
  let rb, rfinish = Trace.run_capturing ~chunk_words:509 () in
  ignore (Fastexec.run_traced_runs rb p);
  let v2 = rfinish () in
  (v1, v2)

(* Mark every other interned label, by name, in each capture's own
   table — label ids need not agree between the formats. *)
let alternate_names labels =
  List.filteri (fun i _ -> i mod 2 = 0) (Array.to_list labels)

let marked_of labels names =
  Array.map (fun l -> List.mem l names) labels

let replay_v1 config ~marked (cap : Trace.captured) =
  let c = Cache.create config in
  let reg = Cache.fresh_region () in
  Trace.iter_chunks cap (fun ch -> Cache.simulate_chunk c ~marked ~region:reg ch);
  (Cache.stats c, reg)

let replay_v2 config ~marked (cap : Trace.captured_runs) =
  let c = Cache.create config in
  let reg = Cache.fresh_region () in
  let metrics = Cache.fresh_run_metrics () in
  Trace.iter_run_chunks cap (fun rc ->
      Cache.simulate_runs c ~marked ~region:reg ~metrics rc);
  (Cache.stats c, reg, metrics)

let check_program name p =
  let v1, v2 = both_captures p in
  Alcotest.(check int)
    (name ^ ": logical record counts agree")
    v1.Trace.records v2.Trace.run_records;
  let names = alternate_names v1.Trace.trace_labels in
  List.iter
    (fun config ->
      let s1, r1 =
        replay_v1 config ~marked:(marked_of v1.Trace.trace_labels names) v1
      in
      let s2, r2, _ =
        replay_v2 config ~marked:(marked_of v2.Trace.run_trace_labels names) v2
      in
      let where = Printf.sprintf "%s on %s" name config.Cache.name in
      Alcotest.check stats_t (where ^ ": stats") s1 s2;
      Alcotest.check region_t (where ^ ": region") r1 r2)
    [ Machine.cache1; Machine.cache2; direct_mapped; small_assoc ]

let test_kernels_identical () =
  List.iter
    (fun (name, p) -> check_program name p)
    [
      ("matmul IJK", Kernels.matmul ~order:"IJK" 24);
      ("matmul JKI", Kernels.matmul ~order:"JKI" 24);
      ("erlebacher", Kernels.erlebacher_hand 12);
      ("transpose", Kernels.transpose 40);
      ("cholesky", Kernels.cholesky 24);
    ]

let test_suite_identical () =
  List.iter
    (fun (e : Programs.entry) ->
      check_program e.Programs.name (Programs.program_of ~n:10 e))
    Programs.all

let test_hierarchy_identical () =
  let p = Kernels.matmul ~order:"IJK" 24 in
  let v1, v2 = both_captures p in
  let h1 = Hierarchy.create ~l1:Machine.cache2 ~l2:Machine.cache1 in
  Trace.iter_chunks v1 (fun c -> Hierarchy.simulate_chunk h1 c);
  let h2 = Hierarchy.create ~l1:Machine.cache2 ~l2:Machine.cache1 in
  Trace.iter_run_chunks v2 (fun rc -> Hierarchy.simulate_runs h2 rc);
  Alcotest.check stats_t "L1" (Hierarchy.l1_stats h1) (Hierarchy.l1_stats h2);
  Alcotest.check stats_t "L2" (Hierarchy.l2_stats h1) (Hierarchy.l2_stats h2);
  Alcotest.(check int) "writebacks" (Hierarchy.writebacks h1)
    (Hierarchy.writebacks h2)

let test_measure_modes_identical () =
  (* The user-facing surface: Measure in both modes, same numbers. *)
  let p = Kernels.erlebacher_hand 12 in
  let c1 = Measure.capture ~mode:Measure.Per_access p in
  let c2 = Measure.capture ~mode:Measure.Runs p in
  let labels = [ "S1"; "S2" ] in
  List.iter
    (fun config ->
      let r1 = Measure.replay ~config ~optimized_labels:labels c1 in
      let r2 = Measure.replay ~config ~optimized_labels:labels c2 in
      Alcotest.(check bool)
        ("runs equal on " ^ config.Cache.name)
        true (r1 = r2))
    [ Machine.cache1; Machine.cache2 ]

(* ------------------------------------------------- run compression --- *)

let test_matmul_emits_groups () =
  let p = Kernels.matmul ~order:"IJK" 16 in
  let rb, finish = Trace.run_capturing () in
  ignore (Fastexec.run_traced_runs rb p);
  let cap = finish () in
  Alcotest.(check bool) "groups emitted" true (cap.Trace.run_groups > 0);
  Alcotest.(check bool) "stream smaller than records" true
    (cap.Trace.run_stream_words < cap.Trace.run_records)

let test_nonaffine_falls_back () =
  (* A subscript quadratic in the innermost index cannot be a strided
     run: no groups, but the expanded stream is still identical. *)
  let p =
    let open Builder in
    let n = v "N" in
    program "quad" ~params:[ ("N", 10) ]
      ~arrays:[ ("A", [ n *$ n ]) ]
      [
        do_ "I" (i 1) n
          [ asn (r "A" [ v "I" *$ v "I" ]) (ld "A" [ v "I" ] +! f 1.0) ];
      ]
  in
  let rb, finish = Trace.run_capturing () in
  ignore (Fastexec.run_traced_runs rb p);
  let cap = finish () in
  Alcotest.(check int) "no groups" 0 cap.Trace.run_groups;
  check_program "quad" p

let test_min_subscript_falls_back () =
  (* MIN over the loop index is not affine either. *)
  let p =
    let open Builder in
    let n = v "N" in
    program "clamped" ~params:[ ("N", 12) ]
      ~arrays:[ ("A", [ n ]); ("B", [ n ]) ]
      [
        do_ "I" (i 1) n
          [
            asn
              (r "A" [ Expr.Min (v "I" +$ i 3, n) ])
              (ld "B" [ v "I" ] +! f 1.0);
          ];
      ]
  in
  let rb, finish = Trace.run_capturing () in
  ignore (Fastexec.run_traced_runs rb p);
  let cap = finish () in
  Alcotest.(check int) "no groups" 0 cap.Trace.run_groups;
  check_program "clamped" p

let test_invariant_factor_qualifies () =
  (* A stride that is loop-invariant without being constant — J*8
     elements per step of I — still qualifies. *)
  let p =
    let open Builder in
    let n = v "N" in
    program "skewed" ~params:[ ("N", 12) ]
      ~arrays:[ ("A", [ n *$ n ]) ]
      [
        do_ "J" (i 1) n
          [
            do_ "I" (i 1) n
              [ asn (r "A" [ ((v "I" -$ i 1) *$ v "J") +$ i 1 ]) (f 2.0) ];
          ];
      ]
  in
  let rb, finish = Trace.run_capturing () in
  ignore (Fastexec.run_traced_runs rb p);
  let cap = finish () in
  Alcotest.(check bool) "groups emitted" true (cap.Trace.run_groups > 0);
  check_program "skewed" p

let test_downward_loop_qualifies () =
  let p =
    let open Builder in
    let n = v "N" in
    program "reversed" ~params:[ ("N", 20) ]
      ~arrays:[ ("A", [ n ]); ("B", [ n ]) ]
      [
        do_ ~step:(-1) "I" n (i 1)
          [ asn (r "A" [ v "I" ]) (ld "B" [ v "I" ] +! f 1.0) ];
      ]
  in
  let rb, finish = Trace.run_capturing () in
  ignore (Fastexec.run_traced_runs rb p);
  let cap = finish () in
  Alcotest.(check bool) "groups emitted" true (cap.Trace.run_groups > 0);
  check_program "reversed" p

(* --------------------------------------------------------- fuzzing --- *)

(* A fuzz stream is a list of items: plain records and strided-run
   groups with up to 4 references, strides spanning zero, sub-line,
   exactly-line and super-line magnitudes of both signs. Bases keep
   every expanded address non-negative. *)
type fuzz_ref = { base : int; stride : int; fwrite : bool; flabel : int }
type fuzz_item =
  | Single of int * bool * int  (* addr, write, label *)
  | Group of int * fuzz_ref list  (* trip, refs *)

let gen_fuzz =
  let open QCheck.Gen in
  let gen_label = int_range 0 7 in
  let gen_ref =
    let* base = int_range 2048 16383 in
    let* stride = int_range (-72) 72 in
    let* fwrite = bool in
    let* flabel = gen_label in
    return { base; stride; fwrite; flabel }
  in
  let gen_item =
    frequency
      [
        ( 1,
          let* addr = int_range 0 16383 in
          let* w = bool in
          let* l = gen_label in
          return (Single (addr, w, l)) );
        ( 2,
          let* trip = int_range 1 24 in
          let* refs = list_size (int_range 1 4) gen_ref in
          return (Group (trip, refs)) );
      ]
  in
  list_size (int_range 1 60) gen_item

(* Expand a fuzz stream to its access sequence. *)
let expand items =
  List.concat_map
    (function
      | Single (addr, w, l) -> [ (addr, w, l) ]
      | Group (trip, refs) ->
        List.concat_map
          (fun t ->
            List.map
              (fun fr -> (fr.base + (t * fr.stride), fr.fwrite, fr.flabel))
              refs)
          (List.init trip Fun.id))
    items

let marked = Array.init 8 (fun l -> l < 4)

(* Reference semantics: sequential access_full with a manual region
   tally. *)
let reference_replay config accesses =
  let c = Cache.create config in
  let reg = Cache.fresh_region () in
  List.iter
    (fun (addr, write, label) ->
      let cls, _ = Cache.access_full c ~write addr in
      if marked.(label) then begin
        reg.Cache.r_accesses <- reg.Cache.r_accesses + 1;
        match cls with
        | `Hit -> reg.Cache.r_hits <- reg.Cache.r_hits + 1
        | `Cold -> reg.Cache.r_cold <- reg.Cache.r_cold + 1
        | `Miss -> ()
      end)
    accesses;
  (Cache.stats c, reg)

(* The same accesses through v1 chunks (small capacity: boundaries land
   anywhere) and simulate_chunk. *)
let chunk_replay config accesses =
  let c = Cache.create config in
  let reg = Cache.fresh_region () in
  let chunk = Chunk.create 61 in
  let flush () =
    Cache.simulate_chunk c ~marked ~region:reg chunk;
    Chunk.reset chunk
  in
  List.iter
    (fun (addr, write, label) ->
      if Chunk.is_full chunk then flush ();
      Chunk.push chunk (Chunk.pack ~addr ~write ~label))
    accesses;
  flush ();
  (Cache.stats c, reg)

(* The fuzz stream itself through run chunks and simulate_runs. *)
let runs_replay config items =
  let c = Cache.create config in
  let reg = Cache.fresh_region () in
  let metrics = Cache.fresh_run_metrics () in
  let rc = Runchunk.create 127 in
  let flush () =
    Cache.simulate_runs c ~marked ~region:reg ~metrics rc;
    Runchunk.reset rc
  in
  List.iter
    (function
      | Single (addr, w, l) ->
        if Runchunk.room rc = 0 then flush ();
        Runchunk.push_access rc (Chunk.pack ~addr ~write:w ~label:l)
      | Group (trip, refs) ->
        let n = List.length refs in
        if Runchunk.room rc < Runchunk.group_words ~nrefs:n then flush ();
        let packed =
          Array.of_list
            (List.map
               (fun fr -> Chunk.pack ~addr:0 ~write:fr.fwrite ~label:fr.flabel)
               refs)
        in
        let bases = Array.of_list (List.map (fun fr -> fr.base) refs) in
        let strides = Array.of_list (List.map (fun fr -> fr.stride) refs) in
        Runchunk.push_group rc ~trip ~packed ~bases ~strides n)
    items;
  flush ();
  (Cache.stats c, reg)

let prop_fuzz_all_paths_agree =
  QCheck.Test.make ~name:"fuzz: chunk, run and reference replay agree"
    ~count:300 (QCheck.make gen_fuzz) (fun items ->
      let accesses = expand items in
      List.for_all
        (fun config ->
          let s0, r0 = reference_replay config accesses in
          let s1, r1 = chunk_replay config accesses in
          let s2, r2 = runs_replay config items in
          s1 = s0 && s2 = s0
          && r1.Cache.r_accesses = r0.Cache.r_accesses
          && r1.Cache.r_hits = r0.Cache.r_hits
          && r1.Cache.r_cold = r0.Cache.r_cold
          && r2.Cache.r_accesses = r0.Cache.r_accesses
          && r2.Cache.r_hits = r0.Cache.r_hits
          && r2.Cache.r_cold = r0.Cache.r_cold)
        [ direct_mapped; small_assoc; Machine.cache2 ])

let prop_runchunk_roundtrip =
  (* Runchunk.iter must expand groups round-robin in source order. *)
  QCheck.Test.make ~name:"fuzz: Runchunk.iter expands round-robin" ~count:200
    (QCheck.make gen_fuzz) (fun items ->
      let rc = Runchunk.create 65536 in
      List.iter
        (function
          | Single (addr, w, l) ->
            Runchunk.push_access rc (Chunk.pack ~addr ~write:w ~label:l)
          | Group (trip, refs) ->
            let n = List.length refs in
            let packed =
              Array.of_list
                (List.map
                   (fun fr ->
                     Chunk.pack ~addr:0 ~write:fr.fwrite ~label:fr.flabel)
                   refs)
            in
            let bases = Array.of_list (List.map (fun fr -> fr.base) refs) in
            let strides =
              Array.of_list (List.map (fun fr -> fr.stride) refs)
            in
            Runchunk.push_group rc ~trip ~packed ~bases ~strides n)
        items;
      let got = ref [] in
      Runchunk.iter rc (fun ~label ~addr ~write ->
          got := (addr, write, label) :: !got);
      List.rev !got = expand items
      && Runchunk.logical_records rc = List.length (expand items))

(* -------------------------------------------------------- hit rate --- *)

let test_hit_rate_all_cold () =
  (* A run whose accesses were all cold misses hit nothing: 0.0, not
     the misleading 100.0 the seed reported. No accesses at all is
     still vacuously 100.0. *)
  Alcotest.(check (float 1e-9))
    "all cold" 0.0
    (Cache.rate_of_counts ~accesses:5 ~hits:0 ~cold:5 ());
  Alcotest.(check (float 1e-9))
    "no accesses" 100.0
    (Cache.rate_of_counts ~accesses:0 ~hits:0 ~cold:0 ());
  Alcotest.(check (float 1e-9))
    "all cold, cold included" 0.0
    (Cache.rate_of_counts ~exclude_cold:false ~accesses:5 ~hits:0 ~cold:5 ());
  Alcotest.(check (float 1e-9))
    "measure agrees" 0.0
    (Measure.hit_rate { Measure.accesses = 4; hits = 0; cold = 4 });
  let c = Cache.create direct_mapped in
  for k = 0 to 9 do
    ignore (Cache.access c (k * 1024))
  done;
  Alcotest.(check (float 1e-9))
    "simulated all-cold run" 0.0
    (Cache.hit_rate (Cache.stats c));
  let r = Reuse.create ~line_bytes:32 () in
  for k = 0 to 9 do
    Reuse.access r (k * 1024)
  done;
  Alcotest.(check (float 1e-9))
    "reuse predictor agrees" 0.0
    (Reuse.predicted_hit_rate r ~lines:4)

let suite =
  [
    Alcotest.test_case "kernels: runs replay identical" `Quick
      test_kernels_identical;
    Alcotest.test_case "all 35 programs: runs replay identical" `Slow
      test_suite_identical;
    Alcotest.test_case "hierarchy: runs replay identical" `Quick
      test_hierarchy_identical;
    Alcotest.test_case "measure: both modes identical" `Quick
      test_measure_modes_identical;
    Alcotest.test_case "matmul emits groups" `Quick test_matmul_emits_groups;
    Alcotest.test_case "non-affine subscript falls back" `Quick
      test_nonaffine_falls_back;
    Alcotest.test_case "min subscript falls back" `Quick
      test_min_subscript_falls_back;
    Alcotest.test_case "invariant-factor stride qualifies" `Quick
      test_invariant_factor_qualifies;
    Alcotest.test_case "downward loop qualifies" `Quick
      test_downward_loop_qualifies;
    Alcotest.test_case "hit rate of an all-cold run is 0" `Quick
      test_hit_rate_all_cold;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [ prop_fuzz_all_paths_agree; prop_runchunk_roundtrip ]
