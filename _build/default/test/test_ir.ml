(* Unit and property tests for the IR library: rationals, polynomials,
   expressions, affine forms, loops, programs, and pretty-printing. *)

open Locality_ir

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool
let checks = Alcotest.check Alcotest.string
let checki = Alcotest.check Alcotest.int

(* ---------------------------------------------------------------- Rat *)

let test_rat_normalisation () =
  checks "6/4 reduces" "3/2" (Rat.to_string (Rat.make 6 4));
  checks "negative denominator" "-1/2" (Rat.to_string (Rat.make 1 (-2)));
  checks "zero" "0" (Rat.to_string (Rat.make 0 5));
  checkb "integer" true (Rat.is_integer (Rat.make 8 4));
  checki "to_int" 2 (Rat.to_int (Rat.make 8 4))

let test_rat_arith () =
  let half = Rat.make 1 2 and third = Rat.make 1 3 in
  checks "1/2+1/3" "5/6" (Rat.to_string (Rat.add half third));
  checks "1/2-1/3" "1/6" (Rat.to_string (Rat.sub half third));
  checks "1/2*1/3" "1/6" (Rat.to_string (Rat.mul half third));
  checks "1/2 / 1/3" "3/2" (Rat.to_string (Rat.div half third));
  checkb "compare" true (Rat.compare third half < 0);
  Alcotest.check_raises "div by zero" Division_by_zero (fun () ->
      ignore (Rat.div half Rat.zero))

let rat_gen =
  QCheck.Gen.(
    map2 (fun n d -> Rat.make n d) (int_range (-50) 50) (int_range 1 50))

let rat_arb = QCheck.make ~print:Rat.to_string rat_gen

let prop_rat_add_comm =
  QCheck.Test.make ~name:"rat add commutative" ~count:200
    (QCheck.pair rat_arb rat_arb) (fun (a, b) ->
      Rat.equal (Rat.add a b) (Rat.add b a))

let prop_rat_mul_distributes =
  QCheck.Test.make ~name:"rat mul distributes over add" ~count:200
    (QCheck.triple rat_arb rat_arb rat_arb) (fun (a, b, c) ->
      Rat.equal (Rat.mul a (Rat.add b c)) (Rat.add (Rat.mul a b) (Rat.mul a c)))

(* --------------------------------------------------------------- Poly *)

let n = Poly.var "n"

let test_poly_basic () =
  let p = Poly.mul (Poly.add n Poly.one) (Poly.add n Poly.one) in
  checks "(n+1)^2" "n^2 + 2n + 1" (Poly.to_string p);
  checkb "equal" true
    (Poly.equal p
       (Poly.add (Poly.mul n n) (Poly.add (Poly.mul_rat (Rat.of_int 2) n) Poly.one)));
  checki "degree" 2 (Poly.degree p);
  check (Alcotest.list Alcotest.string) "vars" [ "n" ] (Poly.vars p)

let test_poly_pp_paper_style () =
  (* The matmul JKI total from Figure 2. *)
  let p =
    Poly.add
      (Poly.mul_rat (Rat.of_int 2) (Poly.mul n (Poly.mul n n)))
      (Poly.mul n n)
  in
  checks "2n^3 + n^2" "2n^3 + n^2" (Poly.to_string p);
  let q = Poly.add (Poly.div_rat (Poly.mul n (Poly.mul n n)) (Rat.of_int 4)) n in
  checks "1/4n^3 + n" "1/4n^3 + n" (Poly.to_string q)

let test_poly_compare_dominant () =
  let n3 = Poly.mul n (Poly.mul n n) in
  let n2 = Poly.mul n n in
  checkb "n^3 > 5n^2" true
    (Poly.compare_dominant n3 (Poly.mul_rat (Rat.of_int 5) n2) > 0);
  checkb "2n^3 > n^3" true
    (Poly.compare_dominant (Poly.mul_rat (Rat.of_int 2) n3) n3 > 0);
  checkb "n^3+n^2 > n^3" true
    (Poly.compare_dominant (Poly.add n3 n2) n3 > 0);
  checkb "equal" true (Poly.compare_dominant n2 n2 = 0);
  checkb "1/4 n^3 < n^3" true
    (Poly.compare_dominant (Poly.div_rat n3 (Rat.of_int 4)) n3 < 0)

let test_poly_subst_eval () =
  let p = Poly.add (Poly.mul n n) n in
  let q = Poly.subst p "n" (Poly.int 10) in
  (match Poly.is_const q with
  | Some c -> checki "subst eval" 110 (Rat.to_int c)
  | None -> Alcotest.fail "expected constant");
  check (Alcotest.float 1e-9) "eval" 110.0 (Poly.eval p (fun _ -> 10.0))

let small_poly_gen =
  let open QCheck.Gen in
  let base =
    oneof
      [ map Poly.int (int_range (-5) 5); return (Poly.var "x"); return (Poly.var "y") ]
  in
  let rec go depth =
    if depth = 0 then base
    else
      oneof
        [
          base;
          map2 Poly.add (go (depth - 1)) (go (depth - 1));
          map2 Poly.mul (go (depth - 1)) (go (depth - 1));
          map Poly.neg (go (depth - 1));
        ]
  in
  go 3

let poly_arb = QCheck.make ~print:Poly.to_string small_poly_gen

let prop_poly_ring =
  QCheck.Test.make ~name:"poly ring laws" ~count:200
    (QCheck.triple poly_arb poly_arb poly_arb) (fun (a, b, c) ->
      Poly.equal (Poly.add a b) (Poly.add b a)
      && Poly.equal (Poly.mul a b) (Poly.mul b a)
      && Poly.equal (Poly.mul a (Poly.add b c)) (Poly.add (Poly.mul a b) (Poly.mul a c))
      && Poly.equal (Poly.sub a a) Poly.zero
      && Poly.equal (Poly.mul a Poly.one) a)

let prop_poly_eval_hom =
  QCheck.Test.make ~name:"poly eval is a homomorphism" ~count:200
    (QCheck.pair poly_arb poly_arb) (fun (a, b) ->
      let env = function "x" -> 3.0 | _ -> 5.0 in
      let close x y = Float.abs (x -. y) <= 1e-6 *. (1.0 +. Float.abs x) in
      close (Poly.eval (Poly.add a b) env) (Poly.eval a env +. Poly.eval b env)
      && close (Poly.eval (Poly.mul a b) env) (Poly.eval a env *. Poly.eval b env))

(* --------------------------------------------------------------- Expr *)

let test_expr_simplify () =
  let open Expr in
  checks "fold" "5" (to_string (simplify (Add (Int 2, Int 3))));
  checks "x+0" "x" (to_string (simplify (Add (Var "x", Int 0))));
  checks "x*1" "x" (to_string (simplify (Mul (Var "x", Int 1))));
  checks "x*0" "0" (to_string (simplify (Mul (Var "x", Int 0))));
  checks "x+(-2)" "x-2" (to_string (simplify (Add (Var "x", Int (-2)))));
  checki "eval" 11 (eval (Add (Mul (Int 2, Var "x"), Int 1)) (fun _ -> 5))

let test_expr_subst_vars () =
  let open Expr in
  let e = Add (Var "I", Mul (Int 2, Var "J")) in
  check (Alcotest.list Alcotest.string) "vars" [ "I"; "J" ] (vars e);
  checks "subst" "K+2*J" (to_string (subst e "I" (Var "K")))

(* ------------------------------------------------------------- Affine *)

let test_affine_of_expr () =
  let open Expr in
  let e = Add (Sub (Mul (Int 2, Var "I"), Var "J"), Int 3) in
  match Affine.of_expr e with
  | None -> Alcotest.fail "should be affine"
  | Some a ->
    checki "coeff I" 2 (Affine.coeff a "I");
    checki "coeff J" (-1) (Affine.coeff a "J");
    checki "coeff K" 0 (Affine.coeff a "K");
    checki "const" 3 (Affine.const a);
    checki "eval" 9 (Affine.eval a (fun x -> if x = "I" then 4 else 2))

let test_affine_nonaffine () =
  checkb "I*J not affine" true
    (Affine.of_expr (Expr.Mul (Var "I", Var "J")) = None);
  checkb "2*(I+J) affine" true
    (Affine.of_expr (Expr.Mul (Int 2, Add (Var "I", Var "J"))) <> None)

let test_affine_subst () =
  match Affine.of_expr (Expr.Sub (Var "J", Var "K")) with
  | None -> Alcotest.fail "affine"
  | Some a ->
    let b = Affine.subst a "J" (Affine.of_const 5) in
    checki "const after subst" 5 (Affine.const b);
    checki "K coeff" (-1) (Affine.coeff b "K")

(* --------------------------------------------------------------- Loop *)

let matmul order =
  (* order is a 3-char string like "JKI", outermost first *)
  let open Builder in
  let nn = v "N" in
  let body =
    asn
      (r "C" [ v "I"; v "J" ])
      (ld "C" [ v "I"; v "J" ] +! (ld "A" [ v "I"; v "K" ] *! ld "B" [ v "K"; v "J" ]))
  in
  let rec nest = function
    | [] -> body
    | x :: rest -> do_ (String.make 1 x) (i 1) nn [ nest rest ]
  in
  program "matmul"
    ~params:[ ("N", 64) ]
    ~arrays:[ ("A", [ nn; nn ]); ("B", [ nn; nn ]); ("C", [ nn; nn ]) ]
    [ nest (List.init (String.length order) (String.get order)) ]

let test_loop_structure () =
  let p = matmul "JKI" in
  let l = List.hd (Program.top_loops p) in
  checki "depth" 3 (Loop.depth l);
  checkb "perfect" true (Loop.is_perfect l);
  check (Alcotest.list Alcotest.string) "spine" [ "J"; "K"; "I" ]
    (List.map (fun (h : Loop.header) -> h.Loop.index) (Loop.loops_on_spine l));
  checki "statements" 1 (List.length (Loop.statements l));
  let s = List.hd (Loop.statements l) in
  (match Loop.enclosing_headers l s with
  | Some hs ->
    check (Alcotest.list Alcotest.string) "enclosing" [ "J"; "K"; "I" ]
      (List.map (fun (h : Loop.header) -> h.Loop.index) hs)
  | None -> Alcotest.fail "statement not found");
  checks "trip" "n" (Poly.to_string (Poly.subst (Loop.trip_poly l.header) "N" (Poly.var "n")))

let test_loop_imperfect () =
  let open Builder in
  let nn = v "N" in
  let l =
    loop_of
      (do_ "I" (i 1) nn
         [
           asn (r "X" [ v "I" ]) (f 0.0);
           do_ "J" (i 1) nn [ asn (r "Y" [ v "I"; v "J" ]) (f 1.0) ];
         ])
  in
  checkb "imperfect" false (Loop.is_perfect l);
  checki "depth" 2 (Loop.depth l);
  checki "inner loops" 1 (List.length (Loop.inner_loops l));
  checkb "body not all loops" false (Loop.body_is_all_loops l)

let test_loop_free_vars () =
  let p = matmul "IJK" in
  let l = List.hd (Program.top_loops p) in
  check (Alcotest.list Alcotest.string) "free vars" [ "N" ] (Loop.free_vars l)

(* ------------------------------------------------------------ Program *)

let test_program_validate () =
  let open Builder in
  let nn = v "N" in
  (* Undeclared array *)
  (try
     ignore
       (program "bad" ~arrays:[ ("A", [ nn ]) ]
          [ do_ "I" (i 1) nn [ asn (r "B" [ v "I" ]) (f 0.0) ] ]);
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  (* Rank mismatch *)
  (try
     ignore
       (program "bad2" ~arrays:[ ("A", [ nn ]) ]
          [ do_ "I" (i 1) nn [ asn (r "A" [ v "I"; v "I" ]) (f 0.0) ] ]);
     Alcotest.fail "expected invalid_arg"
   with Invalid_argument _ -> ());
  (* Shadowed index *)
  try
    ignore
      (program "bad3" ~arrays:[ ("A", [ nn; nn ]) ]
         [
           do_ "I" (i 1) nn
             [ do_ "I" (i 1) nn [ asn (r "A" [ v "I"; v "I" ]) (f 0.0) ] ];
         ]);
    Alcotest.fail "expected invalid_arg"
  with Invalid_argument _ -> ()

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_pretty () =
  let p = matmul "JKI" in
  let s = Pretty.program_to_string p in
  checkb "has DO J" true (contains s "DO J = 1, N");
  checkb "has stmt" true (contains s "C(I,J) = C(I,J) + A(I,K) * B(K,J)");
  checkb "has ENDDO" true (contains s "ENDDO");
  checkb "declares C" true (contains s "C(N, N)")

let suite =
  [
    ("rat normalisation", `Quick, test_rat_normalisation);
    ("rat arithmetic", `Quick, test_rat_arith);
    ("poly basic", `Quick, test_poly_basic);
    ("poly paper-style printing", `Quick, test_poly_pp_paper_style);
    ("poly dominant-term compare", `Quick, test_poly_compare_dominant);
    ("poly subst/eval", `Quick, test_poly_subst_eval);
    ("expr simplify", `Quick, test_expr_simplify);
    ("expr subst/vars", `Quick, test_expr_subst_vars);
    ("affine of_expr", `Quick, test_affine_of_expr);
    ("affine non-affine cases", `Quick, test_affine_nonaffine);
    ("affine subst", `Quick, test_affine_subst);
    ("loop structure (matmul)", `Quick, test_loop_structure);
    ("loop imperfect nest", `Quick, test_loop_imperfect);
    ("loop free vars", `Quick, test_loop_free_vars);
    ("program validation", `Quick, test_program_validate);
    ("pretty printing", `Quick, test_pretty);
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_rat_add_comm;
        prop_rat_mul_distributes;
        prop_poly_ring;
        prop_poly_eval_hom;
      ]
