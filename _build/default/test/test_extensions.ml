(* Tests for the optional transformations beyond the compound algorithm:
   tiling (Section 6), skewing (implemented but unused, as in the paper),
   and scalar expansion (the distribution enabler of Section 5.1). *)

open Locality_ir
module C = Locality_core
module S = Locality_suite
module Exec = Locality_interp.Exec
module Measure = Locality_interp.Measure
module Machine = Locality_cachesim.Machine
module D = Locality_dep

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let replace_nest p nest' =
  Program.map_body (fun _ -> [ Loop.Loop nest' ]) p

(* --------------------------------------------------------- tiling ---- *)

let test_strip_mine_iterations () =
  (* Strip-mining must execute exactly the same iterations, including a
     ragged final tile. *)
  let open Builder in
  let p =
    program "sm" ~arrays:[ ("A", [ i 37 ]) ]
      [ do_ "I" (i 1) (i 37) [ asn (r "A" [ v "I" ]) (idx (v "I")) ] ]
  in
  let nest = List.hd (Program.top_loops p) in
  let tiled = C.Tiling.strip_mine nest ~loop:"I" ~tile:8 in
  let p' = replace_nest p tiled in
  let r = Exec.run p' in
  checki "same iteration count" 37 r.Exec.iterations;
  checkb "same results" true (Exec.equivalent p p')

let test_strip_mine_errors () =
  let open Builder in
  let p =
    program "sm2" ~arrays:[ ("A", [ i 8 ]) ]
      [ do_ "I" (i 1) (i 8) [ asn (r "A" [ v "I" ]) (f 0.0) ] ]
  in
  let nest = List.hd (Program.top_loops p) in
  Alcotest.check_raises "zero tile"
    (Invalid_argument "Tiling.strip_mine: tile <= 0") (fun () ->
      ignore (C.Tiling.strip_mine nest ~loop:"I" ~tile:0));
  Alcotest.check_raises "missing loop"
    (Invalid_argument "Tiling.strip_mine: loop not found") (fun () ->
      ignore (C.Tiling.strip_mine nest ~loop:"Z" ~tile:4))

let test_tile_matmul_semantics () =
  let p = S.Kernels.matmul ~order:"JKI" 24 in
  let nest = List.hd (Program.top_loops p) in
  match C.Tiling.tile ~sizes:5 nest ~band:[ "K"; "I" ] with
  | None -> Alcotest.fail "matmul band should tile"
  | Some tiled ->
    let p' = replace_nest p tiled in
    checkb "tiled matmul equivalent" true (Exec.equivalent p p');
    (* Spine: J, K_T, I_T, K, I *)
    let spine =
      List.map
        (fun (h : Loop.header) -> h.Loop.index)
        (Loop.loops_on_spine tiled)
    in
    checks "spine shape" "J K_T I_T K I" (String.concat " " spine)

let test_tile_auto_size_blocked_matmul () =
  (* End-to-end: choose a tile size for the i860 cache, block all three
     loops with it, and confirm both semantics and a hit-rate win. *)
  let module TS = Locality_cachesim.Tilesize in
  let n = 48 in
  let p = S.Kernels.matmul ~order:"JKI" n in
  let nest = List.hd (Program.top_loops p) in
  let v = TS.choose Machine.cache2 ~elem_size:8 ~stride:n in
  checkb "auto size conflict-free" true v.TS.conflict_free;
  match C.Tiling.tile ~sizes:v.TS.tile nest ~band:[ "J"; "K"; "I" ] with
  | None -> Alcotest.fail "blocked band should tile"
  | Some tiled ->
    let p' = replace_nest p tiled in
    checkb "auto-tiled matmul equivalent" true (Exec.equivalent p p');
    let before = Measure.measure ~config:Machine.cache2 p in
    let after = Measure.measure ~config:Machine.cache2 p' in
    checkb "auto tile improves hit rate" true
      (Measure.hit_rate after.Measure.whole
      > Measure.hit_rate before.Measure.whole)

let test_tile_improves_matmul_on_small_cache () =
  (* At N=48 the arrays overflow the 8KB cache. A(I,K) is loop-invariant
     with respect to J — exactly the long-term reuse the paper says
     tiling exists to capture — so the band is {J, K}. *)
  let n = 48 in
  let p = S.Kernels.matmul ~order:"JKI" n in
  let nest = List.hd (Program.top_loops p) in
  match C.Tiling.tile ~sizes:8 nest ~band:[ "J"; "K" ] with
  | None -> Alcotest.fail "should tile"
  | Some tiled ->
    let p' = replace_nest p tiled in
    let before = Measure.measure ~config:Machine.cache2 p in
    let after = Measure.measure ~config:Machine.cache2 p' in
    let rb = Measure.hit_rate before.Measure.whole in
    let ra = Measure.hit_rate after.Measure.whole in
    checkb (Printf.sprintf "tiling helps (%.2f%% -> %.2f%%)" rb ra) true
      (ra > rb)

let test_tile_illegal_band () =
  (* The fail2 stencil has a (1,-1) dependence: the band is not fully
     permutable, so tiling must refuse. *)
  let open Builder in
  let nn = v "N" in
  let p =
    program "nt" ~params:[ ("N", 12) ] ~arrays:[ ("A", [ nn; nn ]) ]
      [
        do_ "I" (i 2) (nn -$ i 1)
          [
            do_ "J" (i 2) (nn -$ i 1)
              [
                asn (r "A" [ v "I"; v "J" ])
                  (ld "A" [ v "I" -$ i 1; v "J" +$ i 1 ] +! f 1.0);
              ];
          ];
      ]
  in
  let nest = List.hd (Program.top_loops p) in
  checkb "refuses non-permutable band" true
    (C.Tiling.tile nest ~band:[ "I"; "J" ] = None)

let test_tile_recommend () =
  (* matmul JKI: B(K,J) is invariant w.r.t. I and C(I,J) w.r.t. K —
     long-term reuse sits on the non-innermost loops. *)
  let nest = List.hd (Program.top_loops (S.Kernels.matmul ~order:"JKI" 16)) in
  let rec_ = C.Tiling.recommend ~cls:4 nest in
  checkb "recommends K" true (List.mem "K" rec_);
  (* transpose: the outer loop carries the unit stride of one array. *)
  let tnest = List.hd (Program.top_loops (S.Kernels.transpose 16)) in
  checkb "recommends transpose outer" true (C.Tiling.recommend ~cls:4 tnest <> [])

let test_two_level_tiling_semantics () =
  let p = S.Kernels.matmul ~order:"JKI" 21 in
  let nest = List.hd (Program.top_loops p) in
  match C.Tiling.tile ~suffix:"_T2" ~sizes:9 nest ~band:[ "J"; "K" ] with
  | None -> Alcotest.fail "outer tiling failed"
  | Some t2 -> (
    match C.Tiling.tile ~check:false ~sizes:4 t2 ~band:[ "J"; "K" ] with
    | None -> Alcotest.fail "inner tiling failed"
    | Some t3 ->
      let p' = replace_nest p t3 in
      checkb "two-level tiled matmul equivalent" true (Exec.equivalent p p');
      (* 7 loops on the spine. *)
      checki "spine depth" 7 (List.length (Loop.loops_on_spine t3)))

let test_measure_hierarchy () =
  let p = S.Kernels.matmul ~order:"JKI" 32 in
  let r = Measure.measure_hierarchy p in
  checkb "L1 rate sane" true (r.Measure.l1_rate > 0.0 && r.Measure.l1_rate <= 100.0);
  checkb "amat at least 1 cycle" true (r.Measure.amat >= 1.0);
  (* A worse loop order must not get a better AMAT. *)
  let bad = Measure.measure_hierarchy (S.Kernels.matmul ~order:"IKJ" 32) in
  checkb "bad order has higher AMAT" true (bad.Measure.amat >= r.Measure.amat)

(* -------------------------------------------------------- skewing ---- *)

let skewable_stencil n =
  let open Builder in
  let nn = v "N" in
  program "skew" ~params:[ ("N", n) ] ~arrays:[ ("A", [ nn; nn ]) ]
    [
      do_ "I" (i 2) (nn -$ i 1)
        [
          do_ "J" (i 2) (nn -$ i 1)
            [
              asn (r "A" [ v "I"; v "J" ])
                (ld "A" [ v "I" -$ i 1; v "J" +$ i 1 ]
                +! ld "A" [ v "I"; v "J" -$ i 1 ]);
            ];
        ];
    ]

let test_skew_semantics () =
  let p = skewable_stencil 12 in
  let nest = List.hd (Program.top_loops p) in
  let skewed = C.Skewing.skew nest ~outer:"I" ~inner:"J" ~factor:1 in
  let p' = replace_nest p skewed in
  checkb "skewed program equivalent" true (Exec.equivalent p p')

let test_skew_straightens_dependences () =
  (* Skewing by 1 shifts the inner bounds by +I and rewrites the
     subscripts with J-I; the true dependences (1,-1) and (0,1) become
     (1,0) and (0,1). The skewed subscripts are coupled, so the analyzer
     keeps some conservative entries, but no exact distance may be
     negative, and the structure must be as expected. *)
  let p = skewable_stencil 12 in
  let nest = List.hd (Program.top_loops p) in
  let skewed = C.Skewing.skew nest ~outer:"I" ~inner:"J" ~factor:1 in
  let text = Pretty.block_to_string [ Loop.Loop skewed ] in
  checkb "shifted lower bound" true (contains text "DO J = 2+I");
  checkb "rewritten subscript" true (contains text "J-I");
  let deps =
    List.filter D.Depend.is_true_dep (D.Analysis.deps_in_nest skewed)
  in
  checkb "has deps" true (deps <> []);
  List.iter
    (fun (d : D.Depend.t) ->
      checkb
        (Format.asprintf "no negative exact distance: %a" D.Depend.pp d)
        true
        (List.for_all
           (fun e ->
             match e with D.Direction.Dist k -> k >= 0 | _ -> true)
           d.D.Depend.vec))
    deps

let test_skew_errors () =
  let p = skewable_stencil 8 in
  let nest = List.hd (Program.top_loops p) in
  Alcotest.check_raises "missing inner"
    (Invalid_argument "Skewing.skew: inner loop not found") (fun () ->
      ignore (C.Skewing.skew nest ~outer:"I" ~inner:"Z" ~factor:1))

(* --------------------------------------------------- unroll and jam -- *)

let test_unroll_and_jam_matmul () =
  (* N = 10, factor 3: exercises the remainder loop. *)
  List.iter
    (fun factor ->
      let p = S.Kernels.matmul ~order:"JKI" 10 in
      let nest = List.hd (Program.top_loops p) in
      match C.Unroll.unroll_and_jam nest ~loop:"K" ~factor with
      | None -> Alcotest.fail "matmul K should unroll-and-jam"
      | Some block ->
        let p' = Program.map_body (fun _ -> block) p in
        checkb
          (Printf.sprintf "unroll x%d preserves matmul" factor)
          true (Exec.equivalent p p'))
    [ 2; 3; 4 ]

let test_unroll_and_jam_outermost () =
  let p = S.Kernels.matmul ~order:"JKI" 9 in
  let nest = List.hd (Program.top_loops p) in
  match C.Unroll.unroll_and_jam nest ~loop:"J" ~factor:2 with
  | None -> Alcotest.fail "outermost J should unroll-and-jam"
  | Some block ->
    checki "main + remainder nests" 2 (List.length block);
    let p' = Program.map_body (fun _ -> block) p in
    checkb "outermost unroll preserves matmul" true (Exec.equivalent p p')

let test_unroll_and_jam_rejects_recurrence () =
  (* A(I,J) = A(I-1,J+1): interleaving I iterations at the inner level is
     illegal, so jamming I must be refused. *)
  let open Builder in
  let nn = v "N" in
  let p =
    program "uj" ~params:[ ("N", 10) ] ~arrays:[ ("A", [ nn; nn ]) ]
      [
        do_ "I" (i 2) (nn -$ i 1)
          [
            do_ "J" (i 2) (nn -$ i 1)
              [
                asn (r "A" [ v "I"; v "J" ])
                  (ld "A" [ v "I" -$ i 1; v "J" +$ i 1 ] +! f 1.0);
              ];
          ];
      ]
  in
  let nest = List.hd (Program.top_loops p) in
  checkb "refused" true (C.Unroll.unroll_and_jam nest ~loop:"I" ~factor:2 = None)

let test_unroll_and_jam_rejects_innermost () =
  let p = S.Kernels.matmul ~order:"JKI" 8 in
  let nest = List.hd (Program.top_loops p) in
  checkb "innermost refused" true
    (C.Unroll.unroll_and_jam nest ~loop:"I" ~factor:2 = None);
  checkb "factor 1 refused" true
    (C.Unroll.unroll_and_jam nest ~loop:"K" ~factor:1 = None)

let test_choose_factor_matmul () =
  (* The balance model: B(K,J+k) copies become scalars, A(I,K) is shared
     by all copies, only the C traffic scales — so more unrolling is
     always better until registers run out. *)
  let p = S.Kernels.matmul ~order:"JKI" 32 in
  let nest = List.hd (Program.top_loops p) in
  let base = C.Unroll.balance_of ~factor:1 nest in
  checki "base scalars" 1 base.C.Unroll.scalars;
  checkb "base mem 3/iter" true (Float.abs (base.C.Unroll.mem_per_orig_iter -. 3.0) < 1e-9);
  checkb "base flops 2/iter" true
    (Float.abs (base.C.Unroll.flops_per_orig_iter -. 2.0) < 1e-9);
  let best, options = C.Unroll.choose_factor nest ~loop:"J" in
  checki "all factors evaluated" 4 (List.length options);
  checki "largest admissible factor wins" 8 best.C.Unroll.factor;
  checkb "mem improves" true
    (best.C.Unroll.mem_per_orig_iter < base.C.Unroll.mem_per_orig_iter);
  let b4, _ = C.Unroll.choose_factor ~max_regs:4 nest ~loop:"J" in
  checki "register limit binds" 4 b4.C.Unroll.factor;
  let b0, _ = C.Unroll.choose_factor ~max_regs:0 nest ~loop:"J" in
  checki "no registers: stay at 1" 1 b0.C.Unroll.factor

let test_choose_factor_middle_loop () =
  (* IJK matmul, jamming the middle J loop: the main nest sits inside
     the outer I loop; find_main must locate it, the balance model must
     see the C accumulators turn into registers, and the whole rebuilt
     program must compute the same product. *)
  let n = 10 in
  let p = S.Kernels.matmul ~order:"IJK" n in
  let nest = List.hd (Program.top_loops p) in
  let best, _ = C.Unroll.choose_factor nest ~loop:"J" in
  checki "factor 8 under default budget" 8 best.C.Unroll.factor;
  checkb "accumulator balance" true
    (Float.abs (best.C.Unroll.mem_per_orig_iter -. (9.0 /. 8.0)) < 1e-9);
  match C.Unroll.unroll_and_jam nest ~loop:"J" ~factor:4 with
  | None -> Alcotest.fail "middle-loop jam should succeed"
  | Some block ->
    checkb "find_main locates the jammed nest" true
      (match C.Unroll.find_main block ~loop:"J" ~factor:4 with
      | Some main -> main.Loop.header.Loop.step = 4
      | None -> false);
    (match C.Unroll.map_main block ~loop:"J" ~factor:4 ~f:(fun main ->
         (C.Scalar_replacement.apply main).C.Scalar_replacement.nest)
     with
    | None -> Alcotest.fail "map_main missed the main nest"
    | Some block' ->
      let p' = Program.map_body (fun _ -> block') p in
      checkb "jam + replace preserves matmul" true (Exec.equivalent p p'));
    checkb "map_main misses wrong factor" true
      (C.Unroll.map_main block ~loop:"J" ~factor:5 ~f:Fun.id = None)

let test_choose_factor_recurrence () =
  (* Jamming is illegal across the (1,-1) recurrence: only factor 1. *)
  let open Builder in
  let nn = v "N" in
  let p =
    program "rec" ~params:[ ("N", 10) ] ~arrays:[ ("A", [ nn; nn ]) ]
      [
        do_ "I" (i 2) (nn -$ i 1)
          [
            do_ "J" (i 2) (nn -$ i 1)
              [
                asn (r "A" [ v "I"; v "J" ])
                  (ld "A" [ v "I" -$ i 1; v "J" +$ i 1 ] +! f 1.0);
              ];
          ];
      ]
  in
  let nest = List.hd (Program.top_loops p) in
  let best, options = C.Unroll.choose_factor nest ~loop:"I" in
  checki "only the identity option" 1 (List.length options);
  checki "factor 1" 1 best.C.Unroll.factor

(* ---------------------------------------------- scalar replacement --- *)

let test_unroll_then_scalar_replacement () =
  (* The paper's step-3 pipeline: jam J by 4, then the four B(K,J+k)
     copies (plus nothing else) become scalars in the main nest. N = 10
     leaves a remainder nest, which must survive untouched. *)
  let n = 10 in
  let p = S.Kernels.matmul ~order:"JKI" n in
  let nest = List.hd (Program.top_loops p) in
  match C.Unroll.unroll_and_jam nest ~loop:"J" ~factor:4 with
  | None -> Alcotest.fail "matmul J should unroll-and-jam"
  | Some block -> (
    match block with
    | Loop.Loop main :: rest ->
      let sr = C.Scalar_replacement.apply main in
      checki "four B copies replaced" 4 sr.C.Scalar_replacement.replaced;
      let p' =
        Program.map_body
          (fun _ -> Loop.Loop sr.C.Scalar_replacement.nest :: rest)
          p
      in
      checkb "composition preserves matmul" true (Exec.equivalent p p')
    | _ -> Alcotest.fail "expected main nest first")

let test_scalar_replacement_matmul () =
  (* In JKI matmul, B(K,J) is invariant in the inner I loop: it hoists
     into a scalar, cutting one memory access per inner iteration. *)
  let n = 10 in
  let p = S.Kernels.matmul ~order:"JKI" n in
  let nest = List.hd (Program.top_loops p) in
  let r = C.Scalar_replacement.apply nest in
  checki "one reference replaced" 1 r.C.Scalar_replacement.replaced;
  let p' = replace_nest p r.C.Scalar_replacement.nest in
  checkb "semantics preserved" true (Exec.equivalent p p');
  let acc q = (Exec.run q).Exec.accesses in
  (* 4 accesses/iter -> 3 accesses/iter + one load per (J,K). *)
  checki "original accesses" (4 * n * n * n) (acc p);
  checki "replaced accesses" ((3 * n * n * n) + (n * n)) (acc p')

let test_scalar_replacement_written_ref () =
  (* A written invariant reference must be stored back after the loop. *)
  let open Builder in
  let nn = v "N" in
  let p =
    program "sr" ~params:[ ("N", 8) ]
      ~arrays:[ ("ACC", [ nn ]); ("V", [ nn; nn ]) ]
      [
        do_ "J" (i 1) nn
          [
            do_ "I" (i 1) nn
              [
                asn (r "ACC" [ v "J" ])
                  (ld "ACC" [ v "J" ] +! ld "V" [ v "I"; v "J" ]);
              ];
          ];
      ]
  in
  let nest = List.hd (Program.top_loops p) in
  let res = C.Scalar_replacement.apply nest in
  checki "accumulator replaced" 1 res.C.Scalar_replacement.replaced;
  let p' = replace_nest p res.C.Scalar_replacement.nest in
  checkb "reduction preserved" true (Exec.equivalent p p');
  (* ACC touched twice per (J) now instead of 2N times. *)
  let n = 8 in
  checki "accesses reduced"
    ((n * n) + (2 * n))
    (Exec.run p').Exec.accesses

let test_scalar_replacement_distinct_offsets () =
  (* W(1,J) and W(2,J) provably never alias: both replace, the written
     one with a store-back. *)
  let open Builder in
  let nn = v "N" in
  let p =
    program "sr2" ~params:[ ("N", 8) ]
      ~arrays:[ ("W", [ nn; nn ]) ]
      [
        do_ "J" (i 2) nn
          [
            do_ "I" (i 1) nn
              [
                asn (r "W" [ i 1; v "J" ])
                  (ld "W" [ i 2; v "J" ] +! ld "W" [ i 1; v "J" ]);
              ];
          ];
      ]
  in
  let nest = List.hd (Program.top_loops p) in
  let res = C.Scalar_replacement.apply nest in
  checki "both replaced" 2 res.C.Scalar_replacement.replaced;
  checkb "semantics" true
    (Exec.equivalent p (replace_nest p res.C.Scalar_replacement.nest))

let test_scalar_replacement_skips_may_alias () =
  (* W(M,J) versus W(1,J) where M is a parameter-like outer value: the
     difference is not a known constant, so nothing is replaced for that
     array. *)
  let open Builder in
  let nn = v "N" in
  let p =
    program "sr3" ~params:[ ("N", 8) ]
      ~arrays:[ ("W", [ nn; nn ]) ]
      [
        do_ "M" (i 1) nn
          [
            do_ "J" (i 2) nn
              [
                do_ "I" (i 1) nn
                  [
                    asn (r "W" [ v "M"; v "J" ])
                      (ld "W" [ i 1; v "J" ] +! f 1.0);
                  ];
              ];
          ];
      ]
  in
  let nest = List.hd (Program.top_loops p) in
  checki "possible alias blocks replacement" 0
    (C.Scalar_replacement.apply nest).C.Scalar_replacement.replaced

(* ----------------------------------------------------- parallelism --- *)

let test_parallel_matmul () =
  let nest = List.hd (Program.top_loops (S.Kernels.matmul ~order:"JKI" 12)) in
  checkb "J doall" true (C.Parallel.is_doall nest ~loop:"J");
  checkb "I doall" true (C.Parallel.is_doall nest ~loop:"I");
  checkb "K sequential (reduction)" false (C.Parallel.is_doall nest ~loop:"K");
  let r = C.Parallel.report nest in
  checki "2 of 3 doall" 2 r.C.Parallel.doall;
  checkb "outer parallel" true r.C.Parallel.outer_parallel;
  checkb "inner parallel" false r.C.Parallel.inner_sequential

let test_parallel_simple_tradeoff () =
  (* The paper's Simple: vectorizable inner loop before, recurrence
     innermost after reordering for locality. *)
  let p = S.Kernels.simple_hydro 12 in
  let before = C.Parallel.program_summary p in
  checkb "inner loops parallel before" true
    (List.for_all (fun (r : C.Parallel.report) -> not r.C.Parallel.inner_sequential) before);
  let p', _ = C.Compound.run_program ~cls:4 p in
  let after = C.Parallel.program_summary p' in
  checkb "a recurrence moved innermost" true
    (List.exists (fun (r : C.Parallel.report) -> r.C.Parallel.inner_sequential) after)

let test_parallel_jacobi_all_doall () =
  let nest = List.hd (Program.top_loops (S.Kernels.jacobi2d 12)) in
  checki "both loops doall" 2 (List.length (C.Parallel.parallel_loops nest))

(* ----------------------------------------------- scalar expansion ---- *)

let temp_loop_program () =
  let open Builder in
  let nn = v "N" in
  program "sexp" ~params:[ ("N", 16) ]
    ~arrays:[ ("A", [ nn ]); ("B", [ nn ]); ("CC", [ nn ]) ]
    [
      do_ "I" (i 1) nn
        [
          sasn ~label:"T1" "t" (ld "A" [ v "I" ] *! f 0.5);
          asn ~label:"T2" (r "B" [ v "I" ]) (sc "t" +! f 1.0);
          asn ~label:"T3" (r "CC" [ v "I" ]) (sc "t" *! sc "t");
        ];
    ]

let test_expansion_candidates () =
  let p = temp_loop_program () in
  let nest = List.hd (Program.top_loops p) in
  Alcotest.check (Alcotest.list Alcotest.string) "t is a candidate" [ "t" ]
    (C.Scalar_expansion.candidates nest)

let test_expansion_enables_distribution () =
  let p = temp_loop_program () in
  let nest = List.hd (Program.top_loops p) in
  (* Before: the scalar's anti-dependences tie everything together. *)
  checkb "blocked before" true
    (C.Distribution.partitions_at nest ~level:1 = None);
  match C.Scalar_expansion.expand p ~loop:"I" ~scalar:"t" with
  | Error msg -> Alcotest.fail msg
  | Ok p' ->
    let nest' = List.hd (Program.top_loops p') in
    (match C.Distribution.partitions_at nest' ~level:1 with
    | Some parts -> checki "three partitions after" 3 (List.length parts)
    | None -> Alcotest.fail "still blocked after expansion");
    (* And B/CC still receive the same values. *)
    let r = Exec.run p and r' = Exec.run p' in
    let b = List.assoc "B" r.Exec.arrays and b' = List.assoc "B" r'.Exec.arrays in
    Array.iteri
      (fun i x ->
        if Float.abs (x -. b'.(i)) > 1e-12 then Alcotest.fail "B differs")
      b

let test_expansion_rejects_escaping_scalar () =
  let open Builder in
  let nn = v "N" in
  let p =
    program "esc" ~params:[ ("N", 8) ] ~arrays:[ ("A", [ nn ]) ]
      [
        do_ "I" (i 1) nn [ sasn "t" (ld "A" [ v "I" ]) ];
        sasn "u" (sc "t" +! f 1.0);
      ]
  in
  match C.Scalar_expansion.expand p ~loop:"I" ~scalar:"t" with
  | Ok _ -> Alcotest.fail "expected escape rejection"
  | Error msg -> checkb "mentions escape" true (contains msg "escapes")

let test_expansion_rejects_use_before_def () =
  let open Builder in
  let nn = v "N" in
  let p =
    program "ubd" ~params:[ ("N", 8) ] ~arrays:[ ("A", [ nn ]) ]
      [
        do_ "I" (i 1) nn
          [
            asn (r "A" [ v "I" ]) (sc "t");
            sasn "t" (ld "A" [ v "I" ] +! f 1.0);
          ];
      ]
  in
  match C.Scalar_expansion.expand p ~loop:"I" ~scalar:"t" with
  | Ok _ -> Alcotest.fail "expected rejection (carried scalar)"
  | Error msg -> checkb "not expandable" true (contains msg "expandable")

let suite =
  [
    ("strip mine iterations", `Quick, test_strip_mine_iterations);
    ("strip mine errors", `Quick, test_strip_mine_errors);
    ("tile matmul semantics", `Quick, test_tile_matmul_semantics);
    ("tile improves small-cache matmul", `Quick, test_tile_improves_matmul_on_small_cache);
    ("tile refuses illegal band", `Quick, test_tile_illegal_band);
    ("tile recommendation", `Quick, test_tile_recommend);
    ("two-level tiling semantics", `Quick, test_two_level_tiling_semantics);
    ("auto tile size blocked matmul", `Quick, test_tile_auto_size_blocked_matmul);
    ("hierarchy measurement", `Quick, test_measure_hierarchy);
    ("skew preserves semantics", `Quick, test_skew_semantics);
    ("skew straightens dependences", `Quick, test_skew_straightens_dependences);
    ("skew errors", `Quick, test_skew_errors);
    ("unroll-and-jam matmul (with remainder)", `Quick, test_unroll_and_jam_matmul);
    ("unroll-and-jam outermost loop", `Quick, test_unroll_and_jam_outermost);
    ("unroll-and-jam rejects recurrence", `Quick, test_unroll_and_jam_rejects_recurrence);
    ("unroll-and-jam rejects innermost/factor", `Quick, test_unroll_and_jam_rejects_innermost);
    ("choose factor (balance)", `Quick, test_choose_factor_matmul);
    ("choose factor middle loop", `Quick, test_choose_factor_middle_loop);
    ("choose factor recurrence", `Quick, test_choose_factor_recurrence);
    ("unroll then scalar replacement", `Quick, test_unroll_then_scalar_replacement);
    ("scalar replacement matmul", `Quick, test_scalar_replacement_matmul);
    ("scalar replacement written ref", `Quick, test_scalar_replacement_written_ref);
    ("scalar replacement distinct offsets", `Quick, test_scalar_replacement_distinct_offsets);
    ("scalar replacement may-alias", `Quick, test_scalar_replacement_skips_may_alias);
    ("parallel loops in matmul", `Quick, test_parallel_matmul);
    ("parallelism trade-off in simple", `Quick, test_parallel_simple_tradeoff);
    ("jacobi fully parallel", `Quick, test_parallel_jacobi_all_doall);
    ("scalar expansion candidates", `Quick, test_expansion_candidates);
    ("expansion enables distribution", `Quick, test_expansion_enables_distribution);
    ("expansion rejects escaping scalar", `Quick, test_expansion_rejects_escaping_scalar);
    ("expansion rejects use-before-def", `Quick, test_expansion_rejects_use_before_def);
  ]
